// E2 -- Reproduces the paper's Figure 1: the recursion tree of
// SleepingMISRecursive with first-reach/finish time labels.
//
// Part 1 regenerates the paper's exact sample labels (a four-level tree
// under the figure's convention that a base case occupies one slot):
// the paper shows (1,29) (2,14) (3,7) (4,4) (6,6) (9,13) ... (26,26).
//
// Part 2 prints the *measured* tree of a real run on G(48, 0.12):
// per-call first communication round (from the recursion trace) next to
// the analytic schedule, plus the participant counts |U| that shrink
// geometrically down the tree.
#include <iostream>

#include "analysis/table.h"
#include "core/schedule.h"
#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;
}

int main() {
  std::cout << analysis::banner(
      "E2 / Figure 1 (part 1): the paper's sample tree, K = 3");
  const auto tree = core::figure1_tree(3);
  std::cout << core::render_tree(tree);
  std::cout << "expected from the paper: (1,29) (2,14) (3,7) (4,4) (6,6) "
               "(9,13) (10,10) (12,12) (16,28) (17,21) (18,18) (20,20) "
               "(23,27) (24,24) (26,26)\n";

  std::cout << analysis::banner(
      "E2 (part 2): measured recursion tree on G(48, avg deg 6), seed 7");
  Rng rng(7);
  const Graph g = gen::gnp_avg_degree(48, 6.0, rng);
  core::RecursionTrace trace;
  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(g.num_vertices());
  auto result = sim::run_protocol(g, 7, core::sleeping_mis({}, &trace), options);

  const auto analytic = core::execution_tree(trace.levels);
  analysis::Table table({"depth", "path", "k", "analytic reach", "measured reach",
                         "|U|", "|L|", "|R|", "isolated joins"});
  std::uint32_t printed = 0;
  for (const core::TreeNode& node : analytic) {
    const auto it = trace.calls.find({node.k, node.path});
    if (it == trace.calls.end() || it->second.participants == 0) continue;
    if (++printed > 40) break;  // the deep tail is mostly empty calls
    const auto& call = it->second;
    const bool has_round =
        call.first_round != std::numeric_limits<std::uint64_t>::max();
    table.add_row(
        {analysis::Table::num(std::uint64_t{node.depth}),
         analysis::Table::num(node.path), analysis::Table::num(std::uint64_t{node.k}),
         analysis::Table::num(node.reach),
         has_round ? analysis::Table::num(call.first_round) : "-",
         analysis::Table::num(call.participants),
         analysis::Table::num(call.left), analysis::Table::num(call.right),
         analysis::Table::num(call.isolated_joins)});
  }
  std::cout << table.render();
  std::cout << "\nmakespan = " << result.metrics.makespan << " (analytic T(K) = "
            << core::schedule_duration(trace.levels) << ", K = " << trace.levels
            << ")\n";
  std::cout << "Check: 'measured reach' equals 'analytic reach' for every "
               "non-empty call -- the depth-first, left-to-right schedule of "
               "Figure 1.\n";
  return 0;
}
