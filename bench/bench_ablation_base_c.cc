// E25 -- Ablation: the base-case budget constant c of Fast-SleepingMIS.
// Algorithm 2 runs the greedy base cases for EXACTLY c*log n rounds so
// all cells finish simultaneously (the paper requires "some large but
// fixed constant c > 0" for the Fischer-Noever w.h.p. bound to kick
// in). Too small a c truncates the greedy before it decides everyone
// (correctness loss, the Monte-Carlo failure mode the paper accepts
// with small probability); larger c buys reliability with makespan and
// a slightly higher awake bill for base-level nodes. The sweep
// quantifies both sides and shows why the library defaults to c = 6.
#include <iostream>

#include "analysis/table.h"
#include "analysis/verify.h"
#include "core/fast_sleeping_mis.h"
#include "core/schedule.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E25 / Fast-SleepingMIS base budget c in {0.2..6}, G(1024, 8/n), "
      "20 seeds: validity rate, awake average, makespan");

  const VertexId n = 1024;
  const std::uint32_t seeds = 20;
  analysis::Table table({"levels", "c", "base rounds", "valid runs",
                         "avg awake", "worst awake", "makespan"});

  // levels = 0 is the paper's depth (base cells are near-singletons and
  // any c works); levels = 3 truncates aggressively so base cells hold
  // ~(3/4)^3 * n / 8 ~ 54 nodes and genuinely need the greedy budget.
  for (const std::uint32_t levels : {0u, 3u}) {
    for (const double c : {0.2, 0.4, 0.6, 1.0, 2.0, 4.0, 6.0}) {
      std::uint32_t valid = 0;
      double awake_total = 0.0;
      double worst_total = 0.0;
      double makespan_total = 0.0;
      const std::uint64_t base_rounds = core::greedy_base_rounds(n, c);
      for (std::uint32_t s = 0; s < seeds; ++s) {
        Rng rng(n + s);
        const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
        core::FastSleepingMisOptions options;
        options.levels = levels;
        options.base_c = c;
        sim::NetworkOptions net_options;
        net_options.max_message_bits = sim::congest_bits_for(n);
        auto [metrics, outputs] = sim::run_protocol(
            g, 7 * n + s, core::fast_sleeping_mis(options), net_options);
        if (analysis::check_mis(g, outputs).ok()) ++valid;
        awake_total += metrics.node_avg_awake();
        worst_total += static_cast<double>(metrics.worst_awake());
        makespan_total += static_cast<double>(metrics.makespan);
      }
      table.add_row(
          {levels == 0 ? "paper" : analysis::Table::num(std::uint64_t{levels}),
           analysis::Table::num(c, 1), analysis::Table::num(base_rounds),
           analysis::Table::num(std::uint64_t{valid}) + "/" +
               analysis::Table::num(std::uint64_t{seeds}),
           analysis::Table::num(awake_total / seeds),
           analysis::Table::num(worst_total / seeds, 1),
           analysis::Table::num(makespan_total / seeds, 0)});
    }
  }
  std::cout << table.render();
  std::cout << "\nReading: at the paper's depth the base cells are "
               "near-singletons, so even c = 0.2 is valid -- the 'large "
               "fixed constant' is a worst-case guarantee, and its only "
               "cost is the linear-in-c makespan. The levels = 3 rows "
               "recreate the worst case: cells of ~50 nodes genuinely "
               "need Theta(log n) greedy rounds, and small c strands "
               "undecided cells (invalid runs).\n";
  return 0;
}
