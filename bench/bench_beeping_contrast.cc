// E21 -- Sleeping vs beeping (paper Section 1.5: "Sleeping is
// orthogonal to beeping"). Both models restrict the radio, but in
// opposite dimensions: beeping shrinks the message to one bit yet keeps
// every undecided node awake every slot, while sleeping keeps CONGEST
// messages but lets nodes power down. The bench measures the
// node-averaged AWAKE complexity of the beeping-model MIS (bitwise
// tournament, Theta(log^2 n)-ish slots) against Luby-A (Theta(log n))
// and SleepingMIS / Fast-SleepingMIS (O(1)), plus the per-message
// width each model pays.
#include <iostream>

#include "algos/beeping_mis.h"
#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "analysis/verify.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;
using analysis::MisEngine;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E21 / node-averaged awake rounds, G(n, 8/n), 5 seeds: beeping keeps "
      "everyone awake; sleeping does not");

  analysis::Table table({"n", "Beeping MIS", "Luby-A", "SleepingMIS",
                         "Fast-Sleeping", "beep bits", "CONGEST bits"});
  std::vector<double> ns;
  std::vector<double> beeping_avg;
  std::vector<double> sleeping_avg;
  const std::uint32_t seeds = 5;

  for (const VertexId n : {64u, 256u, 1024u, 4096u}) {
    double beeping_total = 0.0;
    std::uint32_t beep_bits = 0;
    for (std::uint32_t s = 0; s < seeds; ++s) {
      Rng rng(n + s);
      const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
      sim::NetworkOptions options;
      options.max_message_bits = 1;  // the whole point of beeping
      auto [metrics, outputs] =
          sim::run_protocol(g, 3 * n + s, algos::beeping_mis(), options);
      if (!analysis::check_mis(g, outputs).ok()) {
        std::cerr << "INVALID beeping MIS at n=" << n << " seed=" << s
                  << "\n";
        return 1;
      }
      beeping_total += metrics.node_avg_awake();
      beep_bits = std::max(beep_bits, metrics.max_message_bits_seen);
    }
    const double beeping_mean = beeping_total / seeds;

    auto engine_avg = [&](MisEngine engine, std::uint32_t* bits_seen) {
      double total = 0.0;
      for (std::uint32_t s = 0; s < seeds; ++s) {
        Rng rng(n + s);
        const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
        const auto run = analysis::run_mis(engine, g, 3 * n + s);
        if (!run.valid) {
          std::cerr << "INVALID " << analysis::engine_name(engine)
                    << " at n=" << n << "\n";
          std::exit(1);
        }
        total += run.node_avg_awake;
        if (bits_seen != nullptr) {
          *bits_seen =
              std::max(*bits_seen, run.metrics.max_message_bits_seen);
        }
      }
      return total / seeds;
    };

    std::uint32_t congest_bits = 0;
    const double luby = engine_avg(MisEngine::kLubyA, &congest_bits);
    const double sleeping = engine_avg(MisEngine::kSleeping, &congest_bits);
    const double fast = engine_avg(MisEngine::kFastSleeping, &congest_bits);

    ns.push_back(n);
    beeping_avg.push_back(beeping_mean);
    sleeping_avg.push_back(sleeping);
    table.add_row({analysis::Table::num(std::uint64_t{n}),
                   analysis::Table::num(beeping_mean),
                   analysis::Table::num(luby),
                   analysis::Table::num(sleeping),
                   analysis::Table::num(fast),
                   analysis::Table::num(std::uint64_t{beep_bits}),
                   analysis::Table::num(std::uint64_t{congest_bits})});
  }
  std::cout << table.render();

  const auto beep_fit = analysis::log_fit(ns, beeping_avg);
  const auto sleep_fit = analysis::log_fit(ns, sleeping_avg);
  std::cout << "\nawake-rounds slope vs log2(n): beeping = "
            << analysis::Table::num(beep_fit.slope, 3)
            << " (grows; every slot costs an awake round), SleepingMIS = "
            << analysis::Table::num(sleep_fit.slope, 3)
            << " (paper Theorem 1: O(1) -> ~0).\n";
  return 0;
}
