// E15 -- Failure injection: the model assumes reliable synchronous
// links; real ad-hoc wireless (the paper's motivation) loses packets.
// This bench measures the MIS validity rate of each engine as a
// function of the per-message loss probability -- quantifying how much
// the algorithms lean on reliable delivery, and that the sleeping
// algorithms' fixed schedules at least preserve termination.
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "analysis/verify.h"
#include "core/fast_sleeping_mis.h"
#include "core/sleeping_mis.h"
#include "algos/greedy.h"
#include "algos/luby.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;

constexpr VertexId kN = 96;
constexpr std::uint32_t kSeeds = 40;

double validity_rate(const sim::Protocol& protocol, double loss) {
  std::uint32_t valid = 0;
  for (std::uint32_t s = 0; s < kSeeds; ++s) {
    Rng rng(10 + s);
    const Graph g = gen::gnp_avg_degree(kN, 6.0, rng);
    fault::FaultPlan plan;
    plan.loss_prob = loss;
    sim::NetworkOptions options;
    options.fault = &plan;
    sim::Network net(g, 50 + s, options);
    net.run(protocol);
    valid += analysis::check_mis(g, net.outputs()).ok() ? 1 : 0;
  }
  return static_cast<double>(valid) / kSeeds;
}

}  // namespace

int main() {
  std::cout << analysis::banner(
      "E15 / failure injection: MIS validity rate vs message loss, "
      "G(" + std::to_string(kN) + ", 6/n), " + std::to_string(kSeeds) +
      " seeds per cell");

  struct NamedProtocol {
    std::string name;
    sim::Protocol protocol;
  };
  std::vector<NamedProtocol> engines;
  engines.push_back({"SleepingMIS", core::sleeping_mis()});
  engines.push_back({"Fast-SleepingMIS", core::fast_sleeping_mis()});
  engines.push_back({"Luby-A", algos::luby_a()});
  engines.push_back({"CRT-greedy", algos::distributed_greedy_mis()});

  std::vector<std::string> header = {"loss prob"};
  for (const auto& e : engines) header.push_back(e.name);
  analysis::Table table(header);
  for (const double loss : {0.0, 0.001, 0.01, 0.05, 0.1, 0.2}) {
    std::vector<std::string> row = {analysis::Table::num(loss, 3)};
    for (const auto& e : engines) {
      row.push_back(analysis::Table::num(validity_rate(e.protocol, loss), 2));
    }
    table.add_row(row);
  }
  std::cout << table.render();
  std::cout
      << "\nReading: every engine needs reliable delivery for correctness\n"
         "(loss = 0 column must be 1.00); under loss, validity decays for\n"
         "all of them -- the sleeping model trades no extra robustness\n"
         "away, but packet-level reliability (MAC-layer ARQ, as the\n"
         "paper's cited 802.11 PSM machinery provides) is a real\n"
         "prerequisite for deploying any of these algorithms.\n";
  return 0;
}
