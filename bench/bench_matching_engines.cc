// E18 -- Maximal matching through the line-graph reduction, one row per
// MIS engine (the Barenboim-Tzur problem family, paper Section 1.5).
// The reduction preserves the paper's headline: driving it with
// SleepingMIS gives O(1) node-averaged awake complexity *on the line
// graph* while the traditional engines pay Theta(log m). Every run is
// verified with the matching checker on the original graph.
//
// All (row, seed) trials are independent, so they run as one flat batch
// on the parallel trial runner; per-row sums happen afterwards in seed
// order, making the table bitwise identical to the serial loop.
#include <cmath>
#include <cstddef>
#include <iostream>
#include <vector>

#include "algos/israeli_itai.h"
#include "algos/matching.h"
#include "analysis/experiment.h"
#include "analysis/parallel.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "graph/generators.h"

namespace {
using namespace slumber;
using algos::MisEngine;

constexpr std::uint32_t kSeeds = 5;

// One table row: either the direct Israeli-Itai protocol on G or one
// MIS engine on the line graph L(G).
struct RowSpec {
  VertexId n = 0;
  bool direct = false;
  MisEngine engine{};
};

struct TrialResult {
  double awake = 0.0;
  double worst = 0.0;
  double matched = 0.0;
  double line_n = 0.0;
  bool valid = false;
};

Graph make_geometric(VertexId n, std::uint32_t s) {
  Rng rng(n * 7 + s);
  // Radius ~ sqrt(12/n) keeps the expected degree near 12.
  return gen::random_geometric(n, std::sqrt(12.0 / (3.14159 * n)) * 1.77,
                               rng);
}

TrialResult run_trial(const RowSpec& row, std::uint32_t s) {
  TrialResult result;
  const Graph g = make_geometric(row.n, s);
  if (row.direct) {
    sim::NetworkOptions options;
    options.max_message_bits = sim::congest_bits_for(row.n);
    auto [metrics, outputs] = sim::run_protocol(
        g, row.n + 31 * s, algos::israeli_itai_matching(), options);
    const auto matched = algos::matching_from_outputs(g, outputs);
    result.valid = matched.has_value() &&
                   algos::is_maximal_matching(g, *matched);
    result.awake = metrics.node_avg_awake();
    result.worst = static_cast<double>(metrics.worst_awake());
    result.matched = matched ? static_cast<double>(matched->size()) : 0.0;
  } else {
    const auto mis_result =
        algos::maximal_matching_via_mis(g, row.n + 31 * s, row.engine);
    result.valid = algos::is_maximal_matching(g, mis_result.matched_edges);
    result.awake = mis_result.line_graph_metrics.node_avg_awake();
    result.worst =
        static_cast<double>(mis_result.line_graph_metrics.worst_awake());
    result.matched = static_cast<double>(mis_result.matched_edges.size());
    result.line_n = static_cast<double>(g.num_edges());
  }
  return result;
}

}  // namespace

int main() {
  std::cout << analysis::banner(
      "E18 / maximal matching via MIS on L(G), unit-disk sensor graphs, "
      "5 seeds per cell: node-averaged awake rounds on L(G)");

  std::vector<RowSpec> rows;
  for (const VertexId n : {128u, 512u, 2048u}) {
    // The direct propose-accept protocol first: it runs on G itself, so
    // its awake column is per ORIGINAL node, with O(1)-bit messages.
    rows.push_back({n, true, MisEngine{}});
    for (const MisEngine engine : analysis::all_engines()) {
      rows.push_back({n, false, engine});
    }
  }

  const auto trials = analysis::parallel_trials(
      rows.size() * kSeeds, 0, [&](std::size_t t) {
        return run_trial(rows[t / kSeeds],
                         static_cast<std::uint32_t>(t % kSeeds));
      });

  analysis::Table table({"n (G)", "m = n(L)", "engine", "avg awake",
                         "worst awake", "matched", "valid"});
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const RowSpec& row = rows[r];
    double awake_total = 0.0;
    double worst_total = 0.0;
    double matched_total = 0.0;
    double line_n = 0.0;
    bool all_valid = true;
    for (std::uint32_t s = 0; s < kSeeds; ++s) {
      const TrialResult& trial = trials[r * kSeeds + s];
      all_valid = all_valid && trial.valid;
      awake_total += trial.awake;
      worst_total += trial.worst;
      matched_total += trial.matched;
      line_n = trial.line_n;
    }
    if (!all_valid) {
      if (row.direct) {
        std::cerr << "INVALID Israeli-Itai matching at n=" << row.n << "\n";
      } else {
        std::cerr << "INVALID matching for "
                  << analysis::engine_name(row.engine) << " at n=" << row.n
                  << "\n";
      }
      return 1;
    }
    table.add_row(
        {analysis::Table::num(std::uint64_t{row.n}),
         row.direct ? "(direct on G)" : analysis::Table::num(line_n, 0),
         row.direct ? "Israeli-Itai" : analysis::engine_name(row.engine),
         analysis::Table::num(awake_total / kSeeds),
         analysis::Table::num(worst_total / kSeeds),
         analysis::Table::num(matched_total / kSeeds, 1), "yes"});
  }
  std::cout << table.render();
  std::cout << "\nShape check: the sleeping engines' 'avg awake' column "
               "stays flat as m grows; Luby/greedy/Ghaffari grow ~log m.\n";
  return 0;
}
