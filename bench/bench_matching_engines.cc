// E18 -- Maximal matching through the line-graph reduction, one row per
// MIS engine (the Barenboim-Tzur problem family, paper Section 1.5).
// The reduction preserves the paper's headline: driving it with
// SleepingMIS gives O(1) node-averaged awake complexity *on the line
// graph* while the traditional engines pay Theta(log m). Every run is
// verified with the matching checker on the original graph.
#include <cmath>
#include <iostream>

#include "algos/israeli_itai.h"
#include "algos/matching.h"
#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "graph/generators.h"

namespace {
using namespace slumber;
using algos::MisEngine;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E18 / maximal matching via MIS on L(G), unit-disk sensor graphs, "
      "5 seeds per cell: node-averaged awake rounds on L(G)");

  const std::uint32_t seeds = 5;
  analysis::Table table({"n (G)", "m = n(L)", "engine", "avg awake",
                         "worst awake", "matched", "valid"});

  for (const VertexId n : {128u, 512u, 2048u}) {
    // The direct propose-accept protocol first: it runs on G itself, so
    // its awake column is per ORIGINAL node, with O(1)-bit messages.
    {
      double awake_total = 0.0;
      double worst_total = 0.0;
      double matched_total = 0.0;
      bool all_valid = true;
      for (std::uint32_t s = 0; s < seeds; ++s) {
        Rng rng(n * 7 + s);
        const Graph g = gen::random_geometric(
            n, std::sqrt(12.0 / (3.14159 * n)) * 1.77, rng);
        sim::NetworkOptions options;
        options.max_message_bits = sim::congest_bits_for(n);
        auto [metrics, outputs] = sim::run_protocol(
            g, n + 31 * s, algos::israeli_itai_matching(), options);
        const auto matched = algos::matching_from_outputs(g, outputs);
        all_valid = all_valid && matched.has_value() &&
                    algos::is_maximal_matching(g, *matched);
        awake_total += metrics.node_avg_awake();
        worst_total += static_cast<double>(metrics.worst_awake());
        matched_total +=
            matched ? static_cast<double>(matched->size()) : 0.0;
      }
      if (!all_valid) {
        std::cerr << "INVALID Israeli-Itai matching at n=" << n << "\n";
        return 1;
      }
      table.add_row({analysis::Table::num(std::uint64_t{n}), "(direct on G)",
                     "Israeli-Itai", analysis::Table::num(awake_total / seeds),
                     analysis::Table::num(worst_total / seeds),
                     analysis::Table::num(matched_total / seeds, 1), "yes"});
    }
    for (const MisEngine engine : analysis::all_engines()) {
      double awake_total = 0.0;
      double worst_total = 0.0;
      double matched_total = 0.0;
      double line_n = 0.0;
      bool all_valid = true;
      for (std::uint32_t s = 0; s < seeds; ++s) {
        Rng rng(n * 7 + s);
        // Radius ~ sqrt(12/n) keeps the expected degree near 12.
        const Graph g = gen::random_geometric(
            n, std::sqrt(12.0 / (3.14159 * n)) * 1.77, rng);
        const auto result =
            algos::maximal_matching_via_mis(g, n + 31 * s, engine);
        all_valid = all_valid &&
                    algos::is_maximal_matching(g, result.matched_edges);
        awake_total += result.line_graph_metrics.node_avg_awake();
        worst_total +=
            static_cast<double>(result.line_graph_metrics.worst_awake());
        matched_total += static_cast<double>(result.matched_edges.size());
        line_n = static_cast<double>(g.num_edges());
      }
      if (!all_valid) {
        std::cerr << "INVALID matching for "
                  << analysis::engine_name(engine) << " at n=" << n << "\n";
        return 1;
      }
      table.add_row({analysis::Table::num(std::uint64_t{n}),
                     analysis::Table::num(line_n, 0),
                     analysis::engine_name(engine),
                     analysis::Table::num(awake_total / seeds),
                     analysis::Table::num(worst_total / seeds),
                     analysis::Table::num(matched_total / seeds, 1), "yes"});
    }
  }
  std::cout << table.render();
  std::cout << "\nShape check: the sleeping engines' 'avg awake' column "
               "stays flat as m grows; Luby/greedy/Ghaffari grow ~log m.\n";
  return 0;
}
