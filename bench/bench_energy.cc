// E9 -- The paper's Section 1.1 motivation, quantified: per-node radio
// energy on unit-disk sensor networks under the Feeney-Nilsson power
// model. Two accountings:
//   (a) idealized (sleep = 0 W, the paper's model): sleeping algorithms'
//       mean energy is flat in n; Luby's grows with log n.
//   (b) realistic (sleep = 43 mW): Algorithm 1's Theta(n^3) makespan
//       makes even 43 mW sleeping dominate -- which is exactly why the
//       paper needs Algorithm 2's polylog makespan.
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "energy/energy.h"
#include "graph/generators.h"

namespace {
using namespace slumber;
using analysis::MisEngine;

double mean_energy(MisEngine engine, VertexId n, std::uint64_t seed,
                   const energy::EnergyModel& model) {
  const Graph g = gen::make(gen::Family::kUnitDisk, n, seed);
  const auto run = analysis::run_mis(engine, g, seed + 5);
  const auto report = energy::evaluate(model, run.metrics);
  return report.mean_mj;
}

}  // namespace

int main() {
  const std::vector<MisEngine> engines = {
      MisEngine::kLubyA, MisEngine::kGreedy, MisEngine::kSleeping,
      MisEngine::kFastSleeping};

  std::cout << analysis::banner(
      "E9a / mean per-node energy (mJ), unit-disk sensor graphs, "
      "IDEALIZED model (sleep = 0 W; paper Section 1.1)");
  {
    const energy::EnergyModel model = energy::EnergyModel::idealized();
    std::vector<std::string> header = {"n"};
    for (auto e : engines) header.push_back(analysis::engine_name(e));
    analysis::Table table(header);
    for (const VertexId n : {128u, 256u, 512u, 1024u, 2048u}) {
      std::vector<std::string> row = {analysis::Table::num(std::uint64_t{n})};
      for (const MisEngine engine : engines) {
        row.push_back(analysis::Table::num(mean_energy(engine, n, 17 * n, model), 3));
      }
      table.add_row(row);
    }
    std::cout << table.render();
    std::cout << "Reading: sleeping columns are flat in n, as guaranteed by "
                 "the O(1) awake bound. The baselines' means are also small "
                 "on these benign topologies (their node-averaged behavior "
                 "is an open question, not a lower bound -- paper Sec. 1.3); "
                 "the guarantee, and the worst-node bill, is where the "
                 "sleeping model wins.\n";
  }

  std::cout << analysis::banner(
      "E9b / same runs, REALISTIC model (sleep = 43 mW)");
  {
    const energy::EnergyModel model;  // realistic defaults
    std::vector<std::string> header = {"n"};
    for (auto e : engines) header.push_back(analysis::engine_name(e));
    analysis::Table table(header);
    for (const VertexId n : {128u, 256u, 512u}) {
      std::vector<std::string> row = {analysis::Table::num(std::uint64_t{n})};
      for (const MisEngine engine : engines) {
        row.push_back(analysis::Table::num(mean_energy(engine, n, 17 * n, model), 1));
      }
      table.add_row(row);
    }
    std::cout << table.render();
    std::cout
        << "Reading: with nonzero sleep power, Algorithm 1's Theta(n^3)\n"
           "makespan dominates its budget; Fast-SleepingMIS keeps both\n"
           "awake time AND wall-clock small -- the practical point of\n"
           "Theorem 2.\n";
  }
  return 0;
}
