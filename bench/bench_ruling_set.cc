// E20 -- (k+1, k)-ruling sets via MIS on the graph power G^k (the
// MIS relaxation of Pai et al., cited in the paper's Section 1).
// Larger k buys a smaller ruling set (fewer, farther-apart rulers) at
// the cost of denser power graphs. The sleeping engine keeps its O(1)
// node-averaged awake complexity on every G^k; one G^k round costs up
// to k G-rounds of relaying, which the table reports as the dilation.
#include <iostream>

#include "algos/ruling_set.h"
#include "analysis/experiment.h"
#include "analysis/table.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/transforms.h"

namespace {
using namespace slumber;
using algos::MisEngine;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E20 / (k+1,k)-ruling sets on G(n, 8/n) via MIS on G^k, 5 seeds: "
      "|S| shrinks with k; sleeping stays O(1) awake");

  const std::uint32_t seeds = 5;
  analysis::Table table({"n", "k", "engine", "|S|", "avg awake (G^k)",
                         "power avg deg", "dilation", "valid"});

  for (const VertexId n : {128u, 512u}) {
    for (const std::uint32_t k : {1u, 2u, 3u}) {
      for (const MisEngine engine :
           {MisEngine::kGreedy, MisEngine::kSleeping}) {
        double rulers_total = 0.0;
        double awake_total = 0.0;
        double deg_total = 0.0;
        bool all_valid = true;
        for (std::uint32_t s = 0; s < seeds; ++s) {
          Rng rng(n * 13 + s);
          const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
          const auto result =
              algos::ruling_set_via_mis(g, k, n + 97 * s, engine);
          const auto check =
              algos::check_ruling_set(g, result.rulers, k + 1, k);
          all_valid = all_valid && check.ok();
          rulers_total += static_cast<double>(result.rulers.size());
          awake_total += result.power_graph_metrics.node_avg_awake();
          const Graph pk = power(g, k);
          deg_total += average_degree(pk);
        }
        if (!all_valid) {
          std::cerr << "INVALID ruling set (n=" << n << " k=" << k << ")\n";
          return 1;
        }
        table.add_row({analysis::Table::num(std::uint64_t{n}),
                       analysis::Table::num(std::uint64_t{k}),
                       analysis::engine_name(engine),
                       analysis::Table::num(rulers_total / seeds, 1),
                       analysis::Table::num(awake_total / seeds),
                       analysis::Table::num(deg_total / seeds, 1),
                       analysis::Table::num(std::uint64_t{k}), "yes"});
      }
    }
  }
  std::cout << table.render();
  std::cout << "\nShape check: |S| decreases in k (independence radius "
               "grows); the sleeping engine's awake column stays near its "
               "O(1) plateau even as G^k densifies.\n";
  return 0;
}
