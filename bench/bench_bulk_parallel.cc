// Intra-trial parallel bulk scaling: one n = 2M (default) SleepingMIS
// workload on G(n, 8/n), with BOTH phases lane-swept and bitwise-gated:
//
//  * Build phase: the graph is generated with the sharded counter-based
//    schedule (gen::gnp_avg_degree_sharded_csr) serially and then at 2,
//    4, and hardware_threads() lanes; every parallel build must
//    reproduce the serial CSR bit for bit (Graph::same_csr). The
//    printed speedups are the committed evidence that generation — the
//    dominant serial phase left after PR 4 — now scales with cores.
//  * Run phase: the serial bulk trial is the reference; every sharded
//    run is compared bitwise — outputs, aggregate AND per-node
//    sim::Metrics, and the exact 128-bit virtual makespan.
//
// This bench doubles as the determinism gate for the parallel bulk
// path on the committed perf trajectory (BENCH_baseline.json). The
// printed speedups are only meaningful on multi-core machines; the
// bitwise checks are meaningful everywhere. The final line
// `BENCH-SPLIT build_ms=<b> run_ms=<r>` reports the serial reference
// times for tools/run_bench.sh.
//
//   bench_bulk_parallel [n] [seed]    (default: 2,000,000 / 1)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "analysis/verify.h"
#include "bulk/sleeping_mis.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/parse.h"
#include "util/thread_pool.h"

namespace {

using namespace slumber;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// util::parse_uint that exits instead of returning false (bench args
/// have no recovery path).
std::uint64_t parse_uint_or_die(const std::string& token, const char* what,
                                std::uint64_t max_value) {
  std::uint64_t value = 0;
  if (!util::parse_uint(token, what, &value, 0, max_value)) std::exit(2);
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  const VertexId n =
      argc > 1 ? static_cast<VertexId>(parse_uint_or_die(
                     argv[1], "[n]", std::numeric_limits<VertexId>::max()))
               : 2'000'000;
  const std::uint64_t seed =
      argc > 2 ? parse_uint_or_die(
                     argv[2], "[seed]",
                     std::numeric_limits<std::uint64_t>::max())
               : 1;

  std::cout << analysis::banner(
      "intra-trial parallel bulk / SleepingMIS on G(n, 8/n), n = " +
      std::to_string(n) + " (" +
      std::to_string(util::ThreadPool::hardware_threads()) +
      " hardware threads, sharded generator)");

  std::vector<unsigned> lane_counts = {2, 4};
  const unsigned hw = util::ThreadPool::hardware_threads();
  if (hw > 4) lane_counts.push_back(hw);

  // --- build phase: sharded generation across lane counts -----------
  auto t0 = std::chrono::steady_clock::now();
  const Graph g = gen::gnp_avg_degree_sharded_csr(n, 8.0, seed);
  const double serial_build_ms = ms_since(t0);
  std::cout << "graph: " << g.summary() << "\n";

  analysis::Table build_table({"lanes", "build ms", "speedup", "bitwise"});
  build_table.add_row({"1", analysis::Table::num(serial_build_ms, 0), "1.0x",
                       "reference"});
  bool all_bitwise = true;

  for (const unsigned lanes : lane_counts) {
    util::ThreadPool pool(lanes);
    gen::ShardedGnpOptions gen_options;
    gen_options.pool = &pool;
    t0 = std::chrono::steady_clock::now();
    const Graph sharded_g =
        gen::gnp_avg_degree_sharded_csr(n, 8.0, seed, gen_options);
    const double build_ms = ms_since(t0);
    const bool bitwise = g.same_csr(sharded_g);
    all_bitwise = all_bitwise && bitwise;
    build_table.add_row(
        {analysis::Table::num(std::uint64_t{lanes}),
         analysis::Table::num(build_ms, 0),
         analysis::Table::num(serial_build_ms / std::max(build_ms, 1e-3), 2) +
             "x",
         bitwise ? "ok" : "MISMATCH"});
  }
  std::cout << "\nbuild phase (counter-based per-block schedule):\n"
            << build_table.render();

  // --- run phase: sharded node scans across lane counts -------------
  bulk::BulkOptions options;
  options.max_message_bits = sim::congest_bits_for(g.num_vertices());

  t0 = std::chrono::steady_clock::now();
  const bulk::BulkResult serial =
      bulk::bulk_sleeping_mis(g, seed, {}, nullptr, options);
  const double serial_ms = ms_since(t0);
  if (!analysis::check_mis(g, serial.outputs).ok()) {
    std::cerr << "INVALID MIS from the serial bulk trial\n";
    return 1;
  }

  analysis::Table table({"lanes", "run ms", "speedup", "bitwise"});
  table.add_row({"1", analysis::Table::num(serial_ms, 0), "1.0x",
                 "reference"});

  for (const unsigned lanes : lane_counts) {
    util::ThreadPool pool(lanes);
    bulk::BulkOptions parallel_options = options;
    parallel_options.pool = &pool;
    parallel_options.first_touch = true;
    t0 = std::chrono::steady_clock::now();
    const bulk::BulkResult run =
        bulk::bulk_sleeping_mis(g, seed, {}, nullptr, parallel_options);
    const double run_ms = ms_since(t0);
    const bool bitwise = run.outputs == serial.outputs &&
                         run.metrics == serial.metrics &&
                         run.virtual_makespan == serial.virtual_makespan;
    all_bitwise = all_bitwise && bitwise;
    table.add_row({analysis::Table::num(std::uint64_t{lanes}),
                   analysis::Table::num(run_ms, 0),
                   analysis::Table::num(serial_ms / std::max(run_ms, 1e-3),
                                        2) +
                       "x",
                   bitwise ? "ok" : "MISMATCH"});
  }

  std::cout << "\nrun phase:\n" << table.render();
  std::cout << "\nevery lane count must reproduce the serial build CSR for "
               "CSR and the serial trial bit for bit (outputs, per-node + "
               "aggregate metrics, 128-bit virtual makespan).\n";
  std::cout << "BENCH-SPLIT build_ms="
            << static_cast<long long>(serial_build_ms)
            << " run_ms=" << static_cast<long long>(serial_ms) << "\n";
  if (!all_bitwise) {
    std::cerr << "BITWISE MISMATCH across lane counts\n";
    return 1;
  }
  return 0;
}
