// E10 -- The paper's Section 1.5 contrast: Luby's (Delta+1)-coloring
// already achieves O(1) node-averaged round complexity in the
// *traditional* model (a constant fraction of nodes finishes per
// iteration), while no MIS algorithm is known to -- that asymmetry is
// what motivates the sleeping model. We measure the node-averaged
// decision round of coloring vs the MIS baselines across n.
#include <iostream>

#include "algos/greedy_coloring.h"
#include "algos/luby_coloring.h"
#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "analysis/verify.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;
using analysis::MisEngine;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E10 / node-averaged DECISION round (traditional model), G(n, 8/n), "
      "5 seeds: coloring is O(1), MIS baselines grow");

  analysis::Table table({"n", "Luby coloring", "greedy coloring",
                         "Luby-A MIS", "CRT-greedy MIS", "Ghaffari MIS"});
  std::vector<double> ns;
  std::vector<double> coloring_avg;
  std::vector<double> luby_avg;
  for (const VertexId n : {64u, 256u, 1024u, 4096u}) {
    double coloring_total = 0.0;
    const std::uint32_t seeds = 5;
    for (std::uint32_t s = 0; s < seeds; ++s) {
      Rng rng(n + s);
      const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
      sim::NetworkOptions options;
      options.max_message_bits = sim::congest_bits_for(n);
      auto [metrics, outputs] =
          sim::run_protocol(g, 2 * n + s, algos::luby_coloring(), options);
      if (!analysis::check_coloring(g, outputs)) {
        std::cerr << "INVALID coloring at n=" << n << "\n";
        return 1;
      }
      coloring_total += metrics.node_avg_decided();
    }
    const double coloring_mean = coloring_total / seeds;

    double greedy_coloring_total = 0.0;
    for (std::uint32_t s = 0; s < seeds; ++s) {
      Rng rng(n + s);
      const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
      sim::NetworkOptions options;
      options.max_message_bits = sim::congest_bits_for(n);
      auto [metrics, outputs] =
          sim::run_protocol(g, 2 * n + s, algos::greedy_coloring(), options);
      if (!analysis::check_coloring(g, outputs)) {
        std::cerr << "INVALID greedy coloring at n=" << n << "\n";
        return 1;
      }
      greedy_coloring_total += metrics.node_avg_decided();
    }
    const double greedy_coloring_mean = greedy_coloring_total / seeds;

    auto mis_avg = [&](MisEngine engine) {
      double total = 0.0;
      for (std::uint32_t s = 0; s < seeds; ++s) {
        Rng rng(n + s);
        const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
        const auto run = analysis::run_mis(engine, g, 2 * n + s);
        total += run.metrics.node_avg_decided();
      }
      return total / seeds;
    };
    const double luby = mis_avg(MisEngine::kLubyA);
    ns.push_back(n);
    coloring_avg.push_back(coloring_mean);
    luby_avg.push_back(luby);
    table.add_row({analysis::Table::num(std::uint64_t{n}),
                   analysis::Table::num(coloring_mean),
                   analysis::Table::num(greedy_coloring_mean),
                   analysis::Table::num(luby),
                   analysis::Table::num(mis_avg(MisEngine::kGreedy)),
                   analysis::Table::num(mis_avg(MisEngine::kGhaffari))});
  }
  std::cout << table.render();

  const auto coloring_fit = analysis::log_fit(ns, coloring_avg);
  const auto luby_fit = analysis::log_fit(ns, luby_avg);
  std::cout << "\nslope vs log2(n): coloring = "
            << analysis::Table::num(coloring_fit.slope, 3)
            << " (paper: O(1) -> ~0), Luby-A MIS = "
            << analysis::Table::num(luby_fit.slope, 3)
            << " (grows: no O(1) traditional-model MIS bound known).\n";
  return 0;
}
