// E8 -- Lemma 10 / Lemma 13: worst-case (traditional) round complexity.
// Algorithm 1's makespan is exactly T(ceil(3 log2 n)) = Theta(n^3);
// Algorithm 2's is T2(K2) = O(log^{ell+1} n) = O(log^3.41 n). We verify
// the measured makespans against both closed forms and fit the growth
// exponents.
#include <cmath>
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "core/schedule.h"
#include "graph/generators.h"

namespace {
using namespace slumber;
using analysis::MisEngine;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E8 / worst-case round complexity (makespan), G(n, 8/n)");

  analysis::Table table({"n", "Alg1 measured", "3(2^K - 1)", "Alg1 / n^3",
                         "Alg2 measured", "T2(K2)", "Alg2 / log^3.41 n",
                         "Luby-A measured"});
  std::vector<double> ns;
  std::vector<double> alg1;
  std::vector<double> alg2;
  for (const VertexId n : {32u, 64u, 128u, 256u, 512u}) {
    Rng rng(3 * n);
    const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
    const auto run1 = analysis::run_mis(MisEngine::kSleeping, g, n + 1);
    const auto run2 = analysis::run_mis(MisEngine::kFastSleeping, g, n + 1);
    const auto run3 = analysis::run_mis(MisEngine::kLubyA, g, n + 1);
    const double cube = std::pow(static_cast<double>(n), 3.0);
    const double polylog =
        std::pow(std::log2(static_cast<double>(n)), core::kEll + 1.0);
    ns.push_back(n);
    alg1.push_back(static_cast<double>(run1.worst_rounds));
    alg2.push_back(static_cast<double>(run2.worst_rounds));
    table.add_row(
        {analysis::Table::num(std::uint64_t{n}),
         analysis::Table::num(run1.worst_rounds),
         analysis::Table::num(core::schedule_duration(core::recursion_depth(n))),
         analysis::Table::num(static_cast<double>(run1.worst_rounds) / cube, 2),
         analysis::Table::num(run2.worst_rounds),
         analysis::Table::num(core::schedule_duration(
             core::fast_recursion_depth(n), core::greedy_base_rounds(n))),
         analysis::Table::num(static_cast<double>(run2.worst_rounds) / polylog,
                              2),
         analysis::Table::num(run3.worst_rounds)});
  }
  std::cout << table.render();

  const auto fit1 = analysis::power_fit(ns, alg1);
  const auto fit2 = analysis::power_fit(ns, alg2);
  std::cout << "\npower-law exponents (makespan ~ n^e):\n"
            << "  SleepingMIS:      e = " << analysis::Table::num(fit1.slope, 3)
            << "  (paper: 3)\n"
            << "  Fast-SleepingMIS: e = " << analysis::Table::num(fit2.slope, 3)
            << "  (paper: polylog, so e -> 0)\n";

  std::cout << analysis::banner(
      "node-averaged round complexity (same runs: every node finishes in "
      "the same round for the sleeping algorithms -- Lemma 1 Cond. 1)");
  std::cout << "Alg1 node-avg rounds == makespan == T(K): the sleeping\n"
               "algorithms trade wall-clock for awake time (Lemma 11/14).\n";
  return 0;
}
