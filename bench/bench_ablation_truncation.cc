// E12 -- Ablation of Algorithm 2's truncation depth. The paper picks
// K2 = ceil(ell log log n) with ell = 1/log2(4/3) so that the expected
// base-level population is n/log n, exactly cancelling the O(log n)
// greedy base cost. Truncating shallower pushes more nodes into the
// expensive base; truncating deeper adds makespan (each extra level
// doubles T2). This bench sweeps K2 around the paper's choice.
#include <iostream>

#include "analysis/stats.h"
#include "analysis/table.h"
#include "analysis/verify.h"
#include "core/fast_sleeping_mis.h"
#include "core/schedule.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;

constexpr VertexId kN = 1024;
constexpr std::uint32_t kSeeds = 6;
}  // namespace

int main() {
  const std::uint32_t paper_k2 = core::fast_recursion_depth(kN);
  std::cout << analysis::banner(
      "E12 / ablation: truncation depth K2, Fast-SleepingMIS on G(" +
      std::to_string(kN) + ", 8/n); paper K2 = " + std::to_string(paper_k2));

  analysis::Table table({"K2", "node-avg awake", "worst awake",
                         "base population", "makespan T2(K2)", "invalid"});
  for (std::uint32_t k2 = 1; k2 <= paper_k2 + 4; ++k2) {
    std::vector<double> avg_awake;
    std::vector<double> worst_awake;
    double base_pop = 0.0;
    std::uint32_t invalid = 0;
    std::uint64_t makespan = 0;
    for (std::uint32_t s = 0; s < kSeeds; ++s) {
      Rng rng(500 + s);
      const Graph g = gen::gnp_avg_degree(kN, 8.0, rng);
      core::RecursionTrace trace;
      core::FastSleepingMisOptions options;
      options.levels = k2;
      sim::NetworkOptions net_options;
      net_options.max_message_bits = sim::congest_bits_for(kN);
      auto [metrics, outputs] = sim::run_protocol(
          g, 700 + s, core::fast_sleeping_mis(options, &trace), net_options);
      if (!analysis::check_mis(g, outputs).ok()) {
        ++invalid;
        continue;
      }
      avg_awake.push_back(metrics.node_avg_awake());
      worst_awake.push_back(static_cast<double>(metrics.worst_awake()));
      base_pop += static_cast<double>(trace.z_by_level()[0]);
      makespan = metrics.makespan;
    }
    const auto row_tag = k2 == paper_k2 ? " (paper)" : "";
    table.add_row(
        {analysis::Table::num(std::uint64_t{k2}) + row_tag,
         analysis::Table::num(analysis::summarize(avg_awake).mean),
         analysis::Table::num(analysis::summarize(worst_awake).mean, 1),
         analysis::Table::num(base_pop / kSeeds, 1),
         analysis::Table::num(makespan),
         analysis::Table::num(std::uint64_t{invalid})});
  }
  std::cout << table.render();
  std::cout << "\nReading: K2 = 1 puts nearly all n nodes through the "
               "O(log n) greedy base (awake average inflates toward "
               "O(log n)); K2 past the paper's choice doubles the makespan "
               "per level for shrinking awake savings.\n";
  return 0;
}
