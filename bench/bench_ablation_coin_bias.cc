// E11 -- Ablation of the fair coin (design choice in Algorithm 1).
// With P[X_k = 1] = p, Lemma 2 becomes E[|L|] <= p|U| and the pruning
// argument gives E[|R|] <= (1-p)/2 |U|, so the per-level contraction
// factor is p + (1-p)/2 = (1+p)/2 -- minimized by small p, but small p
// makes the tree effectively deeper on the left side and pushes more
// nodes into base cases. The paper's p = 1/2 balances awake average
// against correctness margin; this bench sweeps p.
#include <iostream>

#include "analysis/stats.h"
#include "analysis/table.h"
#include "analysis/verify.h"
#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;

constexpr VertexId kN = 512;
constexpr std::uint32_t kSeeds = 8;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E11 / ablation: coin bias p = P[X=1], SleepingMIS on G(" +
      std::to_string(kN) + ", 8/n), " + std::to_string(kSeeds) + " seeds");

  analysis::Table table({"p", "node-avg awake", "worst awake", "L/U", "R/U",
                         "(L+R)/U (theory (1+p)/2)", "invalid runs"});
  for (const double p : {0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9}) {
    std::vector<double> avg_awake;
    std::vector<double> worst_awake;
    double u_total = 0.0;
    double l_total = 0.0;
    double r_total = 0.0;
    std::uint32_t invalid = 0;
    for (std::uint32_t s = 0; s < kSeeds; ++s) {
      Rng rng(1000 + s);
      const Graph g = gen::gnp_avg_degree(kN, 8.0, rng);
      core::RecursionTrace trace;
      core::SleepingMisOptions options;
      options.coin_bias = p;
      sim::NetworkOptions net_options;
      net_options.max_message_bits = sim::congest_bits_for(kN);
      auto [metrics, outputs] = sim::run_protocol(
          g, 2000 + s, core::sleeping_mis(options, &trace), net_options);
      // Validity failures are themselves a finding of this ablation
      // (biased coins collide: the w.h.p. argument needs distinct
      // sequences); the awake/participation stats remain well-defined.
      if (!analysis::check_mis(g, outputs).ok()) ++invalid;
      avg_awake.push_back(metrics.node_avg_awake());
      worst_awake.push_back(static_cast<double>(metrics.worst_awake()));
      for (std::uint32_t k = 1; k <= trace.levels; ++k) {
        const auto level = trace.level_participation(k);
        u_total += static_cast<double>(level.u_total);
        l_total += static_cast<double>(level.left_total);
        r_total += static_cast<double>(level.right_total);
      }
    }
    table.add_row(
        {analysis::Table::num(p, 2),
         analysis::Table::num(analysis::summarize(avg_awake).mean),
         analysis::Table::num(analysis::summarize(worst_awake).mean, 1),
         analysis::Table::num(l_total / u_total, 3),
         analysis::Table::num(r_total / u_total, 3),
         analysis::Table::num((l_total + r_total) / u_total, 3) + " vs " +
             analysis::Table::num((1.0 + p) / 2.0, 3),
         analysis::Table::num(std::uint64_t{invalid})});
  }
  std::cout << table.render();
  std::cout << "\nReading: contraction (L+R)/U tracks (1+p)/2; small p means\n"
               "more pruning per level but the awake average is dominated by\n"
               "the left-recursion depth a node survives, so p = 1/2 is a\n"
               "sane default -- matching the paper.\n";
  return 0;
}
