// E26 -- The determinism contrast promised in algos/deterministic.h:
// greedy-by-ID MIS is the simplest deterministic distributed MIS, and
// on an ID-sorted path a single decision frontier sweeps the graph --
// Theta(n) worst-case AND Theta(n) node-averaged rounds. Randomization
// (Luby) or sleeping (Algorithm 1) removes the adversarial ordering.
// This is why the paper's Table 1 baselines are all randomized: o(n)
// deterministic general-graph MIS needs network-decomposition
// machinery (Panconesi-Srinivasan / Rozhon-Ghaffari, cited in
// Section 1).
#include <iostream>

#include "algos/deterministic.h"
#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "analysis/verify.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;
using analysis::MisEngine;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E26 / deterministic greedy-by-ID vs randomized engines on the "
      "adversarial ID-sorted path P_n: node-averaged decision round");

  analysis::Table table({"n", "det greedy avg", "det greedy worst",
                         "Luby-A avg", "SleepingMIS awake avg"});
  std::vector<double> ns;
  std::vector<double> det_avg;

  for (const VertexId n : {64u, 256u, 1024u}) {
    const Graph g = gen::path(n);

    sim::NetworkOptions options;
    options.max_message_bits = sim::congest_bits_for(n);
    auto [det_metrics, det_outputs] = sim::run_protocol(
        g, 1, algos::deterministic_greedy_mis(), options);
    if (!analysis::check_mis(g, det_outputs).ok()) {
      std::cerr << "INVALID deterministic MIS at n=" << n << "\n";
      return 1;
    }

    const std::uint32_t seeds = 5;
    double luby_total = 0.0;
    double sleeping_total = 0.0;
    for (std::uint32_t s = 0; s < seeds; ++s) {
      luby_total +=
          analysis::run_mis(MisEngine::kLubyA, g, n + s).metrics
              .node_avg_decided();
      sleeping_total +=
          analysis::run_mis(MisEngine::kSleeping, g, n + s).node_avg_awake;
    }

    ns.push_back(n);
    det_avg.push_back(det_metrics.node_avg_decided());
    table.add_row({analysis::Table::num(std::uint64_t{n}),
                   analysis::Table::num(det_metrics.node_avg_decided()),
                   analysis::Table::num(det_metrics.worst_finish()),
                   analysis::Table::num(luby_total / seeds),
                   analysis::Table::num(sleeping_total / seeds)});
  }
  std::cout << table.render();

  const auto fit = analysis::power_fit(ns, det_avg);
  std::cout << "\nnode-averaged decision growth of deterministic greedy on "
               "the sorted path: ~n^"
            << analysis::Table::num(fit.slope, 2)
            << " (linear frontier sweep); the randomized/sleeping engines "
               "stay flat or logarithmic on the same graph.\n";
  return 0;
}
