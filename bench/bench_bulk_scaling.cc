// Bulk-engine scaling: single-trial Sleeping MIS (Algorithm 1) at n up
// to 10M nodes on G(n, 8/n) — the regime the coroutine scheduler cannot
// reach (it pays ~K = ceil(3 log2 n) suspended coroutine frames per
// node, and its 64-bit virtual clock itself overflows past n ~ 2M).
//
// For each n the bench reports graph-build and run wall time, the
// paper's awake measures (node-averaged awake must stay flat — Theorem
// 1's O(1) — while the virtual schedule grows as 3(2^K - 1) ~ n^3), the
// simulation throughput in awake node-rounds per second, and a
// self-check that the output is a valid MIS. At small n it also runs
// the coroutine engine on the identical seed and asserts the two
// engines' outputs and metrics agree bitwise, then prints the speedup.
//
//   bench_bulk_scaling [max_n] [seeds]   (default: 10,000,000 / 1)
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "analysis/verify.h"
#include "bulk/sleeping_mis.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {

using namespace slumber;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Largest n at which the coroutine cross-check is cheap enough to run
// inside a bench (memory: ~K suspended frames per node).
constexpr VertexId kCoroutineLimit = 65536;

}  // namespace

int main(int argc, char** argv) {
  const VertexId max_n =
      argc > 1 ? static_cast<VertexId>(std::atoll(argv[1])) : 10'000'000;
  const std::uint32_t seeds =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 1;

  std::cout << analysis::banner(
      "bulk engine scaling / SleepingMIS on G(n, 8/n), up to n = " +
      std::to_string(max_n));

  std::vector<VertexId> sizes;
  for (std::uint64_t n = 65536; n < max_n; n *= 8) {
    sizes.push_back(static_cast<VertexId>(n));
  }
  if (sizes.empty() || sizes.back() != max_n) sizes.push_back(max_n);

  analysis::Table table({"n", "m", "build ms", "run ms", "awake/node",
                         "worst awake", "Mawake-rounds/s", "virtual rounds",
                         "speedup vs coroutine"});
  bool all_valid = true;

  for (const VertexId n : sizes) {
    for (std::uint32_t s = 0; s < seeds; ++s) {
      const std::uint64_t seed = analysis::trial_seed(19 * n, s);
      auto t0 = std::chrono::steady_clock::now();
      Rng rng(seed);
      const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
      const double build_ms = ms_since(t0);

      t0 = std::chrono::steady_clock::now();
      bulk::BulkOptions options;
      options.max_message_bits = sim::congest_bits_for(g.num_vertices());
      const bulk::BulkResult bulk_run =
          bulk::bulk_sleeping_mis(g, seed, {}, nullptr, options);
      const double run_ms = ms_since(t0);

      const bool valid = analysis::check_mis(g, bulk_run.outputs).ok();
      all_valid = all_valid && valid;

      std::string speedup = "-";
      if (n <= kCoroutineLimit) {
        t0 = std::chrono::steady_clock::now();
        const auto coro = analysis::run_mis(analysis::MisEngine::kSleeping, g,
                                            seed);
        const double coro_ms = ms_since(t0);
        const bool agree =
            coro.outputs == bulk_run.outputs &&
            coro.metrics.total_awake_node_rounds ==
                bulk_run.metrics.total_awake_node_rounds &&
            coro.metrics.makespan == bulk_run.metrics.makespan &&
            coro.metrics.total_messages == bulk_run.metrics.total_messages;
        if (!agree) {
          std::cerr << "ENGINE MISMATCH at n=" << n << " seed=" << seed
                    << "\n";
          return 1;
        }
        speedup = analysis::Table::num(coro_ms / std::max(run_ms, 1e-3), 1) +
                  "x";
      }

      const double awake_total =
          static_cast<double>(bulk_run.metrics.total_awake_node_rounds);
      table.add_row(
          {analysis::Table::num(std::uint64_t{n}),
           analysis::Table::num(std::uint64_t{g.num_edges()}),
           analysis::Table::num(build_ms, 0), analysis::Table::num(run_ms, 0),
           analysis::Table::num(bulk_run.metrics.node_avg_awake()),
           analysis::Table::num(bulk_run.metrics.worst_awake()),
           analysis::Table::num(awake_total / std::max(run_ms, 1e-3) / 1e3,
                                2),
           analysis::Table::num(
               static_cast<double>(bulk_run.virtual_makespan), 3),
           speedup + (valid ? "" : " INVALID")});
    }
  }

  std::cout << table.render();
  std::cout << "\nnode-averaged awake stays O(1) while the virtual schedule "
               "grows ~n^3; the bulk engine's cost tracks awake work only.\n";
  return all_valid ? 0 : 1;
}
