// Bulk-engine scaling: single-trial Sleeping MIS (Algorithm 1) at n up
// to 10M+ nodes on G(n, 8/n) — the regime the coroutine scheduler
// cannot reach (it pays ~K = ceil(3 log2 n) suspended coroutine frames
// per node, and its 64-bit virtual clock itself overflows past n ~ 2M).
//
// For each n the bench reports graph-build and run wall time, the
// paper's awake measures (node-averaged awake must stay flat — Theorem
// 1's O(1) — while the virtual schedule grows as 3(2^K - 1) ~ n^3), the
// simulation throughput in awake node-rounds per second, and a
// self-check that the output is a valid MIS. At small n it also runs
// the coroutine engine on the identical seed and asserts the two
// engines' outputs and metrics agree bitwise, then prints the speedup.
//
// With `threads > 1` the per-frame node scans shard over a thread pool
// (intra-trial parallelism); at n <= 1M every parallel trial is
// re-executed serially and compared bitwise — outputs, aggregate AND
// per-node metrics — which is the cross-check the bulk-large-n CI job
// drives with `bench_bulk_scaling 1000000 1 2 --gen sharded`.
//
// `--gen sharded` switches graph generation to the counter-based
// per-block schedule (gen::gnp_avg_degree_sharded_csr): the CSR build
// itself shards over the `threads` lanes, and at n <= 1M a sharded
// build is re-run serially and compared bitwise CSR-for-CSR (the
// generator-level determinism gate). Sharded graphs are memory-diet
// (no edge list) regardless of `--mem-diet`.
//
// `--mem-diet` switches to the 10^8-node memory envelope: the graph is
// streamed straight into CSR with no edge list and per-node
// sim::Metrics are disabled (aggregate counters, outputs, and the MIS
// validity check remain exact). `--first-touch` additionally
// initializes the CSR and the engine's hot per-node arrays from the
// lanes that will scan them (NUMA page placement; bitwise no-op).
// The 10^8 recipe:
//
//   bench_bulk_scaling 100000000 1 8 --mem-diet --gen sharded --first-touch
//
// The final lines `BENCH-SPLIT build_ms=<b> run_ms=<r>`,
// `BENCH-PHASE gen=<b>` / `BENCH-PHASE run=<r>`, and
// `BENCH-RSS peak_kb=<kb>` feed tools/run_bench.sh, which records the
// phase split and the peak RSS in the BENCH_*.json (slumber-bench-v3)
// baselines.
//
// Telemetry flags (`--obs-out FILE.jsonl`, `--obs-trace FILE.json`,
// `--progress`) stream the run's spans and counters out of band; see
// obs/obs.h. They never change any decided output.
//
//   bench_bulk_scaling [max_n] [seeds] [threads] [--mem-diet]
//       [--gen legacy|sharded] [--first-touch]
//       [--obs-out F] [--obs-trace F] [--progress]
//       (default: 10,000,000 / 1 / 1 / legacy)
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "analysis/verify.h"
#include "bulk/sleeping_mis.h"
#include "graph/generators.h"
#include "obs/obs.h"
#include "sim/network.h"
#include "util/parse.h"
#include "util/thread_pool.h"

namespace {

using namespace slumber;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Largest n at which the coroutine cross-check is cheap enough to run
// inside a bench (memory: ~K suspended frames per node).
constexpr VertexId kCoroutineLimit = 65536;

// Largest n at which a parallel trial (and a parallel sharded build)
// is re-run serially for the bitwise thread cross-check.
constexpr VertexId kThreadCheckLimit = 1'000'000;

/// util::parse_uint that exits instead of returning false (bench args
/// have no recovery path).
std::uint64_t parse_uint_or_die(const std::string& token, const char* what,
                                std::uint64_t max_value) {
  std::uint64_t value = 0;
  if (!util::parse_uint(token, what, &value, 0, max_value)) std::exit(2);
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  bool mem_diet = false;
  bool first_touch = false;
  gen::Schedule schedule = gen::Schedule::kLegacy;
  obs::Options obs_options;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mem-diet") {
      mem_diet = true;
    } else if (arg == "--first-touch") {
      first_touch = true;
    } else if (arg == "--obs-out" || arg == "--obs-trace") {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a path\n";
        return 2;
      }
      (arg == "--obs-out" ? obs_options.jsonl_path
                          : obs_options.trace_path) = argv[++i];
    } else if (arg == "--progress") {
      obs_options.progress = true;
    } else if (arg == "--gen") {
      if (i + 1 >= argc ||
          !gen::schedule_from_name(argv[++i], &schedule)) {
        std::cerr << "error: --gen needs one of:";
        for (const gen::Schedule s : gen::all_schedules()) {
          std::cerr << ' ' << gen::schedule_name(s);
        }
        std::cerr << '\n';
        return 2;
      }
    } else {
      args.push_back(arg);
    }
  }
  const VertexId max_n =
      !args.empty()
          ? static_cast<VertexId>(parse_uint_or_die(
                args[0], "[max_n]", std::numeric_limits<VertexId>::max()))
          : 10'000'000;
  const std::uint32_t seeds =
      args.size() > 1 ? static_cast<std::uint32_t>(parse_uint_or_die(
                            args[1], "[seeds]",
                            std::numeric_limits<std::uint32_t>::max()))
                      : 1;
  const unsigned threads =
      args.size() > 2
          ? static_cast<unsigned>(parse_uint_or_die(args[2], "[threads]", 1024))
          : 1;

  std::cout << analysis::banner(
      "bulk engine scaling / SleepingMIS on G(n, 8/n), up to n = " +
      std::to_string(max_n) + ", " + std::to_string(threads) + " lane(s), " +
      gen::schedule_name(schedule) + " generator" +
      (mem_diet ? ", memory diet" : "") +
      (first_touch ? ", first touch" : ""));

  // Declared before the pool so finalize() runs after every
  // instrumented worker has exited (the obs/obs.h contract).
  obs::Session obs_session(obs_options);
  if (obs_session.active()) {
    obs_session.set_info("tool", "bench_bulk_scaling");
    obs_session.set_info("max_n", std::to_string(max_n));
    obs_session.set_info("threads", std::to_string(threads));
    obs_session.set_info("gen", gen::schedule_name(schedule));
  }
  util::ThreadPool pool(threads == 0 ? 1 : threads);
  const bool sharded = schedule == gen::Schedule::kSharded;

  std::vector<VertexId> sizes;
  for (std::uint64_t n = 65536; n < max_n; n *= 8) {
    sizes.push_back(static_cast<VertexId>(n));
  }
  if (sizes.empty() || sizes.back() != max_n) sizes.push_back(max_n);

  analysis::Table table({"n", "m", "build ms", "run ms", "awake/node",
                         "worst awake", "Mawake-rounds/s", "virtual rounds",
                         "speedup vs coroutine"});
  bool all_valid = true;
  double total_build_ms = 0.0;
  double total_run_ms = 0.0;

  for (const VertexId n : sizes) {
    for (std::uint32_t s = 0; s < seeds; ++s) {
      const std::uint64_t seed = analysis::trial_seed(19 * n, s);
      auto t0 = std::chrono::steady_clock::now();
      Graph g;
      if (sharded) {
        // The sharded schedule's CSR build itself splits over the
        // lanes; output is bitwise identical at every lane count.
        gen::ShardedGnpOptions gen_options;
        gen_options.pool = pool.num_threads() > 1 ? &pool : nullptr;
        gen_options.first_touch = first_touch;
        g = gen::gnp_avg_degree_sharded_csr(n, 8.0, seed, gen_options);
      } else {
        Rng rng(seed);
        // The diet path streams the identical edge set into CSR with
        // no edge-list stage and leaves the RNG in the same state.
        g = mem_diet ? gen::gnp_avg_degree_csr(n, 8.0, rng)
                     : gen::gnp_avg_degree(n, 8.0, rng);
      }
      const double build_ms = ms_since(t0);
      total_build_ms += build_ms;

      // Generator-level determinism gate: a parallel sharded build
      // must reproduce the serial sharded build CSR for CSR.
      if (sharded && pool.num_threads() > 1 && n <= kThreadCheckLimit) {
        const Graph serial_g = gen::gnp_avg_degree_sharded_csr(n, 8.0, seed);
        if (!g.same_csr(serial_g)) {
          std::cerr << "GENERATOR LANE-COUNT MISMATCH at n=" << n
                    << " seed=" << seed << " (" << pool.num_threads()
                    << " lanes vs serial)\n";
          return 1;
        }
      }

      bulk::BulkOptions options;
      options.max_message_bits = sim::congest_bits_for(g.num_vertices());
      options.pool = pool.num_threads() > 1 ? &pool : nullptr;
      options.node_metrics = !mem_diet;
      options.first_touch = first_touch;

      t0 = std::chrono::steady_clock::now();
      const bulk::BulkResult bulk_run =
          bulk::bulk_sleeping_mis(g, seed, {}, nullptr, options);
      const double run_ms = ms_since(t0);
      total_run_ms += run_ms;

      const bool valid = analysis::check_mis(g, bulk_run.outputs).ok();
      all_valid = all_valid && valid;

      // Bitwise thread cross-check: the sharded trial must reproduce
      // the serial bulk trial exactly.
      if (pool.num_threads() > 1 && n <= kThreadCheckLimit) {
        bulk::BulkOptions serial_options = options;
        serial_options.pool = nullptr;
        const bulk::BulkResult serial_run =
            bulk::bulk_sleeping_mis(g, seed, {}, nullptr, serial_options);
        if (serial_run.outputs != bulk_run.outputs ||
            !(serial_run.metrics == bulk_run.metrics) ||
            serial_run.virtual_makespan != bulk_run.virtual_makespan) {
          std::cerr << "THREAD-COUNT MISMATCH at n=" << n << " seed=" << seed
                    << " (" << pool.num_threads() << " lanes vs serial)\n";
          return 1;
        }
      }

      std::string speedup = "-";
      if (n <= kCoroutineLimit && !mem_diet) {
        t0 = std::chrono::steady_clock::now();
        const auto coro = analysis::run_mis(analysis::MisEngine::kSleeping, g,
                                            seed);
        const double coro_ms = ms_since(t0);
        const bool agree =
            coro.outputs == bulk_run.outputs &&
            coro.metrics.total_awake_node_rounds ==
                bulk_run.metrics.total_awake_node_rounds &&
            coro.metrics.makespan == bulk_run.metrics.makespan &&
            coro.metrics.total_messages == bulk_run.metrics.total_messages;
        if (!agree) {
          std::cerr << "ENGINE MISMATCH at n=" << n << " seed=" << seed
                    << "\n";
          return 1;
        }
        speedup = analysis::Table::num(coro_ms / std::max(run_ms, 1e-3), 1) +
                  "x";
      }

      const double awake_total =
          static_cast<double>(bulk_run.metrics.total_awake_node_rounds);
      // The diet mode drops per-node metrics; the node average comes
      // from the exact aggregate counter, the per-node max is gone.
      const std::string avg_awake =
          mem_diet ? analysis::Table::num(awake_total /
                                          static_cast<double>(n))
                   : analysis::Table::num(bulk_run.metrics.node_avg_awake());
      const std::string worst_awake =
          mem_diet ? "-"
                   : analysis::Table::num(bulk_run.metrics.worst_awake());
      table.add_row(
          {analysis::Table::num(std::uint64_t{n}),
           analysis::Table::num(std::uint64_t{g.num_edges()}),
           analysis::Table::num(build_ms, 0), analysis::Table::num(run_ms, 0),
           avg_awake, worst_awake,
           analysis::Table::num(awake_total / std::max(run_ms, 1e-3) / 1e3,
                                2),
           analysis::Table::num(
               static_cast<double>(bulk_run.virtual_makespan), 3),
           speedup + (valid ? "" : " INVALID")});
    }
  }

  std::cout << table.render();
  std::cout << "\nnode-averaged awake stays O(1) while the virtual schedule "
               "grows ~n^3; the bulk engine's cost tracks awake work only.\n";
  std::cout << "BENCH-SPLIT build_ms=" << static_cast<long long>(total_build_ms)
            << " run_ms=" << static_cast<long long>(total_run_ms) << "\n";
  std::cout << "BENCH-PHASE gen=" << static_cast<long long>(total_build_ms)
            << "\n"
            << "BENCH-PHASE run=" << static_cast<long long>(total_run_ms)
            << "\n"
            << "BENCH-RSS peak_kb=" << obs::peak_rss_kb() << "\n";
  return all_valid ? 0 : 1;
}
