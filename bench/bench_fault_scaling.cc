// Fault-injection degradation across the bulk MIS protocols.
//
// For one G(n, 8/n) instance the bench runs every bulk MIS engine
// (Sleeping, Luby-A, Luby-B, CRT-greedy) under seven fault scenarios —
// fault-free, 1% symmetric message loss, Gilbert–Elliott burst loss,
// probabilistic fail-stop crashes, crashes with live recovery, mid-run
// leave/join churn, and loss combined with post-run membership churn
// plus incremental repair — and reports what each scenario costs:
// crashed and recovered nodes, live leave/rejoin counts, injected
// losses, the surviving MIS's size, and the damage to the MIS
// invariant on the alive-induced subgraph (independence violations and
// uncovered nodes), plus the repair effort (post-run churn passes or
// the live-dynamics final repair). Fault evaluation is pure keyed
// draws, so every cell is reproducible bit for bit at any lane count.
//
// The shared flag grammar (analysis/trial_spec.h) applies: --threads
// sets the intra-trial lane count, --gen picks the G(n, p) schedule
// (sharded builds CSR-only memory-diet graphs in parallel — the 10^7
// recipe). The paper-scale invocation behind the committed baseline's
// acceptance row:
//
//   bench_fault_scaling 10000000 --threads 8 --gen sharded
//
// The final `BENCH-SPLIT build_ms=<b> run_ms=<r>`,
// `BENCH-PHASE gen=<b>` / `BENCH-PHASE run=<r>`, and
// `BENCH-RSS peak_kb=<kb>` lines feed tools/run_bench.sh
// (slumber-bench-v3 baselines). The shared telemetry flags (--obs-out,
// --obs-trace, --progress) work here too; see obs/obs.h.
//
//   bench_fault_scaling [n] [seed] [--threads N] [--gen legacy|sharded]
//       [--obs-out F] [--obs-trace F] [--progress]
//       (default: 1,000,000 / 1)
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "analysis/trial_spec.h"
#include "analysis/verify.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "obs/obs.h"
#include "util/parse.h"
#include "util/thread_pool.h"

namespace {

using namespace slumber;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::uint64_t parse_or_die(const std::string& token, const char* what) {
  std::uint64_t value = 0;
  if (!util::parse_uint(token, what, &value)) std::exit(2);
  return value;
}

/// Damage to the MIS invariant on the alive-induced subgraph: edges
/// with two alive MIS endpoints, and alive nodes that are neither in
/// the MIS nor dominated by an alive MIS neighbor (undecided alive
/// nodes count as uncovered).
struct Damage {
  std::uint64_t independence_violations = 0;
  std::uint64_t uncovered = 0;
};

Damage measure_damage(const Graph& g, const analysis::MisRun& run) {
  const auto alive = [&](VertexId v) {
    return run.alive.empty() || run.alive[v] != 0;
  };
  Damage d;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!alive(v)) continue;
    if (run.outputs[v] == 1) {
      for (const VertexId u : g.neighbors(v)) {
        // Count each bad edge once.
        if (u > v && alive(u) && run.outputs[u] == 1) {
          ++d.independence_violations;
        }
      }
      continue;
    }
    bool covered = false;
    if (run.outputs[v] == 0) {
      for (const VertexId u : g.neighbors(v)) {
        if (alive(u) && run.outputs[u] == 1) {
          covered = true;
          break;
        }
      }
    }
    if (!covered) ++d.uncovered;
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  analysis::TrialSpec spec;
  spec.exec = analysis::ExecEngine::kBulk;
  if (!analysis::parse_trial_flags(&args, &spec)) return 2;
  const VertexId n =
      args.size() > 1 ? static_cast<VertexId>(parse_or_die(args[1], "<n>"))
                      : 1'000'000;
  const std::uint64_t seed = args.size() > 2 ? parse_or_die(args[2], "<seed>")
                                             : 1;
  const unsigned threads =
      spec.threads != 0 ? spec.threads : analysis::default_trial_threads();
  // Declared before the pool so finalize() runs after every
  // instrumented worker has exited (the obs/obs.h contract).
  obs::Session obs_session(spec.obs);
  if (obs_session.active()) {
    obs_session.set_info("tool", "bench_fault_scaling");
    obs_session.set_info("n", std::to_string(n));
    obs_session.set_info("threads", std::to_string(threads));
    obs_session.set_info("gen", gen::schedule_name(spec.schedule));
  }
  util::ThreadPool pool(threads);

  const auto build_start = std::chrono::steady_clock::now();
  gen::MakeOptions make_options;
  make_options.schedule = spec.schedule;
  make_options.pool = &pool;
  const Graph g = gen::make(gen::Family::kGnpSparse, n, seed, make_options);
  const double build_ms = ms_since(build_start);
  std::cout << "graph: " << g.summary() << " (" << threads << " lanes, "
            << gen::schedule_name(spec.schedule) << " gen, build "
            << analysis::Table::num(build_ms, 0) << " ms)\n\n";

  struct Scenario {
    std::string name;
    fault::FaultPlan plan;
  };
  std::vector<Scenario> scenarios(7);
  scenarios[0].name = "none";
  scenarios[1].name = "loss 1%";
  scenarios[1].plan.loss_prob = 0.01;
  scenarios[2].name = "burst loss";
  // Gilbert–Elliott per-edge channel: ~9% stationary loss arriving in
  // bursts (a bad epoch persists w.p. 0.8), epochs of 8 rounds.
  scenarios[2].plan.burst = {.p_on = 0.02, .p_off = 0.2, .epoch_len = 8};
  scenarios[3].name = "crash";
  // A handful of scheduled crashes plus a per-awake-round rate sized so
  // hundreds of nodes fail over an O(log n) awake lifetime.
  scenarios[3].plan.crash_schedule = {{0, 1}, {1, 4}, {2, 16}};
  scenarios[3].plan.crash_prob = 1e-6;
  scenarios[4].name = "crash+recover";
  scenarios[4].plan.crash_schedule = {{0, 1}, {1, 4}, {2, 16}};
  scenarios[4].plan.crash_prob = 1e-6;
  scenarios[4].plan.recover.mean_down = 16;
  scenarios[5].name = "live churn";
  // Mid-run leave/join between bulk frames; leavers return after a
  // Geometric(0.2) downtime and re-enter in a reset state.
  scenarios[5].plan.live_churn = {.leave_prob = 1e-5, .join_prob = 0.2};
  scenarios[6].name = "loss+churn";
  scenarios[6].plan.loss_prob = 0.01;
  scenarios[6].plan.churn.leave_prob = 0.05;
  scenarios[6].plan.churn.join_prob = 0.5;
  scenarios[6].plan.churn.batches = 3;

  analysis::Table table({"protocol", "scenario", "crashed", "recovered",
                         "live -/+", "lost msgs", "alive", "MIS size",
                         "indep viol", "uncovered", "repair", "valid",
                         "run ms"});
  const auto run_start = std::chrono::steady_clock::now();
  bool all_clean_valid = true;
  bool churn_valid = true;
  bool live_valid = true;
  for (const analysis::MisEngine engine :
       {analysis::MisEngine::kSleeping, analysis::MisEngine::kLubyA,
        analysis::MisEngine::kLubyB, analysis::MisEngine::kGreedy}) {
    for (const Scenario& scenario : scenarios) {
      const auto start = std::chrono::steady_clock::now();
      const fault::FaultPlan* plan =
          scenario.plan.empty() ? nullptr : &scenario.plan;
      const analysis::MisRun run = analysis::run_mis(
          engine, g, seed, {.exec = analysis::ExecEngine::kBulk, .pool = &pool,
                            .fault = plan, .node_metrics = false});
      const double run_ms = ms_since(start);
      const Damage damage = measure_damage(g, run);
      std::uint64_t alive = n;
      for (const std::uint8_t a : run.alive) alive -= a == 0 ? 1 : 0;
      if (plan == nullptr) all_clean_valid &= run.valid;
      if (scenario.plan.churn.enabled()) churn_valid &= run.valid;
      if (scenario.plan.has_live_dynamics()) live_valid &= run.valid;
      std::string live_column = "-";
      live_column += analysis::Table::num(run.metrics.live_leaves);
      live_column += "/+";
      live_column += analysis::Table::num(run.metrics.live_rejoins);
      table.add_row({analysis::engine_name(engine), scenario.name,
                     analysis::Table::num(run.metrics.crashed_nodes),
                     analysis::Table::num(run.metrics.recovered_nodes),
                     live_column,
                     analysis::Table::num(run.metrics.injected_losses),
                     analysis::Table::num(alive),
                     analysis::Table::num(run.mis_size),
                     analysis::Table::num(damage.independence_violations),
                     analysis::Table::num(damage.uncovered),
                     analysis::Table::num(run.metrics.churn_repair_rounds +
                                          run.metrics.live_repair_rounds),
                     run.valid ? "yes" : "NO",
                     analysis::Table::num(run_ms, 0)});
    }
  }
  std::cout << table.render();
  const double run_ms_total = ms_since(run_start);
  std::cout << "\nBENCH-SPLIT build_ms=" << static_cast<std::uint64_t>(build_ms)
            << " run_ms=" << static_cast<std::uint64_t>(run_ms_total) << "\n"
            << "BENCH-PHASE gen=" << static_cast<std::uint64_t>(build_ms)
            << "\n"
            << "BENCH-PHASE run=" << static_cast<std::uint64_t>(run_ms_total)
            << "\n"
            << "BENCH-RSS peak_kb=" << obs::peak_rss_kb() << "\n";
  if (!all_clean_valid) {
    std::cerr << "FAULT-SCALING FAILURE: a fault-free run produced an "
                 "invalid MIS\n";
    return 1;
  }
  if (!churn_valid) {
    std::cerr << "FAULT-SCALING FAILURE: churn repair left an invalid MIS "
                 "on the alive subgraph\n";
    return 1;
  }
  if (!live_valid) {
    std::cerr << "FAULT-SCALING FAILURE: a live-dynamics run's final repair "
                 "left an invalid MIS on the alive subgraph\n";
    return 1;
  }
  return 0;
}
