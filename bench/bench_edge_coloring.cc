// E19 -- (2*Delta - 1)-edge-coloring via Luby coloring of the line
// graph (the third member of the Barenboim-Tzur problem family,
// paper Section 1.5). Since Luby coloring finishes a constant fraction
// of L(G)-vertices per iteration, the node-averaged DECISION round on
// the line graph is O(1) -- the same contrast the paper draws for
// vertex coloring -- and the palette never exceeds 2*Delta - 1.
#include <iostream>

#include "algos/edge_coloring.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "graph/generators.h"

namespace {
using namespace slumber;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E19 / (2D-1)-edge-coloring on G(n, 8/n), 5 seeds: colors vs the "
      "2*Delta-1 bound, O(1) node-averaged decision");

  const std::uint32_t seeds = 5;
  analysis::Table table({"n", "Delta", "2D-1 bound", "colors used",
                         "avg decided (L)", "worst rounds (L)", "valid"});
  std::vector<double> ns;
  std::vector<double> avg_decided;

  for (const VertexId n : {64u, 256u, 1024u, 4096u}) {
    double delta_total = 0.0;
    double bound_total = 0.0;
    double used_total = 0.0;
    double decided_total = 0.0;
    double worst_total = 0.0;
    bool all_valid = true;
    for (std::uint32_t s = 0; s < seeds; ++s) {
      Rng rng(n * 3 + s);
      const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
      const auto result = algos::edge_coloring_via_line_graph(g, n + s);
      all_valid = all_valid && algos::check_edge_coloring(g, result.colors);
      delta_total += g.max_degree();
      bound_total += 2.0 * g.max_degree() - 1.0;
      used_total += static_cast<double>(result.colors_used);
      decided_total += result.line_graph_metrics.node_avg_decided();
      worst_total +=
          static_cast<double>(result.line_graph_metrics.worst_finish());
    }
    if (!all_valid) {
      std::cerr << "INVALID edge coloring at n=" << n << "\n";
      return 1;
    }
    ns.push_back(n);
    avg_decided.push_back(decided_total / seeds);
    table.add_row({analysis::Table::num(std::uint64_t{n}),
                   analysis::Table::num(delta_total / seeds, 1),
                   analysis::Table::num(bound_total / seeds, 1),
                   analysis::Table::num(used_total / seeds, 1),
                   analysis::Table::num(decided_total / seeds),
                   analysis::Table::num(worst_total / seeds, 1), "yes"});
  }
  std::cout << table.render();

  const auto fit = analysis::log_fit(ns, avg_decided);
  std::cout << "\nnode-averaged decision slope vs log2(n): "
            << analysis::Table::num(fit.slope, 3)
            << " (O(1), matching the coloring contrast of Section 1.5).\n";
  return 0;
}
