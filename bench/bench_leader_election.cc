// E24 -- Leader election under the decision-instant (Feuilloley) notion
// of node-averaged complexity (paper Section 1.5). Flood-max makes a
// loser decide the moment ANY better priority reaches it -- not just
// the eventual leader's -- so a node whose k-th-highest rank waits only
// for its nearest higher-ranked node, at expected distance ~ n/k on a
// cycle. Averaging the harmonic series gives Theta(log n) node-averaged
// decided complexity on cycles, empirically reproducing Feuilloley's
// O(log n) average bound with the classic baseline, while termination
// stays at the Theta(n) diameter bound (his worst-case lower bound).
#include <iostream>

#include "algos/leader_election.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "sim/network.h"

namespace {
using namespace slumber;

struct Row {
  double avg_decided = 0.0;
  double worst_finish = 0.0;
};

Row measure(const Graph& g, std::uint64_t base_seed, std::uint32_t seeds) {
  Row row;
  algos::LeaderElectionOptions options;
  options.diameter_bound = static_cast<std::uint64_t>(
      std::max<std::int64_t>(diameter(g), 1));
  for (std::uint32_t s = 0; s < seeds; ++s) {
    auto [metrics, outputs] = sim::run_protocol(
        g, base_seed + s, algos::flood_max_leader_election(options));
    std::uint64_t leaders = 0;
    for (std::int64_t out : outputs) leaders += out == 1 ? 1 : 0;
    if (leaders != 1) {
      std::cerr << "INVALID leader election (" << leaders << " leaders)\n";
      std::exit(1);
    }
    row.avg_decided += metrics.node_avg_decided();
    row.worst_finish += static_cast<double>(metrics.worst_finish());
  }
  row.avg_decided /= seeds;
  row.worst_finish /= seeds;
  return row;
}

}  // namespace

int main() {
  std::cout << analysis::banner(
      "E24 / flood-max leader election, 5 seeds: node-averaged decided "
      "round vs worst-case (termination) round");

  const std::uint32_t seeds = 5;
  analysis::Table table(
      {"family", "n", "avg decided", "worst rounds", "ratio"});

  for (const VertexId n : {64u, 256u, 1024u}) {
    struct Case {
      std::string name;
      Graph g;
    };
    Rng rng(n);
    std::vector<Case> cases;
    cases.push_back({"star", gen::star(n)});
    cases.push_back({"cycle", gen::cycle(n)});
    cases.push_back({"gnp avg-deg 8", gen::gnp_avg_degree(n, 8.0, rng)});
    for (const Case& c : cases) {
      if (!is_connected(c.g)) continue;
      const Row row = measure(c.g, 17 * n + 5, seeds);
      table.add_row({c.name, analysis::Table::num(std::uint64_t{n}),
                     analysis::Table::num(row.avg_decided),
                     analysis::Table::num(row.worst_finish, 1),
                     analysis::Table::num(
                         row.worst_finish / std::max(row.avg_decided, 1e-9),
                         1)});
    }
  }
  std::cout << table.render();
  std::cout << "\nShape check: stars/expanders decide in O(1) on average; "
               "the cycle's decided average grows ~log n (Feuilloley's "
               "bound) while its termination stays Theta(n) -- the same "
               "average-vs-worst separation the sleeping model exploits "
               "for MIS.\n";
  return 0;
}
