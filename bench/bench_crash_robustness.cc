// E23 -- Fail-stop robustness sweep. The paper's model assumes fault-free
// synchronous execution; this bench quantifies degradation when nodes
// crash (silently, fail-stop) at a per-awake-round rate. Reported per
// engine and rate: fraction of runs where the surviving decided output
// violates independence, mean fraction of undecided survivors (coverage
// holes), and mean crashed fraction. SleepingMIS's fixed sleep schedule
// means a crashed node's silence is indistinguishable from sleep -- the
// elimination message it never sent is exactly the failure mode the
// deferred-decision machinery (Lemma 6) does NOT tolerate.
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "algos/matching.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;
using analysis::MisEngine;

struct Outcome {
  double independence_violation_runs = 0.0;
  double undecided_fraction = 0.0;
  double crashed_fraction = 0.0;
};

Outcome sweep(MisEngine engine, double crash_prob, std::uint32_t seeds) {
  Outcome out;
  const VertexId n = 512;
  for (std::uint32_t s = 0; s < seeds; ++s) {
    Rng rng(n + s);
    const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
    fault::FaultPlan plan;
    plan.crash_prob = crash_prob;
    sim::NetworkOptions options;
    options.max_message_bits = sim::congest_bits_for(n);
    options.fault = &plan;
    auto [metrics, outputs] =
        sim::run_protocol(g, 1000 + s, algos::mis_protocol(engine), options);

    bool violated = false;
    for (const Edge& e : g.edges()) {
      if (outputs[e.u] == 1 && outputs[e.v] == 1) violated = true;
    }
    out.independence_violation_runs += violated ? 1.0 : 0.0;
    std::uint64_t undecided = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (outputs[v] == -1 && !metrics.node[v].crashed) ++undecided;
    }
    out.undecided_fraction += static_cast<double>(undecided) / n;
    out.crashed_fraction +=
        static_cast<double>(metrics.crashed_nodes) / n;
  }
  out.independence_violation_runs /= seeds;
  out.undecided_fraction /= seeds;
  out.crashed_fraction /= seeds;
  return out;
}

}  // namespace

int main() {
  std::cout << analysis::banner(
      "E23 / fail-stop sweep on G(512, 8/n), 10 seeds: independence "
      "violations, stranded (undecided) survivors, crashed fraction");

  const std::uint32_t seeds = 10;
  analysis::Table table({"crash p", "engine", "indep viol (runs)",
                         "undecided frac", "crashed frac"});
  for (const double p : {0.0, 0.0005, 0.002, 0.01}) {
    for (const MisEngine engine :
         {MisEngine::kGreedy, MisEngine::kLubyA, MisEngine::kSleeping,
          MisEngine::kFastSleeping}) {
      const Outcome out = sweep(engine, p, seeds);
      table.add_row({analysis::Table::num(p, 4),
                     analysis::engine_name(engine),
                     analysis::Table::num(out.independence_violation_runs, 2),
                     analysis::Table::num(out.undecided_fraction, 4),
                     analysis::Table::num(out.crashed_fraction, 4)});
    }
  }
  std::cout << table.render();
  std::cout << "\nReading: at p = 0 every engine is perfect. Under crashes, "
               "iterating engines (greedy/Luby) strand only the crashed "
               "nodes' neighborhoods; the fixed-schedule sleeping engines "
               "additionally mistake a crashed left-recursion winner's "
               "silence for 'no MIS neighbor', which can break independence "
               "-- the quantified price of the model's reliability "
               "assumption.\n";
  return 0;
}
