// E16 -- The Section 1.5 comparison: Barenboim-Tzur achieve
// O(a + log* n) node-averaged MIS in the traditional model, where a is
// the arboricity -- which "can be Theta(n) in general". The sleeping
// model removes the arboricity dependence entirely.
//
// We run our BT-style arboricity-aware MIS (simplified, O(a + log n)
// node-averaged) and SleepingMIS across families of increasing
// arboricity at fixed n: the BT-style column grows with a, the
// sleeping column does not.
#include <iostream>

#include "algos/arboricity_mis.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "analysis/verify.h"
#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "sim/network.h"

namespace {
using namespace slumber;

constexpr VertexId kN = 256;
constexpr std::uint32_t kSeeds = 5;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E16 / Sec 1.5: node-averaged cost vs arboricity, n = " +
      std::to_string(kN));

  struct Workload {
    std::string name;
    Graph graph;
  };
  Rng rng(3);
  std::vector<Workload> workloads;
  workloads.push_back({"random_tree (a=1)", gen::random_tree(kN, rng)});
  workloads.push_back({"cycle (a~2)", gen::cycle(kN)});
  workloads.push_back({"gnp avg-deg 8", gen::gnp_avg_degree(kN, 8.0, rng)});
  workloads.push_back({"gnp dense p=0.25", gen::gnp(kN, 0.25, rng)});
  workloads.push_back(
      {"lollipop (clique n/2)", gen::lollipop(kN, kN / 2)});
  workloads.push_back({"complete (a~n/2)", gen::complete(kN)});

  analysis::Table table({"workload", "degeneracy (a bound)",
                         "BT-style node-avg awake", "BT-style worst rounds",
                         "SleepingMIS node-avg awake"});
  for (const Workload& w : workloads) {
    const auto degeneracy = degeneracy_order(w.graph).degeneracy;
    algos::ArboricityMisOptions options;
    options.arboricity_bound = std::max<std::uint32_t>(1, degeneracy);

    double bt_awake = 0.0;
    double bt_rounds = 0.0;
    double sleeping_awake = 0.0;
    for (std::uint32_t s = 0; s < kSeeds; ++s) {
      sim::NetworkOptions net_options;
      net_options.max_message_bits =
          sim::congest_bits_for(w.graph.num_vertices());
      auto bt = sim::run_protocol(w.graph, 100 + s,
                                  algos::arboricity_mis(options), net_options);
      auto sleeping = sim::run_protocol(w.graph, 100 + s,
                                        core::sleeping_mis(), net_options);
      if (!analysis::check_mis(w.graph, bt.outputs).ok() ||
          !analysis::check_mis(w.graph, sleeping.outputs).ok()) {
        std::cerr << "INVALID run on " << w.name << "\n";
        return 1;
      }
      bt_awake += bt.metrics.node_avg_awake();
      bt_rounds += static_cast<double>(bt.metrics.makespan);
      sleeping_awake += sleeping.metrics.node_avg_awake();
    }
    table.add_row({w.name, analysis::Table::num(std::uint64_t{degeneracy}),
                   analysis::Table::num(bt_awake / kSeeds),
                   analysis::Table::num(bt_rounds / kSeeds, 0),
                   analysis::Table::num(sleeping_awake / kSeeds)});
  }
  std::cout << table.render();
  std::cout
      << "\nReading: the traditional-model baseline's node average is never\n"
         "O(1): it pays the Theta(log n) peeling phase everywhere (~18 at\n"
         "n=256) and blows up whenever the (partition, id) priority order\n"
         "forms long dependency chains -- the cycle (one frontier sweeping\n"
         "sequential ids) and the lollipop's path tail. SleepingMIS is\n"
         "flat at ~6.5 across the entire column: the sleeping model\n"
         "removes both the log n term and the topology dependence, which\n"
         "is the Section 1.5 comparison (O(a + log* n) vs O(1)).\n";
  return 0;
}
