// E13 -- Corollary 1: Algorithm 1 (and Algorithm 2, and the CRT
// distributed greedy) all compute the lexicographically-first MIS of
// their respective random orders. We check the equivalence across many
// seeds and families (must hold on 100% of runs) and report the MIS
// sizes per engine for the same graph -- same-distribution orders give
// statistically indistinguishable sizes.
#include <iostream>

#include "algos/greedy.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "core/fast_sleeping_mis.h"
#include "core/rank.h"
#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;

constexpr std::uint32_t kSeeds = 25;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E13 / Corollary 1: lexicographically-first equivalence, " +
      std::to_string(kSeeds) + " seeds x families, n = 96");

  analysis::Table table({"family", "Alg1 == lex-first", "Alg2 == lex-first",
                         "CRT == lex-first", "mean |MIS| Alg1",
                         "mean |MIS| CRT"});
  for (const gen::Family family : gen::core_families()) {
    std::uint32_t alg1_match = 0;
    std::uint32_t alg2_match = 0;
    std::uint32_t crt_match = 0;
    std::vector<double> size1;
    std::vector<double> size_crt;
    for (std::uint32_t s = 0; s < kSeeds; ++s) {
      const Graph g = gen::make(family, 96, 42 + s);
      sim::NetworkOptions options;
      options.max_message_bits = sim::congest_bits_for(g.num_vertices());

      // Algorithm 1 vs sequential greedy on the traced coin bits.
      core::RecursionTrace trace1;
      auto run1 = sim::run_protocol(g, 11 + s,
                                    core::sleeping_mis({}, &trace1), options);
      const auto order1 =
          core::greedy_order_from_bits(trace1.bits, trace1.levels);
      const auto lex1 = core::lex_first_mis(g, order1);
      bool match1 = true;
      double count1 = 0;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        match1 = match1 && run1.outputs[v] == static_cast<std::int64_t>(lex1[v]);
        count1 += run1.outputs[v] == 1;
      }
      alg1_match += match1;
      size1.push_back(count1);

      // Algorithm 2 vs sequential greedy on (bits, base ranks).
      core::RecursionTrace trace2;
      auto run2 = sim::run_protocol(
          g, 11 + s, core::fast_sleeping_mis({}, &trace2), options);
      const auto order2 = core::greedy_order_from_bits_and_base(
          trace2.bits, trace2.levels, trace2.base_rank);
      const auto lex2 = core::lex_first_mis(g, order2);
      bool match2 = true;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        match2 = match2 && run2.outputs[v] == static_cast<std::int64_t>(lex2[v]);
      }
      alg2_match += match2;

      // Distributed greedy vs sequential greedy on the same ranks.
      std::vector<std::uint64_t> ranks;
      algos::GreedyOptions gopts;
      gopts.ranks_out = &ranks;
      auto run3 = sim::run_protocol(
          g, 11 + s, algos::distributed_greedy_mis(gopts), options);
      const auto lex3 = algos::sequential_greedy_mis(g, ranks);
      bool match3 = true;
      double count3 = 0;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        match3 = match3 && run3.outputs[v] == static_cast<std::int64_t>(lex3[v]);
        count3 += run3.outputs[v] == 1;
      }
      crt_match += match3;
      size_crt.push_back(count3);
    }
    table.add_row({gen::family_name(family),
                   std::to_string(alg1_match) + "/" + std::to_string(kSeeds),
                   std::to_string(alg2_match) + "/" + std::to_string(kSeeds),
                   std::to_string(crt_match) + "/" + std::to_string(kSeeds),
                   analysis::Table::num(analysis::summarize(size1).mean, 1),
                   analysis::Table::num(analysis::summarize(size_crt).mean, 1)});
  }
  std::cout << table.render();
  std::cout << "\nPaper: Corollary 1 -- both sleeping algorithms produce "
               "exactly the lexicographically-first MIS of their random "
               "order (all cells must read " +
                   std::to_string(kSeeds) + "/" + std::to_string(kSeeds) +
                   ").\n";
  return 0;
}
