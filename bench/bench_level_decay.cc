// E5 -- Validates Lemma 7: E[Z_{K-i}] <= (3/4)^i * n, the geometric
// decay of the number of nodes participating at depth i of the
// recursion tree. This is what makes the total awake work O(n)
// (Lemma 8: E[C] = O(1) * sum_k E[Z_k] <= O(n) * sum (3/4)^i).
#include <cmath>
#include <iostream>

#include "analysis/table.h"
#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;

constexpr std::uint32_t kSeeds = 60;
constexpr VertexId kN = 256;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E5 / Lemma 7: E[Z_{K-i}] vs (3/4)^i n, n=" + std::to_string(kN) +
      ", G(n, 8/n) and star, " + std::to_string(kSeeds) + " seeds");

  for (const gen::Family family :
       {gen::Family::kGnpSparse, gen::Family::kStar, gen::Family::kCycle}) {
    std::vector<double> z_by_depth;
    std::uint32_t levels = 0;
    for (std::uint32_t s = 0; s < kSeeds; ++s) {
      const Graph g = gen::make(family, kN, 40 + s);
      core::RecursionTrace trace;
      sim::run_protocol(g, 70 + s, core::sleeping_mis({}, &trace));
      levels = trace.levels;
      const auto z = trace.z_by_level();
      if (z_by_depth.size() < z.size()) z_by_depth.resize(z.size(), 0.0);
      for (std::uint32_t k = 0; k <= levels; ++k) {
        z_by_depth[levels - k] += static_cast<double>(z[k]);
      }
    }
    for (double& z : z_by_depth) z /= kSeeds;

    analysis::Table table({"depth i", "measured E[Z_{K-i}]",
                           "bound (3/4)^i n", "ratio", "total awake so far"});
    const double n0 = z_by_depth[0];
    double cumulative = 0.0;
    for (std::uint32_t depth = 0;
         depth < std::min<std::size_t>(z_by_depth.size(), 12); ++depth) {
      cumulative += z_by_depth[depth];
      const double bound = std::pow(0.75, depth) * n0;
      table.add_row({analysis::Table::num(std::uint64_t{depth}),
                     analysis::Table::num(z_by_depth[depth], 2),
                     analysis::Table::num(bound, 2),
                     analysis::Table::num(
                         bound > 0 ? z_by_depth[depth] / bound : 0.0, 3),
                     analysis::Table::num(cumulative, 1)});
    }
    std::cout << "\nfamily: " << gen::family_name(family) << "\n"
              << table.render();
    double total = 0.0;
    for (double z : z_by_depth) total += z;
    std::cout << "sum_k E[Z_k] = " << analysis::Table::num(total, 1)
              << " (paper bound: 4n = " << 4 * kN
              << "; this /n is the O(1) node-averaged awake constant)\n";
  }
  return 0;
}
