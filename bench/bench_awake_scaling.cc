// E6 -- Lemma 8 / Theorem 1-2 headline: node-averaged awake complexity
// of the sleeping algorithms is O(1) -- flat in n -- while every
// traditional baseline keeps nodes awake for its full (growing) runtime.
//
// Sweeps n = 2^5 .. 2^12 on G(n, 8/n); prints the awake average per
// engine per n and the log2(n) regression slope (0 = constant).
#include <iostream>

#include "analysis/csv.h"
#include "analysis/experiment.h"
#include "analysis/parallel.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "graph/generators.h"

namespace {
using namespace slumber;
using analysis::MisEngine;

constexpr std::uint32_t kSeeds = 5;
}  // namespace

int main() {
  const std::vector<VertexId> sizes = {32,  64,   128,  256,
                                       512, 1024, 2048, 4096};
  std::cout << analysis::banner(
      "E6 / node-averaged awake complexity vs n, G(n, 8/n), " +
      std::to_string(kSeeds) + " seeds");

  std::vector<std::string> header = {"n"};
  for (const MisEngine engine : analysis::all_engines()) {
    header.push_back(analysis::engine_name(engine));
  }
  analysis::Table table(header);

  // One flat trial list over (n, engine, seed): sharding all cells at
  // once keeps every core busy even when a cell has few seeds. Each
  // trial's seed matches what aggregate_mis would use for its cell, and
  // the per-cell reduction below runs in trial order, so the numbers are
  // bitwise identical to the serial per-cell path.
  const std::vector<MisEngine> engines = analysis::all_engines();
  const std::size_t num_trials = sizes.size() * engines.size() * kSeeds;
  const auto runs = analysis::parallel_trials(
      num_trials, 0, [&](std::size_t t) {
        const VertexId n = sizes[t / (engines.size() * kSeeds)];
        const MisEngine engine = engines[(t / kSeeds) % engines.size()];
        const std::uint64_t seed = analysis::trial_seed(
            31 * n, static_cast<std::uint32_t>(t % kSeeds));
        Rng rng(seed);
        const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
        return analysis::run_mis(engine, g, seed);
      });

  std::map<MisEngine, std::vector<double>> series;
  std::vector<double> ns;
  std::size_t cursor = 0;
  for (const VertexId n : sizes) {
    ns.push_back(n);
    std::vector<std::string> row = {analysis::Table::num(std::uint64_t{n})};
    for (const MisEngine engine : engines) {
      const auto agg =
          analysis::aggregate_runs(&runs[cursor], &runs[cursor] + kSeeds);
      cursor += kSeeds;
      series[engine].push_back(agg.node_avg_awake_mean);
      row.push_back(analysis::Table::num(agg.node_avg_awake_mean));
    }
    table.add_row(row);
  }
  std::cout << table.render();

  // Optional machine-readable dump for external plotting.
  if (const auto path = analysis::csv_path_from_env("awake_scaling")) {
    analysis::CsvWriter csv(*path, header);
    for (std::size_t i = 0; i < ns.size(); ++i) {
      std::vector<double> row = {ns[i]};
      for (const MisEngine engine : analysis::all_engines()) {
        row.push_back(series[engine][i]);
      }
      csv.add_row(row);
    }
    std::cout << "(series written to " << *path << ")\n";
  }

  std::cout << analysis::banner("slope of awake-average vs log2(n)");
  analysis::Table fits({"algorithm", "slope", "interpretation"});
  for (const MisEngine engine : analysis::all_engines()) {
    const auto fit = analysis::log_fit(ns, series[engine]);
    const bool sleeping = analysis::engine_uses_sleeping(engine);
    fits.add_row({analysis::engine_name(engine),
                  analysis::Table::num(fit.slope, 3),
                  sleeping ? "paper: O(1) guaranteed -> slope ~ 0"
                           : "no O(1) bound known (open question)"});
  }
  std::cout << fits.render();
  std::cout
      << "\nReading: the sleeping algorithms' flat average is a theorem\n"
         "(holds for every topology); the baselines' small averages here\n"
         "are an empirical property of benign workloads -- the paper\n"
         "(Sec. 1.3) notes it is open whether any traditional algorithm\n"
         "achieves o(log n) node-averaged complexity on general graphs.\n"
         "Their worst-case awake time equals their full round complexity\n"
         "(see bench_table1 'worst awake'), which does grow with n.\n";
  return 0;
}
