// E14 -- google-benchmark microbenchmarks of the simulator substrate:
// protocol throughput (awake node-rounds per second), event-skipping
// cost, and end-to-end engine runtimes. These bound the experiment
// harness's own cost, and document that simulation effort tracks awake
// work (Lemma 8's O(n)), not the Theta(n^3) virtual clock.
#include <benchmark/benchmark.h>

#include "algos/greedy.h"
#include "algos/luby.h"
#include "core/fast_sleeping_mis.h"
#include "core/schedule.h"
#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;

Graph make_gnp(VertexId n, std::uint64_t seed) {
  Rng rng(seed);
  return gen::gnp_avg_degree(n, 8.0, rng);
}

void BM_SleepingMis(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = make_gnp(n, 1);
  std::uint64_t seed = 0;
  std::uint64_t awake_rounds = 0;
  for (auto _ : state) {
    auto result = sim::run_protocol(g, ++seed, core::sleeping_mis());
    awake_rounds += result.metrics.total_awake_node_rounds;
    benchmark::DoNotOptimize(result.outputs);
  }
  state.counters["awake_node_rounds/s"] = benchmark::Counter(
      static_cast<double>(awake_rounds), benchmark::Counter::kIsRate);
  state.counters["virtual_rounds"] = static_cast<double>(
      core::schedule_duration(core::recursion_depth(n)));
}
BENCHMARK(BM_SleepingMis)->Arg(64)->Arg(256)->Arg(1024);

void BM_FastSleepingMis(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = make_gnp(n, 2);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto result = sim::run_protocol(g, ++seed, core::fast_sleeping_mis());
    benchmark::DoNotOptimize(result.outputs);
  }
}
BENCHMARK(BM_FastSleepingMis)->Arg(64)->Arg(256)->Arg(1024);

void BM_LubyA(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = make_gnp(n, 3);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto result = sim::run_protocol(g, ++seed, algos::luby_a());
    benchmark::DoNotOptimize(result.outputs);
  }
}
BENCHMARK(BM_LubyA)->Arg(64)->Arg(256)->Arg(1024);

void BM_DistributedGreedy(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  const Graph g = make_gnp(n, 4);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto result = sim::run_protocol(g, ++seed, algos::distributed_greedy_mis());
    benchmark::DoNotOptimize(result.outputs);
  }
}
BENCHMARK(BM_DistributedGreedy)->Arg(64)->Arg(256)->Arg(1024);

// Pure event-skipping cost: two nodes exchanging across a huge sleep
// gap -- the per-gap cost must be O(log) map operations, independent of
// the gap length.
void BM_EventSkipping(benchmark::State& state) {
  const Graph g = gen::path(2);
  const auto gap = static_cast<std::uint64_t>(state.range(0));
  auto protocol = [gap](sim::Context& ctx) -> sim::Task {
    for (int i = 0; i < 100; ++i) {
      ctx.sleep(gap);
      co_await ctx.broadcast(sim::Message::hello());
    }
    ctx.decide(1);
  };
  for (auto _ : state) {
    auto result = sim::run_protocol(g, 1, protocol);
    benchmark::DoNotOptimize(result.metrics.makespan);
  }
  state.counters["virtual_rounds"] =
      static_cast<double>((gap + 1) * 100);
}
BENCHMARK(BM_EventSkipping)->Arg(1)->Arg(1000)->Arg(1000000000);

// Graph generation throughput (harness overhead).
void BM_GnpGeneration(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const Graph g = make_gnp(n, ++seed);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GnpGeneration)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
