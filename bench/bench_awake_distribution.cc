// E17 -- Beyond the expectation: the distribution of per-node awake
// time. The paper (Section 1.2) defines A = (1/n) sum A_v and notes
// "one can also study other properties of A, e.g., high probability
// bounds on A". We measure:
//   * the histogram of A_v for Algorithm 1 (a geometric-looking tail:
//     surviving one more level costs ~5 awake rounds and happens with
//     probability <= 3/4);
//   * tail probabilities P[A_v >= t] across n -- the per-level decay;
//   * concentration of the *average* A across seeds (its ci shrinks
//     with n: A is an average of n weakly-dependent variables).
#include <cmath>
#include <cstddef>
#include <iostream>
#include <map>

#include "analysis/parallel.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;

// One seeded SleepingMIS run; every section below is a different
// reduction over the per-node metrics, so the trials return the full
// Metrics and the (deterministic, seed-ordered) merges happen after the
// parallel batch.
sim::Metrics run_sleeping(VertexId n, std::uint64_t graph_seed,
                          std::uint64_t run_seed) {
  Rng rng(graph_seed);
  const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
  sim::Network net(g, run_seed);
  return net.run(core::sleeping_mis());
}
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E17 / distribution of per-node awake time A_v, SleepingMIS");

  // Histogram at n = 1024 over 10 seeds.
  {
    const VertexId n = 1024;
    const auto runs = analysis::parallel_trials(10, 0, [&](std::size_t s) {
      return run_sleeping(n, 60 + s, 90 + s);
    });
    std::map<std::uint64_t, std::uint64_t> histogram;
    std::uint64_t samples = 0;
    for (const sim::Metrics& metrics : runs) {
      for (const auto& m : metrics.node) {
        ++histogram[m.awake_rounds];
        ++samples;
      }
    }
    analysis::Table table({"awake rounds", "fraction of nodes", "bar"});
    for (const auto& [rounds, count] : histogram) {
      const double fraction =
          static_cast<double>(count) / static_cast<double>(samples);
      if (fraction < 0.002) continue;
      table.add_row({analysis::Table::num(rounds),
                     analysis::Table::num(fraction, 4),
                     std::string(static_cast<std::size_t>(fraction * 120),
                                 '#')});
    }
    std::cout << "\nhistogram, n = 1024 (bins < 0.2% elided):\n"
              << table.render();
  }

  // Tail decay across n.
  {
    analysis::Table table({"n", "P[A_v >= 10]", "P[A_v >= 20]",
                           "P[A_v >= 30]", "P[A_v >= 40]"});
    for (const VertexId n : {256u, 1024u, 4096u}) {
      std::vector<std::uint64_t> tail(5, 0);
      std::uint64_t samples = 0;
      const auto runs = analysis::parallel_trials(5, 0, [&](std::size_t s) {
        return run_sleeping(n, n + s, 3 * n + s);
      });
      for (const sim::Metrics& metrics : runs) {
        for (const auto& m : metrics.node) {
          ++samples;
          for (int t = 1; t <= 4; ++t) {
            if (m.awake_rounds >= static_cast<std::uint64_t>(10 * t)) {
              ++tail[static_cast<std::size_t>(t)];
            }
          }
        }
      }
      auto p = [&](int t) {
        return static_cast<double>(tail[static_cast<std::size_t>(t)]) /
               static_cast<double>(samples);
      };
      table.add_row({analysis::Table::num(std::uint64_t{n}),
                     analysis::Table::num(p(1), 4),
                     analysis::Table::num(p(2), 4),
                     analysis::Table::num(p(3), 5),
                     analysis::Table::num(p(4), 5)});
    }
    std::cout << "\ntail probabilities (n-independent, geometric decay):\n"
              << table.render();
  }

  // Concentration of the average across seeds.
  {
    analysis::Table table({"n", "mean of A over 20 seeds", "stddev of A",
                           "max A seen"});
    for (const VertexId n : {64u, 512u, 4096u}) {
      const std::vector<double> averages =
          analysis::parallel_trials(20, 0, [&](std::size_t s) {
            return run_sleeping(n, 7 * n + s, 11 * n + s).node_avg_awake();
          });
      const auto summary = analysis::summarize(averages);
      table.add_row({analysis::Table::num(std::uint64_t{n}),
                     analysis::Table::num(summary.mean, 3),
                     analysis::Table::num(summary.stddev, 3),
                     analysis::Table::num(summary.max, 2)});
    }
    std::cout << "\nconcentration of the node-averaged awake time A:\n"
              << table.render();
    std::cout << "Reading: stddev of A shrinks as n grows -- A concentrates\n"
                 "around its O(1) expectation, the 'high probability bounds\n"
                 "on A' the paper points to in Section 1.2.\n";
  }
  return 0;
}
