// E1 -- Reproduces the paper's Table 1: the four complexity measures for
// the prior-work baselines (Luby-A, Luby-B, CRT randomized greedy,
// Ghaffari) versus Algorithm 1 (SleepingMIS) and Algorithm 2
// (Fast-SleepingMIS).
//
// Paper claims (Table 1):
//                      node-avg awake | worst awake | worst rounds   | node-avg rounds
//   prior algorithms   n/a (always awake)            O(log n)        O(log n)
//   SleepingMIS        O(1)           | O(log n)    | O(n^3)         | O(n^3)
//   Fast-SleepingMIS   O(1)           | O(log n)    | O(log^3.41 n)  | O(log^3.41 n)
//
// We print measured values per n on G(n, 8/n) plus growth-rate fits:
// the awake average should be flat for the sleeping algorithms, the
// makespan should fit ~n^3 for Algorithm 1 and ~log^3.41 n for
// Algorithm 2.
#include <cmath>
#include <iostream>
#include <map>

#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "graph/generators.h"

namespace {

using namespace slumber;
using analysis::MisEngine;

constexpr std::uint32_t kSeeds = 5;

}  // namespace

int main() {
  const std::vector<VertexId> sizes = {64, 128, 256, 512, 1024};
  std::cout << analysis::banner(
      "E1 / Table 1: complexity measures on G(n, 8/n), " +
      std::to_string(kSeeds) + " seeds per cell");

  std::map<MisEngine, std::vector<double>> avg_awake;
  std::map<MisEngine, std::vector<double>> worst_rounds;
  std::vector<double> ns(sizes.begin(), sizes.end());

  for (const VertexId n : sizes) {
    analysis::Table table({"algorithm", "node-avg awake", "worst awake",
                           "worst rounds", "node-avg rounds", "invalid"});
    for (const MisEngine engine : analysis::all_engines()) {
      const auto agg = analysis::aggregate_mis(
          engine,
          [n](std::uint64_t seed) {
            Rng rng(seed);
            return gen::gnp_avg_degree(n, 8.0, rng);
          },
          10 * n, kSeeds);
      avg_awake[engine].push_back(agg.node_avg_awake_mean);
      worst_rounds[engine].push_back(agg.worst_rounds_mean);
      table.add_row({analysis::engine_name(engine),
                     analysis::Table::num(agg.node_avg_awake_mean) + " +- " +
                         analysis::Table::num(agg.node_avg_awake_ci95),
                     analysis::Table::num(agg.worst_awake_mean, 1),
                     analysis::Table::num(agg.worst_rounds_mean, 0),
                     analysis::Table::num(agg.node_avg_rounds_mean, 0),
                     analysis::Table::num(agg.invalid_runs)});
    }
    std::cout << "\nn = " << n << "\n" << table.render();
  }

  std::cout << analysis::banner("growth fits across n");
  analysis::Table fits({"algorithm", "awake-avg vs log2(n) slope",
                        "makespan power-law exponent", "paper prediction"});
  for (const MisEngine engine : analysis::all_engines()) {
    const auto awake_fit = analysis::log_fit(ns, avg_awake[engine]);
    const auto span_fit = analysis::power_fit(ns, worst_rounds[engine]);
    std::string prediction;
    switch (engine) {
      case MisEngine::kSleeping:
        prediction = "awake slope ~0 (O(1)); exponent ~3 (n^3)";
        break;
      case MisEngine::kFastSleeping:
        prediction = "awake slope ~0 (O(1)); exponent ~0 (polylog)";
        break;
      default:
        prediction = "awake grows with n; makespan O(log n)";
        break;
    }
    fits.add_row({analysis::engine_name(engine),
                  analysis::Table::num(awake_fit.slope, 3),
                  analysis::Table::num(span_fit.slope, 3), prediction});
  }
  std::cout << fits.render();
  std::cout << "\nReading: 'worst rounds' for SleepingMIS equals "
               "T(ceil(3 log2 n)) = 3(2^K - 1) exactly (Lemma 10); "
               "Fast-SleepingMIS equals T2(K2) with base budget "
               "6 log2 n (Theorem 2).\n";
  return 0;
}
