// E3 -- Reproduces the paper's Figure 2: the recursion trees of
// Algorithm 1 (depth K = ceil(3 log2 n), trivial base cases) versus
// Algorithm 2 (truncated at depth K2 = ceil(ell log log n), greedy base
// cases of c log n rounds), and the resulting worst-case round
// complexities.
//
// Expected shape: #leaves of Algorithm 2 = 2^K2 ~ (log n)^ell; expected
// nodes reaching the base level ~ (3/4)^K2 * n ~ n / log n (the paper's
// Lemma 12 computation); makespan O(log^{ell+1} n) vs Theta(n^3).
#include <cmath>
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "core/schedule.h"
#include "graph/generators.h"

namespace {
using namespace slumber;
}

int main() {
  std::cout << analysis::banner(
      "E3 / Figure 2: tree truncation, Algorithm 1 vs Algorithm 2");

  analysis::Table table(
      {"n", "K (Alg1)", "T(K) = makespan Alg1", "K2 (Alg2)", "leaves 2^K2",
       "base budget R", "T2(K2) = makespan Alg2", "(3/4)^K2 * n", "n/log n"});
  for (const VertexId n : {64u, 256u, 1024u, 4096u, 16384u}) {
    const std::uint32_t k1 = core::recursion_depth(n);
    const std::uint32_t k2 = core::fast_recursion_depth(n);
    const std::uint64_t base = core::greedy_base_rounds(n);
    const double expected_base_pop =
        std::pow(0.75, k2) * static_cast<double>(n);
    table.add_row(
        {analysis::Table::num(std::uint64_t{n}),
         analysis::Table::num(std::uint64_t{k1}),
         analysis::Table::num(core::schedule_duration(k1)),
         analysis::Table::num(std::uint64_t{k2}),
         analysis::Table::num(std::uint64_t{1} << k2),
         analysis::Table::num(base),
         analysis::Table::num(core::schedule_duration(k2, base)),
         analysis::Table::num(expected_base_pop, 1),
         analysis::Table::num(
             static_cast<double>(n) / std::log2(static_cast<double>(n)), 1)});
  }
  std::cout << table.render();

  std::cout << analysis::banner(
      "measured base-level population of Algorithm 2 (G(n, 8/n), 5 seeds)");
  analysis::Table measured({"n", "mean nodes reaching base cases",
                            "bound (3/4)^K2 * n", "measured makespan",
                            "analytic T2(K2)"});
  for (const VertexId n : {64u, 256u, 1024u}) {
    double base_pop = 0.0;
    std::uint64_t makespan = 0;
    const std::uint32_t seeds = 5;
    for (std::uint32_t s = 0; s < seeds; ++s) {
      Rng rng(100 + s);
      const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
      core::RecursionTrace trace;
      const auto run = analysis::run_mis(analysis::MisEngine::kFastSleeping, g,
                                         200 + s, {.trace = &trace});
      base_pop += static_cast<double>(trace.z_by_level()[0]);
      makespan = run.worst_rounds;
    }
    base_pop /= seeds;
    const std::uint32_t k2 = core::fast_recursion_depth(n);
    measured.add_row(
        {analysis::Table::num(std::uint64_t{n}),
         analysis::Table::num(base_pop, 1),
         analysis::Table::num(std::pow(0.75, k2) * static_cast<double>(n), 1),
         analysis::Table::num(makespan),
         analysis::Table::num(
             core::schedule_duration(k2, core::greedy_base_rounds(n)))});
  }
  std::cout << measured.render();
  return 0;
}
