// E4 -- Validates Lemma 2 (E[|L| | U] <= |U|/2) and Lemma 3, the
// Pruning Lemma (E[|R| | U] <= |U|/4), per level of the recursion and
// per graph family, over many seeds.
//
// These two bounds are the engine of the whole paper: together they
// imply E[|L| + |R|] <= (3/4)|U|, i.e. a quarter of every call's
// participants are pruned having been awake only O(1) rounds.
#include <iostream>

#include "analysis/table.h"
#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;

constexpr std::uint32_t kSeeds = 100;
constexpr VertexId kN = 128;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E4 / Lemmas 2-3: measured E[|L|]/|U| (bound 0.50) and E[|R|]/|U| "
      "(bound 0.25), n=" + std::to_string(kN) + ", " +
      std::to_string(kSeeds) + " seeds");

  analysis::Table table({"family", "top-level L/U", "top-level R/U",
                         "all-levels L/U", "all-levels R/U", "(L+R)/U"});
  for (const gen::Family family : gen::core_families()) {
    double top_u = 0.0;
    double top_l = 0.0;
    double top_r = 0.0;
    double all_u = 0.0;
    double all_l = 0.0;
    double all_r = 0.0;
    for (std::uint32_t s = 0; s < kSeeds; ++s) {
      const Graph g = gen::make(family, kN, 300 + s);
      core::RecursionTrace trace;
      sim::run_protocol(g, 900 + s, core::sleeping_mis({}, &trace));
      const auto top = trace.level_participation(trace.levels);
      top_u += static_cast<double>(top.u_total);
      top_l += static_cast<double>(top.left_total);
      top_r += static_cast<double>(top.right_total);
      for (std::uint32_t k = 1; k <= trace.levels; ++k) {
        const auto level = trace.level_participation(k);
        all_u += static_cast<double>(level.u_total);
        all_l += static_cast<double>(level.left_total);
        all_r += static_cast<double>(level.right_total);
      }
    }
    table.add_row({gen::family_name(family),
                   analysis::Table::num(top_l / top_u, 4),
                   analysis::Table::num(top_r / top_u, 4),
                   analysis::Table::num(all_l / all_u, 4),
                   analysis::Table::num(all_r / all_u, 4),
                   analysis::Table::num((all_l + all_r) / all_u, 4)});
  }
  std::cout << table.render();
  std::cout << "\nPaper bounds: L/U <= 0.5 (Lemma 2), R/U <= 0.25 (Lemma 3), "
               "(L+R)/U <= 0.75. Star graphs show the extreme pruning case "
               "(hub domination); trees/cycles sit near the bound.\n";
  return 0;
}
