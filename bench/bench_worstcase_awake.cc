// E7 -- Lemma 9 / Lemma 15: worst-case awake complexity of both
// sleeping algorithms is O(log n). Sweeps n, reports max_v awake(v)
// and its ratio to log2(n), plus the distribution (p50/p95/max) of
// per-node awake time showing most nodes are awake O(1) rounds.
#include <cmath>
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "graph/generators.h"

namespace {
using namespace slumber;
using analysis::MisEngine;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E7 / worst-case awake complexity vs log n, G(n, 8/n), 5 seeds");

  for (const MisEngine engine :
       {MisEngine::kSleeping, MisEngine::kFastSleeping}) {
    analysis::Table table({"n", "log2 n", "worst awake (mean)",
                           "worst/log2(n)", "p50 awake", "p95 awake"});
    for (const VertexId n : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
      double worst_total = 0.0;
      std::vector<double> all_awake;
      const std::uint32_t seeds = 5;
      for (std::uint32_t s = 0; s < seeds; ++s) {
        Rng rng(7 * n + s);
        const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
        const auto run = analysis::run_mis(engine, g, 13 * n + s);
        worst_total += static_cast<double>(run.worst_awake);
        for (const auto& m : run.metrics.node) {
          all_awake.push_back(static_cast<double>(m.awake_rounds));
        }
      }
      const double worst = worst_total / seeds;
      const double log_n = std::log2(static_cast<double>(n));
      table.add_row({analysis::Table::num(std::uint64_t{n}),
                     analysis::Table::num(log_n, 1),
                     analysis::Table::num(worst, 1),
                     analysis::Table::num(worst / log_n, 2),
                     analysis::Table::num(analysis::percentile(all_awake, 50), 1),
                     analysis::Table::num(analysis::percentile(all_awake, 95), 1)});
    }
    std::cout << "\n" << analysis::engine_name(engine) << "\n" << table.render();
  }
  std::cout << "\nReading: worst/log2(n) stays bounded (O(log n), Lemmas "
               "9/15) while the median node is awake only a handful of "
               "rounds -- the O(1) average in action.\n";
  return 0;
}
