// E22 -- Message complexity across engines. The paper's energy argument
// (Section 1.1) charges a node for every awake round, idle listening
// included, but the number of transmissions is the other half of a
// radio's budget. This bench reports total sent messages, delivered
// messages, and messages dropped at sleeping receivers for every engine
// across n -- quantifying the sleeping algorithms' communication bill
// for their O(1) awake average.
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "graph/generators.h"

namespace {
using namespace slumber;
using analysis::MisEngine;
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E22 / message complexity on G(n, 8/n), 5 seeds: sent / delivered / "
      "dropped-at-sleeper per node");

  const std::uint32_t seeds = 5;
  analysis::Table table({"n", "engine", "sent/node", "delivered/node",
                         "dropped/node", "drop %"});

  for (const VertexId n : {128u, 512u, 2048u}) {
    for (const MisEngine engine : analysis::all_engines()) {
      double sent = 0.0;
      double delivered = 0.0;
      double dropped = 0.0;
      for (std::uint32_t s = 0; s < seeds; ++s) {
        Rng rng(n * 11 + s);
        const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
        const auto run = analysis::run_mis(engine, g, n + 51 * s);
        if (!run.valid) {
          std::cerr << "INVALID " << analysis::engine_name(engine)
                    << " at n=" << n << "\n";
          return 1;
        }
        double run_sent = 0.0;
        for (const auto& node : run.metrics.node) {
          run_sent += static_cast<double>(node.messages_sent);
        }
        sent += run_sent / n;
        delivered += static_cast<double>(run.metrics.total_messages) / n;
        dropped += static_cast<double>(run.metrics.dropped_messages) / n;
      }
      const double drop_pct =
          sent > 0.0 ? 100.0 * dropped / (seeds * (sent / seeds)) : 0.0;
      table.add_row({analysis::Table::num(std::uint64_t{n}),
                     analysis::engine_name(engine),
                     analysis::Table::num(sent / seeds),
                     analysis::Table::num(delivered / seeds),
                     analysis::Table::num(dropped / seeds),
                     analysis::Table::num(drop_pct, 1)});
    }
  }
  std::cout << table.render();
  std::cout << "\nShape check: sleeping engines send O(1) messages per node "
               "(constant awake rounds bound their sends); traditional "
               "engines send Theta(deg * log n). Drops only occur in the "
               "sleeping algorithms (messages into sleeping neighbors are "
               "part of the model, paper Section 1.2).\n";
  return 0;
}
