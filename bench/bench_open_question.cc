// E27 -- An empirical probe of the paper's open question (Section 1.3):
// is there a traditional-model MIS algorithm with O(1) -- or even
// o(log n) -- node-averaged round complexity on general graphs? The
// paper observes it is "not clear" whether Luby's algorithms achieve
// it. This bench sweeps every workload family in the library, fits the
// node-averaged decision round of Luby-A and CRT-greedy against
// log2 n, and reports the worst (steepest) family found.
//
// This cannot settle an open question, but it documents the search: on
// all 17 non-trivial families here the fitted slopes stay below ~0.5,
// i.e. we found NO family where Luby's node-average visibly grows --
// consistent with the question still being open rather than secretly
// resolved in the negative. The one real grower in the library is the
// DETERMINISTIC greedy on sorted paths (E26), which is exactly why
// Table 1's baselines are randomized.
#include <algorithm>
#include <cstddef>
#include <iostream>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/parallel.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "graph/generators.h"

namespace {
using namespace slumber;
using analysis::MisEngine;

// One (family, n, seed) trial runs both probed engines on the same
// graph; the per-family log fits below reduce the flat trial list in
// seed order, identical to the serial loop.
struct TrialResult {
  double luby_avg_decided = 0.0;
  double greedy_avg_decided = 0.0;
};
}  // namespace

int main() {
  std::cout << analysis::banner(
      "E27 / open-question probe (Section 1.3): node-avg DECISION round "
      "slope vs log2 n per family, Luby-A and CRT-greedy, 5 seeds");

  const std::uint32_t seeds = 5;
  analysis::Table table(
      {"family", "Luby-A slope", "Luby-A @ n=2048", "greedy slope",
       "greedy @ n=2048"});
  double worst_slope = 0.0;
  std::string worst_family;

  std::vector<gen::Family> families;
  for (const gen::Family family : gen::all_families()) {
    if (family == gen::Family::kEmpty) continue;  // trivial: all isolated
    families.push_back(family);
  }
  const std::vector<VertexId> sizes = {128u, 512u, 2048u};

  const auto trials = analysis::parallel_trials(
      families.size() * sizes.size() * seeds, 0, [&](std::size_t t) {
        const gen::Family family = families[t / (sizes.size() * seeds)];
        const VertexId n = sizes[(t / seeds) % sizes.size()];
        const auto s = static_cast<std::uint32_t>(t % seeds);
        const Graph g = gen::make(family, n, 31 * n + s);
        TrialResult result;
        result.luby_avg_decided =
            analysis::run_mis(MisEngine::kLubyA, g, n + s)
                .metrics.node_avg_decided();
        result.greedy_avg_decided =
            analysis::run_mis(MisEngine::kGreedy, g, n + s)
                .metrics.node_avg_decided();
        return result;
      });

  for (std::size_t f = 0; f < families.size(); ++f) {
    const gen::Family family = families[f];
    std::vector<double> ns;
    std::vector<double> luby_avg;
    std::vector<double> greedy_avg;
    for (std::size_t ni = 0; ni < sizes.size(); ++ni) {
      double luby_total = 0.0;
      double greedy_total = 0.0;
      for (std::uint32_t s = 0; s < seeds; ++s) {
        const TrialResult& trial =
            trials[(f * sizes.size() + ni) * seeds + s];
        luby_total += trial.luby_avg_decided;
        greedy_total += trial.greedy_avg_decided;
      }
      ns.push_back(sizes[ni]);
      luby_avg.push_back(luby_total / seeds);
      greedy_avg.push_back(greedy_total / seeds);
    }
    const double luby_slope = analysis::log_fit(ns, luby_avg).slope;
    const double greedy_slope = analysis::log_fit(ns, greedy_avg).slope;
    if (std::max(luby_slope, greedy_slope) > worst_slope) {
      worst_slope = std::max(luby_slope, greedy_slope);
      worst_family = gen::family_name(family);
    }
    table.add_row({gen::family_name(family),
                   analysis::Table::num(luby_slope, 3),
                   analysis::Table::num(luby_avg.back()),
                   analysis::Table::num(greedy_slope, 3),
                   analysis::Table::num(greedy_avg.back())});
  }
  std::cout << table.render();
  std::cout << "\nsteepest family: " << worst_family << " (slope "
            << analysis::Table::num(worst_slope, 3)
            << " per log2 n). No family in this library makes a randomized "
               "baseline's node-average grow like log n -- the Section 1.3 "
               "question stays open in both directions; the sleeping "
               "model's O(1) (E6) is a theorem and needs no such luck.\n";
  return 0;
}
