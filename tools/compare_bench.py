#!/usr/bin/env python3
"""Per-bench wall-time regression gate for the CI perf trajectory.

Diffs a current bench run (BENCH_ci.json, emitted by tools/run_bench.sh)
against the committed baseline (BENCH_baseline.json) and fails when any
bench regressed by more than --max-ratio in wall time. Sub---floor-ms
deltas are ignored so timer noise on tiny benches can never flake the
job. Benches present in only one of the two files are tolerated by
design — adding or removing a bench must not break the gate — and are
reported as explicit warnings; only a bench that *failed* in the
current run is fatal on its own.

Benches that report a build-vs-run wall split (schema slumber-bench-v2,
"build_ms"/"run_ms" fields) get the split printed alongside the total;
entries without the split (v1 files, non-split benches) are handled
identically to before. Schema slumber-bench-v3 adds a per-bench
"phases" object (named wall-time splits) and "peak_rss_kb"; either
file may be v2 or v3 — a mixed pair is compared on the shared fields
with an explicit warning, and a peak-RSS growth beyond --rss-ratio is
reported as a warning but never gates (RSS is machine- and
allocator-sensitive; the committed trajectory is what to eyeball).
Any other "schema" value is rejected as malformed input. The gate
itself stays on total wall time: splits and phases are diagnostic,
pinpointing whether a regression lives in graph construction or
simulation.

Usage:
    tools/compare_bench.py BASELINE.json CURRENT.json \
        [--max-ratio 1.5] [--floor-ms 100] [--rss-ratio 1.3]

Exit status: 0 when clean, 1 on any regression or failed bench, 2 on
malformed input.

Refreshing the baseline: when a slowdown is intentional (a bench grew a
workload, say), regenerate with `tools/run_bench.sh build
BENCH_baseline.json` on a quiet machine and commit the new file with a
one-line justification in the commit message.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, NoReturn

Bench = dict[str, Any]

# Schemas this gate knows how to diff. None covers v1 files, which
# predate the "schema" field.
KNOWN_SCHEMAS = (None, "slumber-bench-v2", "slumber-bench-v3")


def die(message: str) -> NoReturn:
    # sys.exit(str) would exit 1; the documented contract is 2 for
    # malformed input so the CI job can tell "regression" from "broken
    # bench artifact".
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load(path: str) -> tuple[dict[str, Bench], str | None]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        die(f"cannot read {path}: {err}")
    schema = doc.get("schema")
    if schema not in KNOWN_SCHEMAS:
        die(f"{path}: unknown schema {schema!r} "
            f"(this gate understands slumber-bench-v2 and -v3)")
    benches = doc.get("benches")
    if not isinstance(benches, list):
        die(f"{path}: missing 'benches' list")
    by_name: dict[str, Bench] = {}
    for entry in benches:
        name = entry.get("name")
        if not name or "wall_ms" not in entry:
            die(f"{path}: malformed bench entry {entry!r}")
        by_name[name] = entry
    return by_name, schema


def fmt_ms(entry: Bench | None) -> str:
    """Wall time, with the build/run split appended when recorded."""
    if entry is None:
        return "-"
    text = f"{entry['wall_ms']}"
    if "build_ms" in entry and "run_ms" in entry:
        text += f" ({entry['build_ms']}b/{entry['run_ms']}r)"
    return text


def phase_detail(base: Bench, cur: Bench) -> str:
    """Per-phase ratios for a regressed bench, for both-sided phases."""
    base_phases = base.get("phases") or {}
    cur_phases = cur.get("phases") or {}
    parts: list[str] = []
    for phase in sorted(set(base_phases) & set(cur_phases)):
        base_ms, cur_ms = base_phases[phase], cur_phases[phase]
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        parts.append(f"{phase} {base_ms} -> {cur_ms} ms ({ratio:.2f}x)")
    return "; ".join(parts)


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Fail on per-bench wall-time regressions.")
    parser.add_argument("baseline", help="committed BENCH_baseline.json")
    parser.add_argument("current", help="fresh BENCH_ci.json to vet")
    parser.add_argument("--max-ratio", type=float, default=1.5,
                        help="fail when current > ratio * baseline "
                             "(default: 1.5)")
    parser.add_argument("--floor-ms", type=int, default=100,
                        help="ignore regressions smaller than this many "
                             "ms in absolute terms (default: 100)")
    parser.add_argument("--rss-ratio", type=float, default=1.3,
                        help="warn (never fail) when peak RSS grew beyond "
                             "this ratio (default: 1.3)")
    args = parser.parse_args()

    baseline, base_schema = load(args.baseline)
    current, cur_schema = load(args.current)
    if base_schema != cur_schema:
        print(f"warning: mixed schemas ({base_schema!r} baseline vs "
              f"{cur_schema!r} current); comparing shared fields only",
              file=sys.stderr)

    regressions: list[tuple[str, float, float, float, Bench, Bench]] = []
    failures: list[str] = []
    one_sided: list[tuple[str, str]] = []
    rss_warnings: list[tuple[str, float, float, float]] = []
    rows: list[tuple[str, Bench | None, Bench | None, str]] = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if cur is None:
            one_sided.append((name, "baseline only (removed?)"))
            rows.append((name, base, None, "missing (removed?)"))
            continue
        if cur.get("status") != "ok":
            failures.append(name)
            rows.append((name, base, cur, "FAILED run"))
            continue
        if base is None:
            one_sided.append((name, "current only (new bench)"))
            rows.append((name, None, cur, "new bench"))
            continue
        base_ms, cur_ms = base["wall_ms"], cur["wall_ms"]
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        note = f"{ratio:.2f}x"
        if cur_ms > args.max_ratio * base_ms and \
                cur_ms - base_ms >= args.floor_ms:
            regressions.append((name, base_ms, cur_ms, ratio, base, cur))
            note += f"  REGRESSION (> {args.max_ratio}x)"
        elif cur_ms > args.max_ratio * base_ms:
            note += "  (over ratio, under floor; ignored)"
        # Peak RSS is advisory only: warn past --rss-ratio, never gate
        # (allocator and machine noise would flake a hard gate).
        base_kb, cur_kb = base.get("peak_rss_kb"), cur.get("peak_rss_kb")
        if base_kb and cur_kb and cur_kb > args.rss_ratio * base_kb:
            rss_warnings.append((name, base_kb, cur_kb, cur_kb / base_kb))
        rows.append((name, base, cur, note))

    width = max(len(name) for name, *_ in rows) if rows else 10
    print(f"{'bench':<{width}}  {'base ms':>20}  {'now ms':>20}  note")
    for name, base, cur, note in rows:
        print(f"{name:<{width}}  {fmt_ms(base):>20}  {fmt_ms(cur):>20}  "
              f"{note}")

    for name, why in one_sided:
        print(f"warning: bench {name}: {why}; not gated", file=sys.stderr)
    for name, base_kb, cur_kb, ratio in rss_warnings:
        print(f"warning: bench {name}: peak RSS {base_kb} kB -> {cur_kb} kB "
              f"({ratio:.2f}x > {args.rss_ratio}x); advisory only, not gated",
              file=sys.stderr)

    ok = True
    if failures:
        ok = False
        print(f"\nerror: {len(failures)} bench(es) failed to run: "
              f"{', '.join(failures)}", file=sys.stderr)
    if regressions:
        ok = False
        print(f"\nerror: {len(regressions)} wall-time regression(s) beyond "
              f"{args.max_ratio}x (+{args.floor_ms} ms floor):",
              file=sys.stderr)
        for name, base_ms, cur_ms, ratio, base, cur in regressions:
            print(f"  {name}: {base_ms} ms -> {cur_ms} ms ({ratio:.2f}x)",
                  file=sys.stderr)
            detail = phase_detail(base, cur)
            if detail:
                print(f"    phases: {detail}", file=sys.stderr)
        print("If intentional, refresh BENCH_baseline.json (see this "
              "script's docstring).", file=sys.stderr)
    if ok:
        print("\nbench gate: OK (no regressions)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
