#!/usr/bin/env bash
# Runs every standalone benchmark binary and emits a machine-readable
# JSON baseline for the perf trajectory (BENCH_*.json).
#
# Usage: tools/run_bench.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR  cmake build directory (default: build)
#   OUT_JSON   output path (default: BENCH_baseline.json in the repo root)
#
# Each standalone bench (plain main(), prints a table) is timed
# wall-clock and its exit status recorded. Benches that print a
# `BENCH-SPLIT build_ms=<b> run_ms=<r>` line (the bulk benches) also
# get their build-vs-run wall split recorded as "build_ms"/"run_ms"
# fields; `BENCH-PHASE <name>=<ms>` lines become a per-phase "phases"
# object and a `BENCH-RSS peak_kb=<kb>` line a "peak_rss_kb" field —
# schema slumber-bench-v3. tools/compare_bench.py accepts v2 and v3
# baselines, and entries with or without the extras. bench_sim_micro
# is a google-benchmark binary with its own timing loop and is skipped
# here; run it directly for microbenchmark numbers.
#
# bench_bulk_scaling is the heavyweight entry (~45 s: it climbs to an
# n = 10M bulk SleepingMIS trial and self-checks engine equivalence);
# it is run like every other bench so the large-n regime stays on the
# committed perf trajectory. bench_bulk_parallel (~20 s) is the
# intra-trial parallel gate: an n = 2M trial at several lane counts,
# each compared bitwise against the serial reference.
set -u -o pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out_json=${2:-"$repo_root/BENCH_baseline.json"}
bench_dir="$build_dir/bench"

if [[ ! -d "$bench_dir" ]]; then
  echo "error: $bench_dir not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

# Millisecond timestamps need GNU date (%N); BSD/macOS date prints the
# format characters literally, so fall back to second resolution there.
if [[ "$(date +%3N)" =~ ^[0-9]{3}$ ]]; then
  now_ms() { date +%s%3N; }
else
  now_ms() { echo $(( $(date +%s) * 1000 )); }
fi

entries=()
failures=0
for bench in "$bench_dir"/bench_*; do
  [[ -x "$bench" && -f "$bench" ]] || continue
  name=$(basename "$bench")
  if [[ "$name" == "bench_sim_micro" ]]; then
    continue  # google-benchmark binary; has its own timing loop
  fi
  log="$build_dir/bench/$name.out"
  start=$(now_ms)
  if "$bench" > "$log" 2>&1; then
    status="ok"
  else
    status="failed"
    failures=$((failures + 1))
  fi
  end=$(now_ms)
  wall_ms=$((end - start))
  # Benches that report their build-vs-run wall split emit one
  # BENCH-SPLIT line; take the last in case of reruns.
  split=$(grep -o 'BENCH-SPLIT build_ms=[0-9]* run_ms=[0-9]*' "$log" | tail -1)
  extra=""
  if [[ -n "$split" ]]; then
    build_ms=${split#*build_ms=}
    build_ms=${build_ms%% *}
    run_ms=${split##*run_ms=}
    extra=", \"build_ms\": $build_ms, \"run_ms\": $run_ms"
    echo "  $name: $status (${wall_ms} ms; build ${build_ms} / run ${run_ms})"
  else
    echo "  $name: $status (${wall_ms} ms)"
  fi
  # Named per-phase wall times (one BENCH-PHASE line each) become a
  # "phases" object; a BENCH-RSS line becomes "peak_rss_kb".
  phases=""
  while IFS= read -r phase_line; do
    phase_name=${phase_line#BENCH-PHASE }
    phase_name=${phase_name%%=*}
    phase_ms=${phase_line##*=}
    [[ -n "$phases" ]] && phases+=", "
    phases+="\"$phase_name\": $phase_ms"
  done < <(grep -o 'BENCH-PHASE [a-z_]*=[0-9]*' "$log")
  if [[ -n "$phases" ]]; then
    extra+=", \"phases\": {$phases}"
  fi
  rss=$(grep -o 'BENCH-RSS peak_kb=[0-9]*' "$log" | tail -1)
  if [[ -n "$rss" ]]; then
    extra+=", \"peak_rss_kb\": ${rss##*=}"
  fi
  entries+=("    {\"name\": \"$name\", \"status\": \"$status\", \"wall_ms\": $wall_ms$extra}")
done

if [[ ${#entries[@]} -eq 0 ]]; then
  echo "error: no bench_* binaries found in $bench_dir" >&2
  exit 1
fi

{
  echo "{"
  echo "  \"schema\": \"slumber-bench-v3\","
  echo "  \"timestamp_utc\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"host\": \"$(uname -srm)\","
  echo "  \"git_rev\": \"$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)\","
  echo "  \"benches\": ["
  for i in "${!entries[@]}"; do
    if (( i + 1 < ${#entries[@]} )); then
      printf '%s,\n' "${entries[$i]}"
    else
      printf '%s\n' "${entries[$i]}"
    fi
  done
  echo "  ]"
  echo "}"
} > "$out_json"

echo "wrote $out_json (${#entries[@]} benches, $failures failed)"
exit $(( failures > 0 ? 1 : 0 ))
