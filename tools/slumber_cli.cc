// slumber -- command-line front end to the library.
//
// A global `--threads N` flag (anywhere on the command line) sets the
// parallelism lane count; the default is all hardware threads. With
// the coroutine back end the lanes shard independent trials of the
// multi-seed commands (sweep); with `--engine bulk` they additionally
// shard the per-round node scans *inside* single-trial commands (run,
// beep). Results are bitwise identical for every N in both modes.
//
// A global `--engine <coroutine|bulk>` flag selects the execution back
// end for run / sweep / beep: the coroutine scheduler (default; every
// MIS engine, fault injection, tracing) or the bulk flat-state engine
// (sleeping / luby-a / luby-b / greedy, 10M+-node scale). The two are
// bitwise interchangeable where they overlap.
//
// A global `--gen <legacy|sharded>` flag selects the G(n, p) seed
// schedule for the gnp families (see graph/generators.h): legacy is
// the single-stream generator, sharded the counter-based per-block
// one, whose CSR build parallelizes over the --threads lanes under
// --engine bulk and which produces memory-diet (CSR-only) graphs.
// Commands that need the staged edge list (matching, edge-color,
// ruling-set) reject --gen sharded with an explanation.
//
// Fault-injection flags (run / sweep / beep; see fault/fault.h) ride
// the same global grammar: `--crash V@R` fail-stops node V at round R
// (repeatable), `--loss P` drops each otherwise-deliverable message
// with probability P (symmetric per link per round), `--loss-burst
// P_ON P_OFF LEN` adds Gilbert–Elliott burst-correlated loss (per-edge
// on/off channel, epochs of LEN rounds), and `--churn P`
// [--churn-batches K] runs post-protocol membership churn with
// incremental MIS repair. Live dynamics run *between* bulk frames:
// `--churn-live LEAVE JOIN` makes alive nodes leave (and geometrically
// rejoin), `--recover MEAN` re-admits crashed nodes after a geometric
// downtime; both end in one incremental repair of the survivors' MIS.
// Churn, live churn, and recovery need `--engine bulk`. All fault
// streams are engine- and lane-count-independent.
//
// Telemetry flags (any command; see obs/obs.h): `--obs-out run.jsonl`
// streams slumber-obs-v1 events, `--obs-trace trace.json` writes a
// Chrome trace-event file for Perfetto, `--progress` prints a live
// stderr heartbeat. All three are strictly out-of-band: every decided
// output is bitwise identical with and without them.
//
//   slumber families
//       List the built-in graph families.
//   slumber engines
//       List the MIS engines.
//   slumber run <engine> <family> <n> [seed]
//       Run one engine on one graph; print the four complexity
//       measures, verification result, and energy estimate.
//   slumber sweep <engine> <family> <max_n> [seeds]
//       Scaling sweep (n = 64, 256, ..., max_n).
//   slumber tree <levels>
//       Print the recursion tree with the paper's Figure-1 labels.
//   slumber graph <family> <n> <seed> [dot]
//       Emit the graph as an edge list (or Graphviz DOT).
//   slumber trace <engine> <family> <n> <seed>
//       Run with event tracing and dump the last 60 events.
//   slumber matching <engine> <family> <n> [seed]
//       Maximal matching via MIS on the line graph.
//   slumber edge-color <family> <n> [seed]
//       (2*Delta-1)-edge-coloring via the line-graph reduction.
//   slumber ruling-set <engine> <family> <n> <k> [seed]
//       (k+1, k)-ruling set via MIS on the graph power G^k.
//   slumber beep <family> <n> [seed]
//       Beeping-model MIS (1-bit messages, everyone awake).
//   slumber leader <family> <n> [seed]
//       Flood-max leader election with decision-instant accounting.
#include <cstdint>
#include <iostream>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "algos/beeping_mis.h"
#include "algos/edge_coloring.h"
#include "bulk/baselines.h"
#include "bulk/engine.h"
#include "algos/leader_election.h"
#include "algos/matching.h"
#include "algos/ruling_set.h"
#include "analysis/experiment.h"
#include "analysis/parallel.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "analysis/trial_spec.h"
#include "analysis/verify.h"
#include "core/schedule.h"
#include "core/sleeping_mis.h"
#include "core/fast_sleeping_mis.h"
#include "energy/energy.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/properties.h"
#include "fault/fault.h"
#include "obs/obs.h"
#include "sim/network.h"
#include "sim/trace.h"
#include "util/parse.h"
#include "util/thread_pool.h"

namespace {

using namespace slumber;

// Shared flags (--engine / --gen / --threads / fault injection),
// parsed once by analysis::parse_trial_flags.
analysis::TrialSpec g_spec;

/// Builds a graph under the global --gen schedule. `pool`, when
/// non-null, shards a sharded-schedule build over its lanes.
Graph make_cli_graph(const gen::Family family, const VertexId n,
                     const std::uint64_t seed,
                     util::ThreadPool* pool = nullptr) {
  gen::MakeOptions options;
  options.schedule = g_spec.schedule;
  options.pool = pool;
  return gen::make(family, n, seed, options);
}

/// Commands that reduce through the staged edge list cannot take
/// memory-diet graphs; fail with an explanation instead of a throw.
bool check_edge_list_schedule(const char* command) {
  if (g_spec.schedule == gen::Schedule::kSharded) {
    std::cerr << "error: " << command
              << " needs an edge-list graph; --gen sharded builds CSR-only "
                 "memory-diet graphs (use --gen legacy)\n";
    return false;
  }
  return true;
}

using util::parse_uint;  // full-token std::from_chars validation

/// parse_uint narrowed to a vertex count.
bool parse_vertex_count(std::string_view token, const char* what,
                        VertexId* out) {
  std::uint64_t value = 0;
  if (!parse_uint(token, what, &value, 0,
                  std::numeric_limits<VertexId>::max())) {
    return false;
  }
  *out = static_cast<VertexId>(value);
  return true;
}

int usage() {
  std::cerr <<
      "usage: slumber [--threads N] [--engine coroutine|bulk] "
      "[--gen legacy|sharded] [--crash V@R] [--loss P] "
      "[--loss-burst P_ON P_OFF LEN] [--churn P [--churn-batches K]] "
      "[--churn-live LEAVE JOIN] [--recover MEAN_DOWN] "
      "[--obs-out FILE.jsonl] [--obs-trace FILE.json] [--progress] "
      "<command> ...\n"
      "  slumber families\n"
      "  slumber engines\n"
      "  slumber run <engine> <family> <n> [seed]\n"
      "  slumber sweep <engine> <family> <max_n> [seeds]\n"
      "  slumber tree <levels>\n"
      "  slumber graph <family> <n> <seed> [dot]\n"
      "  slumber trace <engine> <family> <n> <seed>\n"
      "  slumber matching <engine> <family> <n> [seed]\n"
      "  slumber edge-color <family> <n> [seed]\n"
      "  slumber ruling-set <engine> <family> <n> <k> [seed]\n"
      "  slumber beep <family> <n> [seed]\n"
      "  slumber leader <family> <n> [seed]\n";
  return 2;
}

bool parse_family(const std::string& name, gen::Family* out) {
  for (const gen::Family family : gen::all_families()) {
    if (gen::family_name(family) == name) {
      *out = family;
      return true;
    }
  }
  return false;
}

int cmd_families() {
  for (const gen::Family family : gen::all_families()) {
    std::cout << gen::family_name(family) << "\n";
  }
  return 0;
}

int cmd_engines() {
  for (const auto engine : analysis::all_engines()) {
    std::cout << analysis::engine_name(engine)
              << (analysis::engine_supports_bulk(engine) ? " [bulk]" : "")
              << "\n";
  }
  std::cout << "(aliases: sleeping fast luby-a luby-b greedy ghaffari; "
               "[bulk] = also runs on --engine bulk)\n";
  return 0;
}

bool check_bulk_support(const analysis::MisEngine engine) {
  if (g_spec.exec == analysis::ExecEngine::kBulk &&
      !analysis::engine_supports_bulk(engine)) {
    std::cerr << "error: " << analysis::engine_name(engine)
              << " has no bulk implementation (bulk supports: sleeping, "
                 "luby-a, luby-b, greedy)\n";
    return false;
  }
  return true;
}

int cmd_run(const analysis::MisEngine engine, const gen::Family family,
            const VertexId n, const std::uint64_t seed) {
  if (!check_bulk_support(engine)) return 2;
  // --engine bulk shards this single trial's node scans — and, with
  // --gen sharded, the graph build itself — over --threads lanes
  // (default: all hardware threads); bitwise identical for any N.
  util::ThreadPool pool(g_spec.exec == analysis::ExecEngine::kBulk
                            ? analysis::default_trial_threads()
                            : 1);
  const Graph g = make_cli_graph(family, n, seed, &pool);
  const auto bounds = arboricity_bounds(g);
  std::cout << "graph: " << g.summary() << " (" << gen::family_name(family)
            << ", arboricity in [" << bounds.lower << ", " << bounds.upper
            << "])\n";
  const auto run = analysis::run_mis(engine, g, seed, g_spec.run_options(&pool));
  std::cout << "engine: " << analysis::engine_name(engine) << " ("
            << analysis::exec_engine_name(g_spec.exec) << " execution, "
            << pool.num_threads() << (pool.num_threads() == 1
                                          ? " lane)\n"
                                          : " lanes)\n")
            << "verify: ";
  if (run.alive.empty()) {
    std::cout << analysis::check_mis(g, run.outputs).describe();
  } else {
    // Dead nodes make the full-graph check vacuous; report the
    // survivors' invariant instead (computed by run_mis).
    std::cout << (run.valid ? "valid MIS of the alive subgraph"
                            : "NOT an MIS of the alive subgraph");
  }
  std::cout << "\n"
            << "MIS size: " << run.mis_size << "\n";
  if (g_spec.fault_or_null() != nullptr) {
    std::cout << "faults: crashed " << run.metrics.crashed_nodes
              << ", lost messages " << run.metrics.injected_losses;
    if (g_spec.fault.recover.enabled()) {
      std::cout << ", recovered " << run.metrics.recovered_nodes;
    }
    if (g_spec.fault.live_churn.enabled()) {
      std::cout << ", live churn -" << run.metrics.live_leaves << "/+"
                << run.metrics.live_rejoins << " nodes";
    }
    if (g_spec.fault.has_live_dynamics()) {
      std::cout << " (" << run.metrics.live_repair_rounds
                << " final repair passes)";
    }
    if (g_spec.fault.churn.enabled()) {
      std::cout << ", churn -" << run.metrics.churn_leaves << "/+"
                << run.metrics.churn_joins << " nodes over "
                << run.metrics.churn_batches << " batches ("
                << run.metrics.churn_repair_rounds << " repair passes)";
    }
    std::cout << "\n";
  }
  std::cout << "\n";
  analysis::Table table({"measure", "value", "paper bound (sleeping algs)"});
  table.add_row({"node-averaged awake", analysis::Table::num(run.node_avg_awake),
                 "O(1)"});
  table.add_row({"worst-case awake", analysis::Table::num(run.worst_awake),
                 "O(log n)"});
  table.add_row({"worst-case rounds", analysis::Table::num(run.worst_rounds),
                 "3n^3 (Alg1) / log^3.41 n (Alg2)"});
  table.add_row({"node-averaged rounds",
                 analysis::Table::num(run.node_avg_rounds), "same as above"});
  table.add_row({"messages delivered",
                 analysis::Table::num(run.total_messages), "-"});
  std::cout << table.render();
  const auto report =
      energy::evaluate(energy::EnergyModel::idealized(), run.metrics);
  std::cout << "\nenergy (idealized sleep=0): mean "
            << analysis::Table::num(report.mean_mj, 3) << " mJ, max "
            << analysis::Table::num(report.max_mj, 3) << " mJ\n";
  return run.valid ? 0 : 1;
}

int cmd_sweep(const analysis::MisEngine engine, const gen::Family family,
              const VertexId max_n, const std::uint32_t seeds) {
  if (!check_bulk_support(engine)) return 2;
  analysis::Table table({"n", "node-avg awake", "worst awake", "worst rounds",
                         "invalid"});
  std::vector<double> ns;
  std::vector<double> awake;
  for (VertexId n = 64; n <= max_n; n *= 4) {
    gen::MakeOptions options;
    options.schedule = g_spec.schedule;
    const auto agg = analysis::aggregate_mis(
        engine, analysis::graph_factory(family, n, options), 7 * n, seeds,
        {.exec = g_spec.exec, .fault = g_spec.fault_or_null()});
    ns.push_back(n);
    awake.push_back(agg.node_avg_awake_mean);
    table.add_row({analysis::Table::num(std::uint64_t{n}),
                   analysis::Table::num(agg.node_avg_awake_mean),
                   analysis::Table::num(agg.worst_awake_mean, 1),
                   analysis::Table::num(agg.worst_rounds_mean, 0),
                   analysis::Table::num(agg.invalid_runs)});
  }
  std::cout << table.render();
  std::cout << "awake-average slope vs log2 n: "
            << analysis::Table::num(analysis::log_fit(ns, awake).slope, 3)
            << "\n";
  return 0;
}

int cmd_tree(const std::uint32_t levels) {
  std::cout << core::render_tree(core::figure1_tree(levels));
  std::cout << "T(k) durations: ";
  for (std::uint32_t k = 0; k <= levels; ++k) {
    std::cout << "T(" << k << ")=" << core::schedule_duration(k) << " ";
  }
  std::cout << "\n";
  return 0;
}

int cmd_graph(const gen::Family family, const VertexId n,
              const std::uint64_t seed, const bool dot) {
  const Graph g = make_cli_graph(family, n, seed);
  if (dot) {
    io::write_dot(std::cout, g);
  } else {
    io::write_edge_list(std::cout, g);
  }
  return 0;
}

int cmd_trace(const analysis::MisEngine engine, const gen::Family family,
              const VertexId n, const std::uint64_t seed) {
  const Graph g = make_cli_graph(family, n, seed);
  sim::RingTrace trace(60);
  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(g.num_vertices());
  options.trace = &trace;
  sim::Protocol protocol;
  switch (engine) {
    case analysis::MisEngine::kSleeping:
      protocol = core::sleeping_mis();
      break;
    case analysis::MisEngine::kFastSleeping:
      protocol = core::fast_sleeping_mis();
      break;
    default:
      std::cerr << "trace: only the sleeping engines are supported\n";
      return 2;
  }
  auto [metrics, outputs] = sim::run_protocol(g, seed, protocol, options);
  std::cout << trace.render();
  std::cout << "total events: " << trace.total_events()
            << ", makespan: " << metrics.makespan << "\n";
  return 0;
}

int cmd_matching(const analysis::MisEngine engine, const gen::Family family,
                 const VertexId n, const std::uint64_t seed) {
  if (!check_edge_list_schedule("matching")) return 2;
  const Graph g = gen::make(family, n, seed);
  std::cout << "graph: " << g.summary() << ", line graph n = "
            << g.num_edges() << "\n";
  const auto result = algos::maximal_matching_via_mis(g, seed, engine);
  const bool valid = algos::is_maximal_matching(g, result.matched_edges);
  std::cout << "engine: " << analysis::engine_name(engine) << "\n"
            << "matched edges: " << result.matched_edges.size() << " of "
            << g.num_edges() << "\n"
            << "valid maximal matching: " << (valid ? "yes" : "NO") << "\n"
            << "node-avg awake on L(G): "
            << analysis::Table::num(result.line_graph_metrics.node_avg_awake())
            << ", makespan " << result.line_graph_metrics.makespan << "\n";
  return valid ? 0 : 1;
}

int cmd_edge_color(const gen::Family family, const VertexId n,
                   const std::uint64_t seed) {
  if (!check_edge_list_schedule("edge-color")) return 2;
  const Graph g = gen::make(family, n, seed);
  const auto result = algos::edge_coloring_via_line_graph(g, seed);
  const bool valid = algos::check_edge_coloring(g, result.colors);
  std::cout << "graph: " << g.summary() << "\n"
            << "colors used: " << result.colors_used << " (bound 2*Delta-1 = "
            << (g.max_degree() > 0 ? 2 * g.max_degree() - 1 : 0) << ")\n"
            << "valid proper edge coloring: " << (valid ? "yes" : "NO")
            << "\n";
  return valid ? 0 : 1;
}

int cmd_ruling_set(const analysis::MisEngine engine, const gen::Family family,
                   const VertexId n, const std::uint32_t k,
                   const std::uint64_t seed) {
  if (!check_edge_list_schedule("ruling-set")) return 2;
  const Graph g = gen::make(family, n, seed);
  const auto result = algos::ruling_set_via_mis(g, k, seed, engine);
  const auto check = algos::check_ruling_set(g, result.rulers, k + 1, k);
  std::cout << "graph: " << g.summary() << ", power G^" << k << "\n"
            << "rulers: " << result.rulers.size() << "\n"
            << "(" << k + 1 << "," << k
            << ")-ruling set valid: " << (check.ok() ? "yes" : "NO")
            << " (independent=" << check.independent
            << " dominating=" << check.dominating << ")\n"
            << "node-avg awake on G^" << k << ": "
            << analysis::Table::num(
                   result.power_graph_metrics.node_avg_awake())
            << "\n";
  return check.ok() ? 0 : 1;
}

int cmd_beep(const gen::Family family, const VertexId n,
             const std::uint64_t seed) {
  if (g_spec.fault.churn.enabled()) {
    std::cerr << "error: beep does not support --churn (churn repair is "
                 "defined for the MIS engines; use run/sweep)\n";
    return 2;
  }
  const Graph g = make_cli_graph(family, n, seed);
  sim::Metrics metrics;
  std::vector<std::int64_t> outputs;
  if (g_spec.exec == analysis::ExecEngine::kBulk) {
    util::ThreadPool pool(analysis::default_trial_threads());
    bulk::BulkOptions options;
    options.max_message_bits = 1;
    options.pool = &pool;
    options.fault = g_spec.fault_or_null();
    bulk::BulkBeepingMis protocol;
    auto result = bulk::run_bulk(g, seed, protocol, options);
    metrics = std::move(result.metrics);
    outputs = std::move(result.outputs);
  } else {
    sim::NetworkOptions options;
    options.max_message_bits = 1;
    options.fault = g_spec.fault_or_null();
    auto result = sim::run_protocol(g, seed, algos::beeping_mis(), options);
    metrics = std::move(result.metrics);
    outputs = std::move(result.outputs);
  }
  const auto check = analysis::check_mis(g, outputs);
  std::cout << "graph: " << g.summary() << "\n"
            << "verify: " << check.describe() << "\n"
            << "node-avg awake: "
            << analysis::Table::num(metrics.node_avg_awake())
            << " (all slots; beeping has no sleeping)\n"
            << "max message bits: " << metrics.max_message_bits_seen
            << " (1-bit beeps)\n";
  return check.ok() ? 0 : 1;
}

int cmd_leader(const gen::Family family, const VertexId n,
               const std::uint64_t seed) {
  const Graph g = make_cli_graph(family, n, seed);
  if (!is_connected(g)) {
    std::cerr << "leader: graph is disconnected; one leader per component\n";
  }
  auto [metrics, outputs] =
      sim::run_protocol(g, seed, algos::flood_max_leader_election());
  VertexId leader = kInvalidVertex;
  std::uint64_t leaders = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (outputs[v] == 1) {
      leader = v;
      ++leaders;
    }
  }
  std::cout << "graph: " << g.summary() << "\n"
            << "leaders: " << leaders << " (node " << leader << ")\n"
            << "node-avg decided round (Feuilloley): "
            << analysis::Table::num(metrics.node_avg_decided())
            << ", termination: " << metrics.worst_finish() << " rounds\n";
  return leaders >= 1 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Shared flags (--threads / --engine / --gen / --crash / --loss /
  // --churn) are valid anywhere; parse_trial_flags strips them and
  // leaves the positional arguments.
  std::vector<std::string> args(argv, argv + argc);
  if (!analysis::parse_trial_flags(&args, &g_spec)) return 2;
  if (g_spec.threads != 0) {
    analysis::set_default_trial_threads(g_spec.threads);
  }
  const int nargs = static_cast<int>(args.size());
  if (nargs < 2) return usage();
  const std::string command = args[1];
  // The telemetry session outlives every per-command pool (they are
  // all locals of the cmd_* functions), so finalize() runs with no
  // instrumented thread still live — the obs/obs.h contract.
  obs::Session obs_session(g_spec.obs);
  if (obs_session.active()) {
    std::string cmdline = "slumber";
    for (int i = 1; i < argc; ++i) {
      cmdline += ' ';
      cmdline += argv[i];
    }
    obs_session.set_info("tool", "slumber");
    obs_session.set_info("command", command);
    obs_session.set_info("cmdline", cmdline);
    obs_session.set_info("engine", analysis::exec_engine_name(g_spec.exec));
    obs_session.set_info("gen", gen::schedule_name(g_spec.schedule));
    obs_session.set_info("threads",
                         std::to_string(analysis::default_trial_threads()));
  }
  if (command == "families") return cmd_families();
  if (command == "engines") return cmd_engines();
  if (command == "tree") {
    if (nargs < 3) return usage();
    std::uint64_t levels = 0;
    if (!parse_uint(args[2], "tree <levels>", &levels, 0, 62)) return 2;
    return cmd_tree(static_cast<std::uint32_t>(levels));
  }
  if (command == "graph") {
    if (nargs < 5) return usage();
    gen::Family family;
    if (!parse_family(args[2], &family)) return usage();
    VertexId n = 0;
    std::uint64_t seed = 0;
    if (!parse_vertex_count(args[3], "graph <n>", &n) ||
        !parse_uint(args[4], "graph <seed>", &seed)) {
      return 2;
    }
    return cmd_graph(family, n, seed,
                     nargs > 5 && std::string(args[5]) == "dot");
  }
  if (command == "edge-color" || command == "beep" || command == "leader") {
    if (nargs < 4) return usage();
    gen::Family family;
    if (!parse_family(args[2], &family)) return usage();
    VertexId n = 0;
    std::uint64_t seed = 1;
    if (!parse_vertex_count(args[3], "<n>", &n) ||
        (nargs > 4 && !parse_uint(args[4], "<seed>", &seed))) {
      return 2;
    }
    if (command == "edge-color") return cmd_edge_color(family, n, seed);
    if (command == "beep") return cmd_beep(family, n, seed);
    return cmd_leader(family, n, seed);
  }
  // Remaining commands share <engine> <family> <n> [arg4].
  if (nargs < 5) return usage();
  analysis::MisEngine engine;
  gen::Family family;
  if (!analysis::engine_from_name(args[2], &engine) ||
      !parse_family(args[3], &family)) {
    return usage();
  }
  VertexId n = 0;
  std::uint64_t arg5 = 1;
  // arg5 is a 64-bit seed for run/trace/matching but a 32-bit count for
  // sweep (seeds) and ruling-set (k) — bound it per command so the
  // later narrowing cast can never truncate silently.
  const bool narrow_arg5 = command == "ruling-set" || command == "sweep";
  if (!parse_vertex_count(args[4], "<n>", &n) ||
      (nargs > 5 &&
       !parse_uint(args[5],
                   command == "ruling-set" ? "<k>"
                   : command == "sweep"    ? "<seeds>"
                                           : "<seed>",
                   &arg5, 0,
                   narrow_arg5
                       ? std::numeric_limits<std::uint32_t>::max()
                       : std::numeric_limits<std::uint64_t>::max()))) {
    return 2;
  }
  if (command == "run") return cmd_run(engine, family, n, arg5);
  if (command == "sweep") {
    return cmd_sweep(engine, family, n, static_cast<std::uint32_t>(arg5 > 1 ? arg5 : 3));
  }
  if (command == "trace") return cmd_trace(engine, family, n, arg5);
  if (command == "matching") return cmd_matching(engine, family, n, arg5);
  if (command == "ruling-set") {
    std::uint64_t seed = 1;
    if (nargs > 6 && !parse_uint(args[6], "<seed>", &seed)) return 2;
    return cmd_ruling_set(engine, family, n,
                          static_cast<std::uint32_t>(arg5), seed);
  }
  return usage();
}
