#!/usr/bin/env python3
"""Mutation test for the slumber-lint v2 dataflow analyzer.

Plants known determinism bugs into copies of the real tree -- the bug
classes D5-D8 exist to catch, at the exact call sites that motivated
them -- and asserts that tools/lint/ast_checks.py flags each plant with
the expected rule. A final run on the unmutated copy must be clean, so
the test also pins "zero findings on the real tree" as a regression
gate.

The copies live in a temp directory; the repo itself is never touched.
Runs the structural engine so the gate holds in containers without
libclang; pass --engine ast to exercise the AST engine where available.

Exit status: 0 all plants flagged + clean tree clean, 1 otherwise.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.abspath(os.path.join(HERE, "..", ".."))
AST_CHECKS = os.path.join(HERE, "ast_checks.py")

# (id, repo-relative file, exact original text, mutated text, rule that
# must fire). Originals are exact substrings of the current tree; the
# test fails loudly if drift makes one unmatchable, which is the signal
# to re-aim the plant rather than let the gate rot.
PLANTS = [
    (
        "d5-engine-mark-awake",
        "src/bulk/engine.cc",
        "awake_epoch_[awake[i]] = epoch;",
        "awake_epoch_[0] = epoch;",
        "slumber-d5",
    ),
    (
        "d5-churn-leave-counter",
        "src/fault/churn.cc",
        "++leave_parts[c];",
        "++leave_parts[0];",
        "slumber-d5",
    ),
    (
        "d6-registry-high32-collision",
        "src/util/stream_tags.h",
        "0xC4A54AD0'5EED'0002ULL",
        "0x10557AD0'5EED'0002ULL",
        "slumber-d6",
    ),
    (
        "d6-churn-unregistered-stream",
        "src/fault/churn.cc",
        "util::stream_tags::kChurnTag ^ static_cast<VertexId>(v)",
        "0x99990000ULL ^ static_cast<VertexId>(v)",
        "slumber-d6",
    ),
    (
        "d6-live-churn-unregistered-stream",
        "src/fault/fault.h",
        "util::stream_tags::kLiveChurnTag ^ v",
        "0xBADC0DE5EEDULL ^ v",
        "slumber-d6",
    ),
    (
        "d6-burst-unregistered-stream",
        "src/fault/fault.h",
        "util::stream_tags::kBurstTag ^ edge",
        "0xFEED5EEDULL ^ edge",
        "slumber-d6",
    ),
    (
        "d7-engine-truncated-makespan",
        "src/bulk/engine.cc",
        "metrics_.makespan = saturate_round(virtual_makespan_);",
        "metrics_.makespan = "
        "static_cast<std::uint64_t>(virtual_makespan_);",
        "slumber-d7",
    ),
]


def run_linter(root: str, engine: str) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, AST_CHECKS, "--root", root, "--engine", engine,
         "--no-cache"],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout + proc.stderr


def copy_src(dest_root: str) -> None:
    shutil.copytree(os.path.join(REPO, "src"),
                    os.path.join(dest_root, "src"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--engine", default="structural",
                        choices=("ast", "structural"))
    args = parser.parse_args()

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="slumber-mutation-") as tmp:
        clean_root = os.path.join(tmp, "clean")
        copy_src(clean_root)
        code, out = run_linter(clean_root, args.engine)
        if code != 0:
            failures.append(
                f"clean tree: expected exit 0, got {code}\n{out}")
        else:
            print(f"mutation_test: clean tree OK (engine={args.engine})")

        for plant_id, relpath, original, mutated, rule in PLANTS:
            root = os.path.join(tmp, plant_id)
            copy_src(root)
            target = os.path.join(root, relpath)
            with open(target, "r", encoding="utf-8") as fh:
                text = fh.read()
            if original not in text:
                failures.append(
                    f"{plant_id}: plant text not found in {relpath}; "
                    f"the tree drifted -- re-aim this plant")
                continue
            with open(target, "w", encoding="utf-8") as fh:
                fh.write(text.replace(original, mutated, 1))
            code, out = run_linter(root, args.engine)
            if code != 1:
                failures.append(
                    f"{plant_id}: expected exit 1, got {code}\n{out}")
            elif rule not in out:
                failures.append(
                    f"{plant_id}: flagged, but not with {rule}:\n{out}")
            else:
                print(f"mutation_test: {plant_id} caught ({rule})")

    if failures:
        print(f"mutation_test: FAIL ({len(failures)} problems)")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"mutation_test: OK ({len(PLANTS)} plants caught, "
          f"clean tree clean, engine={args.engine})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
