// Must-flag fixture for slumber-d1 telemetry leakage: src/ code
// outside src/obs/ reading the wall clock or consuming a telemetry
// value. Each annotated line must produce exactly one slumber-d1
// finding — measurements steering computation would make trial output
// machine-dependent.
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace slumber::obs {
std::uint64_t peak_rss_kb();
namespace proc {
std::uint64_t current_rss_kb();
}  // namespace proc
}  // namespace slumber::obs

namespace fixture {

std::size_t bad_adaptive_cutoff() {
  const auto start = std::chrono::steady_clock::now();  // MUST-FLAG(slumber-d1)
  return static_cast<std::size_t>(start.time_since_epoch().count() & 0xff);
}

std::size_t bad_rss_steered_chunks(std::size_t n) {
  if (slumber::obs::peak_rss_kb() > 1000000) {  // MUST-FLAG(slumber-d1)
    return n / 2;
  }
  return n;
}

std::uint64_t bad_proc_readback() {
  return slumber::obs::proc::current_rss_kb();  // MUST-FLAG(slumber-d1)
}

}  // namespace fixture
