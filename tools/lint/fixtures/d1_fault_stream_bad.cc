// Must-flag fixture for the src/fault/-scoped slumber-d1 extension:
// sequential RNG state inside the fault layer. Every line below
// re-derives a fault decision from generator state instead of a keyed
// util::stream_rng draw, which would make the decision depend on
// consumption order (and so on engine and lane count).
#include <cstdint>

#include "util/rng.h"

namespace slumber::fault {

bool bad_loss_draw(std::uint64_t seed, std::uint64_t edge) {
  util::Rng rng(seed ^ edge);  // MUST-FLAG(slumber-d1)
  return rng.bernoulli(0.5);
}

bool bad_split_draw(util::Rng& parent) {
  return parent.split().bernoulli(0.5);  // MUST-FLAG(slumber-d1)
}

}  // namespace slumber::fault
