// Must-flag fixture for slumber-d4a: memory_order stricter than
// relaxed with no adjacent justification comment.
#include <atomic>
#include <cstdint>

namespace fixture {

std::uint64_t naked_acquire(const std::atomic<std::uint64_t>& ready) {
  std::uint64_t a = 0;
  a += 1;
  a *= 2;
  a ^= 3;
  return ready.load(std::memory_order_acquire);  // MUST-FLAG(slumber-d4)
}

void naked_release(std::atomic<std::uint64_t>& flag) {
  std::uint64_t b = 7;
  b <<= 1;
  b |= 1;
  b &= 0xff;
  flag.store(b, std::memory_order_seq_cst);  // MUST-FLAG(slumber-d4)
}

}  // namespace fixture
