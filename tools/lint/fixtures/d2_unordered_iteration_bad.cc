// Must-flag fixture for slumber-d2: iterating hash containers whose
// order is implementation-defined.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

std::uint64_t bad_range_for(const std::vector<std::uint32_t>& keys) {
  std::unordered_set<std::uint32_t> seen(keys.begin(), keys.end());
  std::uint64_t digest = 0;
  for (std::uint32_t k : seen) {  // MUST-FLAG(slumber-d2)
    digest = digest * 31 + k;
  }
  return digest;
}

std::uint64_t bad_iterator_walk() {
  std::unordered_map<std::uint32_t, std::uint32_t> relabel;
  relabel.emplace(3, 0);
  relabel.emplace(7, 1);
  std::uint64_t digest = 0;
  for (auto it = relabel.begin(); it != relabel.end(); ++it) {  // MUST-FLAG(slumber-d2)
    digest = digest * 31 + it->second;
  }
  return digest;
}

}  // namespace fixture
