// Must-pass fixture for slumber-d4b: the repo's sanctioned sharding
// disciplines -- chunk-indexed partials merged after the barrier,
// locals inside the lambda, and atomic integer accounting.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

struct Pool {
  template <typename Fn>
  void parallel_for_range(std::size_t total, const Fn& fn) {
    fn(0, 0, total);
  }
  template <typename Fn>
  void parallel_for_index(std::size_t n, const Fn& fn) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
};

std::uint64_t ok_chunk_partials(Pool& pool, std::size_t chunks,
                                const std::vector<std::uint32_t>& xs) {
  std::vector<std::uint64_t> partials(chunks, 0);
  pool.parallel_for_range(
      xs.size(), [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          partials[chunk] += xs[i];
        }
      });
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < chunks; ++c) total += partials[c];
  return total;
}

std::uint64_t ok_locals_and_atomics(Pool& pool, std::size_t n,
                                    std::atomic<std::uint64_t>& hits) {
  pool.parallel_for_index(n, [&](std::size_t i) {
    std::uint64_t local = i * 2;
    local += 1;
    hits.fetch_add(local, std::memory_order_relaxed);
  });
  return hits.load(std::memory_order_relaxed);
}

}  // namespace fixture
