// Must-pass fixture for slumber-d3: integer atomic sums are
// commutative and associative (order-free), FP reductions belong in
// per-chunk partials merged in chunk order, and a justified CAS is
// allowed through NOLINT-with-reason.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

std::uint64_t ok_integer_sum(const std::vector<std::uint32_t>& xs) {
  std::atomic<std::uint64_t> total{0};
  for (std::uint32_t x : xs) {
    total.fetch_add(x, std::memory_order_relaxed);
  }
  return total.load(std::memory_order_relaxed);
}

// The mandated FP discipline: per-chunk partials, merged serially in
// chunk index order after the parallel section.
double ok_fp_partials(const std::vector<std::vector<double>>& chunks) {
  std::vector<double> partials(chunks.size(), 0.0);
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    for (double x : chunks[c]) partials[c] += x;
  }
  double total = 0.0;
  for (std::size_t c = 0; c < partials.size(); ++c) total += partials[c];
  return total;
}

std::uint32_t ok_justified_cas(std::atomic<std::uint32_t>& hwm,
                               std::uint32_t candidate) {
  std::uint32_t cur = hwm.load(std::memory_order_relaxed);
  // A monotone max is retry-order independent: the final value is the
  // max of all candidates regardless of CAS interleaving.
  // NOLINTNEXTLINE(slumber-d3): monotone max; final value is order-free
  while (cur < candidate && !hwm.compare_exchange_weak(cur, candidate)) {
  }
  return cur;
}

}  // namespace fixture
