// Must-pass fixture for the src/obs/-scoped slumber-d1 exemption: the
// telemetry layer is the one place in src/ allowed to read the wall
// clock (its out-of-band contract keeps timestamps away from every
// decided output). It may also consume its own measurement helpers.
// No findings allowed anywhere in this file.
#include <chrono>
#include <cstdint>

namespace slumber::obs {

namespace proc {
std::uint64_t peak_rss_kb();
}  // namespace proc

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

std::uint64_t stamp_ms() {
  const auto now = std::chrono::system_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count());
}

std::uint64_t own_measurement() { return proc::peak_rss_kb(); }

}  // namespace slumber::obs
