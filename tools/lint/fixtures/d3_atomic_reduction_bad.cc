// Must-flag fixture for slumber-d3: atomic reductions that are not
// commutative-and-associative integer ops.
#include <atomic>
#include <cstdint>
#include <vector>

namespace fixture {

double bad_fp_accumulate(const std::vector<double>& xs) {
  std::atomic<double> total{0.0};
  for (double x : xs) {
    total.fetch_add(x);  // MUST-FLAG(slumber-d3)
  }
  return total.load();
}

void bad_inline_fp_ref(std::vector<double>& partials) {
  std::atomic_ref<double>(partials[0]).fetch_add(1.5);  // MUST-FLAG(slumber-d3)
}

std::uint32_t bad_cas_loop(std::atomic<std::uint32_t>& level) {
  std::uint32_t cur = level.load();
  while (!level.compare_exchange_weak(cur, cur + 1)) {  // MUST-FLAG(slumber-d3)
  }
  return cur;
}

}  // namespace fixture
