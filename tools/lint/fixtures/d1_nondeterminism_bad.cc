// Must-flag fixture for slumber-d1: every classic nondeterminism
// source the rule bans from src/. Each annotated line must produce
// exactly one slumber-d1 finding.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <thread>

namespace fixture {

int bad_rand() {
  return std::rand();  // MUST-FLAG(slumber-d1)
}

void bad_srand() {
  std::srand(42);  // MUST-FLAG(slumber-d1)
}

unsigned bad_entropy() {
  std::random_device rd;  // MUST-FLAG(slumber-d1)
  return rd();
}

long bad_clock() {
  auto t = std::chrono::steady_clock::now();  // MUST-FLAG(slumber-d1)
  return t.time_since_epoch().count();
}

long bad_time_seed() {
  return time(nullptr);  // MUST-FLAG(slumber-d1)
}

unsigned bad_thread_count() {
  return std::thread::hardware_concurrency();  // MUST-FLAG(slumber-d1)
}

}  // namespace fixture
