// Must-pass fixture for slumber-d2: lookup-only hash-container use is
// deterministic, and the sorted-drain idiom replaces iteration.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

// find/emplace/insert/count never observe iteration order.
bool lookup_only(const std::vector<std::uint32_t>& keys) {
  std::unordered_map<std::uint32_t, std::uint32_t> relabel;
  for (std::uint32_t i = 0; i < keys.size(); ++i) {
    relabel.emplace(keys[i], i);
  }
  auto it = relabel.find(42);
  return it != relabel.end() && relabel.count(7) > 0;
}

// The mandated replacement: drain into a vector, sort, then iterate
// the vector (deterministic order).
std::uint64_t sorted_drain(const std::unordered_set<std::uint32_t>& seen) {
  // NOLINTNEXTLINE(slumber-d2): drained into a sorted vector before use
  std::vector<std::uint32_t> ordered(seen.begin(), seen.end());
  std::sort(ordered.begin(), ordered.end());
  std::uint64_t digest = 0;
  for (std::uint32_t k : ordered) {
    digest = digest * 31 + k;
  }
  return digest;
}

}  // namespace fixture
