// Must-flag fixture for slumber-d4b: bare scalar writes to
// by-reference captures inside pool lambdas -- every lane mutates the
// same location and the merge order is scheduling-dependent.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

struct Pool {
  template <typename Fn>
  void parallel_for_range(std::size_t total, const Fn& fn) {
    fn(0, 0, total);
  }
  template <typename Fn>
  void parallel_for_index(std::size_t n, const Fn& fn) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
};

std::uint64_t bad_shared_accumulator(Pool& pool,
                                     const std::vector<std::uint32_t>& xs) {
  std::uint64_t total = 0;
  pool.parallel_for_range(
      xs.size(), [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          total += xs[i];  // MUST-FLAG(slumber-d4)
        }
      });
  return total;
}

std::uint64_t bad_shared_counter(Pool& pool, std::size_t n) {
  std::uint64_t hits = 0;
  pool.parallel_for_index(n, [&](std::size_t i) {
    if (i % 3 == 0) {
      ++hits;  // MUST-FLAG(slumber-d4)
    }
  });
  return hits;
}

}  // namespace fixture
