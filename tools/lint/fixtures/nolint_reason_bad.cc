// Must-flag fixture for slumber-nolint: a suppression marker for a
// slumber rule without a reason string is itself a finding -- the
// policy is suppression-with-rationale, never bare suppression.
#include <unordered_set>

namespace fixture {

int reasonless_suppression(const std::unordered_set<int>& seen) {
  int sum = 0;
  for (int k : seen) {  // NOLINT(slumber-d2) MUST-FLAG(slumber-nolint)
    sum += k;
  }
  return sum;
}

}  // namespace fixture
