// Must-pass fixture for slumber-d1: deterministic seeding and the
// suppression path. No findings allowed anywhere in this file.
#include <cstdint>
#include <thread>

namespace fixture {

// A comment may talk about std::rand, random_device, or
// hardware_concurrency freely -- comments are not code.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ULL;
    return state;
  }
};

std::uint64_t seeded_draw(std::uint64_t seed) {
  Rng rng(seed);
  return rng.next();
}

// Identifiers merely *containing* banned substrings must not trip the
// word-boundary patterns.
int operand_count(int operands) { return operands + 1; }

unsigned justified_probe() {
  // NOLINTNEXTLINE(slumber-d1): feeds a progress log only, never a seed
  unsigned n = std::thread::hardware_concurrency();
  unsigned m =
      std::thread::hardware_concurrency();  // NOLINT(slumber-d1): log only
  return n + m;
}

}  // namespace fixture
