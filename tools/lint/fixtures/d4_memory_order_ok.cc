// Must-pass fixture for slumber-d4a: relaxed ordering needs no
// justification, and stricter orderings with adjacent prose are fine.
#include <atomic>
#include <cstdint>

namespace fixture {

std::uint64_t relaxed_is_free(const std::atomic<std::uint64_t>& counter) {
  return counter.load(std::memory_order_relaxed);
}

std::uint64_t justified_same_line(const std::atomic<std::uint64_t>& ready) {
  return ready.load(
      std::memory_order_acquire);  // pairs with the release store in
                                   // publish(); makes the payload visible
}

void justified_preceding_lines(std::atomic<std::uint64_t>& flag,
                               std::uint64_t payload) {
  // Publish: the consumer's acquire load of `flag` must observe the
  // payload written before this store (release/acquire pair).
  flag.store(payload, std::memory_order_release);
}

}  // namespace fixture
