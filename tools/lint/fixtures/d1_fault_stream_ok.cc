// Must-pass counterpart of d1_fault_stream_bad.cc: fault decisions as
// pure keyed util::stream_rng draws — no generator outlives the draw,
// so no decision can depend on consumption order.
#include <cstdint>

#include "util/stream_rng.h"

namespace slumber::fault {

bool keyed_loss_draw(std::uint64_t fault_seed, std::uint64_t edge,
                     std::uint64_t round) {
  std::uint64_t sm = edge ^ round;
  const std::uint64_t stream = util::splitmix64(sm);
  return util::stream_rng(fault_seed, stream).bernoulli(0.01);
}

}  // namespace slumber::fault
