#!/usr/bin/env python3
"""slumber-lint custom checks: the repo's determinism & concurrency rules.

Stock clang-tidy cannot express the invariants this reproduction's
science rests on (bitwise-identical trial output at every lane count),
so this checker enforces them directly:

  slumber-d1  No nondeterminism sources in src/: std::rand/srand,
              std::random_device, std::chrono::*::now (timing belongs
              in bench/), time(nullptr)-style seeding, and
              thread::hardware_concurrency outside the documented
              default_trial_threads precedence chain
              (src/util/thread_pool.cc is the single allowed site).
              src/obs/ is the one scope allowed to read the wall
              clock: the telemetry layer is out-of-band by contract
              (timestamps flow to sinks only, never back into a
              schedule or decided output). Outside src/obs/, src/ code
              must also never *read* telemetry back (obs::peak_rss_kb,
              obs::proc::*): a measurement feeding a decision would
              make trial output machine-dependent.
              src/fault/ additionally bans sequential RNG state (Rng
              construction, Rng::split, engine node_rng streams): every
              fault decision must be a pure keyed util::stream_rng
              draw, which is what makes the fault layer engine- and
              lane-count-independent.
  slumber-d2  No iteration over std::unordered_map/set/multimap/multiset
              anywhere findings-bearing code lives (src/, bench/,
              examples/, tools/): iteration order is implementation-
              defined. Lookup-only use (find/emplace/insert/count) is
              deterministic and allowed; ordered drains must go through
              sorted containers or sort-before-iterate.
  slumber-d3  Atomic reductions must be commutative-and-associative
              integer ops: fetch_add/fetch_sub on floating-point
              atomics is flagged (FP addition is not associative, so
              the merged value depends on lane interleaving), and any
              compare_exchange loop needs an explicit justification
              (the documented tri-state Unknown->True/False pattern in
              src/bulk/sleeping_mis.cc uses plain relaxed load/store,
              not CAS).
  slumber-d4  memory_order stricter than relaxed requires an adjacent
              justification comment (same line or the three lines
              above), and mutable writes to by-reference captures
              inside pool lambdas (parallel_for_range /
              parallel_for_index bodies) must be chunk-indexed,
              subscripted, or member/pointer state -- a bare scalar
              `++x` / `x += ...` across lanes is a data race and an
              order-dependent reduction even when atomic.

Suppression: clang-tidy style, with a mandatory reason string --
    // NOLINT(slumber-d2): drained into a sorted vector first
    // NOLINTNEXTLINE(slumber-d1): wall-clock only feeds the progress log
A NOLINT without a reason is itself a finding (slumber-nolint).

The analysis is lexical (comment/string-aware tokenization, brace
matching for lambda bodies) and dependency-free: it runs in minimal
containers and CI images without a clang toolchain. When the libclang
python bindings are importable they are used to refine function-extent
detection, but they are optional by design -- `pip install libclang` is
never required.

Usage:
    tools/lint/slumber_checks.py [--root REPO] [paths...]   # scan tree
    tools/lint/slumber_checks.py --self-test                # fixtures

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from collections.abc import Iterator
from dataclasses import dataclass, field

try:  # optional refinement only; the lexical engine is the contract
    import clang.cindex  # type: ignore  # noqa: F401
    HAVE_LIBCLANG = True
except ImportError:
    HAVE_LIBCLANG = False

RULES = ("slumber-d1", "slumber-d2", "slumber-d3", "slumber-d4",
         "slumber-nolint")

# Directories scanned in tree mode, relative to the repo root. tests/
# are deliberately excluded: they keep hash-container reference
# implementations as behavioral oracles for the rewrites this lint
# mandates (see tests/determinism_container_test.cc).
TREE_SCAN_DIRS = ("src", "bench", "examples", "tools")
CXX_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")

# slumber-d1 only applies under src/ (bench timing code is exempt), and
# these (path, token) pairs are the documented exceptions.
D1_SCOPE_PREFIX = "src/"
D1_ALLOWLIST = {
    # The single hardware_concurrency call the default_trial_threads
    # precedence chain (--threads > SLUMBER_THREADS > hardware) ends in.
    ("src/util/thread_pool.cc", "hardware_concurrency"),
}


@dataclass(frozen=True)
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """A C++ file split into an analyzable code view plus comment text.

    `code[i]` is line i with comments and string/char literal contents
    blanked (structure preserved so column math stays sane), and
    `comments[i]` is the comment text that appeared on line i.
    """

    path: str
    code: list[str] = field(default_factory=list)
    comments: list[str] = field(default_factory=list)


def strip_to_views(path: str, text: str) -> SourceFile:
    """Comment/string-aware split of a C++ source into code + comments."""
    src = SourceFile(path=path)
    code: list[str] = []
    comments: list[str] = []
    cur_code: list[str] = []
    cur_comment: list[str] = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                cur_code.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                cur_code.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^(\s\\")]{0,16})\(', text[i:])
                if m:
                    raw_delim = m.group(1)
                    state = "raw"
                    cur_code.append(" " * len(m.group(0)))
                    i += len(m.group(0))
                    continue
            if c == '"':
                state = "string"
                cur_code.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                cur_code.append("'")
                i += 1
                continue
            cur_code.append(c)
            i += 1
            continue
        if state == "line_comment":
            cur_comment.append(c)
            cur_code.append(" ")
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                cur_code.append("  ")
                i += 2
                continue
            cur_comment.append(c)
            cur_code.append(" ")
            i += 1
            continue
        if state == "string":
            if c == "\\":
                cur_code.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                cur_code.append('"')
                i += 1
                continue
            cur_code.append(" ")
            i += 1
            continue
        if state == "char":
            if c == "\\":
                cur_code.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                cur_code.append("'")
                i += 1
                continue
            cur_code.append(" ")
            i += 1
            continue
        if state == "raw":
            end = ')' + raw_delim + '"'
            if text.startswith(end, i):
                state = "code"
                cur_code.append(" " * len(end))
                i += len(end)
                continue
            cur_code.append(" ")
            i += 1
            continue
    if cur_code or cur_comment:
        code.append("".join(cur_code))
        comments.append("".join(cur_comment))
    src.code = code
    src.comments = comments
    return src


NOLINT_RE = re.compile(
    r"NOLINT(?P<next>NEXTLINE)?\((?P<rules>[^)]*)\)(?P<rest>.*)", re.DOTALL)


def nolint_suppressions(src: SourceFile) -> tuple[dict[int, set[str]],
                                                  list[Finding]]:
    """Maps 0-based line -> set of suppressed rule names.

    NOLINT suppresses on its own line, NOLINTNEXTLINE on the following
    line. A marker without a reason string is a slumber-nolint finding.
    """
    suppressed: dict[int, set[str]] = {}
    findings: list[Finding] = []
    for idx, comment in enumerate(src.comments):
        m = NOLINT_RE.search(comment)
        if not m:
            continue
        rules = {r.strip() for r in m.group("rules").split(",") if r.strip()}
        slumber_rules = {r for r in rules if r.startswith("slumber-")}
        if not slumber_rules:
            continue  # plain clang-tidy NOLINT; not ours to police
        rest = re.sub(r"MUST-FLAG\(slumber-[\w-]+\)", "", m.group("rest"))
        reason = rest.lstrip(": \t").strip()
        if len(reason) < 8:
            findings.append(Finding(
                src.path, idx + 1, "slumber-nolint",
                "NOLINT(slumber-*) requires a reason string: "
                "`// NOLINT(slumber-dN): why this is sound`"))
        target = idx + 1 if m.group("next") else idx
        suppressed.setdefault(target, set()).update(slumber_rules)
    return suppressed, findings


def is_suppressed(suppressed: dict[int, set[str]], line_idx: int,
                  rule: str) -> bool:
    rules = suppressed.get(line_idx, set())
    return rule in rules or "slumber-all" in rules


# --------------------------------------------------------------------------
# slumber-d1: nondeterminism sources
# --------------------------------------------------------------------------

D1_PATTERNS = (
    (re.compile(r"\bstd::rand\b|(?<![\w:])rand\s*\("), "std::rand"),
    (re.compile(r"\bsrand\s*\(|\bstd::srand\b"), "srand"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*"
                r"::\s*now\s*\("), "std::chrono::*::now"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time(nullptr) seeding"),
    (re.compile(r"\bhardware_concurrency\b"), "hardware_concurrency"),
)

# src/obs/ exemption: the telemetry layer is the repo's one sanctioned
# wall-clock consumer. Its out-of-band contract (timestamps reach the
# JSONL/trace sinks and the stderr heartbeat only — never an RNG, a
# schedule, or a decided output) is what the obs on/off bitwise-identity
# tests pin, so clock reads there cannot perturb the science.
D1_OBS_SCOPE_PREFIX = "src/obs/"
D1_OBS_ALLOWED_NAMES = {"std::chrono::*::now"}

# The readback half of that contract: src/ code outside src/obs/ must
# never consume a telemetry value. These are write-only APIs from the
# library's point of view; reading one back would let a measured
# quantity (RSS, wall time) steer computation.
D1_OBS_READBACK_PATTERNS = (
    (re.compile(r"\bobs::(?:peak_rss_kb\s*\(|proc::)"),
     "telemetry readback"),
)

D1_OBS_READBACK_EXPLANATION = (
    "telemetry values are write-only outside src/obs/: a measured "
    "quantity steering src/ computation would make trial output "
    "machine-dependent (bench/ and tools/ may read them)")

# src/fault/ extension: the fault layer's contract is that every
# probabilistic decision is a pure function of (seed, entity) via
# util::stream_rng. Sequential generator state — a constructed Rng, a
# state-derived split, or a protocol's per-node engine stream — makes a
# draw depend on consumption order, which breaks the bitwise agreement
# between the coroutine and bulk back ends and across lane counts.
D1_FAULT_SCOPE_PREFIX = "src/fault/"
D1_FAULT_PATTERNS = (
    (re.compile(r"\bRng\s+\w+\s*[({=]|\bRng\s*\("), "sequential Rng"),
    (re.compile(r"\.\s*split\s*\("), "Rng::split"),
    (re.compile(r"\bnode_rng\s*\("), "engine node stream"),
)

D1_FAULT_EXPLANATIONS = {
    "sequential Rng": "fault draws must be pure keyed util::stream_rng "
                      "calls; a constructed generator's output depends on "
                      "consumption order, breaking engine- and "
                      "lane-independence",
    "Rng::split": "state-derived child streams depend on how much of the "
                  "parent was consumed; key a util::stream_rng stream by "
                  "the faulted entity instead",
    "engine node stream": "per-node engine streams belong to the "
                          "protocols; fault decisions consuming them would "
                          "perturb the fault-free trajectory",
}

D1_EXPLANATIONS = {
    "std::rand": "non-reproducible RNG; use util::Rng / util::stream_rng "
                 "seeded from the trial schedule",
    "srand": "global RNG seeding is hidden state; use util::Rng / "
             "util::stream_rng",
    "std::random_device": "non-reproducible entropy source; seeds must come "
                          "from the trial schedule",
    "std::chrono::*::now": "wall-clock reads are nondeterministic; timing "
                           "belongs in bench/, not src/",
    "time(nullptr) seeding": "time-derived values are nondeterministic; "
                             "seeds must come from the trial schedule",
    "hardware_concurrency": "machine-dependent value; route through the "
                            "default_trial_threads precedence chain "
                            "(--threads > SLUMBER_THREADS > hardware)",
}


def check_d1(src: SourceFile, suppressed: dict[int, set[str]],
             scope_path: str) -> list[Finding]:
    if not scope_path.startswith(D1_SCOPE_PREFIX):
        return []
    in_obs_scope = scope_path.startswith(D1_OBS_SCOPE_PREFIX)
    findings = []
    for idx, line in enumerate(src.code):
        for pattern, name in D1_PATTERNS:
            if not pattern.search(line):
                continue
            if (scope_path, name) in D1_ALLOWLIST:
                continue
            if in_obs_scope and name in D1_OBS_ALLOWED_NAMES:
                continue
            if is_suppressed(suppressed, idx, "slumber-d1"):
                continue
            findings.append(Finding(
                src.path, idx + 1, "slumber-d1",
                f"{name}: {D1_EXPLANATIONS[name]}"))
        if not in_obs_scope:
            for pattern, name in D1_OBS_READBACK_PATTERNS:
                if not pattern.search(line):
                    continue
                if is_suppressed(suppressed, idx, "slumber-d1"):
                    continue
                findings.append(Finding(
                    src.path, idx + 1, "slumber-d1",
                    f"{name}: {D1_OBS_READBACK_EXPLANATION}"))
    if scope_path.startswith(D1_FAULT_SCOPE_PREFIX):
        for idx, line in enumerate(src.code):
            for pattern, name in D1_FAULT_PATTERNS:
                if not pattern.search(line):
                    continue
                if is_suppressed(suppressed, idx, "slumber-d1"):
                    continue
                findings.append(Finding(
                    src.path, idx + 1, "slumber-d1",
                    f"{name}: {D1_FAULT_EXPLANATIONS[name]}"))
    return findings


# --------------------------------------------------------------------------
# slumber-d2: iteration over unordered containers
# --------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*"
    r"[&]?\s*(?P<name>\w+)\s*[;({=,)]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*(?P<range>[\w.>-]+)\s*\)")
BEGIN_CALL_RE = re.compile(r"\b(?P<name>\w+)\s*\.\s*c?r?begin\s*\(")


def check_d2(src: SourceFile,
             suppressed: dict[int, set[str]]) -> list[Finding]:
    unordered_vars: set[str] = set()
    for line in src.code:
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_vars.add(m.group("name"))
    if not unordered_vars:
        return []
    findings = []
    for idx, line in enumerate(src.code):
        hits: list[str] = []
        for m in RANGE_FOR_RE.finditer(line):
            expr = m.group("range").split(".")[0].split("->")[0]
            if expr in unordered_vars:
                hits.append(f"range-for over unordered container '{expr}'")
        for m in BEGIN_CALL_RE.finditer(line):
            if m.group("name") in unordered_vars:
                hits.append(
                    f"iterator walk over unordered container "
                    f"'{m.group('name')}'")
        for hit in hits:
            if is_suppressed(suppressed, idx, "slumber-d2"):
                continue
            findings.append(Finding(
                src.path, idx + 1, "slumber-d2",
                f"{hit}: iteration order is implementation-defined; use a "
                f"sorted container or drain into a sorted vector first"))
    return findings


# --------------------------------------------------------------------------
# slumber-d3: non-commutative / non-associative atomic reductions
# --------------------------------------------------------------------------

FP_ATOMIC_DECL_RE = re.compile(
    r"\bstd::atomic(?:_ref)?\s*<\s*(?:float|double|long\s+double)\s*>\s*"
    r"(?:\w+\s*)?")
FP_ATOMIC_VAR_RE = re.compile(
    r"\bstd::atomic\s*<\s*(?:float|double|long\s+double)\s*>\s+(?P<name>\w+)")
FETCH_RE = re.compile(r"\b(?P<name>\w+)\s*\.\s*fetch_(?:add|sub)\s*\(")
INLINE_FP_FETCH_RE = re.compile(
    r"\batomic(?:_ref)?\s*<\s*(?:float|double|long\s+double)\s*>\s*"
    r"\([^)]*\)\s*\.\s*fetch_(?:add|sub)\s*\(")
CAS_RE = re.compile(r"\bcompare_exchange_(?:weak|strong)\b")


def check_d3(src: SourceFile,
             suppressed: dict[int, set[str]]) -> list[Finding]:
    fp_atomic_vars: set[str] = set()
    for line in src.code:
        for m in FP_ATOMIC_VAR_RE.finditer(line):
            fp_atomic_vars.add(m.group("name"))
    findings = []
    for idx, line in enumerate(src.code):
        flagged_fp = bool(INLINE_FP_FETCH_RE.search(line))
        if not flagged_fp:
            for m in FETCH_RE.finditer(line):
                if m.group("name") in fp_atomic_vars:
                    flagged_fp = True
                    break
        if flagged_fp and not is_suppressed(suppressed, idx, "slumber-d3"):
            findings.append(Finding(
                src.path, idx + 1, "slumber-d3",
                "fetch_add/fetch_sub on a floating-point atomic: FP "
                "addition is not associative, so the merged value depends "
                "on lane interleaving; reduce into per-chunk partials and "
                "merge in chunk order instead"))
        if CAS_RE.search(line) and \
                not is_suppressed(suppressed, idx, "slumber-d3"):
            findings.append(Finding(
                src.path, idx + 1, "slumber-d3",
                "compare_exchange loop: CAS retry order is scheduling-"
                "dependent; the engine's documented lock-free pattern is "
                "one-directional relaxed load/store (tri-state "
                "Unknown->True/False, src/bulk/sleeping_mis.cc). Justify "
                "with NOLINT(slumber-d3): <reason> if genuinely needed"))
    return findings


# --------------------------------------------------------------------------
# slumber-d4: memory_order escalation + pool-lambda capture writes
# --------------------------------------------------------------------------

STRICT_ORDER_RE = re.compile(
    r"\bmemory_order(?:_|::\s*)(?:seq_cst|acquire|release|acq_rel|consume)\b")
MUST_FLAG_ANNOTATION_RE = re.compile(r"MUST-FLAG\(slumber-[\w-]+\)")
POOL_CALL_RE = re.compile(r"\bparallel_for_(?:range|index)\s*\(")
# A statement that declares a local: optionally cv-qualified type-ish
# tokens followed by the name then an initializer/terminator. Kept
# deliberately broad -- it only widens the set of identifiers treated
# as locals (fewer findings), never narrows it.
LOCAL_DECL_TEMPLATE = (
    r"(?:\b(?:auto|const|constexpr|unsigned|signed|bool|char|short|int|"
    r"long|float|double|std::\w+(?:::\w+)*|[A-Z]\w*(?:::\w+)*)\b"
    r"[\w:<>,\s*&\[\]]*?[\s*&])"
    r"{name}\s*[=;({{\[]")
WRITE_RE = re.compile(
    r"(?:\+\+|--)\s*(?P<pre>\w+)\b"
    r"|\b(?P<post>\w+)\s*(?:\+\+|--)"
    r"|\b(?P<assign>\w+)\s*(?:[-+*/%|&^]|<<|>>)?=(?!=)")


def lambda_bodies_after_pool_calls(
        src: SourceFile) -> list[tuple[int, str, int]]:
    """Yields (capture, params, body_text, body_start_line) for lambdas
    passed to parallel_for_range / parallel_for_index."""
    text = "\n".join(src.code)
    line_starts = [0]
    for line in src.code:
        line_starts.append(line_starts[-1] + len(line) + 1)

    def line_of(pos: int) -> int:
        lo, hi = 0, len(line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if line_starts[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo

    for call in POOL_CALL_RE.finditer(text):
        # Find the lambda introducer within the call's argument list.
        lb = text.find("[", call.end())
        if lb < 0 or lb - call.end() > 200:
            continue
        rb = text.find("]", lb)
        if rb < 0:
            continue
        capture = text[lb:rb + 1]
        pos = rb + 1
        while pos < len(text) and text[pos].isspace():
            pos += 1
        params = ""
        if pos < len(text) and text[pos] == "(":
            depth = 0
            start = pos
            while pos < len(text):
                if text[pos] == "(":
                    depth += 1
                elif text[pos] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                pos += 1
            params = text[start + 1:pos]
            pos += 1
        while pos < len(text) and text[pos] != "{":
            if text[pos] == ";" or text[pos] == ")":
                break
            pos += 1
        if pos >= len(text) or text[pos] != "{":
            continue
        depth = 0
        start = pos
        while pos < len(text):
            if text[pos] == "{":
                depth += 1
            elif text[pos] == "}":
                depth -= 1
                if depth == 0:
                    break
            pos += 1
        body = text[start + 1:pos]
        yield capture, params, body, line_of(start)


CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "break", "continue", "else",
    "do", "case", "default", "sizeof", "static_cast", "const_cast",
    "reinterpret_cast", "dynamic_cast", "throw", "new", "delete", "this",
    "true", "false", "nullptr", "auto", "const", "constexpr",
}


def check_d4(src: SourceFile,
             suppressed: dict[int, set[str]]) -> list[Finding]:
    findings = []
    # D4a: strict memory orders need an adjacent justification comment.
    for idx, line in enumerate(src.code):
        if not STRICT_ORDER_RE.search(line):
            continue
        if is_suppressed(suppressed, idx, "slumber-d4"):
            continue
        window = range(max(0, idx - 3), idx + 1)
        # Fixture MUST-FLAG annotations are lint-test metadata, not
        # justification prose; they never satisfy the rule.
        has_comment = any(
            src.comments[j].strip() and
            not MUST_FLAG_ANNOTATION_RE.fullmatch(src.comments[j].strip())
            for j in window if j < len(src.comments))
        if not has_comment:
            findings.append(Finding(
                src.path, idx + 1, "slumber-d4",
                "memory_order stricter than relaxed without an adjacent "
                "justification comment (same line or the 3 lines above): "
                "say what this ordering synchronizes and why relaxed is "
                "insufficient"))
    # D4b: bare scalar writes to by-reference captures in pool lambdas.
    for capture, params, body, body_line in \
            lambda_bodies_after_pool_calls(src):
        if "&" not in capture and "=" not in capture:
            continue  # capture-less or explicit-empty: nothing shared
        param_names = set(re.findall(r"(\w+)\s*(?:,|$)", params))
        locals_: set[str] = set(param_names)
        # Identifiers declared inside the body (including nested-lambda
        # parameters and structured bindings) count as locals.
        for m in re.finditer(r"\[([^\]]*)\]\s*\(([^)]*)\)", body):
            locals_.update(re.findall(r"(\w+)\s*(?:,|$)", m.group(2)))
        for m in re.finditer(r"auto\s*\[\s*([\w\s,]+)\]", body):
            locals_.update(w.strip() for w in m.group(1).split(","))
        candidate_writes = []
        for m in WRITE_RE.finditer(body):
            name = m.group("pre") or m.group("post") or m.group("assign")
            if not name or name in CONTROL_KEYWORDS:
                continue
            wstart = m.start()
            prefix = body[:wstart].rstrip()
            # Subscripted / member / pointer targets are fine: the repo
            # discipline is per-chunk partial arrays indexed by the
            # chunk parameter, or explicitly atomic state.
            tail = body[m.start():m.end() + 40]
            target_end = tail.find(name) + len(name)
            after = tail[target_end:target_end + 2]
            if after.startswith("[") or after.startswith(".") or \
                    after.startswith("->") or after.startswith("("):
                continue
            if prefix.endswith((".", "->", "*", "]", ")")):
                continue
            decl_re = re.compile(LOCAL_DECL_TEMPLATE.format(name=re.escape(
                name)))
            if decl_re.search(body):
                locals_.add(name)
            if name in locals_:
                continue
            candidate_writes.append((name, m.start()))
        for name, offset in candidate_writes:
            line_idx = body_line + body[:offset].count("\n")
            if is_suppressed(suppressed, line_idx, "slumber-d4"):
                continue
            findings.append(Finding(
                src.path, line_idx + 1, "slumber-d4",
                f"write to by-reference capture '{name}' inside a pool "
                f"lambda: every lane mutates it concurrently and the "
                f"merge order is scheduling-dependent; index a per-chunk "
                f"partial (partials[chunk]) and merge after the barrier, "
                f"or make it atomic with a justified ordering"))
    return findings


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

def analyze_file(abspath: str, relpath: str) -> list[Finding]:
    try:
        with open(abspath, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as err:
        return [Finding(relpath, 1, "slumber-nolint",
                        f"cannot read file: {err}")]
    src = strip_to_views(relpath, text)
    suppressed, findings = nolint_suppressions(src)
    findings += check_d1(src, suppressed, relpath)
    findings += check_d2(src, suppressed)
    findings += check_d3(src, suppressed)
    findings += check_d4(src, suppressed)
    return findings


def iter_tree_files(root: str) -> Iterator[tuple[str, str]]:
    for scan_dir in TREE_SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith("fixtures")
                and d not in ("__pycache__", ".cache"))
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    abspath = os.path.join(dirpath, name)
                    yield abspath, os.path.relpath(abspath, root)


MUST_FLAG_RE = re.compile(r"MUST-FLAG\((?P<rule>slumber-[\w-]+)\)")


def run_self_test(fixtures_dir: str) -> int:
    """Fixture suite: every MUST-FLAG(rule) annotation must produce a
    finding with that rule on that line; no other findings are allowed.
    Files without annotations (the must-pass fixtures) must be clean."""
    if not os.path.isdir(fixtures_dir):
        print(f"error: fixtures dir not found: {fixtures_dir}",
              file=sys.stderr)
        return 2
    failures = []
    checked = 0
    flagged_expectations = 0
    for name in sorted(os.listdir(fixtures_dir)):
        if not name.endswith(CXX_EXTENSIONS):
            continue
        abspath = os.path.join(fixtures_dir, name)
        checked += 1
        with open(abspath, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        expected: set[tuple[int, str]] = set()
        for idx, line in enumerate(lines):
            for m in MUST_FLAG_RE.finditer(line):
                expected.add((idx + 1, m.group("rule")))
        flagged_expectations += len(expected)
        # Fixtures exercise every rule regardless of directory scope:
        # analyze them as if they lived under src/; d1_fault_* fixtures
        # target the src/fault/-scoped extension, d1_obs_* the
        # src/obs/-scoped wall-clock exemption, and are analyzed there.
        if name.startswith("d1_fault_"):
            scope = f"src/fault/{name}"
        elif name.startswith("d1_obs_"):
            scope = f"src/obs/{name}"
        else:
            scope = f"src/fixtures/{name}"
        actual_findings = analyze_file(abspath, scope)
        actual = {(f.line, f.rule) for f in actual_findings}
        for line_no, rule in sorted(expected - actual):
            failures.append(f"{name}:{line_no}: expected {rule} finding, "
                            f"got none")
        for line_no, rule in sorted(actual - expected):
            msg = next(f.message for f in actual_findings
                       if (f.line, f.rule) == (line_no, rule))
            failures.append(f"{name}:{line_no}: unexpected {rule} finding: "
                            f"{msg}")
    if checked == 0:
        print("error: no fixtures found", file=sys.stderr)
        return 2
    if failures:
        print(f"slumber_checks self-test: FAIL "
              f"({len(failures)} mismatches over {checked} fixtures)")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"slumber_checks self-test: OK ({checked} fixtures, "
          f"{flagged_expectations} must-flag expectations, "
          f"engine={'libclang+lex' if HAVE_LIBCLANG else 'lex'})")
    return 0


def emit_gha(findings: list[Finding]) -> None:
    """GitHub Actions problem-matcher annotations, one per finding."""
    for f in findings:
        message = f.message.replace("%", "%25").replace("\n", "%0A")
        print(f"::error file={f.path},line={f.line},"
              f"title={f.rule}::{message}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="slumber-lint determinism & concurrency checks")
    parser.add_argument("paths", nargs="*",
                        help="files to check (default: the tree scan set)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels up from here)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite instead of a scan")
    parser.add_argument("--gha", action="store_true",
                        help="also emit GitHub Actions ::error "
                             "annotations (auto under GITHUB_ACTIONS)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root or os.path.join(here, "..", ".."))

    if args.list_rules:
        print(__doc__)
        return 0
    if args.self_test:
        return run_self_test(os.path.join(here, "fixtures"))

    findings: list[Finding] = []
    if args.paths:
        files = [(os.path.abspath(p), os.path.relpath(os.path.abspath(p),
                                                      root))
                 for p in args.paths]
    else:
        files = list(iter_tree_files(root))
    for abspath, relpath in files:
        findings.extend(analyze_file(abspath, relpath.replace(os.sep, "/")))

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    for f in findings:
        print(f.render())
    if args.gha or os.environ.get("GITHUB_ACTIONS"):
        emit_gha(findings)
    if findings:
        print(f"\nslumber_checks: {len(findings)} finding(s) over "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"slumber_checks: OK ({len(files)} files clean, "
          f"engine={'libclang+lex' if HAVE_LIBCLANG else 'lex'})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
