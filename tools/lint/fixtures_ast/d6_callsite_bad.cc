// slumber-d6 must-flag fixture: stream_rng call sites keyed by ad-hoc
// constants that appear in no registry, with no declared discipline.

std::uint64_t fx_draw_rogue(std::uint64_t seed, std::uint64_t v) {
  return util::stream_rng(seed, 0x1234ULL ^ v).next_u64();  // MUST-FLAG(slumber-d6)
}

std::uint64_t fx_draw_unhinted(std::uint64_t seed, std::uint64_t n) {
  const std::uint64_t stream = n * 1000003ULL;
  return util::stream_rng(seed, stream).next_u64();  // MUST-FLAG(slumber-d6)
}

std::uint64_t fx_draw_rogue_chain(std::uint64_t seed, std::uint64_t v,
                                  std::uint64_t lo, std::uint64_t hi) {
  // A two-hop mix chain whose innermost key is an ad-hoc constant, not
  // a registered tag: mixing does not launder it.
  const std::uint64_t stream =
      util::detail::mix(util::detail::mix(0xFEEDULL ^ v, lo), hi);
  return util::stream_rng(seed, stream).next_u64();  // MUST-FLAG(slumber-d6)
}
