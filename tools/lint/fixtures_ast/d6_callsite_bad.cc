// slumber-d6 must-flag fixture: stream_rng call sites keyed by ad-hoc
// constants that appear in no registry, with no declared discipline.

std::uint64_t fx_draw_rogue(std::uint64_t seed, std::uint64_t v) {
  return util::stream_rng(seed, 0x1234ULL ^ v).next_u64();  // MUST-FLAG(slumber-d6)
}

std::uint64_t fx_draw_unhinted(std::uint64_t seed, std::uint64_t n) {
  const std::uint64_t stream = n * 1000003ULL;
  return util::stream_rng(seed, stream).next_u64();  // MUST-FLAG(slumber-d6)
}
