// slumber-d8 must-flag fixture: a helper outside src/obs/ that reads
// telemetry state, and a caller tainted through it.

std::uint64_t fx_rss_floor() {  // MUST-FLAG(slumber-d8)
  return obs::peak_rss_kb() / 2;
}

std::uint64_t fx_budget_gate(std::uint64_t n) {  // MUST-FLAG(slumber-d8)
  return n < fx_rss_floor() ? 1 : 0;
}
