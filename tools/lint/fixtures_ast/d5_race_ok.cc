// slumber-d5 must-pass fixture: the repo's sanctioned patterns --
// chunk-indexed partials, indices derived from the lane's parameters
// (transitively), range-fors over the handed span, atomics, and a
// nested dispatcher whose own index parameters stay its own.

void fx_ok_scan(Engine& eng, Pool* pool,
                const std::vector<Vertex>& fx_members,
                std::vector<std::uint64_t>& fx_parts,
                std::vector<std::uint32_t>& fx_stamp,
                std::atomic<std::uint64_t>& fx_atomic_total) {
  pool->parallel_for_range(
      fx_stamp.size(),
      [&](std::size_t c, std::size_t begin, std::size_t end) {
        std::uint64_t fx_local = 0;
        for (std::size_t i = begin; i < end; ++i) {
          fx_local += i;
          const std::size_t fx_slot = i * 2;
          fx_stamp[fx_slot] = 1;
        }
        fx_parts[c] += fx_local;
        fx_atomic_total += fx_local;
      });
  eng.scan_awake(fx_members,
                 [&](Chunk& chunk, std::span<const Vertex> part) {
                   for (const Vertex v : part) {
                     fx_stamp[v] = 2;
                     chunk.keep(v);
                   }
                 });
}

void fx_ok_nested(Pool* pool, std::vector<std::uint64_t>& fx_outer_parts) {
  pool->parallel_for_index(4, [&](std::size_t b) {
    fx_outer_parts[b] += 1;
    pool->parallel_for_range(
        8, [&](std::size_t c2, std::size_t b2, std::size_t e2) {
          fx_outer_parts[c2] += b2 + e2;
        });
  });
}

void fx_ok_justified(Pool* pool, std::vector<std::uint64_t>& fx_cells) {
  pool->parallel_for_index(4, [&](std::size_t b) {
    // Blocks 1+ take the else branch, so cell 0 has a single writer.
    // NOLINTNEXTLINE(slumber-d5): cell 0 is single-writer by construction
    if (b == 0) fx_cells[0] = 7;
  });
}
