// slumber-d5 must-flag fixture: stores through captured references
// that are not indexed by the lane's chunk/index parameters. Analyzed
// as if under src/bulk/; never compiled.

void fx_bad_scan(Pool* pool, std::vector<std::uint64_t>& fx_totals,
                 std::vector<std::uint64_t>& fx_slots) {
  std::uint64_t fx_sum = 0;
  std::size_t fx_cursor = 0;
  pool->parallel_for_range(
      fx_slots.size(),
      [&](std::size_t c, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          fx_sum += fx_slots[i];        // MUST-FLAG(slumber-d5)
          fx_totals[0] += fx_slots[i];  // MUST-FLAG(slumber-d5)
          fx_slots[fx_cursor++] = i;    // MUST-FLAG(slumber-d5)
        }
        fx_totals[c] += 1;
      });
}

void fx_bad_span(Engine& eng, const std::vector<Vertex>& fx_members,
                 std::vector<std::uint32_t>& fx_stamp) {
  std::uint64_t fx_seen = 0;
  eng.scan_awake(fx_members,
                 [&](Chunk& chunk, std::span<const Vertex> part) {
                   for (const Vertex v : part) {
                     fx_stamp[v] = 1;
                     ++fx_seen;  // MUST-FLAG(slumber-d5)
                     chunk.keep(v);
                   }
                 });
}
