// slumber-d8 must-pass fixture: code under src/obs/ may read its own
// telemetry state; the rule only polices reads from outside the
// telemetry subsystem. (The self-test maps d8_obs_* into src/obs/.)

std::uint64_t fx_obs_sample() {
  return obs::peak_rss_kb();
}
