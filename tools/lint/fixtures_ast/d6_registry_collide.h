// slumber-d6 must-flag fixture: a registry whose second tag collides
// with the first in the high 32 bits, plus a tag that is neither
// annotated nor listed in kAllStreamTags.
#pragma once

#include <cstdint>

namespace slumber::util::stream_tags {

// SLUMBER-STREAM-TAG(fx-loss): fixture loss stream.
inline constexpr std::uint64_t kFxLossTag = 0x11110000'5EED'0001ULL;

// SLUMBER-STREAM-TAG(fx-crash): fixture crash stream.
inline constexpr std::uint64_t kFxCrashTag = 0x11110000'5EED'0002ULL;  // MUST-FLAG(slumber-d6)

inline constexpr std::uint64_t kFxOrphanTag = 0x22220000'5EED'0003ULL;  // MUST-FLAG(slumber-d6)

inline constexpr std::uint64_t kAllStreamTags[] = {
    kFxLossTag,
    kFxCrashTag,
};

}  // namespace slumber::util::stream_tags
