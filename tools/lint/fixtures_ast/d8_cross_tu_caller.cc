// slumber-d8 must-flag fixture: taint crosses translation units --
// this caller never names obs:: but calls a tainted helper defined in
// d8_readback_chain.cc.

std::uint64_t fx_remote_gate() {  // MUST-FLAG(slumber-d8)
  return fx_budget_gate(512) + 1;
}
