// slumber-d6 must-pass fixture: every stream_rng call site keys
// through a registered tag (directly or via a one-hop local), declares
// the block-counter discipline, or carries a justified NOLINT.

std::uint64_t fx_draw_alpha(std::uint64_t seed, std::uint64_t v) {
  return util::stream_rng(seed, kFxAlphaTag ^ v).next_u64();
}

std::uint64_t fx_draw_beta(std::uint64_t seed, std::uint64_t v) {
  const std::uint64_t stream =
      util::detail::mix(kFxBetaTag ^ v, 0x9E3779B97F4A7C15ULL);
  return util::stream_rng(seed, stream).next_u64();
}

std::uint64_t fx_draw_block(std::uint64_t seed, std::uint64_t b) {
  // SLUMBER-STREAM-DISCIPLINE(block-counter): blocks partition the
  // vertex range disjointly, so the dense block id is itself the
  // stream key; no tag mixing is needed or wanted here.
  return util::stream_rng(seed, b).next_u64();
}

std::uint64_t fx_draw_gamma(std::uint64_t seed, std::uint64_t v,
                            std::uint64_t lo, std::uint64_t hi) {
  // Two-hop mix chain folding a 128-bit round's halves onto the tag —
  // the shape the live-fault layer (burst / live churn / recovery
  // draws) keys with.
  const std::uint64_t stream =
      util::detail::mix(util::detail::mix(kFxGammaTag ^ v, lo), hi);
  return util::stream_rng(seed, stream).next_u64();
}

std::uint64_t fx_draw_legacy(std::uint64_t seed, std::uint64_t n) {
  // NOLINTNEXTLINE(slumber-d6): legacy replay stream kept bit-compatible with v1 traces
  return util::stream_rng(seed, n * 3).next_u64();
}
