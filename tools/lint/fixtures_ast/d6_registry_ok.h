// slumber-d6 must-pass fixture: a well-formed stream-tag registry in
// the src/util/stream_tags.h format. Also serves as the registry the
// self-test resolves d6_callsite_*.cc call sites against.
#pragma once

#include <cstdint>

namespace slumber::util::stream_tags {

// SLUMBER-STREAM-TAG(fx-alpha): fixture stream A (per-vertex draws).
inline constexpr std::uint64_t kFxAlphaTag = 0xA1FA0000'5EED'0001ULL;

// SLUMBER-STREAM-TAG(fx-beta): fixture stream B (per-batch draws).
inline constexpr std::uint64_t kFxBetaTag = 0xBE7A0000'5EED'0002ULL;

// SLUMBER-STREAM-TAG(fx-gamma): fixture stream C (per-(entity, 128-bit
// round) draws keyed through a two-hop mix chain, the live-fault
// layer's shape).
inline constexpr std::uint64_t kFxGammaTag = 0x6A3A0000'5EED'0003ULL;

inline constexpr std::uint64_t kAllStreamTags[] = {
    kFxAlphaTag,
    kFxBetaTag,
    kFxGammaTag,
};

}  // namespace slumber::util::stream_tags
