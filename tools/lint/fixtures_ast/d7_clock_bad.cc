// slumber-d7 must-flag fixture: the 128-bit virtual clock narrowed to
// 64 bits outside the blessed helpers. Analyzed as if under src/bulk/.

using VirtualRound = unsigned __int128;

std::uint64_t fx_truncate(VirtualRound fx_round) {
  return static_cast<std::uint64_t>(fx_round);  // MUST-FLAG(slumber-d7)
}

std::uint64_t fx_implicit(VirtualRound fx_round) {
  const std::uint64_t fx_clipped = fx_round + 3;  // MUST-FLAG(slumber-d7)
  return fx_clipped;
}
