// slumber-d8 must-pass fixture: write-only telemetry use (counters,
// progress) never taints; only reads of telemetry state do.

void fx_telemetry_writer(std::uint64_t n) {
  obs::counter("fx_items", static_cast<double>(n));
  obs::progress_round(static_cast<double>(n) * 0.5);
}
