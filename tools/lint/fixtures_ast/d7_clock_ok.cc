// slumber-d7 must-pass fixture: clock narrowing is fine inside this
// file's own blessed helper definitions, casts to double are always
// fine, and consuming the clock through saturate_round is the
// sanctioned pattern.

using VirtualRound = unsigned __int128;

struct FxHalves {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

inline std::uint64_t saturate_round(VirtualRound fx_clock) {
  constexpr VirtualRound kFxMax = ~std::uint64_t{0};
  return fx_clock > kFxMax ? ~std::uint64_t{0}
                           : static_cast<std::uint64_t>(fx_clock);
}

inline FxHalves round_halves(VirtualRound fx_clock) {
  return {static_cast<std::uint64_t>(fx_clock),
          static_cast<std::uint64_t>(fx_clock >> 64)};
}

double fx_progress(VirtualRound fx_clock) {
  return static_cast<double>(fx_clock);
}

std::uint64_t fx_report(VirtualRound fx_clock) {
  const std::uint64_t fx_safe = saturate_round(fx_clock);
  return fx_safe;
}
