#!/usr/bin/env python3
"""Sharded, cached clang-tidy runner for the slumber-lint pass.

Reads compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is on by
default for this project), shards the repo's translation units over a
process pool, and emits a stable, diffable findings report: findings
are deduplicated, repo-relative, and sorted by (file, line, column,
check), so two runs over the same tree produce byte-identical reports
regardless of shard interleaving.

Incremental runs are cheap: each TU's result is cached in
<build>/.clang-tidy-cache/ keyed by a fingerprint of (clang-tidy
version, .clang-tidy config, the TU's compile command, the TU's
content, and a digest over every project header). Touch nothing and
the whole run is cache hits; edit one .cc and only it re-runs; edit a
header and everything re-runs (conservative but correct -- no
dependency scanning to go stale).

Tool gating: this repo builds in minimal containers without a clang
toolchain. When clang-tidy is absent the runner prints a skip notice
and exits 0 so `cmake --build build --target lint` stays usable
everywhere; CI passes --require to turn a missing binary into a hard
failure there.

Usage:
    tools/lint/run_clang_tidy.py [--build-dir build] [--jobs N]
        [--report out.txt] [--require] [--no-cache] [paths...]

Exit status: 0 clean (or skipped), 1 findings, 2 infrastructure error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import hashlib
import json
import os
import re
import shutil
import subprocess
import sys
from typing import Any

TU_DIRS = ("src", "bench", "examples", "tools", "tests")
FINDING_RE = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<message>.*?) \[(?P<check>[\w.,-]+)\]$",
    re.MULTILINE)


def find_clang_tidy(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("clang-tidy", "clang-tidy-19", "clang-tidy-18",
                 "clang-tidy-17", "clang-tidy-16", "clang-tidy-15",
                 "clang-tidy-14"):
        if shutil.which(name):
            return name
    return None


def sha256_file(path: str) -> str:
    h = hashlib.sha256()
    try:
        with open(path, "rb") as fh:
            for block in iter(lambda: fh.read(1 << 16), b""):
                h.update(block)
    except OSError:
        h.update(b"<unreadable>")
    return h.hexdigest()


def headers_digest(root: str) -> str:
    """One digest over every project header: a header edit invalidates
    the whole cache (conservative; never stale)."""
    h = hashlib.sha256()
    for tu_dir in TU_DIRS:
        base = os.path.join(root, tu_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith((".h", ".hpp")):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    h.update(rel.encode())
                    h.update(sha256_file(os.path.join(dirpath, name)).encode())
    return h.hexdigest()


def load_compile_commands(build_dir: str, root: str,
                          only: list[str]) -> list[dict[str, Any]]:
    ccpath = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(ccpath):
        sys.exit(f"error: {ccpath} not found -- configure first "
                 f"(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)")
    with open(ccpath, "r", encoding="utf-8") as fh:
        entries = json.load(fh)
    selected = []
    seen = set()
    for entry in entries:
        abspath = os.path.normpath(
            os.path.join(entry["directory"], entry["file"]))
        rel = os.path.relpath(abspath, root)
        if rel.startswith("..") or "_deps" in rel:
            continue  # third-party / out-of-tree TU
        if not rel.replace(os.sep, "/").split("/")[0] in TU_DIRS:
            continue
        if only and not any(
                rel.replace(os.sep, "/").startswith(p.rstrip("/") + "/") or
                rel.replace(os.sep, "/") == p for p in only):
            continue
        if abspath in seen:
            continue
        seen.add(abspath)
        entry["abspath"] = abspath
        entry["rel"] = rel.replace(os.sep, "/")
        selected.append(entry)
    selected.sort(key=lambda e: e["rel"])
    return selected


def tu_fingerprint(entry: dict[str, Any], tool_version: str, config_hash: str,
                   headers_hash: str) -> str:
    h = hashlib.sha256()
    for part in (tool_version, config_hash, headers_hash,
                 entry.get("command", "") or " ".join(
                     entry.get("arguments", [])),
                 sha256_file(entry["abspath"])):
        h.update(part.encode())
        h.update(b"\0")
    return h.hexdigest()


def run_tu(tidy: str, build_dir: str, entry: dict[str, Any],
           root: str) -> tuple[str, list[str], str]:
    """Returns (rel path, findings, raw stderr-on-crash)."""
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", entry["abspath"]],
        capture_output=True, text=True)
    findings = []
    for m in FINDING_RE.finditer(proc.stdout):
        path = m.group("path")
        if os.path.isabs(path):
            try:
                path = os.path.relpath(path, root)
            except ValueError:
                pass
        path = path.replace(os.sep, "/")
        if path.startswith("..") or "_deps" in path:
            continue  # finding in third-party code; not ours to fix
        findings.append(
            f"{path}:{m.group('line')}:{m.group('col')}: "
            f"{m.group('message')} [{m.group('check')}]")
    crash = ""
    if proc.returncode not in (0, 1) and not findings:
        crash = (proc.stderr or proc.stdout).strip()[-2000:]
    return entry["rel"], findings, crash


REPORT_LINE_RE = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<message>.*?) \[(?P<check>[\w.,-]+)\]$")


def emit_gha(report_lines: list[str]) -> None:
    """GitHub Actions problem-matcher annotations, one per finding."""
    for line in report_lines:
        m = REPORT_LINE_RE.match(line)
        if not m:
            continue
        message = m.group("message").replace("%", "%25").replace(
            "\n", "%0A")
        print(f"::error file={m.group('path')},line={m.group('line')},"
              f"col={m.group('col')},title={m.group('check')}::{message}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="sharded + cached clang-tidy over the project TUs")
    parser.add_argument("paths", nargs="*",
                        help="restrict to these repo-relative files/dirs")
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--root", default=None)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--report", default=None,
                        help="also write the findings report to this file")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: first found)")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) when clang-tidy is missing "
                             "instead of skipping")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--gha", action="store_true",
                        help="also emit GitHub Actions ::error "
                             "annotations (auto under GITHUB_ACTIONS)")
    args = parser.parse_args()

    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root or os.path.join(here, "..", ".."))
    build_dir = os.path.abspath(args.build_dir)

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        msg = ("run_clang_tidy: clang-tidy not found on PATH; skipping "
               "the clang-tidy half of the lint pass (slumber_checks.py "
               "still runs). Install clang-tidy to enable.")
        if args.require:
            print(f"error: {msg}", file=sys.stderr)
            return 2
        print(msg)
        return 0

    version = subprocess.run([tidy, "--version"], capture_output=True,
                             text=True).stdout.strip()
    config_hash = sha256_file(os.path.join(root, ".clang-tidy"))
    headers_hash = headers_digest(root)
    entries = load_compile_commands(build_dir, root, args.paths)
    if not entries:
        print("run_clang_tidy: no project translation units selected")
        return 0

    cache_dir = os.path.join(build_dir, ".clang-tidy-cache")
    os.makedirs(cache_dir, exist_ok=True)

    all_findings: set[str] = set()
    crashes: list[str] = []
    hits = 0
    to_run = []
    keys = {}
    for entry in entries:
        key = tu_fingerprint(entry, version, config_hash, headers_hash)
        keys[entry["rel"]] = key
        cache_path = os.path.join(cache_dir, key + ".json")
        if not args.no_cache and os.path.isfile(cache_path):
            try:
                with open(cache_path, "r", encoding="utf-8") as fh:
                    cached = json.load(fh)
                all_findings.update(cached["findings"])
                hits += 1
                continue
            except (OSError, json.JSONDecodeError, KeyError):
                pass
        to_run.append(entry)

    if to_run:
        with concurrent.futures.ThreadPoolExecutor(
                max_workers=max(1, args.jobs)) as pool:
            futures = {
                pool.submit(run_tu, tidy, build_dir, entry, root): entry
                for entry in to_run}
            for future in concurrent.futures.as_completed(futures):
                rel, findings, crash = future.result()
                if crash:
                    crashes.append(f"{rel}: clang-tidy failed:\n{crash}")
                    continue
                all_findings.update(findings)
                cache_path = os.path.join(cache_dir, keys[rel] + ".json")
                tmp = cache_path + ".tmp"
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump({"tu": rel, "findings": findings}, fh)
                os.replace(tmp, cache_path)

    def sort_key(line: str) -> tuple[str, int, int, str]:
        m = re.match(r"([^:]+):(\d+):(\d+):", line)
        if m:
            return (m.group(1), int(m.group(2)), int(m.group(3)), line)
        return (line, 0, 0, line)

    report_lines = sorted(all_findings, key=sort_key)
    summary = (f"run_clang_tidy: {len(entries)} TUs "
               f"({hits} cached, {len(to_run)} analyzed), "
               f"{len(report_lines)} finding(s)")
    body = "\n".join(report_lines)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(body + ("\n" if body else ""))
    if body:
        print(body)
    if args.gha or os.environ.get("GITHUB_ACTIONS"):
        emit_gha(report_lines)
    print(summary)
    if crashes:
        print("\n".join(crashes), file=sys.stderr)
        return 2
    return 1 if report_lines else 0


if __name__ == "__main__":
    sys.exit(main())
