#!/usr/bin/env python3
"""slumber-lint v2: dataflow checks for races, RNG streams, clocks, obs.

Where slumber_checks.py (D1-D4) is line-local and lexical, this
analyzer resolves definitions and uses across statements and files:

  slumber-d5  Race discipline in pool lambdas. For every lambda handed
              to a sharding dispatcher (parallel_for_range /
              parallel_for_index / for_range / scan_range / scan_awake /
              for_each_block / for_each_range), resolve which names are
              lane-local: the chunk/index parameters, everything
              derived from them (transitively, through initializers and
              range-fors over the handed span), and body locals. A
              store through a captured reference whose target is not
              lane-local, not atomic, and not subscripted by a derived
              index is a cross-lane race (or an order-dependent
              reduction) and is flagged. This is the def-use successor
              of D4's "bare scalar write" heuristic: D4 cannot tell
              `parts[c] += x` from `parts[0] += x`; D5 can.
  slumber-d6  RNG stream-tag registry. src/util/stream_tags.h declares
              every domain-separation tag; the checker proves the
              registry well-formed (annotation format, kAllStreamTags
              listing, pairwise-distinct high 32 bits) and that every
              util::stream_rng call site under src/ keys its stream
              through a registered tag (directly or via a one-hop local
              definition) or sits on a documented block-counter
              discipline marked SLUMBER-STREAM-DISCIPLINE(block-counter).
  slumber-d7  Clock-width safety. The bulk engine's virtual clock is
              128-bit (VirtualRound); narrowing it to 64 bits anywhere
              except the blessed saturate helpers (saturate_round /
              round_halves in src/bulk/) silently truncates at deep
              recursions (K >= 62 is reached at n = 10M). Flagged:
              static_cast<64-bit int>(clock expression) and implicit
              64-bit-typed declarations initialized from clock
              expressions, outside the blessed helper bodies.
  slumber-d8  Cross-TU obs write-only discipline. D1 bans *direct*
              telemetry readbacks (obs::peak_rss_kb, obs::proc::*)
              outside src/obs/; D8 closes the transitive hole: a
              function-level call graph over every scanned file proves
              no src/ function outside src/obs/ *transitively* reads
              telemetry state through helpers.

Engines:
  --engine ast         libclang (python clang.cindex) over
                       compile_commands.json. The precise engine.
  --engine structural  dependency-free comment/string-aware parsing
                       (shared machinery with slumber_checks.py). Runs
                       in minimal containers; what CTest pins.
  --engine auto        ast when the libclang bindings import, else a
                       skip notice and exit 0 (the lexical checkers in
                       slumber_checks.py remain the floor contract;
                       --require turns the skip into a failure).

Both engines feed one shared rule core through a uniform per-file
model, so a fixture that must flag under one engine must flag under
the other; --self-test verifies that on every engine available.

Results are cached per file in <build>/.slumber-ast-cache keyed by
(engine, analyzer digest, libclang version, registry digest, type-
environment digest, file content); the D8 graph is rebuilt from cached
per-file function tables each run, so cross-file edges never go stale.

Suppression: clang-tidy style with a mandatory reason --
    // NOLINT(slumber-d5): slot uniquely claimed by relaxed fetch_add
A NOLINT without a reason is itself a finding (slumber-nolint, via the
shared slumber_checks machinery).

Usage:
    tools/lint/ast_checks.py [--root R] [--build-dir build]
        [--engine auto|ast|structural] [--require] [--jobs N]
        [--no-cache] [--report out.txt] [--gha] [paths...]
    tools/lint/ast_checks.py --self-test

Exit status: 0 clean (or skipped), 1 findings, 2 usage/internal error.

Known structural-engine limits (by design -- the AST engine closes
them in CI): writes through dereferenced raw pointers (`*p = x`) parse
as declarations and are not flagged; member-qualified clock reads
(`x.round`) resolve by field name, not by object type.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import slumber_checks as sc  # noqa: E402  (shared lexical machinery)

Finding = sc.Finding
SourceFile = sc.SourceFile

try:
    import clang.cindex  # type: ignore
    HAVE_LIBCLANG = True
except ImportError:
    HAVE_LIBCLANG = False

RULES = ("slumber-d5", "slumber-d6", "slumber-d7", "slumber-d8")
CXX_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")
REGISTRY_REL = "src/util/stream_tags.h"
# The stream_rng definition itself is not a call site.
STREAM_DEF_REL = "src/util/stream_rng.h"

# Dispatcher name -> which lambda parameter positions are lane-local
# index parameters (chunk id / range bounds) and which hand the lambda
# a lane-owned span (iterating it yields lane-local work items).
DISPATCHERS: dict[str, dict[str, tuple[int, ...]]] = {
    "parallel_for_range": {"index": (0, 1, 2)},
    "for_range": {"index": (0, 1, 2)},
    "scan_range": {"index": (1, 2)},
    "parallel_for_index": {"index": (0,)},
    "for_each_block": {"index": (0,)},
    "for_each_range": {"index": (0, 1)},
    "scan_awake": {"span": (1,)},
}
DISPATCH_RE = re.compile(
    r"\b(" + "|".join(sorted(DISPATCHERS, key=len, reverse=True)) +
    r")\s*\(")

CONTROL_KEYWORDS = sc.CONTROL_KEYWORDS | {
    "namespace", "template", "typename", "using", "struct", "class",
    "public", "private", "protected", "operator", "static", "inline",
    "void", "noexcept", "co_return", "co_await", "co_yield", "goto",
    "static_assert", "alignas", "alignof", "decltype", "typeid",
}

INT64_TARGET_RE = (
    r"(?:std::)?u?int(?:8|16|32|64)_t|(?:std::)?size_t|std::ptrdiff_t|"
    r"(?:unsigned\s+)?(?:long\s+)?long|unsigned|(?:unsigned\s+)?int")
STATIC_CAST_RE = re.compile(
    r"static_cast\s*<\s*(?:" + INT64_TARGET_RE + r")\s*>\s*\(")
NARROW_DECL_RE = re.compile(
    r"\b((?:std::)?u?int(?:8|16|32|64)_t|(?:std::)?size_t)\s+"
    r"([A-Za-z_]\w*)\s*=\s*([^;]*);")
CLOCK_VAR_RE = re.compile(r"\bVirtualRound\b\s*&?\s*([A-Za-z_]\w*)")
CLOCK_INT128_RE = re.compile(r"\bunsigned\s+__int128\s+([A-Za-z_]\w*)")
CLOCK_FN_RE = re.compile(r"\bVirtualRound\s+([A-Za-z_]\w*)\s*\(")
NONCLOCK_RE = re.compile(
    r"\b(?:std::)?(?:u?int(?:8|16|32|64)_t|size_t|ptrdiff_t)\s+"
    r"([A-Za-z_]\w*)")
ATOMIC_RE = re.compile(
    r"\bstd::atomic(?:_ref)?\s*<[^;{}]*>\s*&?\s*([A-Za-z_]\w*)")
BLESSED_HELPERS = ("saturate_round", "round_halves")
BLESSED_DEF_RE = re.compile(
    r"\b(?:" + "|".join(BLESSED_HELPERS) + r")\s*\(")
STREAM_CALL_RE = re.compile(r"\bstream_rng\s*\(")
OBS_READ_RE = re.compile(r"\bobs::(?:peak_rss_kb\s*\(|proc::)")
DISCIPLINE_RE = re.compile(r"SLUMBER-STREAM-DISCIPLINE\(block-counter\)")
TAG_DECL_RE = re.compile(
    r"\binline\s+constexpr\s+std::uint64_t\s+(k\w*Tag)\s*=\s*"
    r"(0[xX][0-9a-fA-F']+)\s*ULL\s*;")
TAG_ANNOTATION_RE = re.compile(r"SLUMBER-STREAM-TAG\(")
FUNC_DEF_RE = re.compile(
    r"(?:^|[;}{])\s*(?:template\s*<[^;{}]*>\s*)?"
    r"((?:[\w:~]+(?:\s*<[^;{}]*>)?[\s&*]+)+)"
    r"([A-Za-z_][\w:]*)\s*\(")
NESTED_LAMBDA_RE = re.compile(r"\[[^\[\]]*\]\s*\(([^()]*)\)")
STRUCTURED_BINDING_RE = re.compile(
    r"\bauto\s*&{0,2}\s*\[([^\[\]]*)\]\s*[=:]")
DECL_RE = re.compile(
    r"(?:(?:const|constexpr|static|volatile|unsigned|signed|long|short)"
    r"\s+)*"
    r"([A-Za-z_][\w:]*(?:\s*<[^;{}()=]*>)?)[\s&*]+"
    r"([A-Za-z_]\w*)\s*(=[^;]*|\([^;{}]*\)|\{[^;{}]*\})?\s*[;,)]")
WORD_RE = re.compile(r"[A-Za-z_]\w*")
MUST_FLAG_RE = re.compile(r"MUST-FLAG\((?P<rule>slumber-[\w-]+)\)")

DECL_TYPE_KEYWORDS = {
    "return", "co_return", "delete", "throw", "new", "case", "goto",
    "else", "typedef", "using", "break", "continue", "default",
}


# --------------------------------------------------------------------------
# lexical helpers
# --------------------------------------------------------------------------

def match_forward(text: str, pos: int, open_ch: str, close_ch: str) -> int:
    """Index of the close matching text[pos] == open_ch, or -1."""
    depth = 0
    for i in range(pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_args(text: str) -> list[str]:
    """Splits an argument list on top-level commas."""
    args: list[str] = []
    depth = 0
    cur: list[str] = []
    for ch in text:
        if ch in "(<[{":
            depth += 1
        elif ch in ")>]}":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur or args:
        args.append("".join(cur))
    return args


def param_name(param: str) -> Optional[str]:
    """Name of a function parameter, or None when unnamed."""
    param = param.strip()
    if not param or param.endswith("..."):
        return None
    m = re.search(r"([A-Za-z_]\w*)\s*$", param)
    if not m:
        return None
    before = param[:m.start()].rstrip()
    if not before or before.endswith("::"):
        return None  # a bare (possibly qualified) type: unnamed param
    return m.group(1)


def word_in(text: str, names: set[str]) -> bool:
    return any(m.group(0) in names for m in WORD_RE.finditer(text))


def line_starts_of(text: str) -> list[int]:
    starts = [0]
    for i, ch in enumerate(text):
        if ch == "\n":
            starts.append(i + 1)
    return starts


def line_of(starts: list[int], pos: int) -> int:
    lo, hi = 0, len(starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if starts[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo


# --------------------------------------------------------------------------
# the uniform per-file model both engines produce
# --------------------------------------------------------------------------

@dataclass
class PoolLambda:
    dispatcher: str
    params: list[Optional[str]]  # positional; None = unnamed
    body: str                    # code view, nested dispatchers masked
    body_line: int               # 0-based line of the opening brace


@dataclass
class StreamCall:
    line: int        # 0-based
    stream_arg: str  # text of the stream (last) argument


@dataclass
class CastSite:
    line: int   # 0-based
    arg: str    # text of the cast operand
    blessed: bool


@dataclass
class NarrowDecl:
    line: int
    name: str
    init: str
    blessed: bool


@dataclass
class FuncDef:
    name: str       # simple (last ::-component) name
    qual: str       # as written at the definition
    line: int       # 0-based
    calls: set[str] = field(default_factory=set)
    reads_obs: bool = False


@dataclass
class FileModel:
    relpath: str
    src: SourceFile
    pool_lambdas: list[PoolLambda] = field(default_factory=list)
    stream_calls: list[StreamCall] = field(default_factory=list)
    casts: list[CastSite] = field(default_factory=list)
    narrow_decls: list[NarrowDecl] = field(default_factory=list)
    funcs: list[FuncDef] = field(default_factory=list)
    clock_names: set[str] = field(default_factory=set)
    clock_fns: set[str] = field(default_factory=set)
    nonclock_names: set[str] = field(default_factory=set)
    atomic_names: set[str] = field(default_factory=set)
    engine: str = "structural"


@dataclass
class TypeEnv:
    """Union of type facts over every scanned file: the bulk engine's
    clock fields (declared in engine.h) must be recognizable when cast
    in engine.cc."""
    clock_names: set[str] = field(default_factory=set)
    clock_fns: set[str] = field(default_factory=set)
    atomic_names: set[str] = field(default_factory=set)

    def digest(self) -> str:
        h = hashlib.sha256()
        for group in (self.clock_names, self.clock_fns,
                      self.atomic_names):
            h.update("\0".join(sorted(group)).encode())
            h.update(b"\x01")
        return h.hexdigest()


# --------------------------------------------------------------------------
# structural engine: model extraction
# --------------------------------------------------------------------------

def extract_type_facts(model: FileModel, text: str) -> None:
    for m in CLOCK_VAR_RE.finditer(text):
        model.clock_names.add(m.group(1))
    for m in CLOCK_INT128_RE.finditer(text):
        model.clock_names.add(m.group(1))
    for m in CLOCK_FN_RE.finditer(text):
        model.clock_fns.add(m.group(1))
        model.clock_names.discard(m.group(1))
    for m in NONCLOCK_RE.finditer(text):
        model.nonclock_names.add(m.group(1))
    for m in ATOMIC_RE.finditer(text):
        model.atomic_names.add(m.group(1))


def find_lambda_after(text: str, call_end: int) -> Optional[
        tuple[str, int, int, int]]:
    """After a dispatcher's open paren, locate its lambda argument.

    Returns (params_text, body_start, body_end, intro_pos) with body
    offsets delimiting the inside of the lambda's braces, or None when
    the argument is not an inline lambda (named callable, or this is a
    declaration/definition of the dispatcher itself).
    """
    i = call_end
    depth = 0
    last_code = "("  # the dispatcher's own open paren
    while i < len(text):
        ch = text[i]
        if ch == "[" and depth == 0 and last_code in "(,":
            break  # a lambda introducer in argument position
        if ch in ";{":
            return None  # signature or forwarding call: no inline lambda
        if ch == "(":
            depth += 1
        elif ch == ")":
            if depth == 0:
                return None  # call closed without an inline lambda
            depth -= 1
        if not ch.isspace():
            last_code = ch
        i += 1
    else:
        return None
    intro = i
    rb = text.find("]", intro)
    if rb < 0:
        return None
    pos = rb + 1
    while pos < len(text) and text[pos].isspace():
        pos += 1
    params = ""
    if pos < len(text) and text[pos] == "(":
        close = match_forward(text, pos, "(", ")")
        if close < 0:
            return None
        params = text[pos + 1:close]
        pos = close + 1
    while pos < len(text) and text[pos] not in "{;)":
        pos += 1
    if pos >= len(text) or text[pos] != "{":
        return None
    body_close = match_forward(text, pos, "{", "}")
    if body_close < 0:
        return None
    return params, pos + 1, body_close, intro


def mask_nested_dispatchers(body: str) -> str:
    """Blanks nested dispatcher lambdas: they are analyzed as their own
    PoolLambda with their own index parameters."""
    out = body
    for call in DISPATCH_RE.finditer(body):
        found = find_lambda_after(body, call.end())
        if found is None:
            continue
        _, bstart, bend, _ = found
        out = (out[:bstart] +
               "".join("\n" if c == "\n" else " "
                       for c in out[bstart:bend]) +
               out[bend:])
    return out


def extract_pool_lambdas(model: FileModel, text: str,
                         starts: list[int]) -> None:
    for call in DISPATCH_RE.finditer(text):
        found = find_lambda_after(text, call.end())
        if found is None:
            continue
        params_text, bstart, bend, _ = found
        params = [param_name(p) for p in split_args(params_text)]
        model.pool_lambdas.append(PoolLambda(
            dispatcher=call.group(1),
            params=params,
            body=mask_nested_dispatchers(text[bstart:bend]),
            body_line=line_of(starts, bstart)))


def extract_stream_calls(model: FileModel, text: str,
                         starts: list[int]) -> None:
    if model.relpath == STREAM_DEF_REL:
        return
    for call in STREAM_CALL_RE.finditer(text):
        open_paren = text.find("(", call.start())
        close = match_forward(text, open_paren, "(", ")")
        if close < 0:
            continue
        args = split_args(text[open_paren + 1:close])
        if len(args) < 2:
            continue  # declaration or partial application: not a draw
        model.stream_calls.append(StreamCall(
            line=line_of(starts, call.start()),
            stream_arg=args[-1].strip()))


def blessed_extents(text: str) -> list[tuple[int, int]]:
    """Definition extents of the blessed saturate helpers."""
    extents = []
    for m in BLESSED_DEF_RE.finditer(text):
        open_paren = text.find("(", m.start())
        close = match_forward(text, open_paren, "(", ")")
        if close < 0:
            continue
        pos = close + 1
        while pos < len(text) and text[pos] not in "{;":
            pos += 1
        if pos >= len(text) or text[pos] != "{":
            continue  # a call or declaration, not the definition
        end = match_forward(text, pos, "{", "}")
        if end > 0:
            extents.append((m.start(), end))
    return extents


def extract_casts(model: FileModel, text: str, starts: list[int]) -> None:
    in_bulk = model.relpath.startswith("src/bulk/")
    extents = blessed_extents(text) if in_bulk else []

    def is_blessed(pos: int) -> bool:
        return any(a <= pos <= b for a, b in extents)

    for m in STATIC_CAST_RE.finditer(text):
        open_paren = text.rfind("(", m.start(), m.end())
        close = match_forward(text, open_paren, "(", ")")
        if close < 0:
            continue
        model.casts.append(CastSite(
            line=line_of(starts, m.start()),
            arg=text[open_paren + 1:close],
            blessed=is_blessed(m.start())))
    for m in NARROW_DECL_RE.finditer(text):
        model.narrow_decls.append(NarrowDecl(
            line=line_of(starts, m.start()),
            name=m.group(2), init=m.group(3),
            blessed=is_blessed(m.start())))


def extract_funcs(model: FileModel, text: str, starts: list[int]) -> None:
    for m in FUNC_DEF_RE.finditer(text):
        qual = m.group(2)
        simple = qual.rsplit("::", 1)[-1]
        type_tokens = re.findall(r"[\w:~]+", m.group(1))
        if (simple in CONTROL_KEYWORDS or
                any(t in DECL_TYPE_KEYWORDS for t in type_tokens)):
            continue
        open_paren = text.find("(", m.end() - 1)
        close = match_forward(text, open_paren, "(", ")")
        if close < 0:
            continue
        pos = close + 1
        while pos < len(text) and text[pos] not in "{;=":
            pos += 1
        if pos >= len(text) or text[pos] != "{":
            continue  # declaration (or `= default`), not a definition
        end = match_forward(text, pos, "{", "}")
        if end < 0:
            continue
        body = text[pos + 1:end]
        calls = {c.group(1) for c in
                 re.finditer(r"([A-Za-z_][\w:]*)\s*\(", body)}
        model.funcs.append(FuncDef(
            name=simple, qual=qual, line=line_of(starts, m.start(2)),
            calls=calls, reads_obs=bool(OBS_READ_RE.search(body))))


def build_model_structural(src: SourceFile, relpath: str) -> FileModel:
    model = FileModel(relpath=relpath, src=src, engine="structural")
    text = "\n".join(src.code)
    starts = line_starts_of(text)
    extract_type_facts(model, text)
    extract_pool_lambdas(model, text, starts)
    extract_stream_calls(model, text, starts)
    extract_casts(model, text, starts)
    extract_funcs(model, text, starts)
    return model


# --------------------------------------------------------------------------
# AST engine (libclang): same model, cursor-accurate extraction
# --------------------------------------------------------------------------

def libclang_version() -> str:
    if not HAVE_LIBCLANG:
        return "none"
    try:
        return clang.cindex.Config().lib.clang_getClangVersion()  # type: ignore
    except Exception:
        return "libclang-unknown"


def _extent_text(text: str, starts: list[int],
                 extent: Any) -> tuple[str, int]:
    """Source slice for a cursor extent -> (text, start offset)."""
    b = starts[extent.start.line - 1] + extent.start.column - 1
    e = starts[extent.end.line - 1] + extent.end.column - 1
    return text[b:e], b


def build_model_ast(abspath: str, relpath: str, src: SourceFile,
                    compile_args: list[str]) -> FileModel:
    """libclang extraction into the shared FileModel. Falls back to the
    structural model on any parse failure (never silently drops a
    file from the scan)."""
    try:
        index = clang.cindex.Index.create()
        tu = index.parse(abspath, args=compile_args,
                         options=clang.cindex.TranslationUnit
                         .PARSE_DETAILED_PROCESSING_RECORD)
    except Exception:
        return build_model_structural(src, relpath)

    model = FileModel(relpath=relpath, src=src, engine="ast")
    text = "\n".join(src.code)
    starts = line_starts_of(text)
    CK = clang.cindex.CursorKind

    def in_main_file(cursor: Any) -> bool:
        loc = cursor.location
        return loc.file is not None and \
            os.path.samefile(str(loc.file), abspath)

    def walk(cursor: Any, blessed: bool,
             func_stack: list[FuncDef]) -> None:
        kind = cursor.kind
        if kind in (CK.FUNCTION_DECL, CK.CXX_METHOD, CK.CONSTRUCTOR,
                    CK.FUNCTION_TEMPLATE) and cursor.is_definition() \
                and in_main_file(cursor):
            fn = FuncDef(name=cursor.spelling,
                         qual=cursor.spelling,
                         line=cursor.location.line - 1)
            model.funcs.append(fn)
            func_stack = func_stack + [fn]
            blessed = blessed or cursor.spelling in BLESSED_HELPERS
        if kind in (CK.VAR_DECL, CK.PARM_DECL, CK.FIELD_DECL) and \
                in_main_file(cursor):
            spelling = cursor.type.spelling
            if "VirtualRound" in spelling or "__int128" in spelling:
                model.clock_names.add(cursor.spelling)
            elif "atomic" in spelling:
                model.atomic_names.add(cursor.spelling)
            elif re.search(r"\b(?:u?int\d+_t|size_t)\b", spelling):
                model.nonclock_names.add(cursor.spelling)
        if kind == CK.CALL_EXPR and in_main_file(cursor):
            name = cursor.spelling or ""
            for fn in func_stack:
                fn.calls.add(name)
            if name in DISPATCHERS:
                lam = next((c for c in cursor.walk_preorder()
                            if c.kind == CK.LAMBDA_EXPR), None)
                if lam is not None:
                    body = next((c for c in lam.get_children()
                                 if c.kind == CK.COMPOUND_STMT), None)
                    if body is not None:
                        btext, boff = _extent_text(text, starts,
                                                   body.extent)
                        params = [p.spelling or None
                                  for p in lam.get_children()
                                  if p.kind == CK.PARM_DECL]
                        model.pool_lambdas.append(PoolLambda(
                            dispatcher=name, params=params,
                            body=mask_nested_dispatchers(
                                btext.strip("{}")),
                            body_line=body.extent.start.line - 1))
            if name == "stream_rng":
                args = [a for a in cursor.get_arguments()]
                if len(args) >= 2:
                    atext, _ = _extent_text(text, starts,
                                            args[-1].extent)
                    model.stream_calls.append(StreamCall(
                        line=cursor.location.line - 1,
                        stream_arg=atext.strip()))
        if kind == CK.CXX_STATIC_CAST_EXPR and in_main_file(cursor):
            target = cursor.type.spelling
            if re.fullmatch(
                    r"(?:const\s+)?(?:std::)?(?:u?int(?:8|16|32|64)_t|"
                    r"size_t|unsigned long|unsigned|long|int|"
                    r"unsigned long long|long long)", target):
                children = list(cursor.get_children())
                if children:
                    atext, _ = _extent_text(text, starts,
                                            children[-1].extent)
                    model.casts.append(CastSite(
                        line=cursor.location.line - 1, arg=atext,
                        blessed=blessed and
                        model.relpath.startswith("src/bulk/")))
        for child in cursor.get_children():
            walk(child, blessed, func_stack)

    try:
        walk(tu.cursor, False, [])
        for fn in model.funcs:
            fn.reads_obs = any(
                c in ("peak_rss_kb",) or c.startswith("proc::") or
                c.startswith("obs::proc::")
                for c in fn.calls) or False
        # Narrow decls keep the structural extraction: an implicit
        # conversion has no dedicated cursor to anchor on.
        stext = "\n".join(src.code)
        sstarts = line_starts_of(stext)
        tmp = FileModel(relpath=relpath, src=src)
        extract_casts(tmp, stext, sstarts)
        model.narrow_decls = tmp.narrow_decls
        # The token-level obs-read scan is more reliable than call
        # spellings for qualified reads.
        structural = build_model_structural(src, relpath)
        by_line = {f.line: f for f in model.funcs}
        for f in structural.funcs:
            if f.reads_obs and f.line in by_line:
                by_line[f.line].reads_obs = True
        if not model.funcs:
            model.funcs = structural.funcs
    except Exception:
        return build_model_structural(src, relpath)
    return model


# --------------------------------------------------------------------------
# slumber-d5: pool-lambda race discipline (shared rule core)
# --------------------------------------------------------------------------

def parse_chain_backward(body: str, end: int) -> tuple[
        Optional[str], list[str], bool]:
    """Postfix chain ending (exclusive) at `end`, walked backward.

    Returns (root, subscripts, is_decl). is_decl is True when the
    target is a bare name immediately preceded by a type token -- a
    declaration, hence a lane-local."""
    subs: list[str] = []
    j = end - 1
    while j >= 0 and body[j].isspace():
        j -= 1
    saw_postfix = False
    while True:
        if j >= 0 and body[j] == "]":
            depth = 0
            k = j
            while k >= 0:
                if body[k] == "]":
                    depth += 1
                elif body[k] == "[":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            if k < 0:
                return None, subs, False
            subs.append(body[k + 1:j])
            saw_postfix = True
            j = k - 1
            while j >= 0 and body[j].isspace():
                j -= 1
            continue
        m = re.search(r"([A-Za-z_]\w*)\s*$", body[:j + 1])
        if not m:
            return None, subs, False
        root = m.group(1)
        j = m.start(1) - 1
        while j >= 0 and body[j].isspace():
            j -= 1
        if j >= 0 and body[j] == ".":
            saw_postfix = True
            j -= 1
            continue
        if j >= 1 and body[j] == ">" and body[j - 1] == "-":
            saw_postfix = True
            j -= 2
            continue
        if j >= 0 and body[j] == ")":
            return None, subs, False  # call-result target: out of scope
        is_decl = (not saw_postfix and j >= 0 and
                   (body[j].isalnum() or body[j] in "_>&*:"))
        return root, subs, is_decl


def parse_chain_forward(body: str, pos: int) -> tuple[
        Optional[str], list[str]]:
    m = re.match(r"[A-Za-z_]\w*", body[pos:])
    if not m:
        return None, []
    root = m.group(0)
    subs: list[str] = []
    j = pos + m.end()
    n = len(body)
    while True:
        while j < n and body[j].isspace():
            j += 1
        if j < n and body[j] == "[":
            k = match_forward(body, j, "[", "]")
            if k < 0:
                break
            subs.append(body[j + 1:k])
            j = k + 1
            continue
        if j < n and (body[j] == "." or body.startswith("->", j)):
            j += 1 if body[j] == "." else 2
            m2 = re.match(r"\s*([A-Za-z_]\w*)", body[j:])
            if not m2:
                break
            j += m2.end()
            continue
        break
    return root, subs


def iter_writes(body: str) -> Iterator[tuple[str, list[str], bool, int]]:
    """Yields (root, subscripts, is_decl, offset) for every store."""
    n = len(body)
    i = 0
    while i < n:
        ch = body[i]
        if ch == "=":
            prev = body[i - 1] if i else ""
            nxt = body[i + 1] if i + 1 < n else ""
            if nxt == "=":
                i += 2
                continue
            if prev in "<>" and i >= 2 and body[i - 2] == prev:
                end = i - 2  # <<= / >>=
            elif prev in "=!<>":
                i += 1
                continue  # comparison
            elif prev in "+-*/%&|^":
                end = i - 1
            else:
                end = i
            root, subs, is_decl = parse_chain_backward(body, end)
            if root:
                yield root, subs, is_decl, i
            i += 1
            continue
        if body.startswith("++", i) or body.startswith("--", i):
            j = i + 2
            while j < n and body[j].isspace():
                j += 1
            if j < n and (body[j].isalpha() or body[j] == "_"):
                root, subs = parse_chain_forward(body, j)
                yield_decl = False
            else:
                root, subs, yield_decl = parse_chain_backward(body, i)
            if root:
                yield root, subs, yield_decl, i
            i += 2
            continue
        i += 1


def top_level_colon(text: str) -> int:
    """Offset of the first top-level single `:` (range-for separator),
    skipping `::` and ternaries; -1 when absent."""
    depth = 0
    saw_question = False
    i = 0
    while i < len(text):
        ch = text[i]
        if ch in "(<[{":
            depth += 1
        elif ch in ")>]}":
            depth -= 1
        elif ch == "?" and depth == 0:
            saw_question = True
        elif ch == ":" and depth == 0:
            if i + 1 < len(text) and text[i + 1] == ":":
                i += 2
                continue
            if i > 0 and text[i - 1] == ":":
                i += 1
                continue
            if saw_question:
                saw_question = False
            else:
                return i
        i += 1
    return -1


def collect_locals_and_derived(lam: PoolLambda) -> tuple[
        set[str], set[str]]:
    body = lam.body
    spec = DISPATCHERS[lam.dispatcher]
    locals_: set[str] = {p for p in lam.params if p}
    derived: set[str] = set()
    spans: set[str] = set()
    for pos in spec.get("index", ()):
        if pos < len(lam.params) and lam.params[pos]:
            derived.add(lam.params[pos])  # type: ignore[arg-type]
    for pos in spec.get("span", ()):
        if pos < len(lam.params) and lam.params[pos]:
            spans.add(lam.params[pos])  # type: ignore[arg-type]
    locals_ |= spans

    decls: list[tuple[str, str]] = []  # (name, initializer text)
    for m in DECL_RE.finditer(body):
        type_tok = m.group(1).split("<")[0].split("::")[-1]
        if type_tok in DECL_TYPE_KEYWORDS or \
                m.group(1) in DECL_TYPE_KEYWORDS:
            continue
        name = m.group(2)
        locals_.add(name)
        decls.append((name, m.group(3) or ""))
    for m in NESTED_LAMBDA_RE.finditer(body):
        for p in split_args(m.group(1)):
            name = param_name(p)
            if name:
                locals_.add(name)
    for m in STRUCTURED_BINDING_RE.finditer(body):
        for piece in m.group(1).split(","):
            name = piece.strip()
            if name:
                locals_.add(name)
    range_fors: list[tuple[str, str]] = []  # (var, range expr)
    for m in re.finditer(r"\bfor\s*\(", body):
        close = match_forward(body, m.end() - 1, "(", ")")
        if close < 0:
            continue
        header = body[m.end():close]
        colon = top_level_colon(header)
        if colon < 0:
            continue
        var = param_name(header[:colon])
        if var:
            locals_.add(var)
            range_fors.append((var, header[colon + 1:]))

    changed = True
    while changed:
        changed = False
        for name, init in decls:
            if name not in derived and word_in(init, derived):
                derived.add(name)
                changed = True
        for var, rng in range_fors:
            if var not in derived and word_in(rng, derived | spans):
                derived.add(var)
                changed = True
    return locals_, derived


def check_d5(model: FileModel, env: TypeEnv,
             suppressed: dict[int, set[str]]) -> list[Finding]:
    if not model.relpath.startswith("src/"):
        return []
    findings = []
    atomics = env.atomic_names | model.atomic_names
    for lam in model.pool_lambdas:
        locals_, derived = collect_locals_and_derived(lam)
        for root, subs, is_decl, offset in iter_writes(lam.body):
            if root in CONTROL_KEYWORDS or is_decl:
                continue
            if root in locals_ or root in atomics:
                continue
            if any(word_in(sub, derived) for sub in subs):
                continue
            line_idx = lam.body_line + lam.body[:offset].count("\n")
            if sc.is_suppressed(suppressed, line_idx, "slumber-d5"):
                continue
            where = (f"'{root}[{subs[-1].strip()}]'" if subs
                     else f"'{root}'")
            findings.append(Finding(
                model.relpath, line_idx + 1, "slumber-d5",
                f"store to captured {where} inside a "
                f"{lam.dispatcher} lambda is not indexed by the "
                f"lane's chunk/index parameter: lanes race on it and "
                f"the merged value depends on scheduling; index a "
                f"per-chunk partial derived from the lambda's "
                f"chunk/index arguments, or make it atomic"))
    return findings


# --------------------------------------------------------------------------
# slumber-d6: stream-tag registry + call-site keying
# --------------------------------------------------------------------------

@dataclass
class Registry:
    tags: dict[str, int] = field(default_factory=dict)  # name -> value
    findings: list[Finding] = field(default_factory=list)


def parse_registry(src: SourceFile, relpath: str,
                   suppressed: dict[int, set[str]],
                   raw: str) -> Registry:
    # Tag values are matched against the RAW text: the code view blanks
    # C++14 digit-separator groups ('5EED') as if they were char
    # literals, which would corrupt every registry constant. The code
    # view still gates each match so commented-out decls don't count.
    reg = Registry()
    text = "\n".join(src.code)
    starts = line_starts_of(raw)
    decl_lines: dict[str, int] = {}
    for m in TAG_DECL_RE.finditer(raw):
        name = m.group(1)
        value = int(m.group(2).replace("'", ""), 16)
        line_idx = line_of(starts, m.start())
        if line_idx >= len(src.code) or name not in src.code[line_idx]:
            continue  # declaration lives inside a comment or string
        reg.tags[name] = value
        decl_lines[name] = line_idx
        window = range(max(0, line_idx - 3), line_idx + 1)
        annotated = any(TAG_ANNOTATION_RE.search(src.comments[j])
                        for j in window if j < len(src.comments))
        if not annotated and not sc.is_suppressed(
                suppressed, line_idx, "slumber-d6"):
            reg.findings.append(Finding(
                relpath, line_idx + 1, "slumber-d6",
                f"stream tag {name} lacks the registry annotation "
                f"`// SLUMBER-STREAM-TAG(<name>): <purpose>` on the "
                f"preceding lines"))
    array = re.search(r"kAllStreamTags\s*\[\s*\]\s*=\s*\{", text)
    if array:
        close = match_forward(text, array.end() - 1, "{", "}")
        listed = set(re.findall(r"k\w*Tag", text[array.end():close])) \
            if close > 0 else set()
        for name, line_idx in decl_lines.items():
            if name not in listed and not sc.is_suppressed(
                    suppressed, line_idx, "slumber-d6"):
                reg.findings.append(Finding(
                    relpath, line_idx + 1, "slumber-d6",
                    f"stream tag {name} is not listed in "
                    f"kAllStreamTags: the pairwise-distinctness proof "
                    f"does not cover it"))
    ordered = sorted(decl_lines.items(), key=lambda kv: kv[1])
    seen_high: dict[int, str] = {}
    for name, line_idx in ordered:
        high = reg.tags[name] >> 32
        if high in seen_high:
            if not sc.is_suppressed(suppressed, line_idx, "slumber-d6"):
                reg.findings.append(Finding(
                    relpath, line_idx + 1, "slumber-d6",
                    f"stream tag {name} collides with "
                    f"{seen_high[high]} in the high 32 bits "
                    f"(0x{high:08x}): their keyed streams are "
                    f"correlated; pick a fresh prefix"))
        else:
            seen_high[high] = name
    return reg


def check_d6_callsites(model: FileModel, registry: Registry,
                       suppressed: dict[int, set[str]]) -> list[Finding]:
    if not model.relpath.startswith("src/"):
        return []
    findings = []
    text = "\n".join(model.src.code)
    tag_names = set(registry.tags)
    for call in model.stream_calls:
        arg = call.stream_arg
        if word_in(arg, tag_names):
            continue
        # One-hop lookup: the stream variable's definition(s).
        resolved = False
        for ident in WORD_RE.findall(arg):
            if ident in CONTROL_KEYWORDS:
                continue
            for dm in re.finditer(
                    rf"\b{re.escape(ident)}\s*=\s*([^;]*);", text):
                if word_in(dm.group(1), tag_names):
                    resolved = True
                    break
            if resolved:
                break
        if resolved:
            continue
        window = range(max(0, call.line - 3), call.line + 1)
        if any(DISCIPLINE_RE.search(model.src.comments[j])
               for j in window if j < len(model.src.comments)):
            continue
        if sc.is_suppressed(suppressed, call.line, "slumber-d6"):
            continue
        findings.append(Finding(
            model.relpath, call.line + 1, "slumber-d6",
            f"util::stream_rng stream argument '{arg}' does not key "
            f"through a registered tag (util/stream_tags.h) and is "
            f"not marked `// SLUMBER-STREAM-DISCIPLINE(block-counter): "
            f"<why sound>`: unregistered streams can silently collide "
            f"with another subsystem's draws"))
    return findings


# --------------------------------------------------------------------------
# slumber-d7: clock-width safety
# --------------------------------------------------------------------------

def references_clock(expr: str, env: TypeEnv, model: FileModel) -> bool:
    clock = (env.clock_names | model.clock_names) - model.nonclock_names
    fns = env.clock_fns | model.clock_fns
    for m in WORD_RE.finditer(expr):
        name = m.group(0)
        pre = expr[:m.start()].rstrip()
        if pre.endswith("::"):
            continue  # std::round etc.: qualified, different entity
        post = expr[m.end():].lstrip()
        if post.startswith("("):
            if name in fns:
                return True
            continue
        if name in clock:
            return True
    return False


def check_d7(model: FileModel, env: TypeEnv,
             suppressed: dict[int, set[str]]) -> list[Finding]:
    if not model.relpath.startswith("src/"):
        return []
    findings = []
    for cast in model.casts:
        if cast.blessed or not references_clock(cast.arg, env, model):
            continue
        if sc.is_suppressed(suppressed, cast.line, "slumber-d7"):
            continue
        findings.append(Finding(
            model.relpath, cast.line + 1, "slumber-d7",
            f"static_cast narrows a 128-bit virtual-clock value "
            f"('{cast.arg.strip()}') to 64 bits outside the blessed "
            f"saturate helpers: deep recursions overflow 64 bits "
            f"(K >= 62 at n = 10M); call saturate_round() or "
            f"round_halves() (src/bulk/engine.h) instead"))
    for decl in model.narrow_decls:
        if decl.blessed:
            continue
        init = decl.init
        if any(h in init for h in BLESSED_HELPERS):
            continue
        if "static_cast" in init:
            continue  # the cast entry above already judged it
        if not references_clock(init, env, model):
            continue
        if sc.is_suppressed(suppressed, decl.line, "slumber-d7"):
            continue
        findings.append(Finding(
            model.relpath, decl.line + 1, "slumber-d7",
            f"'{decl.name}' implicitly narrows a 128-bit virtual-"
            f"clock value to 64 bits at initialization: use "
            f"VirtualRound, or saturate_round()/round_halves() "
            f"(src/bulk/engine.h) when a 64-bit value is required"))
    return findings


# --------------------------------------------------------------------------
# slumber-d8: transitive obs write-only discipline
# --------------------------------------------------------------------------

def check_d8(models: list[FileModel],
             suppressed_by_path: dict[str, dict[int, set[str]]]
             ) -> list[Finding]:
    scope = [m for m in models
             if m.relpath.startswith("src/") and
             not m.relpath.startswith("src/obs/")]
    tainted: dict[str, list[str]] = {}  # simple name -> chain
    queue: list[str] = []
    for model in scope:
        for fn in model.funcs:
            if fn.reads_obs and fn.name not in tainted:
                tainted[fn.name] = [fn.name, "obs telemetry read"]
                queue.append(fn.name)
    while queue:
        target = queue.pop()
        for model in scope:
            for fn in model.funcs:
                if fn.name in tainted:
                    continue
                simple_calls = {c.rsplit("::", 1)[-1] for c in fn.calls}
                if target in simple_calls:
                    tainted[fn.name] = [fn.name] + tainted[target]
                    queue.append(fn.name)
    findings = []
    for model in scope:
        suppressed = suppressed_by_path.get(model.relpath, {})
        for fn in model.funcs:
            if fn.name not in tainted:
                continue
            if sc.is_suppressed(suppressed, fn.line, "slumber-d8"):
                continue
            chain = " -> ".join(tainted[fn.name])
            findings.append(Finding(
                model.relpath, fn.line + 1, "slumber-d8",
                f"function '{fn.qual}' transitively reads telemetry "
                f"state ({chain}): obs values are write-only outside "
                f"src/obs/ -- a measured quantity steering src/ "
                f"computation would make trial output "
                f"machine-dependent"))
    return findings


# --------------------------------------------------------------------------
# analysis driver: per-file pass + cross-file D8, with caching
# --------------------------------------------------------------------------

def analyzer_digest() -> str:
    h = hashlib.sha256()
    here = os.path.dirname(os.path.abspath(__file__))
    for name in ("ast_checks.py", "slumber_checks.py"):
        try:
            with open(os.path.join(here, name), "rb") as fh:
                h.update(fh.read())
        except OSError:
            h.update(b"<missing>")
    return h.hexdigest()


def file_sha(path: str) -> str:
    h = hashlib.sha256()
    try:
        with open(path, "rb") as fh:
            h.update(fh.read())
    except OSError:
        h.update(b"<unreadable>")
    return h.hexdigest()


@dataclass
class FileResult:
    relpath: str
    findings: list[Finding]
    funcs: list[FuncDef]
    d8_suppressed: dict[int, set[str]]


def analyze_one(abspath: str, relpath: str, engine: str,
                env: TypeEnv, registry: Registry,
                compile_args: list[str]) -> FileResult:
    with open(abspath, "r", encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    src = sc.strip_to_views(relpath, text)
    suppressed, nolint_findings = sc.nolint_suppressions(src)
    if engine == "ast":
        model = build_model_ast(abspath, relpath, src, compile_args)
    else:
        model = build_model_structural(src, relpath)
    findings = list(nolint_findings)
    if relpath == REGISTRY_REL:
        findings += parse_registry(src, relpath, suppressed, text).findings
    findings += check_d5(model, env, suppressed)
    findings += check_d6_callsites(model, registry, suppressed)
    findings += check_d7(model, env, suppressed)
    return FileResult(relpath, findings, model.funcs, suppressed)


def build_env(files: list[tuple[str, str]]) -> TypeEnv:
    env = TypeEnv()
    for abspath, relpath in files:
        try:
            with open(abspath, "r", encoding="utf-8",
                      errors="replace") as fh:
                text = fh.read()
        except OSError:
            continue
        src = sc.strip_to_views(relpath, text)
        model = FileModel(relpath=relpath, src=src)
        extract_type_facts(model, "\n".join(src.code))
        env.clock_names |= model.clock_names
        env.clock_fns |= model.clock_fns
        env.atomic_names |= model.atomic_names
    env.clock_names -= env.clock_fns
    return env


def iter_tree_files(root: str) -> Iterator[tuple[str, str]]:
    base = os.path.join(root, "src")
    if not os.path.isdir(base):
        return
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = sorted(d for d in dirnames
                             if not d.startswith((".", "__")))
        for name in sorted(filenames):
            if name.endswith(CXX_EXTENSIONS):
                abspath = os.path.join(dirpath, name)
                yield abspath, os.path.relpath(
                    abspath, root).replace(os.sep, "/")


def load_compile_args(build_dir: str) -> dict[str, list[str]]:
    """abspath -> clang args from compile_commands.json (ast engine)."""
    ccpath = os.path.join(build_dir, "compile_commands.json")
    args_by_file: dict[str, list[str]] = {}
    if not os.path.isfile(ccpath):
        return args_by_file
    try:
        with open(ccpath, "r", encoding="utf-8") as fh:
            entries = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return args_by_file
    for entry in entries:
        abspath = os.path.normpath(
            os.path.join(entry["directory"], entry["file"]))
        raw = entry.get("arguments") or \
            (entry.get("command", "").split())
        args = []
        skip = False
        for tok in raw[1:]:
            if skip:
                skip = False
                continue
            if tok in ("-o", "-c"):
                skip = tok == "-o"
                continue
            if os.path.normpath(os.path.join(
                    entry["directory"], tok)) == abspath:
                continue
            args.append(tok)
        args_by_file[abspath] = args
    return args_by_file


def run_scan(files: list[tuple[str, str]], engine: str, root: str,
             build_dir: str, use_cache: bool) -> tuple[
                 list[Finding], int, int]:
    """Returns (findings, cache hits, analyzed count)."""
    env = build_env(files)
    registry_path = os.path.join(root, REGISTRY_REL)
    if os.path.isfile(registry_path):
        with open(registry_path, "r", encoding="utf-8",
                  errors="replace") as fh:
            reg_raw = fh.read()
        reg_src = sc.strip_to_views(REGISTRY_REL, reg_raw)
        reg_suppressed, _ = sc.nolint_suppressions(reg_src)
        registry = parse_registry(reg_src, REGISTRY_REL, reg_suppressed,
                                  reg_raw)
    else:
        registry = Registry()
        registry.findings.append(Finding(
            REGISTRY_REL, 1, "slumber-d6",
            "stream-tag registry src/util/stream_tags.h not found: "
            "every keyed RNG tag must be declared there"))

    compile_args = load_compile_args(build_dir) if engine == "ast" else {}
    fallback_args = ["-xc++", "-std=c++20", "-I" + os.path.join(
        root, "src")]
    cache_dir = os.path.join(build_dir, ".slumber-ast-cache")
    if use_cache:
        os.makedirs(cache_dir, exist_ok=True)
    base_key = "\0".join((engine, analyzer_digest(),
                          libclang_version() if engine == "ast" else "-",
                          file_sha(registry_path), env.digest()))

    results: list[FileResult] = []
    hits = 0
    analyzed = 0
    for abspath, relpath in files:
        key = hashlib.sha256(
            (base_key + "\0" + relpath + "\0" +
             file_sha(abspath)).encode()).hexdigest()
        cache_path = os.path.join(cache_dir, key + ".json")
        if use_cache and os.path.isfile(cache_path):
            try:
                with open(cache_path, "r", encoding="utf-8") as fh:
                    cached = json.load(fh)
                results.append(FileResult(
                    relpath,
                    [Finding(*f) for f in cached["findings"]],
                    [FuncDef(name=f[0], qual=f[1], line=f[2],
                             calls=set(f[3]), reads_obs=f[4])
                     for f in cached["funcs"]],
                    {int(k): set(v)
                     for k, v in cached["d8_suppressed"].items()}))
                hits += 1
                continue
            except (OSError, json.JSONDecodeError, KeyError,
                    TypeError):
                pass
        result = analyze_one(abspath, relpath, engine, env, registry,
                             compile_args.get(abspath, fallback_args))
        analyzed += 1
        results.append(result)
        if use_cache:
            tmp = cache_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({
                    "findings": [[f.path, f.line, f.rule, f.message]
                                 for f in result.findings],
                    "funcs": [[f.name, f.qual, f.line,
                               sorted(f.calls), f.reads_obs]
                              for f in result.funcs],
                    "d8_suppressed": {
                        str(k): sorted(v)
                        for k, v in result.d8_suppressed.items()},
                }, fh)
            os.replace(tmp, cache_path)

    findings = list(registry.findings)
    for result in results:
        findings.extend(result.findings)
    d8_models = []
    for result in results:
        model = FileModel(relpath=result.relpath,
                          src=SourceFile(path=result.relpath))
        model.funcs = result.funcs
        d8_models.append(model)
    findings += check_d8(
        d8_models, {r.relpath: r.d8_suppressed for r in results})
    # Registry findings can be duplicated when the registry is also a
    # scanned file; dedup keeps reports stable.
    unique = sorted(set(findings),
                    key=lambda f: (f.path, f.line, f.rule, f.message))
    return unique, hits, analyzed


# --------------------------------------------------------------------------
# fixtures / self-test
# --------------------------------------------------------------------------

def fixture_scope(name: str) -> str:
    if name.startswith(("d5_", "d7_")):
        return f"src/bulk/{name}"
    if name.startswith("d6_"):
        return f"src/fault/{name}"
    if name.startswith("d8_obs_"):
        return f"src/obs/{name}"
    return f"src/lint_fixture/{name}"


def run_self_test(fixtures_dir: str, engine: str) -> int:
    if not os.path.isdir(fixtures_dir):
        print(f"error: fixtures dir not found: {fixtures_dir}",
              file=sys.stderr)
        return 2
    names = sorted(n for n in os.listdir(fixtures_dir)
                   if n.endswith(CXX_EXTENSIONS))
    if not names:
        print("error: no fixtures found", file=sys.stderr)
        return 2
    files = [(os.path.join(fixtures_dir, n), fixture_scope(n))
             for n in names]
    env = build_env(files)

    registry = Registry()
    reg_fixture = os.path.join(fixtures_dir, "d6_registry_ok.h")
    if os.path.isfile(reg_fixture):
        with open(reg_fixture, "r", encoding="utf-8") as fh:
            reg_raw = fh.read()
        reg_src = sc.strip_to_views("d6_registry_ok.h", reg_raw)
        registry = parse_registry(reg_src, "d6_registry_ok.h", {}, reg_raw)

    failures: list[str] = []
    expectations = 0
    d8_models: list[FileModel] = []
    d8_suppressed: dict[str, dict[int, set[str]]] = {}
    actual_by_file: dict[str, list[Finding]] = {}
    for abspath, scope in files:
        name = os.path.basename(abspath)
        with open(abspath, "r", encoding="utf-8") as fh:
            text = fh.read()
        src = sc.strip_to_views(scope, text)
        suppressed, nolint_findings = sc.nolint_suppressions(src)
        findings = list(nolint_findings)
        if name.startswith("d6_registry_"):
            findings += parse_registry(src, scope, suppressed, text).findings
        else:
            model = build_model_structural(src, scope)
            findings += check_d5(model, env, suppressed)
            findings += check_d6_callsites(model, registry, suppressed)
            findings += check_d7(model, env, suppressed)
            if name.startswith("d8_"):
                d8_models.append(model)
                d8_suppressed[scope] = suppressed
        actual_by_file[scope] = findings
    for finding in check_d8(d8_models, d8_suppressed):
        actual_by_file.setdefault(finding.path, []).append(finding)

    for abspath, scope in files:
        name = os.path.basename(abspath)
        with open(abspath, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        expected: set[tuple[int, str]] = set()
        for idx, line in enumerate(lines):
            for m in MUST_FLAG_RE.finditer(line):
                expected.add((idx + 1, m.group("rule")))
        expectations += len(expected)
        actual_findings = actual_by_file.get(scope, [])
        actual = {(f.line, f.rule) for f in actual_findings}
        for line_no, rule in sorted(expected - actual):
            failures.append(
                f"{name}:{line_no}: expected {rule} finding, got none")
        for line_no, rule in sorted(actual - expected):
            msg = next(f.message for f in actual_findings
                       if (f.line, f.rule) == (line_no, rule))
            failures.append(
                f"{name}:{line_no}: unexpected {rule} finding: {msg}")

    label = f"engine=structural{'+ast' if engine == 'ast' else ''}"
    if failures:
        print(f"ast_checks self-test: FAIL ({len(failures)} mismatches "
              f"over {len(files)} fixtures, {label})")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"ast_checks self-test: OK ({len(files)} fixtures, "
          f"{expectations} must-flag expectations, {label})")
    return 0


# --------------------------------------------------------------------------
# output + main
# --------------------------------------------------------------------------

def emit_gha(findings: list[Finding]) -> None:
    for f in findings:
        message = f.message.replace("%", "%25").replace(
            "\n", "%0A")
        print(f"::error file={f.path},line={f.line},"
              f"title={f.rule}::{message}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="slumber-lint v2 dataflow checks (D5-D8)")
    parser.add_argument("paths", nargs="*",
                        help="restrict to these repo-relative files/dirs")
    parser.add_argument("--root", default=None)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--engine", default="auto",
                        choices=("auto", "ast", "structural"))
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) when the requested engine "
                             "is unavailable instead of skipping")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--report", default=None)
    parser.add_argument("--gha", action="store_true",
                        help="also emit GitHub Actions ::error "
                             "annotations (auto under GITHUB_ACTIONS)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="accepted for runner-interface parity; "
                             "the analysis is single-process")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root or os.path.join(here, "..", ".."))

    if args.list_rules:
        print(__doc__)
        return 0

    engine = args.engine
    if engine == "auto":
        engine = "ast" if HAVE_LIBCLANG else "skip"
    elif engine == "ast" and not HAVE_LIBCLANG:
        engine = "skip"
    if args.self_test:
        # The self-test always has an engine to run: the structural
        # engine is dependency-free, so "no libclang" degrades the
        # fixture check rather than skipping it.
        if engine == "skip":
            engine = "structural"
        return run_self_test(os.path.join(here, "fixtures_ast"), engine)
    if engine == "skip":
        msg = ("ast_checks: libclang python bindings not importable; "
               "skipping the AST half of the lint pass (the lexical "
               "checkers in slumber_checks.py remain the floor). "
               "`pip install libclang` to enable, or run with "
               "--engine structural.")
        if args.require:
            print(f"error: {msg}", file=sys.stderr)
            return 2
        print(msg)
        return 0

    all_files = list(iter_tree_files(root))
    if args.paths:
        wanted = [p.rstrip("/") for p in args.paths]
        all_files = [
            (a, r) for a, r in all_files
            if any(r == w or r.startswith(w + "/") for w in wanted)]
    if not all_files:
        print("ast_checks: no files selected")
        return 0

    findings, hits, analyzed = run_scan(
        all_files, engine, root, os.path.abspath(args.build_dir),
        use_cache=not args.no_cache)

    body = "\n".join(f.render() for f in findings)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(body + ("\n" if body else ""))
    if body:
        print(body)
    if args.gha or os.environ.get("GITHUB_ACTIONS"):
        emit_gha(findings)
    summary = (f"ast_checks: {len(all_files)} files "
               f"({hits} cached, {analyzed} analyzed), "
               f"{len(findings)} finding(s), engine={engine}")
    print(summary, file=sys.stderr if findings else sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
