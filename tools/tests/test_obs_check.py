#!/usr/bin/env python3
"""Unit tests for tools/obs_check.py (stdlib unittest only).

Exercises the slumber-obs-v1 validator the way CI uses it -- as a
subprocess over JSONL/trace files on disk -- pinning the manifest and
footer contracts, the per-tid span-nesting check, and the exit-status
interface (0 valid / 1 violation).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import unittest
from typing import Any, Optional

HERE = os.path.dirname(os.path.abspath(__file__))
SCRIPT = os.path.join(HERE, "..", "obs_check.py")


def manifest() -> dict[str, Any]:
    return {"type": "manifest", "schema": "slumber-obs-v1",
            "git_sha": "abc1234", "build": "Release", "host": "ci",
            "pid": 42, "start_unix_ms": 1700000000000, "info": {}}


def span(name: str, ts_us: int, dur_us: int, tid: int = 1,
         lane: int = 0) -> dict[str, Any]:
    return {"type": "span", "name": name, "ts_us": ts_us,
            "dur_us": dur_us, "lane": lane, "tid": tid}


def counter(name: str, ts_us: int, value: int, tid: int = 1,
            lane: int = 0) -> dict[str, Any]:
    return {"type": "counter", "name": name, "ts_us": ts_us,
            "value": value, "lane": lane, "tid": tid}


def footer(events: int) -> dict[str, Any]:
    return {"type": "footer", "events": events, "dropped": 0,
            "wall_ms": 12, "peak_rss_kb": 4096, "frames": 1,
            "lanes": [{"lane": 0, "busy_ms": 10}]}


def run_check(docs: list[dict[str, Any]],
              trace_doc: Optional[dict[str, Any]] = None
              ) -> "subprocess.CompletedProcess[str]":
    with tempfile.TemporaryDirectory(prefix="obs-check-test-") as tmp:
        jsonl = os.path.join(tmp, "run.jsonl")
        with open(jsonl, "w", encoding="utf-8") as fh:
            for doc in docs:
                fh.write(json.dumps(doc) + "\n")
        cmd = [sys.executable, SCRIPT, jsonl]
        if trace_doc is not None:
            trace = os.path.join(tmp, "trace.json")
            with open(trace, "w", encoding="utf-8") as fh:
                json.dump(trace_doc, fh)
            cmd += ["--trace", trace]
        return subprocess.run(cmd, capture_output=True, text=True,
                              check=False)


class ObsCheckJsonlTest(unittest.TestCase):
    def test_valid_stream_passes(self) -> None:
        docs = [manifest(),
                span("scan", 0, 100),
                span("chunk", 10, 50),
                counter("awake_set", 20, 7),
                footer(3)]
        proc = run_check(docs)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("OK (2 spans, 1 counters", proc.stdout)

    def test_missing_manifest_field_fails(self) -> None:
        bad = manifest()
        del bad["git_sha"]
        proc = run_check([bad, footer(0)])
        self.assertEqual(proc.returncode, 1)
        self.assertIn("manifest missing 'git_sha'", proc.stderr)

    def test_footer_event_count_mismatch_fails(self) -> None:
        proc = run_check([manifest(), span("scan", 0, 100), footer(5)])
        self.assertEqual(proc.returncode, 1)
        self.assertIn("footer counts 5 events, stream has 1", proc.stderr)

    def test_counter_without_value_fails(self) -> None:
        bad = counter("awake_set", 20, 7)
        del bad["value"]
        proc = run_check([manifest(), bad, footer(1)])
        self.assertEqual(proc.returncode, 1)
        self.assertIn("counter event missing 'value'", proc.stderr)

    def test_overlapping_spans_same_tid_fail(self) -> None:
        # [0, 100) and [50, 150) on one tid overlap without nesting:
        # scope-exit emission can never produce that bracketing.
        docs = [manifest(),
                span("a", 0, 100, tid=7),
                span("b", 50, 100, tid=7),
                footer(2)]
        proc = run_check(docs)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("overlaps", proc.stderr)

    def test_overlapping_spans_on_different_tids_pass(self) -> None:
        docs = [manifest(),
                span("a", 0, 100, tid=1),
                span("b", 50, 100, tid=2),
                footer(2)]
        proc = run_check(docs)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_non_json_line_fails(self) -> None:
        with tempfile.TemporaryDirectory(prefix="obs-check-test-") as tmp:
            jsonl = os.path.join(tmp, "run.jsonl")
            with open(jsonl, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(manifest()) + "\n")
                fh.write("not json\n")
                fh.write(json.dumps(footer(0)) + "\n")
            proc = subprocess.run([sys.executable, SCRIPT, jsonl],
                                  capture_output=True, text=True,
                                  check=False)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("not valid JSON", proc.stderr)


class ObsCheckTraceTest(unittest.TestCase):
    def valid_trace(self) -> dict[str, Any]:
        return {"traceEvents": [
                    {"ph": "M", "name": "process_name", "pid": 42,
                     "args": {"name": "slumber"}},
                    {"ph": "X", "name": "scan", "ts": 0, "dur": 100,
                     "pid": 42, "tid": 1}],
                "otherData": {"schema": "slumber-obs-v1"}}

    def test_valid_trace_passes(self) -> None:
        docs = [manifest(), footer(0)]
        proc = run_check(docs, trace_doc=self.valid_trace())
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("trace.json: OK", proc.stdout)

    def test_trace_without_process_name_fails(self) -> None:
        trace = self.valid_trace()
        trace["traceEvents"] = [e for e in trace["traceEvents"]
                                if e.get("ph") != "M"]
        proc = run_check([manifest(), footer(0)], trace_doc=trace)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no process_name metadata", proc.stderr)

    def test_x_event_missing_dur_fails(self) -> None:
        trace = self.valid_trace()
        del trace["traceEvents"][1]["dur"]
        proc = run_check([manifest(), footer(0)], trace_doc=trace)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("X event missing 'dur'", proc.stderr)


if __name__ == "__main__":
    unittest.main()
