#!/usr/bin/env python3
"""Unit tests for tools/compare_bench.py (stdlib unittest only).

Runs the gate as a subprocess -- the exit code and the stderr text ARE
its interface to CI, so that is what the tests pin: the v2/v3 schema
mixing warning, the advisory-only peak-RSS path, the floor-ms noise
gate, and the exit-status contract (0 clean / 1 regression / 2
malformed input).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import unittest
from typing import Any

HERE = os.path.dirname(os.path.abspath(__file__))
SCRIPT = os.path.join(HERE, "..", "compare_bench.py")


def bench(name: str, wall_ms: int, **extra: Any) -> dict[str, Any]:
    entry: dict[str, Any] = {"name": name, "wall_ms": wall_ms,
                             "status": "ok"}
    entry.update(extra)
    return entry


def run_gate(baseline_doc: dict[str, Any], current_doc: dict[str, Any],
             *extra_args: str) -> "subprocess.CompletedProcess[str]":
    with tempfile.TemporaryDirectory(prefix="compare-bench-test-") as tmp:
        base_path = os.path.join(tmp, "baseline.json")
        cur_path = os.path.join(tmp, "current.json")
        with open(base_path, "w", encoding="utf-8") as fh:
            json.dump(baseline_doc, fh)
        with open(cur_path, "w", encoding="utf-8") as fh:
            json.dump(current_doc, fh)
        return subprocess.run(
            [sys.executable, SCRIPT, base_path, cur_path, *extra_args],
            capture_output=True, text=True, check=False)


class CompareBenchTest(unittest.TestCase):
    def test_clean_pair_passes(self) -> None:
        doc = {"schema": "slumber-bench-v3",
               "benches": [bench("mis_small", 1000)]}
        proc = run_gate(doc, doc)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("bench gate: OK", proc.stdout)

    def test_regression_fails(self) -> None:
        base = {"schema": "slumber-bench-v3",
                "benches": [bench("mis_small", 1000)]}
        cur = {"schema": "slumber-bench-v3",
               "benches": [bench("mis_small", 2000)]}
        proc = run_gate(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertIn("wall-time regression", proc.stderr)

    def test_floor_ms_ignores_tiny_absolute_deltas(self) -> None:
        # 3x over ratio, but only +20 ms: timer noise, never a failure.
        base = {"schema": "slumber-bench-v3",
                "benches": [bench("tiny", 10)]}
        cur = {"schema": "slumber-bench-v3",
               "benches": [bench("tiny", 30)]}
        proc = run_gate(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("under floor; ignored", proc.stdout)

    def test_mixed_v2_v3_schemas_warn_but_compare(self) -> None:
        base = {"schema": "slumber-bench-v2",
                "benches": [bench("mis_small", 1000,
                                  build_ms=400, run_ms=600)]}
        cur = {"schema": "slumber-bench-v3",
               "benches": [bench("mis_small", 1050, build_ms=420,
                                 run_ms=630, peak_rss_kb=200000,
                                 phases={"generate": 400, "run": 650})]}
        proc = run_gate(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("mixed schemas", proc.stderr)
        self.assertIn("'slumber-bench-v2' baseline", proc.stderr)
        # The split is still rendered from the shared v2 fields.
        self.assertIn("(420b/630r)", proc.stdout)

    def test_rss_growth_warns_but_never_gates(self) -> None:
        base = {"schema": "slumber-bench-v3",
                "benches": [bench("mis_big", 1000, peak_rss_kb=100000)]}
        cur = {"schema": "slumber-bench-v3",
               "benches": [bench("mis_big", 1010, peak_rss_kb=200000)]}
        proc = run_gate(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("peak RSS", proc.stderr)
        self.assertIn("advisory only, not gated", proc.stderr)

    def test_rss_under_ratio_stays_silent(self) -> None:
        base = {"schema": "slumber-bench-v3",
                "benches": [bench("mis_big", 1000, peak_rss_kb=100000)]}
        cur = {"schema": "slumber-bench-v3",
               "benches": [bench("mis_big", 1010, peak_rss_kb=110000)]}
        proc = run_gate(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("peak RSS", proc.stderr)

    def test_failed_bench_is_fatal_on_its_own(self) -> None:
        base = {"schema": "slumber-bench-v3",
                "benches": [bench("mis_small", 1000)]}
        cur = {"schema": "slumber-bench-v3",
               "benches": [{"name": "mis_small", "wall_ms": 0,
                            "status": "error"}]}
        proc = run_gate(base, cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("failed to run", proc.stderr)

    def test_one_sided_benches_warn_but_pass(self) -> None:
        base = {"schema": "slumber-bench-v3",
                "benches": [bench("removed_bench", 500)]}
        cur = {"schema": "slumber-bench-v3",
               "benches": [bench("new_bench", 500)]}
        proc = run_gate(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("baseline only", proc.stderr)
        self.assertIn("current only", proc.stderr)

    def test_unknown_schema_is_malformed_input(self) -> None:
        base = {"schema": "slumber-bench-v3",
                "benches": [bench("mis_small", 1000)]}
        cur = {"schema": "slumber-bench-v9", "benches": []}
        proc = run_gate(base, cur)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("unknown schema", proc.stderr)

    def test_missing_benches_list_is_malformed_input(self) -> None:
        base = {"schema": "slumber-bench-v3",
                "benches": [bench("mis_small", 1000)]}
        proc = run_gate(base, {"schema": "slumber-bench-v3"})
        self.assertEqual(proc.returncode, 2)
        self.assertIn("missing 'benches' list", proc.stderr)


if __name__ == "__main__":
    unittest.main()
