#!/usr/bin/env python3
"""Structural validator for slumber telemetry exports (slumber-obs-v1).

Checks a JSONL event stream written by `--obs-out` (and optionally the
Chrome trace-event file written by `--obs-trace`) for schema
conformance, so CI can assert that an instrumented run produced a
well-formed export without eyeballing Perfetto:

  * every line parses as a JSON object;
  * the first line is the manifest (type "manifest", schema
    "slumber-obs-v1", git_sha / build / host / pid / start_unix_ms /
    info all present);
  * every other line is a span / counter / instant event with the
    fields the schema fixes for its type (ts_us always; dur_us for
    spans; value for counters; events carry lane and tid);
  * the last line is the footer (totals, per-lane busy time, chunk
    imbalance summary), and its event count matches the stream;
  * per (tid), span intervals nest properly — spans are emitted at
    scope exit, so sorted by (start, -end) they must form a stack.

With --trace TRACE.json the Chrome file is additionally checked: valid
JSON, a traceEvents list whose X entries carry ts/dur/pid/tid, plus
the process-name metadata Perfetto uses for labeling.

Usage:
    tools/obs_check.py RUN.jsonl [--trace TRACE.json]

Exit status: 0 when valid, 1 on any schema violation, 2 on unreadable
input. Dependency-free by design (stdlib json only).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, NoReturn

Event = dict[str, Any]

SCHEMA = "slumber-obs-v1"
MANIFEST_FIELDS = ("schema", "git_sha", "build", "host", "pid",
                   "start_unix_ms", "info")
FOOTER_FIELDS = ("events", "dropped", "wall_ms", "peak_rss_kb", "frames",
                 "lanes")
EVENT_TYPES = ("span", "counter", "instant")


class Violation(Exception):
    pass


def fail(line_no: int, why: str) -> NoReturn:
    raise Violation(f"line {line_no}: {why}")


def check_event(line_no: int, event: Event) -> None:
    kind = event.get("type")
    if kind not in EVENT_TYPES:
        fail(line_no, f"unknown event type {kind!r}")
    for key in ("name", "ts_us", "lane", "tid"):
        if key not in event:
            fail(line_no, f"{kind} event missing {key!r}")
    if kind == "span" and "dur_us" not in event:
        fail(line_no, "span event missing 'dur_us'")
    if kind == "counter" and "value" not in event:
        fail(line_no, "counter event missing 'value'")


def check_nesting(
        spans: dict[Any, list[tuple[float, float, str, int]]],
) -> list[str]:
    """Spans of one tid, sorted by (start, -end), must form a stack:
    each span either nests inside the enclosing one or starts after it
    ends. Overlap without containment means broken bracketing."""
    violations: list[str] = []
    for tid in sorted(spans):
        stack: list[tuple[float, float, str, int]] = []
        for start, end, name, line_no in sorted(
                spans[tid], key=lambda s: (s[0], -s[1])):
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                enclosing = stack[-1]
                violations.append(
                    f"line {line_no}: span '{name}' "
                    f"[{start}, {end}) on tid {tid} overlaps "
                    f"'{enclosing[2]}' [{enclosing[0]}, {enclosing[1]}) "
                    f"without nesting")
                continue
            stack.append((start, end, name, line_no))
    return violations


def check_jsonl(path: str) -> tuple[dict[str, int], Event]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as err:
        sys.exit(f"error: cannot read {path}: {err}")
    if not lines:
        raise Violation("empty file: expected at least manifest + footer")

    docs: list[Event] = []
    for idx, line in enumerate(lines, start=1):
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as err:
            fail(idx, f"not valid JSON: {err}")
        if not isinstance(doc, dict):
            fail(idx, "line is not a JSON object")
        docs.append(doc)

    manifest = docs[0]
    if manifest.get("type") != "manifest":
        fail(1, f"first line must be the manifest, got {manifest.get('type')!r}")
    if manifest.get("schema") != SCHEMA:
        fail(1, f"manifest schema {manifest.get('schema')!r}, want {SCHEMA!r}")
    for key in MANIFEST_FIELDS:
        if key not in manifest:
            fail(1, f"manifest missing {key!r}")
    if not isinstance(manifest["info"], dict):
        fail(1, "manifest 'info' must be an object")

    footer = docs[-1]
    if footer.get("type") != "footer":
        fail(len(docs), f"last line must be the footer, got "
                        f"{footer.get('type')!r}")
    for key in FOOTER_FIELDS:
        if key not in footer:
            fail(len(docs), f"footer missing {key!r}")
    if not isinstance(footer["lanes"], list):
        fail(len(docs), "footer 'lanes' must be a list")
    for lane in footer["lanes"]:
        if "lane" not in lane or "busy_ms" not in lane:
            fail(len(docs), f"footer lane entry {lane!r} missing "
                            f"'lane'/'busy_ms'")

    counts = dict.fromkeys(EVENT_TYPES, 0)
    spans_by_tid: dict[Any, list[tuple[float, float, str, int]]] = {}
    for idx, event in enumerate(docs[1:-1], start=2):
        check_event(idx, event)
        counts[event["type"]] += 1
        if event["type"] == "span":
            start = float(event["ts_us"])
            spans_by_tid.setdefault(event["tid"], []).append(
                (start, start + float(event["dur_us"]), event["name"], idx))

    total = sum(counts.values())
    if footer["events"] != total:
        fail(len(docs), f"footer counts {footer['events']} events, "
                        f"stream has {total}")

    nesting = check_nesting(spans_by_tid)
    if nesting:
        raise Violation("; ".join(nesting[:5]) +
                        (f" (+{len(nesting) - 5} more)"
                         if len(nesting) > 5 else ""))
    return counts, manifest


def check_trace(path: str) -> dict[Any, int]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as err:
        sys.exit(f"error: cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        raise Violation(f"trace is not valid JSON: {err}") from err
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise Violation("trace missing 'traceEvents' list")
    phases: dict[Any, int] = {}
    saw_process_name = False
    for idx, event in enumerate(events):
        ph = event.get("ph")
        phases[ph] = phases.get(ph, 0) + 1
        if ph == "M" and event.get("name") == "process_name":
            saw_process_name = True
        if ph == "X":
            for key in ("name", "ts", "dur", "pid", "tid"):
                if key not in event:
                    raise Violation(
                        f"traceEvents[{idx}]: X event missing {key!r}")
    if not saw_process_name:
        raise Violation("trace has no process_name metadata event")
    other = doc.get("otherData", {})
    if other.get("schema") != SCHEMA:
        raise Violation(f"trace otherData schema {other.get('schema')!r}, "
                        f"want {SCHEMA!r}")
    return phases


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate slumber-obs-v1 telemetry exports.")
    parser.add_argument("jsonl", help="JSONL stream from --obs-out")
    parser.add_argument("--trace", help="Chrome trace file from --obs-trace")
    args = parser.parse_args()

    try:
        counts, manifest = check_jsonl(args.jsonl)
    except Violation as err:
        print(f"obs_check: {args.jsonl}: INVALID: {err}", file=sys.stderr)
        return 1
    summary = ", ".join(f"{counts[t]} {t}s" for t in EVENT_TYPES)
    print(f"obs_check: {args.jsonl}: OK ({summary}; "
          f"git {manifest['git_sha']}, build {manifest['build']})")

    if args.trace:
        try:
            phases = check_trace(args.trace)
        except Violation as err:
            print(f"obs_check: {args.trace}: INVALID: {err}", file=sys.stderr)
            return 1
        shape = ", ".join(f"{count} {ph!r}"
                          for ph, count in sorted(phases.items()))
        print(f"obs_check: {args.trace}: OK ({shape})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
