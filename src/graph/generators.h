// Workload generators: the graph families used throughout the tests and
// the benchmark harness.
//
// The paper's motivation is ad-hoc wireless / sensor networks, and its
// analysis is for general graphs (including arboricity-Theta(n) ones,
// Section 1.3). The families below cover: dense and sparse Erdos-Renyi,
// bounded-degree structured topologies (cycle, grid, torus, hypercube),
// high-arboricity graphs (complete, complete bipartite, lollipop),
// heavy-tailed degree graphs (Barabasi-Albert), trees, and random
// geometric / unit-disk graphs as the sensor-network stand-in.
//
// All generators are deterministic in (parameters, seed).
//
// Seed schedules for the G(n, p) family. There are two, and they
// realize *different* (equally distributed) edge sets from the same
// seed:
//
//  * Legacy single-stream (gnp / gnp_avg_degree / gnp_csr /
//    gnp_avg_degree_csr): one Rng& consumed sequentially across the
//    whole vertex triangle. Bit-reproducible given (n, p, rng state),
//    but inherently serial — pair t+1's draw depends on pair t's.
//  * Counter-based per-block (gnp_sharded_csr /
//    gnp_avg_degree_sharded_csr): vertices are split into fixed-size
//    blocks and block b draws from util::stream_rng(seed, b), a pure
//    function of (seed, b). Blocks are independent, so the two CSR
//    passes shard across a thread pool, and the output is bitwise
//    identical at every lane count (including the pool-less serial
//    path). Bit-reproducible given (n, p, seed).
//
// Cross-schedule runs agree statistically (same G(n, p) distribution;
// tests/sharded_gen_test.cc holds the degree distributions together)
// but never bitwise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace slumber::util {
class ThreadPool;
}  // namespace slumber::util

namespace slumber::gen {

/// Graph with n vertices and no edges.
Graph empty(VertexId n);

/// Complete graph K_n.
Graph complete(VertexId n);

/// Cycle C_n (requires n >= 3).
Graph cycle(VertexId n);

/// Path P_n.
Graph path(VertexId n);

/// Star K_{1,n-1}: vertex 0 is the hub.
Graph star(VertexId n);

/// Complete bipartite K_{a,b}; sides are [0,a) and [a,a+b).
Graph complete_bipartite(VertexId a, VertexId b);

/// rows x cols grid (4-neighbor).
Graph grid(VertexId rows, VertexId cols);

/// rows x cols torus (grid with wraparound; requires rows,cols >= 3).
Graph torus(VertexId rows, VertexId cols);

/// d-dimensional hypercube Q_d (n = 2^d vertices).
Graph hypercube(std::uint32_t d);

/// Complete binary tree with n vertices (vertex 0 is the root).
Graph binary_tree(VertexId n);

/// Lollipop graph: clique of size k with a path of length n-k attached.
/// High arboricity head, low arboricity tail.
Graph lollipop(VertexId n, VertexId clique_size);

/// Caterpillar: a spine path of `spine` vertices, each with `legs` leaves.
Graph caterpillar(VertexId spine, VertexId legs);

/// Disjoint union of n/k cliques of size k (plus one smaller remainder).
Graph clique_chain(VertexId n, VertexId clique_size);

/// Erdos-Renyi G(n, p).
Graph gnp(VertexId n, double p, Rng& rng);

/// Erdos-Renyi with expected average degree `avg_deg` (p = avg_deg/(n-1)).
Graph gnp_avg_degree(VertexId n, double avg_deg, Rng& rng);

/// Memory-diet G(n, p): the identical edge set (and final RNG state) as
/// gnp(n, p, rng), but streamed straight into CSR with no edge-list
/// stage — pass 1 counts degrees on a copy of the RNG, pass 2 replays
/// the same skip sequence into the adjacency array. The result drops
/// Graph::edges() (has_edge_list() == false), cutting peak memory from
/// ~16 bytes/edge (CSR + staged edge list) to the CSR arrays alone;
/// this is the 10^8-node path of bench_bulk_scaling --mem-diet.
Graph gnp_csr(VertexId n, double p, Rng& rng);

/// Memory-diet companion of gnp_avg_degree (p = avg_deg/(n-1)).
Graph gnp_avg_degree_csr(VertexId n, double avg_deg, Rng& rng);

/// The edge probability every gnp_avg_degree* variant derives from a
/// target average degree: min(1, avg_deg / (n - 1)). Requires n >= 2.
double gnp_probability_for_avg_degree(VertexId n, double avg_deg);

/// The edge-list reservation the legacy gnp builder makes for G(n, p):
/// expected count plus four sigma of binomial slack, so the builder
/// almost never reallocates (and never doubles peak memory at the
/// 10M-node scale the bulk engine targets).
std::size_t gnp_reserve_hint(VertexId n, double p);

/// Optional instrumentation returned by the sharded builders.
struct ShardedGnpStats {
  /// Number of per-vertex RNG blocks the build used.
  std::uint64_t blocks = 0;
  /// Wrapping sum over blocks of each block stream's next draw after
  /// generation. Each term is a pure function of (seed, block), so the
  /// digest is bitwise identical for every lane count — the
  /// final-RNG-state determinism probe of tests/sharded_gen_test.cc.
  std::uint64_t rng_digest = 0;
};

struct ShardedGnpOptions {
  /// Shards both CSR passes (degree count, fill) and the up-range sort
  /// over this pool's lanes; null runs the identical block schedule
  /// serially (the bitwise reference). Borrowed, not owned.
  util::ThreadPool* pool = nullptr;
  /// First-touch page placement: pre-touch the CSR arrays in the same
  /// contiguous chunks ThreadPool::parallel_for_range later hands to
  /// scanning lanes (util::sharded_fill). Placement only — contents
  /// and determinism are unaffected. No effect without a pool.
  bool first_touch = false;
  /// When non-null, receives build instrumentation.
  ShardedGnpStats* stats_out = nullptr;
};

/// Sharded memory-diet G(n, p): the counter-based per-block seed
/// schedule (see the header comment), streamed straight into CSR with
/// no edge-list stage, both passes parallel over the options' pool.
/// Output is a pure function of (n, p, seed) — bitwise identical for
/// every lane count including the serial pool-less path — but differs
/// from gnp(n, p, Rng(seed)) realization-wise: the two schedules draw
/// the triangle from different streams.
Graph gnp_sharded_csr(VertexId n, double p, std::uint64_t seed,
                      const ShardedGnpOptions& options = {});

/// Sharded companion of gnp_avg_degree (p = avg_deg/(n-1)).
Graph gnp_avg_degree_sharded_csr(VertexId n, double avg_deg,
                                 std::uint64_t seed,
                                 const ShardedGnpOptions& options = {});

/// Uniform random labeled tree (Pruefer sequence).
Graph random_tree(VertexId n, Rng& rng);

/// Random d-regular graph via the configuration model; resamples until
/// simple (requires n*d even; practical for d << n).
Graph random_regular(VertexId n, std::uint32_t d, Rng& rng);

/// Barabasi-Albert preferential attachment: each new vertex attaches
/// `m` edges. Produces heavy-tailed degrees.
Graph barabasi_albert(VertexId n, std::uint32_t m, Rng& rng);

/// Random geometric graph: n points uniform in the unit square, edge iff
/// euclidean distance <= radius. The unit-disk model of sensor networks.
/// Optionally returns the sampled coordinates via `coords_out`.
Graph random_geometric(VertexId n, double radius, Rng& rng,
                       std::vector<std::pair<double, double>>* coords_out =
                           nullptr);

/// Named graph families for parameterized tests and benches.
enum class Family {
  kEmpty,
  kComplete,
  kCycle,
  kPath,
  kStar,
  kGrid,
  kTorus,
  kHypercube,
  kBinaryTree,
  kLollipop,
  kCaterpillar,
  kCliqueChain,
  kGnpSparse,     // G(n, 8/n)
  kGnpDense,      // G(n, 0.5)
  kRandomTree,
  kRandomRegular,  // 4-regular
  kBarabasiAlbert, // m = 3
  kUnitDisk,       // radius ~ sqrt(12/(pi n)): avg degree ~ 12
};

/// All families, for sweeps.
std::vector<Family> all_families();

/// Families with O(1) description that are connected-ish and nontrivial;
/// used by the heavier property suites.
std::vector<Family> core_families();

/// Human-readable family name.
std::string family_name(Family family);

/// Instantiates a family at size ~n with the given seed. The realized
/// vertex count may differ slightly (e.g. hypercube rounds to 2^d).
Graph make(Family family, VertexId n, std::uint64_t seed);

/// Which G(n, p) seed schedule make() uses for the gnp families (see
/// the header comment; other families have a single schedule and
/// ignore the choice).
enum class Schedule {
  kLegacy,   // single-stream gnp / gnp_avg_degree
  kSharded,  // counter-based per-block gnp_sharded_csr family
};

/// All schedules, for CLI enumeration.
std::vector<Schedule> all_schedules();

/// "legacy" / "sharded".
std::string schedule_name(Schedule schedule);

/// Parses a schedule_name() string; returns false on unknown input.
bool schedule_from_name(const std::string& name, Schedule* out);

struct MakeOptions {
  Schedule schedule = Schedule::kLegacy;
  /// Build-time parallelism + first-touch placement for the sharded
  /// schedule (forwarded to ShardedGnpOptions); ignored by kLegacy.
  util::ThreadPool* pool = nullptr;
  bool first_touch = false;
};

/// make() with an explicit generation schedule. kSharded routes the
/// gnp families through the sharded builders (the returned graphs are
/// memory-diet: has_edge_list() is false) and leaves every other
/// family untouched.
Graph make(Family family, VertexId n, std::uint64_t seed,
           const MakeOptions& options);

}  // namespace slumber::gen
