// Graph transforms: derived graphs used by the reductions and the test
// workloads.
//
// The library reduces several of the Barenboim-Tzur problem family to
// MIS on a derived graph: maximal matching runs MIS on the line graph
// (Graph::line_graph), (2*Delta-1)-edge-coloring runs vertex coloring on
// the line graph, and (2,beta)-ruling sets relate to MIS on the graph
// power G^2. The remaining transforms (complement, subdivision,
// Mycielski, disjoint union) build structured adversarial inputs for the
// property-test suites: complements flip independence into cliques,
// subdivisions are bipartite and triangle-free, Mycielski graphs push
// chromatic number up while staying triangle-free, and disjoint unions
// exercise the per-component independence of the protocols.
//
// All transforms are pure functions of the input graph (deterministic,
// no RNG) and return ordinary immutable Graphs.
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.h"

namespace slumber {

/// The k-th graph power G^k: same vertex set, u ~ v iff their distance
/// in g is in [1, k]. power(g, 1) == g (up to representation). k == 0
/// returns the edgeless graph. MIS on G^2 is a 2-ruling set of G.
Graph power(const Graph& g, std::uint32_t k);

/// The complement graph: u ~ v iff u != v and {u,v} is not an edge of g.
/// Quadratic in n by nature; intended for small/medium test graphs.
Graph complement(const Graph& g);

/// Disjoint union of `parts`: vertex ids of part i are offset by the
/// total size of parts 0..i-1.
Graph disjoint_union(std::span<const Graph> parts);

/// The barycentric subdivision: every edge {u,v} is replaced by a path
/// u - x_e - v through a fresh vertex x_e (ids n..n+m-1, in
/// g.edges() order). The result is bipartite and triangle-free.
Graph subdivision(const Graph& g);

/// The Mycielski construction M(g): 2n+1 vertices -- the originals
/// [0,n), shadows [n,2n) with shadow(i) adjacent to the g-neighbors of
/// i, and an apex 2n adjacent to every shadow. Raises the chromatic
/// number by one while preserving triangle-freeness.
Graph mycielski(const Graph& g);

}  // namespace slumber
