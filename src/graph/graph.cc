#include "graph/graph.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace slumber {

VertexId checked_vertex_count(std::uint64_t n, const char* what) {
  if (n > std::numeric_limits<VertexId>::max()) {
    throw std::overflow_error(std::string(what) + ": vertex count " +
                              std::to_string(n) + " overflows VertexId");
  }
  return static_cast<VertexId>(n);
}

std::uint64_t checked_edge_count(std::uint64_t m, const char* what) {
  if (m > std::numeric_limits<EdgeId>::max()) {
    throw std::overflow_error(std::string(what) + ": edge count " +
                              std::to_string(m) + " overflows EdgeId");
  }
  return m;
}

Graph::Graph(VertexId n, std::vector<Edge> edges) : n_(n) {
  checked_edge_count(edges.size(), "Graph");
  for (Edge& e : edges) {
    if (e.u >= n || e.v >= n) {
      throw std::invalid_argument("Graph: edge endpoint out of range");
    }
    if (e.u == e.v) {
      throw std::invalid_argument("Graph: self-loops are not allowed");
    }
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  edges_ = std::move(edges);
  num_edges_ = edges_.size();

  std::vector<std::uint32_t> deg(n, 0);
  for (const Edge& e : edges_) {
    ++deg[e.u];
    ++deg[e.v];
  }
  offsets_.assign(std::uint64_t{n} + 1, 0);
  for (VertexId v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + deg[v];
  adjacency_.resize(offsets_[n]);

  std::vector<CsrOffset> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges_) {
    adjacency_[cursor[e.u]++] = e.v;
    adjacency_[cursor[e.v]++] = e.u;
  }
  // Edges are sorted by (u, v), so each vertex's neighbor list as filled
  // above is sorted for the 'u' side but not necessarily for the 'v' side;
  // sort each range to guarantee the documented port order.
  for (VertexId v = 0; v < n; ++v) {
    std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
              adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]));
    max_degree_ = std::max(max_degree_, deg[v]);
  }
}

const std::vector<Edge>& Graph::edges() const {
  if (!has_edge_list_) {
    throw std::logic_error(
        "Graph::edges: edge list dropped (memory-diet CSR graph); iterate "
        "neighbors() with u < v instead");
  }
  return edges_;
}

Graph Graph::from_csr(VertexId n, util::PodVector<CsrOffset> offsets,
                      util::PodVector<VertexId> adjacency,
                      util::ThreadPool* pool) {
  if (offsets.size() != std::uint64_t{n} + 1 || offsets.front() != 0 ||
      offsets.back() != adjacency.size() || adjacency.size() % 2 != 0) {
    throw std::invalid_argument("Graph::from_csr: malformed CSR shape");
  }
  checked_edge_count(adjacency.size() / 2, "Graph::from_csr");
  Graph g;
  g.n_ = n;
  g.num_edges_ = adjacency.size() / 2;
  g.has_edge_list_ = false;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  // Validate the caller's contract: monotone offsets, each range sorted
  // strictly ascending (no duplicates), in-range endpoints, no
  // self-loops, and symmetric membership ({u,v} in both ranges — checked
  // cheaply via degree-balanced mirror lookups). The scan is per-vertex
  // independent, so it shards over the pool with per-chunk partial
  // mirror counts and degree maxima merged after the barrier.
  auto validate_range = [&g, n](VertexId begin, VertexId end,
                                std::uint64_t* mirrored,
                                std::uint32_t* max_degree) {
    for (VertexId v = begin; v < end; ++v) {
      if (g.offsets_[v] > g.offsets_[v + 1]) {
        throw std::invalid_argument("Graph::from_csr: offsets not monotone");
      }
      const auto nbrs = g.neighbors(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId u = nbrs[i];
        if (u >= n) {
          throw std::invalid_argument(
              "Graph::from_csr: endpoint out of range");
        }
        if (u == v) {
          throw std::invalid_argument("Graph::from_csr: self-loop");
        }
        if (i > 0 && nbrs[i - 1] >= u) {
          throw std::invalid_argument(
              "Graph::from_csr: adjacency range not sorted ascending");
        }
        if (u > v && g.port_to(u, v) >= 0) ++*mirrored;
      }
      *max_degree = std::max(*max_degree, g.degree(v));
    }
  };
  std::uint64_t mirrored = 0;
  if (pool != nullptr && pool->num_threads() > 1) {
    const std::size_t chunks = pool->num_chunks(n);
    std::vector<std::uint64_t> mirrored_parts(chunks, 0);
    std::vector<std::uint32_t> degree_parts(chunks, 0);
    pool->parallel_for_range(
        n, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          validate_range(static_cast<VertexId>(begin),
                         static_cast<VertexId>(end), &mirrored_parts[chunk],
                         &degree_parts[chunk]);
        });
    for (std::size_t c = 0; c < chunks; ++c) {
      mirrored += mirrored_parts[c];
      g.max_degree_ = std::max(g.max_degree_, degree_parts[c]);
    }
  } else {
    validate_range(0, n, &mirrored, &g.max_degree_);
  }
  if (mirrored != g.num_edges_) {
    throw std::invalid_argument("Graph::from_csr: asymmetric adjacency");
  }
  return g;
}

std::int64_t Graph::port_to(VertexId v, VertexId u) const {
  auto nbrs = neighbors(v);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), u);
  if (it == nbrs.end() || *it != u) return -1;
  return it - nbrs.begin();
}

std::pair<Graph, std::vector<VertexId>> Graph::induced(
    std::span<const VertexId> vertices) const {
  // Sorted (original, new) pairs instead of a hash map: lookups are
  // lower_bound on a contiguous array, and the relabeling carries no
  // implementation-defined container state (lint rule slumber-d2).
  std::vector<VertexId> to_original(vertices.begin(), vertices.end());
  std::vector<std::pair<VertexId, VertexId>> to_new;
  to_new.reserve(to_original.size());
  for (VertexId i = 0; i < to_original.size(); ++i) {
    to_new.emplace_back(to_original[i], i);
  }
  std::sort(to_new.begin(), to_new.end());
  if (std::adjacent_find(to_new.begin(), to_new.end(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first;
                         }) != to_new.end()) {
    throw std::invalid_argument("Graph::induced: duplicate vertex");
  }
  const auto lookup = [&to_new](VertexId original) -> std::int64_t {
    auto it = std::lower_bound(
        to_new.begin(), to_new.end(), original,
        [](const auto& entry, VertexId key) { return entry.first < key; });
    if (it == to_new.end() || it->first != original) return -1;
    return it->second;
  };
  std::vector<Edge> sub_edges;
  for (const Edge& e : edges_) {
    const std::int64_t iu = lookup(e.u);
    if (iu < 0) continue;
    const std::int64_t iv = lookup(e.v);
    if (iv < 0) continue;
    sub_edges.push_back(
        {static_cast<VertexId>(iu), static_cast<VertexId>(iv)});
  }
  return {Graph(static_cast<VertexId>(to_original.size()), std::move(sub_edges)),
          std::move(to_original)};
}

Graph Graph::line_graph() const {
  const auto m =
      checked_vertex_count(edges_.size(), "Graph::line_graph");
  // Bucket edge ids by endpoint; any two edge ids in the same bucket are
  // adjacent in the line graph.
  std::vector<std::vector<EdgeId>> incident(n_);
  for (EdgeId e = 0; e < m; ++e) {
    incident[edges_[e].u].push_back(e);
    incident[edges_[e].v].push_back(e);
  }
  GraphBuilder builder(m);
  for (VertexId v = 0; v < n_; ++v) {
    const auto& bucket = incident[v];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      for (std::size_t j = i + 1; j < bucket.size(); ++j) {
        builder.add_edge(bucket[i], bucket[j]);
      }
    }
  }
  return std::move(builder).build();
}

std::string Graph::summary() const {
  // num_edges_, not edges_.size(): memory-diet graphs drop the edge
  // list but still know their edge count.
  return "n=" + std::to_string(n_) + " m=" + std::to_string(num_edges_) +
         " maxdeg=" + std::to_string(max_degree_);
}

void GraphBuilder::add_edges(std::span<const Edge> edges) {
  const std::size_t needed = edges_.size() + edges.size();
  if (needed > edges_.capacity()) {
    edges_.reserve(std::max(needed, edges_.size() + edges_.size() / 2));
  }
  for (const Edge& e : edges) edges_.push_back(normalize(e.u, e.v));
}

Graph GraphBuilder::build() && {
  return Graph(n_, std::move(edges_));
}

}  // namespace slumber
