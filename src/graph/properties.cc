#include "graph/properties.h"

#include <algorithm>
#include <queue>

namespace slumber {

Components connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  Components result;
  result.component_of.assign(n, kInvalidVertex);
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (result.component_of[start] != kInvalidVertex) continue;
    const VertexId comp = result.count++;
    stack.push_back(start);
    result.component_of[start] = comp;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : g.neighbors(v)) {
        if (result.component_of[u] == kInvalidVertex) {
          result.component_of[u] = comp;
          stack.push_back(u);
        }
      }
    }
  }
  return result;
}

bool is_connected(const Graph& g) {
  return connected_components(g).count <= 1;
}

std::vector<std::int64_t> bfs_distances(const Graph& g, VertexId source) {
  std::vector<std::int64_t> dist(g.num_vertices(), -1);
  std::queue<VertexId> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop();
    for (VertexId u : g.neighbors(v)) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        queue.push(u);
      }
    }
  }
  return dist;
}

bool is_bipartite(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<std::int8_t> side(n, -1);
  std::queue<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (side[start] >= 0) continue;
    side[start] = 0;
    queue.push(start);
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop();
      for (VertexId u : g.neighbors(v)) {
        if (side[u] < 0) {
          side[u] = static_cast<std::int8_t>(1 - side[v]);
          queue.push(u);
        } else if (side[u] == side[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

std::int64_t eccentricity(const Graph& g, VertexId source) {
  std::int64_t ecc = 0;
  for (std::int64_t d : bfs_distances(g, source)) ecc = std::max(ecc, d);
  return ecc;
}

std::int64_t diameter(const Graph& g) {
  if (g.num_vertices() == 0) return -1;
  std::int64_t diam = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    diam = std::max(diam, eccentricity(g, v));
  }
  return diam;
}

DegeneracyResult degeneracy_order(const Graph& g) {
  const VertexId n = g.num_vertices();
  DegeneracyResult result;
  result.order.reserve(n);
  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  // Bucket queue over current degrees.
  std::vector<std::vector<VertexId>> buckets(max_deg + 1);
  for (VertexId v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> removed(n, false);
  std::uint32_t cursor = 0;
  for (VertexId removed_count = 0; removed_count < n; ++removed_count) {
    while (cursor <= max_deg && buckets[cursor].empty()) ++cursor;
    // The bucket queue is lazy: entries may be stale, skip them.
    while (true) {
      if (buckets[cursor].empty()) {
        ++cursor;
        continue;
      }
      const VertexId v = buckets[cursor].back();
      buckets[cursor].pop_back();
      if (removed[v] || deg[v] != cursor) continue;
      removed[v] = true;
      result.order.push_back(v);
      result.degeneracy = std::max(result.degeneracy, cursor);
      for (VertexId u : g.neighbors(v)) {
        if (!removed[u]) {
          --deg[u];
          buckets[deg[u]].push_back(u);
          if (deg[u] < cursor) cursor = deg[u];
        }
      }
      break;
    }
  }
  return result;
}

ArboricityBounds arboricity_bounds(const Graph& g) {
  ArboricityBounds bounds;
  const auto n = g.num_vertices();
  const auto m = g.num_edges();
  if (n >= 2 && m > 0) {
    bounds.lower = static_cast<std::uint32_t>((m + n - 2) / (n - 1));
  }
  bounds.upper = degeneracy_order(g).degeneracy;
  bounds.lower = std::min(bounds.lower, bounds.upper);
  return bounds;
}

std::uint64_t triangle_count(const Graph& g) {
  std::uint64_t triangles = 0;
  for (const Edge& e : g.edges()) {
    auto nu = g.neighbors(e.u);
    auto nv = g.neighbors(e.v);
    // Count common neighbors w > v to count each triangle once.
    auto iu = std::lower_bound(nu.begin(), nu.end(), e.v + 1);
    auto iv = std::lower_bound(nv.begin(), nv.end(), e.v + 1);
    while (iu != nu.end() && iv != nv.end()) {
      if (*iu < *iv) {
        ++iu;
      } else if (*iv < *iu) {
        ++iv;
      } else {
        ++triangles;
        ++iu;
        ++iv;
      }
    }
  }
  return triangles;
}

double average_degree(const Graph& g) {
  if (g.num_vertices() == 0) return 0.0;
  return static_cast<double>(g.degree_sum()) /
         static_cast<double>(g.num_vertices());
}

}  // namespace slumber
