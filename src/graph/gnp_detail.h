// Internal shared core of the G(n, p) generator family. Included by
// generators.cc (legacy single-stream gnp / gnp_csr) and
// sharded_gnp.cc (counter-based per-block sharded builders); not part
// of the public generator API.
#pragma once

#include <cmath>
#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace slumber::gen::detail {

/// Batagelj-Brandes geometric-skipping enumeration of the G(n, p) pairs
/// whose higher endpoint v lies in [row_begin, row_end): streams every
/// sampled edge (u, v) with u < v to `fn`, v-major with both
/// coordinates ascending. O(rows + edges) expected; requires
/// 0 < p < 1. Restarting at a row boundary is distribution-exact (the
/// underlying per-pair Bernoulli process is memoryless), which is what
/// lets the sharded builders give every vertex block its own stream.
template <typename Fn>
void for_each_gnp_edge_rows(VertexId row_begin, VertexId row_end, double p,
                            Rng& rng, Fn&& fn) {
  const double log1mp = std::log1p(-p);
  std::int64_t v = row_begin < 1 ? 1 : static_cast<std::int64_t>(row_begin);
  std::int64_t w = -1;
  const auto vend = static_cast<std::int64_t>(row_end);
  while (v < vend) {
    const double r = rng.uniform();
    w += 1 + static_cast<std::int64_t>(std::floor(std::log1p(-r) / log1mp));
    while (w >= v && v < vend) {
      w -= v;
      ++v;
    }
    if (v < vend) fn(static_cast<VertexId>(w), static_cast<VertexId>(v));
  }
}

/// K_n streamed straight into CSR (the p >= 1 degenerate case of the
/// memory-diet builders).
inline Graph complete_csr(VertexId n) {
  // Fill-constructed (not resize): PodVector::resize skips
  // initialization, and the n < 2 return below must hand from_csr
  // all-zero offsets.
  util::PodVector<CsrOffset> offsets(std::uint64_t{n} + 1, 0);
  if (n < 2) {
    return Graph::from_csr(n, std::move(offsets), {});
  }
  checked_edge_count(std::uint64_t{n} * (n - 1) / 2, "complete_csr");
  util::PodVector<VertexId> adjacency;
  adjacency.resize(std::uint64_t{n} * (n - 1));
  CsrOffset next = 0;
  for (VertexId v = 0; v < n; ++v) {
    offsets[std::uint64_t{v} + 1] = offsets[v] + (std::uint64_t{n} - 1);
    for (VertexId u = 0; u < n; ++u) {
      if (u != v) adjacency[next++] = u;
    }
  }
  return Graph::from_csr(n, std::move(offsets), std::move(adjacency));
}

}  // namespace slumber::gen::detail
