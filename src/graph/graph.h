// Graph substrate for the slumber library.
//
// A slumber::Graph is a simple undirected graph stored in compressed
// sparse row (CSR) form. It is the static topology on which the
// synchronous CONGEST simulator (src/sim) runs. Vertices are dense
// integers [0, n). Each vertex's incident edges are numbered by "ports"
// 0..deg(v)-1 in the order they appear in the adjacency array, matching
// the port-numbering assumption of the model in the paper (Section 1.2).
//
// Graphs are immutable after construction; use GraphBuilder to assemble
// edge sets incrementally. All operations that return neighbor lists
// return std::span views into the CSR arrays (no allocation).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/alloc.h"

namespace slumber {

/// Dense vertex identifier. 32 bits cover the bulk engine's 10M+-node
/// regime with headroom to ~4.29 billion vertices; constructors guard
/// against counts that would wrap (see checked_vertex_count below).
using VertexId = std::uint32_t;

/// Identifier of an undirected edge (index into Graph::edges()).
/// Graph construction throws if an edge set would overflow this type.
using EdgeId = std::uint32_t;

/// CSR offset type. Explicitly 64-bit (not size_t, which is 32-bit on
/// some platforms): adjacency holds 2|E| entries, which exceeds 2^32
/// well before |E| overflows EdgeId.
using CsrOffset = std::uint64_t;
static_assert(sizeof(CsrOffset) == 8, "CSR offsets must be 64-bit");

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// An undirected edge as an (u, v) pair with u <= v after normalization.
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Immutable simple undirected graph in CSR form.
class Graph {
 public:
  /// Empty graph (0 vertices).
  Graph() = default;

  /// Builds a graph with `n` vertices from an edge list. Self-loops are
  /// rejected (throws std::invalid_argument); duplicate edges are merged.
  /// Endpoints must be < n.
  Graph(VertexId n, std::vector<Edge> edges);

  /// Memory-diet construction straight from CSR arrays, retaining NO
  /// edge list (has_edge_list() is false and edges() throws
  /// std::logic_error). `offsets` must have n+1 entries with
  /// offsets[0] == 0 and offsets[n] == adjacency.size(); every
  /// adjacency range must be sorted ascending with in-range endpoints
  /// and no self-loops or duplicates, and edge {u,v} must appear in
  /// both endpoint ranges (all validated, throws std::invalid_argument).
  /// This is the 10^8-node path: peak memory is the CSR arrays
  /// themselves, skipping the ~8 bytes/edge staging list of
  /// GraphBuilder (see gen::gnp_csr / gen::gnp_sharded_csr). The arrays
  /// are util::PodVector so producers can size them without a serial
  /// zero-fill and first-touch pages from the lanes that will scan them
  /// (util::sharded_fill). `pool`, when non-null, shards the validation
  /// scan over its lanes (borrowed; accepted graphs are identical for
  /// every lane count — only which malformed-input error surfaces first
  /// can vary).
  static Graph from_csr(VertexId n, util::PodVector<CsrOffset> offsets,
                        util::PodVector<VertexId> adjacency,
                        util::ThreadPool* pool = nullptr);

  VertexId num_vertices() const { return n_; }
  std::size_t num_edges() const { return num_edges_; }

  /// False for memory-diet graphs built by from_csr: the CSR arrays are
  /// authoritative and edges() is unavailable.
  bool has_edge_list() const { return has_edge_list_; }

  /// Degree of vertex v.
  std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Maximum degree over all vertices (0 for the empty graph).
  std::uint32_t max_degree() const { return max_degree_; }

  /// Neighbors of v, sorted ascending. The i-th entry is the neighbor on
  /// port i of v.
  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// The neighbor reached through port `port` of vertex v.
  VertexId neighbor(VertexId v, std::uint32_t port) const {
    return adjacency_[offsets_[v] + port];
  }

  /// CSR offset of v's first adjacency slot: adjacency_offset(v) + port
  /// indexes flat per-directed-edge state arrays (the bulk engine's
  /// per-port protocol state, e.g. Israeli-Itai active ports).
  CsrOffset adjacency_offset(VertexId v) const { return offsets_[v]; }

  /// Port of v that leads to neighbor u, or -1 if {v,u} is not an edge.
  /// Logarithmic in deg(v).
  std::int64_t port_to(VertexId v, VertexId u) const;

  /// True iff {u, v} is an edge.
  bool has_edge(VertexId u, VertexId v) const { return port_to(u, v) >= 0; }

  /// The normalized, sorted edge list. Throws std::logic_error on a
  /// memory-diet graph (see from_csr / has_edge_list); iterate the CSR
  /// via neighbors() with u < v there instead.
  const std::vector<Edge>& edges() const;

  /// True iff the vertex has no incident edges.
  bool is_isolated(VertexId v) const { return degree(v) == 0; }

  /// Sum of degrees = 2|E|.
  std::size_t degree_sum() const { return adjacency_.size(); }

  /// Subgraph induced by `vertices` (need not be sorted; duplicates are
  /// an error). Returns the new graph plus the mapping new-id -> old-id.
  std::pair<Graph, std::vector<VertexId>> induced(
      std::span<const VertexId> vertices) const;

  /// Line graph L(G): one vertex per edge of G; two vertices adjacent iff
  /// the corresponding edges share an endpoint. Used to reduce maximal
  /// matching to MIS (see src/algos/matching.h).
  Graph line_graph() const;

  /// True iff this and `other` have bitwise-identical CSR arrays (same
  /// vertex count, offsets, and adjacency) — equal topology with equal
  /// port numbering, regardless of whether either retains an edge
  /// list. The determinism gates of the sharded generators compare
  /// lane-count variants with this.
  bool same_csr(const Graph& other) const {
    return n_ == other.n_ && offsets_ == other.offsets_ &&
           adjacency_ == other.adjacency_;
  }

  /// A human-readable one-line summary ("n=8 m=12 maxdeg=5").
  std::string summary() const;

 private:
  VertexId n_ = 0;
  std::uint32_t max_degree_ = 0;
  std::uint64_t num_edges_ = 0;
  bool has_edge_list_ = true;
  util::PodVector<CsrOffset> offsets_;   // size n_+1
  util::PodVector<VertexId> adjacency_;  // size 2|E|
  std::vector<Edge> edges_;              // sorted, normalized; empty when
                                         // has_edge_list_ is false
};

/// Narrows a 64-bit vertex count to VertexId, throwing std::overflow_error
/// (naming `what`) when the count cannot be represented. Generators use
/// this so products like rows*cols fail loudly instead of wrapping.
VertexId checked_vertex_count(std::uint64_t n, const char* what);

/// Guards a 64-bit edge count against EdgeId overflow; returns the count.
std::uint64_t checked_edge_count(std::uint64_t m, const char* what);

/// Incremental builder for Graph. Tolerates duplicate edges and
/// both edge orientations; rejects self-loops at build() time.
///
/// At 10M+-node scale the edge buffer dominates peak memory, so callers
/// that know (or can bound) their edge count should reserve() ahead:
/// push_back growth doubles the buffer, briefly holding ~3x the final
/// footprint during the reallocation copy. The streaming path is
/// reserve() once, then add_edges() in chunks.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId n) : n_(n) {}

  /// Pre-allocates space for `edges` edges so subsequent add_edge /
  /// add_edges calls never trigger doubling reallocation.
  void reserve(std::size_t edges) { edges_.reserve(edges); }

  /// Adds the undirected edge {u, v}.
  void add_edge(VertexId u, VertexId v) { edges_.push_back(normalize(u, v)); }

  /// Chunked bulk append: normalizes and appends every edge of `edges`.
  /// Grows by at least 1.5x when capacity is exceeded (instead of the
  /// default doubling), so un-reserved streaming callers cap the
  /// transient overshoot; reserve()-ahead callers never reallocate.
  void add_edges(std::span<const Edge> edges);

  /// Number of vertices the builder was created with.
  VertexId num_vertices() const { return n_; }

  /// Edges added so far (not yet deduplicated).
  std::size_t num_added_edges() const { return edges_.size(); }

  /// Finalizes into an immutable Graph.
  Graph build() &&;

 private:
  static Edge normalize(VertexId u, VertexId v) {
    return u <= v ? Edge{u, v} : Edge{v, u};
  }

  VertexId n_;
  std::vector<Edge> edges_;
};

}  // namespace slumber
