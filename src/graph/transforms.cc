#include "graph/transforms.h"

#include <queue>
#include <stdexcept>
#include <vector>

namespace slumber {

Graph power(const Graph& g, std::uint32_t k) {
  const VertexId n = g.num_vertices();
  if (k == 0) return Graph(n, {});
  if (k == 1) return Graph(n, g.edges());

  GraphBuilder builder(n);
  // BFS to depth k from every vertex; distances are reset lazily via a
  // visit stamp so the scratch arrays are allocated once.
  std::vector<std::uint32_t> dist(n, 0);
  std::vector<VertexId> stamp(n, kInvalidVertex);
  std::queue<VertexId> frontier;
  for (VertexId s = 0; s < n; ++s) {
    stamp[s] = s;
    dist[s] = 0;
    frontier.push(s);
    while (!frontier.empty()) {
      const VertexId u = frontier.front();
      frontier.pop();
      if (dist[u] == k) continue;
      for (const VertexId w : g.neighbors(u)) {
        if (stamp[w] == s) continue;
        stamp[w] = s;
        dist[w] = dist[u] + 1;
        frontier.push(w);
        if (w > s) builder.add_edge(s, w);  // each pair once
      }
    }
  }
  return std::move(builder).build();
}

Graph complement(const Graph& g) {
  const VertexId n = g.num_vertices();
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    auto nbrs = g.neighbors(u);  // sorted ascending
    std::size_t i = 0;
    for (VertexId v = u + 1; v < n; ++v) {
      while (i < nbrs.size() && nbrs[i] < v) ++i;
      if (i < nbrs.size() && nbrs[i] == v) continue;
      builder.add_edge(u, v);
    }
  }
  return std::move(builder).build();
}

Graph disjoint_union(std::span<const Graph> parts) {
  std::uint64_t total = 0;
  for (const Graph& part : parts) total += part.num_vertices();
  if (total > static_cast<std::uint64_t>(kInvalidVertex)) {
    throw std::invalid_argument("disjoint_union: too many vertices");
  }
  GraphBuilder builder(static_cast<VertexId>(total));
  VertexId offset = 0;
  for (const Graph& part : parts) {
    for (const Edge& e : part.edges()) {
      builder.add_edge(e.u + offset, e.v + offset);
    }
    offset += part.num_vertices();
  }
  return std::move(builder).build();
}

Graph subdivision(const Graph& g) {
  const VertexId n = g.num_vertices();
  const auto m = static_cast<VertexId>(g.num_edges());
  GraphBuilder builder(n + m);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge edge = g.edges()[e];
    const VertexId x = n + e;
    builder.add_edge(edge.u, x);
    builder.add_edge(x, edge.v);
  }
  return std::move(builder).build();
}

Graph mycielski(const Graph& g) {
  const VertexId n = g.num_vertices();
  const VertexId apex = 2 * n;
  GraphBuilder builder(2 * n + 1);
  for (const Edge& e : g.edges()) {
    builder.add_edge(e.u, e.v);        // original edge
    builder.add_edge(n + e.u, e.v);    // shadow(u) - v
    builder.add_edge(e.u, n + e.v);    // u - shadow(v)
  }
  for (VertexId v = 0; v < n; ++v) builder.add_edge(n + v, apex);
  return std::move(builder).build();
}

}  // namespace slumber
