// Graph serialization: simple edge-list text format, DIMACS, and DOT
// export (for visualizing recursion trees and MIS results).
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "graph/graph.h"

namespace slumber::io {

/// Writes "n m" on the first line, then one "u v" pair per line.
void write_edge_list(std::ostream& out, const Graph& g);

/// Parses the edge-list format written by write_edge_list. Throws
/// std::runtime_error on malformed input.
Graph read_edge_list(std::istream& in);

/// DIMACS format: "p edge n m" header, "e u v" lines, 1-based vertices.
void write_dimacs(std::ostream& out, const Graph& g);

/// Parses DIMACS ("c" comment lines allowed). Throws on malformed input.
Graph read_dimacs(std::istream& in);

/// Graphviz DOT export. Vertices listed in `highlight` (e.g. an MIS) are
/// rendered filled.
void write_dot(std::ostream& out, const Graph& g,
               std::span<const VertexId> highlight = {});

/// Round-trips a graph through a string (edge-list format).
std::string to_string(const Graph& g);
Graph from_string(const std::string& text);

}  // namespace slumber::io
