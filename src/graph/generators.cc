#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "graph/gnp_detail.h"

namespace slumber::gen {

Graph empty(VertexId n) { return Graph(n, {}); }

Graph complete(VertexId n) {
  const std::uint64_t m =
      n < 2 ? 0 : checked_edge_count(std::uint64_t{n} * (n - 1) / 2,
                                     "complete");
  GraphBuilder builder(n);
  builder.reserve(m);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) builder.add_edge(u, v);
  }
  return std::move(builder).build();
}

Graph cycle(VertexId n) {
  if (n < 3) throw std::invalid_argument("cycle: need n >= 3");
  GraphBuilder builder(n);
  builder.reserve(n);
  for (VertexId v = 0; v < n; ++v) builder.add_edge(v, (v + 1) % n);
  return std::move(builder).build();
}

Graph path(VertexId n) {
  GraphBuilder builder(n);
  builder.reserve(n > 0 ? n - 1 : 0);
  for (VertexId v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  return std::move(builder).build();
}

Graph star(VertexId n) {
  GraphBuilder builder(n);
  builder.reserve(n > 0 ? n - 1 : 0);
  for (VertexId v = 1; v < n; ++v) builder.add_edge(0, v);
  return std::move(builder).build();
}

Graph complete_bipartite(VertexId a, VertexId b) {
  GraphBuilder builder(
      checked_vertex_count(std::uint64_t{a} + b, "complete_bipartite"));
  builder.reserve(
      checked_edge_count(std::uint64_t{a} * b, "complete_bipartite"));
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) builder.add_edge(u, a + v);
  }
  return std::move(builder).build();
}

Graph grid(VertexId rows, VertexId cols) {
  GraphBuilder builder(
      checked_vertex_count(std::uint64_t{rows} * cols, "grid"));
  if (rows > 0 && cols > 0) {
    builder.reserve(std::uint64_t{rows} * (cols - 1) +
                    std::uint64_t{rows - 1} * cols);
  }
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(builder).build();
}

Graph torus(VertexId rows, VertexId cols) {
  if (rows < 3 || cols < 3) throw std::invalid_argument("torus: need >= 3x3");
  GraphBuilder builder(
      checked_vertex_count(std::uint64_t{rows} * cols, "torus"));
  builder.reserve(2 * std::uint64_t{rows} * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      builder.add_edge(id(r, c), id(r, (c + 1) % cols));
      builder.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return std::move(builder).build();
}

Graph hypercube(std::uint32_t d) {
  if (d >= 32) throw std::overflow_error("hypercube: 2^d overflows VertexId");
  const VertexId n = VertexId{1} << d;
  GraphBuilder builder(n);
  builder.reserve(std::uint64_t{n} * d / 2);
  for (VertexId v = 0; v < n; ++v) {
    for (std::uint32_t bit = 0; bit < d; ++bit) {
      const VertexId u = v ^ (VertexId{1} << bit);
      if (u > v) builder.add_edge(v, u);
    }
  }
  return std::move(builder).build();
}

Graph binary_tree(VertexId n) {
  GraphBuilder builder(n);
  builder.reserve(n > 0 ? n - 1 : 0);
  for (VertexId v = 1; v < n; ++v) builder.add_edge(v, (v - 1) / 2);
  return std::move(builder).build();
}

Graph lollipop(VertexId n, VertexId clique_size) {
  if (clique_size > n) throw std::invalid_argument("lollipop: clique > n");
  GraphBuilder builder(n);
  builder.reserve(checked_edge_count(
      (clique_size < 2 ? 0
                       : std::uint64_t{clique_size} * (clique_size - 1) / 2) +
          (n - clique_size),
      "lollipop"));
  for (VertexId u = 0; u < clique_size; ++u) {
    for (VertexId v = u + 1; v < clique_size; ++v) builder.add_edge(u, v);
  }
  for (VertexId v = clique_size; v < n; ++v) builder.add_edge(v - 1, v);
  return std::move(builder).build();
}

Graph caterpillar(VertexId spine, VertexId legs) {
  const VertexId n = checked_vertex_count(
      std::uint64_t{spine} * (std::uint64_t{legs} + 1), "caterpillar");
  GraphBuilder builder(n);
  builder.reserve(n > 0 ? n - 1 : 0);
  for (VertexId s = 0; s + 1 < spine; ++s) builder.add_edge(s, s + 1);
  for (VertexId s = 0; s < spine; ++s) {
    for (VertexId leg = 0; leg < legs; ++leg) {
      builder.add_edge(s, spine + s * legs + leg);
    }
  }
  return std::move(builder).build();
}

Graph clique_chain(VertexId n, VertexId clique_size) {
  if (clique_size == 0) throw std::invalid_argument("clique_chain: k == 0");
  GraphBuilder builder(n);
  {
    const std::uint64_t k = clique_size;
    const std::uint64_t full = n / clique_size;
    const std::uint64_t rest = n % clique_size;
    builder.reserve(checked_edge_count(
        full * (k * (k - 1) / 2) + rest * (rest - (rest > 0 ? 1 : 0)) / 2,
        "clique_chain"));
  }
  for (VertexId base = 0; base < n; base += clique_size) {
    const VertexId end = std::min<VertexId>(base + clique_size, n);
    for (VertexId u = base; u < end; ++u) {
      for (VertexId v = u + 1; v < end; ++v) builder.add_edge(u, v);
    }
  }
  return std::move(builder).build();
}

namespace {

/// The legacy single-stream schedule: one draw sequence across the
/// whole vertex triangle. Both gnp entry points drive this with the
/// same RNG draws, so they realize the identical edge set.
template <typename Fn>
void for_each_gnp_edge(VertexId n, double p, Rng& rng, Fn&& fn) {
  detail::for_each_gnp_edge_rows(0, n, p, rng, std::forward<Fn>(fn));
}

}  // namespace

double gnp_probability_for_avg_degree(VertexId n, double avg_deg) {
  return std::min(1.0, avg_deg / static_cast<double>(n - 1));
}

std::size_t gnp_reserve_hint(VertexId n, double p) {
  const double pairs = 0.5 * static_cast<double>(n) *
                       static_cast<double>(n - 1);
  const double mean = p * pairs;
  return static_cast<std::size_t>(
      mean + 4.0 * std::sqrt(mean * (1.0 - p)) + 16.0);
}

Graph gnp(VertexId n, double p, Rng& rng) {
  GraphBuilder builder(n);
  if (p <= 0.0 || n < 2) return std::move(builder).build();
  if (p >= 1.0) return complete(n);
  builder.reserve(gnp_reserve_hint(n, p));
  // Edges are staged through a fixed-size chunk and flushed via
  // add_edges, the streaming construction path.
  std::vector<Edge> chunk;
  constexpr std::size_t kChunk = 1 << 14;
  chunk.reserve(kChunk);
  for_each_gnp_edge(n, p, rng, [&](VertexId u, VertexId v) {
    chunk.push_back({u, v});
    if (chunk.size() == kChunk) {
      builder.add_edges(chunk);
      chunk.clear();
    }
  });
  builder.add_edges(chunk);
  return std::move(builder).build();
}

Graph gnp_avg_degree(VertexId n, double avg_deg, Rng& rng) {
  if (n < 2) return empty(n);
  return gnp(n, gnp_probability_for_avg_degree(n, avg_deg), rng);
}

Graph gnp_csr(VertexId n, double p, Rng& rng) {
  if (p <= 0.0 || n < 2) {
    util::PodVector<CsrOffset> offsets(std::uint64_t{n} + 1, 0);
    return Graph::from_csr(n, std::move(offsets), {});
  }
  if (p >= 1.0) return detail::complete_csr(n);
  // Pass 1 on a copy of the RNG: count degrees.
  util::PodVector<CsrOffset> offsets(std::uint64_t{n} + 1, 0);
  std::uint64_t m = 0;
  {
    std::vector<std::uint32_t> deg(n, 0);
    Rng probe = rng;
    for_each_gnp_edge(n, p, probe, [&](VertexId u, VertexId v) {
      ++deg[u];
      ++deg[v];
      ++m;
    });
    checked_edge_count(m, "gnp_csr");
    for (VertexId v = 0; v < n; ++v) {
      offsets[std::uint64_t{v} + 1] = offsets[v] + deg[v];
    }
  }
  // Pass 2 replays the identical draw sequence on the caller's RNG
  // (leaving it in the same final state as gnp) and scatters into the
  // adjacency array. The stream is v-major with ascending coordinates,
  // so every vertex's range comes out sorted: u < x entries land while
  // the stream is at v == x, all v > x entries after, each ascending.
  util::PodVector<VertexId> adjacency;
  adjacency.resize(offsets[n]);
  std::vector<CsrOffset> cursor(offsets.begin(), offsets.end() - 1);
  for_each_gnp_edge(n, p, rng, [&](VertexId u, VertexId v) {
    adjacency[cursor[u]++] = v;
    adjacency[cursor[v]++] = u;
  });
  return Graph::from_csr(n, std::move(offsets), std::move(adjacency));
}

Graph gnp_avg_degree_csr(VertexId n, double avg_deg, Rng& rng) {
  if (n < 2) return gnp_csr(n, 0.0, rng);
  return gnp_csr(n, gnp_probability_for_avg_degree(n, avg_deg), rng);
}

Graph random_tree(VertexId n, Rng& rng) {
  if (n == 0) return empty(0);
  if (n == 1) return empty(1);
  if (n == 2) return path(2);
  // Pruefer decoding.
  std::vector<VertexId> pruefer(n - 2);
  for (auto& x : pruefer) x = static_cast<VertexId>(rng.below(n));
  std::vector<std::uint32_t> deg(n, 1);
  for (VertexId x : pruefer) ++deg[x];
  std::set<VertexId> leaves;
  for (VertexId v = 0; v < n; ++v) {
    if (deg[v] == 1) leaves.insert(v);
  }
  GraphBuilder builder(n);
  builder.reserve(n - 1);
  for (VertexId x : pruefer) {
    const VertexId leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    builder.add_edge(leaf, x);
    if (--deg[x] == 1) leaves.insert(x);
  }
  const VertexId u = *leaves.begin();
  const VertexId v = *std::next(leaves.begin());
  builder.add_edge(u, v);
  return std::move(builder).build();
}

Graph random_regular(VertexId n, std::uint32_t d, Rng& rng) {
  if (static_cast<std::uint64_t>(n) * d % 2 != 0) {
    throw std::invalid_argument("random_regular: n*d must be even");
  }
  if (d >= n) throw std::invalid_argument("random_regular: need d < n");
  // Configuration model with rejection: retry until the multigraph is simple.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<VertexId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (VertexId v = 0; v < n; ++v) {
      for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    rng.shuffle(stubs);
    bool simple = true;
    std::set<Edge> edge_set;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      VertexId u = stubs[i];
      VertexId v = stubs[i + 1];
      if (u == v) {
        simple = false;
        break;
      }
      if (u > v) std::swap(u, v);
      if (!edge_set.insert({u, v}).second) {
        simple = false;
        break;
      }
    }
    if (!simple) continue;
    return Graph(n, std::vector<Edge>(edge_set.begin(), edge_set.end()));
  }
  throw std::runtime_error("random_regular: too many rejections");
}

Graph barabasi_albert(VertexId n, std::uint32_t m, Rng& rng) {
  if (n == 0) return empty(0);
  const VertexId seed_size = std::max<VertexId>(m + 1, 2);
  if (n <= seed_size) return complete(n);
  GraphBuilder builder(n);
  builder.reserve(std::uint64_t{seed_size} * (seed_size - 1) / 2 +
                  std::uint64_t{n - seed_size} * m);
  // Repeated-endpoint list: attachment proportional to degree.
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(std::uint64_t{seed_size} * (seed_size - 1) +
                        2 * std::uint64_t{n - seed_size} * m);
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      builder.add_edge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (VertexId v = seed_size; v < n; ++v) {
    std::set<VertexId> targets;
    while (targets.size() < m) {
      targets.insert(endpoint_pool[rng.below(endpoint_pool.size())]);
    }
    for (VertexId t : targets) {
      builder.add_edge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return std::move(builder).build();
}

Graph random_geometric(VertexId n, double radius, Rng& rng,
                       std::vector<std::pair<double, double>>* coords_out) {
  std::vector<std::pair<double, double>> pts(n);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform()};
  // Cell grid for near-linear neighbor search.
  const double cell = std::max(radius, 1e-9);
  const auto cells_per_side =
      static_cast<std::int64_t>(std::floor(1.0 / cell)) + 1;
  auto cell_of = [&](double x) {
    return std::min<std::int64_t>(static_cast<std::int64_t>(x / cell),
                                  cells_per_side - 1);
  };
  std::vector<std::vector<VertexId>> buckets(
      static_cast<std::size_t>(cells_per_side * cells_per_side));
  for (VertexId v = 0; v < n; ++v) {
    buckets[static_cast<std::size_t>(cell_of(pts[v].first) * cells_per_side +
                                     cell_of(pts[v].second))]
        .push_back(v);
  }
  const double r2 = radius * radius;
  GraphBuilder builder(n);
  // Expected |E| ~ C(n,2) * pi r^2 (slight overestimate near the border).
  builder.reserve(static_cast<std::size_t>(
      0.5 * static_cast<double>(n) * static_cast<double>(n) *
          std::min(1.0, 3.14159265358979323846 * r2) +
      16.0));
  for (VertexId v = 0; v < n; ++v) {
    const std::int64_t cx = cell_of(pts[v].first);
    const std::int64_t cy = cell_of(pts[v].second);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const std::int64_t bx = cx + dx;
        const std::int64_t by = cy + dy;
        if (bx < 0 || by < 0 || bx >= cells_per_side || by >= cells_per_side) {
          continue;
        }
        for (VertexId u :
             buckets[static_cast<std::size_t>(bx * cells_per_side + by)]) {
          if (u <= v) continue;
          const double ddx = pts[u].first - pts[v].first;
          const double ddy = pts[u].second - pts[v].second;
          if (ddx * ddx + ddy * ddy <= r2) builder.add_edge(v, u);
        }
      }
    }
  }
  if (coords_out != nullptr) *coords_out = std::move(pts);
  return std::move(builder).build();
}

std::vector<Family> all_families() {
  return {Family::kEmpty,        Family::kComplete,      Family::kCycle,
          Family::kPath,         Family::kStar,          Family::kGrid,
          Family::kTorus,        Family::kHypercube,     Family::kBinaryTree,
          Family::kLollipop,     Family::kCaterpillar,   Family::kCliqueChain,
          Family::kGnpSparse,    Family::kGnpDense,      Family::kRandomTree,
          Family::kRandomRegular, Family::kBarabasiAlbert, Family::kUnitDisk};
}

std::vector<Family> core_families() {
  return {Family::kCycle,         Family::kStar,       Family::kGrid,
          Family::kLollipop,      Family::kGnpSparse,  Family::kGnpDense,
          Family::kRandomTree,    Family::kRandomRegular,
          Family::kBarabasiAlbert, Family::kUnitDisk};
}

std::string family_name(Family family) {
  switch (family) {
    case Family::kEmpty: return "empty";
    case Family::kComplete: return "complete";
    case Family::kCycle: return "cycle";
    case Family::kPath: return "path";
    case Family::kStar: return "star";
    case Family::kGrid: return "grid";
    case Family::kTorus: return "torus";
    case Family::kHypercube: return "hypercube";
    case Family::kBinaryTree: return "binary_tree";
    case Family::kLollipop: return "lollipop";
    case Family::kCaterpillar: return "caterpillar";
    case Family::kCliqueChain: return "clique_chain";
    case Family::kGnpSparse: return "gnp_sparse";
    case Family::kGnpDense: return "gnp_dense";
    case Family::kRandomTree: return "random_tree";
    case Family::kRandomRegular: return "random_regular";
    case Family::kBarabasiAlbert: return "barabasi_albert";
    case Family::kUnitDisk: return "unit_disk";
  }
  return "unknown";
}

std::vector<Schedule> all_schedules() {
  return {Schedule::kLegacy, Schedule::kSharded};
}

std::string schedule_name(Schedule schedule) {
  switch (schedule) {
    case Schedule::kLegacy: return "legacy";
    case Schedule::kSharded: return "sharded";
  }
  return "unknown";
}

bool schedule_from_name(const std::string& name, Schedule* out) {
  for (const Schedule schedule : all_schedules()) {
    if (schedule_name(schedule) == name) {
      *out = schedule;
      return true;
    }
  }
  return false;
}

Graph make(Family family, VertexId n, std::uint64_t seed,
           const MakeOptions& options) {
  if (options.schedule == Schedule::kSharded) {
    const ShardedGnpOptions sharded{options.pool, options.first_touch,
                                    nullptr};
    switch (family) {
      case Family::kGnpSparse:
        return gnp_avg_degree_sharded_csr(n, 8.0, seed, sharded);
      case Family::kGnpDense:
        return gnp_sharded_csr(n, 0.5, seed, sharded);
      default:
        break;  // every other family has a single schedule
    }
  }
  return make(family, n, seed);
}

Graph make(Family family, VertexId n, std::uint64_t seed) {
  Rng rng(seed);
  const auto side = static_cast<VertexId>(std::max(
      2.0, std::round(std::sqrt(static_cast<double>(n)))));
  switch (family) {
    case Family::kEmpty: return empty(n);
    case Family::kComplete: return complete(n);
    case Family::kCycle: return cycle(std::max<VertexId>(n, 3));
    case Family::kPath: return path(n);
    case Family::kStar: return star(n);
    case Family::kGrid: return grid(side, side);
    case Family::kTorus: return torus(std::max<VertexId>(side, 3),
                                      std::max<VertexId>(side, 3));
    case Family::kHypercube: {
      std::uint32_t d = 0;
      while ((VertexId{1} << (d + 1)) <= n) ++d;
      return hypercube(d);
    }
    case Family::kBinaryTree: return binary_tree(n);
    case Family::kLollipop:
      return lollipop(n, std::max<VertexId>(2, n / 4));
    case Family::kCaterpillar:
      return caterpillar(std::max<VertexId>(1, n / 4), 3);
    case Family::kCliqueChain: return clique_chain(n, 8);
    case Family::kGnpSparse: return gnp_avg_degree(n, 8.0, rng);
    case Family::kGnpDense: return gnp(n, 0.5, rng);
    case Family::kRandomTree: return random_tree(n, rng);
    case Family::kRandomRegular:
      return random_regular(n % 2 == 0 ? n : n + 1, 4, rng);
    case Family::kBarabasiAlbert: return barabasi_albert(n, 3, rng);
    case Family::kUnitDisk: {
      const double radius =
          std::sqrt(12.0 / (3.14159265358979323846 * std::max<VertexId>(n, 1)));
      return random_geometric(n, radius, rng);
    }
  }
  throw std::invalid_argument("make: unknown family");
}

}  // namespace slumber::gen
