// Structural graph properties used by the experiment harness and tests.
//
// Arboricity shows up in the paper's comparison with Barenboim-Tzur
// (O(a + log* n) node-averaged MIS in the traditional model); we compute
// the degeneracy, which sandwiches arboricity (a <= degeneracy <= 2a - 1),
// so experiment tables can report it per workload.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace slumber {

/// Connected components: result[v] = component index in [0, count).
struct Components {
  std::vector<VertexId> component_of;
  VertexId count = 0;
};
Components connected_components(const Graph& g);

/// True iff g is connected (the empty graph is considered connected).
bool is_connected(const Graph& g);

/// BFS distances from `source`; unreachable vertices get -1.
std::vector<std::int64_t> bfs_distances(const Graph& g, VertexId source);

/// True iff g is bipartite (2-colorable); the empty graph is bipartite.
bool is_bipartite(const Graph& g);

/// Eccentricity of `source` within its component.
std::int64_t eccentricity(const Graph& g, VertexId source);

/// Exact diameter of the largest component (O(n(n+m)); fine for tests),
/// or -1 for the empty graph.
std::int64_t diameter(const Graph& g);

/// Degeneracy ordering (smallest-last). `order[i]` is the i-th removed
/// vertex; `degeneracy` is the max degree seen at removal time.
struct DegeneracyResult {
  std::vector<VertexId> order;
  std::uint32_t degeneracy = 0;
};
DegeneracyResult degeneracy_order(const Graph& g);

/// Lower and upper bounds on arboricity derived from density and
/// degeneracy: ceil(m / (n-1)) <= a <= degeneracy.
struct ArboricityBounds {
  std::uint32_t lower = 0;
  std::uint32_t upper = 0;
};
ArboricityBounds arboricity_bounds(const Graph& g);

/// Number of triangles (used to sanity-check generators).
std::uint64_t triangle_count(const Graph& g);

/// Average degree 2m/n (0 for the empty graph).
double average_degree(const Graph& g);

}  // namespace slumber
