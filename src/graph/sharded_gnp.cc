// Sharded G(n, p) generation: counter-based per-block RNG streams and
// a parallel two-pass CSR build.
//
// The legacy gnp/gnp_csr builders consume one RNG stream sequentially
// across the whole vertex triangle, which makes generation inherently
// serial — at n = 10^8 the build is ~40% of a bulk trial's wall time.
// Here the triangle's rows are split into fixed-size vertex blocks
// (kBlockVertices rows per block, a constant — never a function of the
// lane count), and block b enumerates the G(n, p) pairs whose higher
// endpoint lies in its rows from its own counter-based stream,
// util::stream_rng(seed, b). Because each stream is a pure function of
// (seed, b) and each unordered pair belongs to exactly one block, the
// sampled edge set is a pure function of (n, p, seed): lane counts,
// block claim order, and interleaving cannot change it.
//
// Determinism of the *CSR layout* needs one more step. A vertex x's
// adjacency range is [down-neighbors u < x][up-neighbors v > x], both
// ascending:
//
//  * The down half is written only by block(x) — while the block walks
//    row x it appends each sampled u in ascending order. Single
//    writer, deterministic order.
//  * The up half receives x's higher neighbors from whichever blocks
//    own them; slots are claimed with a relaxed atomic cursor
//    fetch_add, so the *positions* depend on scheduling — but the
//    *set* does not. A final parallel per-vertex sort of the up half
//    restores the unique ascending layout, making the full CSR bitwise
//    identical at every lane count (the pool-less serial path runs the
//    identical block schedule and is the reference).
//
// Degree counting (pass 1) splits the same way: down-degrees have a
// single writer; up-degrees accumulate with relaxed atomic increments,
// whose sum is order-free.
//
// Memory stays on the diet path: no edge list is staged, and the
// transient arrays (two u32 degree halves + the u64 cursor) are freed
// as soon as the offsets are fixed, so peak is CSR + ~16 bytes/vertex
// over the final graph. With ShardedGnpOptions::first_touch the CSR
// arrays are pre-touched in ThreadPool::parallel_for_range's chunk
// layout so pages land near the lanes that later scan them.
#include <algorithm>
#include <atomic>
#include <cstdint>

#include "graph/generators.h"
#include "graph/gnp_detail.h"
#include "obs/obs.h"
#include "util/alloc.h"
#include "util/stream_rng.h"
#include "util/thread_pool.h"

namespace slumber::gen {

namespace {

/// Rows per counter-keyed stream. A constant so the edge set depends
/// only on (n, p, seed): at n = 10^8 this yields ~24k blocks (ample
/// dynamic load balancing — late blocks own linearly more pairs than
/// early ones), while n as small as ~10^4 still spans several blocks
/// so tests exercise the cross-block paths.
constexpr VertexId kBlockVertices = 4096;

std::uint64_t block_count(VertexId n) {
  return (std::uint64_t{n} + kBlockVertices - 1) / kBlockVertices;
}

/// Runs fn(b) for every block, over the pool when present (dynamic
/// claim order; every write fn makes is claim-order independent) and
/// in index order when not.
template <typename Fn>
void for_each_block(std::uint64_t blocks, util::ThreadPool* pool, Fn&& fn) {
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->parallel_for_index(blocks, fn);
  } else {
    for (std::uint64_t b = 0; b < blocks; ++b) fn(b);
  }
}

/// Runs fn(begin, end) over contiguous chunks of [0, total): the
/// pool's parallel_for_range chunks when present, one serial chunk
/// when not.
template <typename Fn>
void for_each_range(std::uint64_t total, util::ThreadPool* pool, Fn&& fn) {
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->parallel_for_range(
        total,
        [&fn](std::size_t, std::size_t begin, std::size_t end) {
          fn(begin, end);
        });
  } else {
    fn(std::uint64_t{0}, total);
  }
}

}  // namespace

Graph gnp_sharded_csr(VertexId n, double p, std::uint64_t seed,
                      const ShardedGnpOptions& options) {
  if (options.stats_out != nullptr) *options.stats_out = {};
  if (p <= 0.0 || n < 2) {
    util::PodVector<CsrOffset> offsets(std::uint64_t{n} + 1, 0);
    return Graph::from_csr(n, std::move(offsets), {}, options.pool);
  }
  if (p >= 1.0) return detail::complete_csr(n);

  util::ThreadPool* pool = options.pool;
  const std::uint64_t blocks = block_count(n);
  const bool first_touch =
      options.first_touch && pool != nullptr && pool->num_threads() > 1;
  obs::progress_phase("generate");
  obs::Span gen_span("gen", "gnp_sharded_csr", n);

  // --- pass 1: degree halves ----------------------------------------
  // down[x] = |{u < x adjacent to x}| (single writer: block(x));
  // up[u]   = |{v > u adjacent to u}| (relaxed atomic sum).
  util::PodVector<std::uint32_t> down =
      util::sharded_fill<std::uint32_t>(n, 0, first_touch ? pool : nullptr);
  util::PodVector<std::uint32_t> up =
      util::sharded_fill<std::uint32_t>(n, 0, first_touch ? pool : nullptr);
  std::atomic<std::uint64_t> edge_total{0};
  std::atomic<std::uint64_t> rng_digest{0};
  {
    obs::Span span("gen", "degree_pass", blocks);
    for_each_block(blocks, pool, [&](std::uint64_t b) {
      // SLUMBER-STREAM-DISCIPLINE(block-counter): one stream per vertex
      // block; the dense block id b is the stream key and blocks never
      // share a row, so no tag mixing is needed (see README).
      Rng rng = util::stream_rng(seed, b);
      const VertexId lo = static_cast<VertexId>(b * kBlockVertices);
      const VertexId hi = static_cast<VertexId>(
          std::min<std::uint64_t>(n, (b + 1) * kBlockVertices));
      std::uint64_t count = 0;
      detail::for_each_gnp_edge_rows(lo, hi, p, rng,
                                     [&](VertexId u, VertexId v) {
                                       // NOLINTNEXTLINE(slumber-d5): v is a row of this block, so block(v)==b is the single writer
                                       ++down[v];
                                       std::atomic_ref<std::uint32_t>(up[u])
                                           .fetch_add(
                                               1, std::memory_order_relaxed);
                                       ++count;
                                     });
      edge_total.fetch_add(count, std::memory_order_relaxed);
    });
  }
  const std::uint64_t m = edge_total.load(std::memory_order_relaxed);
  checked_edge_count(m, "gnp_sharded_csr");

  // --- offsets + up-half cursors ------------------------------------
  util::PodVector<CsrOffset> offsets =
      util::sharded_fill<CsrOffset>(std::uint64_t{n} + 1, 0,
                                    first_touch ? pool : nullptr);
  {
    obs::Span span("gen", "offsets", n);
    for (VertexId v = 0; v < n; ++v) {
      offsets[std::uint64_t{v} + 1] =
          offsets[v] + down[v] + up[v];
    }
  }
  // cursor[u] starts at the first slot of u's up half and is bumped by
  // a relaxed fetch_add per cross-block write in pass 2.
  util::PodVector<CsrOffset> cursor;
  cursor.resize(n);
  {
    obs::Span span("gen", "cursor_init", n);
    CsrOffset* cur = cursor.data();
    const CsrOffset* off = offsets.data();
    const std::uint32_t* dn = down.data();
    for_each_range(n, pool, [cur, off, dn](std::uint64_t begin,
                                           std::uint64_t end) {
      for (std::uint64_t v = begin; v < end; ++v) cur[v] = off[v] + dn[v];
    });
  }
  // Folded into offsets/cursor; genuinely release (swap — `= {}` would
  // retain capacity) before the adjacency allocation below.
  util::PodVector<std::uint32_t>().swap(up);

  // --- pass 2: fill -------------------------------------------------
  util::PodVector<VertexId> adjacency;
  adjacency.resize(offsets[n]);
  if (first_touch) {
    // Deliberate page placement; every slot is overwritten below.
    VertexId* adj = adjacency.data();
    for_each_range(offsets[n], pool,
                   [adj](std::uint64_t begin, std::uint64_t end) {
                     for (std::uint64_t i = begin; i < end; ++i) adj[i] = 0;
                   });
  }
  {
    obs::Span span("gen", "fill_pass", blocks);
    for_each_block(blocks, pool, [&](std::uint64_t b) {
      // SLUMBER-STREAM-DISCIPLINE(block-counter): same per-block stream
      // as the degree pass, replayed so pass 2 sees pass 1's edges.
      Rng rng = util::stream_rng(seed, b);
      const VertexId lo = static_cast<VertexId>(b * kBlockVertices);
      const VertexId hi = static_cast<VertexId>(
          std::min<std::uint64_t>(n, (b + 1) * kBlockVertices));
      VertexId row = kInvalidVertex;
      CsrOffset row_cursor = 0;
      detail::for_each_gnp_edge_rows(
          lo, hi, p, rng, [&](VertexId u, VertexId v) {
            if (v != row) {
              row = v;
              row_cursor = offsets[v];
            }
            // NOLINTNEXTLINE(slumber-d5): row_cursor walks offsets[v]..offsets[v]+down[v], a range owned by this block since block(v)==b
            adjacency[row_cursor++] = u;  // down half, ascending in row
            const CsrOffset slot =
                std::atomic_ref<CsrOffset>(cursor[u]).fetch_add(
                    1, std::memory_order_relaxed);
            // NOLINTNEXTLINE(slumber-d5): slot was uniquely claimed by the fetch_add above; the sort pass canonicalizes order
            adjacency[slot] = v;  // up half, position fixed by the sort
          });
      // The stream's next draw after generation is a pure function of
      // (seed, b); the wrapping sum over blocks is order-free.
      rng_digest.fetch_add(rng.next(), std::memory_order_relaxed);
    });
  }
  util::PodVector<CsrOffset>().swap(cursor);

  // --- canonicalize the up halves -----------------------------------
  {
    obs::Span span("gen", "sort_up_halves", n);
    VertexId* adj = adjacency.data();
    const CsrOffset* off = offsets.data();
    const std::uint32_t* dn = down.data();
    for_each_range(n, pool, [adj, off, dn](std::uint64_t begin,
                                           std::uint64_t end) {
      for (std::uint64_t v = begin; v < end; ++v) {
        std::sort(adj + off[v] + dn[v], adj + off[v + 1]);
      }
    });
  }
  util::PodVector<std::uint32_t>().swap(down);

  if (options.stats_out != nullptr) {
    options.stats_out->blocks = blocks;
    options.stats_out->rng_digest =
        rng_digest.load(std::memory_order_relaxed);
  }
  return Graph::from_csr(n, std::move(offsets), std::move(adjacency), pool);
}

Graph gnp_avg_degree_sharded_csr(VertexId n, double avg_deg,
                                 std::uint64_t seed,
                                 const ShardedGnpOptions& options) {
  if (n < 2) return gnp_sharded_csr(n, 0.0, seed, options);
  return gnp_sharded_csr(n, gnp_probability_for_avg_degree(n, avg_deg), seed,
                         options);
}

}  // namespace slumber::gen
