#include "graph/io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace slumber::io {

namespace {

/// Streams every edge as (u, v) with u < v in sorted (u, v) order —
/// identical to iterating Graph::edges(), but off the CSR arrays, so
/// the writers also accept memory-diet graphs (has_edge_list() false).
template <typename Fn>
void for_each_edge_sorted(const Graph& g, Fn&& fn) {
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (v > u) fn(u, v);
    }
  }
}

}  // namespace

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for_each_edge_sorted(
      g, [&](VertexId u, VertexId v) { out << u << ' ' << v << '\n'; });
}

Graph read_edge_list(std::istream& in) {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  if (!(in >> n >> m)) {
    throw std::runtime_error("read_edge_list: missing header");
  }
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(in >> u >> v)) {
      throw std::runtime_error("read_edge_list: truncated edge list");
    }
    edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v)});
  }
  return Graph(static_cast<VertexId>(n), std::move(edges));
}

void write_dimacs(std::ostream& out, const Graph& g) {
  out << "p edge " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for_each_edge_sorted(g, [&](VertexId u, VertexId v) {
    out << "e " << (u + 1) << ' ' << (v + 1) << '\n';
  });
}

Graph read_dimacs(std::istream& in) {
  std::string line;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  bool have_header = false;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'p') {
      std::string kind;
      if (!(ls >> kind >> n >> m) || kind != "edge") {
        throw std::runtime_error("read_dimacs: bad problem line");
      }
      have_header = true;
      edges.reserve(m);
    } else if (tag == 'e') {
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      if (!have_header || !(ls >> u >> v) || u == 0 || v == 0) {
        throw std::runtime_error("read_dimacs: bad edge line");
      }
      edges.push_back(
          {static_cast<VertexId>(u - 1), static_cast<VertexId>(v - 1)});
    } else {
      throw std::runtime_error("read_dimacs: unknown line tag");
    }
  }
  if (!have_header) throw std::runtime_error("read_dimacs: missing header");
  return Graph(static_cast<VertexId>(n), std::move(edges));
}

void write_dot(std::ostream& out, const Graph& g,
               std::span<const VertexId> highlight) {
  std::vector<bool> marked(g.num_vertices(), false);
  for (VertexId v : highlight) marked[v] = true;
  out << "graph G {\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << "  " << v;
    if (marked[v]) out << " [style=filled, fillcolor=lightblue]";
    out << ";\n";
  }
  for_each_edge_sorted(g, [&](VertexId u, VertexId v) {
    out << "  " << u << " -- " << v << ";\n";
  });
  out << "}\n";
}

std::string to_string(const Graph& g) {
  std::ostringstream out;
  write_edge_list(out, g);
  return out.str();
}

Graph from_string(const std::string& text) {
  std::istringstream in(text);
  return read_edge_list(in);
}

}  // namespace slumber::io
