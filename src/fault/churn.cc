#include "fault/churn.h"

#include "obs/obs.h"
#include "util/thread_pool.h"

namespace slumber::fault {
namespace {

// Below this many nodes a sharded pass costs more in fork-join than it
// saves; matches the bulk engine's default parallel_cutoff.
constexpr std::size_t kParallelCutoff = 4096;

/// Runs fn(chunk, begin, end) over [0, n), sharded over `pool` when it
/// pays off. `chunks` must be chunk_count(pool, n) — per-chunk partial
/// arrays are indexed by the chunk argument and reduced in chunk index
/// order by the caller (integer sums, so order-free anyway).
std::size_t chunk_count(util::ThreadPool* pool, std::size_t n) {
  const bool parallel =
      pool != nullptr && pool->num_threads() > 1 && n >= kParallelCutoff;
  return parallel ? pool->num_chunks(n) : 1;
}

template <typename Fn>
void for_range(util::ThreadPool* pool, std::size_t n, const Fn& fn) {
  if (n == 0) return;
  if (chunk_count(pool, n) == 1) {
    fn(std::size_t{0}, std::size_t{0}, n);
    return;
  }
  pool->parallel_for_range(
      n, [&](std::size_t c, std::size_t begin, std::size_t end) {
        fn(c, begin, end);
      });
}

std::uint64_t sum(const std::vector<std::uint64_t>& parts) {
  std::uint64_t total = 0;
  for (const std::uint64_t p : parts) total += p;
  return total;
}

/// Repair priority: a keyed hash, so the repaired set depends on the
/// fault seed rather than on vertex numbering alone.
std::uint64_t prio(std::uint64_t fault_seed, VertexId v) {
  return detail::mix(fault_seed ^ util::stream_tags::kRepairTag, v);
}

bool beats(std::uint64_t fault_seed, VertexId u, VertexId v) {
  const std::uint64_t pu = prio(fault_seed, u);
  const std::uint64_t pv = prio(fault_seed, v);
  return pu != pv ? pu > pv : u < v;
}

}  // namespace

std::uint64_t repair_mis(const Graph& g, const std::vector<std::uint8_t>& alive,
                         std::vector<std::int64_t>& outputs,
                         std::uint64_t fault_seed, util::ThreadPool* pool,
                         std::uint64_t* demotions, std::uint64_t* promotions) {
  const std::size_t n = g.num_vertices();
  obs::Span span(obs::enabled() && n >= kParallelCutoff ? "fault" : nullptr,
                 "repair_mis", n);
  std::vector<std::uint8_t> in_mis(n, 0);
  for_range(pool, n, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      if (alive[v] == 0) {
        outputs[v] = -1;
      } else {
        outputs[v] = outputs[v] == 1 ? 1 : 0;
        in_mis[v] = outputs[v] == 1 ? 1 : 0;
      }
    }
  });
  std::uint64_t rounds = 0;

  // Phase 1, one pass: restore independence. Reads go to the `snap`
  // copy and writes to own-node slots of `in_mis`, so every lane sees
  // the same pre-pass membership. Any surviving adjacent MIS pair would
  // mean neither endpoint had a beating MIS neighbor — impossible, one
  // of the two beats the other — so one pass suffices.
  const std::vector<std::uint8_t> snap = in_mis;
  std::vector<std::uint64_t> demoted_parts(chunk_count(pool, n), 0);
  for_range(pool, n, [&](std::size_t c, std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      if (alive[v] == 0 || snap[v] == 0) continue;
      for (const VertexId u : g.neighbors(v)) {
        if (alive[u] != 0 && snap[u] != 0 &&
            beats(fault_seed, u, static_cast<VertexId>(v))) {
          in_mis[v] = 0;
          outputs[v] = 0;
          ++demoted_parts[c];
          break;
        }
      }
    }
  });
  ++rounds;
  if (demotions != nullptr) *demotions += sum(demoted_parts);

  // Phase 2: promote to maximality. Candidates are computed against the
  // pass-stable `in_mis`, then the winning candidates join; the
  // globally best candidate always wins its neighborhood, so each pass
  // makes progress and the loop terminates.
  std::vector<std::uint8_t> candidate(n, 0);
  for (;;) {
    std::vector<std::uint64_t> cand_parts(chunk_count(pool, n), 0);
    for_range(pool, n, [&](std::size_t c, std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        candidate[v] = 0;
        if (alive[v] == 0 || in_mis[v] != 0) continue;
        bool mis_neighbor = false;
        for (const VertexId u : g.neighbors(v)) {
          if (alive[u] != 0 && in_mis[u] != 0) {
            mis_neighbor = true;
            break;
          }
        }
        if (!mis_neighbor) {
          candidate[v] = 1;
          ++cand_parts[c];
        }
      }
    });
    if (sum(cand_parts) == 0) break;

    std::vector<std::uint64_t> promoted_parts(chunk_count(pool, n), 0);
    for_range(pool, n, [&](std::size_t c, std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        if (candidate[v] == 0) continue;
        bool wins = true;
        for (const VertexId u : g.neighbors(v)) {
          if (alive[u] != 0 && candidate[u] != 0 &&
              !beats(fault_seed, static_cast<VertexId>(v), u)) {
            wins = false;
            break;
          }
        }
        if (wins) {
          in_mis[v] = 1;
          outputs[v] = 1;
          ++promoted_parts[c];
        }
      }
    });
    ++rounds;
    if (promotions != nullptr) *promotions += sum(promoted_parts);
  }
  return rounds;
}

bool check_alive_mis(const Graph& g, const std::vector<std::uint8_t>& alive,
                     const std::vector<std::int64_t>& outputs,
                     util::ThreadPool* pool) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint64_t> bad_parts(chunk_count(pool, n), 0);
  for_range(pool, n, [&](std::size_t c, std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      if (alive[v] == 0) continue;
      if (outputs[v] != 0 && outputs[v] != 1) {
        ++bad_parts[c];
        continue;
      }
      bool mis_neighbor = false;
      for (const VertexId u : g.neighbors(v)) {
        if (alive[u] != 0 && outputs[u] == 1) {
          mis_neighbor = true;
          break;
        }
      }
      if (outputs[v] == 1 ? mis_neighbor : !mis_neighbor) ++bad_parts[c];
    }
  });
  return sum(bad_parts) == 0;
}

ChurnReport run_churn(const Graph& g, const ChurnSpec& spec,
                      std::uint64_t fault_seed,
                      std::vector<std::uint8_t>& alive,
                      std::vector<std::int64_t>& outputs,
                      util::ThreadPool* pool) {
  const std::size_t n = g.num_vertices();
  ChurnReport report;
  report.valid = true;

  // The trial may have ended invalid (crashed or lossy runs): repair
  // before the stream starts so every batch begins from a valid MIS.
  report.repair_rounds += repair_mis(g, alive, outputs, fault_seed, pool,
                                     &report.demotions, &report.promotions);
  report.valid = report.valid && check_alive_mis(g, alive, outputs, pool);

  for (std::uint32_t batch = 1; batch <= spec.batches; ++batch) {
    ++report.batches;
    obs::Span batch_span("fault", "churn_batch", batch);
    // Keyed membership draws: one stream per (node, batch), so the
    // batch's composition is independent of lane count and of any other
    // RNG consumer in the run.
    std::vector<std::uint64_t> leave_parts(chunk_count(pool, n), 0);
    std::vector<std::uint64_t> join_parts(chunk_count(pool, n), 0);
    for_range(pool, n, [&](std::size_t c, std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        const std::uint64_t stream = detail::mix(
            util::stream_tags::kChurnTag ^ static_cast<VertexId>(v), batch);
        if (alive[v] != 0) {
          if (spec.leave_prob > 0.0 &&
              util::stream_rng(fault_seed, stream).bernoulli(spec.leave_prob)) {
            alive[v] = 0;
            outputs[v] = -1;
            ++leave_parts[c];
          }
        } else {
          if (spec.join_prob > 0.0 &&
              util::stream_rng(fault_seed, stream).bernoulli(spec.join_prob)) {
            alive[v] = 1;
            outputs[v] = 0;
            ++join_parts[c];
          }
        }
      }
    });
    report.leaves += sum(leave_parts);
    report.joins += sum(join_parts);

    report.repair_rounds += repair_mis(g, alive, outputs, fault_seed, pool,
                                       &report.demotions, &report.promotions);
    report.valid = report.valid && check_alive_mis(g, alive, outputs, pool);
  }

  std::vector<std::uint64_t> alive_parts(chunk_count(pool, n), 0);
  for_range(pool, n, [&](std::size_t c, std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      alive_parts[c] += alive[v] != 0 ? 1 : 0;
    }
  });
  report.alive_final = sum(alive_parts);
  return report;
}

}  // namespace slumber::fault
