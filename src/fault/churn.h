// Membership churn with incremental MIS repair (bulk engine only).
//
// A churn run turns a one-shot trial into a long-running system: after
// the protocol terminates, ChurnSpec::batches rounds of joins/leaves
// hit the ground graph (alive nodes leave with leave_prob, departed
// nodes rejoin with join_prob, drawn from the fault seed keyed by
// (node, batch) — lane-count- and order-independent), and after every
// batch the MIS invariant is restored incrementally on the subgraph
// induced by the alive set.
//
// The repair is a deterministic two-phase fixpoint, sharded over an
// optional thread pool:
//   1. one demotion pass — of two adjacent alive MIS nodes the one with
//      the lower repair priority (a splitmix64 hash of the node id
//      under the fault seed) drops out, restoring independence (lossy
//      runs can corrupt it; churn itself never does);
//   2. promotion passes to a fixpoint — an alive non-MIS node with no
//      alive MIS neighbor is a candidate; a candidate joins iff it
//      beats every neighboring candidate. The globally best candidate
//      always joins, so the loop terminates, and at the fixpoint the
//      set is maximal.
// All writes are own-node against snapshot-stable reads and all
// reductions are integer sums in chunk index order, so the repaired MIS
// is bitwise identical at every lane count.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "graph/graph.h"

namespace slumber::util {
class ThreadPool;
}  // namespace slumber::util

namespace slumber::fault {

/// What a churn run did; folded into sim::Metrics by the experiment
/// layer.
struct ChurnReport {
  std::uint64_t batches = 0;
  std::uint64_t leaves = 0;
  std::uint64_t joins = 0;
  std::uint64_t demotions = 0;
  std::uint64_t promotions = 0;
  /// Total repair passes across the initial repair and every batch.
  std::uint64_t repair_rounds = 0;
  std::uint64_t alive_final = 0;
  /// True iff the alive-masked MIS invariant held after the initial
  /// repair and after every batch's repair.
  bool valid = false;
};

/// Restores the MIS invariant of `outputs` on the subgraph induced by
/// `alive` (see the file comment for the algorithm). `outputs` must be
/// normalized: 1 or 0 for alive nodes, anything for dead ones (dead
/// entries are rewritten to -1). Returns the number of repair passes;
/// `demotions`/`promotions` (optional) accumulate node counts.
std::uint64_t repair_mis(const Graph& g, const std::vector<std::uint8_t>& alive,
                         std::vector<std::int64_t>& outputs,
                         std::uint64_t fault_seed, util::ThreadPool* pool,
                         std::uint64_t* demotions = nullptr,
                         std::uint64_t* promotions = nullptr);

/// Checks the MIS invariant on the subgraph induced by `alive`:
/// alive nodes output 0/1, no two adjacent alive 1s, and every alive 0
/// has an alive MIS neighbor. Sharded over `pool` when provided.
bool check_alive_mis(const Graph& g, const std::vector<std::uint8_t>& alive,
                     const std::vector<std::int64_t>& outputs,
                     util::ThreadPool* pool = nullptr);

/// Runs the full churn stream over `alive`/`outputs` in place: initial
/// repair (the trial may have ended with crash/loss damage), then
/// `spec.batches` batches of keyed joins/leaves, each followed by an
/// incremental repair and an invariant check.
ChurnReport run_churn(const Graph& g, const ChurnSpec& spec,
                      std::uint64_t fault_seed,
                      std::vector<std::uint8_t>& alive,
                      std::vector<std::int64_t>& outputs,
                      util::ThreadPool* pool = nullptr);

}  // namespace slumber::fault
