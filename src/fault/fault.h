// Deterministic fault injection shared by both execution back ends.
//
// A FaultPlan describes what goes wrong in a run: a fail-stop crash
// schedule (node v crashes at the first round >= r in which it is
// awake), a probabilistic per-round crash rate, probabilistic message
// loss (memoryless and/or burst-correlated via a per-link
// Gilbert-Elliott channel), live network dynamics (mid-run leave/join
// churn and crash recovery, bulk engine only), and a post-run churn
// stream (joins/leaves with incremental MIS repair, bulk engine only —
// see fault/churn.h).
//
// Every probabilistic decision is a *pure function* of (run seed, fault
// identity): draws go through util::stream_rng keyed by the entity the
// fault hits — the undirected edge id and round for message loss, the
// node id and round for crashes — never through an engine's own RNG
// streams or any sequential generator. That is the property that makes
// the layer engine-independent: the coroutine scheduler evaluating
// "does the link (u, v) drop its messages in round t?" and a bulk-engine
// lane evaluating the same question on another thread, in another
// order, at another lane count, compute the identical bit. Message loss
// is symmetric per link per round (one draw for both directions), so a
// receiver-side count of surviving messages equals the sender-side
// count of deliveries and per-chunk accounting stays an order-free sum.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/stream_rng.h"
#include "util/stream_tags.h"

namespace slumber::fault {

/// One entry of a deterministic fail-stop schedule: `node` crashes at
/// the start of the first round >= `round` in which it is awake.
struct CrashEvent {
  VertexId node = 0;
  std::uint64_t round = 0;
};

/// Burst-correlated message loss: a Gilbert-Elliott on/off channel per
/// undirected link. Virtual time is cut into fixed-length epochs of
/// `epoch_len` rounds; within an epoch the channel holds one state
/// (good delivers, bad drops everything). Across epochs the state
/// follows the two-state chain with per-epoch transition probabilities
/// p_on (good -> bad) and p_off (bad -> good), realized through its
/// regeneration coupling so that the state at epoch e is a pure keyed
/// function of (edge, e): with probability 1 - (p_on + p_off) the state
/// copies the previous epoch, otherwise it regenerates from the
/// stationary law Bernoulli(p_on / (p_on + p_off)). The coupling
/// requires p_on + p_off <= 1 (the CLI validates; larger sums are
/// clamped to the i.i.d. boundary). Composes with the independent
/// per-round loss_prob: a message dies if either mechanism fires.
struct BurstSpec {
  double p_on = 0.0;
  double p_off = 0.0;
  /// Rounds per channel epoch; 0 disables the model.
  std::uint64_t epoch_len = 0;

  bool enabled() const { return epoch_len > 0 && p_on > 0.0 && p_off > 0.0; }
  /// Long-run fraction of epochs (and so of rounds) spent bad.
  double stationary_loss() const { return p_on / (p_on + p_off); }
};

/// Mid-run churn (bulk engine only): each round a node participates in,
/// it leaves the network with probability `leave_prob` (keyed on
/// (node, round), exactly like crash draws). A leaver's downtime is
/// drawn at leave time from the same stream — geometric with per-round
/// rejoin probability `join_prob`, distributionally identical to
/// independent per-round rejoin draws — after which it re-enters the
/// protocol in a reset state at the next faulty round. join_prob == 0
/// means leavers never return.
struct LiveChurnSpec {
  double leave_prob = 0.0;
  double join_prob = 0.0;

  bool enabled() const { return leave_prob > 0.0; }
};

/// Crash recovery (bulk engine only): a node that fail-stops comes back
/// after a keyed-draw downtime, geometric with mean `mean_down` rounds
/// (>= 1), re-entering the protocol in a reset state. 0 disables
/// recovery (crashes stay fail-stop-forever). Note that a *scheduled*
/// crash (`node crashes at any round >= r`) re-fires on the round after
/// the node recovers: under recovery a crash_schedule entry models a
/// permanently flaky node that bounces with period ~ downtime + 1, not
/// a one-shot event. Use crash_prob for transient random failures.
struct RecoverSpec {
  std::uint64_t mean_down = 0;

  bool enabled() const { return mean_down > 0; }
};

/// Churn stream configuration: after the protocol run, `batches` rounds
/// of membership churn hit the graph. In each batch every alive node
/// leaves with probability `leave_prob` and every departed node rejoins
/// with probability `join_prob`; after each batch the MIS is repaired
/// incrementally (fault/churn.h). Draws are keyed by (node, batch).
struct ChurnSpec {
  double leave_prob = 0.0;
  double join_prob = 0.0;
  std::uint32_t batches = 0;

  bool enabled() const {
    return batches > 0 && (leave_prob > 0.0 || join_prob > 0.0);
  }
};

/// The full fault configuration of a run. Engine-independent: the same
/// plan produces the same faults on the coroutine scheduler and the
/// bulk engine at every lane count.
struct FaultPlan {
  /// Deterministic fail-stop events (may list a node more than once;
  /// the earliest round wins).
  std::vector<CrashEvent> crash_schedule;
  /// Each round a node is awake it crashes independently with this
  /// probability, BEFORE sending (fail-stop; silent forever after).
  double crash_prob = 0.0;
  /// Each otherwise-deliverable message is lost with this probability.
  /// Loss is symmetric per undirected link per round.
  double loss_prob = 0.0;
  /// Burst-correlated loss on top of (or instead of) loss_prob; both
  /// engines evaluate it through link_down, so it works everywhere.
  BurstSpec burst;
  /// Mid-run membership churn (bulk engine only).
  LiveChurnSpec live_churn;
  /// Crash recovery (bulk engine only); inert without crash faults.
  RecoverSpec recover;
  /// Post-run membership churn (bulk engine only).
  ChurnSpec churn;
  /// Extra key folded into every draw, so two runs with the same seed
  /// can face independent fault streams.
  std::uint64_t salt = 0;

  bool has_crashes() const {
    return crash_prob > 0.0 || !crash_schedule.empty();
  }
  bool has_loss() const { return loss_prob > 0.0 || burst.enabled(); }
  /// Live dynamics mutate the membership mid-run; only the bulk engine
  /// supports them (the experiment layer rejects them elsewhere).
  bool has_live_dynamics() const {
    return live_churn.enabled() || (recover.enabled() && has_crashes());
  }
  bool empty() const {
    return !has_crashes() && !has_loss() && !live_churn.enabled() &&
           !recover.enabled() && !churn.enabled();
  }
};

namespace detail {

/// One avalanche step combining two 64-bit keys; the building block of
/// every fault stream id. The golden-ratio offset keeps mix(x, 0) from
/// collapsing to splitmix64(x).
inline std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t sm = a ^ (b + 0x9e3779b97f4a7c15ULL);
  return splitmix64(sm);
}

// The domain-separation tags that keep the loss, crash, churn, and
// repair streams of one run from colliding moved to the central
// stream-tag registry (util/stream_tags.h), which proves all
// registered tags pairwise distinct in their high 32 bits at compile
// time; slumber-d6 additionally checks every stream_rng call site
// keys through a registered tag.

/// Inverse-CDF geometric draw on {1, 2, ...} with success probability
/// p, from one uniform: P(k) = (1-p)^(k-1) * p. The downtime primitive
/// of live churn and crash recovery. p >= 1 pins the draw at 1;
/// pathological inputs saturate at 2^62 rounds (never, in practice).
inline std::uint64_t geometric_from_uniform(double u, double p) {
  constexpr std::uint64_t kNever = std::uint64_t{1} << 62;
  if (p >= 1.0) return 1;
  if (p <= 0.0) return kNever;
  const double k = std::floor(std::log1p(-u) / std::log1p(-p));
  if (!(k >= 0.0)) return 1;
  if (k >= 4.6e18) return kNever;
  return 1 + static_cast<std::uint64_t>(k);
}

}  // namespace detail

/// Forced-renewal period of the burst channel's regeneration coupling,
/// in epochs: every epoch on this grid regenerates from the stationary
/// law, which bounds FaultState::burst_bad's backward scan at the cost
/// of cutting state correlation across grid boundaries only (the
/// marginal at every epoch is exactly stationary either way).
inline constexpr std::uint64_t kBurstRenewalGrid = 64;

/// Result of the mid-run leave draw for a participating node.
struct LeaveDraw {
  bool leaves = false;
  bool rejoins = false;
  /// Rounds out of the network before re-entry (>= 1); meaningful only
  /// when `rejoins` (join_prob == 0 leavers never return).
  std::uint64_t downtime = 0;
};

/// A FaultPlan bound to one run (seed + vertex count): the read-side
/// object both engines query. Copyable, cheap when inert; the borrowed
/// plan must outlive it. All queries are const and thread-safe — they
/// touch no mutable state, which is what lets bulk lanes evaluate
/// faults chunk-locally and merge in chunk order.
class FaultState {
 public:
  FaultState() = default;

  FaultState(const FaultPlan* plan, std::uint64_t run_seed, VertexId n)
      : plan_(plan) {
    if (plan_ == nullptr) return;
    seed_ = detail::mix(run_seed, plan_->salt);
    crash_at_.reserve(plan_->crash_schedule.size());
    for (const CrashEvent& ev : plan_->crash_schedule) {
      if (ev.node < n) crash_at_.push_back({ev.node, ev.round});
    }
    std::sort(crash_at_.begin(), crash_at_.end());
    // Keep only the earliest round per node; lookups binary-search the
    // (small) schedule instead of paying an O(n) array at 10^8 nodes.
    crash_at_.erase(
        std::unique(crash_at_.begin(), crash_at_.end(),
                    [](const auto& a, const auto& b) { return a.first == b.first; }),
        crash_at_.end());
  }

  bool active() const { return plan_ != nullptr && !plan_->empty(); }
  bool has_loss() const { return plan_ != nullptr && plan_->has_loss(); }
  bool has_crashes() const { return plan_ != nullptr && plan_->has_crashes(); }
  bool has_burst() const { return plan_ != nullptr && plan_->burst.enabled(); }
  bool has_live_churn() const {
    return plan_ != nullptr && plan_->live_churn.enabled();
  }
  /// Recovery needs crashes to recover from; inert otherwise.
  bool has_recovery() const {
    return plan_ != nullptr && plan_->recover.enabled() && has_crashes();
  }
  const FaultPlan* plan() const { return plan_; }
  /// The derived fault seed; churn/repair streams key off this.
  std::uint64_t seed() const { return seed_; }

  /// Does node v, awake in the given round, fail-stop at the start of
  /// it? Rounds are passed as (lo, hi) halves of the bulk engine's
  /// 128-bit virtual clock; the coroutine scheduler passes hi = 0.
  /// Only meaningful for rounds in which v is actually awake — both
  /// engines evaluate it exactly there, which is why they agree.
  bool crashes_now(VertexId v, std::uint64_t round_lo,
                   std::uint64_t round_hi) const {
    if (!has_crashes()) return false;
    const auto it = std::lower_bound(
        crash_at_.begin(), crash_at_.end(), v,
        [](const auto& e, VertexId node) { return e.first < node; });
    if (it != crash_at_.end() && it->first == v &&
        (round_hi > 0 || round_lo >= it->second)) {
      return true;
    }
    if (plan_->crash_prob <= 0.0) return false;
    const std::uint64_t stream = detail::mix(
        detail::mix(util::stream_tags::kCrashTag ^ v, round_lo), round_hi);
    return util::stream_rng(seed_, stream).bernoulli(plan_->crash_prob);
  }

  /// Is the undirected link {a, b} down in the given round? Symmetric:
  /// the pair is canonicalized, so both directions (and both engines,
  /// and every lane) share one draw. A link is down when its burst
  /// channel is in the bad state OR the independent memoryless loss
  /// draw fires — the two mechanisms compose.
  bool link_down(VertexId a, VertexId b, std::uint64_t round_lo,
                 std::uint64_t round_hi) const {
    if (!has_loss()) return false;
    if (a > b) std::swap(a, b);
    const std::uint64_t edge = detail::mix(a, b);
    if (plan_->burst.enabled() && burst_state(edge, round_lo, round_hi)) {
      return true;
    }
    if (plan_->loss_prob <= 0.0) return false;
    const std::uint64_t stream = detail::mix(
        detail::mix(util::stream_tags::kLossTag ^ edge, round_lo), round_hi);
    return util::stream_rng(seed_, stream).bernoulli(plan_->loss_prob);
  }

  /// Is the {a, b} burst channel in its bad (all-dropping) state in the
  /// given round? A pure function of (edge, epoch(round)): the
  /// Gilbert-Elliott chain is realized through its regeneration
  /// coupling — each epoch either copies the previous epoch's state
  /// (probability 1 - (p_on + p_off)) or regenerates from the
  /// stationary law Bernoulli(p_on / (p_on + p_off)) — so the state at
  /// any epoch is found by scanning backward to the most recent
  /// regenerating epoch. Epochs on the kBurstRenewalGrid always
  /// regenerate, bounding the scan; every draw is keyed on
  /// (edge, epoch), so lane count, engine, and evaluation order cannot
  /// change a single bit.
  bool burst_bad(VertexId a, VertexId b, std::uint64_t round_lo,
                 std::uint64_t round_hi) const {
    if (!has_burst()) return false;
    if (a > b) std::swap(a, b);
    return burst_state(detail::mix(a, b), round_lo, round_hi);
  }

  /// Mid-run churn: does node v, participating in the given round,
  /// leave the network now — and if so, for how long? Both decisions
  /// come from one stream keyed (node, round), so every lane (and a
  /// serial rerun) computes identical bits. Like crashes_now, only
  /// meaningful for rounds v actually participates in.
  LeaveDraw live_leave(VertexId v, std::uint64_t round_lo,
                       std::uint64_t round_hi) const {
    LeaveDraw draw;
    if (!has_live_churn()) return draw;
    const std::uint64_t leave_stream = detail::mix(
        detail::mix(util::stream_tags::kLiveChurnTag ^ v, round_lo), round_hi);
    auto rng = util::stream_rng(seed_, leave_stream);
    if (!rng.bernoulli(plan_->live_churn.leave_prob)) return draw;
    draw.leaves = true;
    if (plan_->live_churn.join_prob > 0.0) {
      draw.rejoins = true;
      draw.downtime = detail::geometric_from_uniform(
          rng.uniform(), plan_->live_churn.join_prob);
    }
    return draw;
  }

  /// Crash recovery: the downtime (>= 1 rounds) before node v, crashed
  /// at the given round, comes back; geometric with mean
  /// RecoverSpec::mean_down, keyed on (node, crash round).
  std::uint64_t recover_downtime(VertexId v, std::uint64_t round_lo,
                                 std::uint64_t round_hi) const {
    const std::uint64_t recover_stream = detail::mix(
        detail::mix(util::stream_tags::kRecoverTag ^ v, round_lo), round_hi);
    auto rng = util::stream_rng(seed_, recover_stream);
    return detail::geometric_from_uniform(
        rng.uniform(), 1.0 / static_cast<double>(plan_->recover.mean_down));
  }

 private:
  bool burst_state(std::uint64_t edge, std::uint64_t round_lo,
                   std::uint64_t round_hi) const {
    const BurstSpec& burst = plan_->burst;
    // The coupling needs p_on + p_off <= 1 (CLI-validated); clamping to
    // the boundary degrades gracefully to i.i.d. stationary states.
    const double regen_rate = std::min(burst.p_on + burst.p_off, 1.0);
    const double stationary = burst.stationary_loss();
    using Wide = unsigned __int128;
    const Wide round = (Wide{round_hi} << 64) | round_lo;
    Wide epoch = round / burst.epoch_len;
    for (;;) {
      // NOLINTNEXTLINE(slumber-d7): lossless lo/hi split; both halves key the stream
      const std::uint64_t lo = static_cast<std::uint64_t>(epoch);
      // NOLINTNEXTLINE(slumber-d7): lossless lo/hi split; both halves key the stream
      const std::uint64_t hi = static_cast<std::uint64_t>(epoch >> 64);
      const std::uint64_t burst_stream = detail::mix(
          detail::mix(util::stream_tags::kBurstTag ^ edge, lo), hi);
      auto rng = util::stream_rng(seed_, burst_stream);
      // Grid epochs regenerate unconditionally (note the short-circuit:
      // their streams serve only the state draw), so the scan takes at
      // most kBurstRenewalGrid steps — in expectation min(1/regen_rate,
      // grid) stream constructions per queried (edge, round).
      const bool regenerates =
          epoch % kBurstRenewalGrid == 0 || rng.bernoulli(regen_rate);
      if (regenerates) return rng.bernoulli(stationary);
      --epoch;
    }
  }

  const FaultPlan* plan_ = nullptr;
  std::uint64_t seed_ = 0;
  // Sorted (node, earliest crash round) pairs from the schedule.
  std::vector<std::pair<VertexId, std::uint64_t>> crash_at_;
};

}  // namespace slumber::fault
