// Deterministic fault injection shared by both execution back ends.
//
// A FaultPlan describes what goes wrong in a run: a fail-stop crash
// schedule (node v crashes at the first round >= r in which it is
// awake), a probabilistic per-round crash rate, probabilistic message
// loss, and a churn stream (joins/leaves with incremental MIS repair,
// bulk engine only — see fault/churn.h).
//
// Every probabilistic decision is a *pure function* of (run seed, fault
// identity): draws go through util::stream_rng keyed by the entity the
// fault hits — the undirected edge id and round for message loss, the
// node id and round for crashes — never through an engine's own RNG
// streams or any sequential generator. That is the property that makes
// the layer engine-independent: the coroutine scheduler evaluating
// "does the link (u, v) drop its messages in round t?" and a bulk-engine
// lane evaluating the same question on another thread, in another
// order, at another lane count, compute the identical bit. Message loss
// is symmetric per link per round (one draw for both directions), so a
// receiver-side count of surviving messages equals the sender-side
// count of deliveries and per-chunk accounting stays an order-free sum.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/stream_rng.h"
#include "util/stream_tags.h"

namespace slumber::fault {

/// One entry of a deterministic fail-stop schedule: `node` crashes at
/// the start of the first round >= `round` in which it is awake.
struct CrashEvent {
  VertexId node = 0;
  std::uint64_t round = 0;
};

/// Churn stream configuration: after the protocol run, `batches` rounds
/// of membership churn hit the graph. In each batch every alive node
/// leaves with probability `leave_prob` and every departed node rejoins
/// with probability `join_prob`; after each batch the MIS is repaired
/// incrementally (fault/churn.h). Draws are keyed by (node, batch).
struct ChurnSpec {
  double leave_prob = 0.0;
  double join_prob = 0.0;
  std::uint32_t batches = 0;

  bool enabled() const {
    return batches > 0 && (leave_prob > 0.0 || join_prob > 0.0);
  }
};

/// The full fault configuration of a run. Engine-independent: the same
/// plan produces the same faults on the coroutine scheduler and the
/// bulk engine at every lane count.
struct FaultPlan {
  /// Deterministic fail-stop events (may list a node more than once;
  /// the earliest round wins).
  std::vector<CrashEvent> crash_schedule;
  /// Each round a node is awake it crashes independently with this
  /// probability, BEFORE sending (fail-stop; silent forever after).
  double crash_prob = 0.0;
  /// Each otherwise-deliverable message is lost with this probability.
  /// Loss is symmetric per undirected link per round.
  double loss_prob = 0.0;
  /// Post-run membership churn (bulk engine only).
  ChurnSpec churn;
  /// Extra key folded into every draw, so two runs with the same seed
  /// can face independent fault streams.
  std::uint64_t salt = 0;

  bool has_crashes() const {
    return crash_prob > 0.0 || !crash_schedule.empty();
  }
  bool has_loss() const { return loss_prob > 0.0; }
  bool empty() const { return !has_crashes() && !has_loss() && !churn.enabled(); }
};

namespace detail {

/// One avalanche step combining two 64-bit keys; the building block of
/// every fault stream id. The golden-ratio offset keeps mix(x, 0) from
/// collapsing to splitmix64(x).
inline std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t sm = a ^ (b + 0x9e3779b97f4a7c15ULL);
  return splitmix64(sm);
}

// The domain-separation tags that keep the loss, crash, churn, and
// repair streams of one run from colliding moved to the central
// stream-tag registry (util/stream_tags.h), which proves all
// registered tags pairwise distinct in their high 32 bits at compile
// time; slumber-d6 additionally checks every stream_rng call site
// keys through a registered tag.

}  // namespace detail

/// A FaultPlan bound to one run (seed + vertex count): the read-side
/// object both engines query. Copyable, cheap when inert; the borrowed
/// plan must outlive it. All queries are const and thread-safe — they
/// touch no mutable state, which is what lets bulk lanes evaluate
/// faults chunk-locally and merge in chunk order.
class FaultState {
 public:
  FaultState() = default;

  FaultState(const FaultPlan* plan, std::uint64_t run_seed, VertexId n)
      : plan_(plan) {
    if (plan_ == nullptr) return;
    seed_ = detail::mix(run_seed, plan_->salt);
    crash_at_.reserve(plan_->crash_schedule.size());
    for (const CrashEvent& ev : plan_->crash_schedule) {
      if (ev.node < n) crash_at_.push_back({ev.node, ev.round});
    }
    std::sort(crash_at_.begin(), crash_at_.end());
    // Keep only the earliest round per node; lookups binary-search the
    // (small) schedule instead of paying an O(n) array at 10^8 nodes.
    crash_at_.erase(
        std::unique(crash_at_.begin(), crash_at_.end(),
                    [](const auto& a, const auto& b) { return a.first == b.first; }),
        crash_at_.end());
  }

  bool active() const { return plan_ != nullptr && !plan_->empty(); }
  bool has_loss() const { return plan_ != nullptr && plan_->has_loss(); }
  bool has_crashes() const { return plan_ != nullptr && plan_->has_crashes(); }
  const FaultPlan* plan() const { return plan_; }
  /// The derived fault seed; churn/repair streams key off this.
  std::uint64_t seed() const { return seed_; }

  /// Does node v, awake in the given round, fail-stop at the start of
  /// it? Rounds are passed as (lo, hi) halves of the bulk engine's
  /// 128-bit virtual clock; the coroutine scheduler passes hi = 0.
  /// Only meaningful for rounds in which v is actually awake — both
  /// engines evaluate it exactly there, which is why they agree.
  bool crashes_now(VertexId v, std::uint64_t round_lo,
                   std::uint64_t round_hi) const {
    if (!has_crashes()) return false;
    const auto it = std::lower_bound(
        crash_at_.begin(), crash_at_.end(), v,
        [](const auto& e, VertexId node) { return e.first < node; });
    if (it != crash_at_.end() && it->first == v &&
        (round_hi > 0 || round_lo >= it->second)) {
      return true;
    }
    if (plan_->crash_prob <= 0.0) return false;
    const std::uint64_t stream = detail::mix(
        detail::mix(util::stream_tags::kCrashTag ^ v, round_lo), round_hi);
    return util::stream_rng(seed_, stream).bernoulli(plan_->crash_prob);
  }

  /// Is the undirected link {a, b} down in the given round? Symmetric:
  /// the pair is canonicalized, so both directions (and both engines,
  /// and every lane) share one draw.
  bool link_down(VertexId a, VertexId b, std::uint64_t round_lo,
                 std::uint64_t round_hi) const {
    if (!has_loss()) return false;
    if (a > b) std::swap(a, b);
    const std::uint64_t edge = detail::mix(a, b);
    const std::uint64_t stream = detail::mix(
        detail::mix(util::stream_tags::kLossTag ^ edge, round_lo), round_hi);
    return util::stream_rng(seed_, stream).bernoulli(plan_->loss_prob);
  }

 private:
  const FaultPlan* plan_ = nullptr;
  std::uint64_t seed_ = 0;
  // Sorted (node, earliest crash round) pairs from the schedule.
  std::vector<std::pair<VertexId, std::uint64_t>> crash_at_;
};

}  // namespace slumber::fault
