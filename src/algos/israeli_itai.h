// Direct distributed maximal matching (Israeli-Itai'86 style
// propose-accept), the native counterpart to the line-graph reduction
// of algos/matching.h.
//
// Each iteration (3 rounds): every active unmatched node with an active
// neighbor PROPOSES to one uniformly random active neighbor; a node
// that receives proposals ACCEPTS exactly one (the lowest port, a
// deterministic tie-break); a proposal meeting its acceptance forms a
// matched edge, and both endpoints ANNOUNCE and terminate. Nodes whose
// active neighborhood empties terminate unmatched. A constant fraction
// of edges disappears per iteration in expectation, giving O(log n)
// rounds w.h.p. -- same ballpark as running an MIS baseline on L(G)
// but without materializing the line graph, and with per-port CONGEST
// messages of O(1) bits.
//
// Output per node: the partner's vertex id, or -1 if unmatched.
// `matching_from_outputs` converts the output vector to edge ids and
// checks mutual consistency.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "sim/network.h"

namespace slumber::algos {

struct IsraeliItaiOptions {
  /// Safety cap on iterations (0 = 64 + 8*log2 n).
  std::uint64_t max_iterations = 0;
};

/// Output: partner vertex id, or -1 for unmatched.
sim::Protocol israeli_itai_matching(IsraeliItaiOptions options = {});

/// Translates partner outputs into edge ids of g. Returns nullopt if
/// the outputs are inconsistent (u claims v but not vice versa, or a
/// claimed edge does not exist).
std::optional<std::vector<EdgeId>> matching_from_outputs(
    const Graph& g, const std::vector<std::int64_t>& outputs);

}  // namespace slumber::algos
