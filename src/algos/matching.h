// Maximal matching via MIS on the line graph.
//
// The classical reduction: a matching of G is an independent set of the
// line graph L(G), and it is maximal iff the independent set is maximal.
// Barenboim-Tzur study maximal matching alongside MIS under
// node-averaged complexity; this module lets every MIS engine in the
// library double as a maximal-matching engine (see
// examples/maximal_matching.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/network.h"

namespace slumber::algos {

/// Which MIS engine drives the reduction.
enum class MisEngine {
  kSleeping,      // Algorithm 1
  kFastSleeping,  // Algorithm 2
  kLubyA,
  kLubyB,
  kGreedy,
  kGhaffari,
};

/// Protocol factory for an engine; used by the matching and ruling-set
/// reductions and the engine-comparison benches.
sim::Protocol mis_protocol(MisEngine engine);

struct MatchingResult {
  /// Edge ids of g forming a maximal matching.
  std::vector<EdgeId> matched_edges;
  /// Metrics of the MIS run on the line graph.
  sim::Metrics line_graph_metrics;
};

/// Runs `engine` on L(g) and translates the MIS back to edges of g.
MatchingResult maximal_matching_via_mis(const Graph& g, std::uint64_t seed,
                                        MisEngine engine);

/// True iff `matched_edges` is a valid maximal matching of g.
bool is_maximal_matching(const Graph& g,
                         const std::vector<EdgeId>& matched_edges);

}  // namespace slumber::algos
