#include "algos/ruling_set.h"

#include <queue>
#include <stdexcept>

#include "graph/transforms.h"

namespace slumber::algos {

RulingSetResult ruling_set_via_mis(const Graph& g, std::uint32_t k,
                                   std::uint64_t seed, MisEngine engine) {
  if (k < 1) throw std::invalid_argument("ruling_set_via_mis: k must be >= 1");
  const Graph powered = power(g, k);
  sim::NetworkOptions options;
  options.max_message_bits =
      sim::congest_bits_for(std::max<std::uint64_t>(powered.num_vertices(), 2));
  auto [metrics, outputs] =
      sim::run_protocol(powered, seed, mis_protocol(engine), options);
  RulingSetResult result;
  result.power_graph_metrics = std::move(metrics);
  for (VertexId v = 0; v < outputs.size(); ++v) {
    if (outputs[v] == 1) result.rulers.push_back(v);
  }
  return result;
}

RulingSetCheck check_ruling_set(const Graph& g,
                                const std::vector<VertexId>& rulers,
                                std::uint32_t alpha, std::uint32_t beta) {
  const VertexId n = g.num_vertices();
  RulingSetCheck check;

  // Multi-source BFS from all rulers: dist[v] = distance to nearest ruler.
  std::vector<std::int64_t> dist(n, -1);
  std::queue<VertexId> queue;
  for (VertexId r : rulers) {
    dist[r] = 0;
    queue.push(r);
  }
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop();
    for (VertexId u : g.neighbors(v)) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        queue.push(u);
      }
    }
  }
  check.dominating = true;
  for (VertexId v = 0; v < n; ++v) {
    if (dist[v] < 0 || dist[v] > static_cast<std::int64_t>(beta)) {
      check.dominating = false;
      break;
    }
  }

  // Pairwise distance >= alpha: BFS to depth alpha-1 from each ruler must
  // reach no other ruler.
  std::vector<std::uint8_t> is_ruler(n, 0);
  for (VertexId r : rulers) is_ruler[r] = 1;
  check.independent = true;
  std::vector<std::int64_t> local(n, -1);
  for (VertexId r : rulers) {
    if (!check.independent) break;
    std::queue<VertexId> bfs;
    std::vector<VertexId> touched;
    local[r] = 0;
    touched.push_back(r);
    bfs.push(r);
    while (!bfs.empty()) {
      const VertexId v = bfs.front();
      bfs.pop();
      if (local[v] >= static_cast<std::int64_t>(alpha) - 1) continue;
      for (VertexId u : g.neighbors(v)) {
        if (local[u] >= 0) continue;
        local[u] = local[v] + 1;
        touched.push_back(u);
        bfs.push(u);
        if (is_ruler[u]) {
          check.independent = false;
        }
      }
    }
    for (VertexId v : touched) local[v] = -1;
  }
  return check;
}

}  // namespace slumber::algos
