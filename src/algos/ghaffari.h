// Ghaffari's MIS algorithm (SODA'16), the strongest traditional-model
// baseline the paper discusses (Section 1.3): it is "node centric" --
// each node v finishes within O(log deg(v) + log 1/eps) rounds with
// probability >= 1 - eps -- yet its node-averaged complexity is still
// Theta(log n) on graphs where most nodes have polynomial degree, which
// is exactly the gap the sleeping model closes.
//
// Per iteration (3 rounds): nodes exchange desire levels p_v, compute
// effective degree d_v = sum of neighbor desire levels, mark themselves
// w.p. p_v, winners (marked with no marked neighbor) join and announce;
// desire levels halve when d_v >= 2 and double (capped at 1/2)
// otherwise.
#pragma once

#include "sim/network.h"

namespace slumber::algos {

struct GhaffariOptions {
  /// Safety cap on iterations (0 = 64 + 8*log2 n).
  std::uint64_t max_iterations = 0;
};

sim::Protocol ghaffari_mis(GhaffariOptions options = {});

}  // namespace slumber::algos
