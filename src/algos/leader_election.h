// Flood-max leader election with decision-instant accounting.
//
// Feuilloley (the paper's Section 1.5) introduced node-averaged
// complexity via leader election: on cycles it can be solved with
// O(log n) node-averaged complexity even though the worst case is
// Omega(n). This module provides the classic flood-max baseline so the
// bench can measure the gap between the *decision* instants (a node
// that sees a value beating its own knows immediately it lost -- the
// Feuilloley notion counts it as done) and the worst-case Theta(D)
// rounds the eventual leader needs.
//
// Protocol: each node draws a random priority (ties broken by id) and
// floods the maximum it has seen for `diameter_bound` rounds. A node
// decides "not leader" (output 0) the first round it learns of a
// higher priority; the surviving node decides "leader" (output 1) when
// the flood completes. On a connected graph exactly one node elects
// itself, deterministically given the seed.
#pragma once

#include <cstdint>

#include "sim/network.h"

namespace slumber::algos {

struct LeaderElectionOptions {
  /// Number of flooding rounds; must be >= diameter(g) for correctness.
  /// 0 means the safe default n - 1.
  std::uint64_t diameter_bound = 0;
};

/// Output: 1 for the elected leader, 0 for everyone else. Requires a
/// connected graph for a unique leader (per component otherwise).
sim::Protocol flood_max_leader_election(LeaderElectionOptions options = {});

}  // namespace slumber::algos
