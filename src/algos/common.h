// Small helpers shared by the baseline protocols.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>

namespace slumber::algos {

/// Random-priority width: 3 log2 n bits keeps priorities collision-free
/// w.h.p. while staying within the CONGEST budget (ids break any ties
/// deterministically regardless).
inline std::uint32_t rank_bits_for(std::uint64_t n) {
  const auto log_n = static_cast<std::uint32_t>(
      std::bit_width(std::max<std::uint64_t>(n, 2) - 1));
  return std::min<std::uint32_t>(3 * std::max<std::uint32_t>(log_n, 1), 48);
}

/// Strict priority order on (value, id) pairs: larger wins.
inline bool priority_beats(std::uint64_t value_a, std::uint64_t id_a,
                           std::uint64_t value_b, std::uint64_t id_b) {
  return value_a != value_b ? value_a > value_b : id_a > id_b;
}

/// Default iteration cap for the Las-Vegas-style loops: generous
/// multiple of the O(log n) w.h.p. bound so a genuine bug trips the
/// network's safety valve instead of looping forever.
inline std::uint64_t default_iteration_cap(std::uint64_t n) {
  const auto log_n = static_cast<std::uint64_t>(
      std::bit_width(std::max<std::uint64_t>(n, 2) - 1));
  return 64 + 8 * log_n;
}

}  // namespace slumber::algos
