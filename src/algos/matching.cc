#include "algos/matching.h"

#include "algos/ghaffari.h"
#include "algos/greedy.h"
#include "algos/luby.h"
#include "core/fast_sleeping_mis.h"
#include "core/sleeping_mis.h"

namespace slumber::algos {

sim::Protocol mis_protocol(MisEngine engine) {
  switch (engine) {
    case MisEngine::kSleeping: return core::sleeping_mis();
    case MisEngine::kFastSleeping: return core::fast_sleeping_mis();
    case MisEngine::kLubyA: return luby_a();
    case MisEngine::kLubyB: return luby_b();
    case MisEngine::kGreedy: return distributed_greedy_mis();
    case MisEngine::kGhaffari: return ghaffari_mis();
  }
  throw std::invalid_argument("mis_protocol: unknown engine");
}

MatchingResult maximal_matching_via_mis(const Graph& g, std::uint64_t seed,
                                        MisEngine engine) {
  const Graph line = g.line_graph();
  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(line.num_vertices());
  auto [metrics, outputs] =
      sim::run_protocol(line, seed, mis_protocol(engine), options);
  MatchingResult result;
  result.line_graph_metrics = std::move(metrics);
  for (EdgeId e = 0; e < outputs.size(); ++e) {
    if (outputs[e] == 1) result.matched_edges.push_back(e);
  }
  return result;
}

bool is_maximal_matching(const Graph& g,
                         const std::vector<EdgeId>& matched_edges) {
  std::vector<std::uint8_t> covered(g.num_vertices(), 0);
  for (EdgeId e : matched_edges) {
    const Edge edge = g.edges()[e];
    if (covered[edge.u] || covered[edge.v]) return false;  // not a matching
    covered[edge.u] = 1;
    covered[edge.v] = 1;
  }
  for (const Edge& edge : g.edges()) {
    if (!covered[edge.u] && !covered[edge.v]) return false;  // not maximal
  }
  return true;
}

}  // namespace slumber::algos
