#include "algos/greedy_coloring.h"

#include <algorithm>
#include <vector>

#include "algos/common.h"

namespace slumber::algos {
namespace {

sim::Task greedy_coloring_node(sim::Context& ctx,
                               GreedyColoringOptions options) {
  const std::uint64_t cap = options.max_iterations != 0
                                ? options.max_iterations
                                : 2 * default_iteration_cap(ctx.n()) + ctx.n();
  const std::uint32_t rank_bits = rank_bits_for(ctx.n());
  const std::uint32_t color_bits = rank_bits;

  const std::uint64_t own_rank =
      ctx.rng().below(std::uint64_t{1} << rank_bits);
  if (options.ranks_out != nullptr) {
    (*options.ranks_out)[ctx.id()] = own_rank;
  }

  // Round 1: exchange ranks; learn which neighbors precede us in the
  // (rank, id)-descending order.
  sim::Inbox inbox =
      co_await ctx.broadcast(sim::Message::rank(own_rank, rank_bits));
  std::vector<std::uint8_t> higher(ctx.degree(), 0);
  std::uint32_t higher_pending = 0;
  for (const sim::Received& r : inbox) {
    if (r.msg.kind != sim::MsgKind::kRank) continue;
    if (priority_beats(r.msg.payload_a, r.from, own_rank, ctx.id())) {
      higher[r.port] = 1;
      ++higher_pending;
    }
  }

  // Peeling loop: one round per step. Nodes whose higher neighbors have
  // all committed choose the smallest free color, announce it, and
  // terminate; everyone else listens and strikes announced colors.
  std::vector<std::uint8_t> struck(ctx.degree() + 1, 0);
  for (std::uint64_t step = 0; step < cap; ++step) {
    if (higher_pending == 0) {
      std::uint64_t color = 0;
      while (struck[color]) ++color;  // palette {0..deg}, never exhausted
      co_await ctx.broadcast(sim::Message::color(color, color_bits));
      ctx.decide(static_cast<std::int64_t>(color));
      co_return;
    }
    sim::Inbox heard = co_await ctx.listen();
    for (const sim::Received& r : heard) {
      if (r.msg.kind != sim::MsgKind::kColor) continue;
      if (r.msg.payload_a <= ctx.degree()) struck[r.msg.payload_a] = 1;
      if (higher[r.port]) {
        higher[r.port] = 0;
        --higher_pending;
      }
    }
  }
}

}  // namespace

sim::Protocol greedy_coloring(GreedyColoringOptions options) {
  return [options](sim::Context& ctx) {
    return greedy_coloring_node(ctx, options);
  };
}

std::vector<std::int64_t> sequential_greedy_coloring(
    const Graph& g, const std::vector<VertexId>& order) {
  std::vector<std::int64_t> colors(g.num_vertices(), -1);
  for (const VertexId v : order) {
    std::vector<std::uint8_t> struck(g.degree(v) + 2, 0);
    for (const VertexId u : g.neighbors(v)) {
      const std::int64_t c = colors[u];
      if (c >= 0 && c <= static_cast<std::int64_t>(g.degree(v))) {
        struck[static_cast<std::size_t>(c)] = 1;
      }
    }
    std::int64_t color = 0;
    while (struck[static_cast<std::size_t>(color)]) ++color;
    colors[v] = color;
  }
  return colors;
}

}  // namespace slumber::algos
