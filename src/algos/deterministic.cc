#include "algos/deterministic.h"

#include "algos/common.h"

namespace slumber::algos {
namespace {

sim::Task deterministic_node(sim::Context& ctx,
                             DeterministicGreedyOptions options) {
  const std::uint64_t cap = options.max_iterations != 0
                                ? options.max_iterations
                                : 4 + ctx.n();
  for (std::uint64_t iteration = 0; iteration < cap; ++iteration) {
    // Round 1: presence probe. The sender's ID rides on the envelope
    // (Received::from), so an empty Hello suffices.
    sim::Inbox inbox = co_await ctx.broadcast(sim::Message::hello());
    bool win = true;
    for (const sim::Received& r : inbox) {
      if (r.msg.kind == sim::MsgKind::kHello && r.from > ctx.id()) {
        win = false;
        break;
      }
    }
    // Round 2: local ID maxima join and announce; dominated nodes exit.
    if (win) {
      co_await ctx.broadcast(sim::Message::in_mis());
      ctx.decide(1);
      co_return;
    }
    sim::Inbox announcements = co_await ctx.listen();
    for (const sim::Received& r : announcements) {
      if (r.msg.kind == sim::MsgKind::kInMis) {
        ctx.decide(0);
        co_return;
      }
    }
  }
}

}  // namespace

sim::Protocol deterministic_greedy_mis(DeterministicGreedyOptions options) {
  return [options](sim::Context& ctx) {
    return deterministic_node(ctx, options);
  };
}

}  // namespace slumber::algos
