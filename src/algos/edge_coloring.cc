#include "algos/edge_coloring.h"

#include <algorithm>
#include <vector>

#include "algos/luby_coloring.h"

namespace slumber::algos {

EdgeColoringResult edge_coloring_via_line_graph(const Graph& g,
                                                std::uint64_t seed) {
  const Graph line = g.line_graph();
  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(
      std::max<std::uint64_t>(line.num_vertices(), 2));
  auto [metrics, outputs] =
      sim::run_protocol(line, seed, luby_coloring(), options);

  EdgeColoringResult result;
  result.colors = std::move(outputs);
  result.line_graph_metrics = std::move(metrics);
  // Distinct-color count via sort+unique on a flat vector: same result
  // as a hash set, no implementation-defined container involved (lint
  // rule slumber-d2).
  std::vector<std::int64_t> palette_used;
  palette_used.reserve(result.colors.size());
  for (std::int64_t c : result.colors) {
    if (c >= 0) palette_used.push_back(c);
  }
  std::sort(palette_used.begin(), palette_used.end());
  palette_used.erase(std::unique(palette_used.begin(), palette_used.end()),
                     palette_used.end());
  result.colors_used = palette_used.size();
  return result;
}

bool check_edge_coloring(const Graph& g,
                         const std::vector<std::int64_t>& colors) {
  if (colors.size() != g.num_edges()) return false;
  const std::int64_t palette =
      std::max<std::int64_t>(2 * static_cast<std::int64_t>(g.max_degree()) - 1,
                             1);
  for (std::int64_t c : colors) {
    if (c < 0 || c >= palette) return false;
  }
  // Adjacent edges (sharing an endpoint) must differ. Scan per vertex
  // with a direct-indexed stamp array over the (bounded) palette — the
  // colors were range-checked above, so colors[eid] indexes safely.
  // stamp[c] == v + 1 means color c was already seen at vertex v.
  std::vector<VertexId> stamp(static_cast<std::size_t>(palette), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      const Edge e = u < v ? Edge{u, v} : Edge{v, u};
      const auto& edges = g.edges();
      const auto it = std::lower_bound(edges.begin(), edges.end(), e);
      const auto eid = static_cast<EdgeId>(it - edges.begin());
      const auto c = static_cast<std::size_t>(colors[eid]);
      if (stamp[c] == v + 1) return false;
      stamp[c] = v + 1;
    }
  }
  return true;
}

}  // namespace slumber::algos
