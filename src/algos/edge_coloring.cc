#include "algos/edge_coloring.h"

#include <algorithm>
#include <unordered_set>

#include "algos/luby_coloring.h"

namespace slumber::algos {

EdgeColoringResult edge_coloring_via_line_graph(const Graph& g,
                                                std::uint64_t seed) {
  const Graph line = g.line_graph();
  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(
      std::max<std::uint64_t>(line.num_vertices(), 2));
  auto [metrics, outputs] =
      sim::run_protocol(line, seed, luby_coloring(), options);

  EdgeColoringResult result;
  result.colors = std::move(outputs);
  result.line_graph_metrics = std::move(metrics);
  std::unordered_set<std::int64_t> distinct;
  for (std::int64_t c : result.colors) {
    if (c >= 0) distinct.insert(c);
  }
  result.colors_used = distinct.size();
  return result;
}

bool check_edge_coloring(const Graph& g,
                         const std::vector<std::int64_t>& colors) {
  if (colors.size() != g.num_edges()) return false;
  const std::int64_t palette =
      std::max<std::int64_t>(2 * static_cast<std::int64_t>(g.max_degree()) - 1,
                             1);
  for (std::int64_t c : colors) {
    if (c < 0 || c >= palette) return false;
  }
  // Adjacent edges (sharing an endpoint) must differ. Scan per vertex.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::unordered_set<std::int64_t> seen;
    for (VertexId u : g.neighbors(v)) {
      const Edge e = u < v ? Edge{u, v} : Edge{v, u};
      const auto& edges = g.edges();
      const auto it = std::lower_bound(edges.begin(), edges.end(), e);
      const auto eid = static_cast<EdgeId>(it - edges.begin());
      if (!seen.insert(colors[eid]).second) return false;
    }
  }
  return true;
}

}  // namespace slumber::algos
