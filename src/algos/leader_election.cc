#include "algos/leader_election.h"

#include <bit>

#include "algos/common.h"

namespace slumber::algos {
namespace {

sim::Task leader_node(sim::Context& ctx, LeaderElectionOptions options) {
  const std::uint64_t rounds =
      options.diameter_bound != 0
          ? options.diameter_bound
          : (ctx.n() > 0 ? ctx.n() - 1 : 0);
  const std::uint32_t rank_bits = rank_bits_for(ctx.n());
  const std::uint32_t id_bits = static_cast<std::uint32_t>(
      std::bit_width(std::max<std::uint64_t>(ctx.n(), 2) - 1));

  const std::uint64_t own_rank =
      ctx.rng().below(std::uint64_t{1} << rank_bits);
  std::uint64_t best_rank = own_rank;
  std::uint64_t best_id = ctx.id();

  for (std::uint64_t r = 0; r < rounds; ++r) {
    sim::Message m{sim::MsgKind::kRank, best_rank, best_id,
                   rank_bits + id_bits + 8};
    sim::Inbox inbox = co_await ctx.broadcast(m);
    for (const sim::Received& rec : inbox) {
      if (rec.msg.kind != sim::MsgKind::kRank) continue;
      if (priority_beats(rec.msg.payload_a, rec.msg.payload_b, best_rank,
                         best_id)) {
        best_rank = rec.msg.payload_a;
        best_id = rec.msg.payload_b;
      }
    }
    // The Feuilloley decision instant: the first time the node sees a
    // priority beating its own, its output is fixed even though it keeps
    // forwarding the flood until the diameter bound expires.
    if (!ctx.decided() && best_id != ctx.id()) ctx.decide(0);
  }
  ctx.decide(best_id == ctx.id() ? 1 : 0);
}

}  // namespace

sim::Protocol flood_max_leader_election(LeaderElectionOptions options) {
  return [options](sim::Context& ctx) { return leader_node(ctx, options); };
}

}  // namespace slumber::algos
