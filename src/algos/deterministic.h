// Deterministic greedy-by-ID MIS.
//
// The simplest deterministic distributed MIS: every iteration, an
// active node whose ID is larger than all active neighbors' joins the
// MIS and announces; dominated neighbors leave. This computes the
// lexicographically-first MIS by descending ID, deterministically, in
// O(n) worst-case rounds (an ID-sorted path is the worst case: one
// decision frontier sweeps the path).
//
// It is included as the contrast the paper's randomization needs:
// Table 1's baselines are all randomized because deterministic MIS in
// o(n) general-graph rounds requires heavyweight machinery
// (Panconesi-Srinivasan / Rozhon-Ghaffari network decomposition, cited
// in the paper's Section 1). bench_deterministic_contrast shows the
// Theta(n) blowup on adversarial paths and that even its *node-average*
// is Theta(n) there -- randomization, or sleeping, is what kills it.
#pragma once

#include "sim/network.h"

namespace slumber::algos {

struct DeterministicGreedyOptions {
  /// Safety cap on iterations (0 = 4 + n, enough for any chain).
  std::uint64_t max_iterations = 0;
};

sim::Protocol deterministic_greedy_mis(DeterministicGreedyOptions options = {});

}  // namespace slumber::algos
