// MIS in the beeping model (Afek et al., Distributed Computing 2013).
//
// The paper's Section 1.5 singles out beeping as the other
// restricted-communication model studied for MIS and calls sleeping
// "orthogonal to beeping". This module supplies the beeping side of
// that comparison: nodes communicate only by 1-bit carrier pulses
// ("beeps"); a listener learns whether AT LEAST ONE neighbor beeped in
// a slot, nothing more, and a beeping node hears nothing in the slot
// it beeps (no sender-side collision detection).
//
// The algorithm is the bitwise-elimination tournament variant:
//
//   Each phase, every undecided node becomes a CANDIDATE with
//   probability 1/2 and draws a composite rank -- random high bits
//   (symmetry breaking) with its id appended (so ranks of neighbors are
//   always distinct). The rank is then auctioned off bit by bit, most
//   significant first, one slot per bit: a candidate still in
//   contention beeps iff its current bit is 1; a contending candidate
//   with bit 0 that hears a beep drops out. For any two adjacent
//   candidates, at the first differing bit the one holding 0 hears the
//   other's beep (if that other is still contending) -- so at most one
//   of any adjacent pair survives, and survivors form an independent
//   set. In the final slot of the phase survivors beep "I join";
//   every node that hears the join beep is dominated and exits with
//   output 0. Undecided nodes proceed to the next phase. An isolated
//   still-active node survives the first phase in which it turns
//   candidate (it never hears any beep), so no special isolation
//   handling is needed.
//
// Faithfulness to the model: payloads are never read -- only the
// presence of kBeep messages -- and a beeping node discards its inbox
// for that slot. All undecided nodes stay awake every slot (the beeping
// model has no sleeping), which is exactly why its node-averaged AWAKE
// complexity is Theta(log^2 n)-ish while SleepingMIS achieves O(1);
// bench_beeping_contrast measures that gap.
#pragma once

#include "sim/network.h"

namespace slumber::algos {

struct BeepingMisOptions {
  /// Safety cap on phases (0 = 64 + 8*log2 n).
  std::uint64_t max_phases = 0;
  /// Candidate probability per phase (1/2 in the classic analysis).
  double candidate_prob = 0.5;
};

/// Beeping-model MIS protocol. Output: 1 in MIS, 0 dominated.
sim::Protocol beeping_mis(BeepingMisOptions options = {});

}  // namespace slumber::algos
