#include "algos/luby.h"

#include "algos/common.h"

namespace slumber::algos {
namespace {

sim::Task luby_a_node(sim::Context& ctx, LubyOptions options) {
  const std::uint32_t rank_bits = rank_bits_for(ctx.n());
  const std::uint64_t cap = options.max_iterations != 0
                                ? options.max_iterations
                                : default_iteration_cap(ctx.n());
  for (std::uint64_t iteration = 0; iteration < cap; ++iteration) {
    // Fresh priority each iteration (Luby'86 permutation variant).
    const std::uint64_t priority = ctx.rng().next() >> (64 - rank_bits);
    sim::Inbox inbox =
        co_await ctx.broadcast(sim::Message::rank(priority, rank_bits));
    bool win = true;
    for (const sim::Received& r : inbox) {
      if (r.msg.kind == sim::MsgKind::kRank &&
          priority_beats(r.msg.payload_a, r.from, priority, ctx.id())) {
        win = false;
        break;
      }
    }
    if (win) {
      // Local maximum: join the MIS, announce, terminate.
      co_await ctx.broadcast(sim::Message::in_mis());
      ctx.decide(1);
      co_return;
    }
    sim::Inbox announcements = co_await ctx.listen();
    for (const sim::Received& r : announcements) {
      if (r.msg.kind == sim::MsgKind::kInMis) {
        // An MIS neighbor dominates this node: eliminated, terminate.
        ctx.decide(0);
        co_return;
      }
    }
  }
  // Unreachable w.h.p.: leave undecided so verifiers flag it.
}

sim::Task luby_b_node(sim::Context& ctx, LubyOptions options) {
  const std::uint64_t cap = options.max_iterations != 0
                                ? options.max_iterations
                                : default_iteration_cap(ctx.n());
  for (std::uint64_t iteration = 0; iteration < cap; ++iteration) {
    // Round 1: probe active degree.
    sim::Inbox inbox = co_await ctx.broadcast(sim::Message::hello());
    const std::uint64_t active_degree = inbox.size();

    // Mark w.p. 1/(2d); residual-isolated nodes join outright.
    const bool marked =
        active_degree == 0 ||
        ctx.rng().bernoulli(1.0 / (2.0 * static_cast<double>(active_degree)));

    // Round 2: marked nodes exchange (degree, id) to break conflicts.
    sim::Inbox marks;
    if (marked) {
      sim::Message mark = sim::Message::mark();
      mark.payload_a = active_degree;  // degree < n: log n bits suffice
      mark.bits = 8 + rank_bits_for(ctx.n()) / 3;
      marks = co_await ctx.broadcast(mark);
    } else {
      marks = co_await ctx.listen();
    }
    bool win = marked;
    if (marked) {
      for (const sim::Received& r : marks) {
        if (r.msg.kind == sim::MsgKind::kMark &&
            priority_beats(r.msg.payload_a, r.from, active_degree,
                           ctx.id())) {
          win = false;
          break;
        }
      }
    }

    // Round 3: winners announce; dominated nodes are eliminated.
    if (win) {
      co_await ctx.broadcast(sim::Message::in_mis());
      ctx.decide(1);
      co_return;
    }
    sim::Inbox announcements = co_await ctx.listen();
    for (const sim::Received& r : announcements) {
      if (r.msg.kind == sim::MsgKind::kInMis) {
        ctx.decide(0);
        co_return;
      }
    }
  }
}

}  // namespace

sim::Protocol luby_a(LubyOptions options) {
  return [options](sim::Context& ctx) { return luby_a_node(ctx, options); };
}

sim::Protocol luby_b(LubyOptions options) {
  return [options](sim::Context& ctx) { return luby_b_node(ctx, options); };
}

}  // namespace slumber::algos
