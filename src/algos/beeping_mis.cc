#include "algos/beeping_mis.h"

#include <bit>

#include "algos/common.h"

namespace slumber::algos {
namespace {

bool heard_beep(const sim::Inbox& inbox) {
  for (const sim::Received& r : inbox) {
    if (r.msg.kind == sim::MsgKind::kBeep) return true;
  }
  return false;
}

sim::Task beeping_node(sim::Context& ctx, BeepingMisOptions options) {
  const std::uint64_t phase_cap = options.max_phases != 0
                                      ? options.max_phases
                                      : default_iteration_cap(ctx.n());
  const std::uint32_t id_bits = static_cast<std::uint32_t>(
      std::bit_width(std::max<std::uint64_t>(ctx.n(), 2) - 1));
  // The composite rank (random bits above the id) lives in one 64-bit
  // word, so cap the random part at 64 - id_bits: past n = 65536 the
  // uncapped 3 log2 n + id_bits would exceed 64 and the auction's bit
  // shifts would be undefined.
  const std::uint32_t random_bits =
      std::min(rank_bits_for(ctx.n()), 64 - id_bits);
  const std::uint32_t total_bits = random_bits + id_bits;

  for (std::uint64_t phase = 0; phase < phase_cap; ++phase) {
    const bool candidate = ctx.rng().bernoulli(options.candidate_prob);
    // Composite rank: random bits then id, so adjacent candidates can
    // never tie and the independence argument needs no whp caveat.
    const std::uint64_t rank =
        candidate ? (ctx.rng().below(std::uint64_t{1} << random_bits)
                     << id_bits) |
                        ctx.id()
                  : 0;

    // Bit auction, most significant bit first.
    bool contending = candidate;
    for (std::uint32_t slot = 0; slot < total_bits; ++slot) {
      const std::uint32_t bit_index = total_bits - 1 - slot;
      const bool my_bit = contending && ((rank >> bit_index) & 1) != 0;
      if (my_bit) {
        // A beeping node cannot listen: discard the slot's inbox.
        (void)co_await ctx.broadcast(sim::Message::beep());
      } else {
        sim::Inbox inbox = co_await ctx.listen();
        if (contending && heard_beep(inbox)) contending = false;
      }
    }

    // Join slot: survivors announce and exit; listeners that hear a
    // join beep are dominated.
    if (contending) {
      (void)co_await ctx.broadcast(sim::Message::beep());
      ctx.decide(1);
      co_return;
    }
    sim::Inbox join = co_await ctx.listen();
    if (heard_beep(join)) {
      ctx.decide(0);
      co_return;
    }
  }
}

}  // namespace

sim::Protocol beeping_mis(BeepingMisOptions options) {
  return [options](sim::Context& ctx) { return beeping_node(ctx, options); };
}

}  // namespace slumber::algos
