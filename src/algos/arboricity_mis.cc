#include "algos/arboricity_mis.h"

#include <cmath>

#include "algos/common.h"

namespace slumber::algos {
namespace {

/// Number of synchronized peeling phases that guarantees everyone
/// peels: remaining <= n * (2a/t)^p, so p = log(n) / log(t / 2a).
std::uint64_t peeling_phases(std::uint64_t n, double arboricity,
                             double threshold) {
  if (n <= 1) return 1;
  const double shrink = threshold / (2.0 * arboricity);
  const double safe_shrink = shrink > 1.01 ? shrink : 1.01;
  return 2 + static_cast<std::uint64_t>(std::ceil(
                 std::log(static_cast<double>(n)) / std::log(safe_shrink)));
}

sim::Task arboricity_node(sim::Context& ctx, ArboricityMisOptions options) {
  const double threshold =
      options.threshold_factor * static_cast<double>(options.arboricity_bound);
  const std::uint64_t phases =
      peeling_phases(ctx.n(), options.arboricity_bound, threshold);

  // --- Phase 1: H-partition by synchronized peeling. All nodes run the
  // same number of rounds so phase 2 starts in lockstep; peeled nodes
  // idle-listen (this is the log n term of the node average).
  std::uint64_t partition = phases;  // fallback if the bound was too low
  bool peeled = false;
  for (std::uint64_t phase = 0; phase < phases; ++phase) {
    sim::Inbox inbox;
    if (!peeled) {
      inbox = co_await ctx.broadcast(sim::Message::hello());
    } else {
      inbox = co_await ctx.listen();
    }
    if (!peeled) {
      std::uint64_t residual_degree = 0;
      for (const sim::Received& r : inbox) {
        if (r.msg.kind == sim::MsgKind::kHello) ++residual_degree;
      }
      if (static_cast<double>(residual_degree) <= threshold) {
        peeled = true;
        partition = phase;
      }
    }
  }

  // --- Phase 2: greedy MIS by ascending (partition, id) priority.
  const std::uint64_t cap = options.max_iterations != 0
                                ? options.max_iterations
                                : 8 + 4 * ctx.n();
  for (std::uint64_t iteration = 0; iteration < cap; ++iteration) {
    sim::Message announce = sim::Message::mark();
    announce.payload_a = partition;  // O(log log n)-bit payload
    announce.bits = 24;
    sim::Inbox inbox = co_await ctx.broadcast(announce);
    bool first = true;
    for (const sim::Received& r : inbox) {
      if (r.msg.kind != sim::MsgKind::kMark) continue;
      const bool they_precede =
          r.msg.payload_a != partition ? r.msg.payload_a < partition
                                       : r.from < ctx.id();
      if (they_precede) {
        first = false;
        break;
      }
    }
    if (first) {
      co_await ctx.broadcast(sim::Message::in_mis());
      ctx.decide(1);
      co_return;
    }
    sim::Inbox announcements = co_await ctx.listen();
    for (const sim::Received& r : announcements) {
      if (r.msg.kind == sim::MsgKind::kInMis) {
        ctx.decide(0);
        co_return;
      }
    }
  }
}

}  // namespace

sim::Protocol arboricity_mis(ArboricityMisOptions options) {
  if (options.arboricity_bound < 1) {
    throw std::invalid_argument("arboricity_mis: bound must be >= 1");
  }
  return [options](sim::Context& ctx) {
    return arboricity_node(ctx, options);
  };
}

}  // namespace slumber::algos
