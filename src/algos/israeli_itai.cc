#include "algos/israeli_itai.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "algos/common.h"

namespace slumber::algos {
namespace {

// Message payloads (kind kCustom, 10 bits: tag + 2-bit discriminator).
constexpr std::uint64_t kPropose = 0;
constexpr std::uint64_t kAccept = 1;
constexpr std::uint64_t kMatched = 2;

sim::Message ii_message(std::uint64_t what) {
  return {sim::MsgKind::kCustom, what, 0, 10};
}

sim::Task israeli_itai_node(sim::Context& ctx, IsraeliItaiOptions options) {
  const std::uint64_t cap = options.max_iterations != 0
                                ? options.max_iterations
                                : default_iteration_cap(ctx.n());
  // Ports whose neighbor is still unmatched (and hence matchable).
  std::vector<std::uint8_t> active(ctx.degree(), 1);
  std::uint32_t active_count = ctx.degree();

  for (std::uint64_t iteration = 0; iteration < cap; ++iteration) {
    if (active_count == 0) {
      ctx.decide(-1);  // no matchable neighbor remains: maximality is safe
      co_return;
    }
    // Role coin: proposer (heads) or acceptor (tails), Israeli-Itai'86.
    const bool proposer = ctx.rng().coin();

    // Round 1: proposers send to one uniformly random active port.
    std::uint32_t proposed_port = 0;
    sim::Inbox proposals;
    if (proposer) {
      std::uint64_t pick = ctx.rng().below(active_count);
      for (std::uint32_t p = 0; p < ctx.degree(); ++p) {
        if (!active[p]) continue;
        if (pick == 0) {
          proposed_port = p;
          break;
        }
        --pick;
      }
      std::vector<std::pair<std::uint32_t, sim::Message>> out;
      out.emplace_back(proposed_port, ii_message(kPropose));
      (void)co_await ctx.exchange(std::move(out));
    } else {
      proposals = co_await ctx.listen();
    }

    // Round 2: acceptors answer the lowest-port proposal; proposers
    // listen for an acceptance from their proposed port.
    std::int64_t partner = -1;
    if (proposer) {
      sim::Inbox answers = co_await ctx.listen();
      for (const sim::Received& r : answers) {
        if (r.msg.kind == sim::MsgKind::kCustom &&
            r.msg.payload_a == kAccept && r.port == proposed_port) {
          partner = static_cast<std::int64_t>(r.from);
        }
      }
    } else {
      std::uint32_t best_port = 0;
      VertexId best_from = kInvalidVertex;
      bool any = false;
      for (const sim::Received& r : proposals) {
        if (r.msg.kind != sim::MsgKind::kCustom ||
            r.msg.payload_a != kPropose) {
          continue;
        }
        if (!any || r.port < best_port) {
          any = true;
          best_port = r.port;
          best_from = r.from;
        }
      }
      if (any) {
        std::vector<std::pair<std::uint32_t, sim::Message>> out;
        out.emplace_back(best_port, ii_message(kAccept));
        (void)co_await ctx.exchange(std::move(out));
        partner = static_cast<std::int64_t>(best_from);
      } else {
        (void)co_await ctx.listen();
      }
    }

    // Round 3: matched nodes announce and terminate; the rest strike
    // announced neighbors from their active sets.
    if (partner >= 0) {
      (void)co_await ctx.broadcast(ii_message(kMatched));
      ctx.decide(partner);
      co_return;
    }
    sim::Inbox announcements = co_await ctx.listen();
    for (const sim::Received& r : announcements) {
      if (r.msg.kind == sim::MsgKind::kCustom &&
          r.msg.payload_a == kMatched && active[r.port]) {
        active[r.port] = 0;
        --active_count;
      }
    }
  }
}

}  // namespace

sim::Protocol israeli_itai_matching(IsraeliItaiOptions options) {
  return [options](sim::Context& ctx) {
    return israeli_itai_node(ctx, options);
  };
}

std::optional<std::vector<EdgeId>> matching_from_outputs(
    const Graph& g, const std::vector<std::int64_t>& outputs) {
  std::vector<EdgeId> matched;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::int64_t out = outputs[v];
    if (out < 0) continue;
    const auto u = static_cast<VertexId>(out);
    if (u >= g.num_vertices()) return std::nullopt;
    if (outputs[u] != static_cast<std::int64_t>(v)) return std::nullopt;
    if (!g.has_edge(v, u)) return std::nullopt;
    if (v < u) {  // record each matched edge once
      const Edge e{v, u};
      const auto& edges = g.edges();
      const auto it = std::lower_bound(edges.begin(), edges.end(), e);
      if (it == edges.end() || *it != e) return std::nullopt;
      matched.push_back(static_cast<EdgeId>(it - edges.begin()));
    }
  }
  return matched;
}

}  // namespace slumber::algos
