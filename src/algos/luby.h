// Luby's randomized MIS algorithms (the paper's Table-1 baselines).
//
// Both run in the traditional model: a node is awake every round until
// its status is decided, at which point it announces and terminates
// (the Barenboim-Tzur termination convention the paper adopts, Section
// 1.5). Expected O(log n) rounds; the paper's point is that their
// node-AVERAGED complexity is also Theta(log n), unlike SleepingMIS.
//
//   Luby-A ("permutation" variant, Luby'86 / Alon-Babai-Itai'86): every
//   iteration each active node draws a fresh random priority; strict
//   local maxima (ties broken by id) join the MIS.
//
//   Luby-B ("marking" variant): each active node marks itself with
//   probability 1/(2d), where d is its current active degree; a marked
//   node unmarks if a marked neighbor has (degree, id) priority over it;
//   surviving marked nodes join.
#pragma once

#include "sim/network.h"

namespace slumber::algos {

struct LubyOptions {
  /// Safety cap on iterations (0 = 64 + 8*log2 n).
  std::uint64_t max_iterations = 0;
};

/// Luby-A: fresh random priorities each iteration; 2 rounds/iteration.
sim::Protocol luby_a(LubyOptions options = {});

/// Luby-B: degree-based marking; 3 rounds/iteration.
sim::Protocol luby_b(LubyOptions options = {});

}  // namespace slumber::algos
