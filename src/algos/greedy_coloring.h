// Distributed randomized greedy (lexicographically-first) coloring.
//
// The coloring analogue of the CRT greedy MIS (paper Section 4.4's base
// case): every node draws one random rank up front; a node colors
// itself with the smallest color unused by its already-colored
// neighbors as soon as every higher-(rank, id) neighbor has committed.
// This simulates the sequential greedy coloring along the random order
// -- O(log n) rounds w.h.p. by the dependency-chain argument of
// Fischer-Noever (the longest decreasing rank path is O(log n)) -- and
// always reproduces the sequential result, the same
// lexicographically-first property behind the paper's Corollary 1.
//
// It complements Luby's coloring (algos/luby_coloring.h): Luby re-draws
// tentative colors each iteration and finishes a constant fraction of
// nodes per round (the O(1) node-averaged contrast of Section 1.5);
// greedy coloring commits each node exactly once and uses at most
// degeneracy-adaptive colors along the random order. bench E10 compares
// both.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/network.h"

namespace slumber::algos {

struct GreedyColoringOptions {
  /// Safety cap on rounds (0 = 64 + 8*log2 n iterations of 2 rounds).
  std::uint64_t max_iterations = 0;
  /// If non-null (size n), collects each node's drawn rank.
  std::vector<std::uint64_t>* ranks_out = nullptr;
};

/// Output: the node's color in [0, deg(v) + 1).
sim::Protocol greedy_coloring(GreedyColoringOptions options = {});

/// Reference: sequential greedy coloring along `order` (first node in
/// `order` is colored first). Used to verify the lex-first property.
std::vector<std::int64_t> sequential_greedy_coloring(
    const Graph& g, const std::vector<VertexId>& order);

}  // namespace slumber::algos
