// The parallel/distributed randomized greedy MIS algorithm
// (Coppersmith-Raghavan-Tompa'89, Blelloch-Fineman-Shun'12,
// Fischer-Noever'18) -- the "CRT" baseline of the paper's Table 1 and
// the base-case subroutine of Algorithm 2.
//
// A single random rank per node is drawn once. Each 2-round iteration,
// every active node whose (rank, id) beats all active neighbors joins
// the MIS and announces; receivers of an announcement are eliminated.
// Runs until decided (O(log n) iterations w.h.p., Fischer-Noever).
// Always outputs the lexicographically-first MIS w.r.t. decreasing
// (rank, id) -- the property behind the paper's Corollary 1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/network.h"

namespace slumber::algos {

struct GreedyOptions {
  /// Safety cap on iterations (0 = 64 + 8*log2 n).
  std::uint64_t max_iterations = 0;
  /// If non-null (size n), collects each node's drawn rank.
  std::vector<std::uint64_t>* ranks_out = nullptr;
};

/// Distributed randomized greedy MIS protocol.
sim::Protocol distributed_greedy_mis(GreedyOptions options = {});

/// Sequential reference: greedy MIS processing vertices by decreasing
/// (rank, id). Equals the distributed output on the same ranks.
std::vector<std::uint8_t> sequential_greedy_mis(
    const Graph& g, const std::vector<std::uint64_t>& ranks);

}  // namespace slumber::algos
