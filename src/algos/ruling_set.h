// (alpha, beta)-ruling sets via MIS on graph powers.
//
// An (alpha, beta)-ruling set of G is a set S such that any two members
// are at distance >= alpha and every vertex is within distance beta of
// S. An MIS is exactly a (2,1)-ruling set; the paper cites Pai et al.
// (DISC'17) for CONGEST ruling-set algorithms as the relaxation of MIS
// that trades domination radius for speed.
//
// This module uses the classical reduction: an MIS of the k-th power
// G^k is a (k+1, k)-ruling set of G -- members are at G-distance > k
// pairwise (independence in G^k) and every vertex has an S-member
// within distance k (maximality in G^k). Any MIS engine in the library
// can drive it, including SleepingMIS, giving sleeping-model ruling
// sets with O(1) node-averaged awake complexity on the power graph.
//
// Communication accounting: one CONGEST round on G^k costs up to k
// rounds on G (k-hop relay), so round metrics measured on the power
// graph understate G-rounds by at most a factor k; awake-round ratios
// between engines are unaffected. The benches report k alongside.
#pragma once

#include <cstdint>
#include <vector>

#include "algos/matching.h"  // MisEngine
#include "graph/graph.h"
#include "sim/network.h"

namespace slumber::algos {

struct RulingSetResult {
  /// The ruling set S (vertex ids of g).
  std::vector<VertexId> rulers;
  /// Metrics of the MIS run on G^k.
  sim::Metrics power_graph_metrics;
};

/// Computes a (k+1, k)-ruling set of g by running `engine` on G^k.
/// Requires k >= 1; k == 1 degenerates to plain MIS.
RulingSetResult ruling_set_via_mis(const Graph& g, std::uint32_t k,
                                   std::uint64_t seed, MisEngine engine);

/// Detailed ruling-set check result.
struct RulingSetCheck {
  bool independent = false;  // pairwise distance >= alpha
  bool dominating = false;   // every vertex within distance beta of S
  bool ok() const { return independent && dominating; }
};

/// Verifies that `rulers` is an (alpha, beta)-ruling set of g.
RulingSetCheck check_ruling_set(const Graph& g,
                                const std::vector<VertexId>& rulers,
                                std::uint32_t alpha, std::uint32_t beta);

}  // namespace slumber::algos
