#include "algos/luby_coloring.h"

#include <vector>

#include "algos/common.h"

namespace slumber::algos {
namespace {

sim::Task coloring_node(sim::Context& ctx, ColoringOptions options) {
  const std::uint64_t cap = options.max_iterations != 0
                                ? options.max_iterations
                                : default_iteration_cap(ctx.n());
  const std::uint32_t color_bits = rank_bits_for(ctx.n());
  // Palette {0, ..., deg(v)}: always non-empty by a counting argument
  // because each neighbor removes at most one color.
  std::vector<std::uint8_t> removed(ctx.degree() + 1, 0);
  std::uint64_t palette_size = ctx.degree() + 1;

  for (std::uint64_t iteration = 0; iteration < cap; ++iteration) {
    // Draw a tentative color uniformly from the remaining palette.
    std::uint64_t pick = ctx.rng().below(palette_size);
    std::uint64_t tentative = 0;
    for (std::uint64_t c = 0; c <= ctx.degree(); ++c) {
      if (removed[c]) continue;
      if (pick == 0) {
        tentative = c;
        break;
      }
      --pick;
    }

    // Round 1: exchange tentative colors.
    sim::Inbox inbox =
        co_await ctx.broadcast(sim::Message::color(tentative, color_bits));
    bool keep = true;
    for (const sim::Received& r : inbox) {
      if (r.msg.kind == sim::MsgKind::kColor && r.msg.payload_a == tentative &&
          r.msg.payload_b == 0) {
        keep = false;
        break;
      }
    }

    // Round 2: finished nodes announce final colors and terminate.
    if (keep) {
      sim::Message final_msg = sim::Message::color(tentative, color_bits);
      final_msg.payload_b = 1;  // "final" flag
      co_await ctx.broadcast(final_msg);
      ctx.decide(static_cast<std::int64_t>(tentative));
      co_return;
    }
    sim::Inbox finals = co_await ctx.listen();
    for (const sim::Received& r : finals) {
      if (r.msg.kind == sim::MsgKind::kColor && r.msg.payload_b == 1 &&
          r.msg.payload_a <= ctx.degree() && !removed[r.msg.payload_a]) {
        removed[r.msg.payload_a] = 1;
        --palette_size;
      }
    }
  }
}

}  // namespace

sim::Protocol luby_coloring(ColoringOptions options) {
  return [options](sim::Context& ctx) { return coloring_node(ctx, options); };
}

}  // namespace slumber::algos
