#include "algos/ghaffari.h"

#include <algorithm>

#include "algos/common.h"

#include <cmath>

namespace slumber::algos {
namespace {

sim::Task ghaffari_node(sim::Context& ctx, GhaffariOptions options) {
  const std::uint64_t cap = options.max_iterations != 0
                                ? options.max_iterations
                                : default_iteration_cap(ctx.n());
  // Desire level p = 2^-exponent; starts at 1/2 and stays a power of 2,
  // so the exponent alone travels over the wire (CONGEST-tight).
  std::uint64_t exponent = 1;
  for (std::uint64_t iteration = 0; iteration < cap; ++iteration) {
    // Round 1: exchange desire levels; d_v = sum over active neighbors.
    sim::Inbox inbox = co_await ctx.broadcast(sim::Message::prob(exponent));
    double effective_degree = 0.0;
    for (const sim::Received& r : inbox) {
      if (r.msg.kind == sim::MsgKind::kProb) {
        effective_degree +=
            std::ldexp(1.0, -static_cast<int>(r.msg.payload_a));
      }
    }

    // Round 2: marked nodes reveal themselves.
    const double p = std::ldexp(1.0, -static_cast<int>(exponent));
    const bool marked = ctx.rng().bernoulli(p);
    sim::Inbox marks;
    if (marked) {
      marks = co_await ctx.broadcast(sim::Message::mark());
    } else {
      marks = co_await ctx.listen();
    }
    bool win = marked;
    if (marked) {
      for (const sim::Received& r : marks) {
        if (r.msg.kind == sim::MsgKind::kMark) {
          win = false;
          break;
        }
      }
    }

    // Round 3: winners join, announce, terminate; dominated nodes exit.
    if (win) {
      co_await ctx.broadcast(sim::Message::in_mis());
      ctx.decide(1);
      co_return;
    }
    sim::Inbox announcements = co_await ctx.listen();
    for (const sim::Received& r : announcements) {
      if (r.msg.kind == sim::MsgKind::kInMis) {
        ctx.decide(0);
        co_return;
      }
    }

    // Desire-level update (Ghaffari'16): halve when crowded, double
    // (capped at 1/2) otherwise.
    if (effective_degree >= 2.0) {
      ++exponent;
    } else if (exponent > 1) {
      --exponent;
    }
  }
}

}  // namespace

sim::Protocol ghaffari_mis(GhaffariOptions options) {
  return [options](sim::Context& ctx) { return ghaffari_node(ctx, options); };
}

}  // namespace slumber::algos
