// Arboricity-aware MIS in the spirit of Barenboim-Tzur (ICDCN'19), the
// paper's closest node-averaged related work (Section 1.5): their
// deterministic algorithm achieves O(a + log* n) node-averaged
// complexity, where a is the arboricity.
//
// This is a simplified, honest variant with the same structure:
//   Phase 1 (H-partition, Nash-Williams peeling): repeatedly, nodes
//   whose residual degree is <= (2 + eps) * a peel off and take the
//   current phase index as their partition number. Each peeling round
//   removes >= eps/(2+eps) of the remaining nodes (a counting argument
//   on 2|E| <= 2 a n), so O(log n) phases suffice deterministically.
//   Phase 2 (priority greedy): MIS by ascending (partition, id): a node
//   joins when it precedes every *active* neighbor; by construction a
//   node has <= (2+eps) a neighbors in its own or earlier partitions,
//   which bounds how long low-partition nodes wait.
//
// The node-averaged complexity is O(a + log n) here (our peeling keeps
// everyone awake; BT's extra machinery shaves log n to log* n), and the
// phase-2 priority order can form long dependency chains on unlucky
// id assignments (a cycle with sequential ids sweeps one frontier).
// The point reproduced by bench_arboricity: the traditional-model node
// average is never O(1) and varies wildly with topology, while the
// sleeping algorithms stay flat -- the paper's Section 1.5 comparison.
//
// Like Barenboim-Tzur, nodes receive (an upper bound on) the arboricity
// as global knowledge; callers can pass the degeneracy
// (a <= degeneracy <= 2a - 1, see graph/properties.h).
#pragma once

#include "sim/network.h"

namespace slumber::algos {

struct ArboricityMisOptions {
  /// Upper bound on the arboricity handed to every node (global
  /// knowledge, as in Barenboim-Tzur). Required: must be >= 1.
  std::uint32_t arboricity_bound = 1;
  /// Peeling threshold factor (2 + eps); the classical choice is ~3.
  double threshold_factor = 3.0;
  /// Safety cap on phase-2 iterations (0 = 8 + 4n).
  std::uint64_t max_iterations = 0;
};

sim::Protocol arboricity_mis(ArboricityMisOptions options);

}  // namespace slumber::algos
