// (2*Delta - 1)-edge-coloring via vertex coloring of the line graph.
//
// Barenboim-Tzur (the paper's closest related work, Section 1.5) study
// MIS, maximal matching and (2*Delta-1)-edge-coloring as one family
// under node-averaged complexity. This module closes that family for
// slumber: an edge of G is a vertex of L(G) with degree at most
// 2*Delta(G) - 2, so Luby's (deg+1)-coloring of L(G) uses colors in
// [0, 2*Delta - 1) -- a proper (2*Delta-1)-edge-coloring of G.
//
// A proper edge coloring is a TDMA schedule: edges of one color can
// transmit in the same slot without their endpoints' radios clashing
// (see examples/tdma_scheduling.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/network.h"

namespace slumber::algos {

struct EdgeColoringResult {
  /// color[e] for each edge id of g, in [0, 2*Delta(g) - 1).
  std::vector<std::int64_t> colors;
  /// Number of distinct colors used.
  std::uint64_t colors_used = 0;
  /// Metrics of the coloring run on the line graph.
  sim::Metrics line_graph_metrics;
};

/// Runs Luby (deg+1)-coloring on L(g) and maps colors back to edges.
EdgeColoringResult edge_coloring_via_line_graph(const Graph& g,
                                                std::uint64_t seed);

/// True iff `colors` is a proper edge coloring of g (adjacent edges get
/// distinct colors, every edge colored) using at most
/// max(2*Delta - 1, 1) colors.
bool check_edge_coloring(const Graph& g,
                         const std::vector<std::int64_t>& colors);

}  // namespace slumber::algos
