// Luby's randomized (Delta+1)-coloring.
//
// The paper (Sections 1.5, 2) contrasts MIS with coloring: Luby's
// coloring finishes a constant fraction of nodes per iteration, so its
// node-averaged round complexity is O(1) *even in the traditional
// model*, while no such bound is known for MIS. Bench E10 reproduces
// that contrast.
//
// Per iteration (2 rounds): each active node draws a tentative color
// uniformly from its remaining palette (of initial size deg(v)+1);
// round 1 exchanges tentative colors -- a node keeps its color if no
// active neighbor picked the same one; round 2 lets finished nodes
// announce their final color (neighbors strike it from their palettes)
// and terminate.
#pragma once

#include "sim/network.h"

namespace slumber::algos {

struct ColoringOptions {
  /// Safety cap on iterations (0 = 64 + 8*log2 n).
  std::uint64_t max_iterations = 0;
};

/// Output: the node's color in [0, deg(v)+1).
sim::Protocol luby_coloring(ColoringOptions options = {});

}  // namespace slumber::algos
