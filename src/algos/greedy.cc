#include "algos/greedy.h"

#include <algorithm>
#include <numeric>

#include "algos/common.h"

namespace slumber::algos {
namespace {

sim::Task greedy_node(sim::Context& ctx, GreedyOptions options) {
  const std::uint32_t rank_bits = rank_bits_for(ctx.n());
  const std::uint64_t rank = ctx.rng().next() >> (64 - rank_bits);
  if (options.ranks_out != nullptr) {
    if (options.ranks_out->size() != ctx.n()) options.ranks_out->resize(ctx.n());
    (*options.ranks_out)[ctx.id()] = rank;
  }
  const std::uint64_t cap = options.max_iterations != 0
                                ? options.max_iterations
                                : default_iteration_cap(ctx.n());
  for (std::uint64_t iteration = 0; iteration < cap; ++iteration) {
    sim::Inbox inbox =
        co_await ctx.broadcast(sim::Message::rank(rank, rank_bits));
    bool win = true;
    for (const sim::Received& r : inbox) {
      if (r.msg.kind == sim::MsgKind::kRank &&
          priority_beats(r.msg.payload_a, r.from, rank, ctx.id())) {
        win = false;
        break;
      }
    }
    if (win) {
      co_await ctx.broadcast(sim::Message::in_mis());
      ctx.decide(1);
      co_return;
    }
    sim::Inbox announcements = co_await ctx.listen();
    for (const sim::Received& r : announcements) {
      if (r.msg.kind == sim::MsgKind::kInMis) {
        ctx.decide(0);
        co_return;
      }
    }
  }
}

}  // namespace

sim::Protocol distributed_greedy_mis(GreedyOptions options) {
  return [options](sim::Context& ctx) { return greedy_node(ctx, options); };
}

std::vector<std::uint8_t> sequential_greedy_mis(
    const Graph& g, const std::vector<std::uint64_t>& ranks) {
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return priority_beats(ranks[a], a, ranks[b], b);
  });
  std::vector<std::uint8_t> in_mis(g.num_vertices(), 0);
  std::vector<std::uint8_t> blocked(g.num_vertices(), 0);
  for (VertexId v : order) {
    if (blocked[v]) continue;
    in_mis[v] = 1;
    for (VertexId u : g.neighbors(v)) blocked[u] = 1;
  }
  return in_mis;
}

}  // namespace slumber::algos
