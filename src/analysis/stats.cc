#include "analysis/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace slumber::analysis {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = percentile(sorted, 50.0);
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double ss = 0.0;
    for (double v : sorted) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
    s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
  }
  return s;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit power_fit(std::span<const double> x, std::span<const double> y) {
  std::vector<double> lx;
  std::vector<double> ly;
  for (std::size_t i = 0; i < std::min(x.size(), y.size()); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log2(x[i]));
      ly.push_back(std::log2(y[i]));
    }
  }
  return linear_fit(lx, ly);
}

LinearFit log_fit(std::span<const double> x, std::span<const double> y) {
  std::vector<double> lx;
  std::vector<double> yy;
  for (std::size_t i = 0; i < std::min(x.size(), y.size()); ++i) {
    if (x[i] > 0.0) {
      lx.push_back(std::log2(x[i]));
      yy.push_back(y[i]);
    }
  }
  return linear_fit(lx, yy);
}

double percentile(std::span<const double> values, double pct) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string mean_ci_string(const Summary& s, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << s.mean << " +- " << s.ci95;
  return out.str();
}

}  // namespace slumber::analysis
