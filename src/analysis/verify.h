// Solution verifiers. Every test and every bench run self-checks its
// output through these; the algorithms are Monte Carlo (paper Theorem
// 1/2: correct w.h.p.), so violations must fail loudly, not skew data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace slumber::analysis {

/// Detailed MIS check result.
struct MisCheck {
  bool is_independent = false;
  bool is_maximal = false;
  bool all_decided = false;  // every node output 0 or 1
  bool ok() const { return is_independent && is_maximal && all_decided; }
  std::string describe() const;
};

/// Checks protocol outputs (1 = in MIS, 0 = out, anything else =
/// undecided) against g.
MisCheck check_mis(const Graph& g, const std::vector<std::int64_t>& outputs);

/// Checks a 0/1 indicator vector.
MisCheck check_mis_indicator(const Graph& g,
                             const std::vector<std::uint8_t>& in_mis);

/// True iff `colors` is a proper coloring with colors[v] in
/// [0, deg(v)+1) (the Luby (Delta+1)-coloring contract).
bool check_coloring(const Graph& g, const std::vector<std::int64_t>& colors);

/// Vertices with output == 1.
std::vector<VertexId> mis_vertices(const std::vector<std::int64_t>& outputs);

}  // namespace slumber::analysis
