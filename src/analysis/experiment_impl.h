// Template implementation detail of analysis/experiment.h.
#pragma once

#include "analysis/experiment.h"
#include "analysis/stats.h"

namespace slumber::analysis {

template <typename GraphFactory>
AggregateRun aggregate_mis(MisEngine engine, const GraphFactory& make_graph,
                           std::uint64_t base_seed, std::uint32_t num_seeds) {
  AggregateRun agg;
  std::vector<double> avg_awake;
  std::vector<double> worst_awake;
  std::vector<double> avg_rounds;
  std::vector<double> worst_rounds;
  std::vector<double> messages;
  for (std::uint32_t i = 0; i < num_seeds; ++i) {
    const std::uint64_t seed = base_seed + i;
    const Graph g = make_graph(seed);
    const MisRun run = run_mis(engine, g, seed);
    ++agg.runs;
    if (!run.valid) {
      ++agg.invalid_runs;
      continue;
    }
    avg_awake.push_back(run.node_avg_awake);
    worst_awake.push_back(static_cast<double>(run.worst_awake));
    avg_rounds.push_back(run.node_avg_rounds);
    worst_rounds.push_back(static_cast<double>(run.worst_rounds));
    messages.push_back(static_cast<double>(run.total_messages));
  }
  const Summary s_avg_awake = summarize(avg_awake);
  agg.node_avg_awake_mean = s_avg_awake.mean;
  agg.node_avg_awake_ci95 = s_avg_awake.ci95;
  agg.worst_awake_mean = summarize(worst_awake).mean;
  agg.node_avg_rounds_mean = summarize(avg_rounds).mean;
  agg.worst_rounds_mean = summarize(worst_rounds).mean;
  agg.messages_mean = summarize(messages).mean;
  return agg;
}

}  // namespace slumber::analysis
