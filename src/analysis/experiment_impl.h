// Template implementation detail of analysis/experiment.h.
#pragma once

#include "analysis/experiment.h"
#include "analysis/parallel.h"

namespace slumber::analysis {

template <typename GraphFactory>
std::vector<MisRun> run_trials(MisEngine engine, const GraphFactory& make_graph,
                               std::uint64_t base_seed, std::uint32_t num_seeds,
                               unsigned num_threads, ExecEngine exec) {
  return parallel_trials(num_seeds, num_threads, [&](std::size_t i) {
    const std::uint64_t seed =
        trial_seed(base_seed, static_cast<std::uint32_t>(i));
    const Graph g = make_graph(seed);
    return run_mis(engine, g, seed, nullptr, exec);
  });
}

template <typename GraphFactory>
AggregateRun aggregate_mis(MisEngine engine, const GraphFactory& make_graph,
                           std::uint64_t base_seed, std::uint32_t num_seeds,
                           unsigned num_threads, ExecEngine exec) {
  return aggregate_runs(
      run_trials(engine, make_graph, base_seed, num_seeds, num_threads, exec));
}

}  // namespace slumber::analysis
