// Template implementation detail of analysis/experiment.h.
#pragma once

#include "analysis/experiment.h"
#include "analysis/parallel.h"

namespace slumber::analysis {

template <typename GraphFactory>
std::vector<MisRun> run_trials(MisEngine engine, const GraphFactory& make_graph,
                               std::uint64_t base_seed, std::uint32_t num_seeds,
                               const RunOptions& opts) {
  RunOptions trial_opts = opts;
  trial_opts.trace = nullptr;  // one trace cannot take concurrent trials
  // With concurrent trials the lanes are already spent on trial-level
  // sharding; a nested same-pool scan would only run inline. Serial
  // trials (num_threads == 1) forward the pool so one huge trial can
  // still shard its per-round scans.
  if (opts.num_threads != 1) trial_opts.pool = nullptr;
  return parallel_trials(num_seeds, opts.num_threads, [&](std::size_t i) {
    const std::uint64_t seed =
        trial_seed(base_seed, static_cast<std::uint32_t>(i));
    const Graph g = make_graph(seed);
    return run_mis(engine, g, seed, trial_opts);
  });
}

template <typename GraphFactory>
AggregateRun aggregate_mis(MisEngine engine, const GraphFactory& make_graph,
                           std::uint64_t base_seed, std::uint32_t num_seeds,
                           const RunOptions& opts) {
  return aggregate_runs(
      run_trials(engine, make_graph, base_seed, num_seeds, opts));
}

}  // namespace slumber::analysis
