#include "analysis/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "analysis/table.h"

namespace slumber::analysis {

Histogram::Histogram(double lo, double bin_width, std::size_t num_bins)
    : lo_(lo), width_(bin_width), counts_(num_bins, 0) {
  if (bin_width <= 0.0 || num_bins == 0) {
    throw std::invalid_argument("Histogram: need positive width and bins");
  }
}

void Histogram::add(double value) {
  const double offset = (value - lo_) / width_;
  std::size_t bin = 0;
  if (offset > 0.0) {
    bin = std::min(static_cast<std::size_t>(offset), counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (const double v : values) add(v);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * width_;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double Histogram::tail_at_least(double x) const {
  if (total_ == 0) return 0.0;
  std::uint64_t mass = 0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    if (bin_lo(bin) >= x) mass += counts_[bin];
  }
  return static_cast<double>(mass) / static_cast<double>(total_);
}

std::string Histogram::render(const std::string& value_label,
                              double min_fraction) const {
  Table table({value_label, "fraction", "bar"});
  double max_fraction = 0.0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    max_fraction = std::max(max_fraction, fraction(bin));
  }
  const double bar_unit = max_fraction > 0.0 ? 52.0 / max_fraction : 0.0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    const double f = fraction(bin);
    if (f < min_fraction) continue;
    const auto bar_len = static_cast<std::size_t>(std::round(f * bar_unit));
    table.add_row({Table::num(bin_lo(bin), width_ >= 1.0 ? 0 : 2),
                   Table::num(f, 4), std::string(bar_len, '#')});
  }
  return table.render();
}

}  // namespace slumber::analysis
