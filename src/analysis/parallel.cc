#include "analysis/parallel.h"

#include <atomic>
#include <cstdlib>

namespace slumber::analysis {

namespace {
std::atomic<unsigned> g_thread_override{0};
}  // namespace

void set_default_trial_threads(unsigned num_threads) {
  g_thread_override.store(num_threads, std::memory_order_relaxed);
}

unsigned default_trial_threads() {
  const unsigned override = g_thread_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe at
  // startup, before any pool threads exist; nothing mutates the env.
  if (const char* env = std::getenv("SLUMBER_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  return util::ThreadPool::hardware_threads();
}

}  // namespace slumber::analysis
