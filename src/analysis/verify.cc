#include "analysis/verify.h"

namespace slumber::analysis {

std::string MisCheck::describe() const {
  if (ok()) return "valid MIS";
  std::string s = "INVALID:";
  if (!all_decided) s += " undecided-nodes";
  if (!is_independent) s += " not-independent";
  if (!is_maximal) s += " not-maximal";
  return s;
}

MisCheck check_mis(const Graph& g, const std::vector<std::int64_t>& outputs) {
  MisCheck check;
  check.all_decided = true;
  std::vector<std::uint8_t> in_mis(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (outputs[v] != 0 && outputs[v] != 1) {
      check.all_decided = false;
    } else {
      in_mis[v] = static_cast<std::uint8_t>(outputs[v]);
    }
  }
  const MisCheck structural = check_mis_indicator(g, in_mis);
  check.is_independent = structural.is_independent;
  check.is_maximal = structural.is_maximal;
  return check;
}

MisCheck check_mis_indicator(const Graph& g,
                             const std::vector<std::uint8_t>& in_mis) {
  MisCheck check;
  check.all_decided = true;
  check.is_independent = true;
  check.is_maximal = true;
  // Iterate the CSR (u < v visits each edge once) instead of edges():
  // this keeps the verifier usable on memory-diet graphs that dropped
  // the edge list (Graph::from_csr).
  for (VertexId v = 0; v < g.num_vertices() && check.is_independent; ++v) {
    if (!in_mis[v]) continue;
    for (VertexId u : g.neighbors(v)) {
      if (u > v && in_mis[u]) {
        check.is_independent = false;
        break;
      }
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (in_mis[v]) continue;
    bool dominated = false;
    for (VertexId u : g.neighbors(v)) {
      if (in_mis[u]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      check.is_maximal = false;
      break;
    }
  }
  return check;
}

bool check_coloring(const Graph& g, const std::vector<std::int64_t>& colors) {
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (colors[v] < 0 || colors[v] > g.degree(v)) return false;
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      if (u > v && colors[u] == colors[v]) return false;
    }
  }
  return true;
}

std::vector<VertexId> mis_vertices(const std::vector<std::int64_t>& outputs) {
  std::vector<VertexId> vertices;
  for (VertexId v = 0; v < outputs.size(); ++v) {
    if (outputs[v] == 1) vertices.push_back(v);
  }
  return vertices;
}

}  // namespace slumber::analysis
