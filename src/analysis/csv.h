// Tiny CSV writer used by the bench harness so every table and figure
// series can also be dumped for external plotting (set SLUMBER_CSV_DIR
// to a directory before running a bench).
#pragma once

#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace slumber::analysis {

class CsvWriter {
 public:
  /// Opens `path` and writes the header row. Throws on I/O failure.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Appends a data row (must match header arity; throws otherwise).
  void add_row(const std::vector<std::string>& row);

  /// Convenience for numeric rows.
  void add_row(const std::vector<double>& row);

  std::size_t rows_written() const { return rows_; }

  /// Escapes a field per RFC 4180 (quotes fields containing , " or \n).
  static std::string escape(const std::string& field);

 private:
  void write_row(const std::vector<std::string>& row);

  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

/// If the SLUMBER_CSV_DIR environment variable is set, returns
/// "<dir>/<name>.csv"; otherwise nullopt (benches skip CSV emission).
std::optional<std::string> csv_path_from_env(const std::string& name);

}  // namespace slumber::analysis
