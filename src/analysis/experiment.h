// The shared experiment runner: one entry point that runs any MIS
// engine on any graph with a seed, verifies the output, and returns the
// paper's four complexity measures. All benches and integration tests
// go through this so results are comparable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "algos/matching.h"  // MisEngine
#include "core/instrumentation.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace slumber::util {
class ThreadPool;
}  // namespace slumber::util

namespace slumber::fault {
struct FaultPlan;
}  // namespace slumber::fault

namespace slumber::analysis {

using algos::MisEngine;

/// All MIS engines in Table-1 order: baselines first, then the paper's.
std::vector<MisEngine> all_engines();
std::string engine_name(MisEngine engine);
bool engine_uses_sleeping(MisEngine engine);

/// Parses "sleeping", "fast", "luby-a", "luby-b", "greedy", "ghaffari"
/// (case-sensitive, also accepts the display names); returns false on
/// unknown input.
bool engine_from_name(const std::string& name, MisEngine* out);

/// Which execution back end runs the protocol: the coroutine scheduler
/// (src/sim, supports every engine plus fault injection) or the bulk
/// flat-state engine (src/bulk, 10M+-node scale; Sleeping/Luby/greedy
/// only). Both produce bitwise-identical results where they overlap.
enum class ExecEngine { kCoroutine, kBulk };

std::string exec_engine_name(ExecEngine exec);

/// Parses "coroutine" / "bulk"; returns false on unknown input.
bool exec_engine_from_name(const std::string& name, ExecEngine* out);

/// True iff `engine` can run on the bulk execution engine.
bool engine_supports_bulk(MisEngine engine);

/// Everything that configures how an experiment executes, as one
/// designated-initializer-friendly bundle. This is the only way to
/// steer run_mis / run_trials / aggregate_mis — there are no positional
/// trailing parameters. Typical use:
///
///   run_mis(engine, g, seed, {.exec = ExecEngine::kBulk, .pool = &pool});
///   run_trials(engine, factory, seed, 20, {.num_threads = 8});
struct RunOptions {
  /// Execution back end for every trial.
  ExecEngine exec = ExecEngine::kCoroutine;
  /// Trial-level lanes for run_trials / aggregate_mis
  /// (0 = default_trial_threads()). Ignored by run_mis.
  unsigned num_threads = 0;
  /// Shards each bulk trial's per-round node scans over the pool's
  /// lanes (intra-trial parallelism; results are bitwise identical for
  /// every lane count). Ignored by the coroutine back end. run_trials
  /// forwards it to trials only when num_threads == 1 (serial trials);
  /// otherwise the lanes are spent on trial-level sharding.
  util::ThreadPool* pool = nullptr;
  /// When non-null and the engine is one of the sleeping algorithms,
  /// collects the recursion trace. run_trials ignores it (a shared
  /// trace cannot take concurrent trials).
  core::RecursionTrace* trace = nullptr;
  /// Failure injection (fault/fault.h): crash schedules, probabilistic
  /// crashes, message loss, churn. Borrowed; must outlive the run.
  /// Churn requires the bulk back end (run_mis throws otherwise); the
  /// other fault kinds work on both and inject bitwise-identical
  /// faults.
  const fault::FaultPlan* fault = nullptr;
  /// Bulk back end only: collect per-node metrics (awake rounds,
  /// finish rounds). Off saves 2 words/node at 10^8 scale.
  bool node_metrics = true;
  /// Bulk back end only: first-touch placement of hot per-node arrays.
  bool first_touch = false;
};

/// One run's results: the four measures of the paper's Table 1 plus
/// bookkeeping.
struct MisRun {
  MisEngine engine{};
  std::uint64_t seed = 0;
  bool valid = false;               // verifier outcome
  double node_avg_awake = 0.0;      // sleeping-model awake average
  std::uint64_t worst_awake = 0;    // max_v awake rounds
  double node_avg_rounds = 0.0;     // mean finish round (awake+sleep)
  std::uint64_t worst_rounds = 0;   // makespan
  std::uint64_t mis_size = 0;
  std::uint64_t total_messages = 0;
  sim::Metrics metrics;             // full per-node data
  std::vector<std::int64_t> outputs;
  /// Per-node liveness after the run: 0 = crashed or churned out.
  /// Empty when the run had no crash faults and no churn. When
  /// non-empty, `valid` means `outputs` restricted to alive nodes is a
  /// correct MIS of the alive-induced subgraph (under churn: checked
  /// after the final repair; under crashes alone the damage is left in
  /// place, so `valid` honestly reports whether the survivors' output
  /// still forms an MIS of their subgraph).
  std::vector<std::uint8_t> alive;
};

/// Runs `engine` on `g`; enforces the CONGEST budget; verifies the MIS.
/// Execution back end, thread pool, trace sink, fault plan, and metric
/// toggles all ride in `opts`. Throws std::invalid_argument when the
/// engine has no bulk implementation or when opts asks for churn on the
/// coroutine back end.
MisRun run_mis(MisEngine engine, const Graph& g, std::uint64_t seed,
               const RunOptions& opts = {});

/// Seed-averaged measures for one (engine, graph-generator) cell.
struct AggregateRun {
  double node_avg_awake_mean = 0.0;
  double node_avg_awake_ci95 = 0.0;
  double worst_awake_mean = 0.0;
  double node_avg_rounds_mean = 0.0;
  double worst_rounds_mean = 0.0;
  double messages_mean = 0.0;
  std::uint64_t invalid_runs = 0;
  std::uint64_t runs = 0;
};

/// The trial-seed schedule shared by every multi-seed runner: trial i of
/// a batch keyed by `base_seed` runs with splitmix64(base_seed + i), so
/// per-trial streams are scrambled across the 64-bit space and —
/// crucially for the parallel runner — a trial's seed is a pure function
/// of its index, never of execution order. Batches whose base seeds are
/// closer together than their trial count share trials; space base seeds
/// at least num_seeds apart.
inline std::uint64_t trial_seed(std::uint64_t base_seed, std::uint32_t trial) {
  std::uint64_t sm = base_seed + trial;
  return splitmix64(sm);
}

/// Runs `num_seeds` independent trials of `engine` on graphs produced by
/// `make_graph` (called with the trial seed), sharded across
/// `opts.num_threads` trial lanes (0 = default_trial_threads()). The
/// returned runs are ordered by trial index and bitwise identical for
/// every thread count, including the fully serial num_threads = 1.
/// When opts.num_threads == 1 the trials run serially and opts.pool is
/// forwarded to each trial for intra-trial sharding; with concurrent
/// trials the pool is withheld (the lanes are already spent).
template <typename GraphFactory>
std::vector<MisRun> run_trials(MisEngine engine, const GraphFactory& make_graph,
                               std::uint64_t base_seed, std::uint32_t num_seeds,
                               const RunOptions& opts = {});

/// Reduces a trial-ordered run sequence into the seed-averaged measures.
/// Deterministic: iterates in sequence order.
AggregateRun aggregate_runs(const MisRun* begin, const MisRun* end);
AggregateRun aggregate_runs(const std::vector<MisRun>& runs);

/// Runs `engine` `num_seeds` times on graphs produced by `make_graph`
/// and aggregates; equivalent to aggregate_runs(run_trials(...)).
template <typename GraphFactory>
AggregateRun aggregate_mis(MisEngine engine, const GraphFactory& make_graph,
                           std::uint64_t base_seed, std::uint32_t num_seeds,
                           const RunOptions& opts = {});

/// The factory the sweep-style runners hand to run_trials /
/// aggregate_mis: trial seed -> gen::make(family, n, seed, options).
/// This is where a generation schedule (gen::Schedule::kSharded, first
/// touch) plugs into the experiment layer; `options` is captured by
/// value and any pool it names must outlive the factory. Trials run
/// concurrently under the parallel runner, so prefer a null pool there
/// (a nested same-pool build would just run inline anyway).
std::function<Graph(std::uint64_t)> graph_factory(
    gen::Family family, VertexId n, gen::MakeOptions options = {});

}  // namespace slumber::analysis

#include "analysis/experiment_impl.h"
