// Statistics helpers for the experiment harness: summaries with
// confidence intervals, and least-squares fits used to classify growth
// rates (is node-averaged awake complexity flat in n? does worst-case
// awake complexity track log n?).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace slumber::analysis {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  /// Half-width of the ~95% normal confidence interval of the mean.
  double ci95 = 0.0;
};

Summary summarize(std::span<const double> values);

/// Ordinary least squares y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Fits y ~ c * x^e via log-log regression (requires positive data);
/// exponent near 0 = constant, near 1 = linear, etc.
LinearFit power_fit(std::span<const double> x, std::span<const double> y);

/// Fits y ~ a + b * log2(x): slope b near 0 means y is O(1) in x.
LinearFit log_fit(std::span<const double> x, std::span<const double> y);

/// Percentile (0..100) by linear interpolation.
double percentile(std::span<const double> values, double pct);

/// "12.3 +- 0.4" formatting helper.
std::string mean_ci_string(const Summary& s, int precision = 2);

}  // namespace slumber::analysis
