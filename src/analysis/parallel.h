// Deterministic parallel execution of independent seeded trials.
//
// Everything in the experiment layer that averages over seeds funnels
// through parallel_trials(): trial i's work is a pure function of i, the
// results land in a pre-sized vector slot i, and reductions happen after
// the implicit barrier in the caller's original order. That makes every
// result bitwise identical to a serial run regardless of thread count
// or completion order — the property the determinism tests pin down.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "util/thread_pool.h"

namespace slumber::analysis {

/// Lanes of execution used when a caller passes num_threads = 0: the
/// process-wide override (CLI --threads) if set, else the
/// SLUMBER_THREADS environment variable if set and positive, else
/// hardware concurrency.
unsigned default_trial_threads();

/// Sets the process-wide thread override. 0 restores automatic
/// selection. Not thread-safe against concurrent trial batches; call it
/// from startup code (flag parsing), not from inside trials.
void set_default_trial_threads(unsigned num_threads);

/// Runs fn(i) for every trial index i in [0, num_trials) across
/// num_threads lanes (0 = default_trial_threads()) and returns the
/// results ordered by trial index. fn must depend only on i; under that
/// contract the returned vector is bitwise independent of thread count.
/// The result type needs a default constructor and move assignment.
template <typename Fn>
auto parallel_trials(std::size_t num_trials, unsigned num_threads, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using Result = std::decay_t<decltype(fn(std::size_t{0}))>;
  std::vector<Result> results(num_trials);
  if (num_threads == 0) num_threads = default_trial_threads();
  // Never spawn more lanes than trials: excess workers would only find
  // an exhausted cursor and exit.
  if (static_cast<std::size_t>(num_threads) > num_trials) {
    num_threads = static_cast<unsigned>(num_trials == 0 ? 1 : num_trials);
  }
  util::ThreadPool pool(num_threads);
  pool.parallel_for_index(num_trials, [&](std::size_t i) {
    // Telemetry only: attributes trial i's wall time to its lane.
    obs::Span span("trials", "trial", i);
    results[i] = fn(i);
  });
  return results;
}

}  // namespace slumber::analysis
