#include "analysis/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace slumber::analysis {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string Table::num(std::uint64_t value) { return std::to_string(value); }

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& out, const Table& table) {
  return out << table.render();
}

std::string banner(const std::string& title) {
  return "\n== " + title + " ==\n";
}

}  // namespace slumber::analysis
