#include "analysis/trial_spec.h"

#include <cstdint>
#include <limits>
#include <utility>

#include "util/parse.h"

namespace slumber::analysis {
namespace {

/// True iff flag i is followed by a value token.
bool flag_value(const std::vector<std::string>& args, std::size_t i,
                const char* flag, std::ostream& err) {
  if (i + 1 < args.size()) return true;
  err << "error: " << flag << " needs a value\n";
  return false;
}

/// True iff flag i is followed by `count` value tokens.
bool flag_values(const std::vector<std::string>& args, std::size_t i,
                 const char* flag, std::size_t count, const char* shape,
                 std::ostream& err) {
  if (i + count < args.size()) return true;
  err << "error: " << flag << " needs " << count << " values: " << flag << ' '
      << shape << '\n';
  return false;
}

}  // namespace

bool parse_trial_flags(std::vector<std::string>* args, TrialSpec* spec,
                       std::ostream& err) {
  std::vector<std::string>& a = *args;
  std::vector<std::string> rest;
  rest.reserve(a.size());
  bool batches_given = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string& flag = a[i];
    if (flag == "--threads") {
      if (!flag_value(a, i, "--threads", err)) return false;
      std::uint64_t threads = 0;
      if (!util::parse_uint(a[++i], "--threads", &threads, 1,
                            std::numeric_limits<unsigned>::max(), err)) {
        return false;
      }
      spec->threads = static_cast<unsigned>(threads);
    } else if (flag == "--engine") {
      if (!flag_value(a, i, "--engine", err)) return false;
      if (!exec_engine_from_name(a[++i], &spec->exec)) {
        err << "error: unknown --engine '" << a[i]
            << "'; valid back ends: coroutine bulk\n";
        return false;
      }
    } else if (flag == "--gen") {
      if (!flag_value(a, i, "--gen", err)) return false;
      if (!gen::schedule_from_name(a[++i], &spec->schedule)) {
        err << "error: unknown --gen '" << a[i] << "'; valid generators:";
        for (const gen::Schedule schedule : gen::all_schedules()) {
          err << ' ' << gen::schedule_name(schedule);
        }
        err << '\n';
        return false;
      }
    } else if (flag == "--crash") {
      if (!flag_value(a, i, "--crash", err)) return false;
      const std::string& token = a[++i];
      const std::size_t at = token.find('@');
      if (at == std::string::npos) {
        err << "error: --crash: '" << token
            << "' is not NODE@ROUND (e.g. --crash 17@40)\n";
        return false;
      }
      std::uint64_t node = 0;
      std::uint64_t round = 0;
      if (!util::parse_uint(token.substr(0, at), "--crash node", &node, 0,
                            std::numeric_limits<VertexId>::max(), err) ||
          !util::parse_uint(token.substr(at + 1), "--crash round", &round, 0,
                            std::numeric_limits<std::uint64_t>::max(), err)) {
        return false;
      }
      spec->fault.crash_schedule.push_back(
          {static_cast<VertexId>(node), round});
    } else if (flag == "--loss") {
      if (!flag_value(a, i, "--loss", err)) return false;
      if (!util::parse_prob(a[++i], "--loss", &spec->fault.loss_prob, err)) {
        return false;
      }
    } else if (flag == "--loss-burst") {
      if (!flag_values(a, i, "--loss-burst", 3, "P_ON P_OFF LEN", err)) {
        return false;
      }
      fault::BurstSpec& burst = spec->fault.burst;
      if (!util::parse_prob(a[++i], "--loss-burst P_ON", &burst.p_on, err) ||
          !util::parse_prob(a[++i], "--loss-burst P_OFF", &burst.p_off, err)) {
        return false;
      }
      if (burst.p_on + burst.p_off > 1.0) {
        err << "error: --loss-burst: P_ON + P_OFF must be <= 1 (the "
               "channel's epoch-coupling probability is their sum); got "
            << burst.p_on + burst.p_off << '\n';
        return false;
      }
      if (!util::parse_uint(a[++i], "--loss-burst LEN", &burst.epoch_len, 1,
                            std::numeric_limits<std::uint64_t>::max(), err)) {
        return false;
      }
    } else if (flag == "--churn-live") {
      if (!flag_values(a, i, "--churn-live", 2, "LEAVE JOIN", err)) {
        return false;
      }
      fault::LiveChurnSpec& live = spec->fault.live_churn;
      if (!util::parse_prob(a[++i], "--churn-live LEAVE", &live.leave_prob,
                            err) ||
          !util::parse_prob(a[++i], "--churn-live JOIN", &live.join_prob,
                            err)) {
        return false;
      }
    } else if (flag == "--recover") {
      if (!flag_value(a, i, "--recover", err)) return false;
      if (!util::parse_uint(a[++i], "--recover", &spec->fault.recover.mean_down,
                            1, std::numeric_limits<std::uint64_t>::max(),
                            err)) {
        return false;
      }
    } else if (flag == "--churn") {
      if (!flag_value(a, i, "--churn", err)) return false;
      double rate = 0.0;
      if (!util::parse_prob(a[++i], "--churn", &rate, err)) return false;
      spec->fault.churn.leave_prob = rate;
      spec->fault.churn.join_prob = rate;
    } else if (flag == "--churn-batches") {
      if (!flag_value(a, i, "--churn-batches", err)) return false;
      std::uint64_t batches = 0;
      if (!util::parse_uint(a[++i], "--churn-batches", &batches, 1,
                            std::numeric_limits<std::uint32_t>::max(), err)) {
        return false;
      }
      spec->fault.churn.batches = static_cast<std::uint32_t>(batches);
      batches_given = true;
    } else if (flag == "--obs-out") {
      if (!flag_value(a, i, "--obs-out", err)) return false;
      spec->obs.jsonl_path = a[++i];
    } else if (flag == "--obs-trace") {
      if (!flag_value(a, i, "--obs-trace", err)) return false;
      spec->obs.trace_path = a[++i];
    } else if (flag == "--progress") {
      spec->obs.progress = true;
    } else {
      rest.push_back(std::move(a[i]));
    }
  }
  // `--churn P` alone means "some churn": default to 4 batches.
  if ((spec->fault.churn.leave_prob > 0.0 ||
       spec->fault.churn.join_prob > 0.0) &&
      !batches_given) {
    spec->fault.churn.batches = 4;
  }
  if (spec->fault.churn.enabled() && spec->exec != ExecEngine::kBulk) {
    err << "error: --churn needs the bulk back end's alive mask; "
           "add --engine bulk\n";
    return false;
  }
  if (spec->fault.live_churn.enabled() && spec->exec != ExecEngine::kBulk) {
    err << "error: --churn-live applies mid-run dynamics between bulk "
           "frames; add --engine bulk\n";
    return false;
  }
  if (spec->fault.recover.enabled() && spec->exec != ExecEngine::kBulk) {
    err << "error: --recover re-admits crashed nodes between bulk frames; "
           "add --engine bulk\n";
    return false;
  }
  a = std::move(rest);
  return true;
}

}  // namespace slumber::analysis
