// Minimal fixed-width ASCII table rendering for the bench binaries
// (Table-1-style output).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace slumber::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double value, int precision = 2);
  static std::string num(std::uint64_t value);

  /// Renders with column alignment and a header rule.
  std::string render() const;

  friend std::ostream& operator<<(std::ostream& out, const Table& table);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") used by the benches.
std::string banner(const std::string& title);

}  // namespace slumber::analysis
