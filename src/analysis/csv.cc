#include "analysis/csv.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace slumber::analysis {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path), arity_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  if (row.size() != arity_) {
    throw std::invalid_argument("CsvWriter: arity mismatch");
  }
  write_row(row);
  ++rows_;
}

void CsvWriter::add_row(const std::vector<double>& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (double value : row) {
    std::ostringstream s;
    s << value;
    fields.push_back(s.str());
  }
  add_row(fields);
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

void CsvWriter::write_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(row[i]);
  }
  out_ << '\n';
}

std::optional<std::string> csv_path_from_env(const std::string& name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe from
  // the single-threaded experiment setup path; nothing mutates the env.
  const char* dir = std::getenv("SLUMBER_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  return std::string(dir) + "/" + name + ".csv";
}

}  // namespace slumber::analysis
