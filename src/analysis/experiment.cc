#include "analysis/experiment.h"

#include <stdexcept>

#include "algos/ghaffari.h"
#include "algos/greedy.h"
#include "algos/luby.h"
#include "analysis/stats.h"
#include "analysis/verify.h"
#include "bulk/baselines.h"
#include "bulk/engine.h"
#include "bulk/sleeping_mis.h"
#include "core/fast_sleeping_mis.h"
#include "core/sleeping_mis.h"
#include "fault/churn.h"
#include "fault/fault.h"
#include "obs/obs.h"
#include "sim/network.h"

namespace slumber::analysis {

std::vector<MisEngine> all_engines() {
  return {MisEngine::kLubyA,    MisEngine::kLubyB,
          MisEngine::kGreedy,   MisEngine::kGhaffari,
          MisEngine::kSleeping, MisEngine::kFastSleeping};
}

std::string engine_name(MisEngine engine) {
  switch (engine) {
    case MisEngine::kSleeping: return "SleepingMIS";
    case MisEngine::kFastSleeping: return "Fast-SleepingMIS";
    case MisEngine::kLubyA: return "Luby-A";
    case MisEngine::kLubyB: return "Luby-B";
    case MisEngine::kGreedy: return "CRT-greedy";
    case MisEngine::kGhaffari: return "Ghaffari";
  }
  return "unknown";
}

bool engine_uses_sleeping(MisEngine engine) {
  return engine == MisEngine::kSleeping || engine == MisEngine::kFastSleeping;
}

bool engine_from_name(const std::string& name, MisEngine* out) {
  for (const MisEngine engine : all_engines()) {
    if (name == engine_name(engine)) {
      *out = engine;
      return true;
    }
  }
  if (name == "sleeping") *out = MisEngine::kSleeping;
  else if (name == "fast") *out = MisEngine::kFastSleeping;
  else if (name == "luby-a") *out = MisEngine::kLubyA;
  else if (name == "luby-b") *out = MisEngine::kLubyB;
  else if (name == "greedy") *out = MisEngine::kGreedy;
  else if (name == "ghaffari") *out = MisEngine::kGhaffari;
  else return false;
  return true;
}

std::string exec_engine_name(ExecEngine exec) {
  switch (exec) {
    case ExecEngine::kCoroutine: return "coroutine";
    case ExecEngine::kBulk: return "bulk";
  }
  return "unknown";
}

bool exec_engine_from_name(const std::string& name, ExecEngine* out) {
  if (name == "coroutine") *out = ExecEngine::kCoroutine;
  else if (name == "bulk") *out = ExecEngine::kBulk;
  else return false;
  return true;
}

bool engine_supports_bulk(MisEngine engine) {
  return bulk::bulk_supports(engine);
}

AggregateRun aggregate_runs(const MisRun* begin, const MisRun* end) {
  AggregateRun agg;
  std::vector<double> avg_awake;
  std::vector<double> worst_awake;
  std::vector<double> avg_rounds;
  std::vector<double> worst_rounds;
  std::vector<double> messages;
  for (const MisRun* run = begin; run != end; ++run) {
    ++agg.runs;
    if (!run->valid) {
      ++agg.invalid_runs;
      continue;
    }
    avg_awake.push_back(run->node_avg_awake);
    worst_awake.push_back(static_cast<double>(run->worst_awake));
    avg_rounds.push_back(run->node_avg_rounds);
    worst_rounds.push_back(static_cast<double>(run->worst_rounds));
    messages.push_back(static_cast<double>(run->total_messages));
  }
  const Summary s_avg_awake = summarize(avg_awake);
  agg.node_avg_awake_mean = s_avg_awake.mean;
  agg.node_avg_awake_ci95 = s_avg_awake.ci95;
  agg.worst_awake_mean = summarize(worst_awake).mean;
  agg.node_avg_rounds_mean = summarize(avg_rounds).mean;
  agg.worst_rounds_mean = summarize(worst_rounds).mean;
  agg.messages_mean = summarize(messages).mean;
  return agg;
}

AggregateRun aggregate_runs(const std::vector<MisRun>& runs) {
  return aggregate_runs(runs.data(), runs.data() + runs.size());
}

namespace {

MisRun finish_run(MisEngine engine, const Graph& g, std::uint64_t seed,
                  sim::Metrics metrics, std::vector<std::int64_t> outputs) {
  MisRun run;
  run.engine = engine;
  run.seed = seed;
  run.valid = check_mis(g, outputs).ok();
  run.node_avg_awake = metrics.node_avg_awake();
  run.worst_awake = metrics.worst_awake();
  run.node_avg_rounds = metrics.node_avg_finish();
  run.worst_rounds = metrics.worst_finish();
  run.total_messages = metrics.total_messages;
  for (std::int64_t out : outputs) {
    if (out == 1) ++run.mis_size;
  }
  run.metrics = std::move(metrics);
  run.outputs = std::move(outputs);
  if (obs::enabled()) {
    // End-of-run gauges for the export timeline (write-only telemetry).
    obs::counter("messages_total",
                 static_cast<double>(run.metrics.total_messages));
    obs::counter("messages_lost",
                 static_cast<double>(run.metrics.injected_losses));
    obs::counter("crashed_nodes",
                 static_cast<double>(run.metrics.crashed_nodes));
    // Live-dynamics end-of-run gauges (the engine also streams these
    // cumulatively from apply_dynamics; the final repeat closes the
    // series at the run's totals).
    if (run.metrics.live_leaves > 0 || run.metrics.live_rejoins > 0 ||
        run.metrics.recovered_nodes > 0) {
      obs::counter("live_leaves",
                   static_cast<double>(run.metrics.live_leaves));
      obs::counter("live_rejoins",
                   static_cast<double>(run.metrics.live_rejoins));
      obs::counter("recovered_nodes",
                   static_cast<double>(run.metrics.recovered_nodes));
    }
  }
  return run;
}

}  // namespace

MisRun run_mis(MisEngine engine, const Graph& g, std::uint64_t seed,
               const RunOptions& opts) {
  obs::Span run_span("run", "run_mis", seed);
  const bool churn = opts.fault != nullptr && opts.fault->churn.enabled();
  const bool live =
      opts.fault != nullptr && opts.fault->has_live_dynamics();
  if (opts.exec == ExecEngine::kBulk) {
    auto protocol = bulk::bulk_mis_protocol(engine, opts.trace);
    if (protocol == nullptr) {
      throw std::invalid_argument("run_mis: engine " + engine_name(engine) +
                                  " has no bulk implementation");
    }
    bulk::BulkOptions options;
    options.max_message_bits = sim::congest_bits_for(g.num_vertices());
    options.pool = opts.pool;
    options.fault = opts.fault;
    options.node_metrics = opts.node_metrics;
    options.first_touch = opts.first_touch;
    bulk::BulkResult result = bulk::run_bulk(g, seed, *protocol, options);
    if (!churn && result.crashed.empty() && result.departed.empty()) {
      return finish_run(engine, g, seed, std::move(result.metrics),
                        std::move(result.outputs));
    }
    // The final alive subgraph: everyone not currently crashed (under
    // recovery crashed_[] only holds nodes still down) and not departed.
    const VertexId n = g.num_vertices();
    std::vector<std::uint8_t> alive(n, 1);
    if (!result.crashed.empty()) {
      for (VertexId v = 0; v < n; ++v) {
        alive[v] = result.crashed[v] != 0 ? 0 : 1;
      }
    }
    if (!result.departed.empty()) {
      for (VertexId v = 0; v < n; ++v) {
        if (result.departed[v] != 0) alive[v] = 0;
      }
    }
    if (live && !churn) {
      // Live-dynamics run: the survivors' outputs can carry damage from
      // mid-run leaves/crashes (a dominator that vanished, a re-entrant
      // that never re-decided). Repair once on the final alive subgraph
      // so the reported MIS — and validity — refer to the network that
      // actually remains.
      obs::progress_phase("repair");
      obs::Span repair_span("fault", "live_repair", seed);
      const fault::FaultState fs(opts.fault, seed, n);
      std::uint64_t demotions = 0;
      std::uint64_t promotions = 0;
      result.metrics.live_repair_rounds = fault::repair_mis(
          g, alive, result.outputs, fs.seed(), opts.pool, &demotions,
          &promotions);
      obs::counter("live_repair_rounds",
                   static_cast<double>(result.metrics.live_repair_rounds));
    }
    bool churn_valid = false;
    if (churn) {
      // Long-running trial: after the protocol converges, nodes leave
      // and join in batches; each batch is followed by an incremental
      // MIS repair. The fault seed matches the engine's, so the whole
      // experiment is one deterministic function of (plan, seed).
      obs::progress_phase("churn");
      obs::Span churn_span("fault", "churn", opts.fault->churn.batches);
      const fault::FaultState fs(opts.fault, seed, n);
      const fault::ChurnReport report = fault::run_churn(
          g, opts.fault->churn, fs.seed(), alive, result.outputs, opts.pool);
      obs::counter("churn_repair_rounds",
                   static_cast<double>(report.repair_rounds));
      result.metrics.churn_batches = report.batches;
      result.metrics.churn_leaves = report.leaves;
      result.metrics.churn_joins = report.joins;
      result.metrics.churn_repair_rounds = report.repair_rounds;
      churn_valid = report.valid;
    }
    MisRun run = finish_run(engine, g, seed, std::move(result.metrics),
                            std::move(result.outputs));
    run.alive = std::move(alive);
    // With dead nodes the full-graph check is vacuously broken; report
    // whether the surviving output is a correct MIS of the survivors'
    // subgraph instead (under crashes it may legitimately not be — that
    // is the injected damage churn's initial repair would fix).
    run.valid = churn ? churn_valid
                      : fault::check_alive_mis(g, run.alive, run.outputs,
                                               opts.pool);
    return run;
  }
  if (churn) {
    throw std::invalid_argument("run_mis: churn requires the bulk engine");
  }
  if (live) {
    throw std::invalid_argument(
        "run_mis: live churn and crash recovery require the bulk engine");
  }
  sim::Protocol protocol;
  switch (engine) {
    case MisEngine::kSleeping:
      protocol = core::sleeping_mis({}, opts.trace);
      break;
    case MisEngine::kFastSleeping:
      protocol = core::fast_sleeping_mis({}, opts.trace);
      break;
    case MisEngine::kLubyA:
      protocol = algos::luby_a();
      break;
    case MisEngine::kLubyB:
      protocol = algos::luby_b();
      break;
    case MisEngine::kGreedy:
      protocol = algos::distributed_greedy_mis();
      break;
    case MisEngine::kGhaffari:
      protocol = algos::ghaffari_mis();
      break;
    default:
      throw std::invalid_argument("run_mis: unknown engine");
  }

  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(g.num_vertices());
  options.fault = opts.fault;
  auto [metrics, outputs] = sim::run_protocol(g, seed, protocol, options);
  MisRun run =
      finish_run(engine, g, seed, std::move(metrics), std::move(outputs));
  if (opts.fault != nullptr && opts.fault->has_crashes()) {
    const VertexId n = g.num_vertices();
    run.alive.assign(n, 1);
    for (VertexId v = 0; v < n; ++v) {
      if (run.metrics.node[v].crashed) run.alive[v] = 0;
    }
    run.valid = fault::check_alive_mis(g, run.alive, run.outputs);
  }
  return run;
}

std::function<Graph(std::uint64_t)> graph_factory(gen::Family family,
                                                  VertexId n,
                                                  gen::MakeOptions options) {
  return [family, n, options](std::uint64_t seed) {
    return gen::make(family, n, seed, options);
  };
}

}  // namespace slumber::analysis
