// The one command-line vocabulary every experiment front end shares.
//
// A TrialSpec bundles what used to be scattered per-tool flag handling:
// the execution back end (--engine), the G(n, p) seed schedule (--gen),
// the lane count (--threads), the fault plan (--crash v@r, --loss p,
// --loss-burst p_on p_off len, --churn rate, --churn-batches k,
// --churn-live leave join, --recover mean), and the telemetry sinks
// (--obs-out, --obs-trace, --progress). parse_trial_flags() consumes
// those flags —
// wherever they appear — from an argument vector and leaves the tool's
// own positional arguments behind, so the CLI's run / sweep / beep
// commands and the bench front ends all accept the identical grammar
// with the identical diagnostics (full-token std::from_chars
// validation; unknown values are rejected with the list of valid
// names).
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "obs/obs.h"

namespace slumber::analysis {

/// Parsed shared flags. `fault` is owned here; hand experiment calls
/// `fault_or_null()` so a fault-free spec costs the engines nothing.
struct TrialSpec {
  ExecEngine exec = ExecEngine::kCoroutine;
  gen::Schedule schedule = gen::Schedule::kLegacy;
  /// --threads lane count; 0 = all hardware threads.
  unsigned threads = 0;
  fault::FaultPlan fault;
  /// Telemetry export + live progress (--obs-out / --obs-trace /
  /// --progress). Hand it to an obs::Session in main(); no effect on
  /// any trial output (the determinism tests pin this).
  obs::Options obs;

  const fault::FaultPlan* fault_or_null() const {
    return fault.empty() ? nullptr : &fault;
  }

  /// The RunOptions this spec configures (trial-level threads ride in
  /// RunOptions::num_threads only where the caller wants them; run_mis
  /// ignores that field, so it is left 0 here).
  RunOptions run_options(util::ThreadPool* pool = nullptr) const {
    return {.exec = exec, .pool = pool, .fault = fault_or_null()};
  }
};

/// Consumes every recognized shared flag from `args` (in place, any
/// position) into `spec`. Returns false after printing a diagnostic to
/// `err` on malformed or out-of-range values, unknown --engine/--gen
/// names, or a churn request on the coroutine back end (churn repair
/// needs the bulk engine's alive mask — say `--engine bulk`).
///
///   --threads N         lane count (>= 1)
///   --engine NAME       coroutine | bulk
///   --gen NAME          generation schedule (gen::all_schedules())
///   --crash V@R         fail-stop node V at round R (repeatable)
///   --loss P            per-link-per-round symmetric message loss
///   --loss-burst P_ON P_OFF LEN
///                       Gilbert–Elliott burst loss: each edge flips
///                       good->bad w.p. P_ON and bad->good w.p. P_OFF
///                       per epoch of LEN rounds (P_ON + P_OFF <= 1);
///                       composes with --loss (independent draws)
///   --churn P           per-batch leave/rejoin probability; implies 4
///                       batches unless --churn-batches is given
///   --churn-batches K   number of churn batches (>= 1)
///   --churn-live LEAVE JOIN
///                       mid-run churn: each alive node leaves w.p.
///                       LEAVE per round; a leaver returns after a
///                       Geometric(JOIN) downtime (JOIN 0 = for good)
///   --recover MEAN      crashed nodes re-enter after a geometric
///                       downtime with mean MEAN rounds
///   --obs-out PATH      telemetry JSONL event stream (slumber-obs-v1)
///   --obs-trace PATH    Chrome trace-event file (load in Perfetto)
///   --progress          live stderr heartbeat with round/frame ETA
bool parse_trial_flags(std::vector<std::string>* args, TrialSpec* spec,
                       std::ostream& err = std::cerr);

}  // namespace slumber::analysis
