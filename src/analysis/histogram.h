// Fixed-width histograms with ASCII rendering, for distributional
// views of per-node metrics (E17 studies the full distribution of the
// awake time A_v, not just its mean -- the paper's Section 1.2 remarks
// that "one can also study other properties of A").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace slumber::analysis {

class Histogram {
 public:
  /// Bins [lo, lo+w), [lo+w, lo+2w), ...; values below `lo` clamp into
  /// the first bin, values at or above the last edge into the last.
  Histogram(double lo, double bin_width, std::size_t num_bins);

  void add(double value);
  void add_all(std::span<const double> values);

  std::size_t num_bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  std::uint64_t total() const { return total_; }

  /// Left edge of bin i.
  double bin_lo(std::size_t bin) const;

  /// Fraction of mass in bin i (0 if empty histogram).
  double fraction(std::size_t bin) const;

  /// Empirical P[X >= x] (with bin resolution: mass of all bins whose
  /// left edge is >= x).
  double tail_at_least(double x) const;

  /// Markdown-ish table with a '#'-bar column; bins holding less than
  /// `min_fraction` of the mass are elided.
  std::string render(const std::string& value_label,
                     double min_fraction = 0.002) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace slumber::analysis
