// Per-node execution context: the API a protocol coroutine programs
// against.
//
// Model semantics (paper Section 1.2, "Sleeping Model"):
//   * `co_await ctx.broadcast(m)` / `exchange(...)` / `listen()` — the
//     node is AWAKE for exactly one round: it sends its messages,
//     receives whatever awake neighbors sent it that round, and is
//     charged one awake round.
//   * `ctx.sleep(d)` — the node SLEEPS for d rounds before its next
//     awake round. Sleeping costs nothing; messages sent to a sleeping
//     node are dropped (the network only delivers to nodes that are
//     awake in the same round).
//   * `ctx.decide(v)` — records the node's output and the round/awake
//     time at which its status was fixed (the Feuilloley/Barenboim-Tzur
//     "decided" instant).
// Returning from the root protocol coroutine terminates the node.
#pragma once

#include <coroutine>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "sim/message.h"
#include "util/rng.h"

namespace slumber::sim {

class Network;

/// Everything a node receives in one awake round.
using Inbox = std::vector<Received>;

/// What a node emits in one awake round.
struct OutBundle {
  /// If set, the same message goes out on every port.
  std::optional<Message> broadcast;
  /// Otherwise/additionally, explicit (port, message) pairs.
  std::vector<std::pair<std::uint32_t, Message>> per_port;

  bool empty() const { return !broadcast.has_value() && per_port.empty(); }
};

class Context {
 public:
  VertexId id() const { return id_; }
  std::uint32_t degree() const { return degree_; }
  std::uint64_t n() const { return n_; }

  /// The current virtual round (1-based; 0 = before the first round).
  std::uint64_t round() const;

  Rng& rng() { return rng_; }

  /// Sleep for `rounds` rounds before the next awake round. Accumulates;
  /// costs zero awake rounds.
  void sleep(std::uint64_t rounds) { pending_sleep_ += rounds; }

  /// Awaitable: one awake round sending `m` on every port.
  auto broadcast(Message m) {
    OutBundle out;
    out.broadcast = m;
    return ExchangeAwaiter{this, std::move(out)};
  }

  /// Awaitable: one awake round with explicit per-port messages.
  auto exchange(std::vector<std::pair<std::uint32_t, Message>> msgs) {
    OutBundle out;
    out.per_port = std::move(msgs);
    return ExchangeAwaiter{this, std::move(out)};
  }

  /// Awaitable: one awake round sending nothing (idle listening — the
  /// expensive state the paper's motivation is about).
  auto listen() { return ExchangeAwaiter{this, OutBundle{}}; }

  /// Records this node's output value and the decision instant.
  /// Idempotent: only the first call sticks.
  void decide(std::int64_t output);

  bool decided() const { return decided_; }
  std::int64_t output() const { return output_; }

 private:
  friend class Network;

  struct ExchangeAwaiter {
    Context* ctx;
    OutBundle out;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      ctx->resume_point_ = h;
      ctx->pending_out_ = std::move(out);
      ctx->requested_sleep_ = ctx->pending_sleep_;
      ctx->pending_sleep_ = 0;
      ctx->waiting_for_round_ = true;
    }
    Inbox await_resume() {
      ctx->waiting_for_round_ = false;
      return std::move(ctx->inbox_);
    }
  };

  Context(Network* net, VertexId id, std::uint32_t degree, std::uint64_t n,
          Rng rng)
      : net_(net), id_(id), degree_(degree), n_(n), rng_(std::move(rng)) {}

  Network* net_;
  VertexId id_;
  std::uint32_t degree_;
  std::uint64_t n_;
  Rng rng_;

  // --- scheduler interface ---
  std::coroutine_handle<> resume_point_;  // innermost suspended coroutine
  OutBundle pending_out_;                 // what to send at next awake round
  Inbox inbox_;                           // filled by the network pre-resume
  std::uint64_t pending_sleep_ = 0;       // accumulated ctx.sleep() calls
  std::uint64_t requested_sleep_ = 0;     // sleep captured at suspension
  bool waiting_for_round_ = false;

  // --- outputs ---
  bool decided_ = false;
  std::int64_t output_ = -1;
};

}  // namespace slumber::sim
