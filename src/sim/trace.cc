#include "sim/trace.h"

#include <sstream>

namespace slumber::sim {

std::string trace_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kWake: return "wake";
    case TraceEventKind::kDeliver: return "deliver";
    case TraceEventKind::kDropSleep: return "drop-sleeping";
    case TraceEventKind::kDropFault: return "drop-fault";
    case TraceEventKind::kDecide: return "decide";
    case TraceEventKind::kTerminate: return "terminate";
    case TraceEventKind::kCrash: return "crash";
  }
  return "unknown";
}

namespace {

std::string msg_kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kHello: return "Hello";
    case MsgKind::kStatus: return "Status";
    case MsgKind::kRank: return "Rank";
    case MsgKind::kInMis: return "InMis";
    case MsgKind::kEliminated: return "Eliminated";
    case MsgKind::kProb: return "Prob";
    case MsgKind::kMark: return "Mark";
    case MsgKind::kColor: return "Color";
    case MsgKind::kBeep: return "Beep";
    case MsgKind::kCustom: return "Custom";
  }
  return "?";
}

}  // namespace

std::string format_event(const TraceEvent& event) {
  std::ostringstream out;
  out << "round " << event.round << ": " << trace_kind_name(event.kind)
      << " node " << event.node;
  switch (event.kind) {
    case TraceEventKind::kDeliver:
    case TraceEventKind::kDropSleep:
    case TraceEventKind::kDropFault:
      out << " -> " << event.peer << " kind=" << msg_kind_name(event.msg_kind);
      break;
    case TraceEventKind::kDecide:
      out << " value=" << event.value;
      break;
    default:
      break;
  }
  return out.str();
}

std::uint64_t RingTrace::count(TraceEventKind kind) const {
  std::uint64_t n = 0;
  for (const TraceEvent& event : events_) {
    if (event.kind == kind) ++n;
  }
  return n;
}

std::string RingTrace::render() const {
  std::ostringstream out;
  if (total_ > events_.size()) {
    out << "... (" << total_ - events_.size() << " earlier events elided)\n";
  }
  for (const TraceEvent& event : events_) {
    out << format_event(event) << '\n';
  }
  return out.str();
}

}  // namespace slumber::sim
