// A minimal coroutine task for writing per-node protocols.
//
// Protocols in this library are C++20 coroutines returning sim::Task.
// Nested calls (`co_await subprotocol(...)`) use symmetric transfer: the
// awaiting frame records itself as the child's continuation and control
// jumps directly into the child. When a protocol performs a communication
// round (`co_await ctx.broadcast(...)`), the *innermost* coroutine handle
// is parked in the node's Context and the whole stack stays suspended
// until the scheduler resumes it at the node's next awake round. This is
// what lets SleepingMISRecursive read line-for-line like Algorithm 1 in
// the paper while the scheduler remains a flat event loop.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace slumber::sim {

/// Lazily-started coroutine task (void result), move-only, owns its frame.
class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;  // resumed when this task finishes
    std::exception_ptr exception;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto continuation = h.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return !handle_ || handle_.done(); }
  Handle handle() const { return handle_; }

  /// Starts (or continues) the task from the outside. Used by the
  /// scheduler for the root protocol only.
  void resume_from_root() { handle_.resume(); }

  /// Rethrows an exception that escaped the coroutine body, if any.
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  /// Awaiting a Task runs it as a nested protocol call.
  auto operator co_await() const noexcept {
    struct Awaiter {
      Handle child;
      bool await_ready() const noexcept { return !child || child.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) const noexcept {
        child.promise().continuation = parent;
        return child;  // symmetric transfer into the child
      }
      void await_resume() const {
        if (child && child.promise().exception) {
          std::rethrow_exception(child.promise().exception);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

}  // namespace slumber::sim
