// Messages in the CONGEST model.
//
// The paper assumes the synchronous CONGEST(log n) model (Section 1.2):
// per round, a node may send an O(log n)-bit message over each incident
// edge. We model a message as a small fixed layout -- a protocol tag plus
// up to two payload words -- and each message *declares* its width in
// bits. The network enforces the declared width against the configured
// CONGEST budget, so an algorithm that accidentally needed big messages
// would fail loudly in tests.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace slumber::sim {

/// Protocol-defined message tag.
enum class MsgKind : std::uint8_t {
  kHello = 0,       // presence probe (isolated-node detection)
  kStatus = 1,      // MIS status: payload_a in {0=false, 1=true, 2=unknown}
  kRank = 2,        // a random priority/rank in payload_a
  kInMis = 3,       // "I joined the MIS"
  kEliminated = 4,  // "my status became false"
  kProb = 5,        // Ghaffari desire level (fixed point) in payload_a
  kMark = 6,        // Ghaffari mark
  kColor = 7,       // tentative or final color in payload_a
  kBeep = 8,        // a 1-bit carrier pulse (beeping model, no payload)
  kCustom = 255,
};

/// A CONGEST message: tag + up to two payload words, with a declared
/// bit-width used for CONGEST accounting.
struct Message {
  MsgKind kind = MsgKind::kCustom;
  std::uint64_t payload_a = 0;
  std::uint64_t payload_b = 0;
  std::uint32_t bits = 8;  // declared width, must cover the payload used

  static Message hello() { return {MsgKind::kHello, 0, 0, 8}; }

  /// Status message carrying an inMIS value (0/1/2); 2 status bits + tag.
  static Message status(std::uint64_t value) {
    return {MsgKind::kStatus, value, 0, 10};
  }

  /// A rank message: `rank_bits` must be O(log n) for CONGEST compliance;
  /// the distributed greedy algorithms use ranks of ~3 log n bits.
  static Message rank(std::uint64_t rank, std::uint32_t rank_bits) {
    return {MsgKind::kRank, rank, 0, rank_bits + 8};
  }

  static Message in_mis() { return {MsgKind::kInMis, 0, 0, 8}; }
  static Message eliminated() { return {MsgKind::kEliminated, 0, 0, 8}; }

  /// Desire level for Ghaffari's algorithm. Desire levels are always
  /// exact powers of two (start at 1/2, halve or double), so only the
  /// exponent e with p = 2^-e travels: 16 bits is ample.
  static Message prob(std::uint64_t exponent) {
    return {MsgKind::kProb, exponent, 0, 24};
  }

  static Message mark() { return {MsgKind::kMark, 0, 0, 8}; }

  /// A beep: the 1-bit primitive of the beeping model (Afek et al.). A
  /// listener learns only "at least one neighbor beeped this slot".
  static Message beep() { return {MsgKind::kBeep, 0, 0, 1}; }

  static Message color(std::uint64_t c, std::uint32_t color_bits) {
    return {MsgKind::kColor, c, 0, color_bits + 8};
  }
};

/// A received message together with its provenance.
struct Received {
  VertexId from = kInvalidVertex;  // sender id
  std::uint32_t port = 0;          // receiver's port the message arrived on
  Message msg;
};

}  // namespace slumber::sim
