#include "sim/network.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace slumber::sim {

std::uint32_t congest_bits_for(std::uint64_t n) {
  const auto log_n = static_cast<std::uint32_t>(
      std::bit_width(std::max<std::uint64_t>(n, 2) - 1));
  // Tag byte + a generous O(log n) payload budget (4 log n), matching the
  // classical CONGEST(log n) convention of c*log n-bit messages. Floored
  // at 4 words-of-log so asymptotically-fine protocols are not rejected
  // on toy instances (O(log n) is meaningless at n = 2).
  return 8 + 4 * std::max<std::uint32_t>(log_n, 4);
}

std::uint64_t Context::round() const { return net_->current_round(); }

void Context::decide(std::int64_t output) {
  if (decided_) return;
  decided_ = true;
  output_ = output;
  auto& m = net_->metrics_.node[id_];
  m.decided_round = net_->current_round();
  m.awake_at_decision = m.awake_rounds;
  if (net_->options_.trace != nullptr) {
    net_->options_.trace->on_event({TraceEventKind::kDecide,
                                    net_->current_round(), id_,
                                    kInvalidVertex, MsgKind::kCustom, output});
  }
}

Network::Network(const Graph& g, std::uint64_t seed, NetworkOptions options)
    : graph_(g),
      options_(options),
      seed_(seed),
      fault_(options.fault, seed, g.num_vertices()) {
  const VertexId n = g.num_vertices();
  metrics_.node.resize(n);
  finished_.assign(n, false);
  last_awake_.assign(n, 0);
  contexts_.reserve(n);
  Rng master(seed);
  for (VertexId v = 0; v < n; ++v) {
    contexts_.emplace_back(new Context(this, v, g.degree(v), n,
                                       master.split(v)));
  }
}

Network::~Network() = default;

void Network::check_congest(const Message& m) {
  metrics_.max_message_bits_seen =
      std::max(metrics_.max_message_bits_seen, m.bits);
  if (options_.max_message_bits != 0 && m.bits > options_.max_message_bits) {
    ++metrics_.congest_violations;
    if (options_.throw_on_congest_violation) {
      throw CongestViolation(
          "message of " + std::to_string(m.bits) + " bits exceeds CONGEST " +
          "budget of " + std::to_string(options_.max_message_bits));
    }
  }
}

void Network::deliver_from(VertexId sender) {
  Context& ctx = *contexts_[sender];
  auto deliver = [&](std::uint32_t port, const Message& m) {
    check_congest(m);
    ++metrics_.node[sender].messages_sent;
    const VertexId receiver = graph_.neighbor(sender, port);
    if (!finished_[receiver] && last_awake_[receiver] == current_round_) {
      // Loss only hits otherwise-deliverable messages, and the draw is
      // keyed by (undirected link, round) — the identical decision the
      // bulk engine computes for this edge in this round.
      if (fault_.has_loss() &&
          fault_.link_down(sender, receiver, current_round_, 0)) {
        ++metrics_.injected_losses;
        if (options_.trace != nullptr) {
          options_.trace->on_event({TraceEventKind::kDropFault, current_round_,
                                    sender, receiver, m.kind, 0});
        }
        return;
      }
      Context& rctx = *contexts_[receiver];
      const auto back_port =
          static_cast<std::uint32_t>(graph_.port_to(receiver, sender));
      rctx.inbox_.push_back({sender, back_port, m});
      ++metrics_.node[receiver].messages_received;
      ++metrics_.total_messages;
      if (options_.trace != nullptr) {
        options_.trace->on_event({TraceEventKind::kDeliver, current_round_,
                                  sender, receiver, m.kind, 0});
      }
    } else {
      // Receiver is sleeping or terminated: the message is lost
      // (paper Section 1.2: "messages sent to it ... are lost").
      ++metrics_.dropped_messages;
      if (options_.trace != nullptr) {
        options_.trace->on_event({TraceEventKind::kDropSleep, current_round_,
                                  sender, receiver, m.kind, 0});
      }
    }
  };
  if (ctx.pending_out_.broadcast.has_value()) {
    for (std::uint32_t p = 0; p < ctx.degree_; ++p) {
      deliver(p, *ctx.pending_out_.broadcast);
    }
  }
  for (const auto& [port, msg] : ctx.pending_out_.per_port) {
    deliver(port, msg);
  }
}

const Metrics& Network::run(const Protocol& protocol) {
  if (ran_) throw std::logic_error("Network::run may be called only once");
  ran_ = true;
  const VertexId n = graph_.num_vertices();
  std::uint64_t resumes = 0;

  // Round 0: start every protocol; it runs its local initialization and
  // suspends at its first communication round (or finishes immediately).
  tasks_.reserve(n);
  current_round_ = 0;
  for (VertexId v = 0; v < n; ++v) {
    tasks_.push_back(protocol(*contexts_[v]));
    tasks_[v].resume_from_root();
    ++resumes;
    if (tasks_[v].done()) {
      tasks_[v].rethrow_if_failed();
      finished_[v] = true;
      // Trailing ctx.sleep() calls with no later exchange still advance
      // the node's local clock to its true return time.
      metrics_.node[v].finish_round = contexts_[v]->pending_sleep_;
    } else {
      const std::uint64_t next = 1 + contexts_[v]->requested_sleep_;
      wake_buckets_[next].push_back(v);
    }
  }

  std::vector<VertexId> awake;
  while (!wake_buckets_.empty()) {
    auto first = wake_buckets_.begin();
    current_round_ = first->first;
    awake = std::move(first->second);
    wake_buckets_.erase(first);
    if (current_round_ > options_.max_rounds) {
      throw std::runtime_error("Network: exceeded max_rounds safety valve");
    }
    ++metrics_.distinct_active_rounds;

    // Crash injection happens first: a node that fail-stops this round
    // sends nothing and receives nothing (it is simply absent).
    if (fault_.has_crashes()) {
      std::erase_if(awake, [&](VertexId v) {
        if (!fault_.crashes_now(v, current_round_, 0)) return false;
        finished_[v] = true;
        metrics_.node[v].crashed = true;
        metrics_.node[v].finish_round = current_round_;
        ++metrics_.crashed_nodes;
        if (options_.trace != nullptr) {
          options_.trace->on_event({TraceEventKind::kCrash, current_round_, v,
                                    kInvalidVertex, MsgKind::kCustom, 0});
        }
        return true;
      });
    }

    // Mark the awake set, then deliver, then resume: all sends in a round
    // complete before any node observes its inbox.
    for (VertexId v : awake) last_awake_[v] = current_round_;
    for (VertexId v : awake) deliver_from(v);
    for (VertexId v : awake) {
      ++metrics_.node[v].awake_rounds;
      ++metrics_.total_awake_node_rounds;
      Context& ctx = *contexts_[v];
      ctx.pending_out_ = OutBundle{};
      if (options_.trace != nullptr) {
        options_.trace->on_event({TraceEventKind::kWake, current_round_, v,
                                  kInvalidVertex, MsgKind::kCustom, 0});
      }
      ctx.resume_point_.resume();
      if (++resumes > options_.max_resumes) {
        throw std::runtime_error("Network: exceeded max_resumes safety valve");
      }
      if (tasks_[v].done()) {
        tasks_[v].rethrow_if_failed();
        finished_[v] = true;
        // Include trailing sleeps so "all nodes return in the same
        // round" (Lemma 1, Condition 1) is observable in the metrics.
        metrics_.node[v].finish_round =
            current_round_ + ctx.pending_sleep_;
        if (options_.trace != nullptr) {
          options_.trace->on_event({TraceEventKind::kTerminate,
                                    current_round_, v, kInvalidVertex,
                                    MsgKind::kCustom, 0});
        }
      } else {
        const std::uint64_t next =
            current_round_ + 1 + ctx.requested_sleep_;
        wake_buckets_[next].push_back(v);
      }
    }
  }

  metrics_.makespan = 0;
  for (const NodeMetrics& m : metrics_.node) {
    metrics_.makespan = std::max(metrics_.makespan, m.finish_round);
  }
  return metrics_;
}

std::vector<std::int64_t> Network::outputs() const {
  std::vector<std::int64_t> out(graph_.num_vertices(), -1);
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    out[v] = contexts_[v]->output();
  }
  return out;
}

RunResult run_protocol(const Graph& g, std::uint64_t seed,
                       const Protocol& protocol, NetworkOptions options) {
  Network net(g, seed, options);
  net.run(protocol);
  return {net.metrics(), net.outputs()};
}

}  // namespace slumber::sim
