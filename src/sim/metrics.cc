#include "sim/metrics.h"

#include <algorithm>

namespace slumber::sim {
namespace {

template <typename Get>
double mean_over_nodes(const std::vector<NodeMetrics>& node, Get get) {
  if (node.empty()) return 0.0;
  double sum = 0.0;
  for (const NodeMetrics& m : node) sum += static_cast<double>(get(m));
  return sum / static_cast<double>(node.size());
}

}  // namespace

double Metrics::node_avg_awake() const {
  return mean_over_nodes(node,
                         [](const NodeMetrics& m) { return m.awake_rounds; });
}

std::uint64_t Metrics::worst_awake() const {
  std::uint64_t worst = 0;
  for (const NodeMetrics& m : node) worst = std::max(worst, m.awake_rounds);
  return worst;
}

double Metrics::node_avg_finish() const {
  return mean_over_nodes(node,
                         [](const NodeMetrics& m) { return m.finish_round; });
}

std::uint64_t Metrics::worst_finish() const {
  std::uint64_t worst = 0;
  for (const NodeMetrics& m : node) worst = std::max(worst, m.finish_round);
  return worst;
}

double Metrics::node_avg_decided() const {
  return mean_over_nodes(node,
                         [](const NodeMetrics& m) { return m.decided_round; });
}

double Metrics::node_avg_awake_at_decision() const {
  return mean_over_nodes(
      node, [](const NodeMetrics& m) { return m.awake_at_decision; });
}

}  // namespace slumber::sim
