// The synchronous network scheduler for the sleeping model.
//
// The scheduler maintains a virtual round clock and a bucket map
// round -> {nodes awake in that round}. Each iteration pops the earliest
// non-empty bucket, so intervals in which *every* node sleeps are skipped
// in O(log n) time ("event-skipping"). This matters: Algorithm 1's
// schedule spans T(⌈3 log n⌉) = Θ(n³) virtual rounds, but only O(n)
// awake node-rounds in expectation (Lemma 8), so simulation cost tracks
// awake work, not wall-clock rounds.
//
// Round semantics (synchronous CONGEST + sleeping, paper Section 1.2):
//   1. All nodes awake in round t emit their pending messages.
//   2. A message is delivered iff its receiver is awake in round t;
//      otherwise it is dropped (receiver sleeping or terminated).
//   3. All awake nodes then process their inboxes and run local
//      computation until their next suspension (exchange or return).
// Delivery happens strictly before any node resumes, so all nodes see a
// consistent synchronous cut; resumption order within a round is
// irrelevant because nodes only touch their own state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "fault/fault.h"
#include "graph/graph.h"
#include "sim/context.h"
#include "sim/metrics.h"
#include "sim/task.h"
#include "sim/trace.h"
#include "util/rng.h"

namespace slumber::sim {

/// A protocol factory: invoked once per node to create its coroutine.
using Protocol = std::function<Task(Context&)>;

/// Thrown when a message exceeds the CONGEST bit budget and the policy
/// is to fail (default in tests).
class CongestViolation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct NetworkOptions {
  /// CONGEST budget in bits; 0 disables the check. A useful default is
  /// congest_bits_for(n).
  std::uint32_t max_message_bits = 0;
  /// If true, a too-wide message throws CongestViolation; otherwise it is
  /// only counted in Metrics::congest_violations.
  bool throw_on_congest_violation = true;
  /// Failure injection (fault/fault.h): crash schedules, probabilistic
  /// per-round crashes, and per-message loss. Borrowed; must outlive
  /// the run. Crashes are fail-stop: a crashed node is silent forever,
  /// its coroutine never resumes, outputs decided before the crash are
  /// kept, and an undecided crashed node reports -1. Message loss hits
  /// otherwise-deliverable messages only. Every fault decision is a
  /// keyed util::stream_rng draw, so the bulk engine evaluating the
  /// same plan under the same seed injects the identical faults.
  /// FaultPlan::churn is a bulk-only feature and is ignored here.
  const fault::FaultPlan* fault = nullptr;
  /// Optional event sink (see sim/trace.h); must outlive the run.
  TraceSink* trace = nullptr;
  /// Safety valve: abort the run if the virtual clock passes this.
  std::uint64_t max_rounds = std::uint64_t{1} << 62;
  /// Safety valve: abort if total resumes exceed this (runaway protocol).
  std::uint64_t max_resumes = std::uint64_t{1} << 40;
};

/// The standard CONGEST(log n) budget used in this library: enough for a
/// tag plus a Theta(log n)-bit payload.
std::uint32_t congest_bits_for(std::uint64_t n);

class Network {
 public:
  /// Builds a network over `g`. Node RNG streams are split from `seed`.
  Network(const Graph& g, std::uint64_t seed, NetworkOptions options = {});
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Runs `protocol` on every node to completion and returns the metrics.
  /// May be called only once per Network instance.
  const Metrics& run(const Protocol& protocol);

  const Graph& graph() const { return graph_; }
  const Metrics& metrics() const { return metrics_; }

  /// Per-node outputs (ctx.decide values); -1 if a node never decided.
  std::vector<std::int64_t> outputs() const;

  /// Current virtual round (valid during run(); used by Context::round).
  std::uint64_t current_round() const { return current_round_; }

 private:
  friend class Context;

  void deliver_from(VertexId sender);
  void check_congest(const Message& m);

  const Graph& graph_;
  NetworkOptions options_;
  Metrics metrics_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::vector<Task> tasks_;
  std::vector<bool> finished_;
  // last_awake_[v] == current_round_  <=>  v is awake this round.
  std::vector<std::uint64_t> last_awake_;
  std::map<std::uint64_t, std::vector<VertexId>> wake_buckets_;
  std::uint64_t current_round_ = 0;
  std::uint64_t seed_;
  fault::FaultState fault_;  // keyed crash/loss decisions
  bool ran_ = false;
};

/// Convenience: run `protocol` on graph `g` with `seed`, return metrics +
/// outputs.
struct RunResult {
  Metrics metrics;
  std::vector<std::int64_t> outputs;
};
RunResult run_protocol(const Graph& g, std::uint64_t seed,
                       const Protocol& protocol, NetworkOptions options = {});

}  // namespace slumber::sim
