// Structured event tracing for the simulator.
//
// A TraceSink receives one event per scheduler action: node wakes,
// message delivered/dropped/lost, node decides, node terminates. The
// default sink is a bounded in-memory ring buffer that can be rendered
// as text ("round 17: node 3 -> node 5 kind=Status") -- invaluable when
// debugging a synchronization bug in a protocol, and cheap enough to
// leave compiled in (a null sink costs one branch per event).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "graph/graph.h"
#include "sim/message.h"

namespace slumber::sim {

enum class TraceEventKind : std::uint8_t {
  kWake,        // node performs an exchange round
  kDeliver,     // message delivered
  kDropSleep,   // message dropped: receiver sleeping or terminated
  kDropFault,   // message lost to failure injection
  kDecide,      // node fixed its output
  kTerminate,   // node's protocol returned
  kCrash,       // node fail-stopped by injection
};

struct TraceEvent {
  TraceEventKind kind{};
  std::uint64_t round = 0;
  VertexId node = kInvalidVertex;   // actor (sender for message events)
  VertexId peer = kInvalidVertex;   // receiver for message events
  MsgKind msg_kind = MsgKind::kCustom;
  std::int64_t value = 0;           // decide: output value
};

/// Receives simulator events. Implementations must be cheap; they run
/// inside the scheduler's hot loop.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Keeps the most recent `capacity` events in memory.
class RingTrace : public TraceSink {
 public:
  explicit RingTrace(std::size_t capacity = 4096) : capacity_(capacity) {}

  void on_event(const TraceEvent& event) override {
    if (events_.size() == capacity_) events_.pop_front();
    events_.push_back(event);
    ++total_;
  }

  const std::deque<TraceEvent>& events() const { return events_; }
  std::uint64_t total_events() const { return total_; }
  std::size_t capacity() const { return capacity_; }

  /// Number of retained events of a given kind.
  std::uint64_t count(TraceEventKind kind) const;

  /// Human-readable dump of the retained events.
  std::string render() const;

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t total_ = 0;
};

/// One-line rendering of a single event.
std::string format_event(const TraceEvent& event);

/// Short name of an event kind ("wake", "deliver", ...).
std::string trace_kind_name(TraceEventKind kind);

}  // namespace slumber::sim
