// Run metrics: the paper's four complexity measures, per node and
// aggregated.
//
//   node-averaged awake complexity   = mean_v awake_rounds(v)    [Lemma 8]
//   worst-case awake complexity      = max_v awake_rounds(v)     [Lemma 9]
//   node-averaged round complexity   = mean_v finish_round(v)    [Lemma 11]
//   worst-case round complexity      = max_v finish_round(v)     [Lemma 10]
//
// finish_round counts ALL rounds (awake + sleeping) until the node
// terminates, i.e. the traditional measure; awake_rounds counts only
// rounds spent awake, i.e. the sleeping-model measure. We additionally
// record the *decision* instant (when the output value was fixed) to
// support the Feuilloley / Barenboim-Tzur node-averaged notions for the
// traditional-model baselines.
#pragma once

#include <cstdint>
#include <vector>

namespace slumber::sim {

struct NodeMetrics {
  std::uint64_t awake_rounds = 0;       // exchanges performed
  std::uint64_t finish_round = 0;       // virtual round of termination
  std::uint64_t decided_round = 0;      // virtual round output was fixed
  std::uint64_t awake_at_decision = 0;  // awake rounds used up to decision
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  // Fail-stopped by injection and still down (crash recovery clears it
  // when the node re-enters; without recovery it means "ever crashed").
  bool crashed = false;

  /// Whole-struct bitwise comparison: the engine-equivalence and
  /// thread-determinism gates compare entire runs with ==, so a new
  /// field can never silently fall out of those checks.
  friend bool operator==(const NodeMetrics&, const NodeMetrics&) = default;
};

struct Metrics {
  std::vector<NodeMetrics> node;
  std::uint64_t makespan = 0;          // max finish_round
  std::uint64_t total_messages = 0;    // delivered
  std::uint64_t dropped_messages = 0;  // sent to sleeping/terminated nodes
  std::uint64_t injected_losses = 0;   // lost to failure injection
  std::uint64_t crashed_nodes = 0;     // fail-stopped by injection
  std::uint64_t total_awake_node_rounds = 0;
  std::uint64_t distinct_active_rounds = 0;  // rounds with >= 1 awake node
  std::uint64_t congest_violations = 0;
  std::uint32_t max_message_bits_seen = 0;
  // Churn stream accounting (fault/churn.h; bulk engine only — all zero
  // unless the run's FaultPlan enabled churn). Filled by the experiment
  // layer after the protocol run.
  std::uint64_t churn_batches = 0;
  std::uint64_t churn_leaves = 0;
  std::uint64_t churn_joins = 0;
  std::uint64_t churn_repair_rounds = 0;  // incremental repair passes
  // Live-dynamics accounting (fault/fault.h Live/RecoverSpec; bulk
  // engine only — all zero otherwise). Leaves/rejoins count mid-run
  // churn events; recovered_nodes counts crashed nodes that came back;
  // live_repair_rounds counts the final repair's passes (the experiment
  // layer repairs the surviving MIS once, after a live-dynamics run).
  std::uint64_t live_leaves = 0;
  std::uint64_t live_rejoins = 0;
  std::uint64_t recovered_nodes = 0;
  std::uint64_t live_repair_rounds = 0;

  double node_avg_awake() const;
  std::uint64_t worst_awake() const;
  double node_avg_finish() const;
  std::uint64_t worst_finish() const;
  double node_avg_decided() const;
  double node_avg_awake_at_decision() const;

  /// Field-complete equality (per-node vector included); see
  /// NodeMetrics::operator==.
  friend bool operator==(const Metrics&, const Metrics&) = default;
};

}  // namespace slumber::sim
