// Full-token numeric argument parsing shared by the CLI and bench
// front ends: unlike the atoi family, trailing junk ("4x"), signs,
// empty tokens, overflow, and out-of-range values are all rejected with
// a message naming the offending flag/argument.
#pragma once

#include <charconv>
#include <cstdint>
#include <iostream>
#include <limits>
#include <string_view>
#include <system_error>

namespace slumber::util {

/// Parses `token` as a full-token unsigned integer in
/// [min_value, max_value] via std::from_chars. On failure prints a
/// diagnostic naming `what` to `err` and returns false.
inline bool parse_uint(std::string_view token, const char* what,
                       std::uint64_t* out, std::uint64_t min_value = 0,
                       std::uint64_t max_value =
                           std::numeric_limits<std::uint64_t>::max(),
                       std::ostream& err = std::cerr) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc::result_out_of_range) {
    err << "error: " << what << ": '" << token
        << "' overflows a 64-bit integer\n";
    return false;
  }
  if (ec != std::errc{} || ptr != token.data() + token.size() ||
      token.empty()) {
    err << "error: " << what << ": '" << token
        << "' is not an unsigned integer\n";
    return false;
  }
  if (value < min_value || value > max_value) {
    err << "error: " << what << ": " << value << " is out of range ["
        << min_value << ", " << max_value << "]\n";
    return false;
  }
  *out = value;
  return true;
}

/// Parses `token` as a full-token probability in [0, 1] via
/// std::from_chars. On failure prints a diagnostic naming `what` to
/// `err` and returns false.
inline bool parse_prob(std::string_view token, const char* what, double* out,
                       std::ostream& err = std::cerr) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size() ||
      token.empty()) {
    err << "error: " << what << ": '" << token << "' is not a number\n";
    return false;
  }
  if (!(value >= 0.0 && value <= 1.0)) {
    err << "error: " << what << ": " << value
        << " is out of range [0, 1]\n";
    return false;
  }
  *out = value;
  return true;
}

}  // namespace slumber::util
