// Deterministic random number generation for reproducible experiments.
//
// Every run in this library is keyed by a single 64-bit seed. Per-node
// streams are derived with SplitMix64 so that adding or removing one
// consumer never perturbs the stream of another (important when comparing
// algorithms on identical topologies). The core generator is
// xoshiro256**, which is small, fast, and passes BigCrush.
#pragma once

#include <cstdint>
#include <limits>

namespace slumber {

/// SplitMix64 step; used for seeding and for stream splitting.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with convenience distributions.
/// Satisfies UniformRandomBitGenerator, so it also works with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x5eed'1e55'c0ffee00ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Lemire's nearly-divisionless method.
  std::uint64_t below(std::uint64_t bound) {
    using u128 = unsigned __int128;
    std::uint64_t x = next();
    u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<u128>(x) * static_cast<u128>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// A fair coin flip (the paper's X_i bits).
  bool coin() { return (next() >> 63) != 0; }

  /// Derives an independent child stream. Deterministic in (this stream's
  /// seed history, `stream_id`), and does not advance this generator.
  Rng split(std::uint64_t stream_id) const {
    std::uint64_t sm = state_[0] ^ (state_[3] + 0x9e3779b97f4a7c15ULL * (stream_id + 1));
    return Rng(splitmix64(sm));
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace slumber
