// Counter-based RNG stream derivation for sharded generation.
//
// Rng::split() derives child streams from a generator's *state*, which
// makes the child depend on how much of the parent has been consumed —
// exactly right for per-node streams inside a simulation, and exactly
// wrong for sharded graph generation, where worker lanes must be able
// to open block b's stream without replaying blocks 0..b-1.
//
// stream_rng() below is the counter-based alternative: the generator
// for stream `stream` under seed `seed` is a pure function of the pair
// (seed, stream). Streams are therefore seekable (open any counter in
// O(1)) and independent of consumption order — lane counts, claim
// order, and interleaving cannot change what any stream yields. The
// sharded G(n, p) builders key one stream per fixed-size vertex block
// on this (see gen::gnp_sharded_csr).
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace slumber::util {

/// Deterministic generator for counter `stream` under `seed`. Two
/// chained SplitMix64 steps mix the pair into a 64-bit key; the Rng
/// constructor expands the key into the xoshiro256** state. Adjacent
/// counters yield decorrelated streams (SplitMix64 is a bijective
/// avalanche mix), and no call here has any global state.
inline Rng stream_rng(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t sm = seed;
  const std::uint64_t seed_key = splitmix64(sm);
  sm = seed_key ^ stream;
  return Rng(splitmix64(sm));
}

}  // namespace slumber::util
