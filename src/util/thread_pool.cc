#include "util/thread_pool.h"

#include <algorithm>

#include "obs/obs.h"

namespace slumber::util {

namespace {
// The pool (if any) whose batch this thread is currently draining.
// parallel_for_index checks it to run nested same-pool calls serially
// inline instead of deadlocking on the outer batch's lanes. Nested
// calls on a *different* pool dispatch normally (that pool's workers
// are idle).
thread_local const ThreadPool* t_draining_pool = nullptr;
}  // namespace

unsigned ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = hardware_threads();
  workers_.reserve(num_threads - 1);
  for (unsigned i = 0; i + 1 < num_threads; ++i) {
    // Lane 0 is the fork-join caller; workers take 1..N-1. The tag is
    // telemetry-only (event attribution in src/obs/).
    workers_.emplace_back([this, i] {
      obs::set_lane(i + 1);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain_batch(const std::function<void(std::size_t)>& fn) {
  const ThreadPool* const outer = t_draining_pool;
  t_draining_pool = this;
  // Busy bracketing feeds the per-lane utilization totals in the obs
  // export footer; the measured duration never leaves the obs layer.
  obs::lane_work_begin();
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= num_items_) break;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      // Poison the cursor so everyone abandons the batch promptly.
      next_.store(num_items_, std::memory_order_relaxed);
      break;
    }
  }
  obs::lane_work_end();
  t_draining_pool = outer;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      fn = job_;
    }
    drain_batch(*fn);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_active_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for_index(
    std::size_t num_items, const std::function<void(std::size_t)>& fn) {
  if (num_items == 0) return;
  if (workers_.empty() || num_items == 1 || t_draining_pool == this) {
    // Serial fast path — also taken by nested calls on the pool this
    // thread is already draining, where dispatching would deadlock
    // (every lane is busy with the outer batch). Identical results by
    // the item-index contract; no CV traffic.
    for (std::size_t i = 0; i < num_items; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    num_items_ = num_items;
    next_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    workers_active_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  drain_batch(fn);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return workers_active_ == 0; });
    job_ = nullptr;
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for_range(
    std::size_t total,
    const std::function<void(std::size_t chunk, std::size_t begin,
                             std::size_t end)>& fn) {
  const std::size_t chunks = num_chunks(total);
  if (chunks == 0) return;
  const std::size_t base = total / chunks;
  const std::size_t rem = total % chunks;
  parallel_for_index(chunks, [&](std::size_t c) {
    // The first `rem` chunks carry one extra item.
    const std::size_t begin = c * base + std::min(c, rem);
    const std::size_t end = begin + base + (c < rem ? 1 : 0);
    fn(c, begin, end);
  });
}

}  // namespace slumber::util
