// The keyed RNG stream-tag registry: every domain-separation tag that
// keys a util::stream_rng draw lives here, as a named constant.
//
// Why a registry: a keyed stream's identity is (seed, stream), and the
// stream id is built by folding a 64-bit *tag* with the faulted /
// generated entity (edge id, node id, round, batch...). Two subsystems
// picking tags independently could collide, at which point their draws
// become correlated — e.g. a message-loss draw and a crash draw for the
// same (node, round) would flip together, silently biasing the paper's
// awake-complexity numbers while every determinism test still passes
// (the bug is *reproducible*, just wrong). Hand-picked hex constants in
// scattered files (the pre-PR-9 state of fault/fault.h) had no
// collision check at all.
//
// Registry rules (machine-checked by slumber-d6 in
// tools/lint/ast_checks.py, and by the static_assert below):
//
//   1. Every tag is declared in THIS file, in the strict format
//          // SLUMBER-STREAM-TAG(<name>): <what the stream draws>
//          inline constexpr std::uint64_t k<Name>Tag = 0x....ULL;
//      and is listed in kAllStreamTags.
//   2. Tags are pairwise distinct in their HIGH 32 bits. Stream ids
//      mix the tag with entity keys whose entropy lives in the low
//      bits (node ids, rounds), so the high half is the part that must
//      carry the domain separation on its own.
//   3. Every util::stream_rng call site under src/ either derives its
//      stream argument from a registered tag, or sits on a documented
//      block-counter discipline (a dense counter over disjoint work
//      blocks, e.g. the sharded G(n, p) generator's per-block streams)
//      marked with an adjacent
//          // SLUMBER-STREAM-DISCIPLINE(block-counter): <why sound>
//      annotation. Anything else is a slumber-d6 finding.
//
// Adding a tag: pick a fresh high-32 prefix (grep this file), keep the
// low half as a small serial, add the annotation line, append it to
// kAllStreamTags. The static_assert fails the build on a collision
// before the linter ever runs.
#pragma once

#include <cstdint>

namespace slumber::util::stream_tags {

// SLUMBER-STREAM-TAG(loss): symmetric per-(edge, round) message-loss
// draws (fault/fault.h, FaultState::link_down).
inline constexpr std::uint64_t kLossTag = 0x10557AD0'5EED'0001ULL;

// SLUMBER-STREAM-TAG(crash): per-(node, round) fail-stop draws
// (fault/fault.h, FaultState::crashes_now).
inline constexpr std::uint64_t kCrashTag = 0xC4A54AD0'5EED'0002ULL;

// SLUMBER-STREAM-TAG(churn): per-(node, batch) membership draws of the
// post-run churn stream (fault/churn.cc).
inline constexpr std::uint64_t kChurnTag = 0xC4024AD0'5EED'0003ULL;

// SLUMBER-STREAM-TAG(repair): per-node repair priorities of the
// incremental MIS repair (fault/churn.cc, prio/beats).
inline constexpr std::uint64_t kRepairTag = 0x4EBA14D0'5EED'0004ULL;

// SLUMBER-STREAM-TAG(burst): per-(edge, epoch) Gilbert-Elliott channel
// regeneration + state draws of the burst-loss model (fault/fault.h,
// FaultState::burst_bad).
inline constexpr std::uint64_t kBurstTag = 0xB5257AD0'5EED'0005ULL;

// SLUMBER-STREAM-TAG(live-churn): per-(node, round) mid-run leave draws
// plus the rejoin-downtime draw taken from the same stream at leave
// time (fault/fault.h, FaultState::live_leave).
inline constexpr std::uint64_t kLiveChurnTag = 0x11FEC4D0'5EED'0006ULL;

// SLUMBER-STREAM-TAG(recover): per-(node, crash round) downtime draws
// of crash recovery (fault/fault.h, FaultState::recover_downtime).
inline constexpr std::uint64_t kRecoverTag = 0x4EC0FED0'5EED'0007ULL;

/// Every registered tag, for the pairwise-distinctness proof below and
/// for tooling. Append when registering a new tag.
inline constexpr std::uint64_t kAllStreamTags[] = {
    kLossTag,
    kCrashTag,
    kChurnTag,
    kRepairTag,
    kBurstTag,
    kLiveChurnTag,
    kRecoverTag,
};

namespace detail {

/// Compile-time proof of registry rule 2: all registered tags are
/// pairwise distinct in their high 32 bits.
constexpr bool high32_pairwise_distinct() {
  constexpr std::size_t n = sizeof(kAllStreamTags) / sizeof(kAllStreamTags[0]);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if ((kAllStreamTags[i] >> 32) == (kAllStreamTags[j] >> 32)) return false;
    }
  }
  return true;
}

static_assert(high32_pairwise_distinct(),
              "stream-tag registry collision: two registered tags share "
              "their high 32 bits; pick a fresh prefix (see the registry "
              "rules at the top of util/stream_tags.h)");

}  // namespace detail

}  // namespace slumber::util::stream_tags
