// A small fixed-size fork-join thread pool for embarrassingly parallel
// trial batches.
//
// The pool is deliberately work-stealing-free: one shared atomic cursor
// hands out item indices, the calling thread participates, and
// parallel_for_index() blocks until every item is done. Callers must
// make the work for item i depend only on i (never on claim order or
// thread identity); under that contract results are deterministic for
// any pool size, including 1.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slumber::util {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` total lanes of execution (the
  /// calling thread counts as one, so `num_threads - 1` workers are
  /// spawned). 0 means hardware_threads(); 1 means fully serial.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes of execution, including the caller. Always >= 1.
  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(i) once for every i in [0, num_items), sharded across the
  /// pool; the calling thread participates. Blocks until all items are
  /// done, then rethrows the first exception thrown by fn (remaining
  /// unclaimed items are abandoned). Not reentrant: fn must not call
  /// parallel_for_index on the same pool.
  void parallel_for_index(std::size_t num_items,
                          const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static unsigned hardware_threads();

 private:
  void worker_loop();
  // Claims and runs items until the batch is exhausted or poisoned.
  void drain_batch(const std::function<void(std::size_t)>& fn);

  std::mutex mutex_;
  std::condition_variable work_cv_;   // signals a new batch (generation_)
  std::condition_variable done_cv_;   // signals workers_active_ == 0
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t num_items_ = 0;
  std::atomic<std::size_t> next_{0};  // item claim cursor
  std::size_t workers_active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace slumber::util
