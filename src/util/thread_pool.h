// A small fixed-size fork-join thread pool for embarrassingly parallel
// trial batches and intra-trial range sharding.
//
// The pool is deliberately work-stealing-free: one shared atomic cursor
// hands out item indices, the calling thread participates, and
// parallel_for_index() blocks until every item is done. Callers must
// make the work for item i depend only on i (never on claim order or
// thread identity); under that contract results are deterministic for
// any pool size, including 1.
//
// parallel_for_range() layers contiguous range sharding on top: [0,
// total) is split into at most num_threads() balanced chunks whose
// boundaries depend only on (total, num_threads()), so per-chunk
// partial accumulators can be reduced in chunk index order for bitwise
// reproducible results at every thread count (the bulk execution
// engine's awake-set scans are built on this).
//
// Reentrancy: a nested parallel_for_index / parallel_for_range on the
// pool a thread is already draining would deadlock (the outer batch
// holds every lane), so nested calls are detected via a thread-local
// marker and run serially inline on the calling thread — which is
// deterministic and correct by the item-index contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slumber::util {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` total lanes of execution (the
  /// calling thread counts as one, so `num_threads - 1` workers are
  /// spawned). 0 means hardware_threads(); 1 means fully serial.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes of execution, including the caller. Always >= 1.
  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(i) once for every i in [0, num_items), sharded across the
  /// pool; the calling thread participates. Blocks until all items are
  /// done, then rethrows the first exception thrown by fn (remaining
  /// unclaimed items are abandoned). An empty batch returns immediately
  /// and a 1-item batch runs inline on the caller — neither touches the
  /// condition variables. A nested call from inside fn on the same pool
  /// runs serially inline instead of deadlocking.
  void parallel_for_index(std::size_t num_items,
                          const std::function<void(std::size_t)>& fn);

  /// Number of contiguous chunks parallel_for_range splits `total`
  /// items into: min(num_threads(), total). Depends only on the pool
  /// size and `total`, so callers can pre-size per-chunk accumulator
  /// arrays before dispatch.
  std::size_t num_chunks(std::size_t total) const {
    const std::size_t lanes = num_threads();
    return total < lanes ? total : lanes;
  }

  /// Runs fn(chunk, begin, end) for every chunk c in [0,
  /// num_chunks(total)), where [begin, end) are contiguous, disjoint,
  /// cover [0, total), appear in index order (chunk c+1 starts where
  /// chunk c ends), and differ in size by at most one item. Chunks run
  /// in parallel (the caller participates); boundaries are a pure
  /// function of (total, num_threads()). For order-sensitive
  /// reductions, accumulate per-chunk partials and merge them in chunk
  /// index order after this returns.
  void parallel_for_range(
      std::size_t total,
      const std::function<void(std::size_t chunk, std::size_t begin,
                               std::size_t end)>& fn);

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static unsigned hardware_threads();

 private:
  void worker_loop();
  // Claims and runs items until the batch is exhausted or poisoned.
  // Marks this thread as draining `this` for the duration (reentrancy
  // detection).
  void drain_batch(const std::function<void(std::size_t)>& fn);

  std::mutex mutex_;
  std::condition_variable work_cv_;   // signals a new batch (generation_)
  std::condition_variable done_cv_;   // signals workers_active_ == 0
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t num_items_ = 0;
  std::atomic<std::size_t> next_{0};  // item claim cursor
  std::size_t workers_active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace slumber::util
