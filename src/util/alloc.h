// Default-init vectors and first-touch placement helpers for the 10^8
// regime.
//
// Two problems show up once per-node arrays reach gigabytes:
//
//  1. std::vector<T>::resize value-initializes, so a fresh 3 GB
//     adjacency array is memset serially before the first real write —
//     wasted bandwidth when every slot is about to be overwritten.
//  2. Whichever thread performs that first write owns the page under
//     the kernel's first-touch NUMA policy. A serial zero-fill lands
//     every page on one node, and the lanes that later scan "their"
//     contiguous slice all pull across the interconnect.
//
// PodVector<T> is std::vector with an allocator whose value-less
// construct() default-initializes (a no-op for trivial T), so resize()
// leaves memory untouched and the *real* writer of each page becomes
// its first toucher. sharded_fill() is the deliberate version: it fills
// a PodVector in the same contiguous chunks ThreadPool::
// parallel_for_range will later hand to the scanning lanes, so pages
// land next to the cores that will read them. Content is identical for
// every lane count (each index is written exactly once with the same
// value); only page placement differs.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "util/thread_pool.h"

namespace slumber::util {

/// std::allocator whose argument-less construct() default-initializes
/// instead of value-initializing: resize() on trivial element types
/// allocates without touching the memory. All other constructions
/// (copy, fill, initializer-list) behave exactly like std::vector.
template <typename T>
class DefaultInitAllocator : public std::allocator<T> {
 public:
  using std::allocator<T>::allocator;

  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };

  template <typename U>
  void construct(U* p) {
    ::new (static_cast<void*>(p)) U;
  }

  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

/// Vector of trivially-copyable elements with default-init resize. The
/// graph CSR arrays and the bulk engine's per-node arrays use this so
/// first-touch initialization can be sharded (or skipped entirely when
/// every slot is about to be written).
template <typename T>
using PodVector = std::vector<T, DefaultInitAllocator<T>>;

/// Returns a PodVector of `size` copies of `value`. With a pool, the
/// fill shards into ThreadPool::parallel_for_range's contiguous chunks
/// so each lane first-touches the slice it will later scan; without
/// one, the fill is a plain serial loop. Contents are bitwise identical
/// either way.
template <typename T>
PodVector<T> sharded_fill(std::size_t size, T value, ThreadPool* pool) {
  PodVector<T> out;
  out.resize(size);  // default-init: no page is touched yet
  T* data = out.data();
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->parallel_for_range(
        size, [data, value](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) data[i] = value;
        });
  } else {
    for (std::size_t i = 0; i < size; ++i) data[i] = value;
  }
  return out;
}

}  // namespace slumber::util
