#include "core/rank.h"

#include <algorithm>
#include <numeric>

namespace slumber::core {

int compare_k_rank(const std::vector<std::uint8_t>& bits_u,
                   const std::vector<std::uint8_t>& bits_v, std::uint32_t k) {
  for (std::uint32_t i = k; i >= 1; --i) {
    if (bits_u[i] != bits_v[i]) return bits_u[i] < bits_v[i] ? -1 : 1;
  }
  return 0;
}

std::vector<VertexId> greedy_order_from_bits(const CoinBits& bits,
                                             std::uint32_t levels) {
  std::vector<VertexId> order(bits.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](VertexId a, VertexId b) {
                     const int cmp = compare_k_rank(bits[a], bits[b], levels);
                     if (cmp != 0) return cmp > 0;  // decreasing rank
                     return a < b;
                   });
  return order;
}

std::vector<VertexId> greedy_order_from_bits_and_base(
    const CoinBits& bits, std::uint32_t levels,
    const std::vector<std::uint64_t>& base_rank) {
  std::vector<VertexId> order(bits.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const int cmp = compare_k_rank(bits[a], bits[b], levels);
    if (cmp != 0) return cmp > 0;
    if (base_rank[a] != base_rank[b]) return base_rank[a] > base_rank[b];
    return a > b;  // greedy base tie-break: larger (rank, id) wins first
  });
  return order;
}

std::vector<std::uint8_t> lex_first_mis(const Graph& g,
                                        const std::vector<VertexId>& order) {
  std::vector<std::uint8_t> in_mis(g.num_vertices(), 0);
  std::vector<std::uint8_t> blocked(g.num_vertices(), 0);
  for (VertexId v : order) {
    if (blocked[v]) continue;
    in_mis[v] = 1;
    for (VertexId u : g.neighbors(v)) blocked[u] = 1;
  }
  return in_mis;
}

}  // namespace slumber::core
