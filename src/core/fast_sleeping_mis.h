// Algorithm 2 of the paper: the Fast Sleeping MIS algorithm.
//
// Identical to Algorithm 1 except that the recursion tree is truncated
// at depth K2 = ceil(ell * log log n) with ell = 1/log2(4/3) ~ 2.41
// (paper Equation 2), and each base case is solved by the
// parallel/distributed randomized greedy MIS algorithm
// (Coppersmith-Raghavan-Tompa / Blelloch-Fineman-Shun / Fischer-Noever)
// run for *exactly* R = Theta(log n) rounds so that every base cell
// takes the same wall time and the recursion stays synchronized.
//
// By Lemma 7 only ~n/log n nodes reach the base level in expectation, so
// charging each of them O(log n) awake rounds keeps the node-averaged
// awake complexity at O(1), while the makespan drops from Theta(n^3) to
// O(log^{ell+1} n) = O(log^3.41 n) (Theorem 2).
//
// The greedy base case draws one random rank per node (once); each
// 2-round iteration lets every active node whose (rank, id) beats all
// active neighbors join the MIS and announce; receivers of an
// announcement are eliminated. Decided nodes sleep out the rest of the
// fixed budget. This computes the lexicographically-first MIS of the
// cell w.r.t. decreasing (rank, id) -- the fact behind Corollary 1.
#pragma once

#include "core/instrumentation.h"
#include "sim/network.h"

namespace slumber::core {

struct FastSleepingMisOptions {
  /// Truncated depth K2; 0 means the paper's ceil(ell * log2 log2 n).
  std::uint32_t levels = 0;
  /// P[X_i = 1]; 1/2 in the paper.
  double coin_bias = 0.5;
  /// The constant c in the fixed greedy budget of c*log n rounds.
  double base_c = 6.0;
  /// Explicit base budget in rounds (even, >= 2); 0 means
  /// greedy_base_rounds(n, base_c).
  std::uint64_t base_rounds = 0;
};

/// Protocol factory for Algorithm 2. Output 1 = in MIS, 0 = not.
sim::Protocol fast_sleeping_mis(FastSleepingMisOptions options = {},
                                RecursionTrace* trace = nullptr);

/// The rank width (bits) used by the greedy base case for a network of
/// size n: 3 log2 n bits, CONGEST-compliant and collision-free w.h.p.
/// (ties are broken by node id deterministically either way).
std::uint32_t greedy_rank_bits(std::uint64_t n);

}  // namespace slumber::core
