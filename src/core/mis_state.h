// Shared per-node MIS state for the sleeping algorithms.
#pragma once

#include <cstdint>
#include <vector>

namespace slumber::core {

/// The tri-state v.inMIS variable of the paper. Numeric values match the
/// payload encoding of sim::Message::status.
enum class MisValue : std::uint64_t {
  kFalse = 0,
  kTrue = 1,
  kUnknown = 2,
};

struct MisState {
  MisValue value = MisValue::kUnknown;
  /// Coin bits X_1..X_K (index 0 unused).
  std::vector<std::uint8_t> bits;
  /// Greedy rank for Algorithm 2's base case.
  std::uint64_t base_rank = 0;
};

}  // namespace slumber::core
