// k-ranks (paper Definition 1) and the lexicographically-first MIS order.
//
// For a node v with coin bits X_K..X_1, the k-rank is the sequence
// r_k(v) = (X_k, X_{k-1}, ..., X_1, -1). Lemma 4 shows Algorithm 1 adds v
// to the MIS iff every neighbor with strictly larger k-rank ends up out,
// and Corollary 1 concludes that the algorithm computes exactly the
// lexicographically-first MIS with respect to the random order "by
// decreasing K-rank". This header provides that order so tests and the
// E13 bench can check the equivalence against a sequential greedy.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace slumber::core {

/// Per-node coin bits: bits[v][i] is X_i of node v, for i in [1, K]
/// (index 0 unused).
using CoinBits = std::vector<std::vector<std::uint8_t>>;

/// Lexicographic comparison of k-ranks: returns -1/0/+1 as
/// r_k(u) </==/> r_k(v). The trailing sentinel -1 never differs, so it
/// is ignored.
int compare_k_rank(const std::vector<std::uint8_t>& bits_u,
                   const std::vector<std::uint8_t>& bits_v, std::uint32_t k);

/// The processing order of the equivalent sequential greedy MIS:
/// vertices sorted by lexicographically *decreasing* K-rank (ties —
/// which occur with probability O(n^-1) — broken by vertex id, matching
/// the simulator's deterministic tie-break).
std::vector<VertexId> greedy_order_from_bits(const CoinBits& bits,
                                             std::uint32_t levels);

/// The processing order of the equivalent greedy for Algorithm 2:
/// primary key decreasing K2-rank, secondary key decreasing
/// (base_rank, id) inside each base cell.
std::vector<VertexId> greedy_order_from_bits_and_base(
    const CoinBits& bits, std::uint32_t levels,
    const std::vector<std::uint64_t>& base_rank);

/// Sequential greedy MIS: process vertices in `order`; each joins the
/// MIS iff no earlier neighbor joined. This is the "lexicographically
/// first MIS" of Coppersmith et al. for that order.
std::vector<std::uint8_t> lex_first_mis(const Graph& g,
                                        const std::vector<VertexId>& order);

}  // namespace slumber::core
