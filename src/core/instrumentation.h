// Optional instrumentation for the sleeping MIS algorithms.
//
// The benches validating Lemma 2 / Lemma 3 (pruning), Lemma 7 (geometric
// level decay) and Corollary 1 (lexicographically-first equivalence)
// need to observe the recursion from the outside: which call each node
// participated in, the per-call left/right participation, the coin bits
// X_i and the base-case greedy ranks. A RecursionTrace pointer can be
// passed to the protocol factories to collect exactly that; it costs a
// few map updates per call and nothing when null.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "core/rank.h"

namespace slumber::core {

/// Statistics for a single call of SleepingMISRecursive, identified by
/// (k, path): k is the frame parameter, path the left(0)/right(1)
/// choices from the root, one bit per level.
struct CallStats {
  std::uint64_t participants = 0;    // |U|
  std::uint64_t left = 0;            // |L|: entered the left recursion
  std::uint64_t right = 0;           // |R|: entered the right recursion
  std::uint64_t isolated_joins = 0;  // joined at first isolated detection
  std::uint64_t first_round = std::numeric_limits<std::uint64_t>::max();
};

struct RecursionTrace {
  std::uint32_t levels = 0;  // K of the traced run
  CoinBits bits;             // bits[v][i] = X_i of node v
  std::vector<std::uint64_t> base_rank;  // Algorithm 2 greedy ranks
  std::map<std::pair<std::uint32_t, std::uint64_t>, CallStats> calls;

  /// Z_k of Lemma 7: total number of nodes over all calls with
  /// parameter k. Index k in [0, levels].
  std::vector<std::uint64_t> z_by_level() const {
    std::vector<std::uint64_t> z(levels + 1, 0);
    for (const auto& [key, stats] : calls) z[key.first] += stats.participants;
    return z;
  }

  /// Sum of |L| (resp. |R|) over all calls with parameter k.
  struct LevelParticipation {
    std::uint64_t u_total = 0;
    std::uint64_t left_total = 0;
    std::uint64_t right_total = 0;
  };
  LevelParticipation level_participation(std::uint32_t k) const {
    LevelParticipation p;
    for (const auto& [key, stats] : calls) {
      if (key.first != k) continue;
      p.u_total += stats.participants;
      p.left_total += stats.left;
      p.right_total += stats.right;
    }
    return p;
  }
};

}  // namespace slumber::core
