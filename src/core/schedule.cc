#include "core/schedule.h"

#include <cmath>
#include <sstream>

namespace slumber::core {

std::uint64_t schedule_duration(std::uint32_t k, std::uint64_t base) {
  // T(k) = 2^k (base + 3) - 3.
  return ((base + 3) << k) - 3;
}

std::uint32_t recursion_depth(std::uint64_t n) {
  if (n <= 1) return 0;
  // K = ceil(3 log2 n): smallest K with 2^K >= n^3, computed exactly.
  const unsigned __int128 cube =
      static_cast<unsigned __int128>(n) * n * n;
  std::uint32_t k = 0;
  unsigned __int128 power = 1;
  while (power < cube) {
    power <<= 1;
    ++k;
  }
  return k;
}

std::uint32_t fast_recursion_depth(std::uint64_t n) {
  if (n <= 2) return 1;
  const double log_n = std::log2(static_cast<double>(n));
  const double value = kEll * std::log2(log_n);
  const auto k = static_cast<std::int64_t>(std::ceil(value - 1e-9));
  return k < 1 ? 1u : static_cast<std::uint32_t>(k);
}

std::uint64_t greedy_base_rounds(std::uint64_t n, double c) {
  const double log_n = std::log2(static_cast<double>(n < 2 ? 2 : n));
  auto rounds = static_cast<std::uint64_t>(std::ceil(c * log_n));
  if (rounds < 2) rounds = 2;
  if (rounds % 2 != 0) ++rounds;  // greedy iterations are 2 rounds each
  return rounds;
}

namespace {

// Figure 1 convention: leaf occupies a single slot (finish == reach);
// an interior vertex reached at t has
//   left.reach = t + 1, right.reach = left.finish + 2,
//   finish = right.finish + 1.
std::uint64_t build_figure1(std::uint32_t k, std::uint32_t depth,
                            std::uint64_t path, std::uint64_t reach,
                            std::vector<TreeNode>& out) {
  TreeNode node{k, depth, path, reach, 0};
  const std::size_t index = out.size();
  out.push_back(node);
  if (k == 0) {
    out[index].finish = reach;
    return reach;
  }
  const std::uint64_t left_finish =
      build_figure1(k - 1, depth + 1, path << 1, reach + 1, out);
  const std::uint64_t right_finish = build_figure1(
      k - 1, depth + 1, (path << 1) | 1, left_finish + 2, out);
  out[index].finish = right_finish + 1;
  return out[index].finish;
}

// Execution convention: frame k reached at round t occupies the window
// [t, t + T(k) - 1]; its first isolated-node-detection round is t; the
// left child starts at t+1; the right child at t + T(k-1) + 3.
void build_execution(std::uint32_t k, std::uint32_t depth, std::uint64_t path,
                     std::uint64_t reach, std::uint64_t base,
                     std::vector<TreeNode>& out) {
  TreeNode node{k, depth, path, reach,
                reach + schedule_duration(k, base) - 1};
  out.push_back(node);
  if (k == 0) return;
  const std::uint64_t child_span = schedule_duration(k - 1, base);
  build_execution(k - 1, depth + 1, path << 1, reach + 1, base, out);
  build_execution(k - 1, depth + 1, (path << 1) | 1,
                  reach + 1 + child_span + 2, base, out);
}

}  // namespace

std::vector<TreeNode> figure1_tree(std::uint32_t levels) {
  std::vector<TreeNode> out;
  build_figure1(levels, 0, 0, 1, out);
  return out;
}

std::vector<TreeNode> execution_tree(std::uint32_t levels,
                                     std::uint64_t base) {
  std::vector<TreeNode> out;
  build_execution(levels, 0, 0, 1, base, out);
  return out;
}

std::string render_tree(const std::vector<TreeNode>& tree) {
  std::ostringstream out;
  for (const TreeNode& node : tree) {
    for (std::uint32_t i = 0; i < node.depth; ++i) out << "  ";
    out << "(k=" << node.k << ") " << node.reach << ", " << node.finish
        << '\n';
  }
  return out.str();
}

}  // namespace slumber::core
