// The recursion schedule of Algorithms 1 and 2.
//
// SleepingMISRecursive(k) takes a fixed, input-independent number of
// rounds T(k): this is what lets non-participating nodes sleep through a
// sibling recursive call and wake exactly when it returns (paper
// Section 3, "One important technical issue is synchronization").
//
//   T(0) = B                 (base-case duration; 0 for Algorithm 1,
//                             the fixed greedy budget for Algorithm 2)
//   T(k) = 2 T(k-1) + 3      (two recursive calls + 3 communication
//                             rounds: first isolated-node detection,
//                             synchronization, second detection)
//
// which solves to T(k) = 2^k (B + 3) - 3; with B = 0 this is the paper's
// T(k) = 3(2^k - 1) (Lemma 10).
//
// This header also reproduces the labeling convention of the paper's
// Figure 1 (a K=3 recursion tree whose vertices carry first-reach /
// finish times 1,29 / 2,14 / 16,28 / ...), which treats the base case as
// occupying one visible time slot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace slumber::core {

/// ell = 1 / log2(4/3): the truncation-depth constant of Algorithm 2
/// (paper Equation 2). log(n)^ell decay of (3/4)^depth reaches 1/log n.
inline constexpr double kEll = 2.4094208396532095;

/// T(k) with base-case duration `base`. T(0)=base, T(k)=2T(k-1)+3.
std::uint64_t schedule_duration(std::uint32_t k, std::uint64_t base = 0);

/// Recursion depth of Algorithm 1: K = ceil(3 log2 n) (0 when n <= 1).
std::uint32_t recursion_depth(std::uint64_t n);

/// Recursion depth of Algorithm 2: K2 = max(1, ceil(ell * log2 log2 n)).
std::uint32_t fast_recursion_depth(std::uint64_t n);

/// Fixed round budget of the greedy base case in Algorithm 2: the
/// smallest even number >= c * log2 n (and >= 2). The paper requires the
/// greedy algorithm to run for "exactly c log n rounds for some large
/// (but fixed) constant c".
std::uint64_t greedy_base_rounds(std::uint64_t n, double c = 6.0);

/// A vertex of the recursion tree with the paper's Figure-1 time labels.
struct TreeNode {
  std::uint32_t k = 0;        // frame parameter (depth from leaves)
  std::uint32_t depth = 0;    // depth from the root
  std::uint64_t path = 0;     // left/right choices from the root (bit per level)
  std::uint64_t reach = 0;    // first time the vertex is reached
  std::uint64_t finish = 0;   // time computation finishes at the vertex
};

/// Full recursion tree of depth K under Figure 1's convention (base case
/// occupies one time slot, root reached at time 1). Pre-order.
std::vector<TreeNode> figure1_tree(std::uint32_t levels);

/// Same tree under the *execution* convention used by the simulator
/// (base case duration `base` rounds; reach = round of the frame's first
/// communication round; finish = last round of the frame's window).
std::vector<TreeNode> execution_tree(std::uint32_t levels,
                                     std::uint64_t base = 0);

/// ASCII rendering of a recursion tree ("(reach, finish)" labels),
/// mirroring the paper's Figure 1.
std::string render_tree(const std::vector<TreeNode>& tree);

}  // namespace slumber::core
