// Algorithm 1 of the paper: the Sleeping MIS algorithm.
//
// Each node draws K = ceil(3 log2 n) fair coin bits X_1..X_K up front
// and runs SleepingMISRecursive(K). A call with parameter k >= 1 spends
// exactly T(k) = 3(2^k - 1) rounds:
//
//   1 round   first isolated-node detection (join MIS if no neighbor in
//             the current subgraph G[U] is awake to answer)
//   T(k-1)    left recursion: nodes with X_k = 1 recurse; everyone else
//             SLEEPS for exactly T(k-1) rounds
//   1 round   synchronization step: statuses are exchanged; undecided
//             nodes with an MIS neighbor are eliminated
//   1 round   second isolated-node detection: an undecided node all of
//             whose G[U]-neighbors are eliminated joins the MIS
//   T(k-1)    right recursion: still-undecided nodes recurse; everyone
//             else sleeps
//
// Guarantees (Theorem 1): the output is an MIS w.h.p.; expected O(1)
// node-averaged awake complexity; O(log n) worst-case awake complexity;
// O(n^3) worst-case round complexity.
//
// The subgraph G[U] never needs to be materialized: only the nodes of
// the current call are awake during its rounds, so a broadcast reaches
// exactly the G[U]-neighbors -- the sleeping model does the induction.
#pragma once

#include "core/instrumentation.h"
#include "sim/network.h"

namespace slumber::core {

struct SleepingMisOptions {
  /// Recursion depth K; 0 means the paper's ceil(3 log2 n).
  std::uint32_t levels = 0;
  /// P[X_i = 1]. The paper uses a fair coin (1/2); other values are for
  /// the E11 ablation (left load ~ p|U| vs right load ~ (1-p)|U|/2).
  double coin_bias = 0.5;
};

/// Protocol factory for Algorithm 1. Each node decides output 1 (in the
/// MIS) or 0. `trace`, if non-null, must outlive the run and collects
/// per-call participation and the coin bits (see instrumentation.h).
sim::Protocol sleeping_mis(SleepingMisOptions options = {},
                           RecursionTrace* trace = nullptr);

}  // namespace slumber::core
