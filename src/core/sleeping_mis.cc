#include "core/sleeping_mis.h"

#include <algorithm>

#include "core/mis_state.h"
#include "core/schedule.h"

namespace slumber::core {
namespace {

sim::Task recurse(sim::Context& ctx, MisState& st, std::uint32_t k,
                  std::uint64_t path, RecursionTrace* trace) {
  if (trace != nullptr) ++trace->calls[{k, path}].participants;

  if (k == 0) {  // base case (lines 9-12): w.h.p. |U| <= 1 here
    if (st.value == MisValue::kUnknown) {
      st.value = MisValue::kTrue;
      ctx.decide(1);
    }
    co_return;
  }

  // First isolated-node detection (lines 13-16), 1 round. Only the nodes
  // of this call are awake now, so an empty inbox means "isolated in
  // G[U]".
  sim::Inbox inbox = co_await ctx.broadcast(sim::Message::hello());
  if (trace != nullptr) {
    auto& call = trace->calls[{k, path}];
    call.first_round = std::min(call.first_round, ctx.round());
    if (inbox.empty() && st.value == MisValue::kUnknown) {
      ++call.isolated_joins;
    }
  }
  if (inbox.empty() && st.value == MisValue::kUnknown) {
    st.value = MisValue::kTrue;
    ctx.decide(1);
  }

  const std::uint64_t child_span = schedule_duration(k - 1);

  // Left recursion (lines 17-21).
  if (st.value == MisValue::kUnknown && st.bits[k] == 1) {
    if (trace != nullptr) ++trace->calls[{k, path}].left;
    co_await recurse(ctx, st, k - 1, path << 1, trace);
  } else {
    ctx.sleep(child_span);
  }

  // Synchronization step / elimination (lines 22-25), 1 round.
  inbox = co_await ctx.broadcast(
      sim::Message::status(static_cast<std::uint64_t>(st.value)));
  if (st.value == MisValue::kUnknown) {
    for (const sim::Received& r : inbox) {
      if (r.msg.kind == sim::MsgKind::kStatus &&
          r.msg.payload_a == static_cast<std::uint64_t>(MisValue::kTrue)) {
        st.value = MisValue::kFalse;
        ctx.decide(0);
        break;
      }
    }
  }

  // Second isolated-node detection (lines 26-29), 1 round.
  inbox = co_await ctx.broadcast(
      sim::Message::status(static_cast<std::uint64_t>(st.value)));
  if (st.value == MisValue::kUnknown) {
    const bool all_false = std::all_of(
        inbox.begin(), inbox.end(), [](const sim::Received& r) {
          return r.msg.kind == sim::MsgKind::kStatus &&
                 r.msg.payload_a == static_cast<std::uint64_t>(MisValue::kFalse);
        });
    if (all_false) {
      st.value = MisValue::kTrue;
      ctx.decide(1);
    }
  }

  // Right recursion (lines 30-34).
  if (st.value == MisValue::kUnknown) {
    if (trace != nullptr) ++trace->calls[{k, path}].right;
    co_await recurse(ctx, st, k - 1, (path << 1) | 1, trace);
  } else {
    ctx.sleep(child_span);
  }
}

sim::Task node_main(sim::Context& ctx, SleepingMisOptions options,
                    RecursionTrace* trace) {
  MisState st;
  const std::uint32_t levels =
      options.levels != 0 ? options.levels : recursion_depth(ctx.n());
  st.bits.assign(levels + 1, 0);
  for (std::uint32_t i = 1; i <= levels; ++i) {
    st.bits[i] = ctx.rng().bernoulli(options.coin_bias) ? 1 : 0;
  }
  if (trace != nullptr) {
    trace->levels = levels;
    if (trace->bits.size() != ctx.n()) trace->bits.resize(ctx.n());
    trace->bits[ctx.id()] = st.bits;
  }
  co_await recurse(ctx, st, levels, 0, trace);
}

}  // namespace

sim::Protocol sleeping_mis(SleepingMisOptions options, RecursionTrace* trace) {
  return [options, trace](sim::Context& ctx) {
    return node_main(ctx, options, trace);
  };
}

}  // namespace slumber::core
