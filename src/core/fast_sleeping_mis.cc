#include "core/fast_sleeping_mis.h"

#include <algorithm>
#include <bit>

#include "core/mis_state.h"
#include "core/schedule.h"

namespace slumber::core {

std::uint32_t greedy_rank_bits(std::uint64_t n) {
  const auto log_n = static_cast<std::uint32_t>(
      std::bit_width(std::max<std::uint64_t>(n, 2) - 1));
  return std::min<std::uint32_t>(3 * std::max<std::uint32_t>(log_n, 1), 48);
}

namespace {

/// Strict total order on active nodes: (rank, id) lexicographic.
bool beats(std::uint64_t rank_a, std::uint64_t id_a, std::uint64_t rank_b,
           std::uint64_t id_b) {
  return rank_a != rank_b ? rank_a > rank_b : id_a > id_b;
}

// DistributedGreedyMIS (paper Algorithm 2, line 10): randomized greedy
// run for exactly `budget` rounds. Decided nodes sleep out the
// remainder so the cell occupies a fixed window.
sim::Task greedy_base(sim::Context& ctx, MisState& st, std::uint64_t budget,
                      std::uint32_t rank_bits) {
  std::uint64_t used = 0;
  while (used + 2 <= budget && st.value == MisValue::kUnknown) {
    sim::Inbox inbox =
        co_await ctx.broadcast(sim::Message::rank(st.base_rank, rank_bits));
    ++used;
    bool win = true;
    for (const sim::Received& r : inbox) {
      if (r.msg.kind == sim::MsgKind::kRank &&
          beats(r.msg.payload_a, r.from, st.base_rank, ctx.id())) {
        win = false;
        break;
      }
    }
    if (win) {
      co_await ctx.broadcast(sim::Message::in_mis());
      ++used;
      st.value = MisValue::kTrue;
      ctx.decide(1);
    } else {
      sim::Inbox announcements = co_await ctx.listen();
      ++used;
      for (const sim::Received& r : announcements) {
        if (r.msg.kind == sim::MsgKind::kInMis) {
          st.value = MisValue::kFalse;
          ctx.decide(0);
          break;
        }
      }
    }
  }
  // Fixed-duration synchronization: the base case always consumes
  // exactly `budget` rounds of wall time.
  ctx.sleep(budget - used);
}

sim::Task recurse(sim::Context& ctx, MisState& st, std::uint32_t k,
                  std::uint64_t path, std::uint64_t base_budget,
                  std::uint32_t rank_bits, RecursionTrace* trace) {
  if (trace != nullptr) ++trace->calls[{k, path}].participants;

  if (k == 0) {
    co_await greedy_base(ctx, st, base_budget, rank_bits);
    co_return;
  }

  // First isolated-node detection, 1 round.
  sim::Inbox inbox = co_await ctx.broadcast(sim::Message::hello());
  if (trace != nullptr) {
    auto& call = trace->calls[{k, path}];
    call.first_round = std::min(call.first_round, ctx.round());
    if (inbox.empty() && st.value == MisValue::kUnknown) {
      ++call.isolated_joins;
    }
  }
  if (inbox.empty() && st.value == MisValue::kUnknown) {
    st.value = MisValue::kTrue;
    ctx.decide(1);
  }

  const std::uint64_t child_span = schedule_duration(k - 1, base_budget);

  // Left recursion.
  if (st.value == MisValue::kUnknown && st.bits[k] == 1) {
    if (trace != nullptr) ++trace->calls[{k, path}].left;
    co_await recurse(ctx, st, k - 1, path << 1, base_budget, rank_bits, trace);
  } else {
    ctx.sleep(child_span);
  }

  // Synchronization step / elimination, 1 round.
  inbox = co_await ctx.broadcast(
      sim::Message::status(static_cast<std::uint64_t>(st.value)));
  if (st.value == MisValue::kUnknown) {
    for (const sim::Received& r : inbox) {
      if (r.msg.kind == sim::MsgKind::kStatus &&
          r.msg.payload_a == static_cast<std::uint64_t>(MisValue::kTrue)) {
        st.value = MisValue::kFalse;
        ctx.decide(0);
        break;
      }
    }
  }

  // Second isolated-node detection, 1 round.
  inbox = co_await ctx.broadcast(
      sim::Message::status(static_cast<std::uint64_t>(st.value)));
  if (st.value == MisValue::kUnknown) {
    const bool all_false = std::all_of(
        inbox.begin(), inbox.end(), [](const sim::Received& r) {
          return r.msg.kind == sim::MsgKind::kStatus &&
                 r.msg.payload_a == static_cast<std::uint64_t>(MisValue::kFalse);
        });
    if (all_false) {
      st.value = MisValue::kTrue;
      ctx.decide(1);
    }
  }

  // Right recursion.
  if (st.value == MisValue::kUnknown) {
    if (trace != nullptr) ++trace->calls[{k, path}].right;
    co_await recurse(ctx, st, k - 1, (path << 1) | 1, base_budget, rank_bits,
                     trace);
  } else {
    ctx.sleep(child_span);
  }
}

sim::Task node_main(sim::Context& ctx, FastSleepingMisOptions options,
                    RecursionTrace* trace) {
  MisState st;
  const std::uint32_t levels =
      options.levels != 0 ? options.levels : fast_recursion_depth(ctx.n());
  const std::uint64_t base_budget =
      options.base_rounds != 0 ? options.base_rounds
                               : greedy_base_rounds(ctx.n(), options.base_c);
  const std::uint32_t rank_bits = greedy_rank_bits(ctx.n());
  st.bits.assign(levels + 1, 0);
  for (std::uint32_t i = 1; i <= levels; ++i) {
    st.bits[i] = ctx.rng().bernoulli(options.coin_bias) ? 1 : 0;
  }
  st.base_rank = ctx.rng().next() >> (64 - rank_bits);
  if (trace != nullptr) {
    trace->levels = levels;
    if (trace->bits.size() != ctx.n()) trace->bits.resize(ctx.n());
    if (trace->base_rank.size() != ctx.n()) trace->base_rank.resize(ctx.n());
    trace->bits[ctx.id()] = st.bits;
    trace->base_rank[ctx.id()] = st.base_rank;
  }
  co_await recurse(ctx, st, levels, 0, base_budget, rank_bits, trace);
}

}  // namespace

sim::Protocol fast_sleeping_mis(FastSleepingMisOptions options,
                                RecursionTrace* trace) {
  return [options, trace](sim::Context& ctx) {
    return node_main(ctx, options, trace);
  };
}

}  // namespace slumber::core
