// Radio energy model for ad-hoc / sensor networks.
//
// The paper's motivation (Section 1.1): measured radio power in the
// idle-listening state is only slightly below receive/transmit power
// (Feeney-Nilsson INFOCOM'01, Zheng-Kravets'05), while sleep power is
// 1-2 orders of magnitude lower. Hence energy ~ awake time, which is
// exactly what node-averaged awake complexity minimizes.
//
// We charge: every awake round at idle power for the round duration,
// plus a per-message transmit/receive increment, plus every sleeping
// round at sleep power. The paper's idealized model is sleep_mw = 0
// (sleeping is free); the default keeps the realistic small nonzero
// value so bench E9 can show both.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/metrics.h"

namespace slumber::energy {

struct EnergyModel {
  // Power draws in milliwatts (defaults: Feeney-Nilsson 914MHz WaveLAN
  // measurements, rounded).
  double idle_mw = 843.0;
  double rx_mw = 1000.0;
  double tx_mw = 1400.0;
  double sleep_mw = 43.0;
  /// Duration of one synchronous round, in milliseconds.
  double round_ms = 1.0;
  /// Fraction of a round spent actually transmitting/receiving one
  /// message (the rest of the round idles).
  double msg_fraction = 0.1;

  /// The paper's idealized accounting: sleeping is free.
  static EnergyModel idealized() {
    EnergyModel m;
    m.sleep_mw = 0.0;
    return m;
  }

  /// Energy of one node in millijoules given its run metrics.
  double node_energy_mj(const sim::NodeMetrics& m) const;
};

struct EnergyReport {
  std::vector<double> per_node_mj;
  double total_mj = 0.0;
  double mean_mj = 0.0;
  double max_mj = 0.0;
};

/// Evaluates the model over a finished run.
EnergyReport evaluate(const EnergyModel& model, const sim::Metrics& metrics);

}  // namespace slumber::energy
