#include "energy/energy.h"

#include <algorithm>

namespace slumber::energy {

double EnergyModel::node_energy_mj(const sim::NodeMetrics& m) const {
  const double second_per_ms = 1e-3;
  const double round_s = round_ms * second_per_ms;
  const double awake_s = static_cast<double>(m.awake_rounds) * round_s;
  const double sleep_rounds =
      static_cast<double>(m.finish_round >= m.awake_rounds
                              ? m.finish_round - m.awake_rounds
                              : 0);
  const double sleep_s = sleep_rounds * round_s;
  // Base draw: idle while awake, sleep power while asleep.
  double mj = idle_mw * awake_s + sleep_mw * sleep_s;
  // Message increments: the tx/rx premium over idle for the fraction of
  // the round the radio is actively moving a message.
  const double tx_premium = (tx_mw - idle_mw) * msg_fraction * round_s;
  const double rx_premium = (rx_mw - idle_mw) * msg_fraction * round_s;
  mj += tx_premium * static_cast<double>(m.messages_sent);
  mj += rx_premium * static_cast<double>(m.messages_received);
  return mj;
}

EnergyReport evaluate(const EnergyModel& model, const sim::Metrics& metrics) {
  EnergyReport report;
  report.per_node_mj.reserve(metrics.node.size());
  for (const sim::NodeMetrics& m : metrics.node) {
    const double mj = model.node_energy_mj(m);
    report.per_node_mj.push_back(mj);
    report.total_mj += mj;
    report.max_mj = std::max(report.max_mj, mj);
  }
  if (!metrics.node.empty()) {
    report.mean_mj = report.total_mj / static_cast<double>(metrics.node.size());
  }
  return report;
}

}  // namespace slumber::energy
