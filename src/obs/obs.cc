// Recorder core for the telemetry layer: per-thread event buffers, the
// lane busy accounting, the progress/heartbeat sampler thread, and the
// Session lifecycle. All wall-clock reads in the repo's src/ tree live
// in src/obs/*.cc (scoped slumber-d1 allowlist); nothing measured here
// is readable from simulation code.
#include "obs/obs.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/proc_stats.h"

namespace slumber::obs {
namespace detail {

std::atomic<Recorder*> g_recorder{nullptr};

namespace {

// Lanes at or above the cap alias into the last busy slot; the repo
// never runs pools anywhere near this wide.
constexpr std::uint32_t kMaxLanes = 1024;

/// One thread's append-only event log. Registered once per thread per
/// recorder (under the recorder mutex), then written lock-free by its
/// owning thread only.
struct ThreadBuffer {
  std::vector<Event> events;
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;
  std::uint32_t lane = 0;
  const char* label = nullptr;  // overrides "lane N" when set
};

struct TlsState {
  // Recorder identity `buffer` was registered under. A generation
  // counter, not the Recorder*, because a later session's recorder can
  // be allocated at the freed predecessor's address — an address match
  // would then revive a dangling buffer pointer.
  std::uint64_t owner_id = 0;
  ThreadBuffer* buffer = nullptr;  // cached registration
  std::uint32_t lane = 0;          // sticky pool-lane tag
  std::uint64_t busy_start_ns = 0;
  unsigned busy_depth = 0;
};

thread_local TlsState t_state;

// 0 is reserved as "no owner" in TlsState.
std::atomic<std::uint64_t> g_recorder_generation{0};

}  // namespace

class Recorder {
 public:
  explicit Recorder(Options options)
      : options_(std::move(options)),
        id_(g_recorder_generation.fetch_add(1, std::memory_order_relaxed) +
            1) {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;
  ~Recorder() = default;

  void start() {
    start_ = std::chrono::steady_clock::now();
    start_unix_ms_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    g_recorder.store(this, std::memory_order_relaxed);
    sampler_ = std::thread([this] { sampler_loop(); });
  }

  /// Uninstalls the recorder, joins the sampler, merges every thread
  /// buffer, and writes the export sinks. Caller guarantees no thread
  /// is still inside an instrumented region (Session contract).
  void finalize() {
    g_recorder.store(nullptr, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(sampler_mutex_);
      stop_ = true;
    }
    sampler_cv_.notify_all();
    if (sampler_.joinable()) sampler_.join();
    const std::uint64_t wall_ns = now_ns();

    Dump dump;
    dump.wall_ns = wall_ns;
    dump.start_unix_ms = start_unix_ms_;
    dump.frames = frames_.load(std::memory_order_relaxed);
    dump.peak_rss_kb = std::max(sampled_peak_rss_kb_, proc::peak_rss_kb());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::size_t total = 0;
      for (const auto& buffer : buffers_) total += buffer->events.size();
      dump.events.reserve(total);
      for (const auto& buffer : buffers_) {
        for (Event event : buffer->events) {
          event.tid = buffer->tid;
          dump.events.push_back(event);
        }
        dump.dropped += buffer->dropped;
        std::string label;
        if (buffer->label != nullptr) {
          label = buffer->label;
        } else {
          label = "lane " + std::to_string(buffer->lane);
        }
        dump.threads.emplace_back(buffer->tid, std::move(label));
      }
      for (const auto& [key, value] : info_) dump.info.emplace_back(key,
                                                                    value);
    }
    std::sort(dump.events.begin(), dump.events.end(),
              [](const Event& a, const Event& b) {
                if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                return a.tid < b.tid;
              });
    std::sort(dump.threads.begin(), dump.threads.end());
    for (std::uint32_t lane = 0; lane < kMaxLanes; ++lane) {
      const std::uint64_t busy =
          lane_busy_ns_[lane].load(std::memory_order_relaxed);
      if (busy != 0) dump.lane_busy_ns.emplace_back(lane, busy);
    }

    if (!options_.jsonl_path.empty() &&
        !write_jsonl(options_.jsonl_path, dump)) {
      std::fprintf(stderr, "[obs] error: cannot write %s\n",
                   options_.jsonl_path.c_str());
    }
    if (!options_.trace_path.empty() &&
        !write_trace(options_.trace_path, dump)) {
      std::fprintf(stderr, "[obs] error: cannot write %s\n",
                   options_.trace_path.c_str());
    }
    if (options_.progress) {
      std::fprintf(
          stderr,
          "[obs] done: %.1fs, %llu events (%llu dropped), %llu frames, "
          "peak rss %llu MB\n",
          static_cast<double>(wall_ns) / 1e9,
          static_cast<unsigned long long>(dump.events.size()),
          static_cast<unsigned long long>(dump.dropped),
          static_cast<unsigned long long>(dump.frames),
          static_cast<unsigned long long>(dump.peak_rss_kb / 1024));
    }
  }

  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  void record(Event event) {
    event.lane = t_state.lane;
    ThreadBuffer* buffer = thread_buffer();
    if (buffer->events.size() >= options_.max_events_per_thread) {
      ++buffer->dropped;
      return;
    }
    buffer->events.push_back(event);
  }

  void add_lane_busy(std::uint32_t lane, std::uint64_t busy_ns) {
    const std::uint32_t slot = std::min(lane, kMaxLanes - 1);
    lane_busy_ns_[slot].fetch_add(busy_ns, std::memory_order_relaxed);
  }

  void set_info(const std::string& key, const std::string& value) {
    std::lock_guard<std::mutex> lock(mutex_);
    info_[key] = value;
  }

  void set_phase(const char* phase) {
    phase_.store(phase, std::memory_order_relaxed);
  }
  void set_round(double round) {
    round_.store(round, std::memory_order_relaxed);
  }
  void set_round_total(double total) {
    round_total_.store(total, std::memory_order_relaxed);
  }
  void add_frame() { frames_.fetch_add(1, std::memory_order_relaxed); }

 private:
  ThreadBuffer* thread_buffer() {
    if (t_state.owner_id == id_ && t_state.buffer != nullptr) {
      return t_state.buffer;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    ThreadBuffer* buffer = buffers_.back().get();
    buffer->tid = next_tid_++;
    buffer->lane = t_state.lane;
    t_state.owner_id = id_;
    t_state.buffer = buffer;
    return buffer;
  }

  void sampler_loop() {
    thread_buffer()->label = "sampler";
    while (true) {
      {
        std::unique_lock<std::mutex> lock(sampler_mutex_);
        sampler_cv_.wait_for(lock,
                             std::chrono::milliseconds(options_.heartbeat_ms),
                             [this] { return stop_; });
        if (stop_) return;
      }
      sample();
    }
  }

  void sample() {
    const std::uint64_t rss_kb = proc::current_rss_kb();
    sampled_peak_rss_kb_ = std::max(sampled_peak_rss_kb_, rss_kb);
    Event event;
    event.kind = EventKind::kCounter;
    event.name = "rss_mb";
    event.ts_ns = now_ns();
    event.value = static_cast<double>(rss_kb) / 1024.0;
    record(event);
    if (!options_.progress) return;

    const char* phase = phase_.load(std::memory_order_relaxed);
    const double round = round_.load(std::memory_order_relaxed);
    const double total = round_total_.load(std::memory_order_relaxed);
    const double elapsed_s = static_cast<double>(event.ts_ns) / 1e9;
    std::string line = "[obs] phase=";
    line += phase != nullptr ? phase : "-";
    char buf[160];
    if (total > 0.0) {
      const double frac =
          std::min(1.0, round > 0.0 ? round / total : 0.0);
      std::snprintf(buf, sizeof buf, " round=%.3g/%.3g (%.0f%%)", round,
                    total, frac * 100.0);
      line += buf;
      if (round > 0.0) {
        const double eta_s = elapsed_s * (total - round) / round;
        std::snprintf(buf, sizeof buf, " eta=%.1fs", eta_s);
        line += buf;
      }
    }
    std::snprintf(buf, sizeof buf, " frames=%llu rss=%lluMB elapsed=%.1fs",
                  static_cast<unsigned long long>(
                      frames_.load(std::memory_order_relaxed)),
                  static_cast<unsigned long long>(rss_kb / 1024), elapsed_s);
    line += buf;
    line += '\n';
    std::fputs(line.c_str(), stderr);
  }

  Options options_;
  const std::uint64_t id_;  // session generation; see TlsState::owner_id
  std::chrono::steady_clock::time_point start_{};
  std::uint64_t start_unix_ms_ = 0;

  std::mutex mutex_;  // guards buffers_, next_tid_, info_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 0;
  std::map<std::string, std::string> info_;

  std::array<std::atomic<std::uint64_t>, kMaxLanes> lane_busy_ns_{};

  // Progress state: relaxed stores from instrumented threads, read
  // only by the sampler (values are advisory display data).
  std::atomic<const char*> phase_{nullptr};
  std::atomic<double> round_{0.0};
  std::atomic<double> round_total_{0.0};
  std::atomic<std::uint64_t> frames_{0};

  // Sampler-thread-private until finalize() joins the sampler.
  std::uint64_t sampled_peak_rss_kb_ = 0;

  std::thread sampler_;
  std::mutex sampler_mutex_;
  std::condition_variable sampler_cv_;
  bool stop_ = false;  // guarded by sampler_mutex_
};

std::uint64_t span_begin() {
  Recorder* recorder = g_recorder.load(std::memory_order_relaxed);
  return recorder != nullptr ? recorder->now_ns() : 0;
}

void span_end(const char* cat, const char* name, std::uint64_t arg,
              std::uint64_t start_ns) {
  Recorder* recorder = g_recorder.load(std::memory_order_relaxed);
  if (recorder == nullptr) return;
  Event event;
  event.kind = EventKind::kSpan;
  event.cat = cat;
  event.name = name;
  event.arg = arg;
  event.ts_ns = start_ns;
  const std::uint64_t end_ns = recorder->now_ns();
  event.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  recorder->record(event);
}

}  // namespace detail

void counter(const char* name, double value) {
  detail::Recorder* recorder =
      detail::g_recorder.load(std::memory_order_relaxed);
  if (recorder == nullptr) return;
  detail::Event event;
  event.kind = detail::EventKind::kCounter;
  event.name = name;
  event.value = value;
  event.ts_ns = recorder->now_ns();
  recorder->record(event);
}

void instant(const char* cat, const char* name, std::uint64_t arg) {
  detail::Recorder* recorder =
      detail::g_recorder.load(std::memory_order_relaxed);
  if (recorder == nullptr) return;
  detail::Event event;
  event.kind = detail::EventKind::kInstant;
  event.cat = cat;
  event.name = name;
  event.arg = arg;
  event.ts_ns = recorder->now_ns();
  recorder->record(event);
}

void set_lane(unsigned lane) { detail::t_state.lane = lane; }

void lane_work_begin() {
  if (detail::t_state.busy_depth++ != 0) return;
  detail::Recorder* recorder =
      detail::g_recorder.load(std::memory_order_relaxed);
  detail::t_state.busy_start_ns =
      recorder != nullptr ? recorder->now_ns() : 0;
}

void lane_work_end() {
  if (--detail::t_state.busy_depth != 0) return;
  detail::Recorder* recorder =
      detail::g_recorder.load(std::memory_order_relaxed);
  const std::uint64_t start_ns = detail::t_state.busy_start_ns;
  detail::t_state.busy_start_ns = 0;
  if (recorder == nullptr || start_ns == 0) return;
  const std::uint64_t end_ns = recorder->now_ns();
  if (end_ns > start_ns) {
    recorder->add_lane_busy(detail::t_state.lane, end_ns - start_ns);
  }
}

void progress_phase(const char* phase) {
  detail::Recorder* recorder =
      detail::g_recorder.load(std::memory_order_relaxed);
  if (recorder != nullptr) recorder->set_phase(phase);
}

void progress_round(double round) {
  detail::Recorder* recorder =
      detail::g_recorder.load(std::memory_order_relaxed);
  if (recorder != nullptr) recorder->set_round(round);
}

void progress_total(double total) {
  detail::Recorder* recorder =
      detail::g_recorder.load(std::memory_order_relaxed);
  if (recorder != nullptr) recorder->set_round_total(total);
}

void progress_frame() {
  detail::Recorder* recorder =
      detail::g_recorder.load(std::memory_order_relaxed);
  if (recorder != nullptr) recorder->add_frame();
}

std::uint64_t peak_rss_kb() { return proc::peak_rss_kb(); }

Session::Session(Options options) {
  if (!options.any()) return;
  // A second concurrent Session degrades to inactive rather than
  // fighting over the global recorder slot.
  if (detail::g_recorder.load(std::memory_order_relaxed) != nullptr) return;
  recorder_ = std::make_unique<detail::Recorder>(std::move(options));
  recorder_->start();
}

Session::~Session() {
  if (recorder_ != nullptr) recorder_->finalize();
}

void Session::set_info(const std::string& key, const std::string& value) {
  if (recorder_ != nullptr) recorder_->set_info(key, value);
}

}  // namespace slumber::obs
