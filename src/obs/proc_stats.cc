#include "obs/proc_stats.h"

#include <fstream>
#include <sstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#include <unistd.h>
#define SLUMBER_OBS_HAVE_UNISTD 1
#endif

namespace slumber::obs::proc {
namespace {

/// Reads one "Key: value kB" field from /proc/self/status. Returns 0
/// when the file or the key is missing (non-Linux hosts).
std::uint64_t status_field_kb(const std::string& key) {
  std::ifstream status("/proc/self/status");
  if (!status.is_open()) return 0;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) != 0) continue;
    std::istringstream fields(line.substr(key.size()));
    std::uint64_t kb = 0;
    fields >> kb;
    return kb;
  }
  return 0;
}

}  // namespace

std::uint64_t current_rss_kb() { return status_field_kb("VmRSS:"); }

std::uint64_t peak_rss_kb() { return status_field_kb("VmHWM:"); }

std::string host_string() {
#if defined(SLUMBER_OBS_HAVE_UNISTD)
  utsname info{};
  if (uname(&info) != 0) return {};
  std::string host = info.sysname;
  host += ' ';
  host += info.release;
  host += ' ';
  host += info.machine;
  return host;
#else
  return {};
#endif
}

std::uint64_t process_id() {
#if defined(SLUMBER_OBS_HAVE_UNISTD)
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

}  // namespace slumber::obs::proc
