// Internal interface between the recorder (obs.cc) and the export
// sinks (export.cc). Not included outside src/obs/.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace slumber::obs::detail {

enum class EventKind : std::uint8_t { kSpan = 0, kCounter = 1, kInstant = 2 };

/// One recorded event. `cat`/`name` point at string literals supplied
/// by the call sites, so storing the pointer is safe for the process
/// lifetime. Timestamps are nanoseconds on the recorder's steady
/// clock (0 = recorder start).
struct Event {
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  const char* cat = nullptr;
  const char* name = nullptr;
  double value = 0.0;
  std::uint64_t arg = 0;
  std::uint32_t lane = 0;
  std::uint32_t tid = 0;
  EventKind kind = EventKind::kSpan;
};

/// Merged, finalized run data handed to the writers.
struct Dump {
  /// All events, sorted by (ts_ns, tid) at merge time.
  std::vector<Event> events;
  /// Events discarded because a thread hit max_events_per_thread.
  std::uint64_t dropped = 0;
  /// Recorder lifetime.
  std::uint64_t wall_ns = 0;
  /// Wall-clock start of the run (Unix epoch ms) for the manifest.
  std::uint64_t start_unix_ms = 0;
  /// Peak RSS observed (max of sampler readings and final VmHWM), kB.
  std::uint64_t peak_rss_kb = 0;
  /// Total frames counted via progress_frame().
  std::uint64_t frames = 0;
  /// (lane, busy_ns) for every lane that did pool work, sorted by lane.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> lane_busy_ns;
  /// (tid, label) thread names for the trace sink, sorted by tid.
  std::vector<std::pair<std::uint32_t, std::string>> threads;
  /// Caller-provided manifest entries (Session::set_info), sorted by
  /// key for stable output.
  std::vector<std::pair<std::string, std::string>> info;
};

/// Writes the slumber-obs-v1 JSONL event stream. Returns false on I/O
/// failure (reported to stderr by the caller).
bool write_jsonl(const std::string& path, const Dump& dump);

/// Writes the Chrome trace-event file (Perfetto-loadable). Returns
/// false on I/O failure.
bool write_trace(const std::string& path, const Dump& dump);

}  // namespace slumber::obs::detail
