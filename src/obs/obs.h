// Run telemetry: phase spans, counters, and live progress — strictly
// out-of-band with respect to simulation state.
//
// The contract that makes this layer safe to wire into deterministic
// code is one-directional data flow: timestamps and /proc readings are
// *written into* the recorder and exported after the run; nothing the
// recorder measures can be read back by src/ code, so telemetry can
// never feed an RNG, a schedule, or any decided output
// (tests/obs_test.cc pins bitwise-identical trial output with obs on
// vs off at every lane count, and tools/lint/slumber_checks.py bans
// both wall-clock reads outside src/obs/ and obs readback inside
// src/). Wall-clock calls live only in src/obs/*.cc, under a scoped
// slumber-d1 allowlist.
//
// Zero overhead when off: every hook reduces to one relaxed atomic
// load and a predictable branch (enabled()); no Session installed
// means no recorder, no buffers, no sampler thread. When on, events
// append to per-thread buffers (registered under a mutex once per
// thread, then lock-free) and are merged, aggregated, and exported by
// Session teardown behind the stable `slumber-obs-v1` schema:
//
//   --obs-out run.jsonl    JSONL event stream: manifest line (git sha,
//                          build type, host, caller-set info), one line
//                          per span/counter/instant, footer line with
//                          run aggregates (peak RSS, per-lane busy
//                          time, chunk-imbalance stats).
//   --obs-trace trace.json Chrome trace-event file; load in Perfetto
//                          (ui.perfetto.dev) or chrome://tracing.
//   --progress             live stderr heartbeat with phase, virtual
//                          round progress, frame count, RSS, and ETA.
//
// Finalization contract: destroy the Session only when no thread can
// still be inside an instrumented region (after pools have gone idle
// or been destroyed). The front ends get this for free by declaring
// the Session above the pool.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace slumber::obs {

/// Export + progress configuration (parsed from the shared TrialSpec
/// flag grammar: --obs-out / --obs-trace / --progress).
struct Options {
  /// JSONL event-stream path; empty disables the sink.
  std::string jsonl_path;
  /// Chrome trace-event path; empty disables the sink.
  std::string trace_path;
  /// Live stderr heartbeat.
  bool progress = false;
  /// Per-thread event cap; events beyond it are counted as dropped in
  /// the footer instead of growing without bound.
  std::size_t max_events_per_thread = std::size_t{1} << 20;
  /// Sampler cadence for the heartbeat and the RSS timeline.
  unsigned heartbeat_ms = 500;

  bool any() const {
    return progress || !jsonl_path.empty() || !trace_path.empty();
  }
};

namespace detail {

class Recorder;

// Non-null while a Session is installed. Relaxed is sufficient: the
// hooks only need an eventually-visible on/off flag, and Session
// install/teardown happens while no instrumented region is running.
extern std::atomic<Recorder*> g_recorder;

/// Opaque span start stamp (nanoseconds on the recorder's clock). Only
/// Span ever holds one, and it flows back into the recorder — never
/// into caller code.
std::uint64_t span_begin();
void span_end(const char* cat, const char* name, std::uint64_t arg,
              std::uint64_t start_ns);

}  // namespace detail

/// True while a Session is recording. The entire cost of a disabled
/// hook is this load and a branch.
inline bool enabled() {
  return detail::g_recorder.load(std::memory_order_relaxed) != nullptr;
}

/// RAII phase span. `cat` and `name` must be string literals (they are
/// stored by pointer). Passing cat == nullptr disarms the span — the
/// idiom for call sites that gate tracing on a size threshold:
///
///   obs::Span span(total >= cutoff ? "engine" : nullptr, "scan", id);
class Span {
 public:
  explicit Span(const char* cat, const char* name, std::uint64_t arg = 0)
      : cat_(cat),
        name_(name),
        arg_(arg),
        armed_(cat != nullptr && enabled()),
        start_ns_(armed_ ? detail::span_begin() : 0) {}
  ~Span() {
    if (armed_) detail::span_end(cat_, name_, arg_, start_ns_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* cat_;
  const char* name_;
  std::uint64_t arg_;
  bool armed_;
  std::uint64_t start_ns_;
};

/// Records a gauge sample (`name` must be a string literal). No-op
/// when disabled.
void counter(const char* name, double value);

/// Records a zero-duration marker. No-op when disabled.
void instant(const char* cat, const char* name, std::uint64_t arg = 0);

/// Tags the calling thread as pool lane `lane` for event attribution
/// (lane 0 = the fork-join caller; workers are 1..N-1). Sticky per
/// thread, independent of any recorder's lifetime.
void set_lane(unsigned lane);

/// Pool-lane busy bracketing (called by ThreadPool::drain_batch). The
/// duration never leaves the obs layer: it is accumulated internally
/// into the per-lane busy totals reported in the export footer.
void lane_work_begin();
void lane_work_end();

// --- live progress ---------------------------------------------------
// All writes into relaxed atomics read only by the sampler thread.
// Virtual rounds are passed as double (the engine's clock is 128-bit;
// ETA math is approximate by nature).

/// Names the current phase for the heartbeat line.
void progress_phase(const char* phase);
/// Latest virtual round reached.
void progress_round(double round);
/// Total virtual rounds the run will span (ETA denominator).
void progress_total(double total);
/// Counts one recursion frame / outer iteration.
void progress_frame();

/// Peak RSS (VmHWM) in kB from /proc/self/status; 0 where unsupported.
/// This is a *telemetry readback* and is lint-banned in src/ outside
/// src/obs/ — call it from bench/ and tools/ only.
std::uint64_t peak_rss_kb();

/// Installs a recorder for the lifetime of the object (when
/// options.any()), finalizes and exports on destruction. At most one
/// Session may be active at a time; a second concurrent Session
/// degrades to inactive.
class Session {
 public:
  explicit Session(Options options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// True when this Session installed a recorder.
  bool active() const { return recorder_ != nullptr; }

  /// Adds a key/value pair to the export manifest (TrialSpec fields,
  /// seeds, tool name). Callable any time before destruction.
  void set_info(const std::string& key, const std::string& value);

 private:
  std::unique_ptr<detail::Recorder> recorder_;
};

}  // namespace slumber::obs
