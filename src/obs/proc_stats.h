// Process-level measurements for the telemetry layer: RSS from
// /proc/self/status and a host identification string. Everything here
// is read-only with respect to the process and out-of-band with
// respect to simulation state; the readers degrade to zeros / empty
// strings on platforms without procfs.
#pragma once

#include <cstdint>
#include <string>

namespace slumber::obs::proc {

/// Current resident set size (VmRSS) in kB; 0 if unavailable.
std::uint64_t current_rss_kb();

/// Peak resident set size (VmHWM) in kB; 0 if unavailable.
std::uint64_t peak_rss_kb();

/// "sysname release machine" from uname(2); empty if unavailable.
std::string host_string();

/// Process id; 0 if unavailable.
std::uint64_t process_id();

}  // namespace slumber::obs::proc
