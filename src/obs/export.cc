// Export sinks for the telemetry layer: the slumber-obs-v1 JSONL
// event stream and the Chrome trace-event file (Perfetto-loadable).
// Runs once at Session teardown on already-merged data; nothing here
// is on a hot path.
#include "obs/export.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/proc_stats.h"

// Baked in by src/CMakeLists.txt for this translation unit only.
#ifndef SLUMBER_GIT_SHA
#define SLUMBER_GIT_SHA "unknown"
#endif
#ifndef SLUMBER_BUILD_TYPE
#define SLUMBER_BUILD_TYPE "unknown"
#endif

namespace slumber::obs::detail {
namespace {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with nanosecond precision, shortest faithful form.
std::string us(std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

std::string num(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string u64(std::uint64_t value) {
  return std::to_string(value);
}

/// Chunk-imbalance aggregate: chunk spans grouped by their scan id
/// (the `arg` every chunk of one scan shares); a scan's imbalance is
/// max chunk duration over mean chunk duration.
struct Imbalance {
  std::uint64_t scans = 0;
  double max_ratio = 0.0;
  double mean_ratio = 0.0;
};

Imbalance chunk_imbalance(const std::vector<Event>& events) {
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
      per_scan;  // arg -> (count, max), plus sum tracked below
  std::map<std::uint64_t, std::uint64_t> sums;
  for (const Event& event : events) {
    if (event.kind != EventKind::kSpan) continue;
    if (std::string_view(event.name) != "chunk") continue;
    auto& [count, max_dur] = per_scan[event.arg];
    ++count;
    max_dur = std::max(max_dur, event.dur_ns);
    sums[event.arg] += event.dur_ns;
  }
  Imbalance result;
  double ratio_sum = 0.0;
  for (const auto& [arg, stats] : per_scan) {
    const auto& [count, max_dur] = stats;
    if (count < 2 || sums[arg] == 0) continue;
    const double mean =
        static_cast<double>(sums[arg]) / static_cast<double>(count);
    const double ratio = static_cast<double>(max_dur) / mean;
    ++result.scans;
    result.max_ratio = std::max(result.max_ratio, ratio);
    ratio_sum += ratio;
  }
  if (result.scans != 0) {
    result.mean_ratio = ratio_sum / static_cast<double>(result.scans);
  }
  return result;
}

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSpan:
      return "span";
    case EventKind::kCounter:
      return "counter";
    case EventKind::kInstant:
      return "instant";
  }
  return "unknown";
}

std::string manifest_json(const Dump& dump) {
  // Built with += chains: GCC 12's -Wrestrict misfires on the
  // `"literal" + rvalue-string` operator+ overload (PR105651).
  std::string line = "{\"type\":\"manifest\",\"schema\":\"slumber-obs-v1\"";
  line += ",\"git_sha\":\"";
  line += escape(SLUMBER_GIT_SHA);
  line += "\",\"build\":\"";
  line += escape(SLUMBER_BUILD_TYPE);
  line += "\",\"host\":\"";
  line += escape(proc::host_string());
  line += "\",\"pid\":";
  line += u64(proc::process_id());
  line += ",\"start_unix_ms\":";
  line += u64(dump.start_unix_ms);
  line += ",\"info\":{";
  bool first = true;
  for (const auto& [key, value] : dump.info) {
    if (!first) line += ',';
    first = false;
    line += '"';
    line += escape(key);
    line += "\":\"";
    line += escape(value);
    line += '"';
  }
  line += "}}";
  return line;
}

std::string footer_json(const Dump& dump) {
  const Imbalance imbalance = chunk_imbalance(dump.events);
  std::string line = "{\"type\":\"footer\",\"events\":";
  line += u64(dump.events.size());
  line += ",\"dropped\":";
  line += u64(dump.dropped);
  line += ",\"wall_ms\":";
  line += num(static_cast<double>(dump.wall_ns) / 1e6);
  line += ",\"peak_rss_kb\":";
  line += u64(dump.peak_rss_kb);
  line += ",\"frames\":";
  line += u64(dump.frames);
  line += ",\"lanes\":[";
  bool first = true;
  for (const auto& [lane, busy_ns] : dump.lane_busy_ns) {
    if (!first) line += ',';
    first = false;
    line += "{\"lane\":";
    line += u64(lane);
    line += ",\"busy_ms\":";
    line += num(static_cast<double>(busy_ns) / 1e6);
    line += '}';
  }
  line += "],\"chunk_scans\":";
  line += u64(imbalance.scans);
  line += ",\"chunk_imbalance_max\":";
  line += num(imbalance.max_ratio);
  line += ",\"chunk_imbalance_mean\":";
  line += num(imbalance.mean_ratio);
  line += '}';
  return line;
}

}  // namespace

bool write_jsonl(const std::string& path, const Dump& dump) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return false;
  out << manifest_json(dump) << '\n';
  for (const Event& event : dump.events) {
    std::string line = "{\"type\":\"";
    line += kind_name(event.kind);
    line += "\"";
    if (event.cat != nullptr) {
      line += ",\"cat\":\"";
      line += event.cat;
      line += "\"";
    }
    line += ",\"name\":\"";
    line += event.name != nullptr ? event.name : "";
    line += "\",\"ts_us\":";
    line += us(event.ts_ns);
    if (event.kind == EventKind::kSpan) {
      line += ",\"dur_us\":";
      line += us(event.dur_ns);
    }
    if (event.kind == EventKind::kCounter) {
      line += ",\"value\":";
      line += num(event.value);
    } else {
      line += ",\"arg\":";
      line += u64(event.arg);
    }
    line += ",\"lane\":";
    line += u64(event.lane);
    line += ",\"tid\":";
    line += u64(event.tid);
    line += '}';
    out << line << '\n';
  }
  out << footer_json(dump) << '\n';
  out.flush();
  return out.good();
}

bool write_trace(const std::string& path, const Dump& dump) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return false;
  const std::string pid = u64(proc::process_id());
  out << "{\"traceEvents\":[\n";
  std::string sep;
  out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":\"slumber\"}}";
  sep = ",\n";
  for (const auto& [tid, label] : dump.threads) {
    out << sep << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
        << ",\"tid\":" << u64(tid) << ",\"args\":{\"name\":\""
        << escape(label) << "\"}}";
  }
  for (const Event& event : dump.events) {
    out << sep;
    switch (event.kind) {
      case EventKind::kSpan:
        out << "{\"ph\":\"X\",\"name\":\"" << event.name << "\",\"cat\":\""
            << (event.cat != nullptr ? event.cat : "obs")
            << "\",\"ts\":" << us(event.ts_ns)
            << ",\"dur\":" << us(event.dur_ns) << ",\"pid\":" << pid
            << ",\"tid\":" << u64(event.tid) << ",\"args\":{\"arg\":"
            << u64(event.arg) << ",\"lane\":" << u64(event.lane) << "}}";
        break;
      case EventKind::kCounter:
        out << "{\"ph\":\"C\",\"name\":\"" << event.name
            << "\",\"ts\":" << us(event.ts_ns) << ",\"pid\":" << pid
            << ",\"tid\":" << u64(event.tid) << ",\"args\":{\"value\":"
            << num(event.value) << "}}";
        break;
      case EventKind::kInstant:
        out << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << event.name
            << "\",\"cat\":\"" << (event.cat != nullptr ? event.cat : "obs")
            << "\",\"ts\":" << us(event.ts_ns) << ",\"pid\":" << pid
            << ",\"tid\":" << u64(event.tid) << ",\"args\":{\"arg\":"
            << u64(event.arg) << "}}";
        break;
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"schema\":\"slumber-obs-v1\",\"git_sha\":\"" << SLUMBER_GIT_SHA
      << "\",\"build\":\"" << SLUMBER_BUILD_TYPE << "\",\"wall_ms\":"
      << num(static_cast<double>(dump.wall_ns) / 1e6) << ",\"peak_rss_kb\":"
      << u64(dump.peak_rss_kb) << "}}\n";
  out.flush();
  return out.good();
}

}  // namespace slumber::obs::detail
