#include "bulk/sleeping_mis.h"

#include <atomic>
#include <numeric>
#include <utility>

#include "core/mis_state.h"
#include "core/schedule.h"
#include "obs/obs.h"
#include "sim/message.h"
#include "util/alloc.h"

namespace slumber::bulk {
namespace {

using core::MisValue;

/// T(k) = 3(2^k - 1) in 128 bits (core::schedule_duration overflows
/// std::uint64_t for k >= 62, which n = 10M reaches: K = 70).
VirtualRound duration128(std::uint32_t k) {
  return (VirtualRound{1} << k) * 3 - 3;
}

// The recursion walker. Depth-first order over the recursion tree is
// exactly virtual-time order: a frame at parameter k starting at round s
// owns [s, s+T(k)-1], partitioned into its first detection round {s},
// the left child's window, the synchronization round, the second
// detection round, and the right child's window.
//
// Each of the three communication rounds of a frame is one sharded
// scan_awake() over the member list. Per-node tri-state statuses are
// accessed through relaxed std::atomic_ref: the sync scan's predicate
// ("has a kTrue neighbor") only races against Unknown -> False
// transitions and the second detection's ("all neighbors kFalse") only
// against Unknown -> True, so — exactly the argument that lets the
// serial code scan in place — the concurrent value is deterministic
// regardless of lane interleaving.
struct Walker {
  BulkEngine& eng;
  const Graph& g;
  core::RecursionTrace* trace;
  std::uint32_t words_per_node;  // packed coin bits, bit i of node v at
                                 // bits[v*words + i/64] >> (i%64)
  util::PodVector<std::uint64_t> bits;
  util::PodVector<std::uint8_t> value;  // MisValue per node
  std::uint32_t hello_bits;
  std::uint32_t status_bits;
  // Fault flags hoisted once per run; the fault-free hot loops pay one
  // predictable branch.
  bool dynamic = false;
  bool lossy = false;
  // Live-dynamics re-entry hook: a node coming back (crash recovery or
  // churn rejoin) resumes undecided in whatever frame is current, so
  // its tri-state status must return to kUnknown (the engine already
  // cleared its decision state).
  std::function<void(VertexId)> reenter;

  bool coin(VertexId v, std::uint32_t i) const {
    return (bits[std::uint64_t{v} * words_per_node + i / 64] >> (i % 64)) & 1;
  }

  MisValue value_of(VertexId v) {
    return static_cast<MisValue>(
        std::atomic_ref(value[v]).load(std::memory_order_relaxed));
  }

  void set_value(VertexId v, MisValue x) {
    std::atomic_ref(value[v]).store(static_cast<std::uint8_t>(x),
                                    std::memory_order_relaxed);
  }

  /// Lines 9-12 of the paper: the k = 0 base case. It spends no rounds;
  /// its code runs during the resume of the parent's preceding
  /// communication round, so decisions are stamped with that round.
  void base_case(std::uint64_t path, VirtualRound decide_round,
                 const std::vector<VertexId>& members) {
    if (trace != nullptr) {
      trace->calls[{0, path}].participants += members.size();
    }
    eng.scan_awake(members, [&](BulkChunk& chunk,
                                std::span<const VertexId> part) {
      for (const VertexId v : part) {
        if (value_of(v) == MisValue::kUnknown) {
          set_value(v, MisValue::kTrue);
          chunk.decide(v, 1, decide_round);
        }
      }
    });
  }

  void frame(std::uint32_t k, std::uint64_t path, VirtualRound start,
             std::vector<VertexId> members) {
    // Telemetry: count every frame, but emit spans only for frames big
    // enough to shard (sub-cutoff frames number in the millions at
    // n = 10^7 and would swamp the event buffers).
    obs::progress_frame();
    obs::Span frame_span(
        members.size() >= eng.options().parallel_cutoff ? "mis" : nullptr,
        "frame", k);
    core::CallStats* stats = nullptr;
    if (trace != nullptr) {
      stats = &trace->calls[{k, path}];
      stats->participants += members.size();
      stats->first_round =
          std::min(stats->first_round, saturate_round(start));
    }

    // First isolated-node detection (lines 13-16), 1 round: only this
    // frame's members are awake, so hearing no hello means "isolated in
    // G[U]" (under loss: effectively isolated this round).
    if (dynamic) members = eng.apply_dynamics(std::move(members), start, reenter);
    eng.mark_awake(members);
    eng.charge_round(members, start);
    const ScanResult detect1 = eng.scan_awake(
        members, [&](BulkChunk& chunk, std::span<const VertexId> part) {
          for (const VertexId v : part) {
            std::uint64_t awake_nbrs = 0;
            std::uint64_t heard = 0;
            for (const VertexId u : g.neighbors(v)) {
              if (!eng.is_awake(u)) continue;
              ++awake_nbrs;
              if (!lossy || eng.link_up(v, u, start)) ++heard;
            }
            chunk.charge_symmetric_broadcast(v, awake_nbrs, heard,
                                             hello_bits);
            if (heard == 0 && value_of(v) == MisValue::kUnknown) {
              set_value(v, MisValue::kTrue);
              chunk.decide(v, 1, start);
              chunk.bump();
            }
          }
        });
    if (stats != nullptr) stats->isolated_joins += detect1.user;

    // Left recursion (lines 17-21): undecided members with X_k = 1. The
    // keep() lists concatenate in chunk order, preserving member order.
    std::vector<VertexId> left =
        eng.scan_awake(members,
                       [&](BulkChunk& chunk, std::span<const VertexId> part) {
                         for (const VertexId v : part) {
                           if (value_of(v) == MisValue::kUnknown &&
                               coin(v, k)) {
                             chunk.keep(v);
                           }
                         }
                       })
            .kept;
    if (stats != nullptr) stats->left += left.size();
    if (!left.empty()) {
      if (k == 1) {
        base_case(path << 1, start, left);
      } else {
        frame(k - 1, path << 1, start + 1, std::move(left));
      }
    }
    left = {};

    // Synchronization step (lines 22-25), 1 round: an undecided node
    // with an MIS neighbor in the frame is eliminated. Only
    // Unknown -> False transitions happen here, so the in-place status
    // scan observes the same "has a kTrue neighbor" predicate the
    // coroutine engine's message snapshot does — per lane as well as
    // serially.
    const VirtualRound sync = start + duration128(k - 1) + 1;
    if (dynamic) members = eng.apply_dynamics(std::move(members), sync, reenter);
    eng.mark_awake(members);  // children bumped the epoch during the left call
    eng.charge_round(members, sync);
    eng.scan_awake(members, [&](BulkChunk& chunk,
                                std::span<const VertexId> part) {
      for (const VertexId v : part) {
        std::uint64_t awake_nbrs = 0;
        std::uint64_t heard = 0;
        bool mis_neighbor = false;
        for (const VertexId u : g.neighbors(v)) {
          if (!eng.is_awake(u)) continue;
          ++awake_nbrs;
          if (lossy && !eng.link_up(v, u, sync)) continue;
          ++heard;
          mis_neighbor |= value_of(u) == MisValue::kTrue;
        }
        chunk.charge_symmetric_broadcast(v, awake_nbrs, heard, status_bits);
        if (mis_neighbor && value_of(v) == MisValue::kUnknown) {
          set_value(v, MisValue::kFalse);
          chunk.decide(v, 0, sync);
        }
      }
    });

    // Second isolated-node detection (lines 26-29), 1 round: an
    // undecided node all of whose frame neighbors are eliminated joins.
    // Only Unknown -> True transitions happen, and both Unknown and True
    // block a neighbor's join, so the in-place scan is again exact.
    const VirtualRound detect2 = sync + 1;
    if (dynamic) {
      members = eng.apply_dynamics(std::move(members), detect2, reenter);
      eng.mark_awake(members);  // membership changed; sync's marking is stale
    }
    eng.charge_round(members, detect2);
    eng.scan_awake(members, [&](BulkChunk& chunk,
                                std::span<const VertexId> part) {
      for (const VertexId v : part) {
        std::uint64_t awake_nbrs = 0;
        std::uint64_t heard = 0;
        bool all_eliminated = true;
        for (const VertexId u : g.neighbors(v)) {
          if (!eng.is_awake(u)) continue;
          ++awake_nbrs;
          // A neighbor whose status message is lost simply isn't heard;
          // it cannot block the join (that is the injected damage).
          if (lossy && !eng.link_up(v, u, detect2)) continue;
          ++heard;
          all_eliminated &= value_of(u) == MisValue::kFalse;
        }
        chunk.charge_symmetric_broadcast(v, awake_nbrs, heard, status_bits);
        if (all_eliminated && value_of(v) == MisValue::kUnknown) {
          set_value(v, MisValue::kTrue);
          chunk.decide(v, 1, detect2);
        }
      }
    });

    // Right recursion (lines 30-34): still-undecided members.
    std::vector<VertexId> right =
        eng.scan_awake(members,
                       [&](BulkChunk& chunk, std::span<const VertexId> part) {
                         for (const VertexId v : part) {
                           if (value_of(v) == MisValue::kUnknown) {
                             chunk.keep(v);
                           }
                         }
                       })
            .kept;
    if (stats != nullptr) stats->right += right.size();
    if (!right.empty()) {
      if (k == 1) {
        base_case((path << 1) | 1, detect2, right);
      } else {
        frame(k - 1, (path << 1) | 1, detect2 + 1, std::move(right));
      }
    }
  }
};

}  // namespace

void BulkSleepingMis::run(BulkEngine& engine) {
  const Graph& g = engine.graph();
  const std::uint64_t n = g.num_vertices();
  if (n == 0) return;
  const std::uint32_t levels =
      options_.levels != 0 ? options_.levels : core::recursion_depth(n);

  obs::Span run_span("mis", "sleeping_mis", n);
  Walker w{engine,
           g,
           trace_,
           levels / 64 + 1,
           {},
           {},
           sim::Message::hello().bits,
           sim::Message::status(0).bits,
           engine.dynamic(),
           engine.lossy(),
           {}};
  w.reenter = [&w](VertexId v) { w.set_value(v, core::MisValue::kUnknown); };

  // First-touch placement for the protocol's per-node arrays (packed
  // coin bits, tri-state statuses): fill them in the pool's chunk
  // layout so each lane's slice of every subsequent sharded scan lands
  // on pages that lane touched first. Placement only — sharded_fill
  // writes the same value everywhere, so contents (and every result)
  // are bitwise unaffected.
  util::ThreadPool* touch_pool =
      engine.options().first_touch && engine.options().pool != nullptr &&
              engine.options().pool->num_threads() > 1
          ? engine.options().pool
          : nullptr;
  {
    obs::Span span("mis", "placement", n);
    w.bits = util::sharded_fill<std::uint64_t>(n * w.words_per_node, 0,
                                               touch_pool);
    w.value = util::sharded_fill<std::uint8_t>(
        n, static_cast<std::uint8_t>(core::MisValue::kUnknown), touch_pool);
  }

  // Draw the coin bits X_1..X_K from the same per-node streams, in the
  // same order, as core::sleeping_mis's node_main. Sharded over the
  // pool: each node's stream and bit words belong to one lane.
  if (trace_ != nullptr) {
    trace_->levels = levels;
    if (trace_->bits.size() != n) trace_->bits.resize(n);
  }
  obs::progress_phase("coins");
  {
    obs::Span coin_span("mis", "draw_coins", n);
    engine.scan_range(n, [&](BulkChunk&, std::size_t begin, std::size_t end) {
      for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
        Rng rng = engine.node_rng(v);
        const std::uint64_t base = std::uint64_t{v} * w.words_per_node;
        for (std::uint32_t i = 1; i <= levels; ++i) {
          if (rng.bernoulli(options_.coin_bias)) {
            w.bits[base + i / 64] |= std::uint64_t{1} << (i % 64);
          }
        }
        if (trace_ != nullptr) {
          std::vector<std::uint8_t>& node_bits = trace_->bits[v];
          node_bits.assign(levels + 1, 0);
          for (std::uint32_t i = 1; i <= levels; ++i) {
            node_bits[i] = w.coin(v, i) ? 1 : 0;
          }
        }
      }
    });
  }

  std::vector<VertexId> everyone(n);
  std::iota(everyone.begin(), everyone.end(), VertexId{0});

  if (levels == 0) {
    // K = 0: the whole run is the base case, executed at round 0 with no
    // communication (matches the coroutine engine on n <= 1).
    w.base_case(0, 0, everyone);
    for (VertexId v = 0; v < n; ++v) engine.finish(v, 0);
    return;
  }

  // The root frame owns rounds [1, T(K)]; every node returns at T(K)
  // (Lemma 1's synchronization guarantee), trailing sleeps included.
  const VirtualRound total = duration128(levels);
  obs::progress_phase("recursion");
  obs::progress_total(static_cast<double>(total));
  w.frame(levels, 0, 1, std::move(everyone));
  obs::progress_phase("finish");
  obs::Span finish_span("mis", "final_finish", n);
  engine.scan_range(n, [&](BulkChunk& chunk, std::size_t begin,
                           std::size_t end) {
    for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
      // Down nodes (crashed or departed) got their finish_round stamped
      // when they dropped out.
      if (!engine.down(v)) chunk.finish(v, total);
    }
  });
}

BulkResult bulk_sleeping_mis(const Graph& g, std::uint64_t seed,
                             core::SleepingMisOptions options,
                             core::RecursionTrace* trace,
                             BulkOptions engine_options) {
  BulkSleepingMis protocol(options, trace);
  return run_bulk(g, seed, protocol, engine_options);
}

}  // namespace slumber::bulk
