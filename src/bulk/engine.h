// The bulk execution engine: flat-state, awake-set-driven simulation.
//
// The coroutine scheduler in src/sim pays a coroutine frame per
// recursion level per node, a std::function dispatch per protocol, and
// map-bucket churn per wake-up, which caps single trials at laptop
// scale. This engine is the second execution back end: protocols keep
// their per-node state in flat arrays, and each synchronous round is
// executed by iterating an explicit awake set over the graph's CSR
// neighbor spans. Nothing is allocated per node-round.
//
// Semantics are the sleeping model of sim::Network, and the accounting
// is bitwise-compatible: a protocol ported to this engine reproduces
// the coroutine engine's outputs and sim::Metrics exactly
// (tests/bulk_engine_test.cc pins this) — including under a shared
// fault::FaultPlan, whose keyed draws both engines evaluate to the
// same bits (tests/fault_test.cc).
//
// Intra-trial parallelism: per-frame node scans are independent per
// node, so when BulkOptions::pool is set, scan_awake() shards the awake
// set into contiguous chunks over the pool's lanes. Per-node state and
// metrics are written only by the lane owning the node (or through
// relaxed atomics where a protocol's accounting crosses nodes), and all
// aggregate accounting accumulates into per-chunk BulkChunk partials
// that are merged in chunk index order after the barrier. Every merged
// quantity is an integer sum or max — order-free — so outputs, metrics,
// and traces are bitwise identical for every thread count, including
// the serial pool-less path (tests/bulk_parallel_test.cc pins this).
//
// Virtual rounds are tracked in 128 bits: Algorithm 1's schedule spans
// T(K) = 3(2^K - 1) rounds with K = ceil(3 log2 n), which overflows 64
// bits for n > ~2M. Values stored into the (64-bit) sim::Metrics fields
// saturate at 2^64-1; at cross-validation sizes the saturation is the
// identity, so equivalence with the coroutine engine is exact there.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "fault/fault.h"
#include "graph/graph.h"
#include "sim/metrics.h"
#include "sim/network.h"  // sim::CongestViolation, congest_bits_for
#include "util/rng.h"
#include "util/thread_pool.h"

namespace slumber::bulk {

/// 128-bit virtual round clock (see the header comment).
using VirtualRound = unsigned __int128;

/// The two blessed exits from the 128-bit clock domain (slumber-d7
/// flags any other narrowing of a VirtualRound to 64 bits): saturate
/// into a 64-bit metrics field, or split losslessly into (lo, hi)
/// halves for keyed fault draws. A bare static_cast elsewhere would
/// silently truncate rounds past ~1.8e19 — exactly the regime the
/// 128-bit clock exists for.

/// Saturating narrow to the 64-bit sim::Metrics round fields.
inline std::uint64_t saturate_round(VirtualRound round) {
  constexpr VirtualRound kMax = ~std::uint64_t{0};
  return round > kMax ? ~std::uint64_t{0} : static_cast<std::uint64_t>(round);
}

/// Lossless (lo, hi) decomposition of a virtual round, for call sites
/// that key 64-bit stream draws on the full 128-bit clock value
/// (fault/fault.h takes the two halves separately).
struct RoundHalves {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

inline RoundHalves round_halves(VirtualRound round) {
  return {static_cast<std::uint64_t>(round),
          static_cast<std::uint64_t>(round >> 64)};
}

struct BulkOptions {
  /// CONGEST budget in bits; 0 disables the check (same contract as
  /// sim::NetworkOptions).
  std::uint32_t max_message_bits = 0;
  /// If true, a too-wide message throws sim::CongestViolation; otherwise
  /// it is only counted in Metrics::congest_violations.
  bool throw_on_congest_violation = true;
  /// Intra-trial parallelism: when non-null, awake-set scans shard over
  /// this pool's lanes (bitwise-identical results for every lane
  /// count). The pool is borrowed, not owned, and must outlive the run.
  util::ThreadPool* pool = nullptr;
  /// Awake sets smaller than this run single-chunk on the calling
  /// thread even when a pool is set (fork-join overhead dwarfs the work
  /// on tiny recursion frames). Tests pin the bitwise contract with 1.
  std::size_t parallel_cutoff = 4096;
  /// Memory diet for the 10^8-node regime: when false, per-node
  /// sim::Metrics are not allocated or maintained (Metrics::node stays
  /// empty; aggregate counters, outputs, and decision state are exact).
  /// Metrics::makespan is then taken from the saturated virtual
  /// makespan instead of max finish_round.
  bool node_metrics = true;
  /// First-touch page placement: initialize the engine's hot per-node
  /// arrays (awake stamps, decision flags) in the pool's
  /// parallel_for_range chunk layout, so each page lands near the lane
  /// that scans that slice of every per-node array (matters past ~16
  /// cores on NUMA machines). Placement only — contents and results
  /// are bitwise unaffected. No effect without a pool.
  bool first_touch = false;
  /// Fault injection (fault/fault.h): crash schedules, probabilistic
  /// crashes, and message loss. Borrowed; must outlive the run. Every
  /// fault decision is a keyed util::stream_rng draw evaluated
  /// chunk-locally and merged in chunk index order, so faulty runs stay
  /// bitwise identical at every lane count and agree with the coroutine
  /// scheduler under the same plan and seed. Live dynamics (mid-run
  /// churn, crash recovery) run inside apply_dynamics between frames;
  /// FaultPlan::churn is applied by the experiment layer after the run,
  /// not here.
  const fault::FaultPlan* fault = nullptr;
};

struct BulkResult {
  sim::Metrics metrics;
  std::vector<std::int64_t> outputs;
  /// Exact (un-saturated) makespan in virtual rounds.
  VirtualRound virtual_makespan = 0;
  /// crashed[v] != 0 iff v fail-stopped during the run and (under crash
  /// recovery) never came back; empty when the run had no crash faults
  /// configured.
  std::vector<std::uint8_t> crashed;
  /// departed[v] != 0 iff v left via mid-run churn and was still out at
  /// the end; empty when the run had no live churn configured.
  std::vector<std::uint8_t> departed;
};

class BulkEngine;

/// Per-chunk accounting view handed to scan_awake() callbacks. Per-node
/// quantities (NodeMetrics fields, outputs, decision state) are written
/// straight through — each node is touched only by the chunk that owns
/// it — while run-aggregate quantities accumulate chunk-locally and are
/// merged into sim::Metrics in chunk index order after the scan's
/// barrier. All merged quantities are integer sums or maxes, so the
/// merged totals are bitwise independent of the chunking.
class BulkChunk {
 public:
  /// Sender-side accounting: v attempted `attempted` sends of a
  /// `bits`-wide message, of which `delivered` reached awake nodes and
  /// `lost` were eaten by injected link loss on the way to awake nodes;
  /// the rest are dropped (sleeping receivers, as the model specifies).
  void charge_send(VertexId v, std::uint64_t attempted,
                   std::uint64_t delivered, std::uint32_t bits,
                   std::uint64_t lost = 0);

  /// Receiver-side accounting: v received `count` messages this round.
  void charge_received(VertexId v, std::uint64_t count);

  /// Symmetric broadcast shorthand for rounds in which every awake node
  /// broadcasts on all ports: v sends deg(v), of which `awake_neighbors`
  /// are delivered, and receives exactly `awake_neighbors` in turn.
  void charge_symmetric_broadcast(VertexId v, std::uint64_t awake_neighbors,
                                  std::uint32_t bits);

  /// Lossy symmetric broadcast: of v's `awake_neighbors` reachable
  /// targets only `delivered` survived the link draws. Loss being
  /// symmetric per link per round, v also hears exactly `delivered`
  /// messages. Reduces to the reliable form when delivered ==
  /// awake_neighbors.
  void charge_symmetric_broadcast(VertexId v, std::uint64_t awake_neighbors,
                                  std::uint64_t delivered,
                                  std::uint32_t bits);

  /// Records v's output and decision instant. Idempotent like
  /// Context::decide: only the first call sticks.
  void decide(VertexId v, std::int64_t output, VirtualRound round);

  /// Records v's termination round (awake + trailing sleep, matching
  /// the coroutine scheduler's finish_round convention).
  void finish(VertexId v, VirtualRound round);

  /// Appends v to the chunk's ordered output list; scan_awake returns
  /// the concatenation in chunk index order, so a filter that keep()s
  /// in input order gets an order-preserving parallel filter.
  void keep(VertexId v) { kept_.push_back(v); }

  /// Appends v to the chunk's second ordered output list
  /// (ScanResult::dropped). apply_dynamics collects the nodes removed
  /// this round here, so downtime scheduling happens in a deterministic
  /// order no matter how the scan was chunked.
  void drop(VertexId v) { dropped_.push_back(v); }

  /// Free-form per-chunk counter; scan_awake returns the sum across
  /// chunks (protocols use it for trace statistics like isolated
  /// joins).
  void bump(std::uint64_t amount = 1) { user_ += amount; }

 private:
  friend class BulkEngine;
  explicit BulkChunk(BulkEngine* eng) : eng_(eng) {}

  BulkEngine* eng_;
  std::vector<VertexId> kept_;
  std::vector<VertexId> dropped_;
  std::uint64_t user_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t dropped_messages_ = 0;
  std::uint64_t injected_losses_ = 0;
  std::uint64_t congest_violations_ = 0;
  std::uint32_t max_message_bits_seen_ = 0;
  VirtualRound virtual_makespan_ = 0;
};

/// What a sharded scan produced: the chunk keep() and drop() lists each
/// concatenated in chunk index order, and the sum of the chunk bump()
/// counters.
struct ScanResult {
  std::vector<VertexId> kept;
  std::vector<VertexId> dropped;
  std::uint64_t user = 0;
};

/// The shared accounting and awake-set substrate bulk protocols run on.
///
/// A protocol executes one virtual round by (1) mark_awake() with the
/// round's awake set, (2) charge_round(), (3) scan_awake() over the set
/// doing its own logic over CSR spans, calling the BulkChunk accounting
/// methods as it goes. Rounds whose awake set is unchanged (e.g. the
/// three communication rounds of one SleepingMISRecursive frame) may
/// skip re-marking.
class BulkEngine {
 public:
  BulkEngine(const Graph& g, std::uint64_t seed, BulkOptions options = {});

  const Graph& graph() const { return graph_; }
  std::uint64_t n() const { return graph_.num_vertices(); }
  std::uint64_t seed() const { return seed_; }
  const BulkOptions& options() const { return options_; }

  /// Per-node RNG stream; identical to the stream sim::Network hands the
  /// node's Context (Rng(seed).split(v)), so protocols that draw in the
  /// same per-node order reproduce coroutine runs bit for bit.
  Rng node_rng(VertexId v) const { return master_.split(v); }

  // --- sharding ------------------------------------------------------

  /// Runs fn(chunk, sub-span) over contiguous chunks of `vs`, in
  /// parallel when a pool is configured and |vs| reaches the cutoff,
  /// single-chunk on the calling thread otherwise. Chunk accounting
  /// partials merge into the metrics in chunk index order after the
  /// barrier; both paths execute identical per-node code, so results
  /// are bitwise independent of the lane count.
  ScanResult scan_awake(
      std::span<const VertexId> vs,
      const std::function<void(BulkChunk&, std::span<const VertexId>)>& fn);

  /// Range analogue of scan_awake for index loops that are not over an
  /// awake vector (e.g. drawing per-node coins for all v in [0, n)).
  ScanResult scan_range(
      std::size_t total,
      const std::function<void(BulkChunk&, std::size_t begin,
                               std::size_t end)>& fn);

  // --- awake-set lifecycle ------------------------------------------

  /// Installs `awake` as the current awake set (epoch stamp, O(|awake|),
  /// sharded over the pool when one is configured).
  void mark_awake(std::span<const VertexId> awake);

  /// True iff v is in the current awake set.
  bool is_awake(VertexId v) const { return awake_epoch_[v] == epoch_; }

  /// Charges one awake round at virtual round `round` to every node of
  /// `awake` (which must equal the currently marked set).
  void charge_round(std::span<const VertexId> awake, VirtualRound round);

  // --- fault injection (fault/fault.h) ------------------------------

  /// True iff the run's plan injects message loss / crashes. Protocols
  /// hoist these so the fault-free hot loops stay branch-predictable.
  bool lossy() const { return fault_.has_loss(); }
  bool crashy() const { return fault_.has_crashes(); }

  /// True iff the membership can change mid-run (crashes, mid-run
  /// churn, recovery re-entries): the gate protocols hoist for the
  /// apply_dynamics round prologue.
  bool dynamic() const {
    return fault_.has_crashes() || fault_.has_live_churn();
  }

  /// Is the undirected link {a, b} up at `round`? Symmetric keyed draw:
  /// both directions, every lane, and the coroutine scheduler compute
  /// the identical bit. Always true without a loss plan.
  bool link_up(VertexId a, VertexId b, VirtualRound round) const {
    const RoundHalves halves = round_halves(round);
    return !fault_.link_down(a, b, halves.lo, halves.hi);
  }

  /// True iff v is fail-stopped right now (crash recovery clears the
  /// flag when the node re-enters).
  bool crashed(VertexId v) const {
    return !crashed_.empty() && crashed_[v] != 0;
  }

  /// True iff v is currently out via mid-run churn.
  bool departed(VertexId v) const {
    return !departed_.empty() && departed_[v] != 0;
  }

  /// True iff v is currently out of the network for any reason.
  bool down(VertexId v) const { return crashed(v) || departed(v); }

  /// Live-dynamics round prologue: evaluates the crash and mid-run
  /// leave draws for every node of `awake` at `round` and re-admits
  /// every down node whose keyed-draw downtime has elapsed. Returns the
  /// survivors in input order (order-preserving sharded filter)
  /// followed by the re-entrants in (due round, node id) order.
  ///
  /// Removals: crashed nodes are fail-stopped (flagged, finish-stamped,
  /// counted in Metrics::crashed_nodes); under RecoverSpec their
  /// comeback round is scheduled from a keyed downtime draw. Leavers
  /// (LiveChurnSpec) are treated likewise, with their rejoin downtime
  /// drawn from the leave stream itself. Already-down nodes in `awake`
  /// are dropped silently (stale ancestor member lists in the
  /// SleepingMIS recursion legitimately carry nodes that left inside a
  /// child frame).
  ///
  /// Re-entries: the engine clears the node's down flag and decision
  /// state (it re-enters undecided) and calls `on_reenter` so the
  /// protocol can reset its own per-node state before the node is
  /// appended to the returned set.
  ///
  /// Call before mark_awake() / charge_round() of every dynamic round;
  /// a no-op pass-through when dynamic() is false. Matching the
  /// coroutine scheduler, a round whose every awake node crashes (and
  /// that admits no re-entrant) still counts as a distinct active
  /// round. Every draw is keyed on (node, round), so the returned set —
  /// and all bookkeeping — is bitwise independent of the lane count.
  std::vector<VertexId> apply_dynamics(
      std::vector<VertexId> awake, VirtualRound round,
      const std::function<void(VertexId)>& on_reenter = {});

  // --- single-node accounting (serial convenience) ------------------

  /// One-node forms of the BulkChunk accounting methods, for serial
  /// protocol phases outside any scan.
  void charge_send(VertexId v, std::uint64_t attempted,
                   std::uint64_t delivered, std::uint32_t bits,
                   std::uint64_t lost = 0);
  void charge_received(VertexId v, std::uint64_t count);
  void charge_symmetric_broadcast(VertexId v, std::uint64_t awake_neighbors,
                                  std::uint32_t bits);
  void decide(VertexId v, std::int64_t output, VirtualRound round);
  void finish(VertexId v, VirtualRound round);

  bool decided(VertexId v) const { return decided_[v] != 0; }
  std::int64_t output(VertexId v) const { return outputs_[v]; }

  sim::Metrics& metrics() { return metrics_; }

  /// True when per-node sim::Metrics are maintained (BulkOptions::
  /// node_metrics); the memory-diet mode for the 10^8 regime disables
  /// them.
  bool node_metrics_enabled() const { return options_.node_metrics; }

  /// Finalizes makespan and moves the run's results out.
  BulkResult take_result();

 private:
  friend class BulkChunk;

  // Folds one chunk's aggregate partials into the metrics. Called in
  // chunk index order.
  void merge_chunk(const BulkChunk& chunk);

  const Graph& graph_;
  BulkOptions options_;
  std::uint64_t seed_;
  Rng master_;
  sim::Metrics metrics_;
  // outputs_ stays std::vector: take_result() moves it into
  // BulkResult::outputs, and it is write-once rather than scanned
  // every round.
  std::vector<std::int64_t> outputs_;
  // The per-round hot arrays are PodVector + util::sharded_fill so
  // BulkOptions::first_touch can place each lane's slice on its own
  // pages.
  util::PodVector<std::uint8_t> decided_;
  // 32-bit epoch stamps keep the array at 4 bytes/node for the 10^8
  // regime; mark_awake resets the array on the (theoretical) wrap.
  util::PodVector<std::uint32_t> awake_epoch_;
  std::uint32_t epoch_ = 0;
  VirtualRound virtual_makespan_ = 0;
  // Telemetry-only scan counter: groups one traced scan's chunk spans
  // in the obs export. Bumped only while a recorder is installed and
  // never read by the engine or any protocol.
  std::uint64_t obs_scan_seq_ = 0;
  // Telemetry-only: last burst-channel epoch marked in the export
  // (charge_round emits an instant per rollover). Never read by any
  // decision; starts at the wrap value so epoch 0 is marked too.
  VirtualRound obs_burst_epoch_ = static_cast<VirtualRound>(-1);
  fault::FaultState fault_;
  // crashed_[v] != 0 iff v is fail-stopped right now; allocated only
  // under a plan with crash faults (each slot is written by the lane
  // owning v; recovery re-entries clear it serially).
  std::vector<std::uint8_t> crashed_;
  // departed_[v] != 0 iff v is out via mid-run churn; allocated only
  // under a plan with live churn.
  std::vector<std::uint8_t> departed_;
  // Scheduled comebacks (crash recoveries and churn rejoins), a binary
  // min-heap on (due round, node id) — a deterministic pop order no
  // matter in which round the entries were pushed.
  struct PendingReturn {
    VirtualRound at = 0;
    VertexId node = 0;
  };
  static bool returns_later(const PendingReturn& a, const PendingReturn& b) {
    return a.at > b.at || (a.at == b.at && a.node > b.node);
  }
  std::vector<PendingReturn> pending_returns_;
};

// --- BulkChunk inline implementations --------------------------------

inline void BulkChunk::charge_send(VertexId v, std::uint64_t attempted,
                                   std::uint64_t delivered, std::uint32_t bits,
                                   std::uint64_t lost) {
  if (attempted == 0) return;
  if (eng_->options_.node_metrics) {
    eng_->metrics_.node[v].messages_sent += attempted;
  }
  total_messages_ += delivered;
  dropped_messages_ += attempted - delivered - lost;
  injected_losses_ += lost;
  max_message_bits_seen_ = std::max(max_message_bits_seen_, bits);
  if (eng_->options_.max_message_bits != 0 &&
      bits > eng_->options_.max_message_bits) {
    congest_violations_ += attempted;
    if (eng_->options_.throw_on_congest_violation) {
      // Propagates through the pool's fork-join rethrow in parallel
      // scans. Chunk partials of an aborted scan are discarded.
      throw sim::CongestViolation(
          "message of " + std::to_string(bits) + " bits exceeds CONGEST " +
          "budget of " + std::to_string(eng_->options_.max_message_bits));
    }
  }
}

inline void BulkChunk::charge_received(VertexId v, std::uint64_t count) {
  if (eng_->options_.node_metrics) {
    eng_->metrics_.node[v].messages_received += count;
  }
}

inline void BulkChunk::charge_symmetric_broadcast(VertexId v,
                                                  std::uint64_t awake_neighbors,
                                                  std::uint32_t bits) {
  charge_send(v, eng_->graph_.degree(v), awake_neighbors, bits);
  charge_received(v, awake_neighbors);
}

inline void BulkChunk::charge_symmetric_broadcast(VertexId v,
                                                  std::uint64_t awake_neighbors,
                                                  std::uint64_t delivered,
                                                  std::uint32_t bits) {
  charge_send(v, eng_->graph_.degree(v), delivered, bits,
              awake_neighbors - delivered);
  charge_received(v, delivered);
}

inline void BulkChunk::decide(VertexId v, std::int64_t output,
                              VirtualRound round) {
  if (eng_->decided_[v] != 0) return;
  eng_->decided_[v] = 1;
  eng_->outputs_[v] = output;
  if (eng_->options_.node_metrics) {
    auto& m = eng_->metrics_.node[v];
    m.decided_round = saturate_round(round);
    m.awake_at_decision = m.awake_rounds;
  }
}

inline void BulkChunk::finish(VertexId v, VirtualRound round) {
  if (eng_->options_.node_metrics) {
    eng_->metrics_.node[v].finish_round = saturate_round(round);
  }
  virtual_makespan_ = std::max(virtual_makespan_, round);
}

/// A protocol implemented against BulkEngine. One instance drives all
/// nodes of one run (flat state belongs to the protocol object).
class BulkProtocol {
 public:
  virtual ~BulkProtocol() = default;
  virtual std::string_view name() const = 0;
  virtual void run(BulkEngine& engine) = 0;
};

/// Runs `protocol` over `g` and returns metrics + outputs; the bulk
/// analogue of sim::run_protocol.
BulkResult run_bulk(const Graph& g, std::uint64_t seed,
                    BulkProtocol& protocol, BulkOptions options = {});

}  // namespace slumber::bulk
