// The bulk execution engine: flat-state, awake-set-driven simulation.
//
// The coroutine scheduler in src/sim pays a coroutine frame per
// recursion level per node, a std::function dispatch per protocol, and
// map-bucket churn per wake-up, which caps single trials at laptop
// scale. This engine is the second execution back end: protocols keep
// their per-node state in flat arrays, and each synchronous round is
// executed by iterating an explicit awake set over the graph's CSR
// neighbor spans. Nothing is allocated per node-round.
//
// Semantics are the reliable (fault-free) sleeping model of
// sim::Network, and the accounting is bitwise-compatible: a protocol
// ported to this engine reproduces the coroutine engine's outputs and
// sim::Metrics exactly (tests/bulk_engine_test.cc pins this). Fault
// injection (crashes, message loss) stays coroutine-only.
//
// Virtual rounds are tracked in 128 bits: Algorithm 1's schedule spans
// T(K) = 3(2^K - 1) rounds with K = ceil(3 log2 n), which overflows 64
// bits for n > ~2M. Values stored into the (64-bit) sim::Metrics fields
// saturate at 2^64-1; at cross-validation sizes the saturation is the
// identity, so equivalence with the coroutine engine is exact there.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "sim/metrics.h"
#include "sim/network.h"  // sim::CongestViolation, congest_bits_for
#include "util/rng.h"

namespace slumber::bulk {

/// 128-bit virtual round clock (see the header comment).
using VirtualRound = unsigned __int128;

/// Saturating narrow to the 64-bit sim::Metrics round fields.
inline std::uint64_t saturate_round(VirtualRound round) {
  constexpr VirtualRound kMax = ~std::uint64_t{0};
  return round > kMax ? ~std::uint64_t{0} : static_cast<std::uint64_t>(round);
}

struct BulkOptions {
  /// CONGEST budget in bits; 0 disables the check (same contract as
  /// sim::NetworkOptions).
  std::uint32_t max_message_bits = 0;
  /// If true, a too-wide message throws sim::CongestViolation; otherwise
  /// it is only counted in Metrics::congest_violations.
  bool throw_on_congest_violation = true;
};

struct BulkResult {
  sim::Metrics metrics;
  std::vector<std::int64_t> outputs;
  /// Exact (un-saturated) makespan in virtual rounds.
  VirtualRound virtual_makespan = 0;
};

/// The shared accounting and awake-set substrate bulk protocols run on.
///
/// A protocol executes one virtual round by (1) mark_awake() with the
/// round's awake set, (2) charge_round(), (3) iterating the set doing
/// its own logic over CSR spans, calling the charge_* accounting
/// methods, decide(), and finish() as it goes. Rounds whose awake set
/// is unchanged (e.g. the three communication rounds of one
/// SleepingMISRecursive frame) may skip re-marking.
class BulkEngine {
 public:
  BulkEngine(const Graph& g, std::uint64_t seed, BulkOptions options = {});

  const Graph& graph() const { return graph_; }
  std::uint64_t n() const { return graph_.num_vertices(); }
  std::uint64_t seed() const { return seed_; }

  /// Per-node RNG stream; identical to the stream sim::Network hands the
  /// node's Context (Rng(seed).split(v)), so protocols that draw in the
  /// same per-node order reproduce coroutine runs bit for bit.
  Rng node_rng(VertexId v) const { return master_.split(v); }

  // --- awake-set lifecycle ------------------------------------------

  /// Installs `awake` as the current awake set (epoch stamp, O(|awake|)).
  void mark_awake(std::span<const VertexId> awake);

  /// True iff v is in the current awake set.
  bool is_awake(VertexId v) const { return awake_epoch_[v] == epoch_; }

  /// Charges one awake round at virtual round `round` to every node of
  /// `awake` (which must equal the currently marked set).
  void charge_round(std::span<const VertexId> awake, VirtualRound round);

  // --- message accounting -------------------------------------------

  /// Sender-side accounting: v attempted `attempted` sends of a
  /// `bits`-wide message, of which `delivered` reached awake nodes (the
  /// rest are dropped, as the sleeping model specifies).
  void charge_send(VertexId v, std::uint64_t attempted,
                   std::uint64_t delivered, std::uint32_t bits);

  /// Receiver-side accounting: v received `count` messages this round.
  void charge_received(VertexId v, std::uint64_t count) {
    metrics_.node[v].messages_received += count;
  }

  /// Symmetric broadcast shorthand for rounds in which every awake node
  /// broadcasts on all ports: v sends deg(v), of which `awake_neighbors`
  /// are delivered, and receives exactly `awake_neighbors` in turn.
  void charge_symmetric_broadcast(VertexId v, std::uint64_t awake_neighbors,
                                  std::uint32_t bits) {
    charge_send(v, graph_.degree(v), awake_neighbors, bits);
    charge_received(v, awake_neighbors);
  }

  // --- outputs ------------------------------------------------------

  /// Records v's output and decision instant. Idempotent like
  /// Context::decide: only the first call sticks.
  void decide(VertexId v, std::int64_t output, VirtualRound round);

  /// Records v's termination round (awake + trailing sleep, matching
  /// the coroutine scheduler's finish_round convention).
  void finish(VertexId v, VirtualRound round);

  bool decided(VertexId v) const { return decided_[v] != 0; }
  std::int64_t output(VertexId v) const { return outputs_[v]; }

  sim::Metrics& metrics() { return metrics_; }

  /// Finalizes makespan and moves the run's results out.
  BulkResult take_result();

 private:
  const Graph& graph_;
  BulkOptions options_;
  std::uint64_t seed_;
  Rng master_;
  sim::Metrics metrics_;
  std::vector<std::int64_t> outputs_;
  std::vector<std::uint8_t> decided_;
  std::vector<std::uint64_t> awake_epoch_;
  std::uint64_t epoch_ = 0;
  VirtualRound virtual_makespan_ = 0;
};

/// A protocol implemented against BulkEngine. One instance drives all
/// nodes of one run (flat state belongs to the protocol object).
class BulkProtocol {
 public:
  virtual ~BulkProtocol() = default;
  virtual std::string_view name() const = 0;
  virtual void run(BulkEngine& engine) = 0;
};

/// Runs `protocol` over `g` and returns metrics + outputs; the bulk
/// analogue of sim::run_protocol.
BulkResult run_bulk(const Graph& g, std::uint64_t seed,
                    BulkProtocol& protocol, BulkOptions options = {});

}  // namespace slumber::bulk
