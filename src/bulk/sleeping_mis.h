// Bulk-engine port of Algorithm 1 (core/sleeping_mis.h).
//
// The awake schedule of SleepingMISRecursive is an oblivious function of
// each node's coin bits and the evolving tri-state statuses: at any
// virtual round exactly one recursion frame owns the clock, and the
// awake set of that round is exactly the frame's participant set. The
// bulk port therefore walks the recursion tree depth-first (which IS
// virtual-time order), carrying explicit participant lists, and executes
// each frame's three communication rounds as flat scans over CSR
// neighbor spans: no coroutine frames, no message objects, no wake
// buckets. Coin bits are drawn from the same per-node RNG streams in the
// same order as the coroutine implementation, so outputs, metrics, and
// RecursionTrace contents match bit for bit.
#pragma once

#include <memory>

#include "bulk/engine.h"
#include "core/instrumentation.h"
#include "core/sleeping_mis.h"

namespace slumber::bulk {

class BulkSleepingMis final : public BulkProtocol {
 public:
  explicit BulkSleepingMis(core::SleepingMisOptions options = {},
                           core::RecursionTrace* trace = nullptr)
      : options_(options), trace_(trace) {}

  std::string_view name() const override { return "SleepingMIS/bulk"; }
  void run(BulkEngine& engine) override;

 private:
  core::SleepingMisOptions options_;
  core::RecursionTrace* trace_;
};

/// Convenience: one bulk Algorithm-1 trial over `g` with `seed`.
BulkResult bulk_sleeping_mis(const Graph& g, std::uint64_t seed,
                             core::SleepingMisOptions options = {},
                             core::RecursionTrace* trace = nullptr,
                             BulkOptions engine_options = {});

}  // namespace slumber::bulk
