// Bulk-engine ports of the baseline protocols: Luby A/B, the CRT
// randomized greedy, Israeli-Itai matching, and beeping MIS.
//
// These protocols are round-lockstep in the traditional model — every
// still-active node is awake in every round until it terminates — so
// the bulk port maintains one shrinking alive list and executes each
// round as a flat scan, drawing from the same per-node RNG streams in
// the same order as the coroutine implementations. Outputs and
// sim::Metrics match the coroutine engine bit for bit
// (tests/bulk_engine_test.cc).
#pragma once

#include <memory>

#include "algos/beeping_mis.h"
#include "algos/greedy.h"
#include "algos/israeli_itai.h"
#include "algos/luby.h"
#include "algos/matching.h"  // algos::MisEngine
#include "bulk/engine.h"
#include "core/instrumentation.h"

namespace slumber::bulk {

class BulkLubyA final : public BulkProtocol {
 public:
  explicit BulkLubyA(algos::LubyOptions options = {}) : options_(options) {}
  std::string_view name() const override { return "Luby-A/bulk"; }
  void run(BulkEngine& engine) override;

 private:
  algos::LubyOptions options_;
};

class BulkLubyB final : public BulkProtocol {
 public:
  explicit BulkLubyB(algos::LubyOptions options = {}) : options_(options) {}
  std::string_view name() const override { return "Luby-B/bulk"; }
  void run(BulkEngine& engine) override;

 private:
  algos::LubyOptions options_;
};

class BulkGreedy final : public BulkProtocol {
 public:
  explicit BulkGreedy(algos::GreedyOptions options = {}) : options_(options) {}
  std::string_view name() const override { return "CRT-greedy/bulk"; }
  void run(BulkEngine& engine) override;

 private:
  algos::GreedyOptions options_;
};

class BulkIsraeliItai final : public BulkProtocol {
 public:
  explicit BulkIsraeliItai(algos::IsraeliItaiOptions options = {})
      : options_(options) {}
  std::string_view name() const override { return "Israeli-Itai/bulk"; }
  void run(BulkEngine& engine) override;

 private:
  algos::IsraeliItaiOptions options_;
};

class BulkBeepingMis final : public BulkProtocol {
 public:
  explicit BulkBeepingMis(algos::BeepingMisOptions options = {})
      : options_(options) {}
  std::string_view name() const override { return "Beeping/bulk"; }
  void run(BulkEngine& engine) override;

 private:
  algos::BeepingMisOptions options_;
};

/// Bulk implementation of an analysis-layer MIS engine, or nullptr when
/// the engine has no bulk port yet (Fast-SleepingMIS, Ghaffari). `trace`
/// is honored by the sleeping engine only, mirroring run_mis.
std::unique_ptr<BulkProtocol> bulk_mis_protocol(
    algos::MisEngine engine, core::RecursionTrace* trace = nullptr);

/// True iff `engine` has a bulk implementation.
bool bulk_supports(algos::MisEngine engine);

}  // namespace slumber::bulk
