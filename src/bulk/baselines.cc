#include "bulk/baselines.h"

#include <atomic>
#include <bit>
#include <numeric>
#include <utility>

#include "algos/common.h"
#include "bulk/sleeping_mis.h"
#include "sim/message.h"

namespace slumber::bulk {
namespace {

using algos::default_iteration_cap;
using algos::priority_beats;
using algos::rank_bits_for;

/// One persistent RNG stream per node, identical to the streams
/// sim::Network hands out. Each node's stream is advanced only by the
/// lane owning the node, so sharded scans draw exactly the serial
/// sequence.
std::vector<Rng> node_streams(BulkEngine& eng) {
  const auto n = eng.graph().num_vertices();
  std::vector<Rng> rng;
  rng.reserve(n);
  for (VertexId v = 0; v < n; ++v) rng.push_back(eng.node_rng(v));
  return rng;
}

std::vector<VertexId> all_vertices(VertexId n) {
  std::vector<VertexId> alive(n);
  std::iota(alive.begin(), alive.end(), VertexId{0});
  return alive;
}

}  // namespace

void BulkLubyA::run(BulkEngine& eng) {
  const Graph& g = eng.graph();
  const VertexId n = g.num_vertices();
  if (n == 0) return;
  const std::uint32_t rank_bits = rank_bits_for(n);
  const std::uint32_t rank_msg_bits = sim::Message::rank(0, rank_bits).bits;
  const std::uint32_t in_mis_bits = sim::Message::in_mis().bits;
  const std::uint64_t cap = options_.max_iterations != 0
                                ? options_.max_iterations
                                : default_iteration_cap(n);
  std::vector<Rng> rng = node_streams(eng);
  std::vector<VertexId> alive = all_vertices(n);
  std::vector<std::uint64_t> priority(n, 0);
  std::vector<std::uint8_t> win(n, 0);
  const bool dynamic = eng.dynamic();
  const bool lossy = eng.lossy();
  // Re-entrants resume as fresh non-winners; their priority is redrawn
  // with everyone else's at the next round 1.
  const auto reenter = [&](VertexId v) {
    win[v] = 0;
    priority[v] = 0;
  };
  VirtualRound round = 0;

  for (std::uint64_t iteration = 0; iteration < cap && !alive.empty();
       ++iteration) {
    // Round 1: fresh priorities; strict local maxima win.
    ++round;
    if (dynamic) {
      alive = eng.apply_dynamics(std::move(alive), round, reenter);
      if (alive.empty()) break;
    }
    eng.mark_awake(alive);
    eng.charge_round(alive, round);
    eng.scan_awake(alive,
                   [&](BulkChunk&, std::span<const VertexId> part) {
                     for (const VertexId v : part) {
                       priority[v] = rng[v].next() >> (64 - rank_bits);
                     }
                   });
    eng.scan_awake(alive, [&](BulkChunk& chunk,
                              std::span<const VertexId> part) {
      for (const VertexId v : part) {
        std::uint64_t awake_nbrs = 0;
        std::uint64_t heard = 0;
        bool w = true;
        for (const VertexId u : g.neighbors(v)) {
          if (!eng.is_awake(u)) continue;
          ++awake_nbrs;
          if (lossy && !eng.link_up(v, u, round)) continue;
          ++heard;
          if (priority_beats(priority[u], u, priority[v], v)) w = false;
        }
        chunk.charge_symmetric_broadcast(v, awake_nbrs, heard, rank_msg_bits);
        win[v] = w ? 1 : 0;
      }
    });

    // Round 2: winners announce and join; dominated neighbors exit.
    ++round;
    if (dynamic) {
      alive = eng.apply_dynamics(std::move(alive), round, reenter);
      eng.mark_awake(alive);  // membership changed
    }
    eng.charge_round(alive, round);
    alive = eng.scan_awake(
                   alive,
                   [&](BulkChunk& chunk, std::span<const VertexId> part) {
                     for (const VertexId v : part) {
                       std::uint64_t awake_nbrs = 0;
                       std::uint64_t delivered_out = 0;
                       std::uint64_t winners_adjacent = 0;
                       for (const VertexId u : g.neighbors(v)) {
                         if (!eng.is_awake(u)) continue;
                         ++awake_nbrs;
                         // One symmetric draw decides both directions.
                         if (lossy && !eng.link_up(v, u, round)) continue;
                         ++delivered_out;
                         winners_adjacent += win[u];
                       }
                       if (win[v] != 0) {
                         chunk.charge_send(v, g.degree(v), delivered_out,
                                           in_mis_bits,
                                           awake_nbrs - delivered_out);
                       }
                       chunk.charge_received(v, winners_adjacent);
                       if (win[v] != 0) {
                         chunk.decide(v, 1, round);
                         chunk.finish(v, round);
                       } else if (winners_adjacent > 0) {
                         chunk.decide(v, 0, round);
                         chunk.finish(v, round);
                       } else {
                         chunk.keep(v);
                       }
                     }
                   })
                .kept;
  }
  // Iteration cap exhausted: remaining nodes return undecided.
  const VirtualRound last = round;
  eng.scan_awake(alive, [&](BulkChunk& chunk, std::span<const VertexId> part) {
    for (const VertexId v : part) chunk.finish(v, last);
  });
}

void BulkLubyB::run(BulkEngine& eng) {
  const Graph& g = eng.graph();
  const VertexId n = g.num_vertices();
  if (n == 0) return;
  const std::uint32_t hello_bits = sim::Message::hello().bits;
  const std::uint32_t mark_bits = 8 + rank_bits_for(n) / 3;
  const std::uint32_t in_mis_bits = sim::Message::in_mis().bits;
  const std::uint64_t cap = options_.max_iterations != 0
                                ? options_.max_iterations
                                : default_iteration_cap(n);
  std::vector<Rng> rng = node_streams(eng);
  std::vector<VertexId> alive = all_vertices(n);
  std::vector<std::uint64_t> active_deg(n, 0);
  std::vector<std::uint8_t> marked(n, 0);
  std::vector<std::uint8_t> win(n, 0);
  const bool dynamic = eng.dynamic();
  const bool lossy = eng.lossy();
  // Re-entrants restart the iteration unmarked with no stale win or
  // degree estimate; both are recomputed from round 1's probe.
  const auto reenter = [&](VertexId v) {
    marked[v] = 0;
    win[v] = 0;
    active_deg[v] = 0;
  };
  VirtualRound round = 0;

  for (std::uint64_t iteration = 0; iteration < cap && !alive.empty();
       ++iteration) {
    // Round 1: probe active degree; mark w.p. 1/(2d) (isolated nodes
    // mark outright, drawing nothing — note the short-circuit). Under
    // loss the degree estimate is the hello count actually heard.
    ++round;
    if (dynamic) {
      alive = eng.apply_dynamics(std::move(alive), round, reenter);
      if (alive.empty()) break;
    }
    eng.mark_awake(alive);
    eng.charge_round(alive, round);
    eng.scan_awake(alive, [&](BulkChunk& chunk,
                              std::span<const VertexId> part) {
      for (const VertexId v : part) {
        std::uint64_t awake_nbrs = 0;
        std::uint64_t heard = 0;
        for (const VertexId u : g.neighbors(v)) {
          if (!eng.is_awake(u)) continue;
          ++awake_nbrs;
          if (!lossy || eng.link_up(v, u, round)) ++heard;
        }
        active_deg[v] = heard;
        chunk.charge_symmetric_broadcast(v, awake_nbrs, heard, hello_bits);
      }
    });
    eng.scan_awake(
        alive, [&](BulkChunk&, std::span<const VertexId> part) {
          for (const VertexId v : part) {
            marked[v] = (active_deg[v] == 0 ||
                         rng[v].bernoulli(
                             1.0 / (2.0 * static_cast<double>(active_deg[v]))))
                            ? 1
                            : 0;
          }
        });

    // Round 2: marked nodes exchange (degree, id); beaten marks unmark.
    ++round;
    if (dynamic) {
      alive = eng.apply_dynamics(std::move(alive), round, reenter);
      eng.mark_awake(alive);
    }
    eng.charge_round(alive, round);
    eng.scan_awake(alive, [&](BulkChunk& chunk,
                              std::span<const VertexId> part) {
      for (const VertexId v : part) {
        std::uint64_t awake_nbrs = 0;
        std::uint64_t delivered_out = 0;
        std::uint64_t marked_adjacent = 0;
        bool w = marked[v] != 0;
        for (const VertexId u : g.neighbors(v)) {
          if (!eng.is_awake(u)) continue;
          ++awake_nbrs;
          if (lossy && !eng.link_up(v, u, round)) continue;
          ++delivered_out;
          if (marked[u] == 0) continue;
          ++marked_adjacent;
          if (w && priority_beats(active_deg[u], u, active_deg[v], v)) {
            w = false;
          }
        }
        if (marked[v] != 0) {
          chunk.charge_send(v, g.degree(v), delivered_out, mark_bits,
                            awake_nbrs - delivered_out);
        }
        chunk.charge_received(v, marked_adjacent);
        win[v] = w ? 1 : 0;
      }
    });

    // Round 3: winners announce and join; dominated neighbors exit.
    ++round;
    if (dynamic) {
      alive = eng.apply_dynamics(std::move(alive), round, reenter);
      eng.mark_awake(alive);
    }
    eng.charge_round(alive, round);
    alive = eng.scan_awake(
                   alive,
                   [&](BulkChunk& chunk, std::span<const VertexId> part) {
                     for (const VertexId v : part) {
                       std::uint64_t awake_nbrs = 0;
                       std::uint64_t delivered_out = 0;
                       std::uint64_t winners_adjacent = 0;
                       for (const VertexId u : g.neighbors(v)) {
                         if (!eng.is_awake(u)) continue;
                         ++awake_nbrs;
                         if (lossy && !eng.link_up(v, u, round)) continue;
                         ++delivered_out;
                         winners_adjacent += win[u];
                       }
                       if (win[v] != 0) {
                         chunk.charge_send(v, g.degree(v), delivered_out,
                                           in_mis_bits,
                                           awake_nbrs - delivered_out);
                       }
                       chunk.charge_received(v, winners_adjacent);
                       if (win[v] != 0) {
                         chunk.decide(v, 1, round);
                         chunk.finish(v, round);
                       } else if (winners_adjacent > 0) {
                         chunk.decide(v, 0, round);
                         chunk.finish(v, round);
                       } else {
                         chunk.keep(v);
                       }
                     }
                   })
                .kept;
  }
  const VirtualRound last = round;
  eng.scan_awake(alive, [&](BulkChunk& chunk, std::span<const VertexId> part) {
    for (const VertexId v : part) chunk.finish(v, last);
  });
}

void BulkGreedy::run(BulkEngine& eng) {
  const Graph& g = eng.graph();
  const VertexId n = g.num_vertices();
  if (n == 0) return;
  const std::uint32_t rank_bits = rank_bits_for(n);
  const std::uint32_t rank_msg_bits = sim::Message::rank(0, rank_bits).bits;
  const std::uint32_t in_mis_bits = sim::Message::in_mis().bits;
  const std::uint64_t cap = options_.max_iterations != 0
                                ? options_.max_iterations
                                : default_iteration_cap(n);
  // One rank per node, drawn up front (round 0) by every node.
  std::vector<std::uint64_t> rank(n);
  if (options_.ranks_out != nullptr && options_.ranks_out->size() != n) {
    options_.ranks_out->resize(n);
  }
  eng.scan_range(n, [&](BulkChunk&, std::size_t begin, std::size_t end) {
    for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
      rank[v] = eng.node_rng(v).next() >> (64 - rank_bits);
      if (options_.ranks_out != nullptr) (*options_.ranks_out)[v] = rank[v];
    }
  });
  std::vector<VertexId> alive = all_vertices(n);
  std::vector<std::uint8_t> win(n, 0);
  const bool dynamic = eng.dynamic();
  const bool lossy = eng.lossy();
  // Ranks are static (drawn at round 0), so a re-entrant only clears
  // its stale win bit and resumes the compare-exchange loop.
  const auto reenter = [&](VertexId v) { win[v] = 0; };
  VirtualRound round = 0;

  for (std::uint64_t iteration = 0; iteration < cap && !alive.empty();
       ++iteration) {
    ++round;
    if (dynamic) {
      alive = eng.apply_dynamics(std::move(alive), round, reenter);
      if (alive.empty()) break;
    }
    eng.mark_awake(alive);
    eng.charge_round(alive, round);
    eng.scan_awake(alive, [&](BulkChunk& chunk,
                              std::span<const VertexId> part) {
      for (const VertexId v : part) {
        std::uint64_t awake_nbrs = 0;
        std::uint64_t heard = 0;
        bool w = true;
        for (const VertexId u : g.neighbors(v)) {
          if (!eng.is_awake(u)) continue;
          ++awake_nbrs;
          if (lossy && !eng.link_up(v, u, round)) continue;
          ++heard;
          if (priority_beats(rank[u], u, rank[v], v)) w = false;
        }
        chunk.charge_symmetric_broadcast(v, awake_nbrs, heard, rank_msg_bits);
        win[v] = w ? 1 : 0;
      }
    });

    ++round;
    if (dynamic) {
      alive = eng.apply_dynamics(std::move(alive), round, reenter);
      eng.mark_awake(alive);
    }
    eng.charge_round(alive, round);
    alive = eng.scan_awake(
                   alive,
                   [&](BulkChunk& chunk, std::span<const VertexId> part) {
                     for (const VertexId v : part) {
                       std::uint64_t awake_nbrs = 0;
                       std::uint64_t delivered_out = 0;
                       std::uint64_t winners_adjacent = 0;
                       for (const VertexId u : g.neighbors(v)) {
                         if (!eng.is_awake(u)) continue;
                         ++awake_nbrs;
                         if (lossy && !eng.link_up(v, u, round)) continue;
                         ++delivered_out;
                         winners_adjacent += win[u];
                       }
                       if (win[v] != 0) {
                         chunk.charge_send(v, g.degree(v), delivered_out,
                                           in_mis_bits,
                                           awake_nbrs - delivered_out);
                       }
                       chunk.charge_received(v, winners_adjacent);
                       if (win[v] != 0) {
                         chunk.decide(v, 1, round);
                         chunk.finish(v, round);
                       } else if (winners_adjacent > 0) {
                         chunk.decide(v, 0, round);
                         chunk.finish(v, round);
                       } else {
                         chunk.keep(v);
                       }
                     }
                   })
                .kept;
  }
  const VirtualRound last = round;
  eng.scan_awake(alive, [&](BulkChunk& chunk, std::span<const VertexId> part) {
    for (const VertexId v : part) chunk.finish(v, last);
  });
}

void BulkIsraeliItai::run(BulkEngine& eng) {
  const Graph& g = eng.graph();
  const VertexId n = g.num_vertices();
  if (n == 0) return;
  constexpr std::uint32_t kIiBits = 10;  // tag + 2-bit discriminator
  const std::uint64_t cap = options_.max_iterations != 0
                                ? options_.max_iterations
                                : default_iteration_cap(n);
  std::vector<Rng> rng = node_streams(eng);
  std::vector<VertexId> alive = all_vertices(n);
  // Per-port active flags, indexed by CSR adjacency slot.
  std::vector<std::uint8_t> port_active(g.degree_sum(), 1);
  std::vector<std::uint32_t> active_count(n);
  for (VertexId v = 0; v < n; ++v) active_count[v] = g.degree(v);
  std::vector<std::uint8_t> proposer(n, 0);
  std::vector<VertexId> target(n, kInvalidVertex);
  std::vector<std::int64_t> partner(n, -1);
  std::vector<std::uint32_t> recv(n, 0);
  // Whether v's round-1 proposal actually arrived (captures both the
  // target's awake status and the round-1 link draw) — the acceptor
  // consults this instead of re-deriving last round's delivery.
  std::vector<std::uint8_t> sent_ok(n, 0);
  const bool dynamic = eng.dynamic();
  const bool lossy = eng.lossy();
  // A re-entrant resumes as an idle non-proposer with no pending match.
  // Its port view (port_active / active_count) survives the downtime:
  // matched neighbors it already struck stay struck, and any it missed
  // while away are struck again by later round-3 announcements or leave
  // it proposing to terminated nodes (delivery simply fails) — the same
  // staleness loss already handles.
  const auto reenter = [&](VertexId v) {
    proposer[v] = 0;
    target[v] = kInvalidVertex;
    partner[v] = -1;
    sent_ok[v] = 0;
    recv[v] = 0;
  };
  VirtualRound round = 0;

  for (std::uint64_t iteration = 0; iteration < cap && !alive.empty();
       ++iteration) {
    // Nodes whose active neighborhood emptied terminate unmatched. In
    // the coroutine engine this runs during the previous round's resume,
    // so the decision carries the current round stamp.
    const VirtualRound now = round;
    alive = eng.scan_awake(
                   alive,
                   [&](BulkChunk& chunk, std::span<const VertexId> part) {
                     for (const VertexId v : part) {
                       if (active_count[v] == 0) {
                         chunk.decide(v, -1, now);
                         chunk.finish(v, now);
                       } else {
                         chunk.keep(v);
                       }
                     }
                   })
                .kept;
    if (alive.empty()) break;

    // Role coins; proposers pick a uniformly random active port.
    eng.scan_awake(alive, [&](BulkChunk&, std::span<const VertexId> part) {
      for (const VertexId v : part) {
        partner[v] = -1;
        proposer[v] = rng[v].coin() ? 1 : 0;
        if (proposer[v] != 0) {
          std::uint64_t pick = rng[v].below(active_count[v]);
          const CsrOffset base = g.adjacency_offset(v);
          std::uint32_t port = 0;
          for (const std::uint32_t deg = g.degree(v); port < deg; ++port) {
            if (port_active[base + port] == 0) continue;
            if (pick == 0) break;
            --pick;
          }
          target[v] = g.neighbor(v, port);
        } else {
          target[v] = kInvalidVertex;
        }
      }
    });

    // Round 1: proposals travel one port each. Several proposers may
    // target one acceptor, so the receive tallies go through relaxed
    // atomic increments (an order-free integer sum).
    ++round;
    if (dynamic) {
      alive = eng.apply_dynamics(std::move(alive), round, reenter);
      if (alive.empty()) break;
    }
    eng.mark_awake(alive);
    eng.charge_round(alive, round);
    eng.scan_awake(alive, [&](BulkChunk&, std::span<const VertexId> part) {
      for (const VertexId v : part) recv[v] = 0;
    });
    eng.scan_awake(alive, [&](BulkChunk& chunk,
                              std::span<const VertexId> part) {
      for (const VertexId v : part) {
        if (proposer[v] == 0) continue;
        const VertexId t = target[v];
        const bool awake_t = eng.is_awake(t);
        const bool delivered =
            awake_t && (!lossy || eng.link_up(v, t, round));
        sent_ok[v] = delivered ? 1 : 0;
        chunk.charge_send(v, 1, delivered ? 1 : 0, kIiBits,
                          (awake_t && !delivered) ? 1 : 0);
        if (delivered) {
          std::atomic_ref(recv[t]).fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    eng.scan_awake(alive, [&](BulkChunk& chunk,
                              std::span<const VertexId> part) {
      for (const VertexId v : part) chunk.charge_received(v, recv[v]);
    });

    // Round 2: acceptors answer the lowest-port proposal; the accepted
    // proposer and the acceptor become partners. A proposer targets
    // exactly one node, so partner[w] and recv[w] have a unique writer.
    ++round;
    if (dynamic) {
      alive = eng.apply_dynamics(std::move(alive), round, reenter);
      eng.mark_awake(alive);
    }
    eng.charge_round(alive, round);
    eng.scan_awake(alive, [&](BulkChunk&, std::span<const VertexId> part) {
      for (const VertexId v : part) recv[v] = 0;
    });
    eng.scan_awake(alive, [&](BulkChunk& chunk,
                              std::span<const VertexId> part) {
      for (const VertexId u : part) {
        if (proposer[u] != 0) continue;
        const auto nbrs = g.neighbors(u);
        for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
          const VertexId w = nbrs[p];
          // Answer the lowest-port proposal that actually arrived last
          // round. The acceptor commits to the match when it sends;
          // under faults the accept itself may be lost, leaving w
          // unmatched (it will keep proposing) — realistic asymmetry.
          if (proposer[w] == 0 || target[w] != u || sent_ok[w] == 0) {
            continue;
          }
          const bool awake_w = eng.is_awake(w);
          const bool delivered =
              awake_w && (!lossy || eng.link_up(u, w, round));
          chunk.charge_send(u, 1, delivered ? 1 : 0, kIiBits,
                            (awake_w && !delivered) ? 1 : 0);
          partner[u] = static_cast<std::int64_t>(w);
          if (delivered) {
            ++recv[w];
            partner[w] = static_cast<std::int64_t>(u);
          }
          break;
        }
      }
    });
    eng.scan_awake(alive, [&](BulkChunk& chunk,
                              std::span<const VertexId> part) {
      for (const VertexId v : part) chunk.charge_received(v, recv[v]);
    });

    // Round 3: matched nodes announce and terminate; the rest strike
    // announced neighbors from their active port sets.
    ++round;
    if (dynamic) {
      alive = eng.apply_dynamics(std::move(alive), round, reenter);
      eng.mark_awake(alive);
    }
    eng.charge_round(alive, round);
    alive =
        eng.scan_awake(
               alive,
               [&](BulkChunk& chunk, std::span<const VertexId> part) {
                 for (const VertexId v : part) {
                   std::uint64_t awake_nbrs = 0;
                   std::uint64_t delivered_out = 0;
                   std::uint64_t matched_adjacent = 0;
                   const auto nbrs = g.neighbors(v);
                   const CsrOffset base = g.adjacency_offset(v);
                   for (std::uint32_t p = 0; p < nbrs.size(); ++p) {
                     const VertexId u = nbrs[p];
                     if (!eng.is_awake(u)) continue;
                     ++awake_nbrs;
                     if (lossy && !eng.link_up(v, u, round)) continue;
                     ++delivered_out;
                     if (partner[u] >= 0) {
                       ++matched_adjacent;
                       if (partner[v] < 0 && port_active[base + p] != 0) {
                         port_active[base + p] = 0;
                         --active_count[v];
                       }
                     }
                   }
                   if (partner[v] >= 0) {
                     chunk.charge_send(v, g.degree(v), delivered_out, kIiBits,
                                       awake_nbrs - delivered_out);
                   }
                   chunk.charge_received(v, matched_adjacent);
                   if (partner[v] >= 0) {
                     chunk.decide(v, partner[v], round);
                     chunk.finish(v, round);
                   } else {
                     chunk.keep(v);
                   }
                 }
               })
            .kept;
  }
  const VirtualRound last = round;
  eng.scan_awake(alive, [&](BulkChunk& chunk, std::span<const VertexId> part) {
    for (const VertexId v : part) chunk.finish(v, last);
  });
}

void BulkBeepingMis::run(BulkEngine& eng) {
  const Graph& g = eng.graph();
  const VertexId n = g.num_vertices();
  if (n == 0) return;
  const std::uint32_t beep_bits = sim::Message::beep().bits;
  const std::uint64_t phase_cap = options_.max_phases != 0
                                      ? options_.max_phases
                                      : default_iteration_cap(n);
  const std::uint32_t id_bits = static_cast<std::uint32_t>(
      std::bit_width(std::max<std::uint64_t>(n, 2) - 1));
  // Capped like algos/beeping_mis.cc so the 64-bit composite rank never
  // shifts out of range past n = 65536 (bit-compatibility requires the
  // identical cap).
  const std::uint32_t random_bits =
      std::min(rank_bits_for(n), 64 - id_bits);
  const std::uint32_t total_bits = random_bits + id_bits;
  std::vector<Rng> rng = node_streams(eng);
  std::vector<VertexId> alive = all_vertices(n);
  std::vector<std::uint64_t> rank(n, 0);
  std::vector<std::uint8_t> contending(n, 0);
  std::vector<std::uint8_t> beeper(n, 0);
  const bool dynamic = eng.dynamic();
  const bool lossy = eng.lossy();
  // A re-entrant sits out the rest of the current auction (it missed
  // the phase's candidate draw) and contends from the next phase.
  const auto reenter = [&](VertexId v) {
    contending[v] = 0;
    beeper[v] = 0;
    rank[v] = 0;
  };
  VirtualRound round = 0;

  for (std::uint64_t phase = 0; phase < phase_cap && !alive.empty(); ++phase) {
    eng.scan_awake(alive, [&](BulkChunk&, std::span<const VertexId> part) {
      for (const VertexId v : part) {
        const bool candidate = rng[v].bernoulli(options_.candidate_prob);
        rank[v] = candidate
                      ? (rng[v].below(std::uint64_t{1} << random_bits)
                         << id_bits) |
                            v
                      : 0;
        contending[v] = candidate ? 1 : 0;
      }
    });
    eng.mark_awake(alive);  // one awake set for the whole phase

    // Bit auction, most significant bit first.
    for (std::uint32_t slot = 0; slot < total_bits; ++slot) {
      ++round;
      if (dynamic) {
        alive = eng.apply_dynamics(std::move(alive), round, reenter);
        eng.mark_awake(alive);
      }
      eng.charge_round(alive, round);
      const std::uint32_t bit_index = total_bits - 1 - slot;
      eng.scan_awake(alive, [&](BulkChunk&, std::span<const VertexId> part) {
        for (const VertexId v : part) {
          beeper[v] =
              (contending[v] != 0 && ((rank[v] >> bit_index) & 1) != 0) ? 1
                                                                        : 0;
        }
      });
      eng.scan_awake(alive, [&](BulkChunk& chunk,
                                std::span<const VertexId> part) {
        for (const VertexId v : part) {
          std::uint64_t awake_nbrs = 0;
          std::uint64_t delivered_out = 0;
          std::uint64_t beeps_heard = 0;
          for (const VertexId u : g.neighbors(v)) {
            if (!eng.is_awake(u)) continue;
            ++awake_nbrs;
            if (lossy && !eng.link_up(v, u, round)) continue;
            ++delivered_out;
            beeps_heard += beeper[u];
          }
          if (beeper[v] != 0) {
            chunk.charge_send(v, g.degree(v), delivered_out, beep_bits,
                              awake_nbrs - delivered_out);
          }
          chunk.charge_received(v, beeps_heard);
          // A beeping node cannot listen; only silent contenders drop
          // out.
          if (beeper[v] == 0 && contending[v] != 0 && beeps_heard > 0) {
            contending[v] = 0;
          }
        }
      });
    }

    // Join slot: survivors beep-and-join; listeners that hear it exit.
    ++round;
    if (dynamic) {
      alive = eng.apply_dynamics(std::move(alive), round, reenter);
      eng.mark_awake(alive);
    }
    eng.charge_round(alive, round);
    alive = eng.scan_awake(
                   alive,
                   [&](BulkChunk& chunk, std::span<const VertexId> part) {
                     for (const VertexId v : part) {
                       std::uint64_t awake_nbrs = 0;
                       std::uint64_t delivered_out = 0;
                       std::uint64_t joins_heard = 0;
                       for (const VertexId u : g.neighbors(v)) {
                         if (!eng.is_awake(u)) continue;
                         ++awake_nbrs;
                         if (lossy && !eng.link_up(v, u, round)) continue;
                         ++delivered_out;
                         joins_heard += contending[u];
                       }
                       if (contending[v] != 0) {
                         chunk.charge_send(v, g.degree(v), delivered_out,
                                           beep_bits,
                                           awake_nbrs - delivered_out);
                       }
                       chunk.charge_received(v, joins_heard);
                       if (contending[v] != 0) {
                         chunk.decide(v, 1, round);
                         chunk.finish(v, round);
                       } else if (joins_heard > 0) {
                         chunk.decide(v, 0, round);
                         chunk.finish(v, round);
                       } else {
                         chunk.keep(v);
                       }
                     }
                   })
                .kept;
  }
  const VirtualRound last = round;
  eng.scan_awake(alive, [&](BulkChunk& chunk, std::span<const VertexId> part) {
    for (const VertexId v : part) chunk.finish(v, last);
  });
}

std::unique_ptr<BulkProtocol> bulk_mis_protocol(algos::MisEngine engine,
                                                core::RecursionTrace* trace) {
  switch (engine) {
    case algos::MisEngine::kSleeping:
      return std::make_unique<BulkSleepingMis>(core::SleepingMisOptions{},
                                               trace);
    case algos::MisEngine::kLubyA:
      return std::make_unique<BulkLubyA>();
    case algos::MisEngine::kLubyB:
      return std::make_unique<BulkLubyB>();
    case algos::MisEngine::kGreedy:
      return std::make_unique<BulkGreedy>();
    case algos::MisEngine::kFastSleeping:
    case algos::MisEngine::kGhaffari:
      return nullptr;
  }
  return nullptr;
}

bool bulk_supports(algos::MisEngine engine) {
  switch (engine) {
    case algos::MisEngine::kSleeping:
    case algos::MisEngine::kLubyA:
    case algos::MisEngine::kLubyB:
    case algos::MisEngine::kGreedy:
      return true;
    case algos::MisEngine::kFastSleeping:
    case algos::MisEngine::kGhaffari:
      return false;
  }
  return false;
}

}  // namespace slumber::bulk
