#include "bulk/engine.h"

#include <algorithm>
#include <string>

namespace slumber::bulk {

BulkEngine::BulkEngine(const Graph& g, std::uint64_t seed, BulkOptions options)
    : graph_(g), options_(options), seed_(seed), master_(seed) {
  const VertexId n = g.num_vertices();
  metrics_.node.resize(n);
  outputs_.assign(n, -1);
  decided_.assign(n, 0);
  awake_epoch_.assign(n, 0);
}

void BulkEngine::mark_awake(std::span<const VertexId> awake) {
  ++epoch_;
  for (const VertexId v : awake) awake_epoch_[v] = epoch_;
}

void BulkEngine::charge_round(std::span<const VertexId> awake,
                              VirtualRound round) {
  if (awake.empty()) return;
  ++metrics_.distinct_active_rounds;
  metrics_.total_awake_node_rounds += awake.size();
  for (const VertexId v : awake) ++metrics_.node[v].awake_rounds;
  virtual_makespan_ = std::max(virtual_makespan_, round);
}

void BulkEngine::charge_send(VertexId v, std::uint64_t attempted,
                             std::uint64_t delivered, std::uint32_t bits) {
  if (attempted == 0) return;
  metrics_.node[v].messages_sent += attempted;
  metrics_.total_messages += delivered;
  metrics_.dropped_messages += attempted - delivered;
  metrics_.max_message_bits_seen =
      std::max(metrics_.max_message_bits_seen, bits);
  if (options_.max_message_bits != 0 && bits > options_.max_message_bits) {
    metrics_.congest_violations += attempted;
    if (options_.throw_on_congest_violation) {
      throw sim::CongestViolation(
          "message of " + std::to_string(bits) + " bits exceeds CONGEST " +
          "budget of " + std::to_string(options_.max_message_bits));
    }
  }
}

void BulkEngine::decide(VertexId v, std::int64_t output, VirtualRound round) {
  if (decided_[v] != 0) return;
  decided_[v] = 1;
  outputs_[v] = output;
  auto& m = metrics_.node[v];
  m.decided_round = saturate_round(round);
  m.awake_at_decision = m.awake_rounds;
}

void BulkEngine::finish(VertexId v, VirtualRound round) {
  metrics_.node[v].finish_round = saturate_round(round);
  virtual_makespan_ = std::max(virtual_makespan_, round);
}

BulkResult BulkEngine::take_result() {
  metrics_.makespan = 0;
  for (const sim::NodeMetrics& m : metrics_.node) {
    metrics_.makespan = std::max(metrics_.makespan, m.finish_round);
  }
  BulkResult result;
  result.metrics = std::move(metrics_);
  result.outputs = std::move(outputs_);
  result.virtual_makespan = virtual_makespan_;
  return result;
}

BulkResult run_bulk(const Graph& g, std::uint64_t seed, BulkProtocol& protocol,
                    BulkOptions options) {
  BulkEngine engine(g, seed, options);
  protocol.run(engine);
  return engine.take_result();
}

}  // namespace slumber::bulk
