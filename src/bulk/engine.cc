#include "bulk/engine.h"

#include <algorithm>
#include <limits>
#include <string>

#include "obs/obs.h"

namespace slumber::bulk {

BulkEngine::BulkEngine(const Graph& g, std::uint64_t seed, BulkOptions options)
    : graph_(g),
      options_(options),
      seed_(seed),
      master_(seed),
      fault_(options.fault, seed, g.num_vertices()) {
  const VertexId n = g.num_vertices();
  if (options_.node_metrics) metrics_.node.resize(n);
  if (fault_.has_crashes()) crashed_.assign(n, 0);
  if (fault_.has_live_churn()) departed_.assign(n, 0);
  outputs_.assign(n, -1);
  // With first_touch, each lane initializes (and so places) the slice
  // of the hot per-node arrays that parallel_for_range will hand it on
  // every subsequent sharded scan. Contents are identical either way.
  util::ThreadPool* touch_pool =
      options_.first_touch && options_.pool != nullptr &&
              options_.pool->num_threads() > 1
          ? options_.pool
          : nullptr;
  decided_ = util::sharded_fill<std::uint8_t>(n, 0, touch_pool);
  awake_epoch_ = util::sharded_fill<std::uint32_t>(n, 0, touch_pool);
}

void BulkEngine::merge_chunk(const BulkChunk& chunk) {
  metrics_.total_messages += chunk.total_messages_;
  metrics_.dropped_messages += chunk.dropped_messages_;
  metrics_.injected_losses += chunk.injected_losses_;
  metrics_.congest_violations += chunk.congest_violations_;
  metrics_.max_message_bits_seen =
      std::max(metrics_.max_message_bits_seen, chunk.max_message_bits_seen_);
  virtual_makespan_ = std::max(virtual_makespan_, chunk.virtual_makespan_);
}

ScanResult BulkEngine::scan_awake(
    std::span<const VertexId> vs,
    const std::function<void(BulkChunk&, std::span<const VertexId>)>& fn) {
  return scan_range(vs.size(),
                    [&](BulkChunk& chunk, std::size_t begin, std::size_t end) {
                      fn(chunk, vs.subspan(begin, end - begin));
                    });
}

ScanResult BulkEngine::scan_range(
    std::size_t total,
    const std::function<void(BulkChunk&, std::size_t begin, std::size_t end)>&
        fn) {
  ScanResult result;
  if (total == 0) return result;
  const bool parallel = options_.pool != nullptr &&
                        options_.pool->num_threads() > 1 && total > 1 &&
                        total >= options_.parallel_cutoff;
  // Telemetry only: spans for cutoff-sized scans, with a scan id that
  // groups this scan's chunk spans in the export (imbalance stats).
  // Sub-cutoff scans stay span-free so 10^7-node runs emit thousands of
  // events, not hundreds of millions. Never read by any decision.
  const bool traced = obs::enabled() && total >= options_.parallel_cutoff;
  const std::uint64_t scan_id = traced ? ++obs_scan_seq_ : 0;
  obs::Span scan_span(traced ? "engine" : nullptr, "scan", scan_id);
  if (!parallel) {
    BulkChunk chunk(this);
    fn(chunk, 0, total);
    merge_chunk(chunk);
    result.kept = std::move(chunk.kept_);
    result.dropped = std::move(chunk.dropped_);
    result.user = chunk.user_;
    return result;
  }
  const std::size_t chunks = options_.pool->num_chunks(total);
  std::vector<BulkChunk> parts(chunks, BulkChunk(this));
  options_.pool->parallel_for_range(
      total, [&](std::size_t c, std::size_t begin, std::size_t end) {
        obs::Span chunk_span(traced ? "engine" : nullptr, "chunk", scan_id);
        fn(parts[c], begin, end);
      });
  // Deterministic reduction in chunk index order. Every merged quantity
  // is an integer sum or max, and the keep()/drop() lists concatenate
  // in input order, so the result is bitwise independent of the lane
  // count.
  std::size_t total_kept = 0;
  std::size_t total_dropped = 0;
  for (const BulkChunk& part : parts) {
    total_kept += part.kept_.size();
    total_dropped += part.dropped_.size();
  }
  result.kept.reserve(total_kept);
  result.dropped.reserve(total_dropped);
  for (BulkChunk& part : parts) {
    merge_chunk(part);
    result.user += part.user_;
    result.kept.insert(result.kept.end(), part.kept_.begin(),
                       part.kept_.end());
    result.dropped.insert(result.dropped.end(), part.dropped_.begin(),
                          part.dropped_.end());
  }
  return result;
}

void BulkEngine::mark_awake(std::span<const VertexId> awake) {
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    // Theoretical wrap guard (needs 2^32 - 1 mark_awake calls): restart
    // the stamp sequence with a clean slate.
    std::fill(awake_epoch_.begin(), awake_epoch_.end(), 0);
    epoch_ = 0;
  }
  ++epoch_;
  const std::uint32_t epoch = epoch_;
  obs::Span span(obs::enabled() && awake.size() >= options_.parallel_cutoff
                     ? "engine"
                     : nullptr,
                 "mark_awake", awake.size());
  const bool parallel = options_.pool != nullptr &&
                        options_.pool->num_threads() > 1 &&
                        awake.size() >= options_.parallel_cutoff;
  if (!parallel) {
    for (const VertexId v : awake) awake_epoch_[v] = epoch;
    return;
  }
  // Awake sets hold distinct vertices, so the stamped slots are
  // disjoint across lanes.
  options_.pool->parallel_for_range(
      awake.size(), [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          awake_epoch_[awake[i]] = epoch;
        }
      });
}

void BulkEngine::charge_round(std::span<const VertexId> awake,
                              VirtualRound round) {
  if (awake.empty()) return;
  if (obs::enabled()) {
    // Out-of-band progress + occupancy samples (write-only telemetry).
    obs::progress_round(static_cast<double>(round));
    if (awake.size() >= options_.parallel_cutoff) {
      obs::counter("awake_set", static_cast<double>(awake.size()));
    }
    if (fault_.has_burst()) {
      // Epoch rollovers of the burst-channel clock: the instants at
      // which per-link burst states may transition. Write-only.
      const VirtualRound epoch = round / fault_.plan()->burst.epoch_len;
      if (epoch != obs_burst_epoch_) {
        obs_burst_epoch_ = epoch;
        obs::instant("fault", "burst_epoch", saturate_round(epoch));
      }
    }
  }
  ++metrics_.distinct_active_rounds;
  metrics_.total_awake_node_rounds += awake.size();
  virtual_makespan_ = std::max(virtual_makespan_, round);
  if (!options_.node_metrics) return;
  const bool parallel = options_.pool != nullptr &&
                        options_.pool->num_threads() > 1 &&
                        awake.size() >= options_.parallel_cutoff;
  if (!parallel) {
    for (const VertexId v : awake) ++metrics_.node[v].awake_rounds;
    return;
  }
  options_.pool->parallel_for_range(
      awake.size(), [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          ++metrics_.node[awake[i]].awake_rounds;
        }
      });
}

void BulkEngine::charge_send(VertexId v, std::uint64_t attempted,
                             std::uint64_t delivered, std::uint32_t bits,
                             std::uint64_t lost) {
  BulkChunk chunk(this);
  chunk.charge_send(v, attempted, delivered, bits, lost);
  merge_chunk(chunk);
}

void BulkEngine::charge_received(VertexId v, std::uint64_t count) {
  BulkChunk chunk(this);
  chunk.charge_received(v, count);
  merge_chunk(chunk);
}

void BulkEngine::charge_symmetric_broadcast(VertexId v,
                                            std::uint64_t awake_neighbors,
                                            std::uint32_t bits) {
  BulkChunk chunk(this);
  chunk.charge_symmetric_broadcast(v, awake_neighbors, bits);
  merge_chunk(chunk);
}

void BulkEngine::decide(VertexId v, std::int64_t output, VirtualRound round) {
  BulkChunk chunk(this);
  chunk.decide(v, output, round);
  merge_chunk(chunk);
}

void BulkEngine::finish(VertexId v, VirtualRound round) {
  BulkChunk chunk(this);
  chunk.finish(v, round);
  merge_chunk(chunk);
}

std::vector<VertexId> BulkEngine::apply_dynamics(
    std::vector<VertexId> awake, VirtualRound round,
    const std::function<void(VertexId)>& on_reenter) {
  const bool crashy_run = fault_.has_crashes();
  const bool churny = fault_.has_live_churn();
  if (!crashy_run && !churny) return awake;
  const bool recovering = fault_.has_recovery();
  const RoundHalves halves = round_halves(round);
  const std::uint64_t lo = halves.lo;
  const std::uint64_t hi = halves.hi;
  const std::size_t before = awake.size();
  obs::Span span(obs::enabled() && before >= options_.parallel_cutoff
                     ? "fault"
                     : nullptr,
                 "dynamics", before);
  // Phase 1 (sharded): removal draws over the participating set.
  // Removed nodes land on the chunk drop() lists exactly when a
  // comeback must be scheduled, giving phase 2 a chunk-order (lane-
  // count-independent) sequence to walk.
  ScanResult scan;
  if (before > 0) {
    scan = scan_awake(
        awake, [&](BulkChunk& chunk, std::span<const VertexId> part) {
          for (const VertexId v : part) {
            // Already-down nodes are dropped silently (the SleepingMIS
            // recursion's ancestor member lists legitimately go stale
            // when a node leaves inside a child frame).
            if (down(v)) continue;
            if (crashy_run && fault_.crashes_now(v, lo, hi)) {
              crashed_[v] = 1;
              if (options_.node_metrics) metrics_.node[v].crashed = true;
              chunk.finish(v, round);
              chunk.bump();
              if (recovering) chunk.drop(v);
              continue;
            }
            if (churny) {
              if (fault_.live_leave(v, lo, hi).leaves) {
                departed_[v] = 1;
                chunk.finish(v, round);
                chunk.drop(v);
                continue;
              }
            }
            chunk.keep(v);
          }
        });
    metrics_.crashed_nodes += scan.user;
  }
  // Phase 2 (serial): schedule comebacks for this round's removals. The
  // keyed draws are recomputed here rather than smuggled out of the
  // chunks — same stream, same bits, and the scan lambda stays a pure
  // filter.
  std::uint64_t leaves = 0;
  for (const VertexId v : scan.dropped) {
    VirtualRound due = 0;
    if (crashed(v)) {
      // Just crashed with recovery enabled (only those were drop()ed).
      due = round + fault_.recover_downtime(v, lo, hi);
    } else {
      ++leaves;
      const fault::LeaveDraw draw = fault_.live_leave(v, lo, hi);
      if (!draw.rejoins) continue;
      due = round + draw.downtime;
    }
    pending_returns_.push_back({due, v});
    std::push_heap(pending_returns_.begin(), pending_returns_.end(),
                   returns_later);
  }
  metrics_.live_leaves += leaves;
  // Phase 3 (serial): re-admit every down node whose downtime elapsed,
  // in (due round, node id) order. Re-entrants come back undecided; the
  // protocol resets its own per-node state in on_reenter.
  std::vector<VertexId> result = std::move(scan.kept);
  std::uint64_t reentries = 0;
  while (!pending_returns_.empty() && pending_returns_.front().at <= round) {
    std::pop_heap(pending_returns_.begin(), pending_returns_.end(),
                  returns_later);
    const VertexId v = pending_returns_.back().node;
    pending_returns_.pop_back();
    if (crashed(v)) {
      crashed_[v] = 0;
      if (options_.node_metrics) metrics_.node[v].crashed = false;
      ++metrics_.recovered_nodes;
    } else {
      departed_[v] = 0;
      ++metrics_.live_rejoins;
    }
    decided_[v] = 0;
    outputs_[v] = -1;
    if (on_reenter) on_reenter(v);
    result.push_back(v);
    ++reentries;
  }
  if (obs::enabled() && (leaves > 0 || reentries > 0)) {
    // Cumulative event gauges for the export timeline (write-only).
    if (metrics_.live_leaves > 0) {
      obs::counter("live_leaves", static_cast<double>(metrics_.live_leaves));
    }
    if (metrics_.live_rejoins > 0) {
      obs::counter("live_rejoins", static_cast<double>(metrics_.live_rejoins));
    }
    if (metrics_.recovered_nodes > 0) {
      obs::counter("recovered_nodes",
                   static_cast<double>(metrics_.recovered_nodes));
    }
  }
  // The coroutine scheduler counts a round whose wake bucket was
  // non-empty as active even when every woken node crashes; the
  // protocol's charge_round(empty set) would miss it.
  if (result.empty() && before > 0) ++metrics_.distinct_active_rounds;
  return result;
}

BulkResult BulkEngine::take_result() {
  if (options_.node_metrics) {
    metrics_.makespan = 0;
    for (const sim::NodeMetrics& m : metrics_.node) {
      metrics_.makespan = std::max(metrics_.makespan, m.finish_round);
    }
  } else {
    metrics_.makespan = saturate_round(virtual_makespan_);
  }
  BulkResult result;
  result.metrics = std::move(metrics_);
  result.outputs = std::move(outputs_);
  result.virtual_makespan = virtual_makespan_;
  result.crashed = std::move(crashed_);
  result.departed = std::move(departed_);
  return result;
}

BulkResult run_bulk(const Graph& g, std::uint64_t seed, BulkProtocol& protocol,
                    BulkOptions options) {
  BulkEngine engine(g, seed, options);
  protocol.run(engine);
  return engine.take_result();
}

}  // namespace slumber::bulk
