// Maximal matching through the library's MIS engines.
//
// The classical reduction (also the Barenboim-Tzur problem family the
// paper compares against): a maximal matching of G is a maximal
// independent set of the line graph L(G). Any engine in the library --
// including the sleeping algorithms -- therefore doubles as a maximal
// matching engine. This example matches a communication schedule for a
// switch fabric: ports are vertices, requested circuits are edges, a
// matching is a set of non-conflicting circuits.
#include <iostream>

#include "algos/matching.h"
#include "analysis/table.h"
#include "graph/generators.h"

int main() {
  using namespace slumber;

  // A 48-port switch with random circuit requests (G(48, avg deg 5)).
  Rng rng(3);
  const Graph requests = gen::gnp_avg_degree(48, 5.0, rng);
  std::cout << "circuit requests: " << requests.summary() << " (line graph: "
            << requests.line_graph().summary() << ")\n\n";

  analysis::Table table({"engine", "circuits granted", "valid & maximal",
                         "line-graph mean awake", "line-graph rounds"});
  for (const auto engine :
       {algos::MisEngine::kSleeping, algos::MisEngine::kFastSleeping,
        algos::MisEngine::kLubyA, algos::MisEngine::kGreedy}) {
    const auto result = algos::maximal_matching_via_mis(requests, 11, engine);
    const bool ok = algos::is_maximal_matching(requests, result.matched_edges);
    std::string name;
    switch (engine) {
      case algos::MisEngine::kSleeping: name = "SleepingMIS"; break;
      case algos::MisEngine::kFastSleeping: name = "Fast-SleepingMIS"; break;
      case algos::MisEngine::kLubyA: name = "Luby-A"; break;
      default: name = "CRT-greedy"; break;
    }
    table.add_row({name, analysis::Table::num(result.matched_edges.size()),
                   ok ? "yes" : "NO",
                   analysis::Table::num(
                       result.line_graph_metrics.node_avg_awake()),
                   analysis::Table::num(result.line_graph_metrics.makespan)});
    if (!ok) return 1;
  }
  std::cout << table.render();

  // Show one concrete schedule.
  const auto result =
      algos::maximal_matching_via_mis(requests, 11, algos::MisEngine::kSleeping);
  std::cout << "\ngranted circuits (SleepingMIS): ";
  for (EdgeId e : result.matched_edges) {
    const Edge edge = requests.edges()[e];
    std::cout << edge.u << "-" << edge.v << " ";
  }
  std::cout << "\n";
  return 0;
}
