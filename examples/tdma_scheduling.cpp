// TDMA slot assignment for a wireless mesh: a proper edge coloring IS a
// collision-free transmission schedule -- all links of one color can
// fire in the same slot because no radio is an endpoint of two of them.
//
//   $ ./tdma_scheduling
//
// The example builds a unit-disk mesh, computes a (2*Delta - 1)-edge-
// coloring with the library's line-graph reduction (Luby coloring on
// L(G), the Barenboim-Tzur problem family), verifies it, and prints the
// resulting slot table plus its utilization against the trivial
// one-link-per-slot schedule.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "algos/edge_coloring.h"
#include "graph/generators.h"
#include "sim/network.h"

int main() {
  using namespace slumber;

  // 1. A 64-radio mesh with ~8 links per radio.
  const std::uint64_t seed = 7;
  Rng rng(seed);
  const VertexId n = 64;
  const double radius = std::sqrt(8.0 / (3.14159 * n)) * 1.8;
  const Graph g = gen::random_geometric(n, radius, rng);
  std::cout << "mesh: " << g.summary() << "\n";

  // 2. Color the links.
  const auto result = algos::edge_coloring_via_line_graph(g, seed);
  if (!algos::check_edge_coloring(g, result.colors)) {
    std::cerr << "edge coloring invalid\n";
    return 1;
  }

  // 3. Colors -> slots.
  std::map<std::int64_t, std::vector<EdgeId>> slots;
  for (EdgeId e = 0; e < result.colors.size(); ++e) {
    slots[result.colors[e]].push_back(e);
  }
  std::cout << "links: " << g.num_edges() << ", slots: " << slots.size()
            << " (bound 2*Delta-1 = " << 2 * g.max_degree() - 1 << ")\n\n";

  std::cout << "slot table (first 8 slots):\n";
  std::size_t shown = 0;
  for (const auto& [color, edges] : slots) {
    if (shown++ == 8) break;
    std::cout << "  slot " << color << ": " << edges.size() << " links |";
    for (std::size_t i = 0; i < std::min<std::size_t>(edges.size(), 6); ++i) {
      const Edge edge = g.edges()[edges[i]];
      std::cout << " " << edge.u << "-" << edge.v;
    }
    if (edges.size() > 6) std::cout << " ...";
    std::cout << "\n";
  }

  // 4. Utilization: schedule length vs firing each link alone.
  const double speedup =
      static_cast<double>(g.num_edges()) / static_cast<double>(slots.size());
  std::cout << "\nschedule length " << slots.size() << " slots vs "
            << g.num_edges() << " naive slots -> " << speedup
            << "x spatial reuse\n";

  // 5. The distributed cost of computing the schedule (on L(G)):
  std::cout << "computed distributedly in "
            << result.line_graph_metrics.worst_finish()
            << " rounds, node-averaged decision "
            << result.line_graph_metrics.node_avg_decided()
            << " rounds per link (O(1), Section 1.5 contrast).\n";
  return 0;
}
