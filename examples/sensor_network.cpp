// Sensor-network cluster-head election -- the paper's motivating
// scenario (Section 1.1).
//
// A unit-disk graph of battery-powered sensors elects cluster heads (an
// MIS: every sensor is a head or adjacent to one, no two heads are
// neighbors). We run Fast-SleepingMIS and Luby's algorithm on the same
// deployment and compare the radio energy bill under the
// Feeney-Nilsson power model -- idle listening is nearly as expensive
// as receiving, sleeping is ~20x cheaper, which is exactly the gap the
// sleeping model exploits.
#include <iostream>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "analysis/verify.h"
#include "energy/energy.h"
#include "graph/generators.h"
#include "graph/properties.h"

int main() {
  using namespace slumber;

  // Deploy 500 sensors uniformly in the unit square; radio range set
  // for average ~12 neighbors (a dense deployment).
  const std::uint64_t seed = 7;
  Rng rng(seed);
  std::vector<std::pair<double, double>> coords;
  const Graph g = gen::random_geometric(500, 0.0874, rng, &coords);
  std::cout << "deployment: " << g.summary()
            << ", components: " << connected_components(g).count << "\n";

  analysis::Table table({"algorithm", "cluster heads", "mean awake rounds",
                         "max awake rounds", "wall-clock rounds",
                         "mean energy (mJ, sleep=0)",
                         "max energy (mJ, sleep=0)"});
  const energy::EnergyModel model = energy::EnergyModel::idealized();

  for (const auto engine :
       {analysis::MisEngine::kFastSleeping, analysis::MisEngine::kLubyA,
        analysis::MisEngine::kGreedy}) {
    const auto run = analysis::run_mis(engine, g, seed);
    if (!run.valid) {
      std::cerr << "invalid MIS from " << analysis::engine_name(engine) << "\n";
      return 1;
    }
    const auto report = energy::evaluate(model, run.metrics);
    table.add_row({analysis::engine_name(engine),
                   analysis::Table::num(run.mis_size),
                   analysis::Table::num(run.node_avg_awake),
                   analysis::Table::num(run.worst_awake),
                   analysis::Table::num(run.worst_rounds),
                   analysis::Table::num(report.mean_mj, 3),
                   analysis::Table::num(report.max_mj, 3)});
  }
  std::cout << table.render();

  std::cout
      << "\nReading the numbers honestly: on benign unit-disk topologies\n"
         "the baselines' *empirical* awake averages are small too (most\n"
         "nodes decide in a few rounds). What the sleeping algorithm buys\n"
         "is the guarantee: its O(1) awake average is proven for every\n"
         "topology and does not degrade with n (paper Theorem 2), whereas\n"
         "the best known bound for the baselines is O(log n) -- and their\n"
         "worst-case awake time (the battery bill of the unluckiest\n"
         "sensor) tracks their full round complexity. Compare the 'max\n"
         "awake rounds' column as n grows in bench_awake_scaling.\n";
  return 0;
}
