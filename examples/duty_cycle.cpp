// Network-lifetime scenario: a battery-powered sensor field re-elects a
// backbone (an MIS) every epoch, and the fleet dies when the first
// node's battery is exhausted (the standard network-lifetime metric).
//
//   $ ./duty_cycle
//
// The example runs one MIS election per epoch with Luby-A (traditional
// model, Barenboim-Tzur terminate-on-decide), SleepingMIS (Algorithm 1)
// and Fast-SleepingMIS (Algorithm 2), charging Feeney-Nilsson radio
// power under three accountings:
//
//   * MARGINAL -- energy above the always-asleep ground state. This is
//     the paper's accounting (sleeping is free, awake time costs).
//   * TOTAL, WaveLAN sleep (43 mW) -- 1990s hardware, sleep draw is
//     only ~20x below idle.
//   * TOTAL, deep sleep (5 uW) -- a modern duty-cycled radio.
//
// Three honest findings fall out (also recorded in EXPERIMENTS.md):
//   1. First-death is a WORST-CASE metric, and on a benign random field
//      Luby-A's worst node decides within a few rounds -- the sleeping
//      algorithms' O(1) guarantee is about the node AVERAGE over every
//      topology, not an empirical win on easy instances.
//   2. Algorithm 1's Theta(n^3) makespan is fatal under ANY nonzero
//      sleep draw: its nodes sleep through millions of rounds per
//      election. Theorem 2's polylog makespan is not cosmetic.
//   3. With deep-sleep radios, Algorithm 2 recovers the paper's
//      idealization: its total-energy lifetime matches its marginal
//      lifetime.
#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "algos/luby.h"
#include "analysis/verify.h"
#include "core/fast_sleeping_mis.h"
#include "core/sleeping_mis.h"
#include "energy/energy.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace {
using namespace slumber;

// Marginal accounting: a sleeping round is the ground state (0), an
// awake round costs what it draws ABOVE sleeping.
energy::EnergyModel marginal_model() {
  energy::EnergyModel m;
  m.idle_mw -= m.sleep_mw;
  m.rx_mw -= m.sleep_mw;
  m.tx_mw -= m.sleep_mw;
  m.sleep_mw = 0.0;
  return m;
}

energy::EnergyModel deep_sleep_model() {
  energy::EnergyModel m;
  m.sleep_mw = 0.005;  // ~5 uW deep sleep, modern duty-cycled radio
  return m;
}

struct Strategy {
  std::string name;
  sim::Protocol protocol;
};

std::uint64_t epochs_until_first_death(const Strategy& strategy,
                                       const energy::EnergyModel& model,
                                       const Graph& g, double battery_mj,
                                       std::uint64_t base_seed,
                                       std::uint64_t epoch_cap) {
  std::vector<double> remaining(g.num_vertices(), battery_mj);
  for (std::uint64_t epoch = 0; epoch < epoch_cap; ++epoch) {
    sim::NetworkOptions options;
    options.max_message_bits = sim::congest_bits_for(g.num_vertices());
    auto [metrics, outputs] =
        sim::run_protocol(g, base_seed + epoch, strategy.protocol, options);
    if (!analysis::check_mis(g, outputs).ok()) {
      std::cerr << "invalid MIS in epoch " << epoch << "\n";
      std::exit(1);
    }
    const auto report = energy::evaluate(model, metrics);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      remaining[v] -= report.per_node_mj[v];
      if (remaining[v] <= 0.0) return epoch + 1;
    }
  }
  return epoch_cap;  // cap reached: report "at least this many"
}

std::string fmt(std::uint64_t epochs, std::uint64_t cap) {
  return (epochs >= cap ? ">=" : "") + std::to_string(epochs);
}

}  // namespace

int main() {
  // The sensor field: 256 nodes, unit-disk radio, ~10 neighbors each.
  const std::uint64_t seed = 99;
  Rng rng(seed);
  const VertexId n = 256;
  const double radius = std::sqrt(10.0 / (3.14159 * n)) * 1.8;
  const Graph g = gen::random_geometric(n, radius, rng);
  std::cout << "sensor field: " << g.summary() << "\n";

  const double battery_mj = 200.0;  // per-node election budget
  const std::uint64_t cap = 200;

  std::vector<Strategy> strategies;
  strategies.push_back({"Luby-A (terminate on decide)", algos::luby_a()});
  strategies.push_back({"SleepingMIS   (Algorithm 1) ", core::sleeping_mis()});
  strategies.push_back(
      {"Fast-Sleeping (Algorithm 2) ", core::fast_sleeping_mis()});

  std::cout << "\nepochs of MIS re-election until the first battery dies\n"
               "(200 mJ / node, cap " << cap << " epochs):\n\n";
  std::cout << "  strategy                        marginal  total@43mW  "
               "total@5uW\n";
  for (const auto& strategy : strategies) {
    const auto marginal = epochs_until_first_death(
        strategy, marginal_model(), g, battery_mj, 10'000, cap);
    const auto wavelan = epochs_until_first_death(
        strategy, energy::EnergyModel{}, g, battery_mj, 20'000, cap);
    const auto deep = epochs_until_first_death(
        strategy, deep_sleep_model(), g, battery_mj, 30'000, cap);
    std::cout << "  " << strategy.name << "    " << std::left
              << std::setw(10) << fmt(marginal, cap) << std::setw(12)
              << fmt(wavelan, cap) << fmt(deep, cap) << "\n";
  }

  std::cout
      << "\nReading:\n"
         "  * marginal (the paper's accounting): first-death tracks the\n"
         "    WORST node's awake rounds. On this benign field Luby-A's\n"
         "    worst node decides in a handful of rounds, while Algorithm\n"
         "    1 pays ~3 awake rounds on each of its ~3 log n recursion\n"
         "    levels -- the paper's O(1) theorem is about the node\n"
         "    average over adversarial topologies, not the maximum on\n"
         "    easy ones.\n"
         "  * total @ 43 mW (WaveLAN): Algorithm 1 sleeps through\n"
         "    Theta(n^3) rounds per election and dies in one epoch;\n"
         "    the makespan engineering of Theorem 2 is load-bearing.\n"
         "  * total @ 5 uW (deep sleep): Algorithm 2's polylog makespan\n"
         "    now costs microjoules and its lifetime returns to the\n"
         "    marginal column; Algorithm 1's n^3 still does not.\n";
  return 0;
}
