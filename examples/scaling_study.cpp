// A self-contained scaling study: how do the four complexity measures
// of the paper's Table 1 evolve with n for Algorithm 1, Algorithm 2,
// and Luby's baseline, on a topology of the user's choice?
//
//   $ ./scaling_study [family] [max_n] [threads] [exec] [gen]
//
// where family is one of: gnp_sparse (default), cycle, star, grid,
// lollipop, random_tree, barabasi_albert, unit_disk, ...; threads is
// the parallelism lane count (default: all hardware threads); exec is
// "coroutine" (default) or "bulk". With the coroutine engine the lanes
// shard independent trials; with the bulk engine the trials run in
// sequence and the lanes shard the node scans *inside* each trial
// (single bulk trials dominate the wall clock at large n). Either way
// the output is bitwise identical for every thread count. The bulk
// execution engine runs the same protocols over flat state arrays,
// opening two orders of magnitude more n: `./scaling_study gnp_sparse
// 4194304 0 bulk` reproduces the paper's flat awake-complexity curve
// at multi-million node scale (Algorithm 2 has no bulk port yet and is
// skipped there).
//
// gen is "legacy" (default) or "sharded": the G(n, p) seed schedule
// for the gnp families (graph/generators.h). "sharded" uses the
// counter-based per-block generator — bit-reproducible in (n, seed) at
// every lane count, but a different realization than "legacy"; in bulk
// mode its CSR build additionally shards over the trial lanes.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/parallel.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "graph/generators.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace slumber;

  std::string family_name = argc > 1 ? argv[1] : "gnp_sparse";
  const VertexId max_n =
      argc > 2 ? static_cast<VertexId>(std::atoi(argv[2])) : 2048;
  if (argc > 3 && std::atoi(argv[3]) > 0) {
    analysis::set_default_trial_threads(
        static_cast<unsigned>(std::atoi(argv[3])));
  }
  analysis::ExecEngine exec = analysis::ExecEngine::kCoroutine;
  if (argc > 4 && !analysis::exec_engine_from_name(argv[4], &exec)) {
    std::cerr << "unknown exec engine '" << argv[4]
              << "'; options: coroutine bulk\n";
    return 1;
  }
  gen::Schedule schedule = gen::Schedule::kLegacy;
  if (argc > 5 && !gen::schedule_from_name(argv[5], &schedule)) {
    std::cerr << "unknown generator schedule '" << argv[5] << "'; options:";
    for (const gen::Schedule s : gen::all_schedules()) {
      std::cerr << ' ' << gen::schedule_name(s);
    }
    std::cerr << "\n";
    return 1;
  }

  gen::Family family = gen::Family::kGnpSparse;
  bool found = false;
  for (const gen::Family f : gen::all_families()) {
    if (gen::family_name(f) == family_name) {
      family = f;
      found = true;
      break;
    }
  }
  if (!found) {
    std::cerr << "unknown family '" << family_name << "'; options:";
    for (const gen::Family f : gen::all_families()) {
      std::cerr << " " << gen::family_name(f);
    }
    std::cerr << "\n";
    return 1;
  }

  std::cout << analysis::banner("scaling study on " + family_name + " (" +
                                analysis::exec_engine_name(exec) +
                                " execution, " +
                                gen::schedule_name(schedule) +
                                " generator)");
  std::vector<analysis::MisEngine> engines = {
      analysis::MisEngine::kSleeping, analysis::MisEngine::kFastSleeping,
      analysis::MisEngine::kLubyA};
  if (exec == analysis::ExecEngine::kBulk) {
    std::erase_if(engines, [&](analysis::MisEngine e) {
      return !analysis::engine_supports_bulk(e);
    });
  }

  // Intra-trial lanes for the bulk back end (see the header comment).
  util::ThreadPool bulk_pool(exec == analysis::ExecEngine::kBulk
                                 ? analysis::default_trial_threads()
                                 : 1);

  for (const auto engine : engines) {
    analysis::Table table({"n", "node-avg awake", "worst awake",
                           "worst rounds", "messages"});
    std::vector<double> ns;
    std::vector<double> awake;
    for (VertexId n = 64; n <= max_n; n *= 4) {
      constexpr std::uint32_t kSeeds = 3;
      analysis::AggregateRun agg;
      gen::MakeOptions make_options;
      make_options.schedule = schedule;
      if (exec == analysis::ExecEngine::kBulk) {
        // Same seed schedule and reduction order as aggregate_mis, so
        // this is bitwise identical to the trial-parallel coroutine
        // path where the engines overlap. Sharded-schedule builds
        // shard their CSR passes over the trial lanes too.
        make_options.pool = &bulk_pool;
        std::vector<analysis::MisRun> runs;
        runs.reserve(kSeeds);
        for (std::uint32_t s = 0; s < kSeeds; ++s) {
          const std::uint64_t seed = analysis::trial_seed(1000 + n, s);
          const Graph g = gen::make(family, n, seed, make_options);
          runs.push_back(analysis::run_mis(
              engine, g, seed, {.exec = exec, .pool = &bulk_pool}));
        }
        agg = analysis::aggregate_runs(runs);
      } else {
        agg = analysis::aggregate_mis(
            engine, analysis::graph_factory(family, n, make_options),
            1000 + n, kSeeds, {.exec = exec});
      }
      if (agg.invalid_runs > 0) {
        std::cerr << "invalid runs at n=" << n << "\n";
        return 1;
      }
      ns.push_back(n);
      awake.push_back(agg.node_avg_awake_mean);
      table.add_row({analysis::Table::num(std::uint64_t{n}),
                     analysis::Table::num(agg.node_avg_awake_mean),
                     analysis::Table::num(agg.worst_awake_mean, 1),
                     analysis::Table::num(agg.worst_rounds_mean, 0),
                     analysis::Table::num(agg.messages_mean, 0)});
    }
    const auto fit = analysis::log_fit(ns, awake);
    std::cout << "\n" << analysis::engine_name(engine) << " (awake-avg slope vs log2 n: "
              << analysis::Table::num(fit.slope, 3) << ")\n"
              << table.render();
  }
  std::cout << "\nSleeping engines: flat awake average (slope ~0). Luby: "
               "slope > 0 -- nodes stay awake for the full Theta(log n) "
               "run.\n";
  return 0;
}
