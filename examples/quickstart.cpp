// Quickstart: build a graph, run the paper's SleepingMIS (Algorithm 1),
// verify the output, and inspect the sleeping-model metrics.
//
//   $ ./quickstart
//
// covers the whole public API surface a first-time user needs:
//   gen::*          -- graph construction
//   core::sleeping_mis / fast_sleeping_mis -- the paper's algorithms
//   sim::run_protocol -- the sleeping-model CONGEST simulator
//   analysis::check_mis -- output verification
#include <iostream>

#include "analysis/verify.h"
#include "core/schedule.h"
#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "sim/network.h"

int main() {
  using namespace slumber;

  // 1. A workload: G(64, avg degree 6), deterministic in the seed.
  const std::uint64_t seed = 2020;  // PODC 2020
  Rng rng(seed);
  const Graph g = gen::gnp_avg_degree(64, 6.0, rng);
  std::cout << "graph: " << g.summary() << "\n";

  // 2. Run Algorithm 1 under the CONGEST(log n) budget.
  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(g.num_vertices());
  auto [metrics, outputs] =
      sim::run_protocol(g, seed, core::sleeping_mis(), options);

  // 3. Verify: outputs[v] == 1 iff v is in the MIS.
  const auto check = analysis::check_mis(g, outputs);
  std::cout << "verifier: " << check.describe() << "\n";
  const auto mis = analysis::mis_vertices(outputs);
  std::cout << "MIS size: " << mis.size() << " of " << g.num_vertices()
            << " nodes\n";

  // 4. The paper's four complexity measures for this run.
  std::cout << "node-averaged awake complexity: " << metrics.node_avg_awake()
            << "  (Theorem 1: O(1))\n";
  std::cout << "worst-case awake complexity:    " << metrics.worst_awake()
            << "  (Theorem 1: O(log n); log2 n = 6)\n";
  std::cout << "worst-case round complexity:    " << metrics.worst_finish()
            << "  (= T(K) = "
            << core::schedule_duration(core::recursion_depth(64))
            << ", Lemma 10)\n";
  std::cout << "total messages delivered:       " << metrics.total_messages
            << ", dropped (sent to sleepers): " << metrics.dropped_messages
            << "\n";

  // 5. Export for visualization: `dot -Tpng mis.dot -o mis.png`.
  std::cout << "\nGraphviz snippet (MIS nodes filled):\n";
  io::write_dot(std::cout, g, mis);
  return check.ok() ? 0 : 1;
}
