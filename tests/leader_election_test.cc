// Tests for flood-max leader election and its decision-instant
// accounting (the Feuilloley node-averaged notion, paper Section 1.5).
#include <gtest/gtest.h>

#include <tuple>

#include "algos/leader_election.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "util/rng.h"

namespace slumber::algos {
namespace {

std::size_t count_leaders(const std::vector<std::int64_t>& outputs) {
  std::size_t leaders = 0;
  for (std::int64_t out : outputs) leaders += out == 1 ? 1 : 0;
  return leaders;
}

TEST(LeaderElectionTest, SingleNode) {
  Graph g = gen::empty(1);
  auto [metrics, outputs] =
      sim::run_protocol(g, 3, flood_max_leader_election());
  EXPECT_EQ(outputs[0], 1);
}

TEST(LeaderElectionTest, UniqueLeaderOnCycle) {
  Graph g = gen::cycle(32);
  auto [metrics, outputs] =
      sim::run_protocol(g, 7, flood_max_leader_election());
  EXPECT_EQ(count_leaders(outputs), 1u);
  // Everyone decided.
  for (std::int64_t out : outputs) EXPECT_TRUE(out == 0 || out == 1);
}

TEST(LeaderElectionTest, DiameterBoundSuffices) {
  Graph g = gen::grid(6, 6);
  const auto diam = static_cast<std::uint64_t>(diameter(g));
  LeaderElectionOptions options;
  options.diameter_bound = diam;
  auto [metrics, outputs] =
      sim::run_protocol(g, 11, flood_max_leader_election(options));
  EXPECT_EQ(count_leaders(outputs), 1u);
  EXPECT_EQ(metrics.makespan, diam);
}

TEST(LeaderElectionTest, OneLeaderPerComponent) {
  // Two disjoint cliques: exactly one leader each.
  Graph g = gen::clique_chain(20, 10);
  auto [metrics, outputs] =
      sim::run_protocol(g, 13, flood_max_leader_election());
  EXPECT_EQ(count_leaders(outputs), 2u);
}

TEST(LeaderElectionTest, LosersDecideEarlyOnStar) {
  // On a star the flood takes <= 2 rounds to reach everyone, so every
  // loser's decision instant is at most 2 even though the protocol runs
  // for n-1 rounds: the node-averaged decided complexity is O(1) while
  // the worst-case (termination) complexity is Theta(n).
  Graph g = gen::star(64);
  auto [metrics, outputs] =
      sim::run_protocol(g, 5, flood_max_leader_election());
  EXPECT_EQ(count_leaders(outputs), 1u);
  EXPECT_LE(metrics.node_avg_decided(), 3.0);
  EXPECT_EQ(metrics.worst_finish(), 63u);
}

TEST(LeaderElectionTest, DeterministicInSeed) {
  Graph g = gen::cycle(16);
  auto first = sim::run_protocol(g, 99, flood_max_leader_election());
  auto second = sim::run_protocol(g, 99, flood_max_leader_election());
  EXPECT_EQ(first.outputs, second.outputs);
}

struct LeaderSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(LeaderSweep, UniqueLeaderOnConnectedRandomGraphs) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  // Dense enough to be connected w.h.p.; skip the rare disconnected draw.
  Graph g = gen::gnp(static_cast<VertexId>(n), 0.2, rng);
  if (!is_connected(g)) GTEST_SKIP();
  auto [metrics, outputs] =
      sim::run_protocol(g, seed * 31 + 1, flood_max_leader_election());
  EXPECT_EQ(count_leaders(outputs), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LeaderSweep,
    ::testing::Combine(::testing::Values(8, 32, 96),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

}  // namespace
}  // namespace slumber::algos
