// Tests for the traditional-model baselines: Luby-A, Luby-B, the
// distributed randomized greedy (CRT), and Ghaffari's algorithm.
#include <gtest/gtest.h>

#include "algos/ghaffari.h"
#include "algos/greedy.h"
#include "algos/luby.h"
#include "analysis/verify.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace slumber::algos {
namespace {

sim::RunResult run_on(const Graph& g, std::uint64_t seed,
                      const sim::Protocol& protocol) {
  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(g.num_vertices());
  return sim::run_protocol(g, seed, protocol, options);
}

struct NamedEngine {
  const char* name;
  sim::Protocol protocol;
};

std::vector<NamedEngine> engines() {
  return {{"luby_a", luby_a()},
          {"luby_b", luby_b()},
          {"greedy", distributed_greedy_mis()},
          {"ghaffari", ghaffari_mis()}};
}

TEST(BaselinesTest, AllValidOnCoreFamilies) {
  for (auto& engine : engines()) {
    for (gen::Family family : gen::core_families()) {
      for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        const Graph g = gen::make(family, 70, seed);
        auto [metrics, outputs] = run_on(g, seed * 7 + 3, engine.protocol);
        EXPECT_TRUE(analysis::check_mis(g, outputs).ok())
            << engine.name << " on " << gen::family_name(family) << " seed "
            << seed;
      }
    }
  }
}

TEST(BaselinesTest, IsolatedNodesJoin) {
  const Graph g = gen::empty(5);
  for (auto& engine : engines()) {
    auto [metrics, outputs] = run_on(g, 2, engine.protocol);
    for (VertexId v = 0; v < 5; ++v) {
      EXPECT_EQ(outputs[v], 1) << engine.name;
    }
  }
}

TEST(BaselinesTest, CompleteGraphSingleton) {
  const Graph g = gen::complete(20);
  for (auto& engine : engines()) {
    auto [metrics, outputs] = run_on(g, 4, engine.protocol);
    int count = 0;
    for (auto o : outputs) count += o == 1;
    EXPECT_EQ(count, 1) << engine.name;
  }
}

TEST(BaselinesTest, BaselinesNeverSleep) {
  // Traditional-model algorithms: awake every round until termination,
  // so awake_rounds == finish_round for every node.
  Rng rng(5);
  const Graph g = gen::gnp_avg_degree(60, 6.0, rng);
  for (auto& engine : engines()) {
    auto [metrics, outputs] = run_on(g, 9, engine.protocol);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(metrics.node[v].awake_rounds, metrics.node[v].finish_round)
          << engine.name << " node " << v;
    }
  }
}

TEST(BaselinesTest, LubyARoundsLogarithmic) {
  // O(log n) w.h.p.: generous cap check at moderate n.
  Rng rng(6);
  const Graph g = gen::gnp_avg_degree(400, 10.0, rng);
  auto [metrics, outputs] = run_on(g, 11, luby_a());
  EXPECT_LE(metrics.makespan, 60u);
  EXPECT_TRUE(analysis::check_mis(g, outputs).ok());
}

TEST(BaselinesTest, GreedyMatchesSequentialOnSameRanks) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp_avg_degree(80, 6.0, rng);
    std::vector<std::uint64_t> ranks;
    GreedyOptions options;
    options.ranks_out = &ranks;
    auto [metrics, outputs] = run_on(g, seed * 19, distributed_greedy_mis(options));
    const auto expected = sequential_greedy_mis(g, ranks);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(outputs[v], static_cast<std::int64_t>(expected[v]))
          << "seed " << seed << " v " << v;
    }
  }
}

TEST(BaselinesTest, GreedyDecidedInRankOrderWaves) {
  // The highest-(rank, id) node must decide in the first iteration.
  Rng rng(7);
  const Graph g = gen::gnp_avg_degree(50, 5.0, rng);
  std::vector<std::uint64_t> ranks;
  GreedyOptions options;
  options.ranks_out = &ranks;
  auto [metrics, outputs] = run_on(g, 3, distributed_greedy_mis(options));
  VertexId best = 0;
  for (VertexId v = 1; v < 50; ++v) {
    if (ranks[v] > ranks[best] || (ranks[v] == ranks[best] && v > best)) {
      best = v;
    }
  }
  EXPECT_EQ(outputs[best], 1);
  EXPECT_LE(metrics.node[best].decided_round, 2u);
}

TEST(BaselinesTest, SequentialGreedyHandlesTies) {
  const Graph g = gen::path(3);
  const std::vector<std::uint64_t> ranks = {5, 5, 5};
  const auto mis = sequential_greedy_mis(g, ranks);
  // Ties broken by id descending: order 2, 1, 0 -> {2, 0}.
  EXPECT_EQ(mis, (std::vector<std::uint8_t>{1, 0, 1}));
}

TEST(BaselinesTest, DeterministicGivenSeed) {
  Rng rng(8);
  const Graph g = gen::gnp_avg_degree(64, 6.0, rng);
  for (auto& engine : engines()) {
    auto a = run_on(g, 5, engine.protocol);
    auto b = run_on(g, 5, engine.protocol);
    EXPECT_EQ(a.outputs, b.outputs) << engine.name;
  }
}

TEST(BaselinesTest, CongestBudgetsRespected) {
  Rng rng(9);
  const Graph g = gen::gnp_avg_degree(128, 8.0, rng);
  for (auto& engine : engines()) {
    auto [metrics, outputs] = run_on(g, 6, engine.protocol);
    EXPECT_EQ(metrics.congest_violations, 0u) << engine.name;
  }
}

TEST(BaselinesTest, GhaffariStarResolvesFast) {
  const Graph g = gen::star(100);
  auto [metrics, outputs] = run_on(g, 12, ghaffari_mis());
  EXPECT_TRUE(analysis::check_mis(g, outputs).ok());
}

}  // namespace
}  // namespace slumber::algos
