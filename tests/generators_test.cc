// Unit + property tests for the workload generators.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/properties.h"

namespace slumber::gen {
namespace {

TEST(GeneratorsTest, EmptyAndComplete) {
  EXPECT_EQ(empty(7).num_edges(), 0u);
  const Graph k5 = complete(5);
  EXPECT_EQ(k5.num_edges(), 10u);
  EXPECT_EQ(k5.max_degree(), 4u);
}

TEST(GeneratorsTest, CycleDegreesAndSize) {
  const Graph c = cycle(10);
  EXPECT_EQ(c.num_edges(), 10u);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(c.degree(v), 2u);
  EXPECT_THROW(cycle(2), std::invalid_argument);
}

TEST(GeneratorsTest, PathAndStar) {
  const Graph p = path(6);
  EXPECT_EQ(p.num_edges(), 5u);
  EXPECT_EQ(p.degree(0), 1u);
  EXPECT_EQ(p.degree(3), 2u);
  const Graph s = star(6);
  EXPECT_EQ(s.degree(0), 5u);
  EXPECT_EQ(s.num_edges(), 5u);
}

TEST(GeneratorsTest, CompleteBipartite) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  for (VertexId u = 0; u < 3; ++u) EXPECT_EQ(g.degree(u), 4u);
  for (VertexId v = 3; v < 7; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_EQ(triangle_count(g), 0u);  // bipartite => triangle-free
}

TEST(GeneratorsTest, GridAndTorus) {
  const Graph g = grid(4, 5);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 4u * 4 + 5u * 3);  // rows*(cols-1)+cols*(rows-1)
  const Graph t = torus(4, 5);
  EXPECT_EQ(t.num_edges(), 2u * 20);
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(t.degree(v), 4u);
}

TEST(GeneratorsTest, Hypercube) {
  const Graph q4 = hypercube(4);
  EXPECT_EQ(q4.num_vertices(), 16u);
  EXPECT_EQ(q4.num_edges(), 32u);
  for (VertexId v = 0; v < 16; ++v) EXPECT_EQ(q4.degree(v), 4u);
  EXPECT_EQ(diameter(q4), 4);
}

TEST(GeneratorsTest, BinaryTreeIsTree) {
  const Graph t = binary_tree(31);
  EXPECT_EQ(t.num_edges(), 30u);
  EXPECT_TRUE(is_connected(t));
}

TEST(GeneratorsTest, Lollipop) {
  const Graph g = lollipop(20, 8);
  EXPECT_EQ(g.num_edges(), 8u * 7 / 2 + 12u);
  EXPECT_TRUE(is_connected(g));
  // Arboricity upper bound is high in the clique head.
  EXPECT_GE(arboricity_bounds(g).upper, 4u);
}

TEST(GeneratorsTest, Caterpillar) {
  const Graph g = caterpillar(5, 3);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 19u);
  EXPECT_TRUE(is_connected(g));
}

TEST(GeneratorsTest, CliqueChain) {
  const Graph g = clique_chain(20, 5);
  EXPECT_EQ(connected_components(g).count, 4u);
  EXPECT_EQ(g.num_edges(), 4u * 10);
}

TEST(GeneratorsTest, GnpEdgeCountNearExpectation) {
  Rng rng(42);
  const VertexId n = 400;
  const double p = 0.05;
  const Graph g = gnp(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_GT(static_cast<double>(g.num_edges()), 0.8 * expected);
  EXPECT_LT(static_cast<double>(g.num_edges()), 1.2 * expected);
}

TEST(GeneratorsTest, GnpExtremes) {
  Rng rng(1);
  EXPECT_EQ(gnp(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gnp(10, 1.0, rng).num_edges(), 45u);
}

TEST(GeneratorsTest, GnpAvgDegree) {
  Rng rng(7);
  const Graph g = gnp_avg_degree(500, 8.0, rng);
  EXPECT_NEAR(average_degree(g), 8.0, 1.5);
}

TEST(GeneratorsTest, RandomTreeIsTree) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const Graph t = random_tree(50, rng);
    EXPECT_EQ(t.num_edges(), 49u);
    EXPECT_TRUE(is_connected(t));
  }
}

TEST(GeneratorsTest, RandomRegularDegrees) {
  Rng rng(3);
  const Graph g = random_regular(60, 4, rng);
  for (VertexId v = 0; v < 60; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_THROW(random_regular(5, 3, rng), std::invalid_argument);
  EXPECT_THROW(random_regular(4, 4, rng), std::invalid_argument);
}

TEST(GeneratorsTest, BarabasiAlbertSizes) {
  Rng rng(9);
  const Graph g = barabasi_albert(300, 3, rng);
  EXPECT_EQ(g.num_vertices(), 300u);
  EXPECT_TRUE(is_connected(g));
  // Heavy tail: max degree well above m.
  EXPECT_GT(g.max_degree(), 10u);
}

TEST(GeneratorsTest, RandomGeometricRespectsRadius) {
  Rng rng(5);
  std::vector<std::pair<double, double>> coords;
  const Graph g = random_geometric(200, 0.15, rng, &coords);
  ASSERT_EQ(coords.size(), 200u);
  for (const Edge& e : g.edges()) {
    const double dx = coords[e.u].first - coords[e.v].first;
    const double dy = coords[e.u].second - coords[e.v].second;
    EXPECT_LE(std::sqrt(dx * dx + dy * dy), 0.15 + 1e-12);
  }
  // Spot-check completeness: no missing close pair.
  for (VertexId u = 0; u < 50; ++u) {
    for (VertexId v = u + 1; v < 50; ++v) {
      const double dx = coords[u].first - coords[v].first;
      const double dy = coords[u].second - coords[v].second;
      if (dx * dx + dy * dy <= 0.15 * 0.15) {
        EXPECT_TRUE(g.has_edge(u, v));
      }
    }
  }
}

TEST(GeneratorsTest, GeneratorsAreDeterministic) {
  for (Family family : all_families()) {
    const Graph a = make(family, 64, 123);
    const Graph b = make(family, 64, 123);
    EXPECT_EQ(a.edges(), b.edges()) << family_name(family);
  }
}

TEST(GeneratorsTest, FamilyFactoryProducesRequestedScale) {
  for (Family family : core_families()) {
    const Graph g = make(family, 100, 1);
    EXPECT_GE(g.num_vertices(), 50u) << family_name(family);
    EXPECT_LE(g.num_vertices(), 160u) << family_name(family);
  }
}

TEST(GeneratorsTest, FamilyNamesUnique) {
  std::vector<std::string> names;
  for (Family family : all_families()) names.push_back(family_name(family));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace slumber::gen
