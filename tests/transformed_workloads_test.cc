// Structured-adversarial workload sweep: every MIS engine must stay
// valid on the derived graphs the transforms module produces --
// triangle-free but high-chromatic (Mycielski), bipartite blowups
// (subdivision), densified powers, complements, and disjoint unions
// with isolated parts. These shapes exercise code paths the plain
// family sweep does not: shadow/apex asymmetry, degree-2 chains,
// dense-after-sparse adjacency, and multi-component isolation.
#include <gtest/gtest.h>

#include <array>
#include <tuple>

#include "analysis/experiment.h"
#include "analysis/verify.h"
#include "graph/generators.h"
#include "graph/transforms.h"
#include "util/rng.h"

namespace slumber::analysis {
namespace {

enum class Shape {
  kMycielskiCycle,
  kMycielskiGnp,
  kSubdivisionComplete,
  kSubdivisionGnp,
  kCycleSquared,
  kGnpSquared,
  kComplementSparse,
  kUnionWithIsolates,
};

Graph make_shape(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  switch (shape) {
    case Shape::kMycielskiCycle: return mycielski(gen::cycle(21));
    case Shape::kMycielskiGnp:
      return mycielski(gen::gnp_avg_degree(40, 4.0, rng));
    case Shape::kSubdivisionComplete: return subdivision(gen::complete(10));
    case Shape::kSubdivisionGnp:
      return subdivision(gen::gnp_avg_degree(40, 5.0, rng));
    case Shape::kCycleSquared: return power(gen::cycle(30), 2);
    case Shape::kGnpSquared:
      return power(gen::gnp_avg_degree(50, 3.0, rng), 2);
    case Shape::kComplementSparse:
      return complement(gen::gnp_avg_degree(40, 4.0, rng));
    case Shape::kUnionWithIsolates: {
      std::array<Graph, 3> parts = {gen::complete(8), gen::empty(6),
                                    gen::cycle(11)};
      return disjoint_union(parts);
    }
  }
  throw std::logic_error("unknown shape");
}

const char* shape_name(Shape shape) {
  switch (shape) {
    case Shape::kMycielskiCycle: return "MycielskiCycle";
    case Shape::kMycielskiGnp: return "MycielskiGnp";
    case Shape::kSubdivisionComplete: return "SubdivisionComplete";
    case Shape::kSubdivisionGnp: return "SubdivisionGnp";
    case Shape::kCycleSquared: return "CycleSquared";
    case Shape::kGnpSquared: return "GnpSquared";
    case Shape::kComplementSparse: return "ComplementSparse";
    case Shape::kUnionWithIsolates: return "UnionWithIsolates";
  }
  return "?";
}

using Param = std::tuple<MisEngine, Shape>;

class TransformedWorkloads : public ::testing::TestWithParam<Param> {};

TEST_P(TransformedWorkloads, EveryEngineValid) {
  const auto [engine, shape] = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = make_shape(shape, seed);
    const MisRun run = run_mis(engine, g, 1009 * seed + 7);
    ASSERT_TRUE(run.valid)
        << engine_name(engine) << " on " << shape_name(shape) << " seed "
        << seed << ": " << check_mis(g, run.outputs).describe();
    EXPECT_EQ(run.metrics.congest_violations, 0u);
  }
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [engine, shape] = info.param;
  std::string name = engine_name(engine);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_" + shape_name(shape);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransformedWorkloads,
    ::testing::Combine(
        ::testing::Values(MisEngine::kSleeping, MisEngine::kFastSleeping,
                          MisEngine::kLubyA, MisEngine::kLubyB,
                          MisEngine::kGreedy, MisEngine::kGhaffari),
        ::testing::Values(Shape::kMycielskiCycle, Shape::kMycielskiGnp,
                          Shape::kSubdivisionComplete, Shape::kSubdivisionGnp,
                          Shape::kCycleSquared, Shape::kGnpSquared,
                          Shape::kComplementSparse,
                          Shape::kUnionWithIsolates)),
    param_name);

// On the union-with-isolates shape, the isolated vertices MUST be in
// every MIS; check that explicitly (isolation handling is the paper's
// "first isolated node detection", lines 13-16 of Algorithm 1).
TEST(TransformedWorkloads, IsolatedVerticesAlwaysJoin) {
  std::array<Graph, 3> parts = {gen::complete(8), gen::empty(6),
                                gen::cycle(11)};
  const Graph g = disjoint_union(parts);
  for (const MisEngine engine : all_engines()) {
    const MisRun run = run_mis(engine, g, 55);
    ASSERT_TRUE(run.valid);
    for (VertexId v = 8; v < 14; ++v) {
      EXPECT_EQ(run.outputs[v], 1)
          << engine_name(engine) << " left isolated vertex " << v << " out";
    }
  }
}

}  // namespace
}  // namespace slumber::analysis
