// Statistical distribution tests: properties of the algorithms beyond
// point expectations. These lock in (a) the Fischer-Noever O(log n)
// w.h.p. bound for the randomized greedy that Algorithm 2's base case
// leans on, (b) the geometric tail of per-node awake time behind the
// paper's "high probability bounds on A" remark, and (c) sanity of MIS
// sizes against combinatorial ground truth.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/greedy.h"
#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace slumber {
namespace {

TEST(DistributionTest, GreedyRoundsLogarithmicWhp) {
  // Fischer-Noever: the randomized greedy finishes in O(log n) rounds
  // w.h.p. -- the fact that calibrates Algorithm 2's fixed base budget
  // of 6 log2 n rounds. Measure the max makespan over seeds and check
  // it sits well under that budget.
  for (const VertexId n : {64u, 256u, 1024u}) {
    std::uint64_t worst = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      Rng rng(n + seed);
      const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
      auto run = analysis::run_mis(analysis::MisEngine::kGreedy, g, seed);
      ASSERT_TRUE(run.valid);
      worst = std::max(worst, run.worst_rounds);
    }
    const double budget = 6.0 * std::log2(static_cast<double>(n));
    EXPECT_LE(static_cast<double>(worst), budget)
        << "n=" << n << ": greedy exceeded Algorithm 2's base budget";
  }
}

TEST(DistributionTest, AwakeTimeTailDecaysGeometrically) {
  // Surviving to one more recursion level costs a bounded number of
  // awake rounds and happens with probability <= 3/4, so
  // P[A_v >= t] should fall at least geometrically in t.
  const VertexId n = 512;
  std::vector<double> awake;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
    sim::Network net(g, seed * 3);
    const sim::Metrics& metrics = net.run(core::sleeping_mis());
    for (const auto& m : metrics.node) {
      awake.push_back(static_cast<double>(m.awake_rounds));
    }
  }
  auto tail = [&](double t) {
    double count = 0;
    for (double a : awake) count += a >= t ? 1 : 0;
    return count / static_cast<double>(awake.size());
  };
  EXPECT_LT(tail(15), 0.35);
  EXPECT_LT(tail(25), 0.12);
  EXPECT_LT(tail(40), 0.02);
  // Monotone decay with a real gap between decades.
  EXPECT_GT(tail(10), 2.0 * tail(25));
}

TEST(DistributionTest, AverageAwakeConcentrates) {
  // A is an average of n weakly-dependent A_v: its run-to-run stddev
  // must shrink markedly from n=64 to n=1024.
  auto stddev_at = [](VertexId n) {
    std::vector<double> averages;
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      Rng rng(n * 13 + seed);
      const Graph g = gen::gnp_avg_degree(n, 8.0, rng);
      sim::Network net(g, n + seed);
      averages.push_back(net.run(core::sleeping_mis()).node_avg_awake());
    }
    return analysis::summarize(averages).stddev;
  };
  const double small_n = stddev_at(64);
  const double large_n = stddev_at(1024);
  EXPECT_LT(large_n, small_n);
  EXPECT_LT(large_n, 0.25);
}

TEST(DistributionTest, MisSizeOnCycleWithinCombinatorialBounds) {
  // Any MIS of C_n has between ceil(n/3) and floor(n/2) vertices.
  const VertexId n = 99;
  const Graph g = gen::cycle(n);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto run =
        analysis::run_mis(analysis::MisEngine::kSleeping, g, seed);
    ASSERT_TRUE(run.valid);
    EXPECT_GE(run.mis_size, (n + 2) / 3);
    EXPECT_LE(run.mis_size, n / 2);
  }
}

TEST(DistributionTest, RandomOrderGreedyMisSizeOnCycleNearExpectation) {
  // Classical fact: random-order greedy MIS on a long cycle/path covers
  // ~ (1 - e^-2)/2 ~ 0.432 of the vertices. CRT-greedy is exactly
  // random-order greedy (Corollary 1 machinery), so its size should
  // land near 0.432n, well inside (n/3, n/2).
  const VertexId n = 600;
  const Graph g = gen::cycle(n);
  std::vector<double> sizes;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto run = analysis::run_mis(analysis::MisEngine::kGreedy, g, seed);
    ASSERT_TRUE(run.valid);
    sizes.push_back(static_cast<double>(run.mis_size));
  }
  const double mean = analysis::summarize(sizes).mean / n;
  EXPECT_NEAR(mean, 0.432, 0.02);
}

TEST(DistributionTest, SleepingMisSizeMatchesGreedySizeDistribution) {
  // Corollary 1 implies Algorithm 1's MIS is distributed exactly like
  // random-order greedy's (both are lex-first over a uniformly random
  // order). Their mean sizes on the same graph must agree closely.
  Rng rng(5);
  const Graph g = gen::gnp_avg_degree(300, 8.0, rng);
  std::vector<double> sleeping_sizes;
  std::vector<double> greedy_sizes;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    sleeping_sizes.push_back(static_cast<double>(
        analysis::run_mis(analysis::MisEngine::kSleeping, g, seed).mis_size));
    greedy_sizes.push_back(static_cast<double>(
        analysis::run_mis(analysis::MisEngine::kGreedy, g, 100 + seed)
            .mis_size));
  }
  const double sleeping_mean = analysis::summarize(sleeping_sizes).mean;
  const double greedy_mean = analysis::summarize(greedy_sizes).mean;
  EXPECT_NEAR(sleeping_mean, greedy_mean, 0.08 * greedy_mean);
}

}  // namespace
}  // namespace slumber
