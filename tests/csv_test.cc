// Tests for the CSV writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/csv.h"

namespace slumber::analysis {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/slumber_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter writer(path_, {"n", "awake"});
    writer.add_row(std::vector<std::string>{"64", "6.5"});
    writer.add_row(std::vector<double>{128, 6.7});
    EXPECT_EQ(writer.rows_written(), 2u);
  }
  EXPECT_EQ(read_file(path_), "n,awake\n64,6.5\n128,6.7\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter writer(path_, {"name", "note"});
    writer.add_row(std::vector<std::string>{"a,b", "say \"hi\"\nok"});
  }
  EXPECT_EQ(read_file(path_),
            "name,note\n\"a,b\",\"say \"\"hi\"\"\nok\"\n");
}

TEST_F(CsvTest, RejectsArityMismatch) {
  CsvWriter writer(path_, {"a", "b"});
  EXPECT_THROW(writer.add_row(std::vector<std::string>{"1"}),
               std::invalid_argument);
}

TEST_F(CsvTest, RejectsUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

TEST(CsvEnvTest, PathFromEnv) {
  unsetenv("SLUMBER_CSV_DIR");
  EXPECT_FALSE(csv_path_from_env("table1").has_value());
  setenv("SLUMBER_CSV_DIR", "/tmp", 1);
  const auto path = csv_path_from_env("table1");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, "/tmp/table1.csv");
  unsetenv("SLUMBER_CSV_DIR");
}

}  // namespace
}  // namespace slumber::analysis
