// Tests for the extension baselines: deterministic greedy-by-ID MIS
// and the Barenboim-Tzur-style arboricity-aware MIS.
#include <gtest/gtest.h>

#include "algos/arboricity_mis.h"
#include "algos/deterministic.h"
#include "analysis/verify.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "sim/network.h"

namespace slumber::algos {
namespace {

sim::RunResult run_on(const Graph& g, std::uint64_t seed,
                      const sim::Protocol& protocol) {
  sim::NetworkOptions options;
  options.max_message_bits = sim::congest_bits_for(g.num_vertices());
  return sim::run_protocol(g, seed, protocol, options);
}

ArboricityMisOptions arboricity_options_for(const Graph& g) {
  ArboricityMisOptions options;
  options.arboricity_bound =
      std::max<std::uint32_t>(1, arboricity_bounds(g).upper);
  return options;
}

TEST(DeterministicGreedyTest, ValidOnCoreFamilies) {
  for (gen::Family family : gen::core_families()) {
    const Graph g = gen::make(family, 60, 3);
    auto [metrics, outputs] = run_on(g, 1, deterministic_greedy_mis());
    EXPECT_TRUE(analysis::check_mis(g, outputs).ok())
        << gen::family_name(family);
  }
}

TEST(DeterministicGreedyTest, OutputIsSeedIndependent) {
  Rng rng(2);
  const Graph g = gen::gnp_avg_degree(50, 5.0, rng);
  auto a = run_on(g, 1, deterministic_greedy_mis());
  auto b = run_on(g, 999, deterministic_greedy_mis());
  EXPECT_EQ(a.outputs, b.outputs);  // no randomness anywhere
}

TEST(DeterministicGreedyTest, PicksDescendingIdLexFirstMis) {
  // On a path with increasing ids, greedy by descending ID picks
  // n-1, n-3, n-5, ... : the decision frontier sweeps the path.
  const Graph g = gen::path(7);
  auto [metrics, outputs] = run_on(g, 1, deterministic_greedy_mis());
  EXPECT_EQ(outputs, (std::vector<std::int64_t>{1, 0, 1, 0, 1, 0, 1}));
}

TEST(DeterministicGreedyTest, AdversarialPathTakesLinearRounds) {
  // The sorted path is the worst case: node 0 cannot decide before the
  // frontier reaches it, Theta(n) rounds -- including on *average*,
  // since half the nodes wait Omega(n) rounds. This is why Table 1's
  // baselines are randomized.
  const Graph g = gen::path(200);
  auto [metrics, outputs] = run_on(g, 1, deterministic_greedy_mis());
  EXPECT_TRUE(analysis::check_mis(g, outputs).ok());
  EXPECT_GE(metrics.makespan, 150u);
  EXPECT_GE(metrics.node_avg_decided(), 40.0);
}

TEST(DeterministicGreedyTest, CompleteGraphOneRoundWave) {
  const Graph g = gen::complete(30);
  auto [metrics, outputs] = run_on(g, 1, deterministic_greedy_mis());
  EXPECT_EQ(outputs[29], 1);  // highest id wins instantly
  EXPECT_LE(metrics.makespan, 2u);
}

TEST(ArboricityMisTest, ValidOnCoreFamilies) {
  for (gen::Family family : gen::core_families()) {
    const Graph g = gen::make(family, 60, 5);
    auto [metrics, outputs] =
        run_on(g, 2, arboricity_mis(arboricity_options_for(g)));
    EXPECT_TRUE(analysis::check_mis(g, outputs).ok())
        << gen::family_name(family);
  }
}

TEST(ArboricityMisTest, DeterministicOutput) {
  Rng rng(7);
  const Graph g = gen::gnp_avg_degree(50, 5.0, rng);
  const auto options = arboricity_options_for(g);
  auto a = run_on(g, 1, arboricity_mis(options));
  auto b = run_on(g, 42, arboricity_mis(options));
  EXPECT_EQ(a.outputs, b.outputs);
}

TEST(ArboricityMisTest, TreesResolveFast) {
  // Arboricity 1: the peeling phase dominates; phase 2 is short
  // because every partition class has <= 3 same-or-earlier neighbors.
  Rng rng(9);
  const Graph g = gen::random_tree(200, rng);
  ArboricityMisOptions options;
  options.arboricity_bound = 1;
  auto [metrics, outputs] = run_on(g, 3, arboricity_mis(options));
  EXPECT_TRUE(analysis::check_mis(g, outputs).ok());
  EXPECT_LE(metrics.makespan, 80u);
}

TEST(ArboricityMisTest, CliqueCostScalesWithArboricity) {
  // On K_n the arboricity is ~n/2: the priority chain is long and the
  // run needs Omega(n)-ish rounds -- the weakness vs the sleeping
  // algorithms that the paper's Section 1.5 comparison highlights.
  const Graph small = gen::complete(16);
  const Graph large = gen::complete(64);
  ArboricityMisOptions small_options;
  small_options.arboricity_bound = 8;
  ArboricityMisOptions large_options;
  large_options.arboricity_bound = 32;
  auto run_small = run_on(small, 1, arboricity_mis(small_options));
  auto run_large = run_on(large, 1, arboricity_mis(large_options));
  EXPECT_TRUE(analysis::check_mis(small, run_small.outputs).ok());
  EXPECT_TRUE(analysis::check_mis(large, run_large.outputs).ok());
  EXPECT_GT(run_large.metrics.node_avg_awake(),
            run_small.metrics.node_avg_awake());
}

TEST(ArboricityMisTest, LooseBoundStillCorrect) {
  // An over-estimate of the arboricity only makes peeling faster
  // (higher threshold); correctness is unaffected.
  Rng rng(11);
  const Graph g = gen::gnp_avg_degree(60, 6.0, rng);
  ArboricityMisOptions options;
  options.arboricity_bound = 50;
  auto [metrics, outputs] = run_on(g, 4, arboricity_mis(options));
  EXPECT_TRUE(analysis::check_mis(g, outputs).ok());
}

TEST(ArboricityMisTest, RejectsZeroBound) {
  ArboricityMisOptions options;
  options.arboricity_bound = 0;
  EXPECT_THROW(arboricity_mis(options), std::invalid_argument);
}

TEST(ArboricityMisTest, PartitionPayloadWithinCongest) {
  Rng rng(13);
  const Graph g = gen::barabasi_albert(100, 3, rng);
  auto [metrics, outputs] =
      run_on(g, 6, arboricity_mis(arboricity_options_for(g)));
  EXPECT_EQ(metrics.congest_violations, 0u);
}

}  // namespace
}  // namespace slumber::algos
