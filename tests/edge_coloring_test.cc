// Tests for (2*Delta - 1)-edge-coloring via the line-graph reduction.
#include <gtest/gtest.h>

#include <tuple>

#include "algos/edge_coloring.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace slumber::algos {
namespace {

TEST(EdgeColoringTest, EmptyGraph) {
  Graph g = gen::empty(5);
  auto result = edge_coloring_via_line_graph(g, 1);
  EXPECT_TRUE(result.colors.empty());
  EXPECT_EQ(result.colors_used, 0u);
  EXPECT_TRUE(check_edge_coloring(g, result.colors));
}

TEST(EdgeColoringTest, SingleEdge) {
  Graph g(2, {{0, 1}});
  auto result = edge_coloring_via_line_graph(g, 1);
  ASSERT_EQ(result.colors.size(), 1u);
  EXPECT_EQ(result.colors[0], 0);  // palette of an isolated L-vertex is {0}
  EXPECT_TRUE(check_edge_coloring(g, result.colors));
}

TEST(EdgeColoringTest, StarNeedsDegreeColors) {
  // All star edges share the hub: every edge needs a distinct color.
  Graph g = gen::star(8);
  auto result = edge_coloring_via_line_graph(g, 7);
  EXPECT_TRUE(check_edge_coloring(g, result.colors));
  EXPECT_EQ(result.colors_used, 7u);
}

TEST(EdgeColoringTest, CycleUsesAtMostThree) {
  // 2*Delta - 1 = 3 for a cycle.
  Graph g = gen::cycle(9);
  auto result = edge_coloring_via_line_graph(g, 3);
  EXPECT_TRUE(check_edge_coloring(g, result.colors));
  EXPECT_LE(result.colors_used, 3u);
}

TEST(EdgeColoringTest, CheckerRejectsClashes) {
  Graph g = gen::path(3);  // edges {0,1} and {1,2} share vertex 1
  EXPECT_FALSE(check_edge_coloring(g, {0, 0}));
  EXPECT_TRUE(check_edge_coloring(g, {0, 1}));
  EXPECT_FALSE(check_edge_coloring(g, {0}));        // wrong size
  EXPECT_FALSE(check_edge_coloring(g, {0, -1}));    // uncolored
  EXPECT_FALSE(check_edge_coloring(g, {0, 3}));     // out of palette
}

struct EdgeColoringSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EdgeColoringSweep, ProperOnRandomGraphs) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  Graph g = gen::gnp_avg_degree(static_cast<VertexId>(n), 6.0, rng);
  auto result = edge_coloring_via_line_graph(g, seed * 7 + 1);
  EXPECT_TRUE(check_edge_coloring(g, result.colors)) << g.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EdgeColoringSweep,
    ::testing::Combine(::testing::Values(16, 48, 128),
                       ::testing::Values(1u, 2u, 3u, 4u)));

struct EdgeColoringFamilies : public ::testing::TestWithParam<int> {};

TEST_P(EdgeColoringFamilies, ProperOnStructuredFamilies) {
  const int which = GetParam();
  Graph g;
  switch (which) {
    case 0: g = gen::complete(9); break;
    case 1: g = gen::grid(5, 6); break;
    case 2: g = gen::hypercube(4); break;
    case 3: g = gen::complete_bipartite(4, 7); break;
    case 4: g = gen::lollipop(20, 8); break;
    default: g = gen::binary_tree(31); break;
  }
  auto result = edge_coloring_via_line_graph(g, 42 + which);
  EXPECT_TRUE(check_edge_coloring(g, result.colors)) << g.summary();
}

INSTANTIATE_TEST_SUITE_P(Families, EdgeColoringFamilies,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace slumber::algos
