// Cross-validation of the bulk execution engine (src/bulk) against the
// coroutine scheduler (src/sim): same graph + same seed must produce
// bitwise-identical outputs AND bitwise-identical sim::Metrics — per
// node and aggregate — for every ported protocol, across generators,
// seeds, and coin biases. This is the contract that lets the bulk
// engine stand in for the reference implementation at 10M+-node scale.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "algos/beeping_mis.h"
#include "algos/israeli_itai.h"
#include "analysis/experiment.h"
#include "analysis/verify.h"
#include "bulk/baselines.h"
#include "bulk/engine.h"
#include "bulk/sleeping_mis.h"
#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "metrics_test_util.h"
#include "sim/network.h"

namespace slumber {
namespace {

using analysis::ExecEngine;
using analysis::MisEngine;

void ExpectEnginesAgree(MisEngine engine, const Graph& g, std::uint64_t seed) {
  SCOPED_TRACE("engine=" + analysis::engine_name(engine) +
               " n=" + std::to_string(g.num_vertices()) +
               " seed=" + std::to_string(seed));
  const auto coro = analysis::run_mis(engine, g, seed);
  const auto bulk =
      analysis::run_mis(engine, g, seed, {.exec = ExecEngine::kBulk});
  EXPECT_EQ(coro.outputs, bulk.outputs);
  EXPECT_EQ(coro.valid, bulk.valid);
  EXPECT_EQ(coro.mis_size, bulk.mis_size);
  ExpectMetricsEqual(coro.metrics, bulk.metrics);
}

// --- the acceptance-criteria sweep: >= 3 generators x >= 20 seeds ----

class BulkCrossValidation : public ::testing::TestWithParam<gen::Family> {};

TEST_P(BulkCrossValidation, SleepingMisTwentySeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = gen::make(GetParam(), 600, seed);
    ExpectEnginesAgree(MisEngine::kSleeping, g, seed);
  }
}

TEST_P(BulkCrossValidation, SleepingMisTenThousandNodes) {
  const Graph g = gen::make(GetParam(), 10000, 5);
  ExpectEnginesAgree(MisEngine::kSleeping, g, 5);
}

TEST_P(BulkCrossValidation, BaselinesAgree) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = gen::make(GetParam(), 256, seed);
    ExpectEnginesAgree(MisEngine::kLubyA, g, seed);
    ExpectEnginesAgree(MisEngine::kLubyB, g, seed);
    ExpectEnginesAgree(MisEngine::kGreedy, g, seed);
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, BulkCrossValidation,
                         ::testing::Values(gen::Family::kGnpSparse,
                                           gen::Family::kRandomTree,
                                           gen::Family::kUnitDisk,
                                           gen::Family::kStar,
                                           gen::Family::kGrid),
                         [](const auto& param_info) {
                           return gen::family_name(param_info.param);
                         });

// --- coin bias and forced recursion depth --------------------------

TEST(BulkSleepingMis, CoinBiasAblationAgrees) {
  for (const double bias : {0.25, 0.5, 0.75}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      Rng rng(seed);
      const Graph g = gen::gnp_avg_degree(400, 6.0, rng);
      core::SleepingMisOptions options;
      options.coin_bias = bias;
      sim::NetworkOptions net;
      net.max_message_bits = sim::congest_bits_for(g.num_vertices());
      const auto coro =
          sim::run_protocol(g, seed, core::sleeping_mis(options), net);
      bulk::BulkOptions bopts;
      bopts.max_message_bits = net.max_message_bits;
      const auto bulk_run =
          bulk::bulk_sleeping_mis(g, seed, options, nullptr, bopts);
      EXPECT_EQ(coro.outputs, bulk_run.outputs) << "bias=" << bias;
      ExpectMetricsEqual(coro.metrics, bulk_run.metrics);
    }
  }
}

TEST(BulkSleepingMis, ForcedLevelsAgree) {
  for (const std::uint32_t levels : {1u, 2u, 6u}) {
    Rng rng(42);
    const Graph g = gen::gnp_avg_degree(128, 4.0, rng);
    core::SleepingMisOptions options;
    options.levels = levels;
    const auto coro = sim::run_protocol(g, 42, core::sleeping_mis(options));
    const auto bulk_run = bulk::bulk_sleeping_mis(g, 42, options);
    EXPECT_EQ(coro.outputs, bulk_run.outputs) << "levels=" << levels;
    ExpectMetricsEqual(coro.metrics, bulk_run.metrics);
  }
}

// --- instrumentation: the recursion traces must match exactly -------

TEST(BulkSleepingMis, RecursionTraceMatches) {
  Rng rng(7);
  const Graph g = gen::gnp_avg_degree(300, 8.0, rng);
  core::RecursionTrace coro_trace;
  core::RecursionTrace bulk_trace;
  const auto coro =
      analysis::run_mis(MisEngine::kSleeping, g, 7, {.trace = &coro_trace});
  const auto bulk_run = analysis::run_mis(
      MisEngine::kSleeping, g, 7,
      {.exec = ExecEngine::kBulk, .trace = &bulk_trace});
  EXPECT_EQ(coro.outputs, bulk_run.outputs);
  EXPECT_EQ(coro_trace.levels, bulk_trace.levels);
  EXPECT_EQ(coro_trace.bits, bulk_trace.bits);
  ASSERT_EQ(coro_trace.calls.size(), bulk_trace.calls.size());
  for (const auto& [key, stats] : coro_trace.calls) {
    const auto it = bulk_trace.calls.find(key);
    ASSERT_NE(it, bulk_trace.calls.end())
        << "call (k=" << key.first << ", path=" << key.second
        << ") missing from bulk trace";
    EXPECT_EQ(stats.participants, it->second.participants);
    EXPECT_EQ(stats.left, it->second.left);
    EXPECT_EQ(stats.right, it->second.right);
    EXPECT_EQ(stats.isolated_joins, it->second.isolated_joins);
    EXPECT_EQ(stats.first_round, it->second.first_round);
  }
  EXPECT_EQ(coro_trace.z_by_level(), bulk_trace.z_by_level());
}

// --- protocols outside the MisEngine enum ---------------------------

TEST(BulkBaselines, IsraeliItaiMatchingAgrees) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp_avg_degree(200, 5.0, rng);
    sim::NetworkOptions net;
    net.max_message_bits = sim::congest_bits_for(g.num_vertices());
    const auto coro =
        sim::run_protocol(g, seed, algos::israeli_itai_matching(), net);
    bulk::BulkOptions bopts;
    bopts.max_message_bits = net.max_message_bits;
    bulk::BulkIsraeliItai protocol;
    const auto bulk_run = bulk::run_bulk(g, seed, protocol, bopts);
    EXPECT_EQ(coro.outputs, bulk_run.outputs) << "seed=" << seed;
    ExpectMetricsEqual(coro.metrics, bulk_run.metrics);
    const auto matching = algos::matching_from_outputs(g, bulk_run.outputs);
    ASSERT_TRUE(matching.has_value());
    EXPECT_TRUE(algos::is_maximal_matching(g, *matching));
  }
}

TEST(BulkBaselines, BeepingMisAgrees) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp_avg_degree(100, 4.0, rng);
    sim::NetworkOptions net;
    net.max_message_bits = 1;
    const auto coro = sim::run_protocol(g, seed, algos::beeping_mis(), net);
    bulk::BulkOptions bopts;
    bopts.max_message_bits = 1;
    bulk::BulkBeepingMis protocol;
    const auto bulk_run = bulk::run_bulk(g, seed, protocol, bopts);
    EXPECT_EQ(coro.outputs, bulk_run.outputs) << "seed=" << seed;
    ExpectMetricsEqual(coro.metrics, bulk_run.metrics);
    EXPECT_TRUE(analysis::check_mis(g, bulk_run.outputs).ok());
  }
}

TEST(BulkBaselines, BeepingMisValidPastSixtyFiveThousand) {
  // Past n = 65536 the composite beeping rank saturates its 64-bit
  // word: random bits are capped at 64 - id_bits so the bit auction
  // never shifts out of range (this runs under the UBSan CI job, which
  // would flag a reintroduced overlong shift). Bulk-only: the coroutine
  // engine is too slow at this n for a unit test, and the two engines
  // share the capping code path bit for bit.
  Rng rng(3);
  const Graph g = gen::gnp_avg_degree(70000, 4.0, rng);
  bulk::BulkOptions bopts;
  bopts.max_message_bits = 1;
  bulk::BulkBeepingMis protocol;
  const auto run = bulk::run_bulk(g, 3, protocol, bopts);
  EXPECT_TRUE(analysis::check_mis(g, run.outputs).ok());
}

// --- edge cases and engine plumbing ---------------------------------

TEST(BulkEngine, EdgeCaseGraphsAgree) {
  ExpectEnginesAgree(MisEngine::kSleeping, gen::empty(0), 1);
  ExpectEnginesAgree(MisEngine::kSleeping, gen::empty(1), 1);
  ExpectEnginesAgree(MisEngine::kSleeping, gen::empty(50), 1);
  ExpectEnginesAgree(MisEngine::kSleeping, gen::complete(2), 1);
  ExpectEnginesAgree(MisEngine::kSleeping, gen::complete(40), 3);
  ExpectEnginesAgree(MisEngine::kSleeping, gen::star(64), 2);
  ExpectEnginesAgree(MisEngine::kSleeping, gen::path(2), 9);
  ExpectEnginesAgree(MisEngine::kLubyA, gen::empty(10), 1);
  ExpectEnginesAgree(MisEngine::kGreedy, gen::star(32), 4);
}

TEST(BulkEngine, DeterministicAcrossRuns) {
  Rng rng(11);
  const Graph g = gen::gnp_avg_degree(500, 8.0, rng);
  const auto first = analysis::run_mis(MisEngine::kSleeping, g, 11,
                                       {.exec = ExecEngine::kBulk});
  const auto second = analysis::run_mis(MisEngine::kSleeping, g, 11,
                                        {.exec = ExecEngine::kBulk});
  EXPECT_EQ(first.outputs, second.outputs);
  ExpectMetricsEqual(first.metrics, second.metrics);
}

TEST(BulkEngine, UnsupportedEngineThrows) {
  const Graph g = gen::path(8);
  EXPECT_THROW(analysis::run_mis(MisEngine::kFastSleeping, g, 1,
                                 {.exec = ExecEngine::kBulk}),
               std::invalid_argument);
  EXPECT_THROW(analysis::run_mis(MisEngine::kGhaffari, g, 1,
                                 {.exec = ExecEngine::kBulk}),
               std::invalid_argument);
  EXPECT_FALSE(analysis::engine_supports_bulk(MisEngine::kFastSleeping));
  EXPECT_TRUE(analysis::engine_supports_bulk(MisEngine::kSleeping));
}

TEST(BulkEngine, CongestViolationThrows) {
  // A 1-bit budget rejects the sleeping algorithm's 8-bit hellos, same
  // as the coroutine engine's Network would.
  const Graph g = gen::path(4);
  bulk::BulkOptions bopts;
  bopts.max_message_bits = 1;
  EXPECT_THROW(bulk::bulk_sleeping_mis(g, 1, {}, nullptr, bopts),
               sim::CongestViolation);
  bopts.throw_on_congest_violation = false;
  const auto run = bulk::bulk_sleeping_mis(g, 1, {}, nullptr, bopts);
  EXPECT_GT(run.metrics.congest_violations, 0u);
}

TEST(BulkEngine, RunTrialsBulkMatchesCoroutine) {
  const auto factory = [](std::uint64_t seed) {
    Rng rng(seed);
    return gen::gnp_avg_degree(200, 6.0, rng);
  };
  const auto coro = analysis::run_trials(
      MisEngine::kSleeping, factory, 77, 4,
      {.exec = ExecEngine::kCoroutine, .num_threads = 1});
  const auto bulk_runs = analysis::run_trials(
      MisEngine::kSleeping, factory, 77, 4,
      {.exec = ExecEngine::kBulk, .num_threads = 1});
  ASSERT_EQ(coro.size(), bulk_runs.size());
  for (std::size_t i = 0; i < coro.size(); ++i) {
    EXPECT_EQ(coro[i].outputs, bulk_runs[i].outputs) << "trial " << i;
    EXPECT_EQ(coro[i].seed, bulk_runs[i].seed);
    ExpectMetricsEqual(coro[i].metrics, bulk_runs[i].metrics);
  }
}

}  // namespace
}  // namespace slumber
