// Integration tests of the complexity claims (Theorems 1 and 2):
//   * node-averaged awake complexity of both sleeping algorithms is O(1)
//     -- flat in n;
//   * worst-case awake complexity is O(log n);
//   * Algorithm 1's makespan is Theta(n^3); Algorithm 2's is polylog;
//   * Luby-style baselines are awake Theta(log n) rounds in the worst
//     case by construction.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "core/schedule.h"
#include "graph/generators.h"

namespace slumber::analysis {
namespace {

Graph sparse_gnp(VertexId n, std::uint64_t seed) {
  Rng rng(seed);
  return gen::gnp_avg_degree(n, 8.0, rng);
}

TEST(ComplexityTest, SleepingMisNodeAvgAwakeFlatInN) {
  std::vector<double> x;
  std::vector<double> y;
  for (const VertexId n : {32u, 64u, 128u, 256u, 512u}) {
    const auto agg = aggregate_mis(
        MisEngine::kSleeping,
        [n](std::uint64_t seed) { return sparse_gnp(n, seed); }, 10, 6);
    EXPECT_EQ(agg.invalid_runs, 0u) << n;
    x.push_back(static_cast<double>(n));
    y.push_back(agg.node_avg_awake_mean);
  }
  // O(1): the log-slope must be near zero (doubling n adds < 0.6 rounds)
  // and the absolute value small.
  const LinearFit fit = log_fit(x, y);
  EXPECT_LT(std::abs(fit.slope), 0.6) << "avg awake grows with n";
  for (double value : y) EXPECT_LT(value, 12.0);
}

TEST(ComplexityTest, FastSleepingMisNodeAvgAwakeFlatInN) {
  std::vector<double> x;
  std::vector<double> y;
  for (const VertexId n : {32u, 64u, 128u, 256u, 512u}) {
    const auto agg = aggregate_mis(
        MisEngine::kFastSleeping,
        [n](std::uint64_t seed) { return sparse_gnp(n, seed); }, 20, 6);
    EXPECT_EQ(agg.invalid_runs, 0u) << n;
    x.push_back(static_cast<double>(n));
    y.push_back(agg.node_avg_awake_mean);
  }
  const LinearFit fit = log_fit(x, y);
  EXPECT_LT(std::abs(fit.slope), 0.8);
  for (double value : y) EXPECT_LT(value, 14.0);
}

TEST(ComplexityTest, SleepingMisWorstAwakeLogarithmic) {
  // Lemma 9: max_v awake(v) = O(log n); measured growth per doubling of
  // n must be bounded by a constant, and values ~ 3 log2 n.
  for (const VertexId n : {64u, 256u, 1024u}) {
    const auto agg = aggregate_mis(
        MisEngine::kSleeping,
        [n](std::uint64_t seed) { return sparse_gnp(n, seed); }, 30, 5);
    const double log_n = std::log2(static_cast<double>(n));
    EXPECT_LE(agg.worst_awake_mean, 8.0 * log_n) << n;
    EXPECT_GE(agg.worst_awake_mean, 1.0 * log_n) << n;
  }
}

TEST(ComplexityTest, SleepingMisMakespanExactlyCubicSchedule) {
  for (const VertexId n : {16u, 64u, 128u}) {
    const MisRun run = run_mis(MisEngine::kSleeping, sparse_gnp(n, 3), 3);
    ASSERT_TRUE(run.valid);
    EXPECT_EQ(run.worst_rounds,
              core::schedule_duration(core::recursion_depth(n)));
  }
}

TEST(ComplexityTest, FastSleepingMakespanPolylog) {
  // Lemma 13: O(log^{ell+1} n). Check against 40 * log2(n)^3.41.
  for (const VertexId n : {64u, 256u, 1024u}) {
    const MisRun run = run_mis(MisEngine::kFastSleeping, sparse_gnp(n, 5), 5);
    ASSERT_TRUE(run.valid);
    const double log_n = std::log2(static_cast<double>(n));
    EXPECT_LE(static_cast<double>(run.worst_rounds),
              40.0 * std::pow(log_n, core::kEll + 1.0))
        << n;
  }
}

TEST(ComplexityTest, FastMakespanAsymptoticallySmallerThanSlow) {
  const VertexId n = 128;
  const MisRun slow = run_mis(MisEngine::kSleeping, sparse_gnp(n, 7), 7);
  const MisRun fast = run_mis(MisEngine::kFastSleeping, sparse_gnp(n, 7), 7);
  EXPECT_GT(slow.worst_rounds, 100 * fast.worst_rounds);
}

TEST(ComplexityTest, LubyWorstAwakeGrowsWithN) {
  // The baseline contrast: Luby keeps every undecided node awake every
  // round, so its worst-case awake complexity tracks its round
  // complexity Theta(log n) -- and so does its node-average on paths.
  double small_n = 0.0;
  double large_n = 0.0;
  const auto worst = [](VertexId n, std::uint64_t base_seed) {
    double total = 0.0;
    for (std::uint64_t s = 0; s < 5; ++s) {
      const MisRun run =
          run_mis(MisEngine::kLubyA, sparse_gnp(n, base_seed + s),
                  base_seed + s);
      total += static_cast<double>(run.worst_awake);
    }
    return total / 5.0;
  };
  small_n = worst(32, 40);
  large_n = worst(1024, 60);
  EXPECT_GT(large_n, small_n);  // grows with n
}

TEST(ComplexityTest, SleepingBeatsLubyOnWorstRoundsNever) {
  // Sanity direction check of the Table-1 trade-off: Algorithm 1 pays a
  // much larger makespan than Luby in exchange for O(1) awake average.
  const VertexId n = 64;
  const MisRun sleeping = run_mis(MisEngine::kSleeping, sparse_gnp(n, 2), 2);
  const MisRun luby = run_mis(MisEngine::kLubyA, sparse_gnp(n, 2), 2);
  EXPECT_GT(sleeping.worst_rounds, luby.worst_rounds);
  EXPECT_LT(sleeping.node_avg_awake, 15.0);
}

TEST(ComplexityTest, AggregateReportsInvalidRuns) {
  // With a deliberately broken configuration (depth 1 on a clique the
  // base case can't fully resolve for Algorithm 1), the aggregate path
  // still completes and the verifier reports failures as invalid runs,
  // not crashes. Algorithm 1 with K=1 on K_8 leaves the right-recursion
  // cell with several nodes that all join the MIS at k=0.
  const auto agg = aggregate_mis(
      MisEngine::kSleeping,
      [](std::uint64_t) { return gen::complete(8); }, 1, 3);
  EXPECT_EQ(agg.runs, 3u);
  EXPECT_EQ(agg.invalid_runs, 0u);  // auto depth: always valid here
}

}  // namespace
}  // namespace slumber::analysis
