// Unit tests for the CSR graph substrate.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/graph.h"

namespace slumber {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(GraphTest, TriangleBasics) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.max_degree(), 2u);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.is_isolated(0));
}

TEST(GraphTest, NeighborsSortedAndPortsConsistent) {
  Graph g(5, {{2, 0}, {2, 4}, {2, 1}, {2, 3}});
  auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 3u);
  EXPECT_EQ(nbrs[3], 4u);
  for (std::uint32_t p = 0; p < 4; ++p) {
    const VertexId u = g.neighbor(2, p);
    EXPECT_EQ(g.port_to(2, u), static_cast<std::int64_t>(p));
    // The reverse port leads back.
    const auto back = g.port_to(u, 2);
    ASSERT_GE(back, 0);
    EXPECT_EQ(g.neighbor(u, static_cast<std::uint32_t>(back)), 2u);
  }
}

TEST(GraphTest, PortToMissingEdge) {
  Graph g(3, {{0, 1}});
  EXPECT_EQ(g.port_to(0, 2), -1);
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphTest, DuplicateEdgesMerged) {
  Graph g(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphTest, SelfLoopRejected) {
  EXPECT_THROW(Graph(3, {{1, 1}}), std::invalid_argument);
}

TEST(GraphTest, OutOfRangeEndpointRejected) {
  EXPECT_THROW(Graph(3, {{0, 3}}), std::invalid_argument);
}

TEST(GraphTest, EdgesNormalizedAndSorted) {
  Graph g(4, {{3, 2}, {1, 0}, {2, 0}});
  const auto& edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{0, 2}));
  EXPECT_EQ(edges[2], (Edge{2, 3}));
}

TEST(GraphTest, DegreeSumTwiceEdges) {
  Graph g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  EXPECT_EQ(g.degree_sum(), 2 * g.num_edges());
}

TEST(GraphTest, InducedSubgraph) {
  // Path 0-1-2-3-4, induce {0, 2, 3}: keeps only edge {2,3}.
  Graph g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const std::vector<VertexId> keep = {0, 2, 3};
  auto [sub, mapping] = g.induced(keep);
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 1u);
  EXPECT_EQ(mapping, keep);
  EXPECT_TRUE(sub.has_edge(1, 2));  // new ids of 2 and 3
  EXPECT_TRUE(sub.is_isolated(0));  // old 0
}

TEST(GraphTest, InducedDuplicateVertexRejected) {
  Graph g(3, {{0, 1}});
  const std::vector<VertexId> dup = {0, 0};
  EXPECT_THROW(g.induced(dup), std::invalid_argument);
}

TEST(GraphTest, LineGraphOfTriangleIsTriangle) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  Graph line = g.line_graph();
  EXPECT_EQ(line.num_vertices(), 3u);
  EXPECT_EQ(line.num_edges(), 3u);
}

TEST(GraphTest, LineGraphOfStar) {
  // K_{1,4}: line graph is K_4.
  Graph g(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  Graph line = g.line_graph();
  EXPECT_EQ(line.num_vertices(), 4u);
  EXPECT_EQ(line.num_edges(), 6u);
}

TEST(GraphTest, LineGraphOfPath) {
  // P_4 (3 edges): line graph is P_3 (2 edges).
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  Graph line = g.line_graph();
  EXPECT_EQ(line.num_vertices(), 3u);
  EXPECT_EQ(line.num_edges(), 2u);
}

TEST(GraphTest, BuilderAcceptsBothOrientations) {
  GraphBuilder builder(4);
  builder.add_edge(3, 1);
  builder.add_edge(1, 3);
  builder.add_edge(0, 2);
  EXPECT_EQ(builder.num_added_edges(), 3u);
  Graph g = std::move(builder).build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphTest, SummaryString) {
  Graph g(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.summary(), "n=3 m=2 maxdeg=2");
}

}  // namespace
}  // namespace slumber
