// Determinism and distribution tests for the sharded G(n, p) builders
// (gen::gnp_sharded_csr family, src/graph/sharded_gnp.cc).
//
// The central contract: the sharded generator's output is a pure
// function of (n, p, seed) — bitwise identical CSR (and per-block
// final RNG states, probed via ShardedGnpStats::rng_digest) for every
// lane count, with the pool-less serial path as the reference. The
// lane matrix here runs under the tsan CI job, so every cross-block
// atomic path is also a ThreadSanitizer workload.
//
// The two seed schedules (legacy single-stream vs counter-based
// per-block) never agree bitwise; the distribution suite holds their
// degree distributions together with a chi-square-style statistic
// against the exact Binomial(n-1, p) law.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/verify.h"
#include "bulk/sleeping_mis.h"
#include "graph/generators.h"
#include "util/alloc.h"
#include "util/stream_rng.h"
#include "util/thread_pool.h"

namespace slumber {
namespace {

// The acceptance matrix's lane counts; 1 pins the pooled-but-serial
// configuration against the pool-less path.
const unsigned kLaneCounts[] = {1, 2, 3, 8};

void ExpectSameCsr(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.max_degree(), b.max_degree());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "v=" << v;
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "v=" << v;
  }
}

// --- lane-count determinism matrix -----------------------------------

TEST(ShardedGen, BitwiseIdenticalAcrossLaneCounts) {
  for (const VertexId n : {97u, 5000u, 20000u}) {
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
      gen::ShardedGnpStats ref_stats;
      gen::ShardedGnpOptions ref_options;
      ref_options.stats_out = &ref_stats;
      const Graph reference =
          gen::gnp_avg_degree_sharded_csr(n, 8.0, seed, ref_options);
      EXPECT_FALSE(reference.has_edge_list());
      for (const unsigned lanes : kLaneCounts) {
        SCOPED_TRACE(testing::Message()
                     << "n=" << n << " seed=" << seed << " lanes=" << lanes);
        util::ThreadPool pool(lanes);
        gen::ShardedGnpStats stats;
        gen::ShardedGnpOptions options;
        options.pool = &pool;
        options.stats_out = &stats;
        const Graph sharded =
            gen::gnp_avg_degree_sharded_csr(n, 8.0, seed, options);
        ExpectSameCsr(reference, sharded);
        // Per-block final RNG states are pure functions of (seed,
        // block); their order-free digest must match the serial path.
        EXPECT_EQ(ref_stats.rng_digest, stats.rng_digest);
        EXPECT_EQ(ref_stats.blocks, stats.blocks);
      }
    }
  }
}

TEST(ShardedGen, DenseAndEdgeCasesAcrossLaneCounts) {
  util::ThreadPool pool(4);
  gen::ShardedGnpOptions parallel;
  parallel.pool = &pool;
  // Dense p: every block emits many edges per row.
  const Graph dense_ref = gen::gnp_sharded_csr(300, 0.5, 3);
  ExpectSameCsr(dense_ref, gen::gnp_sharded_csr(300, 0.5, 3, parallel));
  // Degenerate p: empty and complete.
  EXPECT_EQ(gen::gnp_sharded_csr(50, 0.0, 1, parallel).num_edges(), 0u);
  const Graph complete = gen::gnp_sharded_csr(40, 1.0, 1, parallel);
  EXPECT_EQ(complete.num_edges(), 40u * 39 / 2);
  // Tiny n.
  EXPECT_EQ(gen::gnp_sharded_csr(0, 0.5, 1, parallel).num_vertices(), 0u);
  EXPECT_EQ(gen::gnp_sharded_csr(1, 0.5, 1, parallel).num_edges(), 0u);
}

TEST(ShardedGen, FirstTouchPlacementIsBitwiseInvariant) {
  util::ThreadPool pool(4);
  gen::ShardedGnpOptions plain;
  plain.pool = &pool;
  gen::ShardedGnpOptions touched;
  touched.pool = &pool;
  touched.first_touch = true;
  const Graph a = gen::gnp_avg_degree_sharded_csr(20000, 8.0, 5, plain);
  const Graph b = gen::gnp_avg_degree_sharded_csr(20000, 8.0, 5, touched);
  ExpectSameCsr(a, b);
}

TEST(ShardedGen, SeedsAndParametersChangeTheGraph) {
  const Graph a = gen::gnp_avg_degree_sharded_csr(4000, 8.0, 1);
  const Graph b = gen::gnp_avg_degree_sharded_csr(4000, 8.0, 2);
  // Distinct seeds must realize distinct edge sets (overwhelmingly).
  bool differs = a.num_edges() != b.num_edges();
  for (VertexId v = 0; !differs && v < 4000; ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    differs = na.size() != nb.size() ||
              !std::equal(na.begin(), na.end(), nb.begin());
  }
  EXPECT_TRUE(differs);
}

// --- the counter-based stream discipline -----------------------------

TEST(StreamRng, PureFunctionOfSeedAndCounter) {
  Rng a = util::stream_rng(99, 7);
  // Opening and consuming unrelated streams in between must not
  // perturb stream 7 (counter-based, not consumption-based).
  Rng noise = util::stream_rng(99, 3);
  for (int i = 0; i < 100; ++i) noise.next();
  Rng b = util::stream_rng(99, 7);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.next(), b.next()) << "draw " << i;
  }
}

TEST(StreamRng, AdjacentCountersDecorrelate) {
  Rng a = util::stream_rng(5, 0);
  Rng b = util::stream_rng(5, 1);
  Rng c = util::stream_rng(6, 0);
  int agree_ab = 0;
  int agree_ac = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t x = a.next();
    if (x == b.next()) ++agree_ab;
    if (x == c.next()) ++agree_ac;
  }
  EXPECT_EQ(agree_ab, 0);
  EXPECT_EQ(agree_ac, 0);
}

// --- distribution equivalence with the legacy schedule ---------------

// Chi-square-style statistic of an empirical degree histogram against
// the exact Binomial(n-1, p) law, pooling bins with expected count
// below 5 into the tails.
double DegreeChiSquare(const Graph& g, double p) {
  const auto n = g.num_vertices();
  std::vector<std::uint64_t> histogram(g.max_degree() + 1, 0);
  for (VertexId v = 0; v < n; ++v) ++histogram[g.degree(v)];
  // Binomial pmf via the ratio recurrence, scaled to n vertices.
  const double trials = static_cast<double>(n - 1);
  std::vector<double> expected;
  double pmf = std::pow(1.0 - p, trials);
  for (std::uint32_t k = 0; k <= 4 * 8 + 40; ++k) {
    expected.push_back(pmf * static_cast<double>(n));
    pmf *= ((trials - k) / (k + 1.0)) * (p / (1.0 - p));
  }
  double statistic = 0.0;
  double pooled_obs = 0.0;
  double pooled_exp = 0.0;
  const std::size_t bins = std::max(histogram.size(), expected.size());
  for (std::size_t k = 0; k < bins; ++k) {
    const double obs =
        k < histogram.size() ? static_cast<double>(histogram[k]) : 0.0;
    const double exp = k < expected.size() ? expected[k] : 0.0;
    if (exp < 5.0) {
      pooled_obs += obs;
      pooled_exp += exp;
      continue;
    }
    statistic += (obs - exp) * (obs - exp) / exp;
  }
  if (pooled_exp > 0.0) {
    statistic +=
        (pooled_obs - pooled_exp) * (pooled_obs - pooled_exp) / pooled_exp;
  }
  return statistic;
}

TEST(ShardedGen, DegreeDistributionMatchesLegacySchedule) {
  constexpr VertexId kN = 20000;
  const double p = gen::gnp_probability_for_avg_degree(kN, 8.0);
  // ~30 effective bins; chi-square critical value at p=0.001 is ~60.
  // Fixed seeds make the statistics deterministic; 80 gives slack for
  // an unlucky (but committed) draw while still catching a broken
  // schedule, whose statistic explodes by orders of magnitude.
  constexpr double kThreshold = 80.0;
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const Graph sharded = gen::gnp_avg_degree_sharded_csr(kN, 8.0, seed);
    Rng rng(seed);
    const Graph legacy = gen::gnp_avg_degree(kN, 8.0, rng);
    const double sharded_stat = DegreeChiSquare(sharded, p);
    const double legacy_stat = DegreeChiSquare(legacy, p);
    EXPECT_LT(sharded_stat, kThreshold) << "seed=" << seed;
    EXPECT_LT(legacy_stat, kThreshold) << "seed=" << seed;
    // Edge totals are Binomial(C(n,2), p): mean 80k, sigma ~283. Both
    // schedules must land within 5 sigma.
    const double mean =
        p * 0.5 * static_cast<double>(kN) * static_cast<double>(kN - 1);
    const double sigma = std::sqrt(mean * (1.0 - p));
    EXPECT_NEAR(static_cast<double>(sharded.num_edges()), mean, 5 * sigma);
    EXPECT_NEAR(static_cast<double>(legacy.num_edges()), mean, 5 * sigma);
  }
}

// --- make() schedule plumbing ----------------------------------------

TEST(ShardedGen, MakeRoutesGnpFamiliesThroughShardedSchedule) {
  gen::MakeOptions options;
  options.schedule = gen::Schedule::kSharded;
  const Graph via_make =
      gen::make(gen::Family::kGnpSparse, 3000, 17, options);
  const Graph direct = gen::gnp_avg_degree_sharded_csr(3000, 8.0, 17);
  ExpectSameCsr(via_make, direct);
  EXPECT_FALSE(via_make.has_edge_list());
  // Non-gnp families have one schedule; both spellings agree.
  const Graph cycle_sharded =
      gen::make(gen::Family::kCycle, 100, 1, options);
  const Graph cycle_legacy = gen::make(gen::Family::kCycle, 100, 1);
  ExpectSameCsr(cycle_sharded, cycle_legacy);
}

TEST(ShardedGen, ScheduleNamesRoundTrip) {
  for (const gen::Schedule schedule : gen::all_schedules()) {
    gen::Schedule parsed;
    ASSERT_TRUE(gen::schedule_from_name(gen::schedule_name(schedule),
                                        &parsed));
    EXPECT_EQ(parsed, schedule);
  }
  gen::Schedule out;
  EXPECT_FALSE(gen::schedule_from_name("zigzag", &out));
}

// --- shared gnp helpers (deduplicated across the gnp* variants) ------

TEST(GnpHelpers, ProbabilityForAvgDegree) {
  EXPECT_DOUBLE_EQ(gen::gnp_probability_for_avg_degree(101, 8.0), 0.08);
  EXPECT_DOUBLE_EQ(gen::gnp_probability_for_avg_degree(2, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(gen::gnp_probability_for_avg_degree(11, 0.0), 0.0);
}

TEST(GnpHelpers, ReserveHintCoversMeanPlusSlack) {
  const std::size_t hint = gen::gnp_reserve_hint(1000, 8.0 / 999.0);
  const double mean = (8.0 / 999.0) * 0.5 * 1000.0 * 999.0;
  EXPECT_GE(hint, static_cast<std::size_t>(mean));
  EXPECT_LE(hint, static_cast<std::size_t>(mean + 4 * std::sqrt(mean) + 17));
  // Degenerate inputs stay sane.
  EXPECT_GE(gen::gnp_reserve_hint(2, 0.5), 0u);
}

// --- first-touch in the bulk engine ----------------------------------

TEST(ShardedGen, BulkFirstTouchIsBitwiseInvariant) {
  const Graph g = gen::gnp_avg_degree_sharded_csr(8000, 8.0, 23);
  bulk::BulkOptions base;
  base.max_message_bits = sim::congest_bits_for(g.num_vertices());
  const bulk::BulkResult reference =
      bulk::bulk_sleeping_mis(g, 23, {}, nullptr, base);
  EXPECT_TRUE(analysis::check_mis(g, reference.outputs).ok());
  util::ThreadPool pool(4);
  bulk::BulkOptions touched = base;
  touched.pool = &pool;
  touched.parallel_cutoff = 1;
  touched.first_touch = true;
  const bulk::BulkResult run =
      bulk::bulk_sleeping_mis(g, 23, {}, nullptr, touched);
  EXPECT_EQ(reference.outputs, run.outputs);
  EXPECT_TRUE(run.virtual_makespan == reference.virtual_makespan);
  EXPECT_EQ(reference.metrics.total_awake_node_rounds,
            run.metrics.total_awake_node_rounds);
  EXPECT_EQ(reference.metrics.total_messages, run.metrics.total_messages);
}

// --- util::sharded_fill ----------------------------------------------

TEST(ShardedFill, ContentsIdenticalWithAndWithoutPool) {
  util::ThreadPool pool(3);
  const auto serial = util::sharded_fill<std::uint32_t>(10001, 7, nullptr);
  const auto parallel = util::sharded_fill<std::uint32_t>(10001, 7, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_TRUE(std::equal(serial.begin(), serial.end(), parallel.begin()));
  EXPECT_TRUE(util::sharded_fill<int>(0, 1, &pool).empty());
}

}  // namespace
}  // namespace slumber
