// Tests for the recursion schedule (Lemma 10, Figure 1, Equation 2).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/schedule.h"

namespace slumber::core {
namespace {

TEST(ScheduleTest, DurationMatchesClosedForm) {
  // T(k) = 3(2^k - 1) for base 0 (Lemma 10).
  EXPECT_EQ(schedule_duration(0), 0u);
  EXPECT_EQ(schedule_duration(1), 3u);
  EXPECT_EQ(schedule_duration(2), 9u);
  EXPECT_EQ(schedule_duration(3), 21u);
  EXPECT_EQ(schedule_duration(10), 3u * 1023);
}

TEST(ScheduleTest, DurationSatisfiesRecurrence) {
  for (std::uint64_t base : {0ULL, 1ULL, 46ULL}) {
    for (std::uint32_t k = 1; k <= 20; ++k) {
      EXPECT_EQ(schedule_duration(k, base),
                2 * schedule_duration(k - 1, base) + 3);
    }
    EXPECT_EQ(schedule_duration(0, base), base);
  }
}

TEST(ScheduleTest, RecursionDepthIsCeil3Log2) {
  EXPECT_EQ(recursion_depth(0), 0u);
  EXPECT_EQ(recursion_depth(1), 0u);
  EXPECT_EQ(recursion_depth(2), 3u);    // ceil(3*1)
  EXPECT_EQ(recursion_depth(8), 9u);    // ceil(3*3)
  EXPECT_EQ(recursion_depth(1024), 30u);
  // Non-powers of two round up.
  EXPECT_EQ(recursion_depth(5), 7u);  // 3*log2(5) = 6.97
  for (std::uint64_t n = 2; n <= 300; ++n) {
    const double exact = 3.0 * std::log2(static_cast<double>(n));
    EXPECT_EQ(recursion_depth(n),
              static_cast<std::uint32_t>(std::ceil(exact - 1e-9)))
        << n;
  }
}

TEST(ScheduleTest, WorstCaseRoundComplexityIsCubic) {
  // T(K) with K = ceil(3 log2 n) is <= 3(2n)^3 and >= n^3 (Lemma 10).
  for (std::uint64_t n : {4ULL, 16ULL, 100ULL, 1024ULL}) {
    const double t = static_cast<double>(schedule_duration(recursion_depth(n)));
    const double cube = static_cast<double>(n) * n * n;
    EXPECT_GE(t, 0.9 * cube) << n;
    EXPECT_LE(t, 24.0 * cube) << n;
  }
}

TEST(ScheduleTest, FastDepthMatchesEll) {
  // K2 = ceil(ell * log2 log2 n), ell = 1/log2(4/3).
  EXPECT_EQ(fast_recursion_depth(2), 1u);
  for (std::uint64_t n : {16ULL, 256ULL, 4096ULL, 1048576ULL}) {
    const double expected =
        std::ceil(kEll * std::log2(std::log2(static_cast<double>(n))) - 1e-9);
    EXPECT_EQ(fast_recursion_depth(n), static_cast<std::uint32_t>(expected))
        << n;
  }
  // Depth grows like log log n: tiny even for huge n.
  EXPECT_LE(fast_recursion_depth(1'000'000), 11u);
}

TEST(ScheduleTest, GreedyBaseRoundsEvenAndLogarithmic) {
  for (std::uint64_t n : {2ULL, 10ULL, 100ULL, 1000ULL, 100000ULL}) {
    const std::uint64_t r = greedy_base_rounds(n);
    EXPECT_EQ(r % 2, 0u);
    EXPECT_GE(r, 2u);
    EXPECT_GE(static_cast<double>(r), 6.0 * std::log2(static_cast<double>(n)) - 2.0);
    EXPECT_LE(static_cast<double>(r), 6.0 * std::log2(static_cast<double>(n)) + 2.0);
  }
}

TEST(ScheduleTest, Figure1LabelsExactlyMatchPaper) {
  // The paper's Figure 1: a four-level tree labeled
  // (1,29)(2,14)(3,7)(4,4)(6,6)(9,13)(10,10)(12,12)(16,28)(17,21)
  // (18,18)(20,20)(23,27)(24,24)(26,26), pre-order.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expected = {
      {1, 29}, {2, 14}, {3, 7},   {4, 4},   {6, 6},
      {9, 13}, {10, 10}, {12, 12}, {16, 28}, {17, 21},
      {18, 18}, {20, 20}, {23, 27}, {24, 24}, {26, 26}};
  const auto tree = figure1_tree(3);
  ASSERT_EQ(tree.size(), expected.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(tree[i].reach, expected[i].first) << "node " << i;
    EXPECT_EQ(tree[i].finish, expected[i].second) << "node " << i;
  }
}

TEST(ScheduleTest, Figure1TreeShape) {
  const auto tree = figure1_tree(4);
  EXPECT_EQ(tree.size(), (1u << 5) - 1);  // full binary tree, 5 levels
  std::map<std::uint32_t, int> per_depth;
  for (const TreeNode& node : tree) ++per_depth[node.depth];
  for (std::uint32_t d = 0; d <= 4; ++d) EXPECT_EQ(per_depth[d], 1 << d);
}

TEST(ScheduleTest, ExecutionTreeWindowsNestProperly) {
  const std::uint64_t base = 4;
  const auto tree = execution_tree(5, base);
  // Windows of children lie inside the parent's window; siblings are
  // disjoint and separated by exactly the 2 synchronization rounds.
  std::map<std::pair<std::uint32_t, std::uint64_t>, TreeNode> by_key;
  for (const TreeNode& node : tree) by_key[{node.depth, node.path}] = node;
  for (const TreeNode& node : tree) {
    if (node.k == 0) continue;
    const TreeNode& left = by_key.at({node.depth + 1, node.path << 1});
    const TreeNode& right = by_key.at({node.depth + 1, (node.path << 1) | 1});
    EXPECT_EQ(left.reach, node.reach + 1);
    EXPECT_EQ(right.reach, left.finish + 3);  // sync + 2nd detection rounds
    EXPECT_EQ(node.finish, right.finish);
    EXPECT_EQ(node.finish - node.reach + 1, schedule_duration(node.k, base));
  }
}

TEST(ScheduleTest, RenderTreeMentionsLabels) {
  const std::string text = render_tree(figure1_tree(2));
  EXPECT_NE(text.find("1, 13"), std::string::npos);
  EXPECT_NE(text.find("(k=0)"), std::string::npos);
}

}  // namespace
}  // namespace slumber::core
