// Unit and property tests for graph transforms (power, complement,
// disjoint union, subdivision, Mycielski).
#include <gtest/gtest.h>

#include <array>
#include <tuple>
#include <vector>

#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/transforms.h"
#include "util/rng.h"

namespace slumber {
namespace {

// ---------------------------------------------------------------------
// power
// ---------------------------------------------------------------------

TEST(PowerTest, PowerZeroIsEdgeless) {
  Graph g = gen::cycle(7);
  Graph p0 = power(g, 0);
  EXPECT_EQ(p0.num_vertices(), 7u);
  EXPECT_EQ(p0.num_edges(), 0u);
}

TEST(PowerTest, PowerOneIsIdentity) {
  Rng rng(7);
  Graph g = gen::gnp(40, 0.1, rng);
  Graph p1 = power(g, 1);
  EXPECT_EQ(p1.edges(), g.edges());
}

TEST(PowerTest, CycleSquared) {
  // C_8 squared: every vertex gains its distance-2 neighbors -> 4-regular.
  Graph p = power(gen::cycle(8), 2);
  EXPECT_EQ(p.num_edges(), 16u);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(p.degree(v), 4u);
  EXPECT_TRUE(p.has_edge(0, 2));
  EXPECT_TRUE(p.has_edge(0, 1));
  EXPECT_FALSE(p.has_edge(0, 3));
}

TEST(PowerTest, PathCubed) {
  // P_5 cubed: 0 reaches 1,2,3 but not 4.
  Graph p = power(gen::path(5), 3);
  EXPECT_TRUE(p.has_edge(0, 3));
  EXPECT_FALSE(p.has_edge(0, 4));
  EXPECT_TRUE(p.has_edge(1, 4));
}

TEST(PowerTest, LargePowerIsTransitiveClosurePerComponent) {
  // Two disjoint triangles; a huge power must not connect components.
  std::array<Graph, 2> parts = {gen::complete(3), gen::complete(3)};
  Graph g = disjoint_union(parts);
  Graph p = power(g, 100);
  EXPECT_EQ(p.num_edges(), 6u);  // each triangle saturates to K_3
  EXPECT_FALSE(p.has_edge(0, 3));
}

TEST(PowerTest, StarIsDiameterTwo) {
  Graph p = power(gen::star(10), 2);
  // Star squared is complete: hub at distance 1, leaves pairwise at 2.
  EXPECT_EQ(p.num_edges(), 45u);
}

// Property: edges of G^k connect vertices at BFS distance <= k, and
// every pair at distance <= k is an edge.
TEST(PowerTest, MatchesBfsDistances) {
  Rng rng(99);
  Graph g = gen::gnp(30, 0.08, rng);
  for (std::uint32_t k : {2u, 3u}) {
    Graph p = power(g, k);
    auto dist = bfs_distances(g, 0);
    for (VertexId v = 1; v < g.num_vertices(); ++v) {
      const bool reachable = dist[v] >= 1 && dist[v] <= k;
      EXPECT_EQ(p.has_edge(0, v), reachable)
          << "k=" << k << " v=" << v << " dist=" << dist[v];
    }
  }
}

// ---------------------------------------------------------------------
// complement
// ---------------------------------------------------------------------

TEST(ComplementTest, CompleteToEmpty) {
  Graph c = complement(gen::complete(6));
  EXPECT_EQ(c.num_edges(), 0u);
}

TEST(ComplementTest, EmptyToComplete) {
  Graph c = complement(gen::empty(6));
  EXPECT_EQ(c.num_edges(), 15u);
}

TEST(ComplementTest, Involution) {
  Rng rng(5);
  Graph g = gen::gnp(25, 0.3, rng);
  Graph cc = complement(complement(g));
  EXPECT_EQ(cc.edges(), g.edges());
}

TEST(ComplementTest, EdgeCountsSumToChoose2) {
  Rng rng(6);
  Graph g = gen::gnp(31, 0.2, rng);
  Graph c = complement(g);
  EXPECT_EQ(g.num_edges() + c.num_edges(), 31u * 30u / 2);
}

TEST(ComplementTest, CycleFiveIsSelfComplementary) {
  // C_5 is self-complementary (as an unlabeled graph): the complement is
  // again a 5-cycle, i.e. 2-regular on 5 edges.
  Graph c = complement(gen::cycle(5));
  EXPECT_EQ(c.num_edges(), 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(c.degree(v), 2u);
}

// ---------------------------------------------------------------------
// disjoint_union
// ---------------------------------------------------------------------

TEST(DisjointUnionTest, OffsetsAndCounts) {
  std::array<Graph, 3> parts = {gen::complete(3), gen::empty(2),
                                gen::path(4)};
  Graph g = disjoint_union(parts);
  EXPECT_EQ(g.num_vertices(), 9u);
  EXPECT_EQ(g.num_edges(), 3u + 0u + 3u);
  EXPECT_TRUE(g.has_edge(0, 1));   // inside K_3
  EXPECT_TRUE(g.has_edge(5, 6));   // inside the path (offset 5)
  EXPECT_FALSE(g.has_edge(2, 3));  // across parts
  EXPECT_TRUE(g.is_isolated(3));
  EXPECT_TRUE(g.is_isolated(4));
}

TEST(DisjointUnionTest, EmptyInput) {
  Graph g = disjoint_union(std::span<const Graph>{});
  EXPECT_EQ(g.num_vertices(), 0u);
}

TEST(DisjointUnionTest, ComponentCountAdds) {
  std::array<Graph, 2> parts = {gen::cycle(4), gen::cycle(5)};
  Graph g = disjoint_union(parts);
  EXPECT_EQ(connected_components(g).count, 2u);
}

// ---------------------------------------------------------------------
// subdivision
// ---------------------------------------------------------------------

TEST(SubdivisionTest, TriangleBecomesHexagon) {
  Graph s = subdivision(gen::complete(3));
  EXPECT_EQ(s.num_vertices(), 6u);
  EXPECT_EQ(s.num_edges(), 6u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(s.degree(v), 2u);
  EXPECT_TRUE(is_bipartite(s));
}

TEST(SubdivisionTest, PreservesDegreesOfOriginals) {
  Rng rng(11);
  Graph g = gen::gnp(20, 0.2, rng);
  Graph s = subdivision(g);
  EXPECT_EQ(s.num_vertices(), g.num_vertices() + g.num_edges());
  EXPECT_EQ(s.num_edges(), 2 * g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(s.degree(v), g.degree(v));
  }
  // Every subdivision vertex has degree exactly 2.
  for (VertexId x = g.num_vertices(); x < s.num_vertices(); ++x) {
    EXPECT_EQ(s.degree(x), 2u);
  }
  EXPECT_TRUE(is_bipartite(s));
}

// ---------------------------------------------------------------------
// mycielski
// ---------------------------------------------------------------------

TEST(MycielskiTest, OfK2IsC5) {
  // M(K_2) is the 5-cycle.
  Graph m = mycielski(gen::complete(2));
  EXPECT_EQ(m.num_vertices(), 5u);
  EXPECT_EQ(m.num_edges(), 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(m.degree(v), 2u);
}

TEST(MycielskiTest, OfC5IsGroetzsch) {
  // M(C_5) is the Groetzsch graph: 11 vertices, 20 edges, triangle-free.
  Graph m = mycielski(gen::cycle(5));
  EXPECT_EQ(m.num_vertices(), 11u);
  EXPECT_EQ(m.num_edges(), 20u);
  EXPECT_EQ(triangle_count(m), 0u);
}

TEST(MycielskiTest, ShadowAdjacency) {
  Graph g = gen::path(3);  // 0-1-2
  Graph m = mycielski(g);
  const VertexId apex = 6;
  // shadow(1) = 4 is adjacent to 1's neighbors {0, 2} and the apex.
  EXPECT_TRUE(m.has_edge(4, 0));
  EXPECT_TRUE(m.has_edge(4, 2));
  EXPECT_TRUE(m.has_edge(4, apex));
  // Shadows are pairwise non-adjacent.
  EXPECT_FALSE(m.has_edge(3, 4));
  EXPECT_FALSE(m.has_edge(4, 5));
  // Apex is not adjacent to originals.
  EXPECT_FALSE(m.has_edge(apex, 0));
}

TEST(MycielskiTest, PreservesTriangleFreeness) {
  Rng rng(3);
  Graph g = gen::random_tree(12, rng);  // trees are triangle-free
  Graph m = mycielski(g);
  EXPECT_EQ(triangle_count(m), 0u);
  EXPECT_EQ(m.num_vertices(), 25u);
  EXPECT_EQ(m.num_edges(), 3 * g.num_edges() + 12u);
}

}  // namespace
}  // namespace slumber
