// Brute-force cross-checks of graph-structural operations on random
// inputs: the induced subgraph, the line graph, ports, and the
// degeneracy order are validated against their definitions directly.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "graph/properties.h"
#include "util/rng.h"

namespace slumber {
namespace {

class StructureFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StructureFuzzTest, InducedSubgraphMatchesDefinition) {
  Rng rng(GetParam());
  const Graph g = gen::gnp(30, 0.2, rng);
  // Random vertex subset.
  std::vector<VertexId> keep;
  for (VertexId v = 0; v < 30; ++v) {
    if (rng.coin()) keep.push_back(v);
  }
  auto [sub, mapping] = g.induced(keep);
  ASSERT_EQ(sub.num_vertices(), keep.size());
  // Definition: new u ~ new v iff old counterparts adjacent in g.
  for (VertexId u = 0; u < sub.num_vertices(); ++u) {
    for (VertexId v = u + 1; v < sub.num_vertices(); ++v) {
      EXPECT_EQ(sub.has_edge(u, v), g.has_edge(mapping[u], mapping[v]));
    }
  }
}

TEST_P(StructureFuzzTest, LineGraphMatchesDefinition) {
  Rng rng(GetParam() + 1000);
  const Graph g = gen::gnp(16, 0.3, rng);
  const Graph line = g.line_graph();
  ASSERT_EQ(line.num_vertices(), g.num_edges());
  for (EdgeId a = 0; a < g.num_edges(); ++a) {
    for (EdgeId b = a + 1; b < g.num_edges(); ++b) {
      const Edge ea = g.edges()[a];
      const Edge eb = g.edges()[b];
      const bool share = ea.u == eb.u || ea.u == eb.v || ea.v == eb.u ||
                         ea.v == eb.v;
      EXPECT_EQ(line.has_edge(a, b), share) << a << "," << b;
    }
  }
}

TEST_P(StructureFuzzTest, PortsBijectiveWithNeighbors) {
  Rng rng(GetParam() + 2000);
  const Graph g = gen::gnp(25, 0.25, rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::set<VertexId> seen;
    for (std::uint32_t p = 0; p < g.degree(v); ++p) {
      const VertexId u = g.neighbor(v, p);
      EXPECT_TRUE(seen.insert(u).second);  // ports hit distinct neighbors
      EXPECT_TRUE(g.has_edge(v, u));
      EXPECT_EQ(g.port_to(v, u), static_cast<std::int64_t>(p));
    }
    EXPECT_EQ(seen.size(), g.degree(v));
  }
}

TEST_P(StructureFuzzTest, DegeneracyOrderWitnessesItsValue) {
  // Definition: removing vertices in the order, each vertex has at most
  // `degeneracy` not-yet-removed neighbors at its removal time -- and
  // at least one vertex attains it.
  Rng rng(GetParam() + 3000);
  const Graph g = gen::gnp(40, 0.15, rng);
  const auto result = degeneracy_order(g);
  std::vector<bool> removed(g.num_vertices(), false);
  std::uint32_t max_seen = 0;
  for (VertexId v : result.order) {
    std::uint32_t residual = 0;
    for (VertexId u : g.neighbors(v)) {
      if (!removed[u]) ++residual;
    }
    max_seen = std::max(max_seen, residual);
    EXPECT_LE(residual, result.degeneracy);
    removed[v] = true;
  }
  EXPECT_EQ(max_seen, result.degeneracy);
}

TEST_P(StructureFuzzTest, ComponentsPartitionAndRespectEdges) {
  Rng rng(GetParam() + 4000);
  const Graph g = gen::gnp(40, 0.04, rng);  // sparse: multiple components
  const Components c = connected_components(g);
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(c.component_of[e.u], c.component_of[e.v]);
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LT(c.component_of[v], c.count);
  }
  // Cross-component pairs are non-adjacent and BFS-unreachable.
  const auto dist = bfs_distances(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(dist[v] >= 0, c.component_of[v] == c.component_of[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructureFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace slumber
