// Tests for the radio energy model.
#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "energy/energy.h"
#include "graph/generators.h"

namespace slumber::energy {
namespace {

sim::NodeMetrics make_node(std::uint64_t awake, std::uint64_t finish,
                           std::uint64_t sent, std::uint64_t received) {
  sim::NodeMetrics m;
  m.awake_rounds = awake;
  m.finish_round = finish;
  m.messages_sent = sent;
  m.messages_received = received;
  return m;
}

TEST(EnergyTest, SleepIsCheapIdleIsExpensive) {
  EnergyModel model;
  // Same wall time, one node awake throughout vs asleep throughout.
  const double awake_cost = model.node_energy_mj(make_node(100, 100, 0, 0));
  const double sleepy_cost = model.node_energy_mj(make_node(1, 100, 0, 0));
  EXPECT_GT(awake_cost, 10.0 * sleepy_cost);
}

TEST(EnergyTest, IdealizedSleepIsFree) {
  const EnergyModel model = EnergyModel::idealized();
  const double cost_a = model.node_energy_mj(make_node(5, 100, 0, 0));
  const double cost_b = model.node_energy_mj(make_node(5, 1'000'000, 0, 0));
  EXPECT_DOUBLE_EQ(cost_a, cost_b);  // trailing sleep costs nothing
}

TEST(EnergyTest, MessagesAddPremium) {
  EnergyModel model;
  const double quiet = model.node_energy_mj(make_node(10, 10, 0, 0));
  const double chatty = model.node_energy_mj(make_node(10, 10, 5, 5));
  EXPECT_GT(chatty, quiet);
  // Premium is (tx - idle) and (rx - idle) per message fraction.
  const double expected_premium =
      ((model.tx_mw - model.idle_mw) + (model.rx_mw - model.idle_mw)) * 5 *
      model.msg_fraction * model.round_ms * 1e-3;
  EXPECT_NEAR(chatty - quiet, expected_premium, 1e-9);
}

TEST(EnergyTest, ReportAggregates) {
  EnergyModel model;
  sim::Metrics metrics;
  metrics.node.push_back(make_node(10, 10, 0, 0));
  metrics.node.push_back(make_node(20, 20, 0, 0));
  const EnergyReport report = evaluate(model, metrics);
  ASSERT_EQ(report.per_node_mj.size(), 2u);
  EXPECT_NEAR(report.total_mj,
              report.per_node_mj[0] + report.per_node_mj[1], 1e-12);
  EXPECT_NEAR(report.mean_mj, report.total_mj / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.max_mj, report.per_node_mj[1]);
}

TEST(EnergyTest, SleepingMisBeatsLubyPerNodeUnderIdealModel) {
  // The paper's headline in energy terms: with sleeping free, the
  // sleeping algorithm's mean energy stays flat while Luby's grows.
  Rng rng(3);
  const Graph g = gen::gnp_avg_degree(300, 8.0, rng);
  const auto sleeping =
      analysis::run_mis(analysis::MisEngine::kSleeping, g, 7);
  const auto luby = analysis::run_mis(analysis::MisEngine::kLubyA, g, 7);
  ASSERT_TRUE(sleeping.valid);
  ASSERT_TRUE(luby.valid);
  const EnergyModel model = EnergyModel::idealized();
  const EnergyReport sleep_report = evaluate(model, sleeping.metrics);
  const EnergyReport luby_report = evaluate(model, luby.metrics);
  EXPECT_GT(sleep_report.mean_mj, 0.0);
  // Awake-time ratio dominates; allow generous slack for the constant.
  EXPECT_LT(sleep_report.mean_mj, 10.0 * luby_report.mean_mj);
}

}  // namespace
}  // namespace slumber::energy
