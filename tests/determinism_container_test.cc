// Pins the ordered-container rewrites (lint rule slumber-d2) to the
// behavior of the hash-container code they replaced: Graph::induced's
// relabeling (formerly std::unordered_map) and the edge-coloring
// distinct-count / adjacency-check scans (formerly std::unordered_set)
// must produce bit-identical results on seeded graphs. The reference
// implementations below are verbatim ports of the pre-rewrite logic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "algos/edge_coloring.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace slumber {
namespace {

// Pre-rewrite Graph::induced, kept as the behavioral oracle. Only
// find/emplace touch the map — never iteration — so its output was
// deterministic and the sorted-vector rewrite must match it exactly.
std::pair<Graph, std::vector<VertexId>> induced_reference(
    const Graph& g, std::span<const VertexId> vertices) {
  std::unordered_map<VertexId, VertexId> to_new;
  to_new.reserve(vertices.size());
  std::vector<VertexId> to_original(vertices.begin(), vertices.end());
  for (VertexId i = 0; i < to_original.size(); ++i) {
    auto [it, inserted] = to_new.emplace(to_original[i], i);
    if (!inserted) throw std::invalid_argument("duplicate vertex");
  }
  std::vector<Edge> sub_edges;
  for (const Edge& e : g.edges()) {
    auto iu = to_new.find(e.u);
    if (iu == to_new.end()) continue;
    auto iv = to_new.find(e.v);
    if (iv == to_new.end()) continue;
    sub_edges.push_back({iu->second, iv->second});
  }
  return {Graph(static_cast<VertexId>(to_original.size()),
                std::move(sub_edges)),
          std::move(to_original)};
}

// Pre-rewrite distinct-color count (hash-set cardinality).
std::size_t colors_used_reference(const std::vector<std::int64_t>& colors) {
  std::unordered_set<std::int64_t> distinct;
  for (std::int64_t c : colors) {
    if (c >= 0) distinct.insert(c);
  }
  return distinct.size();
}

// Pre-rewrite check_edge_coloring (per-vertex hash-set scan).
bool check_edge_coloring_reference(const Graph& g,
                                   const std::vector<std::int64_t>& colors) {
  if (colors.size() != g.num_edges()) return false;
  const std::int64_t palette = std::max<std::int64_t>(
      2 * static_cast<std::int64_t>(g.max_degree()) - 1, 1);
  for (std::int64_t c : colors) {
    if (c < 0 || c >= palette) return false;
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::unordered_set<std::int64_t> seen;
    for (VertexId u : g.neighbors(v)) {
      const Edge e = u < v ? Edge{u, v} : Edge{v, u};
      const auto& edges = g.edges();
      const auto it = std::lower_bound(edges.begin(), edges.end(), e);
      const auto eid = static_cast<EdgeId>(it - edges.begin());
      if (!seen.insert(colors[eid]).second) return false;
    }
  }
  return true;
}

std::vector<VertexId> every_other_vertex(const Graph& g) {
  std::vector<VertexId> keep;
  for (VertexId v = 0; v < g.num_vertices(); v += 2) keep.push_back(v);
  return keep;
}

TEST(DeterminismContainerTest, InducedMatchesHashMapReferenceOnSeededGnp) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    Graph g = gen::gnp_avg_degree(200, 6.0, rng);
    const auto keep = every_other_vertex(g);
    auto [sub, mapping] = g.induced(keep);
    auto [ref_sub, ref_mapping] = induced_reference(g, keep);
    EXPECT_EQ(mapping, ref_mapping) << "seed " << seed;
    EXPECT_EQ(sub.num_vertices(), ref_sub.num_vertices()) << "seed " << seed;
    EXPECT_EQ(sub.edges(), ref_sub.edges()) << "seed " << seed;
  }
}

TEST(DeterminismContainerTest, InducedMatchesReferenceOnUnsortedSubset) {
  // The subset order defines the relabeling; feed a deliberately
  // shuffled subset so mapping-by-position is actually exercised.
  Rng rng(77);
  Graph g = gen::gnp_avg_degree(128, 8.0, rng);
  std::vector<VertexId> keep = {90, 3, 17, 64, 2, 127, 55, 4, 31, 8};
  auto [sub, mapping] = g.induced(keep);
  auto [ref_sub, ref_mapping] = induced_reference(g, keep);
  EXPECT_EQ(mapping, ref_mapping);
  EXPECT_EQ(sub.edges(), ref_sub.edges());
}

TEST(DeterminismContainerTest, InducedStillRejectsDuplicates) {
  Graph g(4, {{0, 1}, {1, 2}});
  std::vector<VertexId> dup = {0, 1, 1};
  EXPECT_THROW(g.induced(dup), std::invalid_argument);
}

TEST(DeterminismContainerTest, ColorsUsedMatchesHashSetReference) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    Graph g = gen::gnp_avg_degree(60, 4.0, rng);
    auto result = algos::edge_coloring_via_line_graph(g, seed);
    EXPECT_EQ(result.colors_used, colors_used_reference(result.colors))
        << "seed " << seed;
  }
}

TEST(DeterminismContainerTest, CheckEdgeColoringMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    Graph g = gen::gnp_avg_degree(60, 4.0, rng);
    auto result = algos::edge_coloring_via_line_graph(g, seed);
    // Valid coloring: both agree it checks out.
    EXPECT_TRUE(algos::check_edge_coloring(g, result.colors));
    EXPECT_TRUE(check_edge_coloring_reference(g, result.colors));
    if (g.num_edges() < 2) continue;
    // Corrupt one edge to collide with a same-endpoint neighbor: both
    // implementations must reject identically.
    auto corrupted = result.colors;
    const Edge e0 = g.edges()[0];
    for (std::size_t eid = 1; eid < corrupted.size(); ++eid) {
      const Edge e = g.edges()[eid];
      if (e.u == e0.u || e.v == e0.u || e.u == e0.v || e.v == e0.v) {
        corrupted[eid] = result.colors[0];
        break;
      }
    }
    EXPECT_EQ(algos::check_edge_coloring(g, corrupted),
              check_edge_coloring_reference(g, corrupted))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace slumber
