// Live-dynamics determinism suite (fault/fault.h live churn, crash
// recovery, and burst-correlated loss; bulk/engine.cc apply_dynamics).
//
// Pins the contracts the live-fault layer is built around:
//   1. the Gilbert–Elliott burst channel is a pure symmetric function
//      of (edge, epoch) with the chain's stationary loss rate and
//      persistence, identical on both execution back ends;
//   2. recovery downtimes are keyed geometric draws with the requested
//      mean;
//   3. a bulk run under any mix of burst loss, live churn, and crash
//      recovery is bitwise identical at every lane count (the mid-run
//      membership edits ride the same sharded-scan merge discipline as
//      everything else);
//   4. after a live-dynamics run, the experiment layer repairs the
//      survivors' MIS so MisRun::valid refers to the final alive
//      subgraph;
//   5. the coroutine back end rejects live churn and recovery (burst
//      loss, which needs no membership edits, it accepts).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "bulk/baselines.h"
#include "bulk/engine.h"
#include "fault/churn.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "metrics_test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace slumber {
namespace {

using analysis::ExecEngine;
using analysis::MisEngine;

// --- burst channel unit contracts -----------------------------------

TEST(BurstLoss, ChannelIsPureSymmetricAndEpochConstant) {
  fault::FaultPlan plan;
  plan.burst = {.p_on = 0.1, .p_off = 0.3, .epoch_len = 5};
  const fault::FaultState fs(&plan, 42, 1000);
  for (VertexId a = 0; a < 12; ++a) {
    for (VertexId b = a + 1; b < 12; ++b) {
      for (std::uint64_t epoch = 0; epoch < 20; ++epoch) {
        const std::uint64_t start = epoch * plan.burst.epoch_len;
        const bool bad = fs.burst_bad(a, b, start, 0);
        EXPECT_EQ(bad, fs.burst_bad(b, a, start, 0));  // symmetric
        EXPECT_EQ(bad, fs.burst_bad(a, b, start, 0));  // pure
        for (std::uint64_t r = 1; r < plan.burst.epoch_len; ++r) {
          EXPECT_EQ(bad, fs.burst_bad(a, b, start + r, 0));  // one state/epoch
        }
      }
    }
  }
}

TEST(BurstLoss, HitsStationaryLossRate) {
  fault::FaultPlan plan;
  plan.burst = {.p_on = 0.1, .p_off = 0.3, .epoch_len = 4};
  const fault::FaultState fs(&plan, 7, 1 << 20);
  std::uint64_t bad = 0;
  std::uint64_t draws = 0;
  for (VertexId e = 0; e < 1000; ++e) {
    for (std::uint64_t epoch = 0; epoch < 100; ++epoch) {
      bad += fs.burst_bad(e, e + 1, epoch * plan.burst.epoch_len, 0) ? 1 : 0;
      ++draws;
    }
  }
  EXPECT_NEAR(static_cast<double>(bad) / static_cast<double>(draws),
              plan.burst.stationary_loss(), 0.02);  // pi = 0.25
}

// Adjacent epochs are positively correlated: a bad epoch stays bad with
// probability 1 - p_off (the Gilbert–Elliott transition), far above the
// stationary rate — that is the "burst" in burst loss.
TEST(BurstLoss, BadEpochsPersist) {
  fault::FaultPlan plan;
  plan.burst = {.p_on = 0.1, .p_off = 0.3, .epoch_len = 3};
  const fault::FaultState fs(&plan, 11, 1 << 20);
  std::uint64_t bad_then_bad = 0;
  std::uint64_t bad_total = 0;
  for (VertexId e = 0; e < 1500; ++e) {
    bool prev = fs.burst_bad(e, e + 1, 0, 0);
    for (std::uint64_t epoch = 1; epoch < 60; ++epoch) {
      const bool cur =
          fs.burst_bad(e, e + 1, epoch * plan.burst.epoch_len, 0);
      // Forced-renewal grid epochs regenerate unconditionally; skip
      // them so the estimate measures the chain itself.
      if (epoch % fault::kBurstRenewalGrid != 0 && prev) {
        ++bad_total;
        bad_then_bad += cur ? 1 : 0;
      }
      prev = cur;
    }
  }
  ASSERT_GT(bad_total, 1000u);
  const double persist =
      static_cast<double>(bad_then_bad) / static_cast<double>(bad_total);
  EXPECT_NEAR(persist, 1.0 - plan.burst.p_off, 0.05);  // 0.7 vs pi = 0.25
  EXPECT_GT(persist, 2.0 * plan.burst.stationary_loss());
}

TEST(BurstLoss, EnginesAgreeBitwise) {
  Rng rng(23);
  const Graph g = gen::gnp_avg_degree(500, 6.0, rng);
  fault::FaultPlan plan;
  plan.burst = {.p_on = 0.05, .p_off = 0.25, .epoch_len = 4};
  plan.loss_prob = 0.01;  // compose with memoryless loss
  for (const MisEngine engine :
       {MisEngine::kSleeping, MisEngine::kLubyA, MisEngine::kLubyB,
        MisEngine::kGreedy}) {
    SCOPED_TRACE(analysis::engine_name(engine));
    const auto coro = analysis::run_mis(engine, g, 101, {.fault = &plan});
    const auto bulk_run = analysis::run_mis(
        engine, g, 101, {.exec = ExecEngine::kBulk, .fault = &plan});
    EXPECT_EQ(coro.outputs, bulk_run.outputs);
    EXPECT_EQ(coro.valid, bulk_run.valid);
    ExpectMetricsEqual(coro.metrics, bulk_run.metrics);
  }
}

// --- recovery downtime draws ----------------------------------------

TEST(Recovery, DowntimeIsGeometricWithRequestedMean) {
  fault::FaultPlan plan;
  plan.crash_prob = 0.01;
  plan.recover.mean_down = 8;
  const fault::FaultState fs(&plan, 3, 1 << 20);
  double sum = 0.0;
  std::uint64_t min_seen = ~0ull;
  const std::uint64_t samples = 20000;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const std::uint64_t d =
        fs.recover_downtime(static_cast<VertexId>(i % 4096), i / 4096, 0);
    sum += static_cast<double>(d);
    min_seen = std::min(min_seen, d);
  }
  EXPECT_EQ(min_seen, 1u);  // support starts at one round down
  EXPECT_NEAR(sum / static_cast<double>(samples), 8.0, 0.3);
}

// --- lane-independence of live-dynamics runs ------------------------

struct NamedPlan {
  std::string name;
  fault::FaultPlan plan;
};

std::vector<NamedPlan> live_plans() {
  std::vector<NamedPlan> plans(4);
  plans[0].name = "burst";
  plans[0].plan.burst = {.p_on = 0.05, .p_off = 0.2, .epoch_len = 4};
  plans[1].name = "live-churn";
  plans[1].plan.live_churn = {.leave_prob = 0.004, .join_prob = 0.2};
  plans[2].name = "recover";
  plans[2].plan.crash_prob = 0.003;
  plans[2].plan.crash_schedule = {{3, 5}, {11, 2}};
  plans[2].plan.recover.mean_down = 6;
  plans[3].name = "all";
  plans[3].plan.burst = {.p_on = 0.05, .p_off = 0.2, .epoch_len = 4};
  plans[3].plan.live_churn = {.leave_prob = 0.003, .join_prob = 0.25};
  plans[3].plan.crash_prob = 0.002;
  plans[3].plan.recover.mean_down = 6;
  return plans;
}

// Every bulk protocol under burst loss, live churn, crash recovery, and
// the three combined: lane counts 2, 3, and 8 must reproduce the serial
// run bit for bit, even with one-node chunks.
TEST(LiveFaultLaneMatrix, BulkRunsAreLaneCountIndependent) {
  Rng rng(19);
  const Graph g = gen::gnp_avg_degree(400, 8.0, rng);
  struct Entry {
    std::string name;
    std::unique_ptr<bulk::BulkProtocol> protocol;
  };
  std::vector<Entry> protocols;
  for (const MisEngine engine :
       {MisEngine::kSleeping, MisEngine::kLubyA, MisEngine::kLubyB,
        MisEngine::kGreedy}) {
    protocols.push_back({analysis::engine_name(engine),
                         bulk::bulk_mis_protocol(engine, nullptr)});
  }
  protocols.push_back({"israeli-itai",
                       std::make_unique<bulk::BulkIsraeliItai>()});
  protocols.push_back({"beeping", std::make_unique<bulk::BulkBeepingMis>()});

  for (const NamedPlan& np : live_plans()) {
    for (const Entry& entry : protocols) {
      bulk::BulkOptions base;
      base.max_message_bits = 0;
      base.parallel_cutoff = 1;  // shard even one-node frames
      base.fault = &np.plan;
      const bulk::BulkResult serial =
          bulk::run_bulk(g, 77, *entry.protocol, base);
      for (const unsigned lanes : {2u, 3u, 8u}) {
        util::ThreadPool pool(lanes);
        bulk::BulkOptions options = base;
        options.pool = &pool;
        const bulk::BulkResult run =
            bulk::run_bulk(g, 77, *entry.protocol, options);
        SCOPED_TRACE(entry.name + " / " + np.name + " / lanes " +
                     std::to_string(lanes));
        EXPECT_EQ(serial.outputs, run.outputs);
        EXPECT_EQ(serial.crashed, run.crashed);
        EXPECT_EQ(serial.departed, run.departed);
        EXPECT_TRUE(serial.virtual_makespan == run.virtual_makespan);
        ExpectMetricsEqual(serial.metrics, run.metrics);
      }
    }
  }
}

// --- end-to-end live-dynamics runs ----------------------------------

TEST(LiveChurn, LeaversRejoinAndFinalMisIsRepairedValid) {
  Rng rng(29);
  const Graph g = gen::gnp_avg_degree(500, 8.0, rng);
  fault::FaultPlan plan;
  plan.live_churn = {.leave_prob = 0.005, .join_prob = 0.2};
  const auto run = analysis::run_mis(MisEngine::kSleeping, g, 55,
                                     {.exec = ExecEngine::kBulk,
                                      .fault = &plan});
  EXPECT_GT(run.metrics.live_leaves, 0u);
  EXPECT_GT(run.metrics.live_rejoins, 0u);
  ASSERT_EQ(run.alive.size(), g.num_vertices());
  // run_mis repaired the survivors' outputs; validity refers to the
  // final alive subgraph.
  EXPECT_TRUE(run.valid);
  EXPECT_TRUE(fault::check_alive_mis(g, run.alive, run.outputs));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (run.alive[v]) {
      EXPECT_TRUE(run.outputs[v] == 0 || run.outputs[v] == 1) << v;
    }
  }
}

TEST(Recovery, CrashedNodesComeBackAndFinalMisIsValid) {
  Rng rng(37);
  const Graph g = gen::gnp_avg_degree(500, 8.0, rng);
  fault::FaultPlan plan;
  plan.crash_prob = 0.004;
  plan.recover.mean_down = 5;
  const auto run = analysis::run_mis(MisEngine::kSleeping, g, 91,
                                     {.exec = ExecEngine::kBulk,
                                      .fault = &plan});
  EXPECT_GT(run.metrics.recovered_nodes, 0u);
  EXPECT_TRUE(run.valid);
  EXPECT_TRUE(fault::check_alive_mis(g, run.alive, run.outputs));
  // The crashed flag means "currently down": every node recorded as
  // crashed in the final metrics is dead in the alive mask and vice
  // versa (no departures in this plan).
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(run.metrics.node[v].crashed, run.alive[v] == 0) << v;
  }
}

TEST(LiveChurn, AllThreeDynamicsComposeOnEveryBulkProtocol) {
  Rng rng(41);
  const Graph g = gen::gnp_avg_degree(400, 8.0, rng);
  fault::FaultPlan plan;
  plan.burst = {.p_on = 0.05, .p_off = 0.2, .epoch_len = 4};
  plan.live_churn = {.leave_prob = 0.003, .join_prob = 0.25};
  plan.crash_prob = 0.002;
  plan.recover.mean_down = 6;
  for (const MisEngine engine :
       {MisEngine::kSleeping, MisEngine::kLubyA, MisEngine::kLubyB,
        MisEngine::kGreedy}) {
    SCOPED_TRACE(analysis::engine_name(engine));
    const auto run = analysis::run_mis(engine, g, 17,
                                       {.exec = ExecEngine::kBulk,
                                        .fault = &plan});
    // Whatever damage the dynamics did, the final repair leaves a
    // valid MIS of the survivors.
    EXPECT_TRUE(run.valid);
    EXPECT_TRUE(fault::check_alive_mis(g, run.alive, run.outputs));
    EXPECT_GT(run.metrics.injected_losses, 0u);
  }
}

TEST(LiveChurn, CoroutineBackEndRejectsLiveDynamics) {
  const Graph g = gen::cycle(8);
  fault::FaultPlan churny;
  churny.live_churn = {.leave_prob = 0.1, .join_prob = 0.5};
  EXPECT_THROW(
      analysis::run_mis(MisEngine::kSleeping, g, 1, {.fault = &churny}),
      std::invalid_argument);
  fault::FaultPlan recovering;
  recovering.crash_prob = 0.1;
  recovering.recover.mean_down = 4;
  EXPECT_THROW(
      analysis::run_mis(MisEngine::kSleeping, g, 1, {.fault = &recovering}),
      std::invalid_argument);
  // Burst loss needs no membership edits; the coroutine runs it.
  fault::FaultPlan bursty;
  bursty.burst = {.p_on = 0.1, .p_off = 0.3, .epoch_len = 4};
  EXPECT_NO_THROW(
      analysis::run_mis(MisEngine::kSleeping, g, 1, {.fault = &bursty}));
}

}  // namespace
}  // namespace slumber
