// Tests for k-ranks (Definition 1) and the lexicographically-first MIS.
#include <gtest/gtest.h>

#include "core/rank.h"
#include "graph/generators.h"

namespace slumber::core {
namespace {

std::vector<std::uint8_t> bits_of(std::initializer_list<int> high_to_low) {
  // Convenience: specify X_K..X_1; returns indexed vector (index 0 unused).
  std::vector<std::uint8_t> out;
  out.push_back(0);
  for (auto it = std::rbegin(high_to_low); it != std::rend(high_to_low); ++it) {
    out.push_back(static_cast<std::uint8_t>(*it));
  }
  return out;
}

TEST(RankTest, CompareIsLexicographicFromHighBit) {
  const auto a = bits_of({1, 0, 1});  // X_3=1 X_2=0 X_1=1
  const auto b = bits_of({1, 1, 0});
  EXPECT_EQ(compare_k_rank(a, b, 3), -1);  // differs at X_2
  EXPECT_EQ(compare_k_rank(b, a, 3), 1);
  EXPECT_EQ(compare_k_rank(a, a, 3), 0);
}

TEST(RankTest, LowerKIgnoresHighBits) {
  const auto a = bits_of({1, 0, 1});
  const auto b = bits_of({0, 0, 1});
  // r_3 differs (X_3), but r_2 = (X_2, X_1) is equal.
  EXPECT_EQ(compare_k_rank(a, b, 3), 1);
  EXPECT_EQ(compare_k_rank(a, b, 2), 0);
  EXPECT_EQ(compare_k_rank(a, b, 1), 0);
}

TEST(RankTest, SentinelNeverDiscriminates) {
  // k = 0 rank is just the sentinel: always equal.
  const auto a = bits_of({1, 1, 1});
  const auto b = bits_of({0, 0, 0});
  EXPECT_EQ(compare_k_rank(a, b, 0), 0);
}

TEST(RankTest, GreedyOrderSortsByDecreasingRank) {
  CoinBits bits = {bits_of({0, 1}), bits_of({1, 0}), bits_of({1, 1}),
                   bits_of({0, 0})};
  const auto order = greedy_order_from_bits(bits, 2);
  // Decreasing: 11 (v2) > 10 (v1) > 01 (v0) > 00 (v3).
  const std::vector<VertexId> expected = {2, 1, 0, 3};
  EXPECT_EQ(order, expected);
}

TEST(RankTest, GreedyOrderTieBreaksById) {
  CoinBits bits = {bits_of({1}), bits_of({1}), bits_of({0})};
  const auto order = greedy_order_from_bits(bits, 1);
  const std::vector<VertexId> expected = {0, 1, 2};
  EXPECT_EQ(order, expected);
}

TEST(RankTest, BaseRankRefinesOrder) {
  CoinBits bits = {bits_of({1}), bits_of({1}), bits_of({1})};
  const std::vector<std::uint64_t> base_rank = {5, 9, 7};
  const auto order = greedy_order_from_bits_and_base(bits, 1, base_rank);
  const std::vector<VertexId> expected = {1, 2, 0};  // by decreasing rank
  EXPECT_EQ(order, expected);
}

TEST(RankTest, LexFirstMisOnPathDependsOnOrder) {
  const Graph g = gen::path(4);  // 0-1-2-3
  const std::vector<VertexId> order_a = {0, 1, 2, 3};
  const auto mis_a = lex_first_mis(g, order_a);
  EXPECT_EQ(mis_a, (std::vector<std::uint8_t>{1, 0, 1, 0}));
  const std::vector<VertexId> order_b = {1, 0, 2, 3};
  const auto mis_b = lex_first_mis(g, order_b);
  EXPECT_EQ(mis_b, (std::vector<std::uint8_t>{0, 1, 0, 1}));
}

TEST(RankTest, LexFirstMisIsAlwaysMaximalIndependent) {
  Rng rng(31);
  const Graph g = gen::gnp(60, 0.1, rng);
  std::vector<VertexId> order(60);
  for (VertexId v = 0; v < 60; ++v) order[v] = v;
  rng.shuffle(order);
  const auto mis = lex_first_mis(g, order);
  for (const Edge& e : g.edges()) {
    EXPECT_FALSE(mis[e.u] && mis[e.v]);
  }
  for (VertexId v = 0; v < 60; ++v) {
    if (mis[v]) continue;
    bool dominated = false;
    for (VertexId u : g.neighbors(v)) dominated = dominated || mis[u];
    EXPECT_TRUE(dominated) << v;
  }
}

}  // namespace
}  // namespace slumber::core
