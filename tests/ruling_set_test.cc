// Tests for (k+1, k)-ruling sets via MIS on graph powers.
#include <gtest/gtest.h>

#include <tuple>

#include "algos/ruling_set.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace slumber::algos {
namespace {

TEST(RulingSetTest, KOneIsPlainMis) {
  Rng rng(17);
  Graph g = gen::gnp(60, 0.1, rng);
  auto result = ruling_set_via_mis(g, 1, 5, MisEngine::kGreedy);
  auto check = check_ruling_set(g, result.rulers, 2, 1);
  EXPECT_TRUE(check.ok()) << "independent=" << check.independent
                          << " dominating=" << check.dominating;
}

TEST(RulingSetTest, RejectsKZero) {
  Graph g = gen::cycle(5);
  EXPECT_THROW(ruling_set_via_mis(g, 0, 1, MisEngine::kGreedy),
               std::invalid_argument);
}

TEST(RulingSetTest, PathRulersSpreadOut) {
  Graph g = gen::path(30);
  auto result = ruling_set_via_mis(g, 3, 11, MisEngine::kGreedy);
  auto check = check_ruling_set(g, result.rulers, 4, 3);
  EXPECT_TRUE(check.ok());
  // On a path, (4,3)-ruling set members are >= 4 apart, so at most
  // ceil(30/4) of them; and domination needs at least ceil(30/7).
  EXPECT_LE(result.rulers.size(), 8u);
  EXPECT_GE(result.rulers.size(), 5u);
}

TEST(RulingSetTest, CompleteGraphSingleton) {
  Graph g = gen::complete(12);
  auto result = ruling_set_via_mis(g, 2, 3, MisEngine::kGreedy);
  EXPECT_EQ(result.rulers.size(), 1u);
  EXPECT_TRUE(check_ruling_set(g, result.rulers, 3, 2).ok());
}

TEST(RulingSetTest, CheckerCatchesViolations) {
  Graph g = gen::path(6);  // 0-1-2-3-4-5
  // Adjacent pair violates alpha=2 independence.
  EXPECT_FALSE(check_ruling_set(g, {0, 1}, 2, 5).independent);
  // Distance-2 pair fails alpha=3 but passes alpha=2.
  EXPECT_FALSE(check_ruling_set(g, {0, 2}, 3, 5).independent);
  EXPECT_TRUE(check_ruling_set(g, {0, 2}, 2, 5).independent);
  // {0} does not dominate vertex 5 within beta=2.
  EXPECT_FALSE(check_ruling_set(g, {0}, 2, 2).dominating);
  EXPECT_TRUE(check_ruling_set(g, {0}, 2, 5).dominating);
  // Empty set never dominates a non-empty graph.
  EXPECT_FALSE(check_ruling_set(g, {}, 2, 100).dominating);
}

struct RulingSetSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint64_t, MisEngine>> {};

TEST_P(RulingSetSweep, ValidOnRandomGraphs) {
  const auto [k, seed, engine] = GetParam();
  Rng rng(seed);
  Graph g = gen::gnp_avg_degree(80, 5.0, rng);
  auto result = ruling_set_via_mis(g, k, seed + 100, engine);
  auto check = check_ruling_set(g, result.rulers, k + 1, k);
  EXPECT_TRUE(check.ok()) << "k=" << k << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RulingSetSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(1u, 2u, 3u),
                       ::testing::Values(MisEngine::kGreedy,
                                         MisEngine::kSleeping,
                                         MisEngine::kLubyA)));

}  // namespace
}  // namespace slumber::algos
