// Guards for the 32-bit arithmetic hazards that appear at the bulk
// engine's 10M+-node scale: vertex-count products that would silently
// wrap VertexId, edge counts that would overflow EdgeId, and the CSR
// offset width (2|E| adjacency slots exceed 2^32 well before |E|
// overflows EdgeId, so offsets must be 64-bit on every platform).
#include <cstdint>
#include <stdexcept>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"

namespace slumber {
namespace {

static_assert(sizeof(CsrOffset) == 8, "CSR offsets must be 64-bit");
static_assert(sizeof(Graph{}.adjacency_offset(0)) == 8,
              "adjacency_offset must expose the 64-bit offset type");

TEST(OverflowGuards, CheckedVertexCountPassesAndThrows) {
  EXPECT_EQ(checked_vertex_count(0, "t"), 0u);
  EXPECT_EQ(checked_vertex_count(10'000'000, "t"), 10'000'000u);
  EXPECT_EQ(checked_vertex_count(std::uint64_t{0xFFFFFFFF}, "t"), 0xFFFFFFFFu);
  EXPECT_THROW(checked_vertex_count(std::uint64_t{1} << 32, "t"),
               std::overflow_error);
  EXPECT_THROW(checked_vertex_count(~std::uint64_t{0}, "t"),
               std::overflow_error);
}

TEST(OverflowGuards, CheckedEdgeCountPassesAndThrows) {
  EXPECT_EQ(checked_edge_count(40'000'000, "t"), 40'000'000u);
  EXPECT_THROW(checked_edge_count(std::uint64_t{1} << 33, "t"),
               std::overflow_error);
}

TEST(OverflowGuards, GridProductWouldWrapToZero) {
  // 2^16 x 2^16 = 2^32 wraps to exactly 0 in 32-bit arithmetic; the
  // guard must throw before any edge buffer is populated.
  EXPECT_THROW(gen::grid(1u << 16, 1u << 16), std::overflow_error);
  EXPECT_THROW(gen::torus(1u << 16, 1u << 16), std::overflow_error);
}

TEST(OverflowGuards, CompleteGraphEdgeCountGuard) {
  // K_131072 has ~8.6e9 edges > 2^32: must throw before allocating.
  EXPECT_THROW(gen::complete(1u << 17), std::overflow_error);
}

TEST(OverflowGuards, CompleteBipartiteGuards) {
  EXPECT_THROW(gen::complete_bipartite(1u << 17, 1u << 17),
               std::overflow_error);
  EXPECT_THROW(gen::complete_bipartite(0xFFFFFFFFu, 2), std::overflow_error);
}

TEST(OverflowGuards, CaterpillarVertexCountGuard) {
  EXPECT_THROW(gen::caterpillar(1u << 28, 1u << 5), std::overflow_error);
}

TEST(OverflowGuards, HypercubeDimensionGuard) {
  EXPECT_THROW(gen::hypercube(32), std::overflow_error);
  EXPECT_THROW(gen::hypercube(63), std::overflow_error);
}

TEST(OverflowGuards, GuardedGeneratorsStillWorkAtNormalSizes) {
  EXPECT_EQ(gen::grid(50, 40).num_vertices(), 2000u);
  EXPECT_EQ(gen::complete(64).num_edges(), 64u * 63 / 2);
  EXPECT_EQ(gen::complete_bipartite(30, 20).num_edges(), 600u);
  EXPECT_EQ(gen::caterpillar(10, 3).num_vertices(), 40u);
  EXPECT_EQ(gen::hypercube(5).num_vertices(), 32u);
}

TEST(GraphBuilder, AddEdgesSpanMatchesAddEdge) {
  const std::vector<Edge> edges = {{3, 1}, {0, 2}, {2, 3}, {1, 0}, {0, 2}};
  GraphBuilder chunked(4);
  chunked.reserve(edges.size());
  chunked.add_edges(std::span<const Edge>(edges).subspan(0, 2));
  chunked.add_edges(std::span<const Edge>(edges).subspan(2));
  GraphBuilder single(4);
  for (const Edge& e : edges) single.add_edge(e.u, e.v);
  const Graph a = std::move(chunked).build();
  const Graph b = std::move(single).build();
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  // Orientation-normalized and deduplicated like add_edge.
  EXPECT_EQ(a.num_edges(), 4u);
}

TEST(GraphBuilder, ReserveAheadAvoidsReallocation) {
  GraphBuilder builder(1000);
  builder.reserve(999);
  for (VertexId v = 0; v + 1 < 1000; ++v) builder.add_edge(v, v + 1);
  EXPECT_EQ(builder.num_added_edges(), 999u);
  const Graph g = std::move(builder).build();
  EXPECT_EQ(g.num_edges(), 999u);
  EXPECT_EQ(g.degree_sum(), 2u * 999);
}

}  // namespace
}  // namespace slumber
