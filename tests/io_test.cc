// Tests for graph serialization (edge list, DIMACS, DOT).
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"

namespace slumber::io {
namespace {

TEST(IoTest, EdgeListRoundTrip) {
  Rng rng(11);
  const Graph g = gen::gnp(40, 0.2, rng);
  const Graph back = from_string(to_string(g));
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(IoTest, EdgeListEmptyGraph) {
  const Graph g = gen::empty(5);
  const Graph back = from_string(to_string(g));
  EXPECT_EQ(back.num_vertices(), 5u);
  EXPECT_EQ(back.num_edges(), 0u);
}

TEST(IoTest, EdgeListRejectsMissingHeader) {
  std::istringstream in("");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(IoTest, EdgeListRejectsTruncated) {
  std::istringstream in("3 2\n0 1\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(IoTest, DimacsRoundTrip) {
  Rng rng(13);
  const Graph g = gen::gnp(30, 0.3, rng);
  std::ostringstream out;
  write_dimacs(out, g);
  std::istringstream in(out.str());
  const Graph back = read_dimacs(in);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(IoTest, DimacsAllowsComments) {
  std::istringstream in("c a comment\np edge 3 1\nc another\ne 1 2\n");
  const Graph g = read_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(IoTest, DimacsRejectsBadHeader) {
  std::istringstream in("p graph 3 1\ne 1 2\n");
  EXPECT_THROW(read_dimacs(in), std::runtime_error);
}

TEST(IoTest, DimacsRejectsEdgeBeforeHeader) {
  std::istringstream in("e 1 2\n");
  EXPECT_THROW(read_dimacs(in), std::runtime_error);
}

TEST(IoTest, DimacsRejectsZeroVertex) {
  std::istringstream in("p edge 3 1\ne 0 2\n");
  EXPECT_THROW(read_dimacs(in), std::runtime_error);
}

TEST(IoTest, DotContainsHighlights) {
  const Graph g = gen::path(3);
  const std::vector<VertexId> mis = {0, 2};
  std::ostringstream out;
  write_dot(out, g, mis);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
  EXPECT_NE(dot.find("0 [style=filled"), std::string::npos);
  EXPECT_NE(dot.find("2 [style=filled"), std::string::npos);
  EXPECT_EQ(dot.find("1 [style=filled"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
}

}  // namespace
}  // namespace slumber::io
