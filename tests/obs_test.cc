// Telemetry layer suite (obs/obs.h): the out-of-band contract.
//
// Pins the three properties the observability tentpole rests on:
//   1. determinism — a fully instrumented run (JSONL + trace sinks
//      active, spans/counters firing) produces bitwise-identical trial
//      output to an uninstrumented run, at every lane count, on both
//      execution back ends, fault-free and under crash+loss+churn;
//   2. schema — the JSONL stream is manifest-first/footer-last
//      slumber-obs-v1 and the Chrome trace file carries traceEvents
//      plus the Perfetto process metadata (tools/obs_check.py does the
//      deep validation in CI; these are the structural anchors);
//   3. lifecycle — a default-constructed Options yields an inactive
//      session, and a second session while one is live stays inactive
//      instead of corrupting the installed recorder.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "bulk/baselines.h"
#include "bulk/engine.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "metrics_test_util.h"
#include "obs/obs.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace slumber {
namespace {

using analysis::ExecEngine;
using analysis::MisEngine;

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

void ExpectRunsEqual(const analysis::MisRun& a, const analysis::MisRun& b) {
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.alive, b.alive);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.mis_size, b.mis_size);
  ExpectMetricsEqual(a.metrics, b.metrics);
}

struct Scenario {
  std::string name;
  fault::FaultPlan plan;
  bool bulk_only = false;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> list(3);
  list[0].name = "plain";
  list[1].name = "crash+loss";
  list[1].plan.crash_schedule = {{3, 5}, {11, 2}};
  list[1].plan.crash_prob = 0.002;
  list[1].plan.loss_prob = 0.05;
  list[2].name = "crash+loss+churn";
  list[2].plan.crash_prob = 0.002;
  list[2].plan.loss_prob = 0.02;
  list[2].plan.churn.leave_prob = 0.2;
  list[2].plan.churn.join_prob = 0.5;
  list[2].plan.churn.batches = 2;
  list[2].bulk_only = true;  // churn repair needs the bulk alive mask
  return list;
}

analysis::MisRun run_one(const Graph& g, ExecEngine exec, unsigned lanes,
                         const fault::FaultPlan* plan) {
  util::ThreadPool pool(lanes);
  return analysis::run_mis(MisEngine::kSleeping, g, 101,
                           {.exec = exec, .pool = &pool, .fault = plan});
}

// --- 1. determinism: obs on vs obs off ------------------------------

// The full matrix: both back ends, fault-free and faulty (churn on the
// bulk side), lane counts 1/2/3/8 — all bitwise identical whether the
// recorder is installed or not. This is the lint exemption's teeth:
// src/obs/ may read the wall clock precisely because this test pins
// that nothing downstream of a clock read reaches a decided output.
TEST(ObsDeterminism, TrialOutputBitwiseIdenticalObsOnVsOff) {
  Rng rng(31);
  const Graph g = gen::gnp_avg_degree(400, 8.0, rng);
  int session_id = 0;
  for (const ExecEngine exec : {ExecEngine::kBulk, ExecEngine::kCoroutine}) {
    for (const Scenario& sc : scenarios()) {
      if (sc.bulk_only && exec != ExecEngine::kBulk) continue;
      const fault::FaultPlan* plan = sc.plan.empty() ? nullptr : &sc.plan;
      for (const unsigned lanes : {1u, 2u, 3u, 8u}) {
        SCOPED_TRACE(analysis::exec_engine_name(exec) + " / " + sc.name +
                     " / lanes " + std::to_string(lanes));
        const analysis::MisRun off = run_one(g, exec, lanes, plan);
        obs::Options options;
        options.jsonl_path = ::testing::TempDir() + "obs_det_" +
                             std::to_string(session_id) + ".jsonl";
        options.trace_path = ::testing::TempDir() + "obs_det_" +
                             std::to_string(session_id) + ".json";
        ++session_id;
        obs::Session session(options);
        ASSERT_TRUE(session.active());
        const analysis::MisRun on = run_one(g, exec, lanes, plan);
        ExpectRunsEqual(off, on);
      }
    }
  }
}

// Sharded engine scans with per-chunk spans firing on every frame
// (parallel_cutoff = 1): instrumented parallel runs must reproduce the
// uninstrumented serial run bit for bit. The "Parallel" name keeps
// this in the TSan sweep alongside the other pool suites.
TEST(ObsParallelScan, InstrumentedChunkSpansAreBitwiseNeutral) {
  Rng rng(37);
  const Graph g = gen::gnp_avg_degree(800, 8.0, rng);
  const auto protocol = bulk::bulk_mis_protocol(MisEngine::kSleeping, nullptr);
  bulk::BulkOptions base;
  base.max_message_bits = 0;
  base.parallel_cutoff = 1;  // span every scan, chunk every frame
  const bulk::BulkResult serial = bulk::run_bulk(g, 77, *protocol, base);
  for (const unsigned lanes : {2u, 3u, 8u}) {
    SCOPED_TRACE(lanes);
    obs::Options options;
    options.jsonl_path = ::testing::TempDir() + "obs_par_" +
                         std::to_string(lanes) + ".jsonl";
    obs::Session session(options);
    ASSERT_TRUE(session.active());
    util::ThreadPool pool(lanes);
    bulk::BulkOptions instrumented = base;
    instrumented.pool = &pool;
    const bulk::BulkResult run = bulk::run_bulk(g, 77, *protocol,
                                                instrumented);
    EXPECT_EQ(serial.outputs, run.outputs);
    EXPECT_EQ(serial.crashed, run.crashed);
    EXPECT_TRUE(serial.virtual_makespan == run.virtual_makespan);
    ExpectMetricsEqual(serial.metrics, run.metrics);
  }
}

// --- 2. export schema -----------------------------------------------

TEST(ObsExport, JsonlIsManifestFirstFooterLastWithInfoRoundtrip) {
  const std::string jsonl = ::testing::TempDir() + "obs_schema.jsonl";
  const std::string trace = ::testing::TempDir() + "obs_schema.json";
  {
    obs::Options options;
    options.jsonl_path = jsonl;
    options.trace_path = trace;
    obs::Session session(options);
    ASSERT_TRUE(session.active());
    session.set_info("tool", "obs_test");
    session.set_info("note", "schema \"anchor\"");  // exercises escaping
    Rng rng(41);
    const Graph g = gen::gnp_avg_degree(600, 8.0, rng);
    util::ThreadPool pool(2);
    const auto protocol =
        bulk::bulk_mis_protocol(MisEngine::kSleeping, nullptr);
    bulk::BulkOptions run_options;
    run_options.max_message_bits = 0;
    run_options.parallel_cutoff = 1;
    run_options.pool = &pool;
    bulk::run_bulk(g, 9, *protocol, run_options);
    obs::counter("test_counter", 1.5);
    obs::instant("test", "marker", 7);
  }  // session finalizes and writes both sinks here

  const std::vector<std::string> lines = read_lines(jsonl);
  ASSERT_GE(lines.size(), 4u);  // manifest + spans + counter + footer
  EXPECT_NE(lines.front().find("\"type\":\"manifest\""), std::string::npos);
  EXPECT_NE(lines.front().find("\"schema\":\"slumber-obs-v1\""),
            std::string::npos);
  EXPECT_NE(lines.front().find("\"tool\":\"obs_test\""), std::string::npos);
  EXPECT_NE(lines.front().find("schema \\\"anchor\\\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"type\":\"footer\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"peak_rss_kb\""), std::string::npos);
  bool saw_span = false;
  bool saw_counter = false;
  for (const std::string& line : lines) {
    if (line.find("\"type\":\"span\"") != std::string::npos) saw_span = true;
    if (line.find("\"name\":\"test_counter\"") != std::string::npos) {
      saw_counter = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);

  const std::string trace_text = read_all(trace);
  EXPECT_NE(trace_text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace_text.find("\"slumber-obs-v1\""), std::string::npos);
  EXPECT_NE(trace_text.find("\"ph\":\"X\""), std::string::npos);
}

// --- 3. lifecycle ---------------------------------------------------

TEST(ObsSession, EmptyOptionsStayInactiveAndApiIsInert) {
  EXPECT_FALSE(obs::enabled());
  obs::Session session{obs::Options{}};
  EXPECT_FALSE(session.active());
  EXPECT_FALSE(obs::enabled());
  // The whole API must be callable with no recorder installed.
  {
    obs::Span span("test", "noop", 1);
    obs::counter("noop", 0.0);
    obs::instant("test", "noop");
    obs::progress_phase("noop");
    obs::progress_round(1.0);
    obs::progress_frame();
  }
  EXPECT_GT(obs::peak_rss_kb(), 0u);  // /proc fallback works sessionless
}

TEST(ObsSession, SecondConcurrentSessionStaysInactive) {
  obs::Options options;
  options.jsonl_path = ::testing::TempDir() + "obs_first.jsonl";
  obs::Session first(options);
  ASSERT_TRUE(first.active());
  obs::Options second_options;
  second_options.jsonl_path = ::testing::TempDir() + "obs_second.jsonl";
  obs::Session second(second_options);
  EXPECT_FALSE(second.active());
  EXPECT_TRUE(obs::enabled());
}

}  // namespace
}  // namespace slumber
