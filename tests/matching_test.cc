// Tests for maximal matching via MIS on the line graph.
#include <gtest/gtest.h>

#include "algos/matching.h"
#include "graph/generators.h"

namespace slumber::algos {
namespace {

TEST(MatchingTest, ValidOnPath) {
  const Graph g = gen::path(10);
  const auto result = maximal_matching_via_mis(g, 3, MisEngine::kSleeping);
  EXPECT_TRUE(is_maximal_matching(g, result.matched_edges));
  EXPECT_GE(result.matched_edges.size(), 3u);  // >= ceil((n-1)/3) for paths
}

TEST(MatchingTest, AllEnginesProduceMaximalMatchings) {
  for (MisEngine engine :
       {MisEngine::kSleeping, MisEngine::kFastSleeping, MisEngine::kLubyA,
        MisEngine::kLubyB, MisEngine::kGreedy, MisEngine::kGhaffari}) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      Rng rng(seed);
      const Graph g = gen::gnp_avg_degree(40, 4.0, rng);
      const auto result = maximal_matching_via_mis(g, seed * 11, engine);
      EXPECT_TRUE(is_maximal_matching(g, result.matched_edges))
          << static_cast<int>(engine) << " seed " << seed;
    }
  }
}

TEST(MatchingTest, CompleteGraphPerfectMatching) {
  const Graph g = gen::complete(8);
  const auto result = maximal_matching_via_mis(g, 5, MisEngine::kGreedy);
  // Maximal matchings of K_8 are perfect (4 edges): any 3-edge matching
  // leaves two uncovered vertices that are adjacent.
  EXPECT_EQ(result.matched_edges.size(), 4u);
}

TEST(MatchingTest, StarMatchesExactlyOneEdge) {
  const Graph g = gen::star(9);
  const auto result = maximal_matching_via_mis(g, 2, MisEngine::kLubyA);
  EXPECT_EQ(result.matched_edges.size(), 1u);
}

TEST(MatchingTest, EmptyGraphEmptyMatching) {
  const Graph g = gen::empty(5);
  const auto result = maximal_matching_via_mis(g, 1, MisEngine::kSleeping);
  EXPECT_TRUE(result.matched_edges.empty());
  EXPECT_TRUE(is_maximal_matching(g, result.matched_edges));
}

TEST(MatchingTest, VerifierRejectsNonMatching) {
  const Graph g = gen::path(4);  // edges: {0,1}=0, {1,2}=1, {2,3}=2
  EXPECT_FALSE(is_maximal_matching(g, {0, 1}));  // share vertex 1
}

TEST(MatchingTest, VerifierRejectsNonMaximal) {
  const Graph g = gen::path(5);  // edges 0..3
  EXPECT_FALSE(is_maximal_matching(g, {0}));  // edge {3,4} still free
  EXPECT_TRUE(is_maximal_matching(g, {0, 2}));
}

TEST(MatchingTest, LineGraphMetricsPlausible) {
  Rng rng(4);
  const Graph g = gen::gnp_avg_degree(30, 4.0, rng);
  const auto result = maximal_matching_via_mis(g, 8, MisEngine::kFastSleeping);
  EXPECT_EQ(result.line_graph_metrics.node.size(), g.num_edges());
  EXPECT_TRUE(is_maximal_matching(g, result.matched_edges));
}

}  // namespace
}  // namespace slumber::algos
