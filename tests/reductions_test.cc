// Cross-module consistency of the problem-family reductions
// (Barenboim-Tzur family, paper Section 1.5): maximal matching and
// edge coloring through the line graph, ruling sets through graph
// powers. Checks the combinatorial bounds that tie the reduced
// solution back to the original graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <tuple>

#include "algos/edge_coloring.h"
#include "algos/matching.h"
#include "algos/ruling_set.h"
#include "analysis/verify.h"
#include "graph/generators.h"
#include "graph/transforms.h"
#include "util/rng.h"

namespace slumber::algos {
namespace {

// |M| >= m / (2*Delta - 1): each matched edge can dominate at most
// 2*Delta - 2 other edges plus itself in the line graph.
TEST(ReductionBoundsTest, MatchingSizeLowerBound) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const Graph g = gen::gnp_avg_degree(80, 6.0, rng);
    if (g.num_edges() == 0) continue;
    const auto result =
        maximal_matching_via_mis(g, seed * 3 + 1, MisEngine::kSleeping);
    ASSERT_TRUE(is_maximal_matching(g, result.matched_edges));
    const double bound = static_cast<double>(g.num_edges()) /
                         (2.0 * g.max_degree() - 1.0);
    EXPECT_GE(static_cast<double>(result.matched_edges.size()) + 1e-9, bound);
    // And trivially at most floor(n/2) edges.
    EXPECT_LE(result.matched_edges.size(), g.num_vertices() / 2);
  }
}

// A perfect structure check: on K_{a,a} a maximal matching is perfect.
TEST(ReductionBoundsTest, CompleteBipartiteMatchingIsPerfect) {
  const Graph g = gen::complete_bipartite(6, 6);
  const auto result = maximal_matching_via_mis(g, 9, MisEngine::kGreedy);
  ASSERT_TRUE(is_maximal_matching(g, result.matched_edges));
  EXPECT_EQ(result.matched_edges.size(), 6u);
}

// Edge coloring induces a partition into matchings: each color class is
// itself a (not necessarily maximal) matching.
TEST(ReductionBoundsTest, ColorClassesAreMatchings) {
  Rng rng(4);
  const Graph g = gen::gnp_avg_degree(60, 6.0, rng);
  const auto result = edge_coloring_via_line_graph(g, 21);
  ASSERT_TRUE(check_edge_coloring(g, result.colors));
  const std::int64_t max_color =
      result.colors.empty()
          ? -1
          : *std::max_element(result.colors.begin(), result.colors.end());
  for (std::int64_t c = 0; c <= max_color; ++c) {
    std::vector<EdgeId> cls;
    for (EdgeId e = 0; e < result.colors.size(); ++e) {
      if (result.colors[e] == c) cls.push_back(e);
    }
    // A matching: no two class edges share an endpoint.
    std::vector<std::uint8_t> covered(g.num_vertices(), 0);
    for (EdgeId e : cls) {
      const Edge edge = g.edges()[e];
      EXPECT_FALSE(covered[edge.u] || covered[edge.v])
          << "color " << c << " is not a matching";
      covered[edge.u] = 1;
      covered[edge.v] = 1;
    }
  }
  // Color count lower bound: at least Delta colors are needed (Vizing
  // lower side), since Delta edges meet at a max-degree vertex.
  EXPECT_GE(result.colors_used, g.max_degree());
}

// Ruling-set hierarchy: the (k+1, k)-ruling set from G^k is also a
// valid (j+1, k)-ruling set for every j <= k (weaker independence),
// and never larger than the MIS from k = 1 on the same seed.
TEST(ReductionBoundsTest, RulingSetHierarchy) {
  Rng rng(8);
  const Graph g = gen::gnp_avg_degree(70, 5.0, rng);
  const auto mis = ruling_set_via_mis(g, 1, 33, MisEngine::kGreedy);
  const auto rs2 = ruling_set_via_mis(g, 2, 33, MisEngine::kGreedy);
  const auto rs3 = ruling_set_via_mis(g, 3, 33, MisEngine::kGreedy);
  for (std::uint32_t j = 1; j <= 2; ++j) {
    EXPECT_TRUE(check_ruling_set(g, rs2.rulers, j + 1, 2).ok());
  }
  for (std::uint32_t j = 1; j <= 3; ++j) {
    EXPECT_TRUE(check_ruling_set(g, rs3.rulers, j + 1, 3).ok());
  }
  EXPECT_LE(rs2.rulers.size(), mis.rulers.size());
  EXPECT_LE(rs3.rulers.size(), rs2.rulers.size());
}

// Matching on the subdivision graph: every edge of S(G) joins an
// original vertex to a subdivision vertex, so each matched pair must
// straddle the bipartition. Checks the reduction on a graph with
// guaranteed structure.
TEST(ReductionBoundsTest, SubdivisionMatchingPairsAcrossBipartition) {
  const Graph base = gen::complete(6);
  const Graph s = subdivision(base);
  const auto result = maximal_matching_via_mis(s, 77, MisEngine::kLubyA);
  ASSERT_TRUE(is_maximal_matching(s, result.matched_edges));
  for (EdgeId e : result.matched_edges) {
    const Edge edge = s.edges()[e];
    const bool u_is_original = edge.u < base.num_vertices();
    const bool v_is_original = edge.v < base.num_vertices();
    EXPECT_NE(u_is_original, v_is_original);
  }
}

struct ReductionEngineSweep : public ::testing::TestWithParam<MisEngine> {};

TEST_P(ReductionEngineSweep, MatchingValidOnHardShapes) {
  const MisEngine engine = GetParam();
  const std::vector<Graph> shapes = {
      gen::star(30),                 // all edges pairwise adjacent
      gen::complete(9),              // line graph is dense
      gen::path(2),                  // single edge
      gen::cycle(5),                 // odd cycle
      mycielski(gen::complete(2)),   // C_5 again, via transform
  };
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const auto result =
        maximal_matching_via_mis(shapes[i], 100 + i, engine);
    EXPECT_TRUE(is_maximal_matching(shapes[i], result.matched_edges))
        << "shape " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ReductionEngineSweep,
    ::testing::Values(MisEngine::kSleeping, MisEngine::kFastSleeping,
                      MisEngine::kLubyA, MisEngine::kLubyB,
                      MisEngine::kGreedy, MisEngine::kGhaffari));

}  // namespace
}  // namespace slumber::algos
