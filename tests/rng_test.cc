// Tests for the deterministic RNG utilities.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"

namespace slumber {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t x = rng.range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo = saw_lo || x == -3;
    saw_hi = saw_hi || x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

TEST(RngTest, CoinIsFair) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10'000; ++i) heads += rng.coin() ? 1 : 0;
  EXPECT_NEAR(heads / 10'000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(21);
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += rng.bernoulli(0.2) ? 1 : 0;
  EXPECT_NEAR(hits / 10'000.0, 0.2, 0.02);
}

TEST(RngTest, SplitStreamsIndependentAndStable) {
  Rng parent(42);
  Rng child_a = parent.split(0);
  Rng child_b = parent.split(1);
  Rng child_a2 = parent.split(0);
  EXPECT_EQ(child_a.next(), child_a2.next());
  EXPECT_NE(child_a.next(), child_b.next());
  // Splitting does not advance the parent.
  Rng parent2(42);
  parent2.split(5);
  Rng parent3(42);
  EXPECT_EQ(parent2.next(), parent3.next());
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(8);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(8);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(RngTest, WorksWithStdDistributions) {
  Rng rng(33);
  // UniformRandomBitGenerator conformance compile check + sanity.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  std::uint64_t x = rng();
  (void)x;
}

}  // namespace
}  // namespace slumber
