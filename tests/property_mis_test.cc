// Parameterized property suite: every MIS engine must produce a valid
// MIS on every (family, size, seed) combination, respect the CONGEST
// budget, and satisfy basic metric sanity invariants. This is the
// broad-coverage sweep; per-engine behavior lives in the dedicated
// test files.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/experiment.h"
#include "analysis/verify.h"
#include "graph/generators.h"
#include "graph/properties.h"

namespace slumber::analysis {
namespace {

using Param = std::tuple<MisEngine, gen::Family, VertexId>;

class MisPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(MisPropertyTest, ValidMisAndSaneMetrics) {
  const auto [engine, family, n] = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = gen::make(family, n, seed);
    const MisRun run = run_mis(engine, g, seed * 977 + 11);
    ASSERT_TRUE(run.valid) << engine_name(engine) << " on "
                           << gen::family_name(family) << " n=" << n
                           << " seed=" << seed << ": "
                           << check_mis(g, run.outputs).describe();

    // Metric invariants.
    EXPECT_EQ(run.metrics.congest_violations, 0u);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto& m = run.metrics.node[v];
      EXPECT_LE(m.awake_rounds, m.finish_round + 1);
      EXPECT_LE(m.decided_round, m.finish_round);
      EXPECT_LE(m.awake_at_decision, m.awake_rounds);
    }
    EXPECT_EQ(run.worst_rounds, run.metrics.makespan);

    // The MIS size is sandwiched by independence number bounds:
    // >= n / (maxdeg + 1) and <= n.
    const double lower = static_cast<double>(g.num_vertices()) /
                         (static_cast<double>(g.max_degree()) + 1.0);
    EXPECT_GE(static_cast<double>(run.mis_size) + 1e-9, lower);
    EXPECT_LE(run.mis_size, g.num_vertices());
  }
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [engine, family, n] = info.param;
  std::string name = engine_name(engine) + "_" + gen::family_name(family) +
                     "_" + std::to_string(n);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MisPropertyTest,
    ::testing::Combine(
        ::testing::Values(MisEngine::kSleeping, MisEngine::kFastSleeping,
                          MisEngine::kLubyA, MisEngine::kLubyB,
                          MisEngine::kGreedy, MisEngine::kGhaffari),
        ::testing::Values(gen::Family::kCycle, gen::Family::kStar,
                          gen::Family::kGrid, gen::Family::kLollipop,
                          gen::Family::kGnpSparse, gen::Family::kGnpDense,
                          gen::Family::kRandomTree,
                          gen::Family::kBarabasiAlbert,
                          gen::Family::kUnitDisk,
                          gen::Family::kCliqueChain),
        ::testing::Values(VertexId{17}, VertexId{64})),
    param_name);

// Edge-case sweep: tiny graphs where off-by-one bugs live.
class MisTinyGraphTest : public ::testing::TestWithParam<MisEngine> {};

TEST_P(MisTinyGraphTest, TinyGraphs) {
  const MisEngine engine = GetParam();
  const std::vector<Graph> tiny = {
      gen::empty(0),  gen::empty(1),  gen::empty(2),  gen::path(2),
      gen::path(3),   gen::cycle(3),  gen::complete(4), gen::star(4),
  };
  // Algorithm 1's w.h.p. guarantee is vacuous at n <= 4 (K = 3 log2 n
  // leaves a ~2^-K chance of a base-case collision), so it gets a
  // Monte-Carlo allowance; everything else must always succeed.
  const bool monte_carlo_tiny = engine == MisEngine::kSleeping;
  int failures = 0;
  int runs = 0;
  for (std::size_t i = 0; i < tiny.size(); ++i) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const MisRun run = run_mis(engine, tiny[i], seed);
      ++runs;
      if (monte_carlo_tiny) {
        failures += run.valid ? 0 : 1;
      } else {
        EXPECT_TRUE(run.valid)
            << engine_name(engine) << " tiny graph " << i << " ("
            << tiny[i].summary() << ") seed " << seed;
      }
    }
  }
  if (monte_carlo_tiny) {
    // 1/8 per 2-node collision opportunity; comfortably below a third.
    EXPECT_LE(failures, runs / 3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, MisTinyGraphTest,
    ::testing::Values(MisEngine::kSleeping, MisEngine::kFastSleeping,
                      MisEngine::kLubyA, MisEngine::kLubyB, MisEngine::kGreedy,
                      MisEngine::kGhaffari),
    [](const ::testing::TestParamInfo<MisEngine>& param_info) {
      std::string name = engine_name(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Cross-engine agreement: all engines produce *some* valid MIS of the
// same graph; sizes can differ but all lie in the valid range and the
// sleeping engines agree with their lex-first characterization (tested
// elsewhere). Here: same graph, all engines, one table of sizes.
TEST(MisCrossEngineTest, AllEnginesSolveSameGraph) {
  Rng rng(17);
  const Graph g = gen::gnp_avg_degree(150, 10.0, rng);
  for (const MisEngine engine : all_engines()) {
    const MisRun run = run_mis(engine, g, 31);
    EXPECT_TRUE(run.valid) << engine_name(engine);
    EXPECT_GT(run.mis_size, 10u) << engine_name(engine);
    EXPECT_LT(run.mis_size, 100u) << engine_name(engine);
  }
}

}  // namespace
}  // namespace slumber::analysis
