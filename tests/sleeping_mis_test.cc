// Tests for Algorithm 1 (SleepingMIS): correctness (Lemma 1), the
// synchronization invariant (Condition 1), the lexicographically-first
// equivalence (Corollary 1), and the schedule (Lemma 10).
#include <gtest/gtest.h>

#include "analysis/verify.h"
#include "core/rank.h"
#include "core/schedule.h"
#include "core/sleeping_mis.h"
#include "graph/generators.h"
#include "sim/network.h"

namespace slumber::core {
namespace {

sim::RunResult run_on(const Graph& g, std::uint64_t seed,
                      RecursionTrace* trace = nullptr,
                      SleepingMisOptions options = {}) {
  sim::NetworkOptions net_options;
  net_options.max_message_bits = sim::congest_bits_for(g.num_vertices());
  return sim::run_protocol(g, seed, sleeping_mis(options, trace), net_options);
}

TEST(SleepingMisTest, SingleNodeJoinsImmediately) {
  const Graph g = gen::empty(1);
  auto [metrics, outputs] = run_on(g, 1);
  EXPECT_EQ(outputs[0], 1);
  // K = 0 for n = 1: base case, zero rounds, zero awake time.
  EXPECT_EQ(metrics.node[0].awake_rounds, 0u);
  EXPECT_EQ(metrics.makespan, 0u);
}

TEST(SleepingMisTest, AllIsolatedNodesJoin) {
  const Graph g = gen::empty(6);
  auto [metrics, outputs] = run_on(g, 3);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(outputs[v], 1);
  EXPECT_TRUE(analysis::check_mis(g, outputs).ok());
  // Isolated nodes decide at the top-level first detection: 1 awake round,
  // then they only do the cheap bookkeeping sends.
  EXPECT_EQ(metrics.node[0].decided_round, 1u);
  EXPECT_EQ(metrics.node[0].awake_at_decision, 1u);
}

TEST(SleepingMisTest, EdgePicksExactlyOneEndpoint) {
  // At n = 2 the auto depth K = 3 gives a 1/8 chance that both nodes
  // draw identical coins and collide in a base case -- the algorithm's
  // honest Monte Carlo failure mode (Lemma 1 is only w.h.p. in n). A
  // deeper tree drives the failure probability to 2^-12.
  const Graph g = gen::path(2);
  SleepingMisOptions options;
  options.levels = 12;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto [metrics, outputs] = run_on(g, seed, nullptr, options);
    EXPECT_EQ(outputs[0] + outputs[1], 1) << "seed " << seed;
  }
}

TEST(SleepingMisTest, TinyGraphFailureRateMatchesMonteCarloBound) {
  // Quantifies the note above: with K = 3 on a single edge, identical
  // coin sequences (probability 2^-3) put both endpoints in one base
  // case where both join. Measured failure rate must be near 1/8 --
  // and every failure must be of exactly that form (both chose 1).
  const Graph g = gen::path(2);
  int failures = 0;
  const int runs = 400;
  for (int seed = 0; seed < runs; ++seed) {
    auto [metrics, outputs] = run_on(g, static_cast<std::uint64_t>(seed));
    if (outputs[0] + outputs[1] != 1) {
      ++failures;
      EXPECT_EQ(outputs[0], 1);
      EXPECT_EQ(outputs[1], 1);
    }
  }
  EXPECT_NEAR(static_cast<double>(failures) / runs, 1.0 / 8.0, 0.05);
}

TEST(SleepingMisTest, ValidOnManyFamiliesAndSeeds) {
  for (gen::Family family : gen::core_families()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Graph g = gen::make(family, 80, seed);
      auto [metrics, outputs] = run_on(g, seed * 57 + 1);
      EXPECT_TRUE(analysis::check_mis(g, outputs).ok())
          << gen::family_name(family) << " seed " << seed << ": "
          << analysis::check_mis(g, outputs).describe();
    }
  }
}

TEST(SleepingMisTest, CompleteGraphYieldsSingleton) {
  const Graph g = gen::complete(17);
  auto [metrics, outputs] = run_on(g, 5);
  int count = 0;
  for (auto o : outputs) count += o == 1;
  EXPECT_EQ(count, 1);
}

TEST(SleepingMisTest, StarHubOrAllLeaves) {
  const Graph g = gen::star(12);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto [metrics, outputs] = run_on(g, seed);
    if (outputs[0] == 1) {
      for (VertexId v = 1; v < 12; ++v) EXPECT_EQ(outputs[v], 0);
    } else {
      for (VertexId v = 1; v < 12; ++v) EXPECT_EQ(outputs[v], 1);
    }
  }
}

TEST(SleepingMisTest, AllNodesFinishInSameRound) {
  // Lemma 1, Condition 1: every node returns from SleepingMIS in the
  // same round. With trailing sleeps accounted, finish == T(K) exactly.
  Rng rng(2);
  const Graph g = gen::gnp_avg_degree(48, 6.0, rng);
  auto [metrics, outputs] = run_on(g, 11);
  const std::uint64_t expected = schedule_duration(recursion_depth(48));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(metrics.node[v].finish_round, expected) << v;
  }
}

TEST(SleepingMisTest, WorstCaseRoundsMatchLemma10) {
  // makespan == T(ceil(3 log2 n)) = 3(2^K - 1) ~ 3 n^3.
  for (const VertexId n : {8u, 32u}) {
    Rng rng(n);
    const Graph g = gen::gnp_avg_degree(n, 4.0, rng);
    auto [metrics, outputs] = run_on(g, 77);
    EXPECT_EQ(metrics.makespan, schedule_duration(recursion_depth(n)));
  }
}

TEST(SleepingMisTest, MatchesLexicographicallyFirstMis) {
  // Corollary 1: SleepingMIS computes the lexicographically-first MIS
  // w.r.t. the order "decreasing K-rank".
  for (gen::Family family :
       {gen::Family::kGnpSparse, gen::Family::kCycle, gen::Family::kStar,
        gen::Family::kLollipop, gen::Family::kRandomTree}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const Graph g = gen::make(family, 60, seed);
      RecursionTrace trace;
      auto [metrics, outputs] = run_on(g, seed * 13, &trace);
      const auto order = greedy_order_from_bits(trace.bits, trace.levels);
      const auto expected = lex_first_mis(g, order);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(outputs[v], static_cast<std::int64_t>(expected[v]))
            << gen::family_name(family) << " seed " << seed << " v " << v;
      }
    }
  }
}

TEST(SleepingMisTest, TraceCountsRootCall) {
  Rng rng(3);
  const Graph g = gen::gnp_avg_degree(40, 5.0, rng);
  RecursionTrace trace;
  run_on(g, 5, &trace);
  const auto& root = trace.calls.at({trace.levels, 0});
  EXPECT_EQ(root.participants, 40u);
  EXPECT_EQ(root.first_round, 1u);
  // Left + right participation at the root bounded by participants.
  EXPECT_LE(root.left + root.right, root.participants);
}

TEST(SleepingMisTest, TraceLevelSumsDecrease) {
  Rng rng(4);
  const Graph g = gen::gnp_avg_degree(120, 8.0, rng);
  RecursionTrace trace;
  run_on(g, 19, &trace);
  const auto z = trace.z_by_level();
  EXPECT_EQ(z[trace.levels], 120u);
  // Participation shrinks monotonically down the tree (each level's
  // participants are a subset of the previous one's L u R).
  for (std::uint32_t k = trace.levels; k >= 1; --k) {
    EXPECT_LE(z[k - 1], z[k]) << "level " << k;
  }
}

TEST(SleepingMisTest, DepthOverrideControlsSchedule) {
  // A forced shallow tree still terminates on the exact schedule and
  // decides every node (correctness degrades gracefully to Monte
  // Carlo: an under-deep tree may put adjacent nodes in one base case).
  const Graph g = gen::cycle(4);
  SleepingMisOptions options;
  options.levels = 2;
  auto [metrics, outputs] = run_on(g, 9, nullptr, options);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_TRUE(outputs[v] == 0 || outputs[v] == 1) << v;
  }
  EXPECT_EQ(metrics.makespan, schedule_duration(2));
}

TEST(SleepingMisTest, ModerateCoinBiasStillCorrect) {
  // The w.h.p. guarantee rests on distinct coin sequences; K = 3 log2 n
  // is calibrated for a fair coin. Moderate biases keep collisions
  // negligible (collision rate per pair (p^2 + q^2)^K); the extreme
  // ones are explored by bench_ablation_coin_bias, which counts
  // invalid runs instead of assuming none.
  Rng rng(6);
  const Graph g = gen::gnp_avg_degree(40, 5.0, rng);
  for (double bias : {0.3, 0.5, 0.7}) {
    SleepingMisOptions options;
    options.coin_bias = bias;
    auto [metrics, outputs] = run_on(g, 21, nullptr, options);
    EXPECT_TRUE(analysis::check_mis(g, outputs).ok()) << "bias " << bias;
  }
}

TEST(SleepingMisTest, DeterministicGivenSeed) {
  Rng rng(8);
  const Graph g = gen::gnp_avg_degree(64, 6.0, rng);
  auto a = run_on(g, 1234);
  auto b = run_on(g, 1234);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.metrics.total_messages, b.metrics.total_messages);
}

TEST(SleepingMisTest, CongestBudgetRespected) {
  Rng rng(10);
  const Graph g = gen::gnp_avg_degree(100, 10.0, rng);
  auto [metrics, outputs] = run_on(g, 3);  // run_on enforces the budget
  EXPECT_EQ(metrics.congest_violations, 0u);
  EXPECT_LE(metrics.max_message_bits_seen, sim::congest_bits_for(100));
}

}  // namespace
}  // namespace slumber::core
