// Randomized invariant suite ("fuzzing" the scheduler): random graphs x
// random protocol behaviors (random sleeps, random per-port sends,
// random early termination), checking the simulator's conservation and
// consistency laws hold in every execution:
//
//   I1  delivered + dropped + injected == sent
//   I2  sum over nodes of awake_rounds == total_awake_node_rounds
//   I3  every delivered message's receiver was awake that round
//       (checked by construction through echo counting)
//   I4  makespan == max finish_round; finish >= decided for deciders
//   I5  identical seeds => identical everything (determinism)
#include <gtest/gtest.h>

#include "fault/fault.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/rng.h"

namespace slumber::sim {
namespace {

// A protocol driven by a per-node random plan: each step either sleeps
// a random duration, broadcasts, listens, or sends on random ports;
// terminates after a random number of steps. Every receive is counted
// into the node's output so runs can be compared exactly.
Task chaos_protocol(Context& ctx) {
  const std::uint64_t steps = 1 + ctx.rng().below(12);
  std::int64_t received_total = 0;
  for (std::uint64_t step = 0; step < steps; ++step) {
    const std::uint64_t action = ctx.rng().below(4);
    if (action == 0) {
      ctx.sleep(ctx.rng().below(5));
    }
    Inbox inbox;
    if (action == 1 && ctx.degree() > 0) {
      std::vector<std::pair<std::uint32_t, Message>> out;
      const std::uint64_t sends = ctx.rng().below(ctx.degree()) + 1;
      for (std::uint64_t i = 0; i < sends; ++i) {
        out.push_back({static_cast<std::uint32_t>(
                           ctx.rng().below(ctx.degree())),
                       Message::hello()});
      }
      inbox = co_await ctx.exchange(std::move(out));
    } else if (action == 2) {
      inbox = co_await ctx.listen();
    } else {
      inbox = co_await ctx.broadcast(Message::hello());
    }
    received_total += static_cast<std::int64_t>(inbox.size());
  }
  ctx.decide(received_total);
}

class SimInvariantsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimInvariantsTest, ConservationAndConsistency) {
  const std::uint64_t seed = GetParam();
  Rng graph_rng(seed);
  const Graph g = gen::gnp_avg_degree(40, 6.0, graph_rng);

  for (const double loss : {0.0, 0.15}) {
    fault::FaultPlan plan;
    plan.loss_prob = loss;
    NetworkOptions options;
    options.fault = &plan;
    Network net(g, seed, options);
    const Metrics& metrics = net.run(chaos_protocol);

    // I1: conservation.
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t awake_sum = 0;
    for (const NodeMetrics& m : metrics.node) {
      sent += m.messages_sent;
      received += m.messages_received;
      awake_sum += m.awake_rounds;
    }
    EXPECT_EQ(received, metrics.total_messages);
    EXPECT_EQ(sent, metrics.total_messages + metrics.dropped_messages +
                        metrics.injected_losses);

    // I2: awake accounting.
    EXPECT_EQ(awake_sum, metrics.total_awake_node_rounds);
    EXPECT_GE(metrics.distinct_active_rounds, 1u);
    EXPECT_LE(metrics.distinct_active_rounds, awake_sum);

    // I4: timing relations.
    std::uint64_t max_finish = 0;
    for (const NodeMetrics& m : metrics.node) {
      max_finish = std::max(max_finish, m.finish_round);
      EXPECT_LE(m.decided_round, m.finish_round);
      EXPECT_LE(m.awake_at_decision, m.awake_rounds);
    }
    EXPECT_EQ(metrics.makespan, max_finish);
  }
}

TEST_P(SimInvariantsTest, Determinism) {
  const std::uint64_t seed = GetParam();
  Rng graph_rng(seed);
  const Graph g = gen::gnp_avg_degree(30, 5.0, graph_rng);
  fault::FaultPlan plan;
  plan.loss_prob = 0.05;
  NetworkOptions options;
  options.fault = &plan;

  Network a(g, seed * 3 + 1, options);
  Network b(g, seed * 3 + 1, options);
  a.run(chaos_protocol);
  b.run(chaos_protocol);
  EXPECT_EQ(a.outputs(), b.outputs());
  EXPECT_EQ(a.metrics().total_messages, b.metrics().total_messages);
  EXPECT_EQ(a.metrics().makespan, b.metrics().makespan);
  EXPECT_EQ(a.metrics().injected_losses, b.metrics().injected_losses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimInvariantsTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace slumber::sim
