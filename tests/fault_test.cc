// Fault-layer determinism suite (fault/fault.h, fault/churn.h).
//
// Pins the three contracts the layer is built around:
//   1. lane-independence — a faulty bulk run is bitwise identical at
//      every lane count (the fault draws are keyed pure functions, so
//      chunk-local evaluation merged in chunk order cannot depend on
//      the sharding);
//   2. engine-independence — the coroutine scheduler and the bulk
//      engine facing the same FaultPlan and seed crash the same nodes
//      at the same rounds, lose the same messages, and produce the
//      same outputs and metrics bit for bit;
//   3. churn repair — after every churn batch the repaired output is a
//      correct MIS of the alive-induced subgraph, and the whole churn
//      trajectory is lane-count-independent.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "bulk/baselines.h"
#include "bulk/engine.h"
#include "fault/churn.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "metrics_test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace slumber {
namespace {

using analysis::ExecEngine;
using analysis::MisEngine;

// --- FaultState unit contracts --------------------------------------

TEST(FaultState, LossDrawIsSymmetricAndPure) {
  fault::FaultPlan plan;
  plan.loss_prob = 0.5;
  const fault::FaultState fs(&plan, 42, 1000);
  for (VertexId a = 0; a < 20; ++a) {
    for (VertexId b = a + 1; b < 20; ++b) {
      for (std::uint64_t round = 1; round < 8; ++round) {
        const bool down = fs.link_down(a, b, round, 0);
        EXPECT_EQ(down, fs.link_down(b, a, round, 0));
        EXPECT_EQ(down, fs.link_down(a, b, round, 0));  // pure
      }
    }
  }
}

TEST(FaultState, LossRateMatchesProbability) {
  fault::FaultPlan plan;
  plan.loss_prob = 0.1;
  const fault::FaultState fs(&plan, 7, 1 << 20);
  std::uint64_t down = 0;
  const std::uint64_t draws = 20000;
  for (std::uint64_t i = 0; i < draws; ++i) {
    down += fs.link_down(static_cast<VertexId>(i), static_cast<VertexId>(i) + 1,
                         i % 97, 0)
                ? 1
                : 0;
  }
  EXPECT_NEAR(static_cast<double>(down) / static_cast<double>(draws), 0.1,
              0.01);
}

TEST(FaultState, ScheduleEarliestRoundWinsAndClipsOutOfRange) {
  fault::FaultPlan plan;
  plan.crash_schedule = {{5, 10}, {5, 4}, {999, 1}};
  const fault::FaultState fs(&plan, 3, 10);  // node 999 >= n: dropped
  EXPECT_FALSE(fs.crashes_now(5, 3, 0));
  EXPECT_TRUE(fs.crashes_now(5, 4, 0));
  EXPECT_TRUE(fs.crashes_now(5, 11, 0));
  // A 128-bit round with a non-zero high half is past any 64-bit
  // schedule entry.
  EXPECT_TRUE(fs.crashes_now(5, 0, 1));
  EXPECT_FALSE(fs.crashes_now(9, 100, 0));
}

TEST(FaultState, SaltSeparatesStreams) {
  fault::FaultPlan a;
  a.loss_prob = 0.5;
  fault::FaultPlan b = a;
  b.salt = 1;
  const fault::FaultState fa(&a, 42, 100);
  const fault::FaultState fb(&b, 42, 100);
  std::uint64_t differ = 0;
  for (std::uint64_t round = 0; round < 200; ++round) {
    differ += fa.link_down(1, 2, round, 0) != fb.link_down(1, 2, round, 0);
  }
  EXPECT_GT(differ, 0u);
}

// --- lane-independence of faulty bulk runs --------------------------

struct NamedPlan {
  std::string name;
  fault::FaultPlan plan;
};

std::vector<NamedPlan> fault_plans() {
  std::vector<NamedPlan> plans(3);
  plans[0].name = "crash";
  plans[0].plan.crash_schedule = {{3, 5}, {11, 2}};
  plans[0].plan.crash_prob = 0.002;
  plans[1].name = "loss";
  plans[1].plan.loss_prob = 0.05;
  plans[2].name = "crash+loss";
  plans[2].plan.crash_prob = 0.002;
  plans[2].plan.loss_prob = 0.05;
  return plans;
}

// Every bulk protocol (the four MIS engines plus Israeli–Itai and the
// beeping variant) under every plan: lane counts 2, 3, and 8 must
// reproduce the serial run bit for bit, even with one-node chunks.
TEST(FaultLaneMatrix, BulkRunsAreLaneCountIndependent) {
  Rng rng(19);
  const Graph g = gen::gnp_avg_degree(400, 8.0, rng);
  struct Entry {
    std::string name;
    std::unique_ptr<bulk::BulkProtocol> protocol;
  };
  std::vector<Entry> protocols;
  for (const MisEngine engine :
       {MisEngine::kSleeping, MisEngine::kLubyA, MisEngine::kLubyB,
        MisEngine::kGreedy}) {
    protocols.push_back({analysis::engine_name(engine),
                         bulk::bulk_mis_protocol(engine, nullptr)});
  }
  protocols.push_back({"israeli-itai",
                       std::make_unique<bulk::BulkIsraeliItai>()});
  protocols.push_back({"beeping", std::make_unique<bulk::BulkBeepingMis>()});

  for (const NamedPlan& np : fault_plans()) {
    for (const Entry& entry : protocols) {
      bulk::BulkOptions base;
      base.max_message_bits = 0;
      base.parallel_cutoff = 1;  // shard even one-node frames
      base.fault = &np.plan;
      const bulk::BulkResult serial =
          bulk::run_bulk(g, 77, *entry.protocol, base);
      for (const unsigned lanes : {2u, 3u, 8u}) {
        util::ThreadPool pool(lanes);
        bulk::BulkOptions options = base;
        options.pool = &pool;
        const bulk::BulkResult run =
            bulk::run_bulk(g, 77, *entry.protocol, options);
        SCOPED_TRACE(entry.name + " / " + np.name + " / lanes " +
                     std::to_string(lanes));
        EXPECT_EQ(serial.outputs, run.outputs);
        EXPECT_EQ(serial.crashed, run.crashed);
        EXPECT_TRUE(serial.virtual_makespan == run.virtual_makespan);
        ExpectMetricsEqual(serial.metrics, run.metrics);
      }
    }
  }
}

// --- engine-independence --------------------------------------------

// The coroutine scheduler and the bulk engine share every fault draw:
// same crashed nodes, same lost messages, same outputs, same metrics.
TEST(CrossEngineFault, EnginesAgreeBitwiseUnderSharedPlans) {
  Rng rng(23);
  const Graph g = gen::gnp_avg_degree(600, 6.0, rng);
  for (const NamedPlan& np : fault_plans()) {
    for (const MisEngine engine :
         {MisEngine::kSleeping, MisEngine::kLubyA, MisEngine::kLubyB,
          MisEngine::kGreedy}) {
      SCOPED_TRACE(analysis::engine_name(engine) + " / " + np.name);
      const auto coro = analysis::run_mis(engine, g, 101,
                                          {.fault = &np.plan});
      const auto bulk_run = analysis::run_mis(
          engine, g, 101, {.exec = ExecEngine::kBulk, .fault = &np.plan});
      EXPECT_EQ(coro.outputs, bulk_run.outputs);
      EXPECT_EQ(coro.alive, bulk_run.alive);
      EXPECT_EQ(coro.valid, bulk_run.valid);
      ExpectMetricsEqual(coro.metrics, bulk_run.metrics);
    }
  }
}

// --- churn ----------------------------------------------------------

TEST(Churn, RepairedOutputIsValidMisOfAliveSubgraph) {
  Rng rng(29);
  const Graph g = gen::gnp_avg_degree(500, 8.0, rng);
  fault::FaultPlan plan;
  plan.churn.leave_prob = 0.3;
  plan.churn.join_prob = 0.5;
  plan.churn.batches = 3;
  plan.loss_prob = 0.02;  // arrive at churn with loss damage too
  const auto run = analysis::run_mis(MisEngine::kSleeping, g, 55,
                                     {.exec = ExecEngine::kBulk,
                                      .fault = &plan});
  // run_churn checks the invariant after the initial repair and after
  // every batch; `valid` is the conjunction.
  EXPECT_TRUE(run.valid);
  ASSERT_EQ(run.alive.size(), g.num_vertices());
  EXPECT_EQ(run.metrics.churn_batches, 3u);
  EXPECT_GT(run.metrics.churn_leaves, 0u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (run.alive[v]) {
      EXPECT_TRUE(run.outputs[v] == 0 || run.outputs[v] == 1) << v;
    } else {
      EXPECT_EQ(run.outputs[v], -1) << v;
    }
  }
  // And the invariant really holds on the final state.
  EXPECT_TRUE(fault::check_alive_mis(g, run.alive, run.outputs));
}

TEST(Churn, TrajectoryIsLaneCountIndependent) {
  Rng rng(31);
  const Graph g = gen::gnp_avg_degree(400, 8.0, rng);
  fault::FaultPlan plan;
  plan.churn.leave_prob = 0.25;
  plan.churn.join_prob = 0.4;
  plan.churn.batches = 4;
  plan.crash_prob = 0.001;
  const auto serial = analysis::run_mis(MisEngine::kLubyA, g, 13,
                                        {.exec = ExecEngine::kBulk,
                                         .fault = &plan});
  for (const unsigned lanes : {2u, 3u, 8u}) {
    util::ThreadPool pool(lanes);
    const auto run = analysis::run_mis(MisEngine::kLubyA, g, 13,
                                       {.exec = ExecEngine::kBulk,
                                        .pool = &pool,
                                        .fault = &plan});
    SCOPED_TRACE(lanes);
    EXPECT_EQ(serial.outputs, run.outputs);
    EXPECT_EQ(serial.alive, run.alive);
    EXPECT_EQ(serial.valid, run.valid);
    EXPECT_EQ(serial.metrics.churn_leaves, run.metrics.churn_leaves);
    EXPECT_EQ(serial.metrics.churn_joins, run.metrics.churn_joins);
    EXPECT_EQ(serial.metrics.churn_repair_rounds,
              run.metrics.churn_repair_rounds);
  }
}

TEST(Churn, CoroutineBackEndRejectsChurn) {
  const Graph g = gen::cycle(8);
  fault::FaultPlan plan;
  plan.churn.leave_prob = 0.5;
  plan.churn.batches = 1;
  EXPECT_THROW(analysis::run_mis(MisEngine::kSleeping, g, 1, {.fault = &plan}),
               std::invalid_argument);
}

// --- run_trials under faults ----------------------------------------

// Faulty multi-trial batches stay bitwise identical across trial-lane
// counts, and the serial path's forwarded intra-trial pool does not
// change results either.
TEST(FaultTrials, TrialBatchesAreThreadCountIndependent) {
  fault::FaultPlan plan;
  plan.crash_prob = 0.002;
  plan.loss_prob = 0.03;
  const auto factory = [](std::uint64_t seed) {
    Rng rng(seed);
    return gen::gnp_avg_degree(200, 6.0, rng);
  };
  const auto serial =
      analysis::run_trials(MisEngine::kGreedy, factory, 900, 8,
                           {.exec = ExecEngine::kBulk, .num_threads = 1,
                            .fault = &plan});
  util::ThreadPool pool(3);
  const auto serial_pooled =
      analysis::run_trials(MisEngine::kGreedy, factory, 900, 8,
                           {.exec = ExecEngine::kBulk, .num_threads = 1,
                            .pool = &pool, .fault = &plan});
  const auto wide =
      analysis::run_trials(MisEngine::kGreedy, factory, 900, 8,
                           {.exec = ExecEngine::kBulk, .num_threads = 4,
                            .fault = &plan});
  ASSERT_EQ(serial.size(), 8u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(serial[i].outputs, serial_pooled[i].outputs);
    EXPECT_EQ(serial[i].outputs, wide[i].outputs);
    EXPECT_EQ(serial[i].alive, wide[i].alive);
    ExpectMetricsEqual(serial[i].metrics, wide[i].metrics);
  }
}

}  // namespace
}  // namespace slumber
