// Tests for the synchronous sleeping-model simulator: round semantics,
// sleeping message loss, event skipping, CONGEST enforcement, metrics.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "sim/network.h"

namespace slumber::sim {
namespace {

using slumber::gen::cycle;
using slumber::gen::complete;
using slumber::gen::empty;
using slumber::gen::path;
using slumber::gen::star;

TEST(SimTest, ImmediateFinishNodeNeverWakes) {
  const Graph g = empty(4);
  auto protocol = [](Context& ctx) -> Task {
    ctx.decide(static_cast<std::int64_t>(ctx.id()));
    co_return;
  };
  auto [metrics, outputs] = run_protocol(g, 1, protocol);
  EXPECT_EQ(metrics.makespan, 0u);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(metrics.node[v].awake_rounds, 0u);
    EXPECT_EQ(outputs[v], static_cast<std::int64_t>(v));
  }
}

TEST(SimTest, BroadcastReachesAwakeNeighbors) {
  const Graph g = star(5);  // hub 0, leaves 1..4
  auto protocol = [](Context& ctx) -> Task {
    Inbox inbox = co_await ctx.broadcast(Message::hello());
    ctx.decide(static_cast<std::int64_t>(inbox.size()));
  };
  auto [metrics, outputs] = run_protocol(g, 1, protocol);
  EXPECT_EQ(outputs[0], 4);  // hub hears all leaves
  for (VertexId v = 1; v < 5; ++v) EXPECT_EQ(outputs[v], 1);
  EXPECT_EQ(metrics.makespan, 1u);
  EXPECT_EQ(metrics.total_messages, 8u);
}

TEST(SimTest, MessagesToSleepingNodesAreDropped) {
  const Graph g = path(2);
  // Node 0 broadcasts in round 1; node 1 sleeps through round 1 and
  // broadcasts in round 2. Neither hears the other.
  auto protocol = [](Context& ctx) -> Task {
    if (ctx.id() == 1) ctx.sleep(1);
    Inbox inbox = co_await ctx.broadcast(Message::hello());
    ctx.decide(static_cast<std::int64_t>(inbox.size()));
  };
  auto [metrics, outputs] = run_protocol(g, 1, protocol);
  EXPECT_EQ(outputs[0], 0);
  EXPECT_EQ(outputs[1], 0);
  EXPECT_EQ(metrics.total_messages, 0u);
  EXPECT_EQ(metrics.dropped_messages, 2u);
}

TEST(SimTest, SleepAccumulatesAcrossCalls) {
  const Graph g = path(2);
  auto protocol = [](Context& ctx) -> Task {
    if (ctx.id() == 0) {
      ctx.sleep(2);
      ctx.sleep(3);  // total 5: next exchange at round 6
    } else {
      ctx.sleep(5);
    }
    Inbox inbox = co_await ctx.broadcast(Message::hello());
    ctx.decide(static_cast<std::int64_t>(inbox.size()));
  };
  auto [metrics, outputs] = run_protocol(g, 1, protocol);
  // Both woke in round 6 and heard each other.
  EXPECT_EQ(outputs[0], 1);
  EXPECT_EQ(outputs[1], 1);
  EXPECT_EQ(metrics.makespan, 6u);
  EXPECT_EQ(metrics.node[0].awake_rounds, 1u);
}

TEST(SimTest, EventSkippingJumpsSleepGaps) {
  const Graph g = path(2);
  const std::uint64_t gap = 1'000'000'000ULL;
  auto protocol = [gap](Context& ctx) -> Task {
    ctx.sleep(gap);
    co_await ctx.broadcast(Message::hello());
    ctx.decide(1);
  };
  auto [metrics, outputs] = run_protocol(g, 1, protocol);
  EXPECT_EQ(metrics.makespan, gap + 1);
  // Only one distinct round had awake nodes: simulation cost is O(1).
  EXPECT_EQ(metrics.distinct_active_rounds, 1u);
}

TEST(SimTest, PerPortSendsTargetSingleNeighbor) {
  const Graph g = path(3);  // 0-1-2
  auto protocol = [](Context& ctx) -> Task {
    std::vector<std::pair<std::uint32_t, Message>> out;
    if (ctx.id() == 1) {
      out.push_back({static_cast<std::uint32_t>(1), Message::hello()});
      // port 1 of node 1 leads to neighbor 2 (neighbors sorted: 0, 2)
    }
    Inbox inbox = co_await ctx.exchange(std::move(out));
    ctx.decide(static_cast<std::int64_t>(inbox.size()));
  };
  auto [metrics, outputs] = run_protocol(g, 1, protocol);
  EXPECT_EQ(outputs[0], 0);
  EXPECT_EQ(outputs[1], 0);
  EXPECT_EQ(outputs[2], 1);
}

TEST(SimTest, ReceivedPortIdentifiesSender) {
  const Graph g = cycle(4);
  auto protocol = [](Context& ctx) -> Task {
    Inbox inbox = co_await ctx.broadcast(Message::hello());
    // Reconstruct sender via the port: neighbor(port) must equal from.
    for (const Received& r : inbox) {
      if (r.msg.kind != MsgKind::kHello) continue;
      EXPECT_LT(r.port, ctx.degree());
    }
    ctx.decide(static_cast<std::int64_t>(inbox.size()));
  };
  auto [metrics, outputs] = run_protocol(g, 7, protocol);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(outputs[v], 2);
}

TEST(SimTest, NestedCoroutineRecursionSuspendsWholeStack) {
  const Graph g = complete(3);
  // Recursive protocol: depth d performs one exchange then recurses.
  struct Helper {
    static Task recurse(Context& ctx, int depth, std::uint64_t* rounds) {
      if (depth == 0) co_return;
      co_await ctx.broadcast(Message::hello());
      *rounds += 1;
      co_await recurse(ctx, depth - 1, rounds);
    }
  };
  auto protocol = [](Context& ctx) -> Task {
    std::uint64_t rounds = 0;
    co_await Helper::recurse(ctx, 5, &rounds);
    ctx.decide(static_cast<std::int64_t>(rounds));
  };
  auto [metrics, outputs] = run_protocol(g, 1, protocol);
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(outputs[v], 5);
    EXPECT_EQ(metrics.node[v].awake_rounds, 5u);
  }
  EXPECT_EQ(metrics.makespan, 5u);
}

TEST(SimTest, CongestViolationThrows) {
  const Graph g = path(2);
  auto protocol = [](Context& ctx) -> Task {
    Message fat = Message::hello();
    fat.bits = 10'000;
    co_await ctx.broadcast(fat);
    ctx.decide(1);
  };
  NetworkOptions options;
  options.max_message_bits = congest_bits_for(2);
  Network net(g, 1, options);
  EXPECT_THROW(net.run(protocol), CongestViolation);
}

TEST(SimTest, CongestViolationCountedWhenNotThrowing) {
  const Graph g = path(2);
  auto protocol = [](Context& ctx) -> Task {
    Message fat = Message::hello();
    fat.bits = 10'000;
    co_await ctx.broadcast(fat);
    ctx.decide(1);
  };
  NetworkOptions options;
  options.max_message_bits = congest_bits_for(2);
  options.throw_on_congest_violation = false;
  Network net(g, 1, options);
  const Metrics& metrics = net.run(protocol);
  EXPECT_EQ(metrics.congest_violations, 2u);
  EXPECT_EQ(metrics.max_message_bits_seen, 10'000u);
}

TEST(SimTest, DecideRecordsRoundAndAwakeTime) {
  const Graph g = path(2);
  auto protocol = [](Context& ctx) -> Task {
    co_await ctx.broadcast(Message::hello());
    co_await ctx.broadcast(Message::hello());
    ctx.decide(42);
    co_await ctx.broadcast(Message::hello());  // keeps running after deciding
  };
  auto [metrics, outputs] = run_protocol(g, 1, protocol);
  EXPECT_EQ(outputs[0], 42);
  EXPECT_EQ(metrics.node[0].decided_round, 2u);
  EXPECT_EQ(metrics.node[0].awake_at_decision, 2u);
  EXPECT_EQ(metrics.node[0].finish_round, 3u);
  EXPECT_EQ(metrics.node[0].awake_rounds, 3u);
}

TEST(SimTest, DecideIsIdempotent) {
  const Graph g = empty(1);
  auto protocol = [](Context& ctx) -> Task {
    ctx.decide(1);
    ctx.decide(2);
    co_return;
  };
  auto [metrics, outputs] = run_protocol(g, 1, protocol);
  EXPECT_EQ(outputs[0], 1);
}

TEST(SimTest, TerminatedNodesDropMessages) {
  const Graph g = path(2);
  auto protocol = [](Context& ctx) -> Task {
    if (ctx.id() == 0) {
      ctx.decide(0);
      co_return;  // terminates immediately
    }
    Inbox inbox = co_await ctx.broadcast(Message::hello());
    ctx.decide(static_cast<std::int64_t>(inbox.size()));
  };
  auto [metrics, outputs] = run_protocol(g, 1, protocol);
  EXPECT_EQ(outputs[1], 0);
  EXPECT_EQ(metrics.dropped_messages, 1u);
}

TEST(SimTest, RunTwiceRejected) {
  const Graph g = empty(1);
  auto protocol = [](Context& ctx) -> Task {
    ctx.decide(1);
    co_return;
  };
  Network net(g, 1);
  net.run(protocol);
  EXPECT_THROW(net.run(protocol), std::logic_error);
}

TEST(SimTest, ExceptionInProtocolPropagates) {
  const Graph g = empty(1);
  auto protocol = [](Context&) -> Task {
    throw std::runtime_error("boom");
    co_return;
  };
  Network net(g, 1);
  EXPECT_THROW(net.run(protocol), std::runtime_error);
}

TEST(SimTest, DeterministicAcrossRuns) {
  const Graph g = cycle(6);
  auto protocol = [](Context& ctx) -> Task {
    const std::uint64_t value = ctx.rng().below(1000);
    co_await ctx.broadcast(Message::hello());
    ctx.decide(static_cast<std::int64_t>(value));
  };
  auto first = run_protocol(g, 99, protocol);
  auto second = run_protocol(g, 99, protocol);
  EXPECT_EQ(first.outputs, second.outputs);
  auto third = run_protocol(g, 100, protocol);
  EXPECT_NE(first.outputs, third.outputs);
}

TEST(SimTest, RoundVisibleToProtocol) {
  const Graph g = empty(2);
  auto protocol = [](Context& ctx) -> Task {
    co_await ctx.listen();            // round 1
    ctx.sleep(9);
    co_await ctx.listen();            // round 11
    ctx.decide(static_cast<std::int64_t>(ctx.round()));
  };
  auto [metrics, outputs] = run_protocol(g, 1, protocol);
  EXPECT_EQ(outputs[0], 11);
}

}  // namespace
}  // namespace slumber::sim
