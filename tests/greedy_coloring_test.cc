// Tests for the distributed randomized greedy (lex-first) coloring.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>

#include "algos/common.h"
#include "algos/greedy_coloring.h"
#include "analysis/verify.h"
#include "graph/generators.h"
#include "graph/transforms.h"
#include "util/rng.h"

namespace slumber::algos {
namespace {

sim::RunResult run_coloring(const Graph& g, std::uint64_t seed,
                            GreedyColoringOptions options = {}) {
  sim::NetworkOptions net;
  net.max_message_bits = sim::congest_bits_for(
      std::max<std::uint64_t>(g.num_vertices(), 2));
  return sim::run_protocol(g, seed, greedy_coloring(options), net);
}

TEST(GreedyColoringTest, SingleNodeGetsColorZero) {
  Graph g = gen::empty(1);
  auto [metrics, outputs] = run_coloring(g, 1);
  EXPECT_EQ(outputs[0], 0);
}

TEST(GreedyColoringTest, PathIsProper) {
  Graph g = gen::path(10);
  auto [metrics, outputs] = run_coloring(g, 2);
  EXPECT_TRUE(analysis::check_coloring(g, outputs));
}

TEST(GreedyColoringTest, CompleteGraphUsesAllColors) {
  Graph g = gen::complete(7);
  auto [metrics, outputs] = run_coloring(g, 3);
  EXPECT_TRUE(analysis::check_coloring(g, outputs));
  std::vector<std::int64_t> sorted = outputs;
  std::sort(sorted.begin(), sorted.end());
  for (std::int64_t c = 0; c < 7; ++c) EXPECT_EQ(sorted[c], c);
}

TEST(GreedyColoringTest, MatchesSequentialGreedyOnRankOrder) {
  Rng rng(4);
  Graph g = gen::gnp_avg_degree(60, 5.0, rng);
  std::vector<std::uint64_t> ranks(g.num_vertices(), 0);
  GreedyColoringOptions options;
  options.ranks_out = &ranks;
  auto [metrics, outputs] = run_coloring(g, 17, options);
  ASSERT_TRUE(analysis::check_coloring(g, outputs));

  // Sequential greedy along (rank, id) descending must coincide.
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return priority_beats(ranks[a], a, ranks[b], b);
  });
  const auto sequential = sequential_greedy_coloring(g, order);
  EXPECT_EQ(outputs, sequential);
}

TEST(GreedyColoringTest, DecidedRoundTracksRankChainDepth) {
  // On a star the hub or each leaf waits on at most one other node, so
  // everyone decides within a few rounds.
  Graph g = gen::star(50);
  auto [metrics, outputs] = run_coloring(g, 5);
  ASSERT_TRUE(analysis::check_coloring(g, outputs));
  EXPECT_LE(metrics.worst_finish(), 6u);
}

TEST(GreedyColoringTest, DeterministicInSeed) {
  Rng rng(6);
  Graph g = gen::gnp(40, 0.15, rng);
  auto first = run_coloring(g, 23);
  auto second = run_coloring(g, 23);
  EXPECT_EQ(first.outputs, second.outputs);
}

TEST(GreedyColoringTest, SequentialReferenceRespectsOrder) {
  // On the path 0-1-2, coloring order {1, 0, 2} gives 1 color 0 and its
  // neighbors color 1; order {0, 1, 2} alternates 0, 1, 0.
  Graph g = gen::path(3);
  EXPECT_EQ(sequential_greedy_coloring(g, {1, 0, 2}),
            (std::vector<std::int64_t>{1, 0, 1}));
  EXPECT_EQ(sequential_greedy_coloring(g, {0, 1, 2}),
            (std::vector<std::int64_t>{0, 1, 0}));
}

struct GreedyColoringSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(GreedyColoringSweep, ProperOnRandomAndTransformed) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const Graph base = gen::gnp_avg_degree(static_cast<VertexId>(n), 6.0, rng);
  for (const Graph& g :
       {base, mycielski(gen::cycle(9)), subdivision(gen::complete(6))}) {
    auto [metrics, outputs] = run_coloring(g, seed * 31 + 7);
    EXPECT_TRUE(analysis::check_coloring(g, outputs)) << g.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GreedyColoringSweep,
    ::testing::Combine(::testing::Values(24, 80, 200),
                       ::testing::Values(1u, 2u, 3u, 4u)));

}  // namespace
}  // namespace slumber::algos
