// Shared bitwise sim::Metrics comparison for the engine-equivalence and
// thread-determinism suites (bulk_engine_test, bulk_parallel_test): the
// per-field EXPECTs pinpoint the first diverging node/field for
// diagnosis, and the defaulted operator== backstop guarantees a future
// Metrics field can never silently fall out of the gates.
#pragma once

#include <cstddef>

#include <gtest/gtest.h>

#include "sim/metrics.h"

namespace slumber {

inline void ExpectMetricsEqual(const sim::Metrics& a, const sim::Metrics& b) {
  ASSERT_EQ(a.node.size(), b.node.size());
  for (std::size_t v = 0; v < a.node.size(); ++v) {
    const sim::NodeMetrics& x = a.node[v];
    const sim::NodeMetrics& y = b.node[v];
    if (!(x == y)) {
      EXPECT_EQ(x.awake_rounds, y.awake_rounds) << "node " << v;
      EXPECT_EQ(x.finish_round, y.finish_round) << "node " << v;
      EXPECT_EQ(x.decided_round, y.decided_round) << "node " << v;
      EXPECT_EQ(x.awake_at_decision, y.awake_at_decision) << "node " << v;
      EXPECT_EQ(x.messages_sent, y.messages_sent) << "node " << v;
      EXPECT_EQ(x.messages_received, y.messages_received) << "node " << v;
      EXPECT_EQ(x.crashed, y.crashed) << "node " << v;
      FAIL() << "per-node metrics diverge first at node " << v;
    }
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.dropped_messages, b.dropped_messages);
  EXPECT_EQ(a.injected_losses, b.injected_losses);
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes);
  EXPECT_EQ(a.total_awake_node_rounds, b.total_awake_node_rounds);
  EXPECT_EQ(a.distinct_active_rounds, b.distinct_active_rounds);
  EXPECT_EQ(a.congest_violations, b.congest_violations);
  EXPECT_EQ(a.max_message_bits_seen, b.max_message_bits_seen);
  // Field-complete backstop (defaulted operator==).
  EXPECT_TRUE(a == b);
}

}  // namespace slumber
