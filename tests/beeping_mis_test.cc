// Tests for the beeping-model MIS (Afek et al. style bitwise
// tournament). Correctness must hold on every seed because composite
// ranks embed node ids (no tie is possible between neighbors).
#include <gtest/gtest.h>

#include <tuple>

#include "algos/beeping_mis.h"
#include "analysis/verify.h"
#include "graph/generators.h"
#include "graph/transforms.h"
#include "util/rng.h"

namespace slumber::algos {
namespace {

TEST(BeepingMisTest, SingleNodeJoins) {
  Graph g = gen::empty(1);
  auto [metrics, outputs] = sim::run_protocol(g, 1, beeping_mis());
  EXPECT_EQ(outputs[0], 1);
}

TEST(BeepingMisTest, IsolatedNodesAllJoin) {
  Graph g = gen::empty(10);
  auto [metrics, outputs] = sim::run_protocol(g, 2, beeping_mis());
  for (std::int64_t out : outputs) EXPECT_EQ(out, 1);
}

TEST(BeepingMisTest, TriangleElectsExactlyOne) {
  Graph g = gen::complete(3);
  auto [metrics, outputs] = sim::run_protocol(g, 3, beeping_mis());
  EXPECT_TRUE(analysis::check_mis(g, outputs).ok());
  int joined = 0;
  for (std::int64_t out : outputs) joined += out == 1;
  EXPECT_EQ(joined, 1);
}

TEST(BeepingMisTest, MessagesAreOneBit) {
  Graph g = gen::cycle(12);
  sim::NetworkOptions options;
  options.max_message_bits = 1;  // beeps only; anything wider must throw
  auto [metrics, outputs] = sim::run_protocol(g, 4, beeping_mis(), options);
  EXPECT_TRUE(analysis::check_mis(g, outputs).ok());
  EXPECT_EQ(metrics.congest_violations, 0u);
  EXPECT_EQ(metrics.max_message_bits_seen, 1u);
}

TEST(BeepingMisTest, AllNodesStayAwakeUntilDecided) {
  // No sleeping in the beeping model: every awake round of a node is
  // consecutive from round 1, so awake_rounds == finish_round.
  Graph g = gen::cycle(16);
  auto [metrics, outputs] = sim::run_protocol(g, 5, beeping_mis());
  for (const auto& node : metrics.node) {
    EXPECT_EQ(node.awake_rounds, node.finish_round);
  }
}

TEST(BeepingMisTest, DeterministicInSeed) {
  Rng rng(6);
  Graph g = gen::gnp(50, 0.1, rng);
  auto first = sim::run_protocol(g, 123, beeping_mis());
  auto second = sim::run_protocol(g, 123, beeping_mis());
  EXPECT_EQ(first.outputs, second.outputs);
}

struct BeepingSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BeepingSweep, ValidMisOnRandomGraphs) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  Graph g = gen::gnp_avg_degree(static_cast<VertexId>(n), 6.0, rng);
  auto [metrics, outputs] = sim::run_protocol(g, seed * 13 + 7, beeping_mis());
  EXPECT_TRUE(analysis::check_mis(g, outputs).ok()) << g.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BeepingSweep,
    ::testing::Combine(::testing::Values(16, 64, 160),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

struct BeepingFamilies : public ::testing::TestWithParam<int> {};

TEST_P(BeepingFamilies, ValidMisOnStructuredFamilies) {
  const int which = GetParam();
  Rng rng(1000 + which);
  Graph g;
  switch (which) {
    case 0: g = gen::complete(17); break;
    case 1: g = gen::star(40); break;
    case 2: g = gen::grid(7, 9); break;
    case 3: g = gen::hypercube(5); break;
    case 4: g = gen::barabasi_albert(120, 3, rng); break;
    case 5: g = mycielski(gen::cycle(9)); break;
    default: g = gen::lollipop(50, 12); break;
  }
  auto [metrics, outputs] = sim::run_protocol(g, 77 + which, beeping_mis());
  EXPECT_TRUE(analysis::check_mis(g, outputs).ok()) << g.summary();
}

INSTANTIATE_TEST_SUITE_P(Families, BeepingFamilies, ::testing::Range(0, 7));

TEST(BeepingMisTest, CandidateProbAblationStillCorrect) {
  Rng rng(9);
  Graph g = gen::gnp(80, 0.08, rng);
  for (double p : {0.1, 0.25, 0.75, 0.9}) {
    BeepingMisOptions options;
    options.candidate_prob = p;
    auto [metrics, outputs] =
        sim::run_protocol(g, 31, beeping_mis(options));
    EXPECT_TRUE(analysis::check_mis(g, outputs).ok()) << "p=" << p;
  }
}

}  // namespace
}  // namespace slumber::algos
